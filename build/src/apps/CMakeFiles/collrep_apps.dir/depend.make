# Empty dependencies file for collrep_apps.
# This may be replaced when dependencies are built.
