file(REMOVE_RECURSE
  "libcollrep_apps.a"
)
