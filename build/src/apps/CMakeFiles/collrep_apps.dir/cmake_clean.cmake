file(REMOVE_RECURSE
  "CMakeFiles/collrep_apps.dir/hpccg.cpp.o"
  "CMakeFiles/collrep_apps.dir/hpccg.cpp.o.d"
  "CMakeFiles/collrep_apps.dir/minicm.cpp.o"
  "CMakeFiles/collrep_apps.dir/minicm.cpp.o.d"
  "CMakeFiles/collrep_apps.dir/synth.cpp.o"
  "CMakeFiles/collrep_apps.dir/synth.cpp.o.d"
  "libcollrep_apps.a"
  "libcollrep_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collrep_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
