# Empty dependencies file for collrep_ec.
# This may be replaced when dependencies are built.
