file(REMOVE_RECURSE
  "libcollrep_ec.a"
)
