file(REMOVE_RECURSE
  "CMakeFiles/collrep_ec.dir/gf256.cpp.o"
  "CMakeFiles/collrep_ec.dir/gf256.cpp.o.d"
  "CMakeFiles/collrep_ec.dir/group_parity.cpp.o"
  "CMakeFiles/collrep_ec.dir/group_parity.cpp.o.d"
  "CMakeFiles/collrep_ec.dir/reed_solomon.cpp.o"
  "CMakeFiles/collrep_ec.dir/reed_solomon.cpp.o.d"
  "libcollrep_ec.a"
  "libcollrep_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collrep_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
