file(REMOVE_RECURSE
  "libcollrep_chunk.a"
)
