file(REMOVE_RECURSE
  "CMakeFiles/collrep_chunk.dir/cdc.cpp.o"
  "CMakeFiles/collrep_chunk.dir/cdc.cpp.o.d"
  "CMakeFiles/collrep_chunk.dir/compress.cpp.o"
  "CMakeFiles/collrep_chunk.dir/compress.cpp.o.d"
  "libcollrep_chunk.a"
  "libcollrep_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collrep_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
