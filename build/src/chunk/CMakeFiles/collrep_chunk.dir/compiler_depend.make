# Empty compiler generated dependencies file for collrep_chunk.
# This may be replaced when dependencies are built.
