
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chunk/cdc.cpp" "src/chunk/CMakeFiles/collrep_chunk.dir/cdc.cpp.o" "gcc" "src/chunk/CMakeFiles/collrep_chunk.dir/cdc.cpp.o.d"
  "/root/repo/src/chunk/compress.cpp" "src/chunk/CMakeFiles/collrep_chunk.dir/compress.cpp.o" "gcc" "src/chunk/CMakeFiles/collrep_chunk.dir/compress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hash/CMakeFiles/collrep_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/collrep_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
