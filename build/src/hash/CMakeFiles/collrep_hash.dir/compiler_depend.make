# Empty compiler generated dependencies file for collrep_hash.
# This may be replaced when dependencies are built.
