file(REMOVE_RECURSE
  "CMakeFiles/collrep_hash.dir/crc32c.cpp.o"
  "CMakeFiles/collrep_hash.dir/crc32c.cpp.o.d"
  "CMakeFiles/collrep_hash.dir/hasher.cpp.o"
  "CMakeFiles/collrep_hash.dir/hasher.cpp.o.d"
  "CMakeFiles/collrep_hash.dir/sha1.cpp.o"
  "CMakeFiles/collrep_hash.dir/sha1.cpp.o.d"
  "CMakeFiles/collrep_hash.dir/xx64.cpp.o"
  "CMakeFiles/collrep_hash.dir/xx64.cpp.o.d"
  "libcollrep_hash.a"
  "libcollrep_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collrep_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
