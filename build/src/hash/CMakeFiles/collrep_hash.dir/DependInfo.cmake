
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/crc32c.cpp" "src/hash/CMakeFiles/collrep_hash.dir/crc32c.cpp.o" "gcc" "src/hash/CMakeFiles/collrep_hash.dir/crc32c.cpp.o.d"
  "/root/repo/src/hash/hasher.cpp" "src/hash/CMakeFiles/collrep_hash.dir/hasher.cpp.o" "gcc" "src/hash/CMakeFiles/collrep_hash.dir/hasher.cpp.o.d"
  "/root/repo/src/hash/sha1.cpp" "src/hash/CMakeFiles/collrep_hash.dir/sha1.cpp.o" "gcc" "src/hash/CMakeFiles/collrep_hash.dir/sha1.cpp.o.d"
  "/root/repo/src/hash/xx64.cpp" "src/hash/CMakeFiles/collrep_hash.dir/xx64.cpp.o" "gcc" "src/hash/CMakeFiles/collrep_hash.dir/xx64.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
