file(REMOVE_RECURSE
  "libcollrep_hash.a"
)
