# Empty dependencies file for collrep_core.
# This may be replaced when dependencies are built.
