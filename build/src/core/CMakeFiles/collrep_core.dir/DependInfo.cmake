
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dump.cpp" "src/core/CMakeFiles/collrep_core.dir/dump.cpp.o" "gcc" "src/core/CMakeFiles/collrep_core.dir/dump.cpp.o.d"
  "/root/repo/src/core/fingerprint_set.cpp" "src/core/CMakeFiles/collrep_core.dir/fingerprint_set.cpp.o" "gcc" "src/core/CMakeFiles/collrep_core.dir/fingerprint_set.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/collrep_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/collrep_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/replica_plan.cpp" "src/core/CMakeFiles/collrep_core.dir/replica_plan.cpp.o" "gcc" "src/core/CMakeFiles/collrep_core.dir/replica_plan.cpp.o.d"
  "/root/repo/src/core/restore.cpp" "src/core/CMakeFiles/collrep_core.dir/restore.cpp.o" "gcc" "src/core/CMakeFiles/collrep_core.dir/restore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hash/CMakeFiles/collrep_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/chunk/CMakeFiles/collrep_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/collrep_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
