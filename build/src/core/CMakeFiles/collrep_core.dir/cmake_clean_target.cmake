file(REMOVE_RECURSE
  "libcollrep_core.a"
)
