file(REMOVE_RECURSE
  "CMakeFiles/collrep_core.dir/dump.cpp.o"
  "CMakeFiles/collrep_core.dir/dump.cpp.o.d"
  "CMakeFiles/collrep_core.dir/fingerprint_set.cpp.o"
  "CMakeFiles/collrep_core.dir/fingerprint_set.cpp.o.d"
  "CMakeFiles/collrep_core.dir/planner.cpp.o"
  "CMakeFiles/collrep_core.dir/planner.cpp.o.d"
  "CMakeFiles/collrep_core.dir/replica_plan.cpp.o"
  "CMakeFiles/collrep_core.dir/replica_plan.cpp.o.d"
  "CMakeFiles/collrep_core.dir/restore.cpp.o"
  "CMakeFiles/collrep_core.dir/restore.cpp.o.d"
  "libcollrep_core.a"
  "libcollrep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collrep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
