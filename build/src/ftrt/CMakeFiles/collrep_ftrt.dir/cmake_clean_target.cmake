file(REMOVE_RECURSE
  "libcollrep_ftrt.a"
)
