# Empty dependencies file for collrep_ftrt.
# This may be replaced when dependencies are built.
