file(REMOVE_RECURSE
  "CMakeFiles/collrep_ftrt.dir/multilevel.cpp.o"
  "CMakeFiles/collrep_ftrt.dir/multilevel.cpp.o.d"
  "CMakeFiles/collrep_ftrt.dir/tracked_arena.cpp.o"
  "CMakeFiles/collrep_ftrt.dir/tracked_arena.cpp.o.d"
  "libcollrep_ftrt.a"
  "libcollrep_ftrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collrep_ftrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
