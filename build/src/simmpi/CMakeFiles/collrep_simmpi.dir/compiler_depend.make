# Empty compiler generated dependencies file for collrep_simmpi.
# This may be replaced when dependencies are built.
