file(REMOVE_RECURSE
  "CMakeFiles/collrep_simmpi.dir/comm.cpp.o"
  "CMakeFiles/collrep_simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/collrep_simmpi.dir/runtime.cpp.o"
  "CMakeFiles/collrep_simmpi.dir/runtime.cpp.o.d"
  "libcollrep_simmpi.a"
  "libcollrep_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collrep_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
