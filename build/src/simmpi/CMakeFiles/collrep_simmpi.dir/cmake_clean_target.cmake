file(REMOVE_RECURSE
  "libcollrep_simmpi.a"
)
