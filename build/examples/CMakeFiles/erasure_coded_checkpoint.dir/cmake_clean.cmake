file(REMOVE_RECURSE
  "CMakeFiles/erasure_coded_checkpoint.dir/erasure_coded_checkpoint.cpp.o"
  "CMakeFiles/erasure_coded_checkpoint.dir/erasure_coded_checkpoint.cpp.o.d"
  "erasure_coded_checkpoint"
  "erasure_coded_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erasure_coded_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
