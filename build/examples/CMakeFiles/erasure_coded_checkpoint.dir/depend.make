# Empty dependencies file for erasure_coded_checkpoint.
# This may be replaced when dependencies are built.
