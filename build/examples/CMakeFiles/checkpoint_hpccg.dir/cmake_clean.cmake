file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_hpccg.dir/checkpoint_hpccg.cpp.o"
  "CMakeFiles/checkpoint_hpccg.dir/checkpoint_hpccg.cpp.o.d"
  "checkpoint_hpccg"
  "checkpoint_hpccg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_hpccg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
