# Empty compiler generated dependencies file for checkpoint_hpccg.
# This may be replaced when dependencies are built.
