file(REMOVE_RECURSE
  "CMakeFiles/collrep_explore.dir/collrep_explore.cpp.o"
  "CMakeFiles/collrep_explore.dir/collrep_explore.cpp.o.d"
  "collrep_explore"
  "collrep_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collrep_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
