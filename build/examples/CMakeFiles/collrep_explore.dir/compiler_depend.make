# Empty compiler generated dependencies file for collrep_explore.
# This may be replaced when dependencies are built.
