file(REMOVE_RECURSE
  "CMakeFiles/hurricane_minicm.dir/hurricane_minicm.cpp.o"
  "CMakeFiles/hurricane_minicm.dir/hurricane_minicm.cpp.o.d"
  "hurricane_minicm"
  "hurricane_minicm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hurricane_minicm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
