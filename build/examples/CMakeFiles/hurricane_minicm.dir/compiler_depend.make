# Empty compiler generated dependencies file for hurricane_minicm.
# This may be replaced when dependencies are built.
