file(REMOVE_RECURSE
  "../bench/fig4a_hpccg_exec_increase"
  "../bench/fig4a_hpccg_exec_increase.pdb"
  "CMakeFiles/fig4a_hpccg_exec_increase.dir/fig4a_hpccg_exec_increase.cpp.o"
  "CMakeFiles/fig4a_hpccg_exec_increase.dir/fig4a_hpccg_exec_increase.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_hpccg_exec_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
