# Empty dependencies file for ablate_compression.
# This may be replaced when dependencies are built.
