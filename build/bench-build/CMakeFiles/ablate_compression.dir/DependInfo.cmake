
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_compression.cpp" "bench-build/CMakeFiles/ablate_compression.dir/ablate_compression.cpp.o" "gcc" "bench-build/CMakeFiles/ablate_compression.dir/ablate_compression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/collrep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/collrep_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/chunk/CMakeFiles/collrep_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/collrep_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ftrt/CMakeFiles/collrep_ftrt.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/collrep_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
