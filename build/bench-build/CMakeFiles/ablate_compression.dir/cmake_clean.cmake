file(REMOVE_RECURSE
  "../bench/ablate_compression"
  "../bench/ablate_compression.pdb"
  "CMakeFiles/ablate_compression.dir/ablate_compression.cpp.o"
  "CMakeFiles/ablate_compression.dir/ablate_compression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
