file(REMOVE_RECURSE
  "../bench/fig2_partner_selection"
  "../bench/fig2_partner_selection.pdb"
  "CMakeFiles/fig2_partner_selection.dir/fig2_partner_selection.cpp.o"
  "CMakeFiles/fig2_partner_selection.dir/fig2_partner_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_partner_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
