# Empty compiler generated dependencies file for fig2_partner_selection.
# This may be replaced when dependencies are built.
