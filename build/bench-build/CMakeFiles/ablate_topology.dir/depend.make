# Empty dependencies file for ablate_topology.
# This may be replaced when dependencies are built.
