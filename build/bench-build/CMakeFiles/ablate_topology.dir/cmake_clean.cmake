file(REMOVE_RECURSE
  "../bench/ablate_topology"
  "../bench/ablate_topology.pdb"
  "CMakeFiles/ablate_topology.dir/ablate_topology.cpp.o"
  "CMakeFiles/ablate_topology.dir/ablate_topology.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
