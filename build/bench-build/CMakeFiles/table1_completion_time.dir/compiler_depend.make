# Empty compiler generated dependencies file for table1_completion_time.
# This may be replaced when dependencies are built.
