# Empty dependencies file for fig3c_reduction_overhead_cm1.
# This may be replaced when dependencies are built.
