file(REMOVE_RECURSE
  "../bench/fig3c_reduction_overhead_cm1"
  "../bench/fig3c_reduction_overhead_cm1.pdb"
  "CMakeFiles/fig3c_reduction_overhead_cm1.dir/fig3c_reduction_overhead_cm1.cpp.o"
  "CMakeFiles/fig3c_reduction_overhead_cm1.dir/fig3c_reduction_overhead_cm1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_reduction_overhead_cm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
