# Empty compiler generated dependencies file for fig5b_cm1_replicated_data.
# This may be replaced when dependencies are built.
