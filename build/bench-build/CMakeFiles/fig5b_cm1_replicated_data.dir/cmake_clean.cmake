file(REMOVE_RECURSE
  "../bench/fig5b_cm1_replicated_data"
  "../bench/fig5b_cm1_replicated_data.pdb"
  "CMakeFiles/fig5b_cm1_replicated_data.dir/fig5b_cm1_replicated_data.cpp.o"
  "CMakeFiles/fig5b_cm1_replicated_data.dir/fig5b_cm1_replicated_data.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_cm1_replicated_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
