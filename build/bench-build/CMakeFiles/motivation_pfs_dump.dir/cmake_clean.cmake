file(REMOVE_RECURSE
  "../bench/motivation_pfs_dump"
  "../bench/motivation_pfs_dump.pdb"
  "CMakeFiles/motivation_pfs_dump.dir/motivation_pfs_dump.cpp.o"
  "CMakeFiles/motivation_pfs_dump.dir/motivation_pfs_dump.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_pfs_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
