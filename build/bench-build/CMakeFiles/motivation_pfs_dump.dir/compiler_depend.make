# Empty compiler generated dependencies file for motivation_pfs_dump.
# This may be replaced when dependencies are built.
