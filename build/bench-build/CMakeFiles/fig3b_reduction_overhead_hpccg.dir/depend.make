# Empty dependencies file for fig3b_reduction_overhead_hpccg.
# This may be replaced when dependencies are built.
