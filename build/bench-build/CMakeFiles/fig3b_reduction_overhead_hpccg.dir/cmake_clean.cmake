file(REMOVE_RECURSE
  "../bench/fig3b_reduction_overhead_hpccg"
  "../bench/fig3b_reduction_overhead_hpccg.pdb"
  "CMakeFiles/fig3b_reduction_overhead_hpccg.dir/fig3b_reduction_overhead_hpccg.cpp.o"
  "CMakeFiles/fig3b_reduction_overhead_hpccg.dir/fig3b_reduction_overhead_hpccg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_reduction_overhead_hpccg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
