# Empty dependencies file for ablate_threshold_f.
# This may be replaced when dependencies are built.
