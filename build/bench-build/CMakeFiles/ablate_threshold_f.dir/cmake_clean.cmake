file(REMOVE_RECURSE
  "../bench/ablate_threshold_f"
  "../bench/ablate_threshold_f.pdb"
  "CMakeFiles/ablate_threshold_f.dir/ablate_threshold_f.cpp.o"
  "CMakeFiles/ablate_threshold_f.dir/ablate_threshold_f.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_threshold_f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
