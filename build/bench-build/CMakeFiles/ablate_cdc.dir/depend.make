# Empty dependencies file for ablate_cdc.
# This may be replaced when dependencies are built.
