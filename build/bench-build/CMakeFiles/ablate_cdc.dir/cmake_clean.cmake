file(REMOVE_RECURSE
  "../bench/ablate_cdc"
  "../bench/ablate_cdc.pdb"
  "CMakeFiles/ablate_cdc.dir/ablate_cdc.cpp.o"
  "CMakeFiles/ablate_cdc.dir/ablate_cdc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
