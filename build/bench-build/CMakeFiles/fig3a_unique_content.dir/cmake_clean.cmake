file(REMOVE_RECURSE
  "../bench/fig3a_unique_content"
  "../bench/fig3a_unique_content.pdb"
  "CMakeFiles/fig3a_unique_content.dir/fig3a_unique_content.cpp.o"
  "CMakeFiles/fig3a_unique_content.dir/fig3a_unique_content.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_unique_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
