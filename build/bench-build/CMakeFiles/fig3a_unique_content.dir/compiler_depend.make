# Empty compiler generated dependencies file for fig3a_unique_content.
# This may be replaced when dependencies are built.
