file(REMOVE_RECURSE
  "../bench/fig5a_cm1_exec_increase"
  "../bench/fig5a_cm1_exec_increase.pdb"
  "CMakeFiles/fig5a_cm1_exec_increase.dir/fig5a_cm1_exec_increase.cpp.o"
  "CMakeFiles/fig5a_cm1_exec_increase.dir/fig5a_cm1_exec_increase.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_cm1_exec_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
