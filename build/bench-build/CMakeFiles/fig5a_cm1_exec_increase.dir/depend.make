# Empty dependencies file for fig5a_cm1_exec_increase.
# This may be replaced when dependencies are built.
