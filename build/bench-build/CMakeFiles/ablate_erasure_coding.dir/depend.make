# Empty dependencies file for ablate_erasure_coding.
# This may be replaced when dependencies are built.
