file(REMOVE_RECURSE
  "../bench/ablate_erasure_coding"
  "../bench/ablate_erasure_coding.pdb"
  "CMakeFiles/ablate_erasure_coding.dir/ablate_erasure_coding.cpp.o"
  "CMakeFiles/ablate_erasure_coding.dir/ablate_erasure_coding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_erasure_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
