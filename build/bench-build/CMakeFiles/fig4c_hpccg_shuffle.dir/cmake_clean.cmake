file(REMOVE_RECURSE
  "../bench/fig4c_hpccg_shuffle"
  "../bench/fig4c_hpccg_shuffle.pdb"
  "CMakeFiles/fig4c_hpccg_shuffle.dir/fig4c_hpccg_shuffle.cpp.o"
  "CMakeFiles/fig4c_hpccg_shuffle.dir/fig4c_hpccg_shuffle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_hpccg_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
