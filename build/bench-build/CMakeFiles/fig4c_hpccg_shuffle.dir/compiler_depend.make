# Empty compiler generated dependencies file for fig4c_hpccg_shuffle.
# This may be replaced when dependencies are built.
