file(REMOVE_RECURSE
  "../bench/ablate_hash_functions"
  "../bench/ablate_hash_functions.pdb"
  "CMakeFiles/ablate_hash_functions.dir/ablate_hash_functions.cpp.o"
  "CMakeFiles/ablate_hash_functions.dir/ablate_hash_functions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hash_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
