# Empty compiler generated dependencies file for fig5c_cm1_shuffle.
# This may be replaced when dependencies are built.
