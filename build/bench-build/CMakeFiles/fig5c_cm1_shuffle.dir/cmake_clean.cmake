file(REMOVE_RECURSE
  "../bench/fig5c_cm1_shuffle"
  "../bench/fig5c_cm1_shuffle.pdb"
  "CMakeFiles/fig5c_cm1_shuffle.dir/fig5c_cm1_shuffle.cpp.o"
  "CMakeFiles/fig5c_cm1_shuffle.dir/fig5c_cm1_shuffle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_cm1_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
