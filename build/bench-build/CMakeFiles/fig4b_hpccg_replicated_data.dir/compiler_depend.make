# Empty compiler generated dependencies file for fig4b_hpccg_replicated_data.
# This may be replaced when dependencies are built.
