file(REMOVE_RECURSE
  "../bench/fig4b_hpccg_replicated_data"
  "../bench/fig4b_hpccg_replicated_data.pdb"
  "CMakeFiles/fig4b_hpccg_replicated_data.dir/fig4b_hpccg_replicated_data.cpp.o"
  "CMakeFiles/fig4b_hpccg_replicated_data.dir/fig4b_hpccg_replicated_data.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_hpccg_replicated_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
