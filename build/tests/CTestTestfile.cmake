# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/archive_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/window_test[1]_include.cmake")
include("/root/repo/build/tests/chunk_test[1]_include.cmake")
include("/root/repo/build/tests/fingerprint_set_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/replica_plan_test[1]_include.cmake")
include("/root/repo/build/tests/dump_test[1]_include.cmake")
include("/root/repo/build/tests/ftrt_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/ec_test[1]_include.cmake")
include("/root/repo/build/tests/cdc_test[1]_include.cmake")
include("/root/repo/build/tests/restore_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/simtime_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/multilevel_test[1]_include.cmake")
include("/root/repo/build/tests/ec_geometry_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
