file(REMOVE_RECURSE
  "CMakeFiles/replica_plan_test.dir/replica_plan_test.cpp.o"
  "CMakeFiles/replica_plan_test.dir/replica_plan_test.cpp.o.d"
  "replica_plan_test"
  "replica_plan_test.pdb"
  "replica_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
