# Empty compiler generated dependencies file for replica_plan_test.
# This may be replaced when dependencies are built.
