# Empty compiler generated dependencies file for fingerprint_set_test.
# This may be replaced when dependencies are built.
