file(REMOVE_RECURSE
  "CMakeFiles/fingerprint_set_test.dir/fingerprint_set_test.cpp.o"
  "CMakeFiles/fingerprint_set_test.dir/fingerprint_set_test.cpp.o.d"
  "fingerprint_set_test"
  "fingerprint_set_test.pdb"
  "fingerprint_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fingerprint_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
