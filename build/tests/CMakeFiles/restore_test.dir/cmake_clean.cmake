file(REMOVE_RECURSE
  "CMakeFiles/restore_test.dir/restore_test.cpp.o"
  "CMakeFiles/restore_test.dir/restore_test.cpp.o.d"
  "restore_test"
  "restore_test.pdb"
  "restore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
