# Empty dependencies file for ftrt_test.
# This may be replaced when dependencies are built.
