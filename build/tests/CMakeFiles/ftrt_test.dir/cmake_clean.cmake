file(REMOVE_RECURSE
  "CMakeFiles/ftrt_test.dir/ftrt_test.cpp.o"
  "CMakeFiles/ftrt_test.dir/ftrt_test.cpp.o.d"
  "ftrt_test"
  "ftrt_test.pdb"
  "ftrt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftrt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
