file(REMOVE_RECURSE
  "CMakeFiles/ec_geometry_test.dir/ec_geometry_test.cpp.o"
  "CMakeFiles/ec_geometry_test.dir/ec_geometry_test.cpp.o.d"
  "ec_geometry_test"
  "ec_geometry_test.pdb"
  "ec_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
