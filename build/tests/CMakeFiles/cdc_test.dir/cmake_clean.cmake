file(REMOVE_RECURSE
  "CMakeFiles/cdc_test.dir/cdc_test.cpp.o"
  "CMakeFiles/cdc_test.dir/cdc_test.cpp.o.d"
  "cdc_test"
  "cdc_test.pdb"
  "cdc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
