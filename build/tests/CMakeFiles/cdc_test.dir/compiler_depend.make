# Empty compiler generated dependencies file for cdc_test.
# This may be replaced when dependencies are built.
