// One-sided window semantics: create/put/fence visibility, bounds checks,
// epoch cost accounting, and multi-window coexistence.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"

namespace {

using namespace collrep;

TEST(Window, PutVisibleAfterFence) {
  simmpi::Runtime rt(4);
  rt.run([&](simmpi::Comm& comm) {
    auto win = comm.win_create(16);
    const std::vector<std::uint8_t> mine(4,
                                         static_cast<std::uint8_t>(comm.rank()));
    // Every rank writes its id into every rank's window at offset 4*rank.
    for (int t = 0; t < comm.size(); ++t) {
      win.put(t, static_cast<std::size_t>(comm.rank()) * 4, mine);
    }
    win.fence();
    const auto local = win.local();
    for (int r = 0; r < comm.size(); ++r) {
      for (int b = 0; b < 4; ++b) {
        EXPECT_EQ(local[static_cast<std::size_t>(r * 4 + b)], r);
      }
    }
    win.free();
  });
}

TEST(Window, RegionsAreZeroInitialized) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    auto win = comm.win_create(64);
    for (const auto byte : win.local()) EXPECT_EQ(byte, 0);
    win.free();
  });
}

TEST(Window, DifferentSizesPerRank) {
  simmpi::Runtime rt(3);
  rt.run([&](simmpi::Comm& comm) {
    auto win = comm.win_create(static_cast<std::size_t>(comm.rank()) * 8);
    EXPECT_EQ(win.local().size(), static_cast<std::size_t>(comm.rank()) * 8);
    if (comm.rank() == 0) {
      const std::vector<std::uint8_t> data(8, 0xEE);
      win.put(2, 8, data);
    }
    win.fence();
    if (comm.rank() == 2) {
      EXPECT_EQ(win.local()[8], 0xEE);
      EXPECT_EQ(win.local()[15], 0xEE);
      EXPECT_EQ(win.local()[0], 0);
    }
    win.free();
  });
}

TEST(Window, OutOfBoundsPutThrows) {
  simmpi::Runtime rt(2);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
    auto win = comm.win_create(8);
    const std::vector<std::uint8_t> data(8, 1);
    if (comm.rank() == 0) win.put(1, 4, data);  // 4 + 8 > 8
    win.fence();
    win.free();
  }),
               std::out_of_range);
}

TEST(Window, FenceAdvancesClockByEpochBytes) {
  simmpi::RuntimeOptions opts;
  opts.cluster.ranks_per_node = 1;  // every transfer is inter-node
  simmpi::Runtime rt(2, opts);
  const double bw = opts.cluster.net_bandwidth_bps;
  rt.run([&](simmpi::Comm& comm) {
    auto win = comm.win_create(1 << 20);
    const double before = comm.clock().now();
    if (comm.rank() == 0) {
      const std::vector<std::uint8_t> data(1 << 20, 7);
      win.put(1, 0, data);
    }
    win.fence();
    const double elapsed = comm.clock().now() - before;
    // The epoch must cost at least bytes/bandwidth on both ranks (clocks
    // are aligned by the fence).
    EXPECT_GE(elapsed, static_cast<double>(1 << 20) / bw * 0.99);
    win.free();
  });
}

TEST(Window, ModeledBytesOverrideDrivesCost) {
  simmpi::RuntimeOptions opts;
  opts.cluster.ranks_per_node = 1;
  simmpi::Runtime rt(2, opts);
  std::vector<double> elapsed(2, 0.0);
  rt.run([&](simmpi::Comm& comm) {
    auto win = comm.win_create(64);
    const double before = comm.clock().now();
    if (comm.rank() == 0) {
      const std::vector<std::uint8_t> tiny(16, 1);
      // 16 real bytes standing in for 4 MiB on the wire.
      win.put(1, 0, tiny, 4ull << 20);
      EXPECT_EQ(comm.epoch_bytes_put(), 4ull << 20);
    }
    win.fence();
    elapsed[static_cast<std::size_t>(comm.rank())] =
        comm.clock().now() - before;
    EXPECT_EQ(comm.epoch_bytes_put(), 0u);  // reset by the fence
    win.free();
  });
  EXPECT_GE(elapsed[1],
            static_cast<double>(4ull << 20) / opts.cluster.net_bandwidth_bps *
                0.99);
}

TEST(Window, TwoWindowsCoexist) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    auto win_a = comm.win_create(8);
    auto win_b = comm.win_create(8);
    const std::vector<std::uint8_t> a(8, 0xAA);
    const std::vector<std::uint8_t> b(8, 0xBB);
    if (comm.rank() == 0) {
      win_a.put(1, 0, a);
      win_b.put(1, 0, b);
    }
    win_a.fence();
    win_b.fence();
    if (comm.rank() == 1) {
      EXPECT_EQ(win_a.local()[0], 0xAA);
      EXPECT_EQ(win_b.local()[0], 0xBB);
    }
    win_a.free();
    win_b.free();
  });
}

TEST(Window, RecreateAfterFree) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    for (int round = 0; round < 3; ++round) {
      auto win = comm.win_create(4);
      const std::vector<std::uint8_t> data(
          4, static_cast<std::uint8_t>(round + 1));
      win.put((comm.rank() + 1) % 2, 0, data);
      win.fence();
      EXPECT_EQ(win.local()[0], round + 1);
      win.free();
    }
  });
}

TEST(Window, DestructorReleasesCollectively) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    {
      auto win = comm.win_create(4);
      win.fence();
    }  // destructor performs the collective free on both ranks
    auto win2 = comm.win_create(4);
    win2.free();
  });
}

TEST(Window, IntraNodeEpochCheaperThanInterNode) {
  const auto epoch_time = [](int ranks_per_node) {
    simmpi::RuntimeOptions opts;
    opts.cluster.ranks_per_node = ranks_per_node;
    simmpi::Runtime rt(2, opts);
    double result = 0.0;
    rt.run([&](simmpi::Comm& comm) {
      auto win = comm.win_create(1 << 20);
      const double before = comm.clock().now();
      if (comm.rank() == 0) {
        const std::vector<std::uint8_t> data(1 << 20, 3);
        win.put(1, 0, data);
      }
      win.fence();
      if (comm.rank() == 0) result = comm.clock().now() - before;
      win.free();
    });
    return result;
  };
  EXPECT_LT(epoch_time(2) * 5, epoch_time(1));  // same node ≫ cheaper
}

}  // namespace
