// Unit tests for the serialization archive (the Boost.MPI-serialization
// substitute) and the chunk Manifest wire format.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "chunk/manifest.hpp"
#include "hash/fingerprint.hpp"
#include "simmpi/archive.hpp"

namespace {

using namespace collrep;
using simmpi::from_bytes;
using simmpi::IArchive;
using simmpi::OArchive;
using simmpi::to_bytes;

template <class T>
T round_trip(const T& value) {
  return from_bytes<T>(to_bytes(value));
}

TEST(Archive, TrivialTypes) {
  EXPECT_EQ(round_trip(42), 42);
  EXPECT_EQ(round_trip(std::uint64_t{0xDEADBEEFCAFEF00Dull}),
            0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(round_trip(-7.25), -7.25);
  EXPECT_EQ(round_trip('x'), 'x');
  EXPECT_EQ(round_trip(true), true);
}

TEST(Archive, TrivialStruct) {
  struct Pod {
    int a;
    double b;
    bool operator==(const Pod&) const = default;
  };
  EXPECT_EQ(round_trip(Pod{3, 1.5}), (Pod{3, 1.5}));
}

TEST(Archive, VectorOfTrivials) {
  const std::vector<std::uint32_t> v{1, 2, 3, 0xFFFFFFFF};
  EXPECT_EQ(round_trip(v), v);
  EXPECT_EQ(round_trip(std::vector<std::uint32_t>{}),
            std::vector<std::uint32_t>{});
}

TEST(Archive, VectorOfVectors) {
  const std::vector<std::vector<int>> v{{1, 2}, {}, {3}};
  EXPECT_EQ(round_trip(v), v);
}

TEST(Archive, Strings) {
  EXPECT_EQ(round_trip(std::string{"hello archive"}), "hello archive");
  EXPECT_EQ(round_trip(std::string{}), "");
  const std::string binary{"\x00\x01\xFF", 3};
  EXPECT_EQ(round_trip(binary), binary);
}

TEST(Archive, Pairs) {
  const std::pair<int, std::string> p{7, "seven"};
  EXPECT_EQ(round_trip(p), p);
}

TEST(Archive, Maps) {
  const std::map<int, std::string> m{{1, "one"}, {2, "two"}};
  EXPECT_EQ(round_trip(m), m);
  const std::unordered_map<std::string, int> um{{"a", 1}, {"b", 2}};
  EXPECT_EQ(round_trip(um), um);
}

TEST(Archive, Fingerprints) {
  const auto fp = hash::Fingerprint::from_u64(0xABCDEF);
  EXPECT_EQ(round_trip(fp), fp);
  const std::vector<hash::Fingerprint> v{fp, hash::Fingerprint{}};
  EXPECT_EQ(round_trip(v), v);
}

TEST(Archive, MultipleValuesSequenced) {
  OArchive out;
  out.put(1);
  out.put(std::string{"mid"});
  out.put(2.5);
  IArchive in(out.bytes());
  EXPECT_EQ(in.get<int>(), 1);
  EXPECT_EQ(in.get<std::string>(), "mid");
  EXPECT_EQ(in.get<double>(), 2.5);
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(Archive, TruncatedBufferThrows) {
  const auto bytes = to_bytes(std::uint64_t{1});
  IArchive in(std::span<const std::uint8_t>{bytes.data(), bytes.size() - 1});
  EXPECT_THROW((void)in.get<std::uint64_t>(), std::runtime_error);
}

TEST(Archive, CorruptSizeThrows) {
  OArchive out;
  out.put_size(1u << 30);  // claims a huge vector, provides no elements
  IArchive in(out.bytes());
  EXPECT_THROW((void)in.get<std::vector<std::uint64_t>>(),
               std::runtime_error);
}

TEST(Archive, ManifestRoundTrip) {
  chunk::Manifest m;
  m.owner_rank = 11;
  m.epoch = 42;
  m.segment_sizes = {4096, 1024};
  m.entries = {{hash::Fingerprint::from_u64(1), 256},
               {hash::Fingerprint::from_u64(2), 128}};
  const auto got = round_trip(m);
  EXPECT_EQ(got.owner_rank, 11);
  EXPECT_EQ(got.epoch, 42u);
  EXPECT_EQ(got.segment_sizes, m.segment_sizes);
  ASSERT_EQ(got.entries.size(), 2u);
  EXPECT_EQ(got.entries[0].fp, m.entries[0].fp);
  EXPECT_EQ(got.entries[1].length, 128u);
  EXPECT_EQ(got.total_bytes(), 5120u);
}

TEST(Archive, ManifestWireBytesTracksEntryCount) {
  chunk::Manifest small;
  small.entries.resize(1);
  chunk::Manifest large;
  large.entries.resize(100);
  EXPECT_GT(chunk::manifest_wire_bytes(large),
            chunk::manifest_wire_bytes(small));
}

}  // namespace
