// Content-defined chunking: coverage/bounds invariants, the
// shift-resilience property that motivates CDC over fixed chunking, and
// end-to-end pipeline integration (dump + restore with variable chunks).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "apps/rng.hpp"
#include "chunk/cdc.hpp"
#include "core/collrep.hpp"
#include "test_util.hpp"

namespace {

using namespace collrep;
using chunk::CdcParams;
using chunk::content_defined_refs;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  apps::SplitMix64 rng(seed);
  rng.fill(data);
  return data;
}

CdcParams small_params() {
  CdcParams p;
  p.min_bytes = 64;
  p.avg_bytes = 256;
  p.max_bytes = 1024;
  return p;
}

TEST(Cdc, RefsTileEverySegmentExactly) {
  const auto seg_a = random_bytes(10000, 1);
  const auto seg_b = random_bytes(333, 2);
  chunk::Dataset ds;
  ds.add_segment(seg_a);
  ds.add_segment(seg_b);
  const auto refs = content_defined_refs(ds, small_params());

  std::uint64_t expected_offset = 0;
  std::uint32_t segment = 0;
  for (const auto& r : refs) {
    if (r.segment != segment) {
      EXPECT_EQ(expected_offset, ds.segment(segment).size());
      segment = r.segment;
      expected_offset = 0;
    }
    EXPECT_EQ(r.offset, expected_offset);
    expected_offset += r.length;
  }
  EXPECT_EQ(segment, 1u);
  EXPECT_EQ(expected_offset, seg_b.size());
}

TEST(Cdc, ChunkLengthsrespectBounds) {
  const auto data = random_bytes(50000, 3);
  chunk::Dataset ds;
  ds.add_segment(data);
  const auto params = small_params();
  const auto refs = content_defined_refs(ds, params);
  ASSERT_GT(refs.size(), 10u);
  for (std::size_t i = 0; i + 1 < refs.size(); ++i) {
    EXPECT_GE(refs[i].length, params.min_bytes);
    EXPECT_LE(refs[i].length, params.max_bytes);
  }
  // Average should be in the right ballpark.
  const double avg = static_cast<double>(data.size()) / refs.size();
  EXPECT_GT(avg, params.min_bytes);
  EXPECT_LT(avg, static_cast<double>(params.max_bytes));
}

TEST(Cdc, Deterministic) {
  const auto data = random_bytes(8000, 4);
  chunk::Dataset ds;
  ds.add_segment(data);
  const auto a = content_defined_refs(ds, small_params());
  const auto b = content_defined_refs(ds, small_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].length, b[i].length);
  }
}

TEST(Cdc, InvalidParamsRejected) {
  chunk::Dataset ds;
  CdcParams p = small_params();
  p.avg_bytes = 300;  // not a power of two
  EXPECT_THROW((void)content_defined_refs(ds, p), std::invalid_argument);
  p = small_params();
  p.min_bytes = 0;
  EXPECT_THROW((void)content_defined_refs(ds, p), std::invalid_argument);
  p = small_params();
  p.max_bytes = p.avg_bytes / 2;
  EXPECT_THROW((void)content_defined_refs(ds, p), std::invalid_argument);
}

// The motivating property: inserting bytes near the front moves every
// fixed-chunk boundary, but content-defined cut points realign, so most
// chunks keep their content identity.
TEST(Cdc, SurvivesInsertionShift) {
  const auto base = random_bytes(40000, 5);
  auto shifted = base;
  shifted.insert(shifted.begin() + 100, {0xAA, 0xBB, 0xCC, 0xDD, 0xEE});

  const auto chunk_digests = [&](const std::vector<std::uint8_t>& data,
                                 bool cdc) {
    chunk::Dataset ds;
    ds.add_segment(data);
    std::multiset<std::uint64_t> digests;
    const auto& hasher = hash::hasher_for(hash::HashKind::kXx64);
    if (cdc) {
      for (const auto& r : content_defined_refs(ds, small_params())) {
        digests.insert(
            hasher.fingerprint(ds.segment(0).subspan(r.offset, r.length))
                .prefix64());
      }
    } else {
      const chunk::Chunker chunker(ds, 256);
      for (std::size_t i = 0; i < chunker.count(); ++i) {
        digests.insert(hasher.fingerprint(chunker.bytes(i)).prefix64());
      }
    }
    return digests;
  };

  const auto overlap = [](const std::multiset<std::uint64_t>& a,
                          const std::multiset<std::uint64_t>& b) {
    std::size_t shared = 0;
    for (const auto& d : a) shared += b.count(d) > 0;
    return static_cast<double>(shared) / static_cast<double>(a.size());
  };

  const double fixed_overlap =
      overlap(chunk_digests(base, false), chunk_digests(shifted, false));
  const double cdc_overlap =
      overlap(chunk_digests(base, true), chunk_digests(shifted, true));

  EXPECT_LT(fixed_overlap, 0.05);  // everything shifted: fixed chunking dies
  EXPECT_GT(cdc_overlap, 0.90);    // CDC realigns within one chunk
}

// ---- pipeline integration -------------------------------------------------------

TEST(CdcPipeline, DumpAndRestoreWithVariableChunks) {
  constexpr int kRanks = 5;
  constexpr int kK = 3;
  core::DumpConfig cfg;
  cfg.chunking = core::ChunkingMode::kContentDefined;
  cfg.cdc = small_params();

  auto run = test::run_dump(kRanks, kK, cfg, [](int rank) {
    // Shared content with rank-specific insertions: the CDC showcase.
    auto data = random_bytes(20000, 77);
    data.insert(data.begin() + 50 * (rank + 1),
                static_cast<std::size_t>(rank + 1), 0x5A);
    return data;
  });

  auto ptrs = test::store_ptrs(run);
  for (int r = 0; r < kRanks; ++r) {
    const auto restored = core::restore_rank(ptrs, r);
    EXPECT_EQ(restored.segments.at(0),
              run.datasets[static_cast<std::size_t>(r)]);
  }
  // Failures still tolerated.
  run.stores[2].fail();
  run.stores[4].fail();
  for (int r = 0; r < kRanks; ++r) {
    const auto restored = core::restore_rank(ptrs, r);
    EXPECT_EQ(restored.segments.at(0),
              run.datasets[static_cast<std::size_t>(r)]);
  }
}

TEST(CdcPipeline, CdcFindsShiftedDuplicatesFixedMisses) {
  constexpr int kRanks = 4;
  constexpr int kK = 2;
  // Every rank holds the same content at a different byte offset.
  const auto gen = [](int rank) {
    auto data = random_bytes(30000, 123);
    data.insert(data.begin(), static_cast<std::size_t>(rank * 7 + 1), 0x11);
    return data;
  };

  core::DumpConfig fixed_cfg;
  fixed_cfg.chunk_bytes = 256;
  const auto fixed = test::run_dump(kRanks, kK, fixed_cfg, gen);

  core::DumpConfig cdc_cfg;
  cdc_cfg.chunking = core::ChunkingMode::kContentDefined;
  cdc_cfg.cdc = small_params();
  const auto cdc = test::run_dump(kRanks, kK, cdc_cfg, gen);

  std::uint64_t fixed_unique = 0;
  std::uint64_t cdc_unique = 0;
  for (int r = 0; r < kRanks; ++r) {
    fixed_unique += fixed.stats[static_cast<std::size_t>(r)].owned_unique_bytes;
    cdc_unique += cdc.stats[static_cast<std::size_t>(r)].owned_unique_bytes;
  }
  // Fixed chunking sees 4 unrelated datasets; CDC discovers the overlap.
  EXPECT_LT(cdc_unique * 2, fixed_unique);
}

TEST(CdcPipeline, NodeAwarePartnersEliminateSameNodeReplicas) {
  constexpr int kRanks = 12;
  constexpr int kK = 3;
  simmpi::RuntimeOptions opts;
  opts.cluster.ranks_per_node = 3;  // 4 nodes

  core::DumpConfig plain_cfg;
  plain_cfg.chunk_bytes = 256;
  const auto plain = test::run_dump(kRanks, kK, plain_cfg,
                                    [](int r) { return random_bytes(4096, 9 + r); },
                                    chunk::StoreMode::kPayload, opts);

  auto aware_cfg = plain_cfg;
  aware_cfg.node_aware_partners = true;
  const auto aware = test::run_dump(kRanks, kK, aware_cfg,
                                    [](int r) { return random_bytes(4096, 9 + r); },
                                    chunk::StoreMode::kPayload, opts);

  // The naive ring (identity within nodes) keeps same-node partners; the
  // repair pass must remove all of them (4 nodes >= K).
  EXPECT_GT(plain.stats[0].same_node_partners, 0u);
  EXPECT_EQ(aware.stats[0].same_node_partners, 0u);
}

}  // namespace
