// Erasure-coding substrate: GF(256) field axioms, Reed-Solomon MDS
// property under exhaustive and randomized erasure patterns, and the
// group-parity collective dump + decode-based restore.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "apps/rng.hpp"
#include "apps/synth.hpp"
#include "core/collrep.hpp"
#include "ec/gf256.hpp"
#include "core/group_parity.hpp"
#include "ec/reed_solomon.hpp"

namespace {

using namespace collrep;
using core::EcConfig;
using core::EcDumper;
using ec::ReedSolomon;

// -- GF(256) --------------------------------------------------------------------

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(ec::gf_add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(ec::gf_add(0x53, 0x53), 0);  // characteristic 2
}

TEST(Gf256, MultiplicationBasics) {
  EXPECT_EQ(ec::gf_mul(0, 0x37), 0);
  EXPECT_EQ(ec::gf_mul(1, 0x37), 0x37);
  EXPECT_EQ(ec::gf_mul(0x37, 1), 0x37);
  // Known products under 0x11D: x^8 = x^4 + x^3 + x^2 + 1 = 0x1D.
  EXPECT_EQ(ec::gf_mul(0x02, 0x80), 0x1D);
  EXPECT_EQ(ec::gf_mul(0x02, 0x02), 0x04);
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = ec::gf_inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(ec::gf_mul(static_cast<std::uint8_t>(a), inv), 1)
        << "a=" << a;
  }
}

TEST(Gf256, MultiplicationIsCommutativeAndAssociative) {
  apps::SplitMix64 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next());
    const auto b = static_cast<std::uint8_t>(rng.next());
    const auto c = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(ec::gf_mul(a, b), ec::gf_mul(b, a));
    EXPECT_EQ(ec::gf_mul(ec::gf_mul(a, b), c), ec::gf_mul(a, ec::gf_mul(b, c)));
    // Distributivity over XOR.
    EXPECT_EQ(ec::gf_mul(a, ec::gf_add(b, c)),
              ec::gf_add(ec::gf_mul(a, b), ec::gf_mul(a, c)));
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  apps::SplitMix64 rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next());
    const auto b = static_cast<std::uint8_t>(rng.next() | 1);
    EXPECT_EQ(ec::gf_div(ec::gf_mul(a, b), b), a);
  }
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  std::uint8_t acc = 1;
  for (unsigned e = 0; e < 10; ++e) {
    EXPECT_EQ(ec::gf_pow(0x1D, e), acc);
    acc = ec::gf_mul(acc, 0x1D);
  }
}

TEST(Gf256, MulAddMatchesScalarLoop) {
  apps::SplitMix64 rng(7);
  std::vector<std::uint8_t> in(333);
  std::vector<std::uint8_t> out(333);
  rng.fill(in);
  rng.fill(out);
  auto expected = out;
  const std::uint8_t coeff = 0x9B;
  for (std::size_t i = 0; i < in.size(); ++i) {
    expected[i] ^= ec::gf_mul(coeff, in[i]);
  }
  ec::gf_mul_add(out, in, coeff);
  EXPECT_EQ(out, expected);
}

// -- Reed-Solomon ----------------------------------------------------------------

std::vector<std::vector<std::uint8_t>> random_shards(int count,
                                                     std::size_t len,
                                                     std::uint64_t seed) {
  std::vector<std::vector<std::uint8_t>> shards(
      static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    shards[static_cast<std::size_t>(i)].resize(len);
    apps::SplitMix64 rng(seed + static_cast<std::uint64_t>(i));
    rng.fill(shards[static_cast<std::size_t>(i)]);
  }
  return shards;
}

TEST(ReedSolomon, InvalidGeometryRejected) {
  EXPECT_THROW(ReedSolomon(0, 2), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
  EXPECT_NO_THROW(ReedSolomon(1, 0));
}

TEST(ReedSolomon, EncodeDecodeAllDataPresent) {
  const ReedSolomon rs(4, 2);
  const auto data = random_shards(4, 100, 1);
  std::vector<std::span<const std::uint8_t>> views(data.begin(), data.end());
  std::vector<std::vector<std::uint8_t>> parity(2);
  rs.encode(views, parity);

  std::vector<std::optional<std::vector<std::uint8_t>>> shards(6);
  for (int i = 0; i < 4; ++i) shards[static_cast<std::size_t>(i)] = data[i];
  EXPECT_EQ(rs.reconstruct_data(shards), data);
}

// Exhaustive erasure patterns for a small code.
TEST(ReedSolomon, AllErasurePatternsUpToR) {
  constexpr int kM = 4;
  constexpr int kR = 3;
  const ReedSolomon rs(kM, kR);
  const auto data = random_shards(kM, 64, 2);
  std::vector<std::span<const std::uint8_t>> views(data.begin(), data.end());
  std::vector<std::vector<std::uint8_t>> parity(kR);
  rs.encode(views, parity);

  // Every subset of up to kR erased shards must be recoverable.
  for (std::uint32_t mask = 0; mask < (1u << (kM + kR)); ++mask) {
    if (__builtin_popcount(mask) > kR) continue;
    std::vector<std::optional<std::vector<std::uint8_t>>> shards(kM + kR);
    for (int s = 0; s < kM + kR; ++s) {
      if (mask & (1u << s)) continue;  // erased
      shards[static_cast<std::size_t>(s)] =
          s < kM ? data[static_cast<std::size_t>(s)]
                 : parity[static_cast<std::size_t>(s - kM)];
    }
    EXPECT_EQ(rs.reconstruct_data(shards), data) << "mask=" << mask;
  }
}

TEST(ReedSolomon, TooManyErasuresThrow) {
  const ReedSolomon rs(3, 2);
  const auto data = random_shards(3, 16, 3);
  std::vector<std::span<const std::uint8_t>> views(data.begin(), data.end());
  std::vector<std::vector<std::uint8_t>> parity(2);
  rs.encode(views, parity);

  std::vector<std::optional<std::vector<std::uint8_t>>> shards(5);
  shards[0] = data[0];
  shards[3] = parity[0];  // only 2 of 3 required survivors
  EXPECT_THROW((void)rs.reconstruct_data(shards), std::runtime_error);
}

class RsGeometrySweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RsGeometrySweep, RandomErasuresRoundTrip) {
  const auto [m, r] = GetParam();
  const ReedSolomon rs(m, r);
  const auto data = random_shards(m, 48, 11 * static_cast<std::uint64_t>(m));
  std::vector<std::span<const std::uint8_t>> views(data.begin(), data.end());
  std::vector<std::vector<std::uint8_t>> parity(static_cast<std::size_t>(r));
  rs.encode(views, parity);

  apps::SplitMix64 rng(static_cast<std::uint64_t>(m * 31 + r));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::optional<std::vector<std::uint8_t>>> shards(
        static_cast<std::size_t>(m + r));
    for (int s = 0; s < m + r; ++s) {
      shards[static_cast<std::size_t>(s)] =
          s < m ? data[static_cast<std::size_t>(s)]
                : parity[static_cast<std::size_t>(s - m)];
    }
    // Erase exactly r random distinct shards.
    int erased = 0;
    while (erased < r) {
      const auto victim =
          static_cast<std::size_t>(rng.next() % static_cast<std::uint64_t>(m + r));
      if (shards[victim].has_value()) {
        shards[victim].reset();
        ++erased;
      }
    }
    EXPECT_EQ(rs.reconstruct_data(shards), data);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, RsGeometrySweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                           std::pair{4, 2}, std::pair{6, 3},
                                           std::pair{8, 4}, std::pair{16, 4},
                                           std::pair{32, 8}));

// -- group-parity collective dump + restore ---------------------------------------

struct EcRun {
  std::vector<chunk::ChunkStore> stores;
  std::vector<std::vector<std::uint8_t>> datasets;
  std::vector<core::EcDumpStats> stats;
};

EcRun run_ec_dump(int nranks, const EcConfig& cfg,
                  const std::function<std::vector<std::uint8_t>(int)>& gen) {
  EcRun run;
  run.stores.resize(static_cast<std::size_t>(nranks));
  run.datasets.resize(static_cast<std::size_t>(nranks));
  run.stats.resize(static_cast<std::size_t>(nranks));
  simmpi::Runtime rt(nranks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    run.datasets[static_cast<std::size_t>(r)] = gen(r);
    chunk::Dataset ds;
    ds.add_segment(run.datasets[static_cast<std::size_t>(r)]);
    EcDumper dumper(comm, run.stores[static_cast<std::size_t>(r)], cfg);
    run.stats[static_cast<std::size_t>(r)] = dumper.dump_output(ds);
  });
  return run;
}

std::vector<std::uint8_t> skewed_data(int rank, std::size_t chunk_bytes) {
  apps::SynthSpec spec;
  spec.chunk_bytes = chunk_bytes;
  spec.chunks = 12 + static_cast<std::size_t>(rank % 3) * 4;  // uneven streams
  spec.local_dup = 0.2;
  spec.global_shared = 0.4;
  spec.seed = 99;
  return apps::synth_dataset(rank, 8, spec);
}

TEST(EcDump, RestoreWithNoFailures) {
  EcConfig cfg;
  cfg.group_size = 3;
  cfg.parity = 2;
  cfg.chunk_bytes = 256;
  auto run = run_ec_dump(8, cfg, [&](int r) { return skewed_data(r, 256); });
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : run.stores) ptrs.push_back(&s);
  for (int r = 0; r < 8; ++r) {
    const auto restored = core::ec_restore_rank(ptrs, r, cfg);
    EXPECT_EQ(restored.segments.at(0), run.datasets[static_cast<std::size_t>(r)]);
  }
}

TEST(EcDump, RestoreSurvivesParityManyFailures) {
  EcConfig cfg;
  cfg.group_size = 3;
  cfg.parity = 2;
  cfg.chunk_bytes = 256;
  auto run = run_ec_dump(9, cfg, [&](int r) { return skewed_data(r, 256); });
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : run.stores) ptrs.push_back(&s);

  // Fail `parity` members of the first group; all ranks must restore.
  run.stores[0].fail();
  run.stores[2].fail();
  for (int r = 0; r < 9; ++r) {
    const auto restored = core::ec_restore_rank(ptrs, r, cfg);
    EXPECT_EQ(restored.segments.at(0), run.datasets[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

TEST(EcDump, HybridExcludesNaturalDuplicates) {
  EcConfig cfg;
  cfg.group_size = 2;
  cfg.parity = 1;
  cfg.chunk_bytes = 256;
  // All ranks share their dataset entirely: with the hybrid enabled,
  // nearly all chunks have >= parity+1 natural copies and the coded
  // streams shrink dramatically.
  const auto shared_gen = [](int) { return skewed_data(0, 256); };

  cfg.use_collective_dedup = true;
  auto hybrid = run_ec_dump(6, cfg, shared_gen);
  cfg.use_collective_dedup = false;
  auto blind = run_ec_dump(6, cfg, shared_gen);

  std::uint64_t hybrid_stream = 0;
  std::uint64_t blind_stream = 0;
  for (int r = 0; r < 6; ++r) {
    hybrid_stream += hybrid.stats[static_cast<std::size_t>(r)].stream_chunks;
    blind_stream += blind.stats[static_cast<std::size_t>(r)].stream_chunks;
  }
  EXPECT_LT(hybrid_stream * 2, blind_stream);

  // Both variants must restore after one failure (parity = 1).
  for (auto* run : {&hybrid, &blind}) {
    std::vector<chunk::ChunkStore*> ptrs;
    for (auto& s : run->stores) ptrs.push_back(&s);
    run->stores[1].fail();
    for (int r = 0; r < 6; ++r) {
      const auto restored = core::ec_restore_rank(ptrs, r,
                                                cfg);
      EXPECT_EQ(restored.segments.at(0),
                run->datasets[static_cast<std::size_t>(r)]);
    }
  }
}

TEST(EcDump, StorageOverheadBeatsReplication) {
  // The EC selling point: r/m extra storage instead of (K-1)x.
  EcConfig cfg;
  cfg.group_size = 4;
  cfg.parity = 2;
  cfg.chunk_bytes = 256;
  cfg.use_collective_dedup = false;
  const auto gen = [&](int r) { return skewed_data(r, 256); };
  auto run = run_ec_dump(12, cfg, gen);

  std::uint64_t data_bytes = 0;
  std::uint64_t parity_bytes = 0;
  for (const auto& s : run.stats) {
    data_bytes += s.stored_bytes;
    parity_bytes += s.parity_bytes;
  }
  // Overhead ratio must sit near r/m (stripes are padded to the group
  // max, so allow generous slack), far below replication's (K-1) = 2x.
  const double overhead =
      static_cast<double>(parity_bytes) / static_cast<double>(data_bytes);
  EXPECT_LT(overhead, 1.0);
  EXPECT_GT(overhead, 0.25);
}

TEST(EcDump, InvalidGeometryRejected) {
  EcConfig cfg;
  cfg.group_size = 4;
  cfg.parity = 2;
  simmpi::Runtime rt(4);  // 4 < group_size + parity
  std::vector<chunk::ChunkStore> stores(4);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
    EcDumper dumper(comm, stores[static_cast<std::size_t>(comm.rank())], cfg);
    chunk::Dataset ds;
    (void)dumper.dump_output(ds);
  }),
               std::invalid_argument);
}

TEST(EcDump, LossBeyondParityIsDetected) {
  EcConfig cfg;
  cfg.group_size = 3;
  cfg.parity = 1;
  cfg.chunk_bytes = 256;
  cfg.use_collective_dedup = false;
  // Fully private data: no natural copies to fall back on.
  const auto gen = [](int r) {
    apps::SynthSpec spec;
    spec.chunk_bytes = 256;
    spec.chunks = 8;
    spec.local_dup = 0.0;
    spec.global_shared = 0.0;
    spec.seed = 7 + static_cast<std::uint64_t>(r);
    return apps::synth_dataset(r, 6, spec);
  };
  auto run = run_ec_dump(6, cfg, gen);
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : run.stores) ptrs.push_back(&s);
  run.stores[0].fail();
  run.stores[1].fail();  // two failures in group 0, parity = 1
  EXPECT_THROW((void)core::ec_restore_rank(ptrs, 0, cfg),
               std::runtime_error);
}

}  // namespace
