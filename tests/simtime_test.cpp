// Cost-model unit tests: topology mapping, transfer-time arithmetic,
// clock monotonicity, phase-breakdown algebra.
#include <gtest/gtest.h>

#include "simtime/cluster.hpp"

namespace {

using collrep::sim::ClusterConfig;
using collrep::sim::PhaseBreakdown;
using collrep::sim::SimClock;

TEST(ClusterConfig, NodeMapping) {
  ClusterConfig c;
  c.ranks_per_node = 12;
  EXPECT_EQ(c.node_of(0), 0);
  EXPECT_EQ(c.node_of(11), 0);
  EXPECT_EQ(c.node_of(12), 1);
  EXPECT_EQ(c.node_of(407), 33);
  EXPECT_EQ(c.node_count(408), 34);  // the Shamrock reservation
  EXPECT_EQ(c.node_count(409), 35);
  EXPECT_TRUE(c.same_node(3, 11));
  EXPECT_FALSE(c.same_node(11, 12));
}

TEST(ClusterConfig, DegenerateRanksPerNode) {
  ClusterConfig c;
  c.ranks_per_node = 0;  // treated as 1 (no division by zero)
  EXPECT_EQ(c.node_of(5), 5);
  EXPECT_EQ(c.node_count(4), 4);
}

TEST(ClusterConfig, MessageTimeSplitsByLocality) {
  ClusterConfig c;
  c.ranks_per_node = 2;
  const auto intra = c.message_time(0, 1, 1 << 20);
  const auto inter = c.message_time(0, 2, 1 << 20);
  EXPECT_LT(intra, inter);
  // Both include the latency floor.
  EXPECT_GE(intra, c.net_latency_s);
  // Inter-node: latency + bytes / NIC bandwidth.
  EXPECT_NEAR(inter, c.net_latency_s + (1 << 20) / c.net_bandwidth_bps,
              1e-12);
}

TEST(SimClock, MonotoneUnderAllOperations) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  EXPECT_EQ(clock.now(), 1.5);
  clock.advance(-3.0);  // ignored
  EXPECT_EQ(clock.now(), 1.5);
  clock.at_least(1.0);  // already past
  EXPECT_EQ(clock.now(), 1.5);
  clock.at_least(2.0);
  EXPECT_EQ(clock.now(), 2.0);
  clock.reset();
  EXPECT_EQ(clock.now(), 0.0);
}

TEST(PhaseBreakdown, TotalAndAccumulate) {
  PhaseBreakdown a;
  a.hash_s = 1;
  a.reduction_s = 2;
  a.planning_s = 3;
  a.exchange_s = 4;
  a.storage_s = 5;
  EXPECT_DOUBLE_EQ(a.total(), 15.0);

  PhaseBreakdown b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.total(), 30.0);
  EXPECT_DOUBLE_EQ(b.exchange_s, 8.0);
}

}  // namespace
