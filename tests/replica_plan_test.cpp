// Replica plan builders: per-strategy store/send decisions, the
// round-robin top-up split, discard logic, and designated-target avoidance.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "chunk/dataset.hpp"
#include "core/local_dedup.hpp"
#include "core/planner.hpp"
#include "core/replica_plan.hpp"
#include "hash/hasher.hpp"

namespace {

using namespace collrep;
using core::BoundedFpSet;
using core::plan_collective;
using core::plan_full;
using core::plan_local_dedup;
using core::ShuffleContext;

// Builds a dataset of `pages` pages where page i contains byte pattern
// seed+i, with `dups` of them repeating page 0.
struct Workload {
  explicit Workload(std::size_t pages, std::size_t dups = 0, int seed = 0)
      : bytes(pages * kPage) {
    for (std::size_t p = 0; p < pages; ++p) {
      const std::size_t pattern = p < pages - dups ? p : 0;
      for (std::size_t i = 0; i < kPage; ++i) {
        bytes[p * kPage + i] =
            static_cast<std::uint8_t>(pattern * 17 + i + seed * 101);
      }
    }
    ds.add_segment(bytes);
    chunker.emplace(ds, kPage);
    local = core::local_dedup(*chunker,
                              hash::hasher_for(hash::HashKind::kXx64));
  }

  static constexpr std::size_t kPage = 64;
  std::vector<std::uint8_t> bytes;
  chunk::Dataset ds;
  std::optional<chunk::Chunker> chunker;
  core::LocalDedupResult local;
};

TEST(PlanFull, EveryChunkStoredAndSentEverywhere) {
  const Workload w(8, /*dups=*/3);
  std::vector<std::uint32_t> lengths(8, Workload::kPage);
  const auto plan = plan_full(lengths, /*k=*/3);
  EXPECT_EQ(plan.assignments.size(), 8u);
  for (const auto& a : plan.assignments) {
    EXPECT_TRUE(a.store_local);
    EXPECT_EQ(a.send_slots, (std::vector<std::uint8_t>{1, 2}));
  }
  EXPECT_EQ(plan.load, (std::vector<std::uint64_t>{8, 8, 8}));
  EXPECT_EQ(plan.discarded_chunks, 0u);
  EXPECT_EQ(plan.owned_unique_bytes, 8u * Workload::kPage);
}

TEST(PlanLocalDedup, OnlyUniqueChunksPlanned) {
  const Workload w(8, /*dups=*/3);
  ASSERT_EQ(w.local.unique_chunks.size(), 5u);
  const auto plan = plan_local_dedup(w.local, *w.chunker, 3);
  EXPECT_EQ(plan.assignments.size(), 5u);
  EXPECT_EQ(plan.load, (std::vector<std::uint64_t>{5, 5, 5}));
  EXPECT_EQ(plan.owned_unique_bytes, 5u * Workload::kPage);
}

TEST(PlanLocalDedup, KOneMeansNoSends) {
  const Workload w(4);
  const auto plan = plan_local_dedup(w.local, *w.chunker, 1);
  EXPECT_EQ(plan.load, (std::vector<std::uint64_t>{4}));
  for (const auto& a : plan.assignments) EXPECT_TRUE(a.send_slots.empty());
}

class PlanCollectiveTest : public ::testing::Test {
 protected:
  static constexpr int kRanks = 4;
  static constexpr int kK = 3;

  // Global view where `holders` ranks are designated for the fingerprint
  // of w's unique chunk `u`.
  static BoundedFpSet view_with(const Workload& w, std::size_t u,
                                std::initializer_list<int> holders) {
    const auto& fp = w.local.chunk_fps[w.local.unique_chunks[u]];
    bool first = true;
    BoundedFpSet acc(1024, kK, kRanks);
    for (int h : holders) {
      BoundedFpSet leaf(1024, kK, kRanks);
      leaf.add_local(fp, h);
      if (first) {
        acc = std::move(leaf);
        first = false;
      } else {
        acc.merge_from(std::move(leaf));
      }
    }
    return acc;
  }
};

TEST_F(PlanCollectiveTest, UnknownFingerprintsReplicatedKMinus1Times) {
  const Workload w(4);
  const BoundedFpSet empty_view(1024, kK, kRanks);
  const auto plan =
      plan_collective(w.local, *w.chunker, empty_view, 0, kK, nullptr);
  EXPECT_EQ(plan.assignments.size(), 4u);
  for (const auto& a : plan.assignments) {
    EXPECT_TRUE(a.store_local);
    EXPECT_EQ(a.send_slots.size(), static_cast<std::size_t>(kK - 1));
  }
  EXPECT_EQ(plan.discarded_chunks, 0u);
}

TEST_F(PlanCollectiveTest, NonDesignatedHolderDiscards) {
  const Workload w(1);
  // Ranks 1, 2, 3 are designated (D == K); rank 0 also holds the chunk.
  const auto view = view_with(w, 0, {1, 2, 3});
  const auto plan = plan_collective(w.local, *w.chunker, view, 0, kK, nullptr);
  EXPECT_TRUE(plan.assignments.empty());
  EXPECT_EQ(plan.discarded_chunks, 1u);
  EXPECT_EQ(plan.discarded_bytes, Workload::kPage);
  EXPECT_EQ(plan.owned_unique_bytes, 0u);
}

TEST_F(PlanCollectiveTest, DesignatedWithFullCoverSendsNothing) {
  const Workload w(1);
  const auto view = view_with(w, 0, {0, 1, 2});
  const auto plan = plan_collective(w.local, *w.chunker, view, 0, kK, nullptr);
  ASSERT_EQ(plan.assignments.size(), 1u);
  EXPECT_TRUE(plan.assignments[0].store_local);
  EXPECT_TRUE(plan.assignments[0].send_slots.empty());
  // First designated rank owns the unique bytes.
  EXPECT_EQ(plan.owned_unique_bytes, Workload::kPage);
}

TEST_F(PlanCollectiveTest, RoundRobinTopUpSplitsExtras) {
  const Workload w(1);
  // D = 2 designated (ranks 0 and 2), K = 3: one extra replica needed;
  // the round-robin assigns extra t=0 to designated index 0 (rank 0).
  const auto view = view_with(w, 0, {0, 2});
  const auto plan0 = plan_collective(w.local, *w.chunker, view, 0, kK, nullptr);
  ASSERT_EQ(plan0.assignments.size(), 1u);
  EXPECT_EQ(plan0.assignments[0].send_slots, std::vector<std::uint8_t>{1});

  const auto plan2 = plan_collective(w.local, *w.chunker, view, 2, kK, nullptr);
  ASSERT_EQ(plan2.assignments.size(), 1u);
  EXPECT_TRUE(plan2.assignments[0].send_slots.empty());
  // Owner is the first designated rank only.
  EXPECT_EQ(plan0.owned_unique_bytes, Workload::kPage);
  EXPECT_EQ(plan2.owned_unique_bytes, 0u);
}

TEST_F(PlanCollectiveTest, SingleDesignatedSendsKMinusOne) {
  const Workload w(1);
  const auto view = view_with(w, 0, {1});
  const auto plan = plan_collective(w.local, *w.chunker, view, 1, kK, nullptr);
  ASSERT_EQ(plan.assignments.size(), 1u);
  EXPECT_EQ(plan.assignments[0].send_slots,
            (std::vector<std::uint8_t>{1, 2}));
}

TEST_F(PlanCollectiveTest, AvoidanceSteersAwayFromDesignatedPartner) {
  const Workload w(1);
  // Designated: ranks 0 and 1 (D=2, one extra).  With the identity ring,
  // rank 0's slot-1 partner is rank 1 — itself designated.  The avoidance
  // pass must pick slot 2 (rank 2) instead.
  const auto view = view_with(w, 0, {0, 1});
  const auto shuffle = core::identity_shuffle(kRanks);
  const auto pos = core::invert_shuffle(shuffle);
  const ShuffleContext ctx{shuffle, pos};

  const auto naive = plan_collective(w.local, *w.chunker, view, 0, kK, nullptr);
  ASSERT_EQ(naive.assignments[0].send_slots, std::vector<std::uint8_t>{1});

  const auto avoided = plan_collective(w.local, *w.chunker, view, 0, kK, &ctx);
  ASSERT_EQ(avoided.assignments[0].send_slots, std::vector<std::uint8_t>{2});
  EXPECT_EQ(avoided.skip_fallbacks, 0u);
}

TEST_F(PlanCollectiveTest, AvoidanceWorksInMinimalRing) {
  const Workload w(1);
  // Three ranks, K=3, designated {0, 1}: rank 0's slot-1 partner is
  // designated, slot 2 is clean and must be chosen.
  BoundedFpSet view3(1024, 3, 3);
  const auto& fp = w.local.chunk_fps[w.local.unique_chunks[0]];
  BoundedFpSet l0(1024, 3, 3);
  l0.add_local(fp, 0);
  BoundedFpSet l1(1024, 3, 3);
  l1.add_local(fp, 1);
  l0.merge_from(std::move(l1));  // D = 2, extras = 1

  const auto shuffle = core::identity_shuffle(3);
  const auto pos = core::invert_shuffle(shuffle);
  const ShuffleContext ctx{shuffle, pos};
  const auto plan = plan_collective(w.local, *w.chunker, l0, 0, 3, &ctx);
  ASSERT_EQ(plan.assignments.size(), 1u);
  // Partner slot 1 -> rank 1 (designated), slot 2 -> rank 2 (clean).
  EXPECT_EQ(plan.assignments[0].send_slots, std::vector<std::uint8_t>{2});
}

TEST_F(PlanCollectiveTest, LoadVectorMatchesAssignments) {
  const Workload w(6, /*dups=*/1);
  const auto view = view_with(w, 0, {0, 1});
  const auto plan = plan_collective(w.local, *w.chunker, view, 0, kK, nullptr);
  std::vector<std::uint64_t> counted(kK, 0);
  for (const auto& a : plan.assignments) {
    if (a.store_local) ++counted[0];
    for (const auto p : a.send_slots) ++counted[p];
  }
  EXPECT_EQ(plan.load, counted);
}

}  // namespace
