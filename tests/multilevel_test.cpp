// Multi-level checkpointing: PFS store semantics, aggregate-bandwidth
// timing (the paper's motivation), level schedule, and cross-level
// restore preference/fallback.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/rng.hpp"
#include "core/collrep.hpp"
#include "ftrt/multilevel.hpp"

namespace {

using namespace collrep;
using ftrt::CheckpointLevel;
using ftrt::MultiLevelCheckpoint;
using ftrt::MultiLevelConfig;
using ftrt::PfsStore;
using ftrt::TrackedArena;

std::vector<std::uint8_t> rank_data(int rank, std::size_t bytes) {
  std::vector<std::uint8_t> data(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 31 * (rank + 1));
  }
  return data;
}

TEST(PfsStoreTest, ContentAddressedAcrossRanks) {
  PfsStore pfs;
  const std::vector<std::uint8_t> payload(64, 0xAC);
  EXPECT_TRUE(pfs.put(hash::Fingerprint::from_u64(1), payload));
  EXPECT_FALSE(pfs.put(hash::Fingerprint::from_u64(1), payload));
  EXPECT_EQ(pfs.stored_bytes(), 64u);
  ASSERT_TRUE(pfs.get(hash::Fingerprint::from_u64(1)).has_value());
  EXPECT_FALSE(pfs.get(hash::Fingerprint::from_u64(2)).has_value());
}

TEST(PfsDump, RoundTripsThroughSharedStore) {
  constexpr int kRanks = 4;
  PfsStore pfs;
  std::vector<std::vector<std::uint8_t>> originals(kRanks);
  simmpi::Runtime rt(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    originals[static_cast<std::size_t>(r)] = rank_data(r, 2048);
    chunk::Dataset ds;
    ds.add_segment(originals[static_cast<std::size_t>(r)]);
    const auto stats =
        ftrt::pfs_dump(comm, pfs, ds, 256, hash::HashKind::kSha1, 1);
    EXPECT_GT(stats.total_time_s, 0.0);
  });
  for (int r = 0; r < kRanks; ++r) {
    const auto restored = ftrt::pfs_restore(pfs, r);
    EXPECT_EQ(restored.segments.at(0), originals[static_cast<std::size_t>(r)]);
  }
}

TEST(PfsDump, AggregateBandwidthDoesNotScale) {
  // The motivating effect: doubling the rank count roughly doubles the
  // PFS dump time (one shared ingest pipe), whereas partner replication
  // keeps per-node resources.
  const auto pfs_time = [](int nranks) {
    PfsStore pfs;
    double time = 0.0;
    simmpi::Runtime rt(nranks);
    rt.run([&](simmpi::Comm& comm) {
      // Incompressible per-rank payload (dedup must not shrink it).
      std::vector<std::uint8_t> data(64 * 1024);
      apps::SplitMix64 rng(1000 + static_cast<std::uint64_t>(comm.rank()));
      rng.fill(data);
      chunk::Dataset ds;
      ds.add_segment(data);
      const auto stats =
          ftrt::pfs_dump(comm, pfs, ds, 512, hash::HashKind::kXx64, 1);
      if (comm.rank() == 0) time = stats.total_time_s;
    });
    return time;
  };
  const double t8 = pfs_time(8);
  const double t16 = pfs_time(16);
  // Fixed costs (request latency, per-rank hashing) are identical in the
  // two runs; the extra ingest time must match the extra bytes over the
  // shared pipe: 8 more ranks x 64 KiB / 2 GB/s.
  const double expected_delta =
      8.0 * 64 * 1024 / PfsStore::Model{}.aggregate_write_bps;
  EXPECT_GT(t16 - t8, 0.8 * expected_delta);
  // Allow ~1 ms on top for the log(N) growth of barrier/allreduce latency.
  EXPECT_LT(t16 - t8, expected_delta + 1e-3);
}

TEST(MultiLevel, ScheduleFiresHighestDueLevel) {
  constexpr int kRanks = 4;
  PfsStore pfs;
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<int> l1(kRanks, 0), l2(kRanks, 0), l3(kRanks, 0);
  simmpi::Runtime rt(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    TrackedArena arena(256, 16);
    auto region = arena.allocate(1024);
    std::memset(region.data(), r + 1, region.size());

    MultiLevelConfig cfg;
    cfg.dump.chunk_bytes = 256;
    cfg.replication_factor = 2;
    cfg.l1_interval = 5;
    cfg.l2_interval = 20;
    cfg.l3_interval = 60;
    MultiLevelCheckpoint ml(comm, stores[static_cast<std::size_t>(r)], pfs,
                            arena, cfg);
    for (int iter = 1; iter <= 60; ++iter) {
      const auto stats = ml.maybe_checkpoint(iter);
      switch (stats.level) {
        case CheckpointLevel::kL1:
          ++l1[static_cast<std::size_t>(r)];
          break;
        case CheckpointLevel::kL2:
          ++l2[static_cast<std::size_t>(r)];
          break;
        case CheckpointLevel::kL3:
          ++l3[static_cast<std::size_t>(r)];
          break;
        case CheckpointLevel::kNone:
          break;
      }
    }
  });
  // 60 iterations: L1 at 5,10,...,55 minus the L2/L3 overlaps; L2 at
  // 20, 40; L3 at 60.
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(l1[static_cast<std::size_t>(r)], 9);
    EXPECT_EQ(l2[static_cast<std::size_t>(r)], 2);
    EXPECT_EQ(l3[static_cast<std::size_t>(r)], 1);
  }
}

TEST(MultiLevel, RestoreFallsBackAcrossLevels) {
  constexpr int kRanks = 4;
  PfsStore pfs;
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<std::vector<std::uint8_t>> images(kRanks);

  simmpi::Runtime rt(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    TrackedArena arena(256, 16);
    auto region = arena.allocate(2048);
    for (std::size_t i = 0; i < region.size(); ++i) {
      region[i] = static_cast<std::uint8_t>(i * 11 + 101 * (r + 1));
    }
    MultiLevelConfig cfg;
    cfg.dump.chunk_bytes = 256;
    cfg.replication_factor = 2;
    cfg.l1_interval = 1;
    cfg.l2_interval = 2;
    cfg.l3_interval = 3;
    MultiLevelCheckpoint ml(comm, stores[static_cast<std::size_t>(r)], pfs,
                            arena, cfg);
    for (int iter = 1; iter <= 3; ++iter) (void)ml.maybe_checkpoint(iter);
    images[static_cast<std::size_t>(r)].assign(region.begin(), region.end());

    std::vector<chunk::ChunkStore*> ptrs;
    for (auto& s : stores) ptrs.push_back(&s);
    // Level 1/2 healthy: restore serves from replication.
    const auto healthy = ml.restore_latest(ptrs);
    EXPECT_EQ(healthy.segments.at(0), images[static_cast<std::size_t>(r)]);
    comm.barrier();
    // Catastrophe: every local store dies; only the PFS survives.
    if (r == 0) {
      for (auto* s : ptrs) s->fail();
    }
    comm.barrier();
    const auto from_pfs = ml.restore_latest(ptrs);
    EXPECT_EQ(from_pfs.segments.at(0), images[static_cast<std::size_t>(r)]);
  });
}

}  // namespace
