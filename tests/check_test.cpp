// Runtime-verification layer (src/check): every violation class —
// mismatched collectives, puts outside an access epoch, overlapping puts
// from different ranks, point-to-point message leaks, and stuck ranks —
// must be detected with rank and call-site attribution, and clean
// programs (including the real dump pipeline) must stay violation-free.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "core/collrep.hpp"
#include "obs/telemetry.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"

namespace {

using namespace collrep;

simmpi::Runtime checked_runtime(int nranks, check::Checker& checker) {
  simmpi::RuntimeOptions opts;
  opts.checker = &checker;
  return simmpi::Runtime(nranks, opts);
}

// Violations thrown on a rank land back at Runtime::run(); every test on
// the abort path asserts on both the thrown error and the recorded log.
check::Violation run_expecting_violation(simmpi::Runtime& rt,
                                         const check::Checker& checker,
                                         check::ViolationKind kind,
                                         const std::function<void(simmpi::Comm&)>& body) {
  bool threw = false;
  try {
    rt.run(body);
  } catch (const check::ViolationError& e) {
    threw = true;
    EXPECT_EQ(e.violation().kind, kind) << e.what();
  }
  EXPECT_TRUE(threw) << "expected a " << check::to_string(kind) << " violation";
  const auto log = checker.violations();
  EXPECT_FALSE(log.empty());
  return log.empty() ? check::Violation{} : log.front();
}

TEST(Checker, CleanMixedProgramHasNoViolations) {
  check::Checker checker;
  auto rt = checked_runtime(4, checker);
  rt.run([&](simmpi::Comm& comm) {
    comm.barrier();
    const int sum = simmpi::allreduce_sum(comm, comm.rank());
    EXPECT_EQ(sum, 6);
    int v = comm.rank() == 1 ? 41 : 0;
    simmpi::bcast(comm, v, 1);
    EXPECT_EQ(v, 41);
    if (comm.rank() == 0) comm.send_value(2, 9, 1.5);
    if (comm.rank() == 2) {
      EXPECT_EQ(comm.recv_value<double>(0, 9), 1.5);
    }
    auto win = comm.win_create(32);
    const std::vector<std::uint8_t> mine(
        8, static_cast<std::uint8_t>(comm.rank()));
    win.put((comm.rank() + 1) % comm.size(),
            static_cast<std::size_t>(comm.rank()) * 8, mine);
    win.fence();
    win.put((comm.rank() + 2) % comm.size(),
            static_cast<std::size_t>(comm.rank()) * 8, mine);
    win.fence(simmpi::kFenceNoSucceed);
    win.free();
  });
  EXPECT_EQ(checker.violation_count(), 0u);
  EXPECT_GT(checker.collectives_checked(), 0u);
  EXPECT_GT(checker.puts_checked(), 0u);
}

TEST(Checker, CleanDumpPipelineHasNoViolations) {
  constexpr int kRanks = 4;
  check::Checker checker;
  auto rt = checked_runtime(kRanks, checker);
  std::vector<chunk::ChunkStore> stores;
  for (int r = 0; r < kRanks; ++r) {
    stores.emplace_back(chunk::StoreMode::kPayload);
  }
  rt.run([&](simmpi::Comm& comm) {
    std::vector<std::uint8_t> data(16 * 4096);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(
          (static_cast<std::size_t>(comm.rank()) * 131 + i) * 7);
    }
    chunk::Dataset ds;
    ds.add_segment(data);
    core::DumpConfig cfg;
    cfg.chunk_bytes = 4096;
    core::Dumper dumper(comm, stores[static_cast<std::size_t>(comm.rank())],
                        cfg);
    const auto stats = dumper.dump_output(ds, 2);
    EXPECT_EQ(stats.k_achieved_min, 2);
  });
  EXPECT_EQ(checker.violation_count(), 0u) << [&] {
    std::string all;
    for (const auto& v : checker.violations()) all += v.to_string() + "\n";
    return all;
  }();
  EXPECT_GT(checker.collectives_checked(), 0u);
  EXPECT_GT(checker.puts_checked(), 0u);
}

TEST(Checker, DetectsMismatchedCollectiveKind) {
  check::Checker checker;
  auto rt = checked_runtime(4, checker);
  const auto v = run_expecting_violation(
      rt, checker, check::ViolationKind::kCollectiveMismatch,
      [](simmpi::Comm& comm) {
        comm.barrier();  // seq 0: matches everywhere
        // collcheck:allow(CC-SCHED-DIV) — divergence is the fixture
        if (comm.rank() == 1) {
          // seq 1 diverges on purpose — collcheck:allow(CC-COLL-DIV)
          (void)simmpi::allreduce_sum(comm, comm.rank());
        } else {
          int value = 7;
          simmpi::bcast(comm, value, 0);  // collcheck:allow(CC-COLL-DIV)
        }
      });
  EXPECT_EQ(v.seq, 1u);
  // One side is the depositing rank, the other the divergent one; both
  // operations and both call sites must appear in the diagnosis.
  EXPECT_NE(v.detail.find("allreduce"), std::string::npos) << v.detail;
  EXPECT_NE(v.detail.find("bcast"), std::string::npos) << v.detail;
  EXPECT_NE(v.site.find("check_test.cpp"), std::string::npos) << v.site;
  EXPECT_NE(v.other_site.find("check_test.cpp"), std::string::npos)
      << v.other_site;
  EXPECT_TRUE(v.rank == 1 || v.other_rank == 1);
}

TEST(Checker, DetectsRootMismatch) {
  check::Checker checker;
  auto rt = checked_runtime(4, checker);
  const auto v = run_expecting_violation(
      rt, checker, check::ViolationKind::kCollectiveMismatch,
      [](simmpi::Comm& comm) {
        int value = 3;
        simmpi::bcast(comm, value, comm.rank() < 2 ? 0 : 1);
      });
  EXPECT_NE(v.detail.find("root="), std::string::npos) << v.detail;
}

TEST(Checker, DetectsPayloadTypeMismatch) {
  check::Checker checker;
  auto rt = checked_runtime(2, checker);
  const auto v = run_expecting_violation(
      rt, checker, check::ViolationKind::kCollectiveMismatch,
      [](simmpi::Comm& comm) {
        if (comm.rank() == 0) {
          int value = 1;
          simmpi::bcast(comm, value, 0);  // collcheck:allow(CC-COLL-DIV)
        } else {
          double value = 1.0;
          simmpi::bcast(comm, value, 0);  // collcheck:allow(CC-COLL-DIV)
        }
      });
  EXPECT_NE(v.detail.find("type="), std::string::npos) << v.detail;
}

TEST(Checker, DetectsPutAfterNoSucceedFence) {
  check::Checker checker;
  auto rt = checked_runtime(3, checker);
  const auto v = run_expecting_violation(
      rt, checker, check::ViolationKind::kEpochViolation,
      [](simmpi::Comm& comm) {
        auto win = comm.win_create(16);
        const std::vector<std::uint8_t> data(4, 0xAB);
        win.put((comm.rank() + 1) % comm.size(), 0, data);
        win.fence(simmpi::kFenceNoSucceed);  // access epoch closes here
        // ... so this put is illegal — collcheck:allow(CC-RMA-NOSUCCEED)
        if (comm.rank() == 0) win.put(1, 4, data);
        win.free();
      });
  EXPECT_EQ(v.rank, 0);
  EXPECT_NE(v.detail.find("no open access epoch"), std::string::npos)
      << v.detail;
  EXPECT_NE(v.site.find("check_test.cpp"), std::string::npos) << v.site;
}

TEST(Checker, PlainFenceReopensTheEpoch) {
  check::Checker checker;
  auto rt = checked_runtime(3, checker);
  rt.run([](simmpi::Comm& comm) {
    auto win = comm.win_create(16);
    const std::vector<std::uint8_t> data(4, 0xCD);
    win.put((comm.rank() + 1) % comm.size(), 0, data);
    win.fence();  // next epoch opens immediately
    win.put((comm.rank() + 1) % comm.size(), 8, data);
    win.fence(simmpi::kFenceNoSucceed);
    win.free();
  });
  EXPECT_EQ(checker.violation_count(), 0u);
}

TEST(Checker, DetectsOverlappingPutsFromDifferentRanks) {
  check::CheckerConfig cfg;
  cfg.abort_on_violation = false;  // collect, don't kill the run
  check::Checker checker(cfg);
  auto rt = checked_runtime(4, checker);
  rt.run([](simmpi::Comm& comm) {
    auto win = comm.win_create(16);
    const std::vector<std::uint8_t> data(8, 0x11);
    // Ranks 0 and 1 write intersecting ranges of rank 2's region in the
    // same epoch: real MPI makes the outcome last-writer-wins races.
    if (comm.rank() == 0) win.put(2, 0, data);
    if (comm.rank() == 1) win.put(2, 4, data);
    // Same-rank overlap is legal (deterministic on one origin thread).
    if (comm.rank() == 3) {
      win.put(3, 0, data);
      win.put(3, 0, data);
    }
    win.fence();
    win.free();
  });
  const auto log = checker.violations();
  ASSERT_EQ(log.size(), 1u);
  const auto& v = log.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kOverlappingPut);
  EXPECT_TRUE((v.rank == 0 && v.other_rank == 1) ||
              (v.rank == 1 && v.other_rank == 0))
      << v.detail;
  EXPECT_NE(v.detail.find("overlapping"), std::string::npos) << v.detail;
  EXPECT_NE(v.site.find("check_test.cpp"), std::string::npos) << v.site;
  EXPECT_NE(v.other_site.find("check_test.cpp"), std::string::npos)
      << v.other_site;
}

TEST(Checker, OverlapTrackingResetsAcrossEpochs) {
  check::Checker checker;
  auto rt = checked_runtime(2, checker);
  rt.run([](simmpi::Comm& comm) {
    auto win = comm.win_create(16);
    const std::vector<std::uint8_t> data(8, 0x22);
    // The same range written by different ranks in *different* epochs is
    // well-defined (the fence orders them); only same-epoch overlap races.
    if (comm.rank() == 0) win.put(0, 0, data);
    win.fence();
    if (comm.rank() == 1) win.put(0, 0, data);
    win.fence();
    win.free();
  });
  EXPECT_EQ(checker.violation_count(), 0u);
}

TEST(Checker, DetectsMessageLeakAtFinalize) {
  check::Checker checker;
  auto rt = checked_runtime(2, checker);
  const auto v = run_expecting_violation(
      rt, checker, check::ViolationKind::kMessageLeak,
      [](simmpi::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value(1, 7, 1);
          comm.send_value(1, 7, 2);
        }
        if (comm.rank() == 1) {
          EXPECT_EQ(comm.recv_value<int>(0, 7), 1);  // second one never read
        }
        comm.barrier();
      });
  EXPECT_NE(v.detail.find("0->1 tag 7 (1)"), std::string::npos) << v.detail;
}

TEST(Checker, WatchdogConvertsDeadlockIntoStuckReport) {
  check::CheckerConfig cfg;
  cfg.watchdog_s = 0.3;
  check::Checker checker(cfg);
  auto rt = checked_runtime(3, checker);
  const auto v = run_expecting_violation(
      rt, checker, check::ViolationKind::kStuckRanks,
      [](simmpi::Comm& comm) {
        // Rank 0 "forgets" the barrier: ranks 1 and 2 would hang forever.
        if (comm.rank() != 0) comm.barrier();  // collcheck:allow(CC-COLL-DIV,CC-SCHED-DIV)
      });
  EXPECT_NE(v.detail.find("rank 0"), std::string::npos) << v.detail;
  EXPECT_NE(v.detail.find("inside barrier"), std::string::npos) << v.detail;
  EXPECT_NE(v.detail.find("check_test.cpp"), std::string::npos) << v.detail;
}

TEST(Checker, PublishesVerdictsIntoMetricsRegistry) {
  obs::Telemetry tel;
  check::CheckerConfig cfg;
  cfg.abort_on_violation = false;
  check::Checker checker(cfg);
  checker.attach(&tel);
  simmpi::RuntimeOptions opts;
  opts.checker = &checker;
  opts.telemetry = &tel;
  simmpi::Runtime rt(2, opts);
  rt.run([](simmpi::Comm& comm) {
    (void)simmpi::allreduce_sum(comm, 1);
    if (comm.rank() == 0) comm.send_value(1, 3, 5);  // leaked on purpose
  });
  EXPECT_EQ(tel.metrics().counter("check.runs"), 1u);
  EXPECT_GT(tel.metrics().counter("check.collectives_checked"), 0u);
  EXPECT_EQ(tel.metrics().counter("check.violations"), 1u);
  EXPECT_EQ(tel.metrics().counter("check.violations.message_leak"), 1u);
  ASSERT_EQ(checker.violation_count(), 1u);
  checker.clear();
  EXPECT_EQ(checker.violation_count(), 0u);
}

TEST(Checker, ReusableAcrossRuns) {
  check::Checker checker;
  auto rt = checked_runtime(2, checker);
  for (int i = 0; i < 3; ++i) {
    rt.run([](simmpi::Comm& comm) {
      (void)simmpi::allreduce_sum(comm, comm.rank());
      comm.barrier();
    });
  }
  EXPECT_EQ(checker.violation_count(), 0u);
}

}  // namespace
