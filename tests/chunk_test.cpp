// Chunker, ChunkStore and Manifest semantics, including failure behaviour.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "chunk/dataset.hpp"
#include "chunk/manifest.hpp"
#include "chunk/store.hpp"
#include "hash/fingerprint.hpp"

namespace {

using namespace collrep;
using chunk::Chunker;
using chunk::ChunkStore;
using chunk::Dataset;
using hash::Fingerprint;

std::vector<std::uint8_t> iota_bytes(std::size_t n, std::uint8_t start = 0) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

// -- Chunker -----------------------------------------------------------------

TEST(Chunker, ExactMultiple) {
  const auto data = iota_bytes(1024);
  Dataset ds;
  ds.add_segment(data);
  const Chunker chunker(ds, 256);
  ASSERT_EQ(chunker.count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunker.ref(i).length, 256u);
    EXPECT_EQ(chunker.bytes(i).size(), 256u);
    EXPECT_EQ(chunker.bytes(i)[0], static_cast<std::uint8_t>(i * 256));
  }
}

TEST(Chunker, TailChunkIsShort) {
  const auto data = iota_bytes(1000);
  Dataset ds;
  ds.add_segment(data);
  const Chunker chunker(ds, 256);
  ASSERT_EQ(chunker.count(), 4u);
  EXPECT_EQ(chunker.ref(3).length, 1000u - 3 * 256u);
}

TEST(Chunker, ChunksNeverStraddleSegments) {
  const auto seg_a = iota_bytes(300);
  const auto seg_b = iota_bytes(300, 100);
  Dataset ds;
  ds.add_segment(seg_a);
  ds.add_segment(seg_b);
  const Chunker chunker(ds, 256);
  ASSERT_EQ(chunker.count(), 4u);  // 256+44 | 256+44
  EXPECT_EQ(chunker.ref(0).segment, 0u);
  EXPECT_EQ(chunker.ref(1).length, 44u);
  EXPECT_EQ(chunker.ref(2).segment, 1u);
  EXPECT_EQ(chunker.ref(3).length, 44u);
}

TEST(Chunker, EmptyDataset) {
  Dataset ds;
  const Chunker chunker(ds, 4096);
  EXPECT_EQ(chunker.count(), 0u);
  EXPECT_EQ(ds.total_bytes(), 0u);
}

TEST(Chunker, EmptySegmentContributesNoChunks) {
  Dataset ds;
  ds.add_segment({});
  const auto data = iota_bytes(10);
  ds.add_segment(data);
  const Chunker chunker(ds, 4);
  EXPECT_EQ(chunker.count(), 3u);
}

TEST(Chunker, SingleByteChunks) {
  const auto data = iota_bytes(5);
  Dataset ds;
  ds.add_segment(data);
  const Chunker chunker(ds, 1);
  ASSERT_EQ(chunker.count(), 5u);
  EXPECT_EQ(chunker.bytes(4)[0], 4);
}

TEST(Chunker, ZeroChunkSizeRejected) {
  Dataset ds;
  EXPECT_THROW(Chunker(ds, 0), std::invalid_argument);
}

TEST(Chunker, ChunkLargerThanSegment) {
  const auto data = iota_bytes(100);
  Dataset ds;
  ds.add_segment(data);
  const Chunker chunker(ds, 4096);
  ASSERT_EQ(chunker.count(), 1u);
  EXPECT_EQ(chunker.ref(0).length, 100u);
}

TEST(Dataset, TotalBytesAccumulates) {
  const auto a = iota_bytes(10);
  const auto b = iota_bytes(20);
  Dataset ds;
  ds.add_segment(a);
  ds.add_segment(b);
  EXPECT_EQ(ds.total_bytes(), 30u);
  EXPECT_EQ(ds.segment_count(), 2u);
}

// -- ChunkStore --------------------------------------------------------------

TEST(ChunkStore, PutGetRoundTrip) {
  ChunkStore store;
  const auto payload = iota_bytes(128);
  const auto fp = Fingerprint::from_u64(1);
  EXPECT_TRUE(store.put(fp, payload));
  ASSERT_TRUE(store.get(fp).has_value());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         store.get(fp)->begin()));
  EXPECT_EQ(store.chunk_length(fp), 128u);
}

TEST(ChunkStore, DuplicatePutIsIdempotent) {
  ChunkStore store;
  const auto payload = iota_bytes(64);
  const auto fp = Fingerprint::from_u64(2);
  EXPECT_TRUE(store.put(fp, payload));
  EXPECT_FALSE(store.put(fp, payload));
  EXPECT_EQ(store.chunk_count(), 1u);
  EXPECT_EQ(store.stored_bytes(), 64u);
}

TEST(ChunkStore, MissingChunkReturnsNullopt) {
  ChunkStore store;
  EXPECT_FALSE(store.get(Fingerprint::from_u64(9)).has_value());
  EXPECT_FALSE(store.contains(Fingerprint::from_u64(9)));
  EXPECT_FALSE(store.chunk_length(Fingerprint::from_u64(9)).has_value());
}

TEST(ChunkStore, AccountingModeTracksBytesWithoutPayload) {
  ChunkStore store(chunk::StoreMode::kAccounting);
  EXPECT_TRUE(store.put_accounted(Fingerprint::from_u64(1), 4096));
  EXPECT_FALSE(store.put_accounted(Fingerprint::from_u64(1), 4096));
  EXPECT_EQ(store.stored_bytes(), 4096u);
  EXPECT_TRUE(store.contains(Fingerprint::from_u64(1)));
  EXPECT_THROW((void)store.get(Fingerprint::from_u64(1)), std::logic_error);
}

TEST(ChunkStore, PutAccountedRejectedInPayloadMode) {
  ChunkStore store(chunk::StoreMode::kPayload);
  EXPECT_THROW(store.put_accounted(Fingerprint::from_u64(1), 16),
               std::logic_error);
}

TEST(ChunkStore, AccountingModePutKeepsNoPayload) {
  ChunkStore store(chunk::StoreMode::kAccounting);
  const auto payload = iota_bytes(256);
  EXPECT_TRUE(store.put(Fingerprint::from_u64(3), payload));
  EXPECT_EQ(store.stored_bytes(), 256u);
  EXPECT_THROW((void)store.get(Fingerprint::from_u64(3)), std::logic_error);
}

TEST(ChunkStore, FailedStoreThrowsOnAccess) {
  ChunkStore store;
  const auto payload = iota_bytes(8);
  store.put(Fingerprint::from_u64(1), payload);
  store.fail();
  EXPECT_TRUE(store.failed());
  EXPECT_THROW((void)store.contains(Fingerprint::from_u64(1)),
               chunk::StoreFailedError);
  EXPECT_THROW(store.put(Fingerprint::from_u64(2), payload),
               chunk::StoreFailedError);
  store.recover();
  EXPECT_TRUE(store.contains(Fingerprint::from_u64(1)));  // data survived
}

TEST(ChunkStore, ClearResetsEverything) {
  ChunkStore store;
  const auto payload = iota_bytes(8);
  store.put(Fingerprint::from_u64(1), payload);
  chunk::Manifest m;
  m.owner_rank = 0;
  store.put_manifest(m);
  store.clear();
  EXPECT_EQ(store.chunk_count(), 0u);
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_EQ(store.manifest_for(0), nullptr);
}

// -- Manifests ----------------------------------------------------------------

TEST(ChunkStore, ManifestNewestEpochWins) {
  ChunkStore store;
  chunk::Manifest old_m;
  old_m.owner_rank = 3;
  old_m.epoch = 1;
  old_m.segment_sizes = {100};
  chunk::Manifest new_m;
  new_m.owner_rank = 3;
  new_m.epoch = 2;
  new_m.segment_sizes = {200};

  store.put_manifest(new_m);
  store.put_manifest(old_m);  // stale write must not regress
  const chunk::Manifest* kept = store.manifest_for(3);
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->epoch, 2u);
  EXPECT_EQ(kept->segment_sizes[0], 200u);
}

TEST(ChunkStore, ManifestsPerOwnerAreIndependent) {
  ChunkStore store;
  chunk::Manifest a;
  a.owner_rank = 1;
  chunk::Manifest b;
  b.owner_rank = 2;
  b.epoch = 5;
  store.put_manifest(a);
  store.put_manifest(b);
  const chunk::Manifest* ma = store.manifest_for(1);
  const chunk::Manifest* mb = store.manifest_for(2);
  ASSERT_NE(ma, nullptr);
  ASSERT_NE(mb, nullptr);
  EXPECT_EQ(ma->epoch, 0u);
  EXPECT_EQ(mb->epoch, 5u);
  EXPECT_EQ(store.manifest_for(7), nullptr);
}

}  // namespace
