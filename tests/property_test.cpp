// Randomized end-to-end property sweeps: for arbitrary synthetic workload
// shapes, rank counts, replication factors and strategies, the pipeline
// must uphold its invariants — replication floor, byte conservation,
// restore round-trips under maximal tolerated failures — plus topology
// properties of the node-disjoint repair and corruption detection.
#include <gtest/gtest.h>

#include "apps/rng.hpp"
#include "apps/synth.hpp"
#include "core/planner.hpp"
#include "test_util.hpp"

namespace {

using namespace collrep;

class EndToEndProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndProperty, InvariantsHoldForRandomWorkloads) {
  apps::SplitMix64 rng(GetParam() * 0x9E37u + 17);
  const int nranks = 2 + static_cast<int>(rng.next() % 11);
  const int k = 1 + static_cast<int>(rng.next() % 4);
  const auto strategy =
      static_cast<core::Strategy>(rng.next() % 3);

  apps::SynthSpec spec;
  spec.chunk_bytes = 128 << (rng.next() % 3);  // 128..512
  spec.chunks = 8 + rng.next() % 40;
  spec.local_dup = 0.4 * rng.next_double();
  spec.global_shared = rng.next_double();
  spec.global_pool = 16 + static_cast<std::uint32_t>(rng.next() % 64);
  spec.heavy_rank_fraction = rng.next_double() < 0.5 ? 0.0 : 0.25;
  spec.heavy_multiplier = 3.0;
  spec.seed = GetParam();

  core::DumpConfig cfg;
  cfg.strategy = strategy;
  cfg.chunk_bytes = spec.chunk_bytes;
  cfg.threshold_f = 1u << 10;
  auto run = test::run_dump(nranks, k, cfg, [&](int rank) {
    return apps::synth_dataset(rank, nranks, spec);
  });

  // Conservation: sent == received, globally.
  std::uint64_t sent = 0;
  std::uint64_t recv = 0;
  for (const auto& s : run.stats) {
    sent += s.sent_bytes;
    recv += s.recv_bytes;
  }
  EXPECT_EQ(sent, recv);

  // Replication floor.
  EXPECT_GE(test::min_replica_count(run),
            static_cast<std::size_t>(std::min(k, nranks)));

  // Restore round-trip under the maximal tolerated failure count.
  const int keff = std::min(k, nranks);
  auto ptrs = test::store_ptrs(run);
  int failures = 0;
  apps::SplitMix64 failure_rng(GetParam());
  while (failures < keff - 1) {
    const auto victim = static_cast<std::size_t>(
        failure_rng.next() % static_cast<std::uint64_t>(nranks));
    if (!run.stores[victim].failed()) {
      run.stores[victim].fail();
      ++failures;
    }
  }
  for (int r = 0; r < nranks; ++r) {
    const auto restored = core::restore_rank(ptrs, r);
    ASSERT_EQ(restored.segments.size(), 1u);
    EXPECT_EQ(restored.segments[0], run.datasets[static_cast<std::size_t>(r)])
        << "seed=" << GetParam() << " n=" << nranks << " k=" << k
        << " strategy=" << static_cast<int>(strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

// ---- node-disjoint repair properties ---------------------------------------

class NodeDisjointProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NodeDisjointProperty, NeverIncreasesAndZeroWhenFeasible) {
  apps::SplitMix64 rng(GetParam() * 131);
  const int n = 4 + static_cast<int>(rng.next() % 40);
  const int k = 2 + static_cast<int>(rng.next() % 4);
  sim::ClusterConfig cluster;
  cluster.ranks_per_node = 1 + static_cast<int>(rng.next() % 4);

  // Random starting permutation.
  auto shuffle = core::identity_shuffle(n);
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.next() % static_cast<std::uint64_t>(i + 1));
    std::swap(shuffle[static_cast<std::size_t>(i)], shuffle[j]);
  }

  const int before = core::same_node_partner_count(shuffle, k, cluster);
  const auto repaired = core::make_node_disjoint(shuffle, k, cluster);
  const int after = core::same_node_partner_count(repaired, k, cluster);

  EXPECT_LE(after, before);

  // Still a permutation.
  auto sorted = repaired;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < n; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);

  // With plenty of nodes relative to K and balanced node sizes, the
  // greedy must reach zero (round-robin over nodes is always feasible
  // when every node holds <= n/k ranks).
  const int nodes = cluster.node_count(n);
  const int max_per_node = cluster.ranks_per_node;
  if (nodes >= 2 * k && max_per_node * k <= n) {
    EXPECT_EQ(after, 0) << "n=" << n << " k=" << k
                        << " rpn=" << cluster.ranks_per_node;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeDisjointProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---- corruption / collision detection ---------------------------------------

TEST(Corruption, LengthMismatchDetectedAtRestore) {
  core::DumpConfig cfg;
  cfg.chunk_bytes = 128;
  auto run = test::run_dump(3, 2, cfg, [](int rank) {
    return test::mixed_pages(rank, 6, 128);
  });
  auto ptrs = test::store_ptrs(run);

  // Corrupt every surviving copy of one chunk: replace it with a
  // different-length payload under the same fingerprint (the observable
  // half of a hash collision / torn write).
  const auto* manifest = run.stores[0].manifest_for(0);
  ASSERT_NE(manifest, nullptr);
  const auto fp = manifest->entries[0].fp;
  const std::vector<std::uint8_t> bogus(17, 0xBD);
  for (auto& store : run.stores) {
    if (store.contains(fp)) {
      // Content addressing refuses duplicate puts, so clear + repopulate.
      chunk::ChunkStore rebuilt;
      rebuilt.put(fp, bogus);
      for (int owner = 0; owner < 3; ++owner) {
        if (const auto* m = store.manifest_for(owner)) rebuilt.put_manifest(*m);
      }
      for (int owner = 0; owner < 3; ++owner) {
        const auto* m = store.manifest_for(owner);
        if (m == nullptr) continue;
        for (const auto& e : m->entries) {
          if (e.fp == fp) continue;
          if (const auto p = store.get(e.fp)) rebuilt.put(e.fp, *p);
        }
      }
      store = std::move(rebuilt);
    }
  }
  EXPECT_THROW((void)core::restore_rank(ptrs, 0), std::runtime_error);
}

}  // namespace
