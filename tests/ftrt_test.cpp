// ftrt substrate: page-tracking arena, checkpoint runtime schedule and
// epochs, failure injection, and arena-backed restore round trips.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/collrep.hpp"
#include "ftrt/checkpoint.hpp"
#include "ftrt/tracked_arena.hpp"

namespace {

using namespace collrep;
using ftrt::CheckpointConfig;
using ftrt::CheckpointRuntime;
using ftrt::FailureInjector;
using ftrt::TrackedArena;

// -- TrackedArena --------------------------------------------------------------

TEST(TrackedArena, AllocationIsPageGranularAndZeroed) {
  TrackedArena arena(256, 16);
  const auto region = arena.allocate(100);
  EXPECT_EQ(region.size(), 256u);  // rounded up to one page
  for (const auto b : region) EXPECT_EQ(b, 0);
  EXPECT_EQ(arena.live_pages(), 1u);
}

TEST(TrackedArena, TypedArrays) {
  TrackedArena arena(256, 16);
  auto doubles = arena.allocate_array<double>(100);
  EXPECT_EQ(doubles.size(), 100u);
  doubles[99] = 3.5;
  EXPECT_EQ(arena.live_bytes(), 1024u);  // 800 B -> 4 pages of 256
}

TEST(TrackedArena, SnapshotCoalescesAdjacentPages) {
  TrackedArena arena(256, 16);
  (void)arena.allocate(256 * 3);
  (void)arena.allocate(256);
  const auto ds = arena.snapshot();
  ASSERT_EQ(ds.segment_count(), 1u);  // both runs are contiguous
  EXPECT_EQ(ds.total_bytes(), 256u * 4);
}

TEST(TrackedArena, DeallocateSplitsSnapshot) {
  TrackedArena arena(256, 16);
  const auto a = arena.allocate(256);
  const auto b = arena.allocate(256);
  const auto c = arena.allocate(256);
  (void)a;
  (void)c;
  arena.deallocate(b);
  const auto ds = arena.snapshot();
  EXPECT_EQ(ds.segment_count(), 2u);
  EXPECT_EQ(ds.total_bytes(), 512u);
  EXPECT_EQ(arena.live_pages(), 2u);
}

TEST(TrackedArena, FreedPagesAreReused) {
  TrackedArena arena(256, 4);
  const auto a = arena.allocate(256 * 2);
  arena.deallocate(a);
  const auto b = arena.allocate(256 * 2);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(arena.live_pages(), 2u);
}

TEST(TrackedArena, OversizedAllocationGetsDedicatedBlock) {
  TrackedArena arena(256, 4);  // block = 1 KiB
  const auto big = arena.allocate(256 * 10);
  EXPECT_EQ(big.size(), 2560u);
  EXPECT_EQ(arena.live_pages(), 10u);
}

TEST(TrackedArena, DoubleFreeDetected) {
  TrackedArena arena(256, 4);
  const auto a = arena.allocate(256);
  arena.deallocate(a);
  EXPECT_THROW(arena.deallocate(a), std::invalid_argument);
}

TEST(TrackedArena, ForeignRegionRejected) {
  TrackedArena arena(256, 4);
  std::vector<std::uint8_t> foreign(256);
  EXPECT_THROW(arena.deallocate(foreign), std::invalid_argument);
}

TEST(TrackedArena, SnapshotSeesMutations) {
  TrackedArena arena(256, 4);
  auto region = arena.allocate(256);
  region[7] = 0xAB;
  const auto ds = arena.snapshot();
  EXPECT_EQ(ds.segment(0)[7], 0xAB);  // zero-copy view of live memory
}

// -- CheckpointRuntime -----------------------------------------------------------

CheckpointConfig test_ckpt_config(int k, int interval, int first = 0) {
  CheckpointConfig cfg;
  cfg.dump.chunk_bytes = 256;
  cfg.dump.threshold_f = 1u << 10;
  cfg.replication_factor = k;
  cfg.interval = interval;
  cfg.first_iteration = first;
  return cfg;
}

TEST(CheckpointRuntime, ScheduleFiresAtInterval) {
  constexpr int kRanks = 3;
  simmpi::Runtime rt(kRanks);
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<int> fired(kRanks, 0);
  rt.run([&](simmpi::Comm& comm) {
    TrackedArena arena(256, 16);
    auto data = arena.allocate(256 * 4);
    std::memset(data.data(), comm.rank() + 1, data.size());
    CheckpointRuntime ckpt(comm, stores[static_cast<std::size_t>(comm.rank())],
                           arena, test_ckpt_config(2, 10, 5));
    for (int iter = 0; iter < 30; ++iter) {
      if (ckpt.maybe_checkpoint(iter)) {
        ++fired[static_cast<std::size_t>(comm.rank())];
      }
    }
    EXPECT_EQ(ckpt.checkpoints_taken(), 3u);  // iterations 5, 15, 25
  });
  for (const auto f : fired) EXPECT_EQ(f, 3);
}

TEST(CheckpointRuntime, DisabledScheduleNeverFires) {
  simmpi::Runtime rt(2);
  std::vector<chunk::ChunkStore> stores(2);
  rt.run([&](simmpi::Comm& comm) {
    TrackedArena arena(256, 16);
    (void)arena.allocate(256);
    CheckpointRuntime ckpt(comm, stores[static_cast<std::size_t>(comm.rank())],
                           arena, test_ckpt_config(2, 0));
    for (int iter = 0; iter < 10; ++iter) {
      EXPECT_FALSE(ckpt.maybe_checkpoint(iter).has_value());
    }
  });
}

TEST(CheckpointRuntime, LatestEpochWinsOnRestore) {
  constexpr int kRanks = 4;
  simmpi::Runtime rt(kRanks);
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<std::vector<std::uint8_t>> finals(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    TrackedArena arena(256, 16);
    auto region = arena.allocate(256 * 2);
    CheckpointRuntime ckpt(comm, stores[static_cast<std::size_t>(r)], arena,
                           test_ckpt_config(3, 0));
    std::memset(region.data(), 0x11 + r, region.size());
    (void)ckpt.checkpoint_now();
    // Mutate and checkpoint again: restore must see the newer image.
    std::memset(region.data(), 0x77 + r, region.size());
    (void)ckpt.checkpoint_now();
    finals[static_cast<std::size_t>(r)].assign(region.begin(), region.end());
  });
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  for (int r = 0; r < kRanks; ++r) {
    const auto restored = core::restore_rank(ptrs, r);
    EXPECT_EQ(restored.segments[0], finals[static_cast<std::size_t>(r)]);
  }
}

TEST(CheckpointRuntime, RestartAfterInjectedFailures) {
  constexpr int kRanks = 6;
  constexpr int kK = 3;
  simmpi::Runtime rt(kRanks);
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<std::vector<std::uint8_t>> images(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    TrackedArena arena(256, 16);
    auto region = arena.allocate(256 * 8);
    // Shared + rank-private pages.
    for (std::size_t i = 0; i < region.size(); ++i) {
      region[i] = static_cast<std::uint8_t>(
          (i / 256) % 2 == 0 ? i * 3 : i * 3 + 101 * (r + 1));
    }
    CheckpointRuntime ckpt(comm, stores[static_cast<std::size_t>(r)], arena,
                           test_ckpt_config(kK, 0));
    (void)ckpt.checkpoint_now();
    images[static_cast<std::size_t>(r)].assign(region.begin(), region.end());
  });

  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  FailureInjector injector(2026);
  const auto victims = injector.kill_stores(ptrs, kK - 1);
  EXPECT_EQ(victims.size(), static_cast<std::size_t>(kK - 1));

  for (int r = 0; r < kRanks; ++r) {
    const auto restored = core::restore_rank(ptrs, r);
    EXPECT_EQ(restored.segments[0], images[static_cast<std::size_t>(r)]);
  }

  FailureInjector::heal_all(ptrs);
  for (const auto* s : ptrs) EXPECT_FALSE(s->failed());
}

TEST(CheckpointRuntime, TooManyFailuresIsDetectedNotSilent) {
  constexpr int kRanks = 4;
  simmpi::Runtime rt(kRanks);
  std::vector<chunk::ChunkStore> stores(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    TrackedArena arena(256, 16);
    auto region = arena.allocate(256 * 4);
    // Fully rank-private data: exactly K=2 copies exist.
    for (std::size_t i = 0; i < region.size(); ++i) {
      region[i] = static_cast<std::uint8_t>(i * 7 + 13 * (r + 1));
    }
    CheckpointRuntime ckpt(comm, stores[static_cast<std::size_t>(r)], arena,
                           test_ckpt_config(2, 0));
    (void)ckpt.checkpoint_now();
  });
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  // Kill every store holding rank 0's data (own + one partner): K = 2
  // tolerates 1 failure, so 4-of-4 failures must throw, not fabricate.
  for (auto* s : ptrs) s->fail();
  EXPECT_THROW((void)core::restore_rank(ptrs, 0), core::ManifestLostError);
}

TEST(FailureInjectorTest, KillsDistinctStoresDeterministically) {
  std::vector<chunk::ChunkStore> stores(8);
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  FailureInjector a(7);
  const auto victims_a = a.kill_stores(ptrs, 3);
  EXPECT_EQ(victims_a.size(), 3u);
  std::set<int> uniq(victims_a.begin(), victims_a.end());
  EXPECT_EQ(uniq.size(), 3u);

  FailureInjector::heal_all(ptrs);
  FailureInjector b(7);
  EXPECT_EQ(b.kill_stores(ptrs, 3), victims_a);  // same seed, same victims
}

}  // namespace
