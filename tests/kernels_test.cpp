// Differential tests for the dispatched data-plane kernels (ctest label
// `kernels`): every SIMD variant the CPU can run is checked against the
// always-compiled scalar reference on randomized inputs, including
// unaligned, short, and empty buffers.  The CDC skip-ahead path is checked
// for cut-point identity against the reference loop, and the flat
// BoundedFpSet is checked against a map-based reference model implementing
// the pre-flat merge semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <random>
#include <string_view>
#include <vector>

#include "chunk/cdc.hpp"
#include "core/fingerprint_set.hpp"
#include "hash/fingerprint.hpp"
#include "kernels/kernels.hpp"
#include "simmpi/archive.hpp"

namespace {

using namespace collrep;

std::vector<std::uint8_t> random_bytes(std::mt19937_64& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

// Sizes chosen to straddle every vector width and tail path: empty, single
// byte, around 16/32/64-byte boundaries, and a large odd length.
const std::vector<std::size_t> kSizes = {0,  1,  2,   7,   15,  16,  17,
                                         31, 32, 33,  63,  64,  65,  127,
                                         128, 255, 256, 1000, 4097};

// ---------------------------------------------------------------------------
// GF(256)
// ---------------------------------------------------------------------------

TEST(KernelsGf, VariantsMatchScalarRandomized) {
  const auto variants = kernels::gf_variants();
  ASSERT_FALSE(variants.empty());
  ASSERT_STREQ(variants[0].name, "scalar");
  ASSERT_TRUE(variants[0].available);

  std::mt19937_64 rng(0xC0FFEE01);
  for (const std::size_t size : kSizes) {
    for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                     std::size_t{3}}) {
      // Slack so every (offset, size) view stays in bounds and unaligned.
      const auto in_buf = random_bytes(rng, size + 8);
      const auto out_init = random_bytes(rng, size + 8);
      const std::uint8_t coeffs[] = {0, 1, 2, static_cast<std::uint8_t>(rng()),
                                     static_cast<std::uint8_t>(rng()), 255};
      for (const std::uint8_t coeff : coeffs) {
        std::vector<std::uint8_t> expect_add = out_init;
        std::vector<std::uint8_t> expect_mul = out_init;
        variants[0].mul_add(expect_add.data() + offset, in_buf.data() + offset,
                            size, coeff);
        variants[0].mul(expect_mul.data() + offset, in_buf.data() + offset,
                        size, coeff);
        for (const auto& v : variants.subspan(1)) {
          if (!v.available) continue;
          std::vector<std::uint8_t> got = out_init;
          v.mul_add(got.data() + offset, in_buf.data() + offset, size, coeff);
          EXPECT_EQ(got, expect_add)
              << v.name << " mul_add size=" << size << " off=" << offset
              << " coeff=" << static_cast<int>(coeff);
          got = out_init;
          v.mul(got.data() + offset, in_buf.data() + offset, size, coeff);
          EXPECT_EQ(got, expect_mul)
              << v.name << " mul size=" << size << " off=" << offset
              << " coeff=" << static_cast<int>(coeff);
        }
      }
    }
  }
}

TEST(KernelsGf, ScalarMatchesFieldAxioms) {
  // coeff 0 zeroes (mul) / leaves untouched (mul_add); coeff 1 copies/xors.
  std::mt19937_64 rng(0xC0FFEE02);
  const auto in = random_bytes(rng, 257);
  auto out = random_bytes(rng, 257);
  const auto saved = out;
  const auto& scalar = kernels::gf_variants()[0];

  scalar.mul_add(out.data(), in.data(), out.size(), 0);
  EXPECT_EQ(out, saved);
  scalar.mul(out.data(), in.data(), out.size(), 0);
  EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                          [](std::uint8_t b) { return b == 0; }));
  scalar.mul(out.data(), in.data(), out.size(), 1);
  EXPECT_EQ(out, in);
}

// ---------------------------------------------------------------------------
// CRC-32C
// ---------------------------------------------------------------------------

TEST(KernelsCrc32c, VariantsMatchScalarRandomized) {
  const auto variants = kernels::crc32c_variants();
  ASSERT_FALSE(variants.empty());
  ASSERT_STREQ(variants[0].name, "scalar");

  std::mt19937_64 rng(0xC0FFEE03);
  for (const std::size_t size : kSizes) {
    for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                     std::size_t{5}}) {
      const auto buf = random_bytes(rng, size + 8);
      const std::uint32_t seeds[] = {0, 0xFFFFFFFFu,
                                     static_cast<std::uint32_t>(rng())};
      for (const std::uint32_t seed : seeds) {
        const std::uint32_t expect =
            variants[0].fn(seed, buf.data() + offset, size);
        for (const auto& v : variants.subspan(1)) {
          if (!v.available) continue;
          EXPECT_EQ(v.fn(seed, buf.data() + offset, size), expect)
              << v.name << " size=" << size << " off=" << offset;
        }
      }
    }
  }
}

TEST(KernelsCrc32c, KnownAnswer) {
  // iSCSI check value: CRC-32C("123456789") = 0xE3069283 for every variant.
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  for (const auto& v : kernels::crc32c_variants()) {
    if (!v.available) continue;
    EXPECT_EQ(~v.fn(~0u, msg, sizeof msg), 0xE3069283u) << v.name;
  }
}

// ---------------------------------------------------------------------------
// SHA-1 compression
// ---------------------------------------------------------------------------

TEST(KernelsSha1, VariantsMatchScalarRandomized) {
  const auto variants = kernels::sha1_variants();
  ASSERT_FALSE(variants.empty());
  ASSERT_STREQ(variants[0].name, "scalar");

  std::mt19937_64 rng(0xC0FFEE04);
  for (const std::size_t nblocks : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{7},
                                    std::size_t{16}}) {
    for (const std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
      const auto blocks = random_bytes(rng, nblocks * 64 + 1);
      std::uint32_t init[5];
      for (auto& w : init) w = static_cast<std::uint32_t>(rng());

      std::uint32_t expect[5];
      std::memcpy(expect, init, sizeof expect);
      variants[0].fn(expect, blocks.data() + offset, nblocks);

      for (const auto& v : variants.subspan(1)) {
        if (!v.available) continue;
        std::uint32_t got[5];
        std::memcpy(got, init, sizeof got);
        v.fn(got, blocks.data() + offset, nblocks);
        for (int i = 0; i < 5; ++i) {
          EXPECT_EQ(got[i], expect[i])
              << v.name << " nblocks=" << nblocks << " off=" << offset
              << " word=" << i;
        }
      }
    }
  }
}

TEST(KernelsSha1, BlockPipeliningMatchesBlockAtATime) {
  // One multi-block call must equal a chain of single-block calls.
  std::mt19937_64 rng(0xC0FFEE05);
  const auto blocks = random_bytes(rng, 9 * 64);
  for (const auto& v : kernels::sha1_variants()) {
    if (!v.available) continue;
    std::uint32_t batched[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                0x10325476u, 0xC3D2E1F0u};
    std::uint32_t stepped[5];
    std::memcpy(stepped, batched, sizeof stepped);
    v.fn(batched, blocks.data(), 9);
    for (std::size_t b = 0; b < 9; ++b) {
      v.fn(stepped, blocks.data() + b * 64, 1);
    }
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(batched[i], stepped[i]) << v.name << " word=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// CDC skip-ahead
// ---------------------------------------------------------------------------

TEST(KernelsCdc, SkipAheadIsCutPointIdentical) {
  struct Geometry {
    std::size_t min, avg, max;
  };
  const Geometry geoms[] = {{256, 1024, 4096}, {64, 256, 512}, {1, 8, 16},
                            {16, 16, 16},      {1, 1, 4},      {100, 128, 129}};
  std::mt19937_64 rng(0xC0FFEE06);
  for (const auto& g : geoms) {
    for (int trial = 0; trial < 4; ++trial) {
      // Mixed-entropy data (random + zero runs) across several segments so
      // both content cuts and max_bytes forced cuts occur.
      std::vector<std::vector<std::uint8_t>> segs;
      chunk::Dataset data;
      for (int s = 0; s < 3; ++s) {
        const std::size_t n = rng() % (g.max * 8 + 7);
        auto seg = random_bytes(rng, n);
        if (n > 16 && trial % 2 == 0) {
          std::fill(seg.begin() + static_cast<std::ptrdiff_t>(n / 3),
                    seg.begin() + static_cast<std::ptrdiff_t>(2 * n / 3), 0);
        }
        segs.push_back(std::move(seg));
        data.add_segment(segs.back());
      }

      chunk::CdcParams params;
      params.min_bytes = g.min;
      params.avg_bytes = g.avg;
      params.max_bytes = g.max;
      params.skip_ahead = false;
      const auto reference = chunk::content_defined_refs(data, params);
      params.skip_ahead = true;
      const auto skip = chunk::content_defined_refs(data, params);

      ASSERT_EQ(skip.size(), reference.size())
          << "min=" << g.min << " avg=" << g.avg << " max=" << g.max;
      for (std::size_t i = 0; i < skip.size(); ++i) {
        EXPECT_EQ(skip[i].segment, reference[i].segment) << i;
        EXPECT_EQ(skip[i].offset, reference[i].offset) << i;
        EXPECT_EQ(skip[i].length, reference[i].length) << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// HMERGE planned-merge kernel
// ---------------------------------------------------------------------------

// Naive oracle: two-pointer union/intersection over the key sets.
kernels::HmergeResult hmerge_naive(const std::vector<std::uint64_t>& a,
                                   const std::vector<std::uint64_t>& b,
                                   std::vector<std::uint8_t>& tags) {
  kernels::HmergeResult r{0, 0};
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      tags[r.out_len++] = kernels::kHmergeMatch;
      ++r.matches;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      tags[r.out_len++] = kernels::kHmergeTakeA;
      ++i;
    } else {
      tags[r.out_len++] = kernels::kHmergeTakeB;
      ++j;
    }
  }
  while (i++ < a.size()) tags[r.out_len++] = kernels::kHmergeTakeA;
  while (j++ < b.size()) tags[r.out_len++] = kernels::kHmergeTakeB;
  return r;
}

// Runs every available variant on (a, b) and checks the plan — result
// counts and the full tag string — against the naive oracle.
void check_hmerge(const std::vector<std::uint64_t>& a,
                  const std::vector<std::uint64_t>& b,
                  const std::string& label) {
  const auto variants = kernels::hmerge_variants();
  ASSERT_FALSE(variants.empty());
  ASSERT_STREQ(variants[0].name, "scalar");
  ASSERT_TRUE(variants[0].available);

  std::vector<std::uint8_t> want_tags(a.size() + b.size() + 1, 0xAA);
  const auto want = hmerge_naive(a, b, want_tags);
  ASSERT_EQ(want.out_len, a.size() + b.size() - want.matches) << label;

  for (const auto& v : variants) {
    if (!v.available) continue;
    std::vector<std::uint8_t> tags(a.size() + b.size() + 1, 0x55);
    const auto got = v.fn(a.data(), a.size(), b.data(), b.size(), tags.data());
    ASSERT_EQ(got.out_len, want.out_len) << v.name << " " << label;
    ASSERT_EQ(got.matches, want.matches) << v.name << " " << label;
    for (std::size_t t = 0; t < got.out_len; ++t) {
      ASSERT_EQ(tags[t], want_tags[t])
          << v.name << " " << label << " tag " << t;
    }
  }
}

std::vector<std::uint64_t> iota_keys(std::uint64_t start, std::size_t n,
                                     std::uint64_t step = 1) {
  std::vector<std::uint64_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = start + i * step;
  return out;
}

TEST(KernelsHmerge, EmptyAndOneSided) {
  check_hmerge({}, {}, "both empty");
  check_hmerge(iota_keys(0, 100), {}, "b empty");
  check_hmerge({}, iota_keys(0, 100), "a empty");
  check_hmerge(iota_keys(0, 5000), {42}, "singleton b");
  check_hmerge({42}, iota_keys(0, 5000), "singleton a");
}

TEST(KernelsHmerge, AllDuplicates) {
  // Identical inputs at sizes straddling the 16-key block, the dup-run
  // gallop stride, and the 4096-key segmentation threshold.
  for (const std::size_t n : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                              std::size_t{17}, std::size_t{24},
                              std::size_t{4095}, std::size_t{4096},
                              std::size_t{4097}, std::size_t{10000}}) {
    const auto keys = iota_keys(1000, n, 3);
    check_hmerge(keys, keys, "all-dup n=" + std::to_string(n));
  }
}

TEST(KernelsHmerge, FullyAlternating) {
  // a holds the even keys, b the odd: every block is interleaved, the
  // burst path does all the work.
  for (const std::size_t n : {std::size_t{16}, std::size_t{33},
                              std::size_t{4097}, std::size_t{8192}}) {
    check_hmerge(iota_keys(0, n, 2), iota_keys(1, n, 2),
                 "alternating n=" + std::to_string(n));
  }
}

TEST(KernelsHmerge, LongDisjointRuns) {
  // Fully disjoint halves (one gallop each), then alternating runs of a
  // few hundred keys (the skip-compare + gallop steady state).
  check_hmerge(iota_keys(0, 6000), iota_keys(6000, 6000), "disjoint halves");
  check_hmerge(iota_keys(6000, 6000), iota_keys(0, 6000),
               "disjoint halves swapped");
  std::vector<std::uint64_t> a, b;
  for (std::uint64_t run = 0; run < 40; ++run) {
    auto& side = (run % 2 == 0) ? a : b;
    const auto keys = iota_keys(run * 300, 300);
    side.insert(side.end(), keys.begin(), keys.end());
  }
  check_hmerge(a, b, "run-length 300 alternation");
}

TEST(KernelsHmerge, UnalignedCountsRandomized) {
  // Random scattered-overlap worlds with deliberately lopsided and
  // non-multiple-of-16 sizes, crossing the segmentation threshold.
  std::mt19937_64 rng(0xC0FFEE09);
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1},     {2, 3},      {17, 33},    {129, 4097},
      {255, 257}, {4095, 31}, {5000, 4999}, {9001, 8192},
  };
  for (const auto& [na, nb] : shapes) {
    for (int trial = 0; trial < 3; ++trial) {
      // Sample keys from a small universe so every regime appears.
      const std::uint64_t universe = 1 + (na + nb) * 2 / 3;
      std::vector<std::uint64_t> a, b;
      while (a.size() < na) a.push_back(rng() % universe);
      while (b.size() < nb) b.push_back(rng() % universe);
      for (auto* v : {&a, &b}) {
        std::sort(v->begin(), v->end());
        v->erase(std::unique(v->begin(), v->end()), v->end());
      }
      check_hmerge(a, b,
                   "random na=" + std::to_string(a.size()) +
                       " nb=" + std::to_string(b.size()) + " t" +
                       std::to_string(trial));
    }
  }
}

// ---------------------------------------------------------------------------
// BoundedFpSet vs map-based reference model
// ---------------------------------------------------------------------------

// Reference model: the pre-flat map-backed implementation's semantics,
// transcribed over std::map.  Shares nothing with the production code.
struct RefModel {
  std::uint32_t f_cap;
  int k;
  std::map<hash::Fingerprint, std::pair<std::uint32_t,
                                        std::vector<std::int32_t>>> entries;
  std::vector<std::uint32_t> load;

  RefModel(std::uint32_t f, int kk, int nranks)
      : f_cap(f), k(kk), load(static_cast<std::size_t>(nranks), 0) {}

  void add_local(const hash::Fingerprint& fp, int rank) {
    entries[fp] = {1u, {rank}};
    ++load[static_cast<std::size_t>(rank)];
  }

  void truncate_ranks(std::vector<std::int32_t>& ranks,
                      core::MergeStats& stats) {
    if (ranks.size() <= static_cast<std::size_t>(k)) return;
    std::stable_sort(ranks.begin(), ranks.end(),
                     [&](std::int32_t a, std::int32_t b) {
                       const auto la = load[static_cast<std::size_t>(a)];
                       const auto lb = load[static_cast<std::size_t>(b)];
                       if (la != lb) return la < lb;
                       return a < b;
                     });
    for (std::size_t i = static_cast<std::size_t>(k); i < ranks.size(); ++i) {
      --load[static_cast<std::size_t>(ranks[i])];
      ++stats.ranks_dropped_load;
    }
    ranks.resize(static_cast<std::size_t>(k));
    std::sort(ranks.begin(), ranks.end());
  }

  void truncate_to_f(core::MergeStats& stats) {
    while (entries.size() > f_cap) {
      // Drop the (freq asc, fp desc) worst entry — equivalent to keeping
      // the top F by (freq desc, fp asc).
      auto victim = entries.begin();
      for (auto it = entries.begin(); it != entries.end(); ++it) {
        const bool worse = it->second.first < victim->second.first ||
                           (it->second.first == victim->second.first &&
                            victim->first < it->first);
        if (worse) victim = it;
      }
      for (const std::int32_t r : victim->second.second) {
        --load[static_cast<std::size_t>(r)];
      }
      entries.erase(victim);
      ++stats.entries_dropped_f;
    }
  }

  core::MergeStats merge_from(RefModel&& other) {
    core::MergeStats stats;
    for (std::size_t i = 0; i < load.size(); ++i) load[i] += other.load[i];
    for (auto& [fp, incoming] : other.entries) {  // std::map: fp ascending
      ++stats.entries_scanned;
      auto it = entries.find(fp);
      if (it == entries.end()) {
        entries.emplace(fp, std::move(incoming));
        continue;
      }
      it->second.first += incoming.first;
      std::vector<std::int32_t> merged;
      std::merge(it->second.second.begin(), it->second.second.end(),
                 incoming.second.begin(), incoming.second.end(),
                 std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      it->second.second = std::move(merged);
      truncate_ranks(it->second.second, stats);
    }
    truncate_to_f(stats);
    return stats;
  }

  std::size_t prune_singletons() {
    std::size_t removed = 0;
    for (auto it = entries.begin(); it != entries.end();) {
      if (it->second.first <= 1) {
        for (const std::int32_t r : it->second.second) {
          --load[static_cast<std::size_t>(r)];
        }
        it = entries.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }
};

void expect_equivalent(const core::BoundedFpSet& flat, const RefModel& ref) {
  ASSERT_EQ(flat.size(), ref.entries.size());
  auto it = ref.entries.begin();
  for (const auto& e : flat.entries()) {  // both fp-ascending
    ASSERT_NE(it, ref.entries.end());
    EXPECT_EQ(e.fp, it->first);
    EXPECT_EQ(e.freq, it->second.first);
    const auto r = flat.ranks(e);
    EXPECT_EQ(std::vector<std::int32_t>(r.begin(), r.end()), it->second.second)
        << e.fp.hex();
    ++it;
  }
  const auto load = flat.rank_load();
  EXPECT_EQ(std::vector<std::uint32_t>(load.begin(), load.end()), ref.load);
  EXPECT_TRUE(flat.check_invariants());
}

TEST(KernelsFpSet, FlatMergeMatchesMapReferenceRandomized) {
  std::mt19937_64 rng(0xC0FFEE07);
  for (int trial = 0; trial < 30; ++trial) {
    const int nranks = 2 + static_cast<int>(rng() % 7);
    const int k = 1 + static_cast<int>(rng() % 4);
    const std::uint32_t f = 1 + static_cast<std::uint32_t>(rng() % 24);
    const std::uint64_t universe = 1 + rng() % 40;

    core::BoundedFpSet flat(f, k, nranks);
    RefModel ref(f, k, nranks);
    bool first = true;
    for (int rank = 0; rank < nranks; ++rank) {
      core::BoundedFpSet leaf_flat(f, k, nranks);
      RefModel leaf_ref(f, k, nranks);
      // A random subset of the fingerprint universe on this rank.
      for (std::uint64_t id = 0; id < universe; ++id) {
        if (rng() % 2 == 0) continue;
        leaf_flat.add_local(hash::Fingerprint::from_u64(id * 0x9E3779B9u),
                            rank);
        leaf_ref.add_local(hash::Fingerprint::from_u64(id * 0x9E3779B9u),
                           rank);
      }
      leaf_flat.enforce_f();
      core::MergeStats ref_enforce;
      leaf_ref.truncate_to_f(ref_enforce);
      if (first) {
        flat = std::move(leaf_flat);
        ref = std::move(leaf_ref);
        first = false;
        continue;
      }
      const auto fs = flat.merge_from(std::move(leaf_flat));
      const auto rs = ref.merge_from(std::move(leaf_ref));
      EXPECT_EQ(fs.entries_scanned, rs.entries_scanned) << trial;
      EXPECT_EQ(fs.entries_dropped_f, rs.entries_dropped_f) << trial;
      EXPECT_EQ(fs.ranks_dropped_load, rs.ranks_dropped_load) << trial;
    }
    expect_equivalent(flat, ref);

    EXPECT_EQ(flat.prune_singletons(), ref.prune_singletons()) << trial;
    expect_equivalent(flat, ref);
  }
}

TEST(KernelsFpSet, ArchiveRoundTripPreservesContentAndIsCanonical) {
  std::mt19937_64 rng(0xC0FFEE08);
  for (int trial = 0; trial < 10; ++trial) {
    const int nranks = 2 + static_cast<int>(rng() % 6);
    core::BoundedFpSet acc(64, 3, nranks);
    for (int rank = 0; rank < nranks; ++rank) {
      core::BoundedFpSet leaf(64, 3, nranks);
      for (int i = 0; i < 20; ++i) {
        // Mixed fingerprints: u64-derived (12 trailing zero bytes) and
        // full-width random digests.
        hash::Fingerprint fp;
        if (rng() % 2 == 0) {
          fp = hash::Fingerprint::from_u64(rng() % 32);
        } else {
          std::uint8_t digest[20];
          for (auto& b : digest) b = static_cast<std::uint8_t>(rng() % 4);
          fp = hash::Fingerprint(digest);
        }
        if (leaf.find(fp) == nullptr) leaf.add_local(fp, rank);
      }
      leaf.enforce_f();
      if (rank == 0) {
        acc = std::move(leaf);
      } else {
        acc.merge_from(std::move(leaf));
      }
    }

    const auto bytes = simmpi::to_bytes(acc);
    const auto back = simmpi::from_bytes<core::BoundedFpSet>(bytes);
    ASSERT_EQ(back.size(), acc.size());
    EXPECT_EQ(back.f_cap(), acc.f_cap());
    EXPECT_EQ(back.k(), acc.k());
    EXPECT_TRUE(back.check_invariants());
    const auto want = acc.entries();
    const auto got = back.entries();
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].fp, want[i].fp);
      EXPECT_EQ(got[i].freq, want[i].freq);
      const auto ra = acc.ranks(want[i]);
      const auto rb = back.ranks(got[i]);
      EXPECT_EQ(std::vector<std::int32_t>(rb.begin(), rb.end()),
                std::vector<std::int32_t>(ra.begin(), ra.end()));
    }
    // Canonical form: re-serializing the loaded set reproduces the bytes.
    EXPECT_EQ(simmpi::to_bytes(back), bytes);
  }
}

TEST(KernelsFpSet, DeltaArchiveIsCompact) {
  // 1000 u64-derived fingerprints: delta coding must beat the naive
  // 20-bytes-per-fingerprint encoding by a wide margin.
  core::BoundedFpSet s(2048, 3, 4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    s.add_local(hash::Fingerprint::from_u64(i * 0x9E3779B97F4A7C15ull),
                static_cast<int>(i % 4));
  }
  s.enforce_f();
  const auto bytes = simmpi::to_bytes(s);
  // Old format: >= 20 (fp) + 4 (freq) + 2 + 4 (rank) = 30 bytes/entry.
  EXPECT_LT(bytes.size(), 1000 * 20);
}

hash::Fingerprint fp_with_prefix(std::uint64_t prefix, std::uint8_t tail) {
  std::uint8_t digest[20] = {};
  for (int i = 0; i < 8; ++i) {
    digest[i] = static_cast<std::uint8_t>(prefix >> (56 - 8 * i));
  }
  digest[19] = tail;
  return hash::Fingerprint(digest);
}

TEST(KernelsFpSet, PrefixCollisionsFallBackAndMergeCorrectly) {
  // Fingerprints sharing their first 8 bytes defeat the 64-bit planning
  // keys.  Within one input they force the full-fingerprint scalar path;
  // across inputs they exercise the kernel path's false-match
  // verification.  Either way the result must match the reference model.
  struct Case {
    bool collide_within;  // both colliding fps on one side
    const char* label;
  };
  for (const Case c : {Case{true, "within"}, Case{false, "across"}}) {
    const int nranks = 4;
    core::BoundedFpSet a(64, 3, nranks);
    core::BoundedFpSet b(64, 3, nranks);
    RefModel ra(64, 3, nranks);
    RefModel rb(64, 3, nranks);
    const auto add = [&](core::BoundedFpSet& s, RefModel& r,
                         const hash::Fingerprint& fp, int rank) {
      s.add_local(fp, rank);
      r.add_local(fp, rank);
    };
    // Distinct-prefix background so the planned path has real work.
    for (std::uint64_t i = 0; i < 30; ++i) {
      add(a, ra, fp_with_prefix(i * 11 + 1, 0), 0);
      if (i % 3 != 0) add(b, rb, fp_with_prefix(i * 11 + 1, 0), 1);
      add(b, rb, fp_with_prefix(i * 11 + 5, 0), 1);
    }
    if (c.collide_within) {
      add(a, ra, fp_with_prefix(500, 1), 0);
      add(a, ra, fp_with_prefix(500, 2), 0);
      add(b, rb, fp_with_prefix(500, 2), 1);
    } else {
      // Cross-input-only collision: equal planning keys, unequal digests.
      add(a, ra, fp_with_prefix(500, 1), 0);
      add(b, rb, fp_with_prefix(500, 2), 1);
      // And one genuine cross-input duplicate for contrast.
      add(a, ra, fp_with_prefix(600, 7), 0);
      add(b, rb, fp_with_prefix(600, 7), 1);
    }
    a.enforce_f();
    b.enforce_f();
    const auto fs = a.merge_from(std::move(b));
    const auto rs = ra.merge_from(std::move(rb));
    EXPECT_EQ(fs.entries_scanned, rs.entries_scanned) << c.label;
    expect_equivalent(a, ra);
  }
}

TEST(KernelsFpSet, RankListsSaturateAtK) {
  // Every rank holds the same universe: after folding all leaves each
  // fingerprint has nranks holders but only K designated ranks, and the
  // designation load stays balanced by the load-aware truncation.
  const int nranks = 9;
  const int k = 3;
  core::BoundedFpSet acc(128, k, nranks);
  for (int rank = 0; rank < nranks; ++rank) {
    core::BoundedFpSet leaf(128, k, nranks);
    for (std::uint64_t id = 0; id < 50; ++id) {
      leaf.add_local(hash::Fingerprint::from_u64(id * 0x9E3779B9u), rank);
    }
    leaf.enforce_f();
    if (rank == 0) {
      acc = std::move(leaf);
    } else {
      acc.merge_from(std::move(leaf));
    }
  }
  ASSERT_EQ(acc.size(), 50u);
  for (const auto& e : acc.entries()) {
    EXPECT_EQ(e.freq, static_cast<std::uint32_t>(nranks));
    EXPECT_EQ(e.rank_len, static_cast<std::uint32_t>(k));
  }
  EXPECT_TRUE(acc.check_invariants());
  // Greedy per-merge truncation balances approximately (not ±1): with 150
  // designations over 9 ranks (~16.7 each) the spread must stay small.
  const auto load = acc.rank_load();
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  EXPECT_LE(*hi - *lo, 4u) << "designation load should stay near-balanced";
}

TEST(KernelsFpSet, KwayMatchesIteratedPairwiseWhenBoundsAreSlack) {
  // With F and K loose enough that no truncation fires, the k-way merge
  // must reproduce iterated pairwise merges exactly.
  std::mt19937_64 rng(0xC0FFEE0A);
  for (int trial = 0; trial < 10; ++trial) {
    const int nranks = 3 + static_cast<int>(rng() % 5);
    const std::uint32_t f = 4096;  // never binds
    const int k = nranks;          // never binds
    std::vector<core::BoundedFpSet> leaves;
    for (int rank = 0; rank < nranks; ++rank) {
      core::BoundedFpSet leaf(f, k, nranks);
      for (std::uint64_t id = 0; id < 60; ++id) {
        if (rng() % 2 == 0) continue;
        leaf.add_local(hash::Fingerprint::from_u64(id * 0x2545F491u), rank);
      }
      leaf.enforce_f();
      leaves.push_back(std::move(leaf));
    }
    auto pairwise = leaves[0];
    std::uint64_t scanned_pairwise = 0;
    for (std::size_t i = 1; i < leaves.size(); ++i) {
      auto copy = leaves[i];
      scanned_pairwise += pairwise.merge_from(std::move(copy)).entries_scanned;
    }
    auto kway = std::move(leaves[0]);
    leaves.erase(leaves.begin());
    const auto ks = kway.merge_many(std::move(leaves));
    EXPECT_EQ(ks.entries_scanned, scanned_pairwise) << trial;
    ASSERT_EQ(kway.size(), pairwise.size()) << trial;
    const auto we = pairwise.entries();
    const auto ge = kway.entries();
    for (std::size_t i = 0; i < we.size(); ++i) {
      EXPECT_EQ(ge[i].fp, we[i].fp);
      EXPECT_EQ(ge[i].freq, we[i].freq);
      const auto rw = pairwise.ranks(we[i]);
      const auto rg = kway.ranks(ge[i]);
      EXPECT_EQ(std::vector<std::int32_t>(rg.begin(), rg.end()),
                std::vector<std::int32_t>(rw.begin(), rw.end()));
    }
    EXPECT_TRUE(kway.check_invariants());
  }
}

TEST(KernelsFpSet, KwayKeepsBoundsWhenTheyBind) {
  std::mt19937_64 rng(0xC0FFEE0B);
  for (int trial = 0; trial < 10; ++trial) {
    const int nranks = 4 + static_cast<int>(rng() % 5);
    const std::uint32_t f = 1 + static_cast<std::uint32_t>(rng() % 20);
    const int k = 1 + static_cast<int>(rng() % 3);
    std::vector<core::BoundedFpSet> leaves;
    for (int rank = 0; rank < nranks; ++rank) {
      core::BoundedFpSet leaf(f, k, nranks);
      for (std::uint64_t id = 0; id < 40; ++id) {
        if (rng() % 3 == 0) continue;
        leaf.add_local(hash::Fingerprint::from_u64(id * 0x9E3779B9u), rank);
      }
      leaf.enforce_f();
      leaves.push_back(std::move(leaf));
    }
    auto acc = std::move(leaves[0]);
    leaves.erase(leaves.begin());
    acc.merge_many(std::move(leaves));
    EXPECT_LE(acc.size(), f) << trial;
    for (const auto& e : acc.entries()) {
      EXPECT_LE(e.rank_len, static_cast<std::uint32_t>(k)) << trial;
    }
    EXPECT_TRUE(acc.check_invariants()) << trial;
  }
}

TEST(KernelsFpSet, MergeManyWithNoChildrenIsANoop) {
  core::BoundedFpSet s(16, 2, 4);
  s.add_local(hash::Fingerprint::from_u64(7), 0);
  s.enforce_f();
  const auto bytes = simmpi::to_bytes(s);
  const auto stats = s.merge_many({});
  EXPECT_EQ(stats.entries_scanned, 0u);
  EXPECT_EQ(stats.entries_dropped_f, 0u);
  EXPECT_EQ(stats.ranks_dropped_load, 0u);
  EXPECT_EQ(simmpi::to_bytes(s), bytes);
}

TEST(KernelsDispatch, ActiveVariantsAreAvailable) {
  const auto& d = kernels::dispatch();
  ASSERT_NE(d.gf_mul_add, nullptr);
  ASSERT_NE(d.gf_mul, nullptr);
  ASSERT_NE(d.crc32c, nullptr);
  ASSERT_NE(d.sha1_blocks, nullptr);
  ASSERT_NE(d.hmerge, nullptr);
  // The dispatched names must correspond to available variants.
  bool gf_ok = false, crc_ok = false, sha_ok = false, hm_ok = false;
  for (const auto& v : kernels::gf_variants()) {
    if (v.available && std::string_view(v.name) == d.gf_name) gf_ok = true;
  }
  for (const auto& v : kernels::crc32c_variants()) {
    if (v.available && std::string_view(v.name) == d.crc32c_name) {
      crc_ok = true;
    }
  }
  for (const auto& v : kernels::sha1_variants()) {
    if (v.available && std::string_view(v.name) == d.sha1_name) sha_ok = true;
  }
  for (const auto& v : kernels::hmerge_variants()) {
    if (v.available && std::string_view(v.name) == d.hmerge_name) hm_ok = true;
  }
  EXPECT_TRUE(gf_ok) << d.gf_name;
  EXPECT_TRUE(crc_ok) << d.crc32c_name;
  EXPECT_TRUE(sha_ok) << d.sha1_name;
  EXPECT_TRUE(hm_ok) << d.hmerge_name;
}

}  // namespace
