// Telemetry layer: exact counter values for known communication patterns,
// Chrome trace-event export (valid JSON, one track per rank, deterministic),
// metrics registry semantics, and bounded-ring behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "chunk/dataset.hpp"
#include "chunk/store.hpp"
#include "core/dump.hpp"
#include "hash/fingerprint.hpp"
#include "obs/telemetry.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"
#include "test_util.hpp"

namespace {

using namespace collrep;
using collrep::test::JsonChecker;

// Pulls `"key": <integer or string>` off one exported line; relies on the
// exporters emitting one event per line (asserted by the format tests).
std::string field_of(const std::string& line, const std::string& key) {
  const auto at = line.find("\"" + key + "\": ");
  if (at == std::string::npos) return {};
  auto start = at + key.size() + 4;
  auto stop = start;
  while (stop < line.size() && line[stop] != ',' && line[stop] != '}') ++stop;
  return line.substr(start, stop - start);
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    out.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return out;
}

// -- MetricsRegistry -----------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry m;
  m.add("a.count");
  m.add("a.count", 41);
  m.set("a.gauge", 2.5);
  m.set("a.gauge", 3.5);  // last write wins
  m.observe("a.hist", 0.5);
  m.observe("a.hist", 3.0);
  m.observe("a.hist", 1000.0);

  EXPECT_EQ(m.counter("a.count"), 42u);
  EXPECT_EQ(m.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(m.gauge("a.gauge"), 3.5);
  const auto h = m.histogram("a.hist");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 1003.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_EQ(h.buckets[0], 1u);   // 0.5 -> [<1)
  EXPECT_EQ(h.buckets[2], 1u);   // 3.0 -> [2,4)
  EXPECT_EQ(h.buckets[10], 1u);  // 1000 -> [512,1024)
}

TEST(MetricsRegistry, JsonIsValidAndDeterministic) {
  obs::MetricsRegistry m;
  m.add("z.last", 1);
  m.add("a.first", 2);
  m.set("gauge.pi", 3.14159);
  m.observe("hist.x", 7.0);

  const std::string json = m.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Ordered keys: "a.first" serializes before "z.last".
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_EQ(json, m.to_json());
}

TEST(MetricsRegistry, EmptyRegistryStillValidJson) {
  obs::MetricsRegistry m;
  EXPECT_TRUE(JsonChecker(m.to_json()).valid());
}

// -- TraceRecorder -------------------------------------------------------------

TEST(TraceRecorder, BoundedRingDropsOldest) {
  obs::TraceRecorder rec(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(obs::TraceEvent{obs::EventKind::kPut, 1,
                               static_cast<double>(i), "put", i, 0});
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a, 6 + i);  // oldest dropped, order preserved
  }
}

// -- CommStats via the runtime -------------------------------------------------

TEST(CommStats, AllreduceOn8RanksRecordsTreeRounds) {
  obs::Telemetry tel;
  simmpi::RuntimeOptions opts;
  opts.telemetry = &tel;
  simmpi::Runtime rt(8, opts);
  rt.run([&](simmpi::Comm& comm) {
    const int sum = simmpi::allreduce_sum(comm, 1);
    EXPECT_EQ(sum, 8);
  });

  for (int r = 0; r < 8; ++r) {
    const auto& cs = tel.rank(r).comm;
    EXPECT_EQ(cs.collective_calls[obs::index_of(obs::CollectiveKind::kAllreduce)],
              1u);
    // allreduce = binomial reduce + binomial bcast, each ceil(log2 8) = 3
    // rounds (collectives.hpp); the nested halves count themselves too.
    EXPECT_EQ(cs.collective_rounds[obs::index_of(obs::CollectiveKind::kAllreduce)],
              6u);
    EXPECT_EQ(cs.collective_calls[obs::index_of(obs::CollectiveKind::kReduce)],
              1u);
    EXPECT_EQ(cs.collective_rounds[obs::index_of(obs::CollectiveKind::kReduce)],
              3u);
    EXPECT_EQ(cs.collective_calls[obs::index_of(obs::CollectiveKind::kBcast)],
              1u);
    EXPECT_EQ(cs.collective_rounds[obs::index_of(obs::CollectiveKind::kBcast)],
              3u);
  }
  const auto total = tel.rollup();
  EXPECT_EQ(total.collective_calls[obs::index_of(obs::CollectiveKind::kAllreduce)],
            8u);
}

TEST(CommStats, PointToPointByTagAndLocality) {
  obs::Telemetry tel;
  simmpi::RuntimeOptions opts;
  opts.telemetry = &tel;
  opts.cluster.ranks_per_node = 2;  // ranks {0,1} share a node, {2,3} too
  simmpi::Runtime rt(4, opts);
  rt.run([&](simmpi::Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::uint8_t> payload(100, 1);
      comm.send_bytes(1, /*tag=*/7, payload);  // intra-node
      comm.send_bytes(2, /*tag=*/9, payload);  // inter-node
    }
    if (comm.rank() == 1) (void)comm.recv_bytes(0, 7);
    if (comm.rank() == 2) (void)comm.recv_bytes(0, 9);
  });

  const auto& r0 = tel.rank(0).comm;
  EXPECT_EQ(r0.sent_messages, 2u);
  EXPECT_EQ(r0.sent_bytes, 200u);
  EXPECT_EQ(r0.intra_node_sent_bytes, 100u);
  EXPECT_EQ(r0.inter_node_sent_bytes, 100u);
  ASSERT_EQ(r0.sent_by_tag.size(), 2u);
  EXPECT_EQ(r0.sent_by_tag.at(7).messages, 1u);
  EXPECT_EQ(r0.sent_by_tag.at(7).bytes, 100u);
  EXPECT_EQ(r0.sent_by_tag.at(9).bytes, 100u);
  EXPECT_EQ(tel.rank(1).comm.recv_messages, 1u);
  EXPECT_EQ(tel.rank(1).comm.recv_bytes, 100u);
  EXPECT_EQ(tel.rollup().sent_bytes, tel.rollup().recv_bytes);
}

TEST(CommStats, DisabledTelemetryLeavesRunUntouched) {
  simmpi::Runtime rt(4);  // RuntimeOptions::telemetry defaults to nullptr
  int sum = 0;
  rt.run([&](simmpi::Comm& comm) {
    EXPECT_EQ(comm.obs(), nullptr);
    const int s = simmpi::allreduce_sum(comm, comm.rank());
    if (comm.rank() == 0) sum = s;
  });
  EXPECT_EQ(sum, 6);
}

// -- full dump pipeline --------------------------------------------------------

constexpr int kRanks = 4;
constexpr std::size_t kChunk = 64;

// Datasets are non-owning views, so each rank's backing bytes live in a
// caller-held vector for the duration of the run.
std::vector<std::uint8_t> rank_bytes(int rank) {
  // 8 chunks: 6 identical on every rank (natural redundancy), 2 unique.
  std::vector<std::uint8_t> data(8 * kChunk);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 251);
  }
  for (std::size_t i = 6 * kChunk; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>((i * 31 + 7) % 253 + rank * 2);
  }
  return data;
}

struct DumpRun {
  std::vector<core::DumpStats> stats =
      std::vector<core::DumpStats>(kRanks);
  core::GlobalDumpStats global;
};

DumpRun run_instrumented_dump(obs::Telemetry* tel) {
  DumpRun out;
  std::vector<chunk::ChunkStore> stores;
  std::vector<std::vector<std::uint8_t>> bytes;
  for (int r = 0; r < kRanks; ++r) {
    stores.emplace_back(chunk::StoreMode::kPayload);
    bytes.push_back(rank_bytes(r));
  }
  simmpi::RuntimeOptions opts;
  opts.telemetry = tel;
  simmpi::Runtime rt(kRanks, opts);
  rt.run([&](simmpi::Comm& comm) {
    core::DumpConfig cfg;
    cfg.chunk_bytes = kChunk;
    core::Dumper dumper(comm, stores[static_cast<std::size_t>(comm.rank())],
                        cfg);
    chunk::Dataset ds;
    ds.add_segment(bytes[static_cast<std::size_t>(comm.rank())]);
    const auto stats = dumper.dump_output(ds, /*k=*/2);
    out.stats[static_cast<std::size_t>(comm.rank())] = stats;
    const auto g = core::Dumper::collect(comm, stats);
    if (comm.rank() == 0) out.global = g;
  });
  return out;
}

TEST(DumpTelemetry, WindowPutBytesMatchDumpStats) {
  obs::Telemetry tel;
  const DumpRun run = run_instrumented_dump(&tel);

  constexpr std::uint64_t kHeader =
      hash::Fingerprint::kBytes + sizeof(std::uint32_t);
  std::uint64_t total_sent_bytes = 0;
  std::uint64_t total_sent_chunks = 0;
  for (const auto& s : run.stats) {
    total_sent_bytes += s.sent_bytes;
    total_sent_chunks += s.sent_chunks;
    // Per-rank: the rank put exactly what DumpStats says it replicated,
    // plus one record header per chunk.
    const auto& cs = tel.rank(s.rank).comm;
    EXPECT_EQ(cs.put_bytes, s.sent_bytes + kHeader * s.sent_chunks);
    EXPECT_EQ(cs.puts, s.sent_chunks);
    EXPECT_EQ(cs.windows_created, 1u);
    EXPECT_EQ(cs.window_epochs, 1u);
  }
  EXPECT_GT(total_sent_bytes, 0u);
  EXPECT_EQ(run.global.total_sent_bytes, total_sent_bytes);

  const auto total = tel.rollup();
  EXPECT_EQ(total.put_bytes, total_sent_bytes + kHeader * total_sent_chunks);

  // The registry mirrors both the per-rank accumulation and the roll-up.
  const auto& m = tel.metrics();
  EXPECT_EQ(m.counter("dump.sent_bytes"), total_sent_bytes);
  EXPECT_DOUBLE_EQ(m.gauge("dump.last.total_sent_bytes"),
                   static_cast<double>(run.global.total_sent_bytes));
  EXPECT_EQ(m.counter("dump.count"), 1u);
  tel.publish_rollup();
  EXPECT_DOUBLE_EQ(m.gauge("comm.put_bytes"),
                   static_cast<double>(total.put_bytes));
}

TEST(DumpTelemetry, EpochRecvMatchesPartnerSends) {
  obs::Telemetry tel;
  const DumpRun run = run_instrumented_dump(&tel);
  // Every modeled byte put must have been delivered to some window.
  constexpr std::uint64_t kHeader =
      hash::Fingerprint::kBytes + sizeof(std::uint32_t);
  std::uint64_t recv_total = 0;
  for (const auto& s : run.stats) {
    recv_total += s.recv_bytes + kHeader * s.recv_chunks;
  }
  EXPECT_EQ(tel.rollup().put_bytes, recv_total);
}

TEST(DumpTelemetry, TraceIsValidChromeJsonWithOneTrackPerRank) {
  obs::Telemetry tel;
  (void)run_instrumented_dump(&tel);
  const std::string json = tel.trace_json();
  EXPECT_TRUE(JsonChecker(json).valid());

  std::set<std::string> tids;
  std::map<std::string, int> depth;  // per tid B/E nesting
  int events = 0;
  bool saw_phase_named[2] = {false, false};
  for (const auto& line : lines_of(json)) {
    const std::string tid = field_of(line, "tid");
    if (tid.empty()) continue;
    ++events;
    tids.insert(tid);
    const std::string ph = field_of(line, "ph");
    if (ph == "\"B\"") ++depth[tid];
    if (ph == "\"E\"") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "unbalanced E on tid " << tid;
    }
    if (line.find("\"name\": \"hash\"") != std::string::npos) {
      saw_phase_named[0] = true;
    }
    if (line.find("\"name\": \"exchange\"") != std::string::npos) {
      saw_phase_named[1] = true;
    }
  }
  EXPECT_GT(events, 0);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kRanks));
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced begin/end on tid " << tid;
  }
  EXPECT_TRUE(saw_phase_named[0]);
  EXPECT_TRUE(saw_phase_named[1]);
}

TEST(DumpTelemetry, TraceIsBitReproducible) {
  obs::Telemetry tel_a;
  obs::Telemetry tel_b;
  (void)run_instrumented_dump(&tel_a);
  (void)run_instrumented_dump(&tel_b);
  EXPECT_EQ(tel_a.trace_json(), tel_b.trace_json());
  tel_a.publish_rollup();
  tel_b.publish_rollup();
  EXPECT_EQ(tel_a.metrics().to_json(), tel_b.metrics().to_json());
}

TEST(DumpTelemetry, CountersAccumulateAcrossRuns) {
  obs::Telemetry tel;
  const DumpRun first = run_instrumented_dump(&tel);
  const auto after_one = tel.rollup().put_bytes;
  (void)run_instrumented_dump(&tel);
  EXPECT_EQ(tel.rollup().put_bytes, 2 * after_one);
  EXPECT_EQ(tel.runs(), 2u);
  EXPECT_EQ(tel.metrics().counter("dump.count"), 2u);
  EXPECT_EQ(tel.metrics().counter("dump.sent_bytes"),
            2 * first.global.total_sent_bytes);
}

}  // namespace
