// Shared helpers for the CollRep test suites.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/collrep.hpp"

namespace collrep::test {

// Runs an SPMD body over `nranks` and returns per-rank dump stats.
struct DumpRun {
  std::vector<core::DumpStats> stats;
  std::vector<chunk::ChunkStore> stores;
  std::vector<std::vector<std::uint8_t>> datasets;
};

using DataGen = std::function<std::vector<std::uint8_t>(int rank)>;

inline DumpRun run_dump(int nranks, int k, const core::DumpConfig& cfg,
                        const DataGen& gen,
                        chunk::StoreMode mode = chunk::StoreMode::kPayload,
                        simmpi::RuntimeOptions opts = {}) {
  DumpRun run;
  run.stats.resize(static_cast<std::size_t>(nranks));
  run.datasets.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) run.stores.emplace_back(mode);

  simmpi::Runtime rt(nranks, opts);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    run.datasets[static_cast<std::size_t>(r)] = gen(r);
    chunk::Dataset ds;
    ds.add_segment(run.datasets[static_cast<std::size_t>(r)]);
    core::Dumper dumper(comm, run.stores[static_cast<std::size_t>(r)], cfg);
    run.stats[static_cast<std::size_t>(r)] = dumper.dump_output(ds, k);
  });
  return run;
}

inline std::vector<chunk::ChunkStore*> store_ptrs(DumpRun& run) {
  std::vector<chunk::ChunkStore*> ptrs;
  ptrs.reserve(run.stores.size());
  for (auto& s : run.stores) ptrs.push_back(&s);
  return ptrs;
}

// Counts on how many distinct (alive) stores each fingerprint that appears
// in any manifest is present; returns the minimum over fingerprints.
inline std::size_t min_replica_count(DumpRun& run) {
  std::vector<hash::Fingerprint> fps;
  for (int r = 0; r < static_cast<int>(run.stores.size()); ++r) {
    const auto* m = run.stores[static_cast<std::size_t>(r)].manifest_for(r);
    if (m == nullptr) continue;
    for (const auto& e : m->entries) fps.push_back(e.fp);
  }
  std::sort(fps.begin(), fps.end());
  fps.erase(std::unique(fps.begin(), fps.end()), fps.end());

  std::size_t min_count = static_cast<std::size_t>(-1);
  for (const auto& fp : fps) {
    std::size_t count = 0;
    for (auto& s : run.stores) {
      if (!s.failed() && s.contains(fp)) ++count;
    }
    min_count = std::min(min_count, count);
  }
  return fps.empty() ? 0 : min_count;
}

// Deterministic per-rank dataset with a controllable shared fraction:
// pages with (page % 4 != 0) are identical across ranks.
inline std::vector<std::uint8_t> mixed_pages(int rank, std::size_t pages,
                                             std::size_t page_bytes) {
  std::vector<std::uint8_t> data(pages * page_bytes);
  for (std::size_t p = 0; p < pages; ++p) {
    const bool shared = (p % 4) != 0;
    for (std::size_t i = 0; i < page_bytes; ++i) {
      data[p * page_bytes + i] = static_cast<std::uint8_t>(
          shared ? (p * 131 + i * 7) : (p * 131 + i * 7 + 10007 * (rank + 1)));
    }
  }
  return data;
}

}  // namespace collrep::test
