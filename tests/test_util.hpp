// Shared helpers for the CollRep test suites.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/collrep.hpp"

namespace collrep::test {

// -- minimal JSON validator ---------------------------------------------------
// Recursive-descent parser that accepts exactly the JSON grammar; used to
// prove exported documents (metrics, traces, profiles) are machine-readable
// without pulling in a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s)
      : p_(s.data()), end_(s.data() + s.size()) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' || *p_ == '\r')) {
      ++p_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (static_cast<std::size_t>(end_ - p_) < word.size()) return false;
    if (std::string_view(p_, word.size()) != word) return false;
    p_ += word.size();
    return true;
  }
  bool string() {
    if (!consume('"')) return false;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
      }
      ++p_;
    }
    return consume('"');
  }
  bool number() {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    while (p_ < end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                         *p_ == 'e' || *p_ == 'E' || *p_ == '+' ||
                         *p_ == '-')) {
      ++p_;
    }
    return p_ > start;
  }
  bool object() {  // NOLINT(misc-no-recursion)
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    do {
      skip_ws();
      if (!string()) return false;
      if (!consume(':')) return false;
      if (!value()) return false;
    } while (consume(','));
    return consume('}');
  }
  bool array() {  // NOLINT(misc-no-recursion)
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    do {
      if (!value()) return false;
    } while (consume(','));
    return consume(']');
  }
  bool value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const char* p_;
  const char* end_;
};

// Runs an SPMD body over `nranks` and returns per-rank dump stats.
struct DumpRun {
  std::vector<core::DumpStats> stats;
  std::vector<chunk::ChunkStore> stores;
  std::vector<std::vector<std::uint8_t>> datasets;
};

using DataGen = std::function<std::vector<std::uint8_t>(int rank)>;

inline DumpRun run_dump(int nranks, int k, const core::DumpConfig& cfg,
                        const DataGen& gen,
                        chunk::StoreMode mode = chunk::StoreMode::kPayload,
                        simmpi::RuntimeOptions opts = {}) {
  DumpRun run;
  run.stats.resize(static_cast<std::size_t>(nranks));
  run.datasets.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) run.stores.emplace_back(mode);

  simmpi::Runtime rt(nranks, opts);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    run.datasets[static_cast<std::size_t>(r)] = gen(r);
    chunk::Dataset ds;
    ds.add_segment(run.datasets[static_cast<std::size_t>(r)]);
    core::Dumper dumper(comm, run.stores[static_cast<std::size_t>(r)], cfg);
    run.stats[static_cast<std::size_t>(r)] = dumper.dump_output(ds, k);
  });
  return run;
}

inline std::vector<chunk::ChunkStore*> store_ptrs(DumpRun& run) {
  std::vector<chunk::ChunkStore*> ptrs;
  ptrs.reserve(run.stores.size());
  for (auto& s : run.stores) ptrs.push_back(&s);
  return ptrs;
}

// Counts on how many distinct (alive) stores each fingerprint that appears
// in any manifest is present; returns the minimum over fingerprints.
inline std::size_t min_replica_count(DumpRun& run) {
  std::vector<hash::Fingerprint> fps;
  for (int r = 0; r < static_cast<int>(run.stores.size()); ++r) {
    const auto* m = run.stores[static_cast<std::size_t>(r)].manifest_for(r);
    if (m == nullptr) continue;
    for (const auto& e : m->entries) fps.push_back(e.fp);
  }
  std::sort(fps.begin(), fps.end());
  fps.erase(std::unique(fps.begin(), fps.end()), fps.end());

  std::size_t min_count = static_cast<std::size_t>(-1);
  for (const auto& fp : fps) {
    std::size_t count = 0;
    for (auto& s : run.stores) {
      if (!s.failed() && s.contains(fp)) ++count;
    }
    min_count = std::min(min_count, count);
  }
  return fps.empty() ? 0 : min_count;
}

// Deterministic per-rank dataset with a controllable shared fraction:
// pages with (page % 4 != 0) are identical across ranks.
inline std::vector<std::uint8_t> mixed_pages(int rank, std::size_t pages,
                                             std::size_t page_bytes) {
  std::vector<std::uint8_t> data(pages * page_bytes);
  for (std::size_t p = 0; p < pages; ++p) {
    const bool shared = (p % 4) != 0;
    for (std::size_t i = 0; i < page_bytes; ++i) {
      data[p * page_bytes + i] = static_cast<std::uint8_t>(
          shared ? (p * 131 + i * 7) : (p * 131 + i * 7 + 10007 * (rank + 1)));
    }
  }
  return data;
}

}  // namespace collrep::test
