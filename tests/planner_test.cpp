// RANK_SHUFFLE (Algorithm 2) and CALC_OFF (Algorithm 3) properties,
// including the paper's Fig. 2 worked example and the disjoint-tiling
// invariant of the single-sided window offsets.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "apps/rng.hpp"
#include "core/planner.hpp"

namespace {

using namespace collrep;
using core::identity_shuffle;
using core::invert_shuffle;
using core::partner_at;
using core::put_offset_chunks;
using core::rank_shuffle;
using core::receive_chunks_per_rank;
using core::SendMatrix;
using core::window_chunks;

SendMatrix uniform_sends(int n, int k, std::uint64_t per_slot) {
  SendMatrix m(n, k);
  for (int r = 0; r < n; ++r) {
    for (int p = 1; p < k; ++p) m.at(r, p) = per_slot;
  }
  return m;
}

bool is_permutation_of_ranks(const std::vector<int>& shuffle, int n) {
  std::vector<int> sorted = shuffle;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < n; ++i) {
    if (sorted[static_cast<std::size_t>(i)] != i) return false;
  }
  return true;
}

TEST(RankShuffle, PaperFigure2Example) {
  // Six processes, K=3: the first two send 100 chunks to each partner,
  // the rest send 10.  Naive selection peaks at 200 received chunks;
  // load-aware shuffling must bring the maximum down to 110.
  constexpr int kN = 6;
  constexpr int kK = 3;
  SendMatrix m(kN, kK);
  for (int r = 0; r < kN; ++r) {
    const std::uint64_t load = r < 2 ? 100 : 10;
    m.at(r, 1) = load;
    m.at(r, 2) = load;
  }

  const auto naive = identity_shuffle(kN);
  const auto naive_recv = receive_chunks_per_rank(m, naive);
  EXPECT_EQ(*std::max_element(naive_recv.begin(), naive_recv.end()), 200u);

  const auto shuffled = rank_shuffle(m, kK);
  EXPECT_TRUE(is_permutation_of_ranks(shuffled, kN));
  const auto recv = receive_chunks_per_rank(m, shuffled);
  EXPECT_EQ(*std::max_element(recv.begin(), recv.end()), 110u);
}

TEST(RankShuffle, HeavyRanksAreSeparated) {
  constexpr int kN = 8;
  constexpr int kK = 3;
  SendMatrix m(kN, kK);
  for (int r = 0; r < kN; ++r) {
    const std::uint64_t load = r < 2 ? 50 : 5;
    m.at(r, 1) = load;
    m.at(r, 2) = load;
  }
  const auto shuffle = rank_shuffle(m, kK);
  const auto pos = invert_shuffle(shuffle);
  // The two heavy ranks must not be ring-adjacent within K-1 hops.
  const int gap = std::abs(pos[0] - pos[1]);
  EXPECT_GE(std::min(gap, kN - gap), kK - 1);
}

TEST(RankShuffle, UniformLoadIsStillAPermutation) {
  const auto m = uniform_sends(10, 4, 7);
  const auto shuffle = rank_shuffle(m, 4);
  EXPECT_TRUE(is_permutation_of_ranks(shuffle, 10));
}

TEST(RankShuffle, SingleRank) {
  const auto m = uniform_sends(1, 1, 0);
  EXPECT_EQ(rank_shuffle(m, 1), std::vector<int>{0});
}

TEST(RankShuffle, DeterministicForEqualLoads) {
  const auto m = uniform_sends(9, 3, 1);
  EXPECT_EQ(rank_shuffle(m, 3), rank_shuffle(m, 3));
}

TEST(IdentityShuffle, IsIota) {
  const auto id = identity_shuffle(5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(id[static_cast<std::size_t>(i)], i);
}

TEST(InvertShuffle, RoundTrips) {
  const std::vector<int> shuffle{3, 1, 4, 0, 2};
  const auto pos = invert_shuffle(shuffle);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(pos[static_cast<std::size_t>(
                  shuffle[static_cast<std::size_t>(i)])],
              i);
  }
}

TEST(PartnerAt, RingWrapsAround) {
  const auto id = identity_shuffle(4);
  EXPECT_EQ(partner_at(id, 3, 1), 0);
  EXPECT_EQ(partner_at(id, 2, 2), 0);
  EXPECT_EQ(partner_at(id, 0, 1), 1);
}

// The load-aware shuffle must never do worse than naive on max receive.
class ShuffleNeverHurts : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShuffleNeverHurts, MaxReceiveBounded) {
  apps::SplitMix64 rng(GetParam());
  const int n = 4 + static_cast<int>(rng.next() % 29);
  const int k = 2 + static_cast<int>(rng.next() % 4);
  SendMatrix m(n, k);
  for (int r = 0; r < n; ++r) {
    // Skewed loads: a few heavy ranks, mostly light ones.
    const bool heavy = rng.next_double() < 0.2;
    for (int p = 1; p < k; ++p) {
      m.at(r, p) = (heavy ? 200 : 10) + rng.next() % 10;
    }
  }
  const auto naive_recv = receive_chunks_per_rank(m, identity_shuffle(n));
  const auto smart_recv = receive_chunks_per_rank(m, rank_shuffle(m, k));
  const auto naive_max =
      *std::max_element(naive_recv.begin(), naive_recv.end());
  const auto smart_max =
      *std::max_element(smart_recv.begin(), smart_recv.end());
  // Conservation: total received == total sent under both arrangements.
  const auto total = [&](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  EXPECT_EQ(total(naive_recv), total(smart_recv));
  // The shuffle is a heuristic: on arbitrary load patterns it may lose to
  // naive by a little, but never catastrophically, and never below the
  // perfect-balance lower bound.
  EXPECT_LE(smart_max, 2 * naive_max);
  EXPECT_GE(smart_max,
            (total(smart_recv) + static_cast<std::uint64_t>(n) - 1) /
                static_cast<std::uint64_t>(n));
}

// The pattern the shuffle is designed for (paper Fig. 2): heavy senders
// adjacent in rank order.  Here the shuffle must strictly improve.
TEST(RankShuffle, ImprovesAdjacentHeavyRanks) {
  for (int n : {6, 12, 24, 48}) {
    for (int k : {3, 4, 6}) {
      // With n < 2k every receiver has both heavy ranks among its K-1
      // upstream senders no matter the arrangement; separation needs
      // room in the ring.
      if (n < 2 * k) continue;
      SendMatrix m(n, k);
      for (int r = 0; r < n; ++r) {
        for (int p = 1; p < k; ++p) m.at(r, p) = r < 2 ? 100 : 10;
      }
      const auto naive_recv = receive_chunks_per_rank(m, identity_shuffle(n));
      const auto smart_recv = receive_chunks_per_rank(m, rank_shuffle(m, k));
      EXPECT_LT(*std::max_element(smart_recv.begin(), smart_recv.end()),
                *std::max_element(naive_recv.begin(), naive_recv.end()))
          << "n=" << n << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLoads, ShuffleNeverHurts,
                         ::testing::Range<std::uint64_t>(1, 21));

// CALC_OFF invariant: within every receiver window, the K-1 sender regions
// are pairwise disjoint and tile [0, window_chunks) exactly.
class OffsetTiling : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OffsetTiling, RegionsTileEveryWindow) {
  apps::SplitMix64 rng(GetParam() * 977);
  const int n = 3 + static_cast<int>(rng.next() % 14);
  const int k = 2 + static_cast<int>(rng.next() % std::min(5, n - 1));
  SendMatrix m(n, k);
  for (int r = 0; r < n; ++r) {
    for (int p = 1; p < k; ++p) m.at(r, p) = rng.next() % 40;
  }
  const auto shuffle =
      GetParam() % 2 == 0 ? rank_shuffle(m, k) : identity_shuffle(n);

  for (int w_pos = 0; w_pos < n; ++w_pos) {
    const auto window = window_chunks(m, shuffle, w_pos);
    // Collect [begin, end) per sender writing into this window.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> regions;
    for (int d = 1; d < k; ++d) {
      const int sender_pos = ((w_pos - d) % n + n) % n;
      const int sender = shuffle[static_cast<std::size_t>(sender_pos)];
      const auto begin = put_offset_chunks(m, shuffle, sender_pos, d);
      regions.emplace_back(begin, begin + m.at(sender, d));
    }
    std::sort(regions.begin(), regions.end());
    std::uint64_t cursor = 0;
    for (const auto& [begin, end] : regions) {
      EXPECT_EQ(begin, cursor) << "gap or overlap in window " << w_pos;
      cursor = end;
    }
    EXPECT_EQ(cursor, window) << "window " << w_pos << " not fully tiled";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, OffsetTiling,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(Offsets, PaperProseExample) {
  // "rank i uses offset 0 for its partner i+1, offset j for its partner
  // i+2 (where j is the send size from i+1 to i+2)".
  constexpr int kN = 5;
  constexpr int kK = 3;
  SendMatrix m(kN, kK);
  for (int r = 0; r < kN; ++r) {
    m.at(r, 1) = 10 + static_cast<std::uint64_t>(r);
    m.at(r, 2) = 20 + static_cast<std::uint64_t>(r);
  }
  const auto id = identity_shuffle(kN);
  EXPECT_EQ(put_offset_chunks(m, id, 0, 1), 0u);
  // Partner of rank 0 at slot 2 is rank 2; rank 1 sends m.at(1, 1) chunks
  // to rank 2 (its slot-1 partner), occupying the window first.
  EXPECT_EQ(put_offset_chunks(m, id, 0, 2), m.at(1, 1));
}

TEST(SendMatrix, RowAccessors) {
  SendMatrix m(3, 2);
  const std::vector<std::uint64_t> row{5, 9};
  m.set_row(1, row);
  EXPECT_EQ(m.at(1, 0), 5u);
  EXPECT_EQ(m.at(1, 1), 9u);
  EXPECT_EQ(m.total_send(1), 9u);
  EXPECT_THROW(m.set_row(0, std::vector<std::uint64_t>{1}),
               std::invalid_argument);
}

}  // namespace
