// BoundedFpSet / HMERGE algebra: frequency accumulation, the top-F bound,
// load-aware K-truncation, serialization, and reduction-order robustness.
#include <gtest/gtest.h>

#include <vector>

#include "core/fingerprint_set.hpp"
#include "simmpi/archive.hpp"

namespace {

using namespace collrep;
using core::BoundedFpSet;
using hash::Fingerprint;

Fingerprint fp(std::uint64_t id) { return Fingerprint::from_u64(id); }

BoundedFpSet leaf(std::uint32_t f, int k, int nranks, int rank,
                  std::initializer_list<std::uint64_t> ids) {
  BoundedFpSet s(f, k, nranks);
  for (const auto id : ids) s.add_local(fp(id), rank);
  s.enforce_f();
  return s;
}

// Designated ranks of `f` as a materialized vector (empty when absent).
std::vector<std::int32_t> ranks_of(const BoundedFpSet& s, const Fingerprint& f) {
  const auto* e = s.find(f);
  if (e == nullptr) return {};
  const auto r = s.ranks(*e);
  return {r.begin(), r.end()};
}

TEST(BoundedFpSet, LeafConstruction) {
  const auto s = leaf(16, 3, 4, 2, {1, 2, 3});
  EXPECT_EQ(s.size(), 3u);
  ASSERT_NE(s.find(fp(1)), nullptr);
  EXPECT_EQ(s.find(fp(1))->freq, 1u);
  EXPECT_EQ(ranks_of(s, fp(1)), std::vector<std::int32_t>{2});
  EXPECT_EQ(s.rank_load()[2], 3u);
  EXPECT_TRUE(s.check_invariants());
}

TEST(BoundedFpSet, DuplicateLocalAddRejected) {
  // Adds are O(1) appends; the duplicate is diagnosed at the seal point.
  BoundedFpSet s(16, 3, 2);
  s.add_local(fp(1), 0);
  s.add_local(fp(1), 0);
  EXPECT_THROW(s.enforce_f(), std::logic_error);
}

TEST(BoundedFpSet, InvalidParamsRejected) {
  EXPECT_THROW(BoundedFpSet(0, 3, 2), std::invalid_argument);
  EXPECT_THROW(BoundedFpSet(16, 0, 2), std::invalid_argument);
  EXPECT_THROW(BoundedFpSet(16, 3, 0), std::invalid_argument);
}

TEST(BoundedFpSet, MergeSumsFrequencies) {
  auto a = leaf(16, 3, 4, 0, {1, 2});
  auto b = leaf(16, 3, 4, 1, {2, 3});
  a.merge_from(std::move(b));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.find(fp(1))->freq, 1u);
  EXPECT_EQ(a.find(fp(2))->freq, 2u);
  EXPECT_EQ(ranks_of(a, fp(2)), (std::vector<std::int32_t>{0, 1}));
  EXPECT_TRUE(a.check_invariants());
}

TEST(BoundedFpSet, MergeIncompatibleOperandsThrows) {
  auto a = leaf(16, 3, 4, 0, {1});
  EXPECT_THROW(a.merge_from(leaf(16, 2, 4, 1, {1})), std::invalid_argument);
  auto c = leaf(16, 3, 4, 0, {1});
  EXPECT_THROW(c.merge_from(leaf(8, 3, 4, 1, {1})), std::invalid_argument);
  auto d = leaf(16, 3, 4, 0, {1});
  EXPECT_THROW(d.merge_from(leaf(16, 3, 5, 1, {1})), std::invalid_argument);
}

TEST(BoundedFpSet, RankListCappedAtK) {
  constexpr int kK = 3;
  auto acc = leaf(64, kK, 8, 0, {7});
  for (int r = 1; r < 8; ++r) {
    acc.merge_from(leaf(64, kK, 8, r, {7}));
  }
  const auto* e = acc.find(fp(7));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->freq, 8u);  // frequency keeps counting past K
  EXPECT_EQ(acc.ranks(*e).size(), 3u);
  EXPECT_TRUE(acc.check_invariants());
}

TEST(BoundedFpSet, TruncationDropsMostLoadedRanks) {
  constexpr int kK = 2;
  // Rank 0 is designated for many fingerprints; rank 1 and 2 for one each.
  auto heavy = leaf(64, kK, 3, 0, {10, 11, 12, 13, 14});
  auto light1 = leaf(64, kK, 3, 1, {10});
  auto light2 = leaf(64, kK, 3, 2, {10});
  heavy.merge_from(std::move(light1));
  heavy.merge_from(std::move(light2));
  const auto* e = heavy.find(fp(10));
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(heavy.ranks(*e).size(), 2u);
  // Rank 0 (load 5) must have been eliminated in favour of ranks 1 and 2.
  EXPECT_EQ(ranks_of(heavy, fp(10)), (std::vector<std::int32_t>{1, 2}));
  EXPECT_TRUE(heavy.check_invariants());
}

TEST(BoundedFpSet, TopFKeepsMostFrequent) {
  constexpr std::uint32_t kF = 2;
  // fp 1 appears on 3 ranks, fp 2 on 2 ranks, fp 3 on 1 rank.
  auto a = leaf(kF, 4, 4, 0, {1, 2, 3});
  auto b = leaf(kF, 4, 4, 1, {1, 2});
  auto c = leaf(kF, 4, 4, 2, {1});
  a.merge_from(std::move(b));
  a.merge_from(std::move(c));
  EXPECT_EQ(a.size(), 2u);
  ASSERT_NE(a.find(fp(1)), nullptr);
  EXPECT_EQ(a.find(fp(1))->freq, 3u);
  ASSERT_NE(a.find(fp(2)), nullptr);
  EXPECT_EQ(a.find(fp(3)), nullptr);  // least frequent was dropped
  EXPECT_TRUE(a.check_invariants());
}

TEST(BoundedFpSet, EnforceFOnOversizedLeaf) {
  BoundedFpSet s(4, 2, 2);
  for (std::uint64_t i = 0; i < 10; ++i) s.add_local(fp(i), 0);
  const auto stats = s.enforce_f();
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(stats.entries_dropped_f, 6u);
  EXPECT_EQ(s.rank_load()[0], 4u);
  EXPECT_TRUE(s.check_invariants());
}

TEST(BoundedFpSet, MergeStatsReportScanAndDrops) {
  auto a = leaf(4, 2, 4, 0, {1, 2, 3, 4});
  auto b = leaf(4, 2, 4, 1, {5, 6, 7, 8});
  const auto stats = a.merge_from(std::move(b));
  EXPECT_EQ(stats.entries_scanned, 4u);
  EXPECT_EQ(stats.entries_dropped_f, 4u);  // 8 candidates, F = 4
  EXPECT_EQ(a.size(), 4u);
  EXPECT_TRUE(a.check_invariants());
}

TEST(BoundedFpSet, FrequencyContentIsMergeOrderIndependent) {
  // With F large enough that nothing is dropped, any reduction order must
  // produce identical (fp -> freq) content.  Designated-rank lists may
  // differ (load-based) but their sizes must match.
  constexpr int kRanks = 6;
  const auto make_leaf = [&](int r) {
    return leaf(1024, 3, kRanks,
                r, {static_cast<std::uint64_t>(r % 3), 100, 200ull + r});
  };

  auto left = make_leaf(0);
  for (int r = 1; r < kRanks; ++r) left.merge_from(make_leaf(r));

  // Pairwise tree order.
  auto t01 = make_leaf(0);
  t01.merge_from(make_leaf(1));
  auto t23 = make_leaf(2);
  t23.merge_from(make_leaf(3));
  auto t45 = make_leaf(4);
  t45.merge_from(make_leaf(5));
  t01.merge_from(std::move(t23));
  t01.merge_from(std::move(t45));

  EXPECT_EQ(left.size(), t01.size());
  for (const auto& e : left.entries()) {
    const auto* other = t01.find(e.fp);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->freq, e.freq);
    EXPECT_EQ(t01.ranks(*other).size(), left.ranks(e).size());
  }
  EXPECT_TRUE(left.check_invariants());
  EXPECT_TRUE(t01.check_invariants());
}

TEST(BoundedFpSet, PruneSingletonsKeepsOnlySharedEntries) {
  auto a = leaf(64, 3, 4, 0, {1, 2, 3});
  a.merge_from(leaf(64, 3, 4, 1, {2, 3}));
  a.merge_from(leaf(64, 3, 4, 2, {3}));
  EXPECT_EQ(a.prune_singletons(), 1u);  // fp 1 had freq 1
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.find(fp(1)), nullptr);
  ASSERT_NE(a.find(fp(2)), nullptr);
  EXPECT_EQ(a.find(fp(3))->freq, 3u);
  EXPECT_TRUE(a.check_invariants());
  EXPECT_EQ(a.prune_singletons(), 0u);  // idempotent
}

TEST(BoundedFpSet, SerializationRoundTrip) {
  auto a = leaf(16, 3, 4, 0, {1, 2});
  a.merge_from(leaf(16, 3, 4, 1, {2, 3}));

  const auto bytes = simmpi::to_bytes(a);
  const auto b = simmpi::from_bytes<BoundedFpSet>(bytes);

  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.f_cap(), a.f_cap());
  EXPECT_EQ(b.k(), a.k());
  ASSERT_NE(b.find(fp(2)), nullptr);
  EXPECT_EQ(b.find(fp(2))->freq, 2u);
  EXPECT_EQ(ranks_of(b, fp(2)), (std::vector<std::int32_t>{0, 1}));
  EXPECT_TRUE(b.check_invariants());
}

TEST(BoundedFpSet, SerializedSizeScalesWithEntries) {
  auto small = leaf(1024, 3, 4, 0, {1});
  BoundedFpSet big(1024, 3, 4);
  for (std::uint64_t i = 0; i < 100; ++i) big.add_local(fp(i), 0);
  EXPECT_GT(simmpi::to_bytes(big).size(), simmpi::to_bytes(small).size());
}

TEST(BoundedFpSet, LoadBalancingSpreadsDesignations) {
  // All ranks hold the same 12 fingerprints; with K=2 and 4 ranks the
  // designations should end up spread rather than piled on rank 0.
  constexpr int kRanks = 4;
  constexpr int kK = 2;
  const auto make_leaf = [&](int r) {
    BoundedFpSet s(64, kK, kRanks);
    for (std::uint64_t i = 0; i < 12; ++i) s.add_local(fp(i), r);
    s.enforce_f();
    return s;
  };
  auto acc = make_leaf(0);
  for (int r = 1; r < kRanks; ++r) acc.merge_from(make_leaf(r));

  const auto load = acc.rank_load();
  const std::uint32_t total = load[0] + load[1] + load[2] + load[3];
  EXPECT_EQ(total, 12u * kK);
  for (int r = 0; r < kRanks; ++r) {
    // Perfect balance would be 6 each; allow slack but forbid starvation
    // and monopolies.
    EXPECT_GE(load[r], 2u) << "rank " << r;
    EXPECT_LE(load[r], 10u) << "rank " << r;
  }
  EXPECT_TRUE(acc.check_invariants());
}

}  // namespace
