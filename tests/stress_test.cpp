// Stress and ordering tests for the runtime: ordered (non-commutative-
// looking) reductions, large payloads, window fan-in, and repeated
// checkpoint epochs through the full pipeline.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "apps/rng.hpp"
#include "test_util.hpp"

namespace {

using namespace collrep;

TEST(Stress, OrderedConcatAllreduce) {
  // The binomial combination is rank-ordered, so an associative (but not
  // commutative) concatenation must produce r0 r1 ... r(n-1) everywhere.
  for (const int n : {1, 2, 5, 8, 13}) {
    simmpi::Runtime rt(n);
    rt.run([&](simmpi::Comm& comm) {
      // Append-style to dodge the GCC 12 -Wrestrict false positive on
      // chained string operator+ (GCC PR105651).
      std::string mine = "r";
      mine += std::to_string(comm.rank());
      mine += ' ';
      const auto all = simmpi::allreduce(
          comm, mine,
          [](std::string a, std::string b) { return a + b; });
      std::string expected;
      for (int r = 0; r < n; ++r) {
        expected += 'r';
        expected += std::to_string(r);
        expected += ' ';
      }
      EXPECT_EQ(all, expected);
    });
  }
}

TEST(Stress, LargeAllgatherPayloads) {
  constexpr int kRanks = 12;
  simmpi::Runtime rt(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    std::vector<std::uint8_t> mine(64 * 1024);
    apps::SplitMix64 rng(static_cast<std::uint64_t>(comm.rank()) + 1);
    rng.fill(mine);
    const auto all = simmpi::allgather(comm, mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(kRanks));
    for (int r = 0; r < kRanks; ++r) {
      std::vector<std::uint8_t> expected(64 * 1024);
      apps::SplitMix64 check(static_cast<std::uint64_t>(r) + 1);
      check.fill(expected);
      EXPECT_EQ(all[static_cast<std::size_t>(r)], expected) << "rank " << r;
    }
  });
}

TEST(Stress, WindowFanInFromAllRanks) {
  // Every rank puts a distinct cell into rank 0's window; heavy lock
  // contention on one target must stay correct.
  constexpr int kRanks = 24;
  simmpi::Runtime rt(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    auto win = comm.win_create(comm.rank() == 0 ? kRanks * 8 : 0);
    std::vector<std::uint8_t> cell(8, static_cast<std::uint8_t>(comm.rank()));
    win.put(0, static_cast<std::size_t>(comm.rank()) * 8, cell);
    win.fence();
    if (comm.rank() == 0) {
      const auto local = win.local();
      for (int r = 0; r < kRanks; ++r) {
        EXPECT_EQ(local[static_cast<std::size_t>(r) * 8], r);
        EXPECT_EQ(local[static_cast<std::size_t>(r) * 8 + 7], r);
      }
    }
    win.free();
  });
}

TEST(Stress, RepeatedEpochsKeepNewestRestorable) {
  // Ten checkpoint epochs with evolving data; the restore must always
  // reflect the last epoch, with stores accumulating chunk history.
  constexpr int kRanks = 4;
  constexpr int kEpochs = 10;
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<std::vector<std::uint8_t>> latest(kRanks);

  simmpi::Runtime rt(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      std::vector<std::uint8_t> data(2048);
      apps::SplitMix64 rng(
          static_cast<std::uint64_t>(epoch) * 100 + static_cast<std::uint64_t>(r));
      rng.fill(data);
      chunk::Dataset ds;
      ds.add_segment(data);
      core::DumpConfig cfg;
      cfg.chunk_bytes = 256;
      cfg.epoch = static_cast<std::uint64_t>(epoch);
      core::Dumper dumper(comm, stores[static_cast<std::size_t>(r)], cfg);
      (void)dumper.dump_output(ds, 2);
      latest[static_cast<std::size_t>(r)] = std::move(data);
    }
  });

  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  for (int r = 0; r < kRanks; ++r) {
    const auto restored = core::restore_rank(ptrs, r);
    EXPECT_EQ(restored.segments.at(0), latest[static_cast<std::size_t>(r)]);
  }
}

TEST(Stress, ManyWindowsInFlight) {
  // Eight concurrent windows with puts issued before any fence; each
  // window's content must come from the right epoch and sender.
  constexpr int kRanks = 6;
  simmpi::Runtime rt(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    std::vector<simmpi::Window> windows;
    for (int w = 0; w < 8; ++w) {
      windows.push_back(comm.win_create(2 * kRanks));
    }
    for (int w = 0; w < 8; ++w) {
      const std::vector<std::uint8_t> cell(
          2, static_cast<std::uint8_t>(w * 16 + comm.rank()));
      windows[static_cast<std::size_t>(w)].put(
          (comm.rank() + 1 + w) % kRanks,
          static_cast<std::size_t>(comm.rank()) * 2, cell);
    }
    for (auto& w : windows) w.fence();
    for (int w = 0; w < 8; ++w) {
      const int sender = ((comm.rank() - 1 - w) % kRanks + kRanks) % kRanks;
      const auto local = windows[static_cast<std::size_t>(w)].local();
      EXPECT_EQ(local[static_cast<std::size_t>(sender) * 2],
                static_cast<std::uint8_t>(w * 16 + sender));
    }
    for (auto& w : windows) w.free();
  });
}

}  // namespace
