// Tests for the collcheck static analyzer (ctest label: analyze).
//
// The fixture corpus under tools/collcheck/fixtures/ seeds at least two
// true positives and one clean negative per rule family; these tests pin
// the exact rule ids and line numbers, so a rule that silently stops
// firing (a false negative) fails the suite, and a rule that starts
// firing on the clean fixtures (a false positive) fails it too.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analyzer.hpp"
#include "baseline.hpp"
#include "sarif.hpp"
#include "schedule.hpp"

namespace {

using collcheck::AnalysisResult;
using collcheck::AnalyzerOptions;
using collcheck::Finding;

// (rule, file, line) triples for exact-match assertions.
using Key = std::tuple<std::string, std::string, int>;

std::set<Key> keys(const AnalysisResult& result) {
  std::set<Key> out;
  for (const Finding& f : result.findings) {
    out.insert({f.rule, f.file, f.line});
  }
  return out;
}

AnalysisResult scan_fixture(const std::string& family) {
  AnalyzerOptions options;
  options.include_fixtures = true;
  return collcheck::analyze_paths({"tools/collcheck/fixtures/" + family},
                                  COLLCHECK_REPO_ROOT, options);
}

constexpr const char* kFx = "tools/collcheck/fixtures/";

TEST(Collcheck, DivergentCollectiveFamily) {
  const auto result = scan_fixture("divergent");
  const std::set<Key> expected = {
      {"CC-SCHED-DIV", std::string(kFx) + "divergent/bad_direct.cpp", 12},
      {"CC-COLL-DIV", std::string(kFx) + "divergent/bad_direct.cpp", 13},
      {"CC-SCHED-DIV", std::string(kFx) + "divergent/bad_direct.cpp", 20},
      {"CC-COLL-DIV", std::string(kFx) + "divergent/bad_direct.cpp", 23},
      {"CC-SCHED-DIV", std::string(kFx) + "divergent/bad_interproc.cpp", 15},
      {"CC-COLL-DIV-CALL", std::string(kFx) + "divergent/bad_interproc.cpp",
       16},
  };
  EXPECT_EQ(keys(result), expected);
  // clean.cpp (unconditional collectives, rank-guarded p2p, inline allow)
  // must contribute nothing — verified by the exact-set match above.
}

TEST(Collcheck, ScheduleDivergenceFamily) {
  const auto result = scan_fixture("sched");
  const std::set<Key> expected = {
      // bad_div.cpp: mismatched branch schedules + early-return skip.
      {"CC-SCHED-DIV", std::string(kFx) + "sched/bad_div.cpp", 13},
      {"CC-COLL-DIV", std::string(kFx) + "sched/bad_div.cpp", 14},
      {"CC-COLL-DIV", std::string(kFx) + "sched/bad_div.cpp", 16},
      {"CC-SCHED-DIV", std::string(kFx) + "sched/bad_div.cpp", 22},
      {"CC-COLL-DIV", std::string(kFx) + "sched/bad_div.cpp", 25},
      // bad_order.cpp: same multiset, swapped order — direct and via
      // differently-named helper calls.
      {"CC-SCHED-ORDER", std::string(kFx) + "sched/bad_order.cpp", 10},
      {"CC-COLL-DIV", std::string(kFx) + "sched/bad_order.cpp", 11},
      {"CC-COLL-DIV", std::string(kFx) + "sched/bad_order.cpp", 12},
      {"CC-COLL-DIV", std::string(kFx) + "sched/bad_order.cpp", 14},
      {"CC-COLL-DIV", std::string(kFx) + "sched/bad_order.cpp", 15},
      {"CC-SCHED-ORDER", std::string(kFx) + "sched/bad_order.cpp", 32},
      {"CC-COLL-DIV-CALL", std::string(kFx) + "sched/bad_order.cpp", 33},
      {"CC-COLL-DIV-CALL", std::string(kFx) + "sched/bad_order.cpp", 35},
      // bad_loop.cpp: rank-dependent trip counts around collectives.
      {"CC-SCHED-LOOP", std::string(kFx) + "sched/bad_loop.cpp", 10},
      {"CC-COLL-DIV", std::string(kFx) + "sched/bad_loop.cpp", 11},
      {"CC-SCHED-LOOP", std::string(kFx) + "sched/bad_loop.cpp", 17},
      {"CC-COLL-DIV", std::string(kFx) + "sched/bad_loop.cpp", 18},
      // bad_unwind.cpp: collectives on the RankDeadError unwind path,
      // direct and behind a helper.
      {"CC-SCHED-UNWIND", std::string(kFx) + "sched/bad_unwind.cpp", 14},
      {"CC-SCHED-UNWIND", std::string(kFx) + "sched/bad_unwind.cpp", 28},
  };
  EXPECT_EQ(keys(result), expected);
  // clean.cpp (config alternation, schedule-equal arms, order-equal
  // helpers behind different names, invariant loops, sanctioned recovery
  // handler) must contribute nothing — exact-set match above.
}

TEST(Collcheck, FiberReadinessFamily) {
  const auto result = scan_fixture("fiber");
  const std::string dir = std::string(kFx) + "fiber/src/simmpi/";
  const std::set<Key> expected = {
      {"CC-FIBER-BLOCK", dir + "bad_block.cpp", 24},  // cv_.wait
      {"CC-FIBER-BLOCK", dir + "bad_block.cpp", 29},  // sleep_for
      {"CC-FIBER-BLOCK", dir + "bad_block.cpp", 39},  // mutex across barrier
      {"CC-FIBER-TLS", dir + "bad_tls.cpp", 6},
      {"CC-FIBER-TLS", dir + "bad_tls.cpp", 9},
  };
  EXPECT_EQ(keys(result), expected);
  // clean.cpp carries the same primitives under `collcheck: fiber-safe`
  // annotations plus atomic polling — none of it may fire.
}

TEST(Collcheck, RmaEpochFamily) {
  const auto result = scan_fixture("rma");
  const std::set<Key> expected = {
      {"CC-RMA-NOEPOCH", std::string(kFx) + "rma/bad_noepoch.cpp", 13},
      {"CC-RMA-FLAG", std::string(kFx) + "rma/bad_noepoch.cpp", 20},
      {"CC-RMA-NOSUCCEED", std::string(kFx) + "rma/bad_nosucceed.cpp", 13},
  };
  EXPECT_EQ(keys(result), expected);
}

TEST(Collcheck, LayeringFamily) {
  const auto result = scan_fixture("layering");
  const std::set<Key> expected = {
      {"CC-LAYER-UP", std::string(kFx) + "layering/src/ec/bad_up.hpp", 4},
      {"CC-LAYER-CROSS", std::string(kFx) + "layering/src/hash/bad_cross.hpp",
       4},
      {"CC-LAYER-UNKNOWN",
       std::string(kFx) + "layering/src/widgets/unregistered.hpp", 1},
  };
  EXPECT_EQ(keys(result), expected);
}

TEST(Collcheck, DeterminismFamily) {
  const auto result = scan_fixture("determinism");
  const std::set<Key> expected = {
      {"CC-BANNED-FUNC", std::string(kFx) + "determinism/bad_banned.cpp", 10},
      {"CC-BANNED-FUNC", std::string(kFx) + "determinism/bad_banned.cpp", 14},
      {"CC-NONDET-CLOCK",
       std::string(kFx) + "determinism/src/core/bad_clock.cpp", 8},
      {"CC-NONDET-CLOCK",
       std::string(kFx) + "determinism/src/core/bad_clock.cpp", 13},
      {"CC-NONDET-RAND",
       std::string(kFx) + "determinism/src/core/bad_rand.cpp", 9},
      {"CC-NONDET-RAND",
       std::string(kFx) + "determinism/src/core/bad_rand.cpp", 14},
      {"CC-NONDET-RAND",
       std::string(kFx) + "determinism/src/core/bad_rand.cpp", 19},
  };
  EXPECT_EQ(keys(result), expected);
  // clean_harness.cpp proves the scoping: wall clocks and random_device in
  // a harness layer are fine — absent from the exact set above.
}

TEST(Collcheck, LocksetRaceFamily) {
  const auto result = scan_fixture("race");
  const std::set<Key> expected = {
      // The pre-fix FaultSchedule::at_point scan order (the PR-7 race):
      // `ev.fired` read before the rank-ownership filter.
      {"CC-RACE-OWNER", std::string(kFx) + "race/bad_atpoint.cpp", 21},
      {"CC-RACE-UNGUARDED", std::string(kFx) + "race/bad_unguarded.cpp", 17},
      {"CC-RACE-UNGUARDED", std::string(kFx) + "race/bad_unguarded.cpp", 18},
      {"CC-RACE-LOCKORDER", std::string(kFx) + "race/bad_unguarded.cpp", 23},
      {"CC-RACE-LOCKORDER", std::string(kFx) + "race/bad_unguarded.cpp", 29},
  };
  EXPECT_EQ(keys(result), expected);
  // clean.cpp (locked accesses, atomic counter, consistent lock order,
  // filter-first scan) must contribute nothing — exact-set match above.
}

TEST(Collcheck, FailureUnwindFamily) {
  const auto result = scan_fixture("exc");
  const std::set<Key> expected = {
      {"CC-EXC-NOEXCEPT", std::string(kFx) + "exc/bad_noexcept.cpp", 9},
      {"CC-EXC-NOEXCEPT", std::string(kFx) + "exc/bad_noexcept.cpp", 17},
      {"CC-EXC-RESOURCE", std::string(kFx) + "exc/bad_resource.cpp", 13},
      {"CC-EXC-SWALLOW", std::string(kFx) + "exc/bad_resource.cpp", 22},
  };
  EXPECT_EQ(keys(result), expected);
  // clean.cpp (RAII lock across barrier, recover-then-rethrow handler,
  // throw-free noexcept accessor) must contribute nothing.
}

TEST(Collcheck, P2pProtocolFamily) {
  const auto result = scan_fixture("p2p");
  const std::set<Key> expected = {
      {"CC-P2P-UNMATCHED", std::string(kFx) + "p2p/bad_unmatched.cpp", 13},
      {"CC-P2P-UNMATCHED", std::string(kFx) + "p2p/bad_unmatched.cpp", 19},
      {"CC-P2P-SELF", std::string(kFx) + "p2p/bad_selftag.cpp", 14},
      {"CC-P2P-TAGDIV", std::string(kFx) + "p2p/bad_selftag.cpp", 24},
      {"CC-P2P-TAGDIV", std::string(kFx) + "p2p/bad_selftag.cpp", 25},
  };
  EXPECT_EQ(keys(result), expected);
  // clean.cpp (ring shift over matched constant/offset tags) must
  // contribute nothing; kPairTag in bad_unmatched.cpp is matched too.
}

TEST(Collcheck, ProductionScanSkipsFixtures) {
  // Without --include-fixtures, the seeded corpus must never leak into a
  // repo scan.
  const auto result = collcheck::analyze_paths(
      {"tools/collcheck/fixtures"}, COLLCHECK_REPO_ROOT, AnalyzerOptions{});
  EXPECT_TRUE(result.findings.empty());
  EXPECT_TRUE(result.files.empty());
}

TEST(Collcheck, RepoTreeIsCleanModuloBaseline) {
  // The acceptance bar for the repo itself: everything collcheck finds on
  // src/ must be covered by the checked-in baseline.
  const auto result = collcheck::analyze_paths({"src"}, COLLCHECK_REPO_ROOT,
                                               AnalyzerOptions{});
  std::vector<std::string> errors;
  const auto baseline = collcheck::load_baseline(
      std::string(COLLCHECK_REPO_ROOT) + "/tools/collcheck/baseline.txt",
      errors);
  EXPECT_TRUE(errors.empty());
  std::vector<Finding> active;
  for (const Finding& f : result.findings) {
    if (!baseline.suppresses(f)) active.push_back(f);
  }
  for (const Finding& f : active) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
}

TEST(Collcheck, LayerTablePinsTheDag) {
  // The DAG from DESIGN.md §10, pinned so a rank edit is a conscious act.
  EXPECT_EQ(collcheck::layer_rank("kernels"), 0);
  EXPECT_EQ(collcheck::layer_rank("simtime"), 0);
  EXPECT_EQ(collcheck::layer_rank("obs"), 0);
  EXPECT_EQ(collcheck::layer_rank("hash"), 1);
  EXPECT_EQ(collcheck::layer_rank("ec"), 1);
  EXPECT_EQ(collcheck::layer_rank("simmpi"), 2);
  EXPECT_EQ(collcheck::layer_rank("chunk"), 3);
  EXPECT_EQ(collcheck::layer_rank("core"), 4);
  EXPECT_EQ(collcheck::layer_rank("fault"), 5);
  EXPECT_EQ(collcheck::layer_rank("check"), 5);
  EXPECT_EQ(collcheck::layer_rank("recover"), 5);
  EXPECT_EQ(collcheck::layer_rank("ftrt"), 6);
  EXPECT_EQ(collcheck::layer_rank("apps"), 7);
  EXPECT_GE(collcheck::layer_rank("tests"), 100);
  EXPECT_EQ(collcheck::layer_rank("no-such-layer"), -1);

  EXPECT_EQ(collcheck::component_of("src/core/dump.cpp"), "core");
  // The merge kernel family lives at the bottom of the DAG: core's
  // planned HMERGE may depend on it, never the other way around.
  EXPECT_EQ(collcheck::component_of("src/kernels/merge_kernels.cpp"),
            "kernels");
  EXPECT_EQ(
      collcheck::layer_rank(
          collcheck::component_of("src/kernels/merge_kernels.cpp")),
      0);
  EXPECT_EQ(collcheck::component_of("tests/dump_test.cpp"), "tests");
  EXPECT_EQ(collcheck::component_of(
                "tools/collcheck/fixtures/layering/src/ec/bad_up.hpp"),
            "ec");
}

TEST(Collcheck, InlineAllowSuppressesSameAndNextLine) {
  // f demonstrates both placements: a trailing same-line allow on the
  // branch (CC-SCHED-DIV) and a preceding-line allow on the collective
  // (CC-COLL-DIV).  g is identical but unannotated, so both rules fire.
  const std::string src =
      "void f(collrep::simmpi::Comm& comm) {\n"
      "  if (comm.rank() == 0) {  // collcheck:allow(CC-SCHED-DIV)\n"
      "    // collcheck:allow(CC-COLL-DIV)\n"
      "    comm.barrier();\n"
      "  }\n"
      "}\n"
      "void g(collrep::simmpi::Comm& comm) {\n"
      "  if (comm.rank() == 0) {\n"
      "    comm.barrier();\n"
      "  }\n"
      "}\n";
  const auto result =
      collcheck::analyze_sources({{"src/core/allow_demo.cpp", src}});
  const std::set<Key> expected = {
      {"CC-SCHED-DIV", "src/core/allow_demo.cpp", 8},
      {"CC-COLL-DIV", "src/core/allow_demo.cpp", 9},
  };
  EXPECT_EQ(keys(result), expected);
}

TEST(Collcheck, BaselineParsingAndStaleDetection) {
  // Exercised through the string-level API via a temp file is overkill;
  // drive the matcher directly.
  collcheck::Baseline bl;
  bl.entries.push_back({"CC-COLL-DIV", "src/core/x.cpp", 10, "note", false});
  bl.entries.push_back({"CC-COLL-DIV", "src/core/y.cpp", 0, "wild", false});
  bl.entries.push_back({"CC-NONDET-RAND", "src/core/z.cpp", 3, "", false});

  EXPECT_TRUE(bl.suppresses({"CC-COLL-DIV", "src/core/x.cpp", 10, ""}));
  EXPECT_FALSE(bl.suppresses({"CC-COLL-DIV", "src/core/x.cpp", 11, ""}));
  EXPECT_TRUE(bl.suppresses({"CC-COLL-DIV", "src/core/y.cpp", 99, ""}));
  EXPECT_FALSE(bl.suppresses({"CC-RMA-FLAG", "src/core/y.cpp", 99, ""}));

  const auto stale = bl.unused();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0]->file, "src/core/z.cpp");
}

TEST(Collcheck, BaselineRoundTrip) {
  // write-baseline -> reload -> every original finding suppressed, and a
  // finding that goes away shows up as a stale entry.
  const std::vector<Finding> findings = {
      {"CC-RACE-UNGUARDED", "src/core/a.cpp", 10, "unguarded write"},
      {"CC-EXC-SWALLOW", "src/core/b.cpp", 20, "swallowed # with hash"},
      {"CC-P2P-UNMATCHED", "src/core/c.cpp", 30, "orphan send"},
  };
  const std::string path =
      testing::TempDir() + "/collcheck_roundtrip_baseline.txt";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open());
    out << collcheck::format_baseline(findings);
  }
  std::vector<std::string> errors;
  const auto baseline = collcheck::load_baseline(path, errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(baseline.entries.size(), findings.size());
  for (const Finding& f : findings) {
    EXPECT_TRUE(baseline.suppresses(f))
        << f.rule << " " << f.file << ":" << f.line;
  }
  EXPECT_TRUE(baseline.unused().empty());

  // Second run where the b.cpp finding was fixed: its entry goes stale.
  std::vector<std::string> errors2;
  const auto baseline2 = collcheck::load_baseline(path, errors2);
  EXPECT_TRUE(baseline2.suppresses(findings[0]));
  EXPECT_TRUE(baseline2.suppresses(findings[2]));
  const auto stale = baseline2.unused();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0]->file, "src/core/b.cpp");
  EXPECT_EQ(stale[0]->rule, "CC-EXC-SWALLOW");
  std::remove(path.c_str());
}

TEST(Collcheck, SarifOutputIsWellFormed) {
  const std::vector<Finding> findings = {
      {"CC-COLL-DIV", "src/core/dump.cpp", 42, "message with \"quotes\""},
  };
  const std::string sarif = collcheck::to_sarif(findings, "1.2.3");
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"CC-COLL-DIV\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 42"), std::string::npos);
  EXPECT_NE(sarif.find("message with \\\"quotes\\\""), std::string::npos);
  // Every rule in the catalog is described in the driver block.
  for (const collcheck::RuleInfo& r : collcheck::rule_catalog()) {
    EXPECT_NE(sarif.find(std::string(r.id)), std::string::npos)
        << "missing rule " << r.id;
  }
}

TEST(Collcheck, RankConditionalP2pDoesNotFire) {
  const std::string src =
      "void root_io(collrep::simmpi::Comm& comm) {\n"
      "  if (comm.rank() == 0) {\n"
      "    comm.send_value(1, 7, 123);\n"
      "  } else {\n"
      "    (void)comm.recv_value<int>(0, 7);\n"
      "  }\n"
      "  comm.barrier();\n"
      "}\n";
  const auto result =
      collcheck::analyze_sources({{"src/core/p2p_demo.cpp", src}});
  EXPECT_TRUE(result.findings.empty());
}

TEST(Collcheck, TaintFlowsThroughAssignment) {
  const std::string src =
      "void f(collrep::simmpi::Comm& comm) {\n"
      "  const int me = comm.rank();\n"
      "  const int leader = me == 0 ? 1 : 0;\n"
      "  if (leader == 1) {\n"
      "    comm.barrier();\n"
      "  }\n"
      "}\n";
  const auto result =
      collcheck::analyze_sources({{"src/core/taint_demo.cpp", src}});
  const std::set<Key> expected = {
      {"CC-SCHED-DIV", "src/core/taint_demo.cpp", 4},
      {"CC-COLL-DIV", "src/core/taint_demo.cpp", 5},
  };
  EXPECT_EQ(keys(result), expected);
}

TEST(Collcheck, BaselineFixedPointWithScheduleRules) {
  // --write-baseline followed by --fail-on-new must be a fixed point:
  // every finding (including the schedule/fiber families, whose entries
  // carry fixture paths) suppressed, zero stale entries.  This is the
  // drift contract scripts/analyze.sh relies on.
  const auto sched = scan_fixture("sched");
  const auto fiber = scan_fixture("fiber");
  std::vector<Finding> findings = sched.findings;
  findings.insert(findings.end(), fiber.findings.begin(),
                  fiber.findings.end());
  ASSERT_FALSE(findings.empty());
  bool has_sched_rule = false;
  for (const Finding& f : findings) {
    if (f.rule.rfind("CC-SCHED-", 0) == 0 ||
        f.rule.rfind("CC-FIBER-", 0) == 0) {
      has_sched_rule = true;
    }
  }
  ASSERT_TRUE(has_sched_rule);

  const std::string path = testing::TempDir() + "/collcheck_sched_fp.txt";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open());
    out << collcheck::format_baseline(findings);
  }
  std::vector<std::string> errors;
  const auto baseline = collcheck::load_baseline(path, errors);
  EXPECT_TRUE(errors.empty());
  for (const Finding& f : findings) {
    EXPECT_TRUE(baseline.suppresses(f))
        << f.rule << " " << f.file << ":" << f.line;
  }
  EXPECT_TRUE(baseline.unused().empty());
  std::remove(path.c_str());
}

TEST(Collcheck, ScheduleDumpIsByteStableAndCoversEntryPoints) {
  // The --dump-schedules artifact is a CI drift gate: two analyses of the
  // same tree must render byte-identical text, and the snapshot must
  // cover the public entry points named in DESIGN.md §15.
  const auto first = collcheck::analyze_paths({"src"}, COLLCHECK_REPO_ROOT,
                                              AnalyzerOptions{});
  const auto second = collcheck::analyze_paths({"src"}, COLLCHECK_REPO_ROOT,
                                               AnalyzerOptions{});
  const std::string a = collcheck::dump_schedules(first.files);
  const std::string b = collcheck::dump_schedules(second.files);
  EXPECT_EQ(a, b);

  EXPECT_NE(a.find("entry DUMP_OUTPUT = dump_output"), std::string::npos);
  EXPECT_NE(a.find("entry checkpoint_now = checkpoint_now"),
            std::string::npos);
  EXPECT_NE(a.find("entry recover_world = recover_world"),
            std::string::npos);
  EXPECT_NE(a.find("entry repair_replicas = repair_replicas"),
            std::string::npos);
  EXPECT_NE(a.find("entry pfs_restore = pfs_restore"), std::string::npos);
  // The dump is inter-procedural: checkpoint_now's schedule reaches the
  // recovery unwind handler through shielded_dump_attempt.
  EXPECT_NE(a.find("catch<simmpi::RankDeadError>( recover_world{"),
            std::string::npos);
  // p2p ops are visible in dump renderings (unlike ORDER signatures).
  EXPECT_NE(a.find("p2p:send_value"), std::string::npos);
}

TEST(Collcheck, OrderSignatureInlinesHelpersTransparently) {
  // Two branches calling differently-named helpers with identical
  // schedules must NOT trip CC-SCHED-ORDER: signatures inline callees
  // without their names.
  const std::string src =
      "void ping(collrep::simmpi::Comm& comm) { comm.barrier(); }\n"
      "void pong(collrep::simmpi::Comm& comm) { comm.barrier(); }\n"
      "void route(collrep::simmpi::Comm& comm) {\n"
      "  if (comm.rank() == 0) {  // collcheck:allow(CC-COLL-DIV-CALL)\n"
      "    ping(comm);\n"
      "  } else {\n"
      "    pong(comm);  // collcheck:allow(CC-COLL-DIV-CALL)\n"
      "  }\n"
      "}\n";
  const auto result =
      collcheck::analyze_sources({{"src/core/order_demo.cpp", src}});
  EXPECT_TRUE(result.findings.empty());
}

}  // namespace
