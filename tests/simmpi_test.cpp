// Unit tests for the message-passing runtime: point-to-point semantics,
// barriers, exception propagation, and the simulated-clock causality rules.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"

namespace {

using namespace collrep;

TEST(Runtime, RanksSeeTheirIdentity) {
  simmpi::Runtime rt(5);
  std::vector<int> seen(5, -1);
  rt.run([&](simmpi::Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    seen[static_cast<std::size_t>(comm.rank())] = comm.rank();
  });
  for (int r = 0; r < 5; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], r);
}

TEST(Runtime, SingleRankWorks) {
  simmpi::Runtime rt(1);
  int visits = 0;
  rt.run([&](simmpi::Comm& comm) {
    comm.barrier();
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(Runtime, ZeroRanksRejected) {
  EXPECT_THROW(simmpi::Runtime rt(0), std::invalid_argument);
}

TEST(Runtime, ExceptionPropagatesToCaller) {
  simmpi::Runtime rt(4);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
    if (comm.rank() == 2) throw std::runtime_error("rank 2 failed");
    // Other ranks block on a message that will never come; the abort
    // must wake them instead of deadlocking.
    (void)comm.recv_bytes((comm.rank() + 1) % 4, 9);
  }),
               std::runtime_error);
}

TEST(Runtime, ExceptionInBarrierAborts) {
  simmpi::Runtime rt(3);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
    if (comm.rank() == 0) throw std::logic_error("boom");
    comm.barrier();
  }),
               std::logic_error);
}

TEST(PointToPoint, BytesArriveInOrder) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    constexpr int kTag = 5;
    if (comm.rank() == 0) {
      for (std::uint8_t i = 0; i < 10; ++i) {
        comm.send_bytes(1, kTag, std::span<const std::uint8_t>{&i, 1});
      }
    } else {
      for (std::uint8_t i = 0; i < 10; ++i) {
        const auto msg = comm.recv_bytes(0, kTag);
        ASSERT_EQ(msg.size(), 1u);
        EXPECT_EQ(msg[0], i);
      }
    }
  });
}

TEST(PointToPoint, TagsAreIndependentChannels) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, std::string{"tag one"});
      comm.send_value(1, 2, std::string{"tag two"});
    } else {
      // Receive in reverse send order: matching is by tag.
      EXPECT_EQ(comm.recv_value<std::string>(0, 2), "tag two");
      EXPECT_EQ(comm.recv_value<std::string>(0, 1), "tag one");
    }
  });
}

TEST(PointToPoint, TypedRoundTrip) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    const std::vector<double> payload{1.0, 2.5, -3.0};
    if (comm.rank() == 0) {
      comm.send_value(1, 7, payload);
    } else {
      EXPECT_EQ(comm.recv_value<std::vector<double>>(0, 7), payload);
    }
  });
}

TEST(PointToPoint, InvalidRankRejected) {
  simmpi::Runtime rt(2);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
    if (comm.rank() == 0) {
      const std::uint8_t b = 0;
      comm.send_bytes(5, 0, std::span<const std::uint8_t>{&b, 1});
    }
  }),
               std::out_of_range);
}

TEST(PointToPoint, SelfSendWorks) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    comm.send_value(comm.rank(), 3, comm.rank() * 10);
    // Deliberate self-recv: the matching self-send above is already in the
    // mailbox, which is exactly what this test pins.
    // collcheck:allow(CC-P2P-SELF)
    EXPECT_EQ(comm.recv_value<int>(comm.rank(), 3), comm.rank() * 10);
  });
}

TEST(Clock, MessageDeliveryAdvancesReceiverClock) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.clock().advance(1.0);  // sender is 1 simulated second ahead
      comm.send_value(1, 0, 42);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 0), 42);
      // Receiver cannot observe the message before it was sent.
      EXPECT_GE(comm.clock().now(), 1.0);
    }
  });
}

TEST(Clock, BarrierAlignsClocksToMax) {
  simmpi::Runtime rt(4);
  std::vector<double> after(4, 0.0);
  rt.run([&](simmpi::Comm& comm) {
    comm.clock().advance(static_cast<double>(comm.rank()));
    comm.barrier();
    after[static_cast<std::size_t>(comm.rank())] = comm.clock().now();
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_GE(after[static_cast<std::size_t>(r)], 3.0);
    EXPECT_EQ(after[static_cast<std::size_t>(r)], after[0]);
  }
}

TEST(Clock, InterNodeTransfersAreSlower) {
  simmpi::RuntimeOptions opts;
  opts.cluster.ranks_per_node = 2;  // ranks 0,1 node 0; rank 2 node 1
  simmpi::Runtime rt(3, opts);
  std::vector<double> arrival(3, 0.0);
  rt.run([&](simmpi::Comm& comm) {
    const std::vector<std::uint8_t> big(1 << 20, 1);
    if (comm.rank() == 0) {
      comm.send_bytes(1, 0, big);
      comm.send_bytes(2, 0, big);
    } else {
      (void)comm.recv_bytes(0, 0);
      arrival[static_cast<std::size_t>(comm.rank())] = comm.clock().now();
    }
  });
  // Same payload: the intra-node receiver observed it much earlier.
  EXPECT_LT(arrival[1] * 5, arrival[2]);
}

TEST(Clock, ChargeAccumulates) {
  simmpi::Runtime rt(1);
  rt.run([&](simmpi::Comm& comm) {
    comm.charge(0.5);
    comm.charge(0.25);
    comm.charge(-1.0);  // negative charges are ignored (monotone clock)
    EXPECT_DOUBLE_EQ(comm.clock().now(), 0.75);
  });
}

TEST(Runtime, ManyRanksBarrierStorm) {
  constexpr int kRanks = 64;
  simmpi::Runtime rt(kRanks);
  std::atomic<int> count{0};
  rt.run([&](simmpi::Comm& comm) {
    for (int i = 0; i < 20; ++i) comm.barrier();
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), kRanks);
}

TEST(Runtime, ReusableForSequentialRuns) {
  simmpi::Runtime rt(3);
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> sum{0};
    rt.run([&](simmpi::Comm& comm) { sum.fetch_add(comm.rank()); });
    EXPECT_EQ(sum.load(), 3);
  }
}

TEST(Window, EpochBytesRecvCountedAtFenceDelivery) {
  simmpi::Runtime rt(3);
  rt.run([&](simmpi::Comm& comm) {
    auto win = comm.win_create(256);
    // Rank 0 sends 32 modeled bytes to rank 1 and 64 (16 real standing in
    // for 64 on the wire) to rank 2; nobody targets rank 0.
    if (comm.rank() == 0) {
      const std::vector<std::uint8_t> data(32, 0xAB);
      win.put(1, 0, data);
      win.put(2, 0, std::span<const std::uint8_t>{data.data(), 16}, 64);
    }
    // Nothing is delivered before the fence.
    EXPECT_EQ(comm.epoch_bytes_recv(), 0u);
    win.fence();
    const std::uint64_t expected =
        comm.rank() == 1 ? 32u : (comm.rank() == 2 ? 64u : 0u);
    EXPECT_EQ(comm.epoch_bytes_recv(), expected);
    EXPECT_EQ(comm.epoch_bytes_put(), 0u);  // put tally reset by the fence

    // An empty follow-up epoch overwrites the reading with 0.
    win.fence();
    EXPECT_EQ(comm.epoch_bytes_recv(), 0u);
    win.free();
  });
}

TEST(Window, EpochBytesRecvResetsPerEpoch) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    auto win = comm.win_create(64);
    const std::vector<std::uint8_t> data(8, 1);
    if (comm.rank() == 0) win.put(1, 0, data);
    win.fence();
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.epoch_bytes_recv(), 8u);
    }
    // Second epoch flows the other way; readings track the latest fence.
    if (comm.rank() == 1) win.put(0, 0, data);
    win.fence();
    EXPECT_EQ(comm.epoch_bytes_recv(), comm.rank() == 0 ? 8u : 0u);
    win.free();
  });
}

}  // namespace
