// Incremental checkpointing behaviour: because stores are content
// addressed, a second epoch re-stores only the chunks that actually
// changed — unchanged application pages dedupe against the previous
// epoch "for free" (the observation behind Nicolae's earlier IPDPS'13
// inline-dedup work that this paper builds on).  Also sweeps the EC dump
// across (group_size, parity, nranks) geometries.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/rng.hpp"
#include "apps/synth.hpp"
#include "core/group_parity.hpp"
#include "test_util.hpp"

namespace {

using namespace collrep;

TEST(Incremental, SecondEpochStoresOnlyChangedChunks) {
  constexpr int kRanks = 4;
  constexpr std::size_t kPage = 256;
  constexpr std::size_t kPages = 32;

  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<std::uint64_t> device_bytes_after_e1(kRanks);
  std::vector<std::uint64_t> device_bytes_after_e2(kRanks);
  std::vector<std::vector<std::uint8_t>> final_data(kRanks);

  simmpi::Runtime rt(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    std::vector<std::uint8_t> data(kPages * kPage);
    apps::SplitMix64 rng(7000 + static_cast<std::uint64_t>(r));
    rng.fill(data);

    core::DumpConfig cfg;
    cfg.chunk_bytes = kPage;
    cfg.epoch = 1;
    {
      chunk::Dataset ds;
      ds.add_segment(data);
      core::Dumper dumper(comm, stores[static_cast<std::size_t>(r)], cfg);
      (void)dumper.dump_output(ds, 2);
    }
    device_bytes_after_e1[static_cast<std::size_t>(r)] =
        stores[static_cast<std::size_t>(r)].stored_bytes();

    // Mutate exactly 2 of 32 pages, checkpoint again.
    data[3 * kPage + 11] ^= 0xFF;
    data[17 * kPage + 200] ^= 0xFF;
    cfg.epoch = 2;
    {
      chunk::Dataset ds;
      ds.add_segment(data);
      core::Dumper dumper(comm, stores[static_cast<std::size_t>(r)], cfg);
      (void)dumper.dump_output(ds, 2);
    }
    device_bytes_after_e2[static_cast<std::size_t>(r)] =
        stores[static_cast<std::size_t>(r)].stored_bytes();
    final_data[static_cast<std::size_t>(r)] = std::move(data);
  });

  for (int r = 0; r < kRanks; ++r) {
    const auto grew = device_bytes_after_e2[static_cast<std::size_t>(r)] -
                      device_bytes_after_e1[static_cast<std::size_t>(r)];
    // Own 2 changed pages + up to 2 received changed pages (K=2 partner).
    EXPECT_LE(grew, 4 * kPage) << "rank " << r;
    EXPECT_GE(grew, 2 * kPage) << "rank " << r;
  }

  // The newest epoch restores (manifest epoch precedence).
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(core::restore_rank(ptrs, r).segments.at(0),
              final_data[static_cast<std::size_t>(r)]);
  }
}

TEST(Incremental, OldEpochChunksServeNewManifests) {
  // A chunk stored in epoch 1 and unchanged in epoch 2 must satisfy the
  // epoch-2 manifest even if no epoch-2 write touched it.
  constexpr std::size_t kPage = 128;
  std::vector<chunk::ChunkStore> stores(3);
  std::vector<std::uint8_t> stable(4 * kPage, 0x3C);

  simmpi::Runtime rt(3);
  rt.run([&](simmpi::Comm& comm) {
    core::DumpConfig cfg;
    cfg.chunk_bytes = kPage;
    for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
      cfg.epoch = epoch;
      chunk::Dataset ds;
      ds.add_segment(stable);
      core::Dumper dumper(
          comm, stores[static_cast<std::size_t>(comm.rank())], cfg);
      (void)dumper.dump_output(ds, 2);
    }
  });
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  const auto restored = core::restore_rank(ptrs, 1);
  EXPECT_EQ(restored.segments.at(0), stable);
  // Three epochs of identical data: the store holds it once.
  EXPECT_LE(stores[1].stored_bytes(), 2 * 4 * kPage);
}

// ---- EC geometry sweep through the full dump + failure + restore path ------

using EcSweepParam = std::tuple<int, int, int>;  // (m, r, nranks)

class EcDumpSweep : public ::testing::TestWithParam<EcSweepParam> {};

TEST_P(EcDumpSweep, SurvivesParityFailuresInEveryGroup) {
  const auto [m, r, nranks] = GetParam();
  core::EcConfig cfg;
  cfg.group_size = m;
  cfg.parity = r;
  cfg.chunk_bytes = 128;
  cfg.use_collective_dedup = true;

  apps::SynthSpec spec;
  spec.chunk_bytes = 128;
  spec.chunks = 10;
  spec.local_dup = 0.1;
  spec.global_shared = 0.3;
  spec.seed = static_cast<std::uint64_t>(m * 100 + r);

  std::vector<chunk::ChunkStore> stores(static_cast<std::size_t>(nranks));
  std::vector<std::vector<std::uint8_t>> datasets(
      static_cast<std::size_t>(nranks));
  simmpi::Runtime rt(nranks);
  rt.run([&](simmpi::Comm& comm) {
    const int rank = comm.rank();
    datasets[static_cast<std::size_t>(rank)] =
        apps::synth_dataset(rank, nranks, spec);
    chunk::Dataset ds;
    ds.add_segment(datasets[static_cast<std::size_t>(rank)]);
    core::EcDumper dumper(comm, stores[static_cast<std::size_t>(rank)], cfg);
    (void)dumper.dump_output(ds);
  });

  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  // Fail the first min(r, members) ranks of group 0.
  apps::SplitMix64 rng(11);
  int failures = 0;
  while (failures < r) {
    const auto v = static_cast<std::size_t>(
        rng.next() % static_cast<std::uint64_t>(nranks));
    if (!ptrs[v]->failed()) {
      ptrs[v]->fail();
      ++failures;
    }
  }
  // Failures may straddle groups; each group sees at most r losses among
  // members+holders only in expectation — to keep the guarantee exact,
  // heal any group that lost more than r of its members+holders.
  for (int g = 0; g < core::ec_group_count(nranks, cfg); ++g) {
    auto members = core::ec_group_members(g, nranks, cfg);
    const auto holders = core::ec_parity_holders(g, nranks, cfg);
    members.insert(members.end(), holders.begin(), holders.end());
    int lost = 0;
    for (const int rank : members) {
      if (ptrs[static_cast<std::size_t>(rank)]->failed()) ++lost;
    }
    if (lost > r) {
      for (const int rank : members) {
        ptrs[static_cast<std::size_t>(rank)]->recover();
      }
    }
  }

  for (int rank = 0; rank < nranks; ++rank) {
    const auto restored = core::ec_restore_rank(ptrs, rank, cfg);
    EXPECT_EQ(restored.segments.at(0),
              datasets[static_cast<std::size_t>(rank)])
        << "m=" << m << " r=" << r << " n=" << nranks << " rank=" << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, EcDumpSweep,
    ::testing::Values(EcSweepParam{2, 1, 6}, EcSweepParam{3, 1, 7},
                      EcSweepParam{3, 2, 9}, EcSweepParam{4, 2, 12},
                      EcSweepParam{4, 3, 11}, EcSweepParam{5, 2, 10},
                      EcSweepParam{2, 2, 8}),
    [](const testing::TestParamInfo<EcSweepParam>& pinfo) {
      // Append-style to dodge the GCC 12 -Wrestrict false positive on
      // chained string operator+ (GCC PR105651).
      std::string name = "m";
      name += std::to_string(std::get<0>(pinfo.param));
      name += "_r";
      name += std::to_string(std::get<1>(pinfo.param));
      name += "_n";
      name += std::to_string(std::get<2>(pinfo.param));
      return name;
    });

}  // namespace
