// Deterministic fuzz harness for the collcheck front end (ctest label:
// analyze).  The lexer and the extractor/rule pipeline take arbitrary
// bytes from the repo tree; this suite feeds them seeded mutations of
// realistic sources and asserts they neither crash nor violate basic
// output invariants.  tier1.sh runs the analyze label under ASan/UBSan,
// which is where the real payoff is: any out-of-bounds token index or
// unterminated-literal overrun trips the sanitizer.
//
// Everything is seeded from fixed constants — no random_device, no wall
// clock — so a failure reproduces exactly from the (seed, round) pair
// printed in the assertion message.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "lexer.hpp"
#include "schedule.hpp"

namespace {

// xorshift64*: tiny, deterministic, and good enough for byte mutation.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed | 1) {}
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

// Seed corpus: small but chosen to reach every lexer mode (raw strings,
// block comments, continued preprocessor lines, char literals, allow
// markers) and every extractor structure (if/else-if chains, switch,
// loops, try/catch, lambdas, rank taint, p2p, collectives).
const std::vector<std::string>& corpus() {
  static const std::vector<std::string> kSeeds = {
      // Lexer edge cases.
      "// collcheck:allow(CC-COLL-DIV, CC-SCHED-DIV)\n"
      "/* block\n comment */ R\"x(raw \" string)x\" 'c' '\\''\n"
      "#include \"simmpi/comm.hpp\"\n"
      "#include <vector>\n"
      "#define M(a, b) \\\n  ((a) + (b))\n"
      "auto s = \"esc \\\" quote\"; int n = 0x1fULL; float f = 1.5e-3f;\n",
      // Divergent collectives + taint flow.
      "void f(collrep::simmpi::Comm& comm) {\n"
      "  const int me = comm.rank();\n"
      "  if (me == 0) { comm.barrier(); }\n"
      "  else if (me == 1) { collrep::simmpi::bcast(comm, me, 0); }\n"
      "  else { comm.send_value(0, 7, me); }\n"
      "  for (int i = 0; i < me; ++i) { comm.barrier(); }\n"
      "}\n",
      // Unwind + switch + sanctioned recovery.
      "void g(collrep::simmpi::Comm& comm, int mode) {\n"
      "  try {\n"
      "    switch (mode) {\n"
      "      case 0: comm.barrier(); break;\n"
      "      default: break;\n"
      "    }\n"
      "  } catch (const collrep::simmpi::RankDeadError&) {\n"
      "    comm.barrier();\n"
      "    throw;\n"
      "  }\n"
      "}\n",
      // Locks, waits, thread_local (fiber rules + race rules).
      "struct W {\n"
      "  std::mutex mu_;\n"
      "  std::condition_variable cv_;\n"
      "  int hits_ = 0;\n"
      "  void park() {\n"
      "    std::unique_lock<std::mutex> lk(mu_);\n"
      "    cv_.wait(lk, [this] { return hits_ > 0; });\n"
      "  }\n"
      "};\n"
      "thread_local int slot = 0;\n",
      // p2p protocol + RMA shapes.
      "void ring(collrep::simmpi::Comm& comm) {\n"
      "  const int next = (comm.rank() + 1) % comm.size();\n"
      "  comm.send_value(next, 5, 1);\n"
      "  (void)comm.recv_value<int>((comm.rank() + comm.size() - 1) %\n"
      "                             comm.size(), 5);\n"
      "  auto win = comm.win_create(8);\n"
      "}\n",
      // Pathological nesting / unterminated constructs.
      "void h() { if (x) { while (y) { do { { [ ( < \" \n"
      "/* unterminated block comment...\n",
  };
  return kSeeds;
}

// One mutation step: flip, overwrite, insert, delete, duplicate a span,
// or truncate.  Operates on raw bytes so the lexer sees arbitrary input.
std::string mutate(std::string s, Rng& rng) {
  if (s.empty()) return std::string(1, static_cast<char>(rng.below(256)));
  switch (rng.below(6)) {
    case 0:  // bit flip
      s[rng.below(s.size())] ^= static_cast<char>(1 << rng.below(8));
      break;
    case 1:  // overwrite with interesting byte
      s[rng.below(s.size())] = "\"'/{}()\\\n\0#"[rng.below(11)];
      break;
    case 2:  // insert
      s.insert(rng.below(s.size() + 1), 1,
               static_cast<char>(rng.below(256)));
      break;
    case 3:  // delete
      s.erase(rng.below(s.size()), 1 + rng.below(4));
      break;
    case 4: {  // duplicate a span (grows bracket nesting, repeats tokens)
      const std::size_t b = rng.below(s.size());
      const std::size_t len = 1 + rng.below(std::min<std::size_t>(
                                      16, s.size() - b));
      s.insert(rng.below(s.size() + 1), s.substr(b, len));
      break;
    }
    default:  // truncate (unterminated everything)
      s.resize(rng.below(s.size() + 1));
      break;
  }
  return s;
}

TEST(CollcheckFuzz, LexerSurvivesMutatedBytes) {
  for (std::size_t seed = 0; seed < corpus().size(); ++seed) {
    Rng rng(0x9E3779B97F4A7C15ULL + seed);
    std::string input = corpus()[seed];
    for (int round = 0; round < 400; ++round) {
      input = mutate(input, rng);
      const collcheck::LexedFile lexed = collcheck::lex(input);
      int prev_line = 1;
      for (const collcheck::Token& t : lexed.tokens) {
        ASSERT_GE(t.line, prev_line)
            << "token lines regressed (seed " << seed << ", round "
            << round << ")";
        prev_line = t.line;
      }
      for (const auto& [line, rules] : lexed.allows) {
        ASSERT_GE(line, 1) << "allow on impossible line (seed " << seed
                           << ", round " << round << ")";
        ASSERT_FALSE(rules.empty());
      }
      // Occasionally restart from the seed so mutations don't random-walk
      // into pure noise and miss the structured edge cases.
      if (round % 97 == 96) input = corpus()[seed];
    }
  }
}

TEST(CollcheckFuzz, PipelineSurvivesMutatedSources) {
  for (std::size_t seed = 0; seed < corpus().size(); ++seed) {
    Rng rng(0xD1B54A32D192ED03ULL + seed);
    std::string input = corpus()[seed];
    for (int round = 0; round < 150; ++round) {
      input = mutate(input, rng);
      // src/simmpi path: routes through the strictest rule set (sim
      // component => fiber + determinism rules) and the schedule pass.
      const collcheck::AnalysisResult result = collcheck::analyze_sources(
          {{"src/simmpi/fuzz_demo.cpp", input},
           {"src/core/fuzz_other.cpp", corpus()[(seed + 1) % corpus().size()]}});
      for (const collcheck::Finding& f : result.findings) {
        ASSERT_GE(f.line, 1) << "finding on impossible line (seed " << seed
                             << ", round " << round << ")";
        ASSERT_EQ(f.rule.rfind("CC-", 0), 0u)
            << "unknown rule id '" << f.rule << "' (seed " << seed
            << ", round " << round << ")";
      }
      // The schedule dump must never crash on garbage either; stability
      // matters only for valid input, termination matters for all input.
      (void)collcheck::dump_schedules(result.files);
      if (round % 53 == 52) input = corpus()[seed];
    }
  }
}

TEST(CollcheckFuzz, MutationIsDeterministic) {
  // The harness itself must be reproducible: same seed, same sequence.
  Rng a(42);
  Rng b(42);
  std::string sa = corpus()[0];
  std::string sb = corpus()[0];
  for (int i = 0; i < 100; ++i) {
    sa = mutate(sa, a);
    sb = mutate(sb, b);
  }
  EXPECT_EQ(sa, sb);
}

}  // namespace
