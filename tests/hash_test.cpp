// Unit tests for the hash substrate: SHA-1 against RFC 3174 / FIPS test
// vectors, XXH64 and CRC-32C against published reference values, FNV-1a
// against its specification constants, and the Fingerprint/registry API.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "hash/crc32c.hpp"
#include "hash/fingerprint.hpp"
#include "hash/fnv.hpp"
#include "hash/hasher.hpp"
#include "hash/sha1.hpp"
#include "hash/xx64.hpp"

namespace {

using namespace collrep::hash;

std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

std::string sha1_hex(std::string_view input) {
  const auto digest = Sha1::digest(as_bytes(input));
  return Fingerprint{std::span<const std::uint8_t>{digest}}.hex();
}

// -- SHA-1 -------------------------------------------------------------------

TEST(Sha1, EmptyString) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Rfc3174TestCase2) {
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  const std::string input(1000000, 'a');
  EXPECT_EQ(sha1_hex(input), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(sha1_hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, StreamingMatchesOneShot) {
  const std::string input =
      "streaming interface must produce identical digests";
  for (std::size_t split = 0; split <= input.size(); ++split) {
    Sha1 h;
    h.update(as_bytes(std::string_view{input}.substr(0, split)));
    h.update(as_bytes(std::string_view{input}.substr(split)));
    std::array<std::uint8_t, Sha1::kDigestBytes> digest{};
    h.finish(digest);
    EXPECT_EQ(digest, Sha1::digest(as_bytes(input))) << "split=" << split;
  }
}

TEST(Sha1, StreamingByteAtATime) {
  const std::string input(257, 'x');
  Sha1 h;
  for (char c : input) {
    h.update({reinterpret_cast<const std::uint8_t*>(&c), 1});
  }
  std::array<std::uint8_t, Sha1::kDigestBytes> digest{};
  h.finish(digest);
  EXPECT_EQ(digest, Sha1::digest(as_bytes(input)));
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update(as_bytes("first"));
  std::array<std::uint8_t, Sha1::kDigestBytes> d1{};
  h.finish(d1);
  h.reset();
  h.update(as_bytes("abc"));
  std::array<std::uint8_t, Sha1::kDigestBytes> d2{};
  h.finish(d2);
  EXPECT_EQ(d2, Sha1::digest(as_bytes("abc")));
}

// Block-boundary lengths are where padding bugs hide.
class Sha1LengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha1LengthSweep, PaddingConsistency) {
  const std::size_t len = GetParam();
  std::vector<std::uint8_t> data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  // Digest computed in two pieces must equal the one-shot digest for every
  // length near the 64-byte block boundary.
  Sha1 h;
  const std::size_t half = len / 2;
  h.update(std::span<const std::uint8_t>{data.data(), half});
  h.update(std::span<const std::uint8_t>{data.data() + half, len - half});
  std::array<std::uint8_t, Sha1::kDigestBytes> streamed{};
  h.finish(streamed);
  EXPECT_EQ(streamed, Sha1::digest(data));
}

INSTANTIATE_TEST_SUITE_P(BlockBoundaries, Sha1LengthSweep,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           118, 119, 120, 127, 128, 129, 255,
                                           256, 1000));

// -- XXH64 -------------------------------------------------------------------

TEST(Xx64, PublishedVectors) {
  // Reference values from the xxHash specification test suite.
  EXPECT_EQ(xx64(as_bytes(""), 0), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(xx64(as_bytes(""), 1), 0xD5AFBA1336A3BE4Bull);
  EXPECT_EQ(xx64(as_bytes("a"), 0), 0xD24EC4F1A98C6E5Bull);
  EXPECT_EQ(xx64(as_bytes("abc"), 0), 0x44BC2CF5AD770999ull);
  EXPECT_EQ(xx64(as_bytes("The quick brown fox jumps over the lazy dog"), 0),
            0x0B242D361FDA71BCull);
}

TEST(Xx64, SeedChangesResult) {
  const auto data = as_bytes("same input, different seed");
  EXPECT_NE(xx64(data, 0), xx64(data, 1));
}

TEST(Xx64, AllInternalPaths) {
  // <4, <8, <32 and >=32 byte paths.
  for (std::size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 31u, 32u, 33u, 64u, 100u}) {
    std::vector<std::uint8_t> a(len, 0x5A);
    std::vector<std::uint8_t> b(len, 0x5A);
    EXPECT_EQ(xx64(a), xx64(b));
    if (len > 0) {
      b[len / 2] ^= 1;
      EXPECT_NE(xx64(a), xx64(b)) << "len=" << len;
    }
  }
}

// -- FNV-1a ------------------------------------------------------------------

TEST(Fnv, SpecificationConstants) {
  EXPECT_EQ(fnv1a64(as_bytes("")), kFnvOffsetBasis);
  // Known FNV-1a 64 values.
  EXPECT_EQ(fnv1a64(as_bytes("a")), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fnv1a64(as_bytes("foobar")), 0x85944171F73967E8ull);
}

TEST(Fnv, Constexpr) {
  static constexpr std::uint8_t kBytes[] = {'a'};
  static_assert(fnv1a64(std::span<const std::uint8_t>{kBytes, 1}) ==
                0xAF63DC4C8601EC8Cull);
  SUCCEED();
}

// -- CRC-32C -----------------------------------------------------------------

TEST(Crc32c, PublishedVectors) {
  // RFC 3720 (iSCSI) reference vectors.
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
  std::vector<std::uint8_t> inc(32);
  for (std::size_t i = 0; i < 32; ++i) inc[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(crc32c(inc), 0x46DD794Eu);
  EXPECT_EQ(crc32c(as_bytes("123456789")), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(crc32c(as_bytes("")), 0u); }

// -- Fingerprint -------------------------------------------------------------

TEST(Fingerprint, DefaultIsZero) {
  Fingerprint fp;
  EXPECT_EQ(fp.hex(), std::string(40, '0'));
  EXPECT_EQ(fp.prefix64(), 0u);
}

TEST(Fingerprint, FromU64RoundTrip) {
  const auto fp = Fingerprint::from_u64(0x0123456789ABCDEFull);
  EXPECT_EQ(fp.prefix64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(fp.hex().substr(16), std::string(24, '0'));
}

TEST(Fingerprint, Ordering) {
  const auto a = Fingerprint::from_u64(1);
  const auto b = Fingerprint::from_u64(2);
  EXPECT_LT(a, b);  // little-endian low byte differs
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Fingerprint::from_u64(1));
}

TEST(Fingerprint, HashUsableInContainers) {
  std::unordered_map<Fingerprint, int> map;
  map[Fingerprint::from_u64(7)] = 1;
  map[Fingerprint::from_u64(8)] = 2;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at(Fingerprint::from_u64(7)), 1);
}

TEST(Fingerprint, TruncatesLongDigest) {
  std::vector<std::uint8_t> digest(32, 0xAB);
  const Fingerprint fp{digest};
  std::string expected;
  for (int i = 0; i < 20; ++i) expected += "ab";
  EXPECT_EQ(fp.hex(), expected);
}

// -- Registry ----------------------------------------------------------------

TEST(HashRegistry, AllKindsResolve) {
  for (const auto kind : {HashKind::kSha1, HashKind::kXx64, HashKind::kFnv64,
                          HashKind::kCrc32c}) {
    const auto& hasher = hasher_for(kind);
    EXPECT_EQ(hasher.kind(), kind);
    EXPECT_GT(hasher.modeled_bytes_per_second(), 0.0);
  }
}

TEST(HashRegistry, NamesRoundTrip) {
  for (const auto kind : {HashKind::kSha1, HashKind::kXx64, HashKind::kFnv64,
                          HashKind::kCrc32c}) {
    EXPECT_EQ(parse_hash_kind(to_string(kind)), kind);
  }
  EXPECT_THROW((void)parse_hash_kind("md5"), std::invalid_argument);
}

TEST(HashRegistry, Sha1HasherMatchesRawSha1) {
  const auto data = as_bytes("registry consistency");
  const auto digest = Sha1::digest(data);
  EXPECT_EQ(hasher_for(HashKind::kSha1).fingerprint(data),
            Fingerprint{std::span<const std::uint8_t>{digest}});
}

TEST(HashRegistry, DifferentKindsDisagree) {
  const auto data = as_bytes("disambiguation");
  EXPECT_NE(hasher_for(HashKind::kSha1).fingerprint(data),
            hasher_for(HashKind::kXx64).fingerprint(data));
}

class HasherDistinguishesInputs
    : public ::testing::TestWithParam<HashKind> {};

TEST_P(HasherDistinguishesInputs, NearbyInputsDiffer) {
  const auto& hasher = hasher_for(GetParam());
  std::vector<std::uint8_t> base(4096, 0x11);
  const auto fp0 = hasher.fingerprint(base);
  for (std::size_t pos : {0u, 1u, 2047u, 4094u, 4095u}) {
    auto copy = base;
    copy[pos] ^= 0x01;
    EXPECT_NE(hasher.fingerprint(copy), fp0) << "pos=" << pos;
  }
  EXPECT_EQ(hasher.fingerprint(base), fp0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HasherDistinguishesInputs,
                         ::testing::Values(HashKind::kSha1, HashKind::kXx64,
                                           HashKind::kFnv64,
                                           HashKind::kCrc32c));

}  // namespace
