// LZSS compression: round trips across data shapes, ratio sanity on
// compressible vs incompressible inputs, and malformed-stream rejection.
#include <gtest/gtest.h>

#include <vector>

#include "apps/rng.hpp"
#include "chunk/compress.hpp"

namespace {

using namespace collrep;
using chunk::lzss_compress;
using chunk::lzss_decompress;

std::vector<std::uint8_t> round_trip(const std::vector<std::uint8_t>& data) {
  return lzss_decompress(lzss_compress(data));
}

TEST(Lzss, EmptyInput) {
  const std::vector<std::uint8_t> empty;
  const auto packed = lzss_compress(empty);
  EXPECT_EQ(lzss_decompress(packed), empty);
}

TEST(Lzss, SingleByte) {
  const std::vector<std::uint8_t> one{0x42};
  EXPECT_EQ(round_trip(one), one);
}

TEST(Lzss, AllZerosCompressesHard) {
  const std::vector<std::uint8_t> zeros(16384, 0);
  const auto packed = lzss_compress(zeros);
  EXPECT_EQ(lzss_decompress(packed), zeros);
  EXPECT_LT(packed.size(), zeros.size() / 5);
}

TEST(Lzss, RepeatingPatternCompresses) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i) {
    for (std::uint8_t b : {0x10, 0x22, 0x37, 0x4D, 0x58}) data.push_back(b);
  }
  const auto packed = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(packed), data);
  EXPECT_LT(packed.size(), data.size() / 3);
}

TEST(Lzss, RandomDataDoesNotExplode) {
  std::vector<std::uint8_t> data(8192);
  apps::SplitMix64 rng(404);
  rng.fill(data);
  const auto packed = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(packed), data);
  // Incompressible: at worst 1/8 flag overhead + header.
  EXPECT_LT(packed.size(), data.size() + data.size() / 7 + 16);
}

TEST(Lzss, LongRangeMatchesWithinWindow) {
  // A block repeated at distance < 4096 must be found; beyond the window
  // it cannot be (still lossless, just larger).
  std::vector<std::uint8_t> block(512);
  apps::SplitMix64 rng(7);
  rng.fill(block);
  std::vector<std::uint8_t> near = block;
  near.insert(near.end(), block.begin(), block.end());  // distance 512
  const auto near_packed = lzss_compress(near);
  EXPECT_LT(near_packed.size(), block.size() + block.size() / 2);
  EXPECT_EQ(lzss_decompress(near_packed), near);

  std::vector<std::uint8_t> far = block;
  std::vector<std::uint8_t> filler(5000);
  rng.fill(filler);
  far.insert(far.end(), filler.begin(), filler.end());
  far.insert(far.end(), block.begin(), block.end());  // distance > window
  EXPECT_EQ(lzss_decompress(lzss_compress(far)), far);
}

class LzssFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LzssFuzz, RandomStructuredRoundTrips) {
  apps::SplitMix64 rng(GetParam() * 7919);
  std::vector<std::uint8_t> data;
  const int pieces = 1 + static_cast<int>(rng.next() % 20);
  for (int p = 0; p < pieces; ++p) {
    const auto kind = rng.next() % 3;
    const auto len = 1 + rng.next() % 2000;
    if (kind == 0) {  // constant run
      data.insert(data.end(), len, static_cast<std::uint8_t>(rng.next()));
    } else if (kind == 1 && !data.empty()) {  // self-copy
      const auto src = rng.next() % data.size();
      for (std::uint64_t i = 0; i < len; ++i) {
        data.push_back(data[(src + i) % data.size()]);
      }
    } else {  // noise
      std::vector<std::uint8_t> noise(len);
      rng.fill(noise);
      data.insert(data.end(), noise.begin(), noise.end());
    }
  }
  EXPECT_EQ(round_trip(data), data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzssFuzz,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(Lzss, MalformedStreamsRejected) {
  EXPECT_THROW((void)lzss_decompress(std::vector<std::uint8_t>{1, 2}),
               std::runtime_error);
  // Claims 100 bytes but provides none.
  std::vector<std::uint8_t> truncated{100, 0, 0, 0};
  EXPECT_THROW((void)lzss_decompress(truncated), std::runtime_error);
  // Match referencing before the start of output.
  std::vector<std::uint8_t> bad_dist{4, 0, 0, 0, 0x01, 0xFF, 0xFF};
  EXPECT_THROW((void)lzss_decompress(bad_dist), std::runtime_error);
}

}  // namespace
