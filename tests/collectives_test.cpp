// Collectives vs sequential oracles, across a sweep of rank counts
// (including non-powers of two, which stress the binomial trees).
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "simmpi/collectives.hpp"
#include "simmpi/runtime.hpp"

namespace {

using namespace collrep;

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BroadcastFromEveryRoot) {
  const int n = GetParam();
  simmpi::Runtime rt(n);
  rt.run([&](simmpi::Comm& comm) {
    for (int root = 0; root < n; ++root) {
      std::string value =
          comm.rank() == root ? "payload-" + std::to_string(root) : "";
      simmpi::bcast(comm, value, root);
      EXPECT_EQ(value, "payload-" + std::to_string(root));
    }
  });
}

TEST_P(CollectiveSweep, ReduceSumAtRoot) {
  const int n = GetParam();
  simmpi::Runtime rt(n);
  rt.run([&](simmpi::Comm& comm) {
    const int got = simmpi::reduce(
        comm, comm.rank() + 1, [](int a, int b) { return a + b; }, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(got, n * (n + 1) / 2);
    }
  });
}

TEST_P(CollectiveSweep, AllreduceSumEverywhere) {
  const int n = GetParam();
  simmpi::Runtime rt(n);
  rt.run([&](simmpi::Comm& comm) {
    EXPECT_EQ(simmpi::allreduce_sum(comm, comm.rank() + 1),
              n * (n + 1) / 2);
    EXPECT_EQ(simmpi::allreduce_max(comm, comm.rank()), n - 1);
  });
}

TEST_P(CollectiveSweep, AllreduceMergesSetsLikeHmerge) {
  const int n = GetParam();
  simmpi::Runtime rt(n);
  rt.run([&](simmpi::Comm& comm) {
    // Multiset-union operator (associative + commutative, like HMERGE).
    std::map<int, int> mine{{comm.rank() % 3, 1}};
    const auto merged = simmpi::allreduce(
        comm, mine, [](std::map<int, int> a, std::map<int, int> b) {
          for (const auto& [k, v] : b) a[k] += v;
          return a;
        });
    int total = 0;
    for (const auto& [k, v] : merged) total += v;
    EXPECT_EQ(total, n);  // every rank contributed exactly once
  });
}

TEST_P(CollectiveSweep, GatherCollectsByRank) {
  const int n = GetParam();
  simmpi::Runtime rt(n);
  rt.run([&](simmpi::Comm& comm) {
    const auto got = simmpi::gather(comm, comm.rank() * 2, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(static_cast<int>(got.size()), n);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(got[static_cast<std::size_t>(r)], r * 2);
      }
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST_P(CollectiveSweep, ScatterDistributesByRank) {
  const int n = GetParam();
  simmpi::Runtime rt(n);
  rt.run([&](simmpi::Comm& comm) {
    std::vector<std::string> values;
    if (comm.rank() == 0) {
      for (int r = 0; r < n; ++r) values.push_back("slot" + std::to_string(r));
    }
    const auto mine = simmpi::scatter(comm, values, 0);
    EXPECT_EQ(mine, "slot" + std::to_string(comm.rank()));
  });
}

TEST_P(CollectiveSweep, AllgatherEveryRankSeesAll) {
  const int n = GetParam();
  simmpi::Runtime rt(n);
  rt.run([&](simmpi::Comm& comm) {
    const auto all = simmpi::allgather(comm, comm.rank() * comm.rank());
    ASSERT_EQ(static_cast<int>(all.size()), n);
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * r);
    }
  });
}

TEST_P(CollectiveSweep, AllgatherOfVectors) {
  const int n = GetParam();
  simmpi::Runtime rt(n);
  rt.run([&](simmpi::Comm& comm) {
    const std::vector<std::uint64_t> mine(
        static_cast<std::size_t>(comm.rank() + 1),
        static_cast<std::uint64_t>(comm.rank()));
    const auto all = simmpi::allgather(comm, mine);
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r + 1));
      EXPECT_EQ(all[static_cast<std::size_t>(r)][0],
                static_cast<std::uint64_t>(r));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 17));

TEST(Collectives, BcastLargePayload) {
  simmpi::Runtime rt(6);
  rt.run([&](simmpi::Comm& comm) {
    std::vector<std::uint8_t> data;
    if (comm.rank() == 0) data.assign(1 << 18, 0xCD);
    simmpi::bcast(comm, data, 0);
    ASSERT_EQ(data.size(), static_cast<std::size_t>(1 << 18));
    EXPECT_EQ(data[12345], 0xCD);
  });
}

TEST(Collectives, ReduceIsDeterministicAcrossRuns) {
  // Floating-point reduction order is fixed by the binomial tree, so two
  // identical runs produce bit-identical results.
  const auto run_once = [] {
    simmpi::Runtime rt(7);
    double result = 0.0;
    rt.run([&](simmpi::Comm& comm) {
      const double mine = 0.1 * (comm.rank() + 1);
      const double sum =
          simmpi::allreduce(comm, mine, [](double a, double b) { return a + b; });
      if (comm.rank() == 0) result = sum;
    });
    return result;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Collectives, AllreduceAdvancesSimulatedTime) {
  simmpi::Runtime rt(8);
  rt.run([&](simmpi::Comm& comm) {
    const double before = comm.clock().now();
    (void)simmpi::allreduce_sum(comm, 1);
    comm.barrier();
    EXPECT_GT(comm.clock().now(), before);
  });
}

}  // namespace
