// End-to-end smoke: a small coll-dedup dump across ranks restores the
// original buffers byte-exactly even after K-1 store failures.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/collrep.hpp"

namespace {

using namespace collrep;

std::vector<std::uint8_t> make_data(int rank, std::size_t bytes) {
  std::vector<std::uint8_t> data(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    // Half the pages identical across ranks, half rank-specific.
    const bool shared_page = (i / 256) % 2 == 0;
    data[i] = static_cast<std::uint8_t>(shared_page ? i : i * 31 + rank);
  }
  return data;
}

TEST(Smoke, DumpAndRestoreUnderFailures) {
  constexpr int kRanks = 6;
  constexpr int kReplication = 3;
  constexpr std::size_t kBytes = 4096;

  simmpi::Runtime rt(kRanks);
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<std::vector<std::uint8_t>> originals(kRanks);

  rt.run([&](simmpi::Comm& comm) {
    originals[comm.rank()] = make_data(comm.rank(), kBytes);
    chunk::Dataset ds;
    ds.add_segment(originals[comm.rank()]);
    core::DumpConfig cfg;
    cfg.chunk_bytes = 256;
    core::Dumper dumper(comm, stores[comm.rank()], cfg);
    const auto stats = dumper.dump_output(ds, kReplication);
    EXPECT_EQ(stats.dataset_bytes, kBytes);
    EXPECT_GT(stats.total_time_s, 0.0);
  });

  // Kill K-1 stores; every rank must still restore byte-exactly.
  stores[0].fail();
  stores[3].fail();
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  for (int r = 0; r < kRanks; ++r) {
    const auto restored = core::restore_rank(ptrs, r);
    ASSERT_EQ(restored.segments.size(), 1u);
    EXPECT_EQ(restored.segments[0], originals[r]) << "rank " << r;
  }
}

}  // namespace
