// Application workloads: HPCCG solver correctness and redundancy profile,
// MiniCM stability/determinism, and the synthetic generator's knobs.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "apps/hpccg.hpp"
#include "apps/minicm.hpp"
#include "apps/rng.hpp"
#include "apps/synth.hpp"
#include "core/collrep.hpp"
#include "ftrt/tracked_arena.hpp"

namespace {

using namespace collrep;

// -- HPCCG ---------------------------------------------------------------------

TEST(Hpccg, CgResidualDecreasesAndConverges) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    apps::HpccgConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 8;
    apps::HpccgSolver solver(comm, arena, cfg);
    const double r10 = solver.iterate(10);
    const double r40 = solver.iterate(30);
    EXPECT_LT(r40, r10);
    EXPECT_LT(r40, 1e-6);  // diagonally dominant system converges fast
    EXPECT_EQ(solver.iterations_done(), 40);
  });
}

TEST(Hpccg, MatrixShapeMatchesStencil) {
  simmpi::Runtime rt(1);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    apps::HpccgConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 4;
    apps::HpccgSolver solver(comm, arena, cfg);
    EXPECT_EQ(solver.nrows(), 64u);
    // Interior rows have 27 entries; a 4^3 block has a single interior
    // 2^3 core.  Corner rows have 8.  Total = sum over rows of
    // (1+min(ix,1)+...) — just bound it.
    EXPECT_GT(solver.nnz(), 64u * 8);
    EXPECT_LT(solver.nnz(), 64u * 27);
  });
}

TEST(Hpccg, ChargesSimulatedComputeTime) {
  simmpi::Runtime rt(1);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    apps::HpccgConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 8;
    apps::HpccgSolver solver(comm, arena, cfg);
    const double before = comm.clock().now();
    (void)solver.iterate(5);
    EXPECT_GT(comm.clock().now(), before);
  });
}

TEST(Hpccg, WeakScalingProducesCrossRankMatrixDuplicates) {
  // The paper's key observation: in weak scaling, matrix pages coincide
  // across ranks while vector pages do not.  Verify with the pipeline.
  constexpr int kRanks = 4;
  simmpi::Runtime rt(kRanks);
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<core::DumpStats> stats(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    apps::HpccgConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 8;
    apps::HpccgSolver solver(comm, arena, cfg);
    (void)solver.iterate(5);
    core::DumpConfig dump_cfg;
    dump_cfg.chunk_bytes = 512;  // scaled page size (see bench/bench_util.hpp)
    core::Dumper dumper(comm, stores[static_cast<std::size_t>(comm.rank())],
                        dump_cfg);
    stats[static_cast<std::size_t>(comm.rank())] =
        dumper.dump_output(arena.snapshot(), 3);
  });
  std::uint64_t total = 0;
  std::uint64_t local_unique = 0;
  std::uint64_t global_unique = 0;
  for (const auto& s : stats) {
    total += s.dataset_bytes;
    local_unique += s.local_unique_bytes;
    global_unique += s.owned_unique_bytes;
  }
  // Cross-rank dedup must find substantially more than local dedup alone
  // (the matrix arrays coincide across the interior ranks).
  EXPECT_LT(global_unique, local_unique / 2);
  EXPECT_LT(local_unique, total);  // interior-row pattern repeats locally
}

TEST(Hpccg, DeterministicAcrossRuns) {
  const auto run_once = [] {
    simmpi::Runtime rt(2);
    double residual = 0.0;
    rt.run([&](simmpi::Comm& comm) {
      ftrt::TrackedArena arena(4096);
      apps::HpccgConfig cfg;
      cfg.nx = cfg.ny = cfg.nz = 6;
      apps::HpccgSolver solver(comm, arena, cfg);
      const double r = solver.iterate(8);
      if (comm.rank() == 0) residual = r;
    });
    return residual;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Hpccg, RejectsDegenerateDomain) {
  simmpi::Runtime rt(1);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    apps::HpccgConfig cfg;
    cfg.nx = 1;
    EXPECT_THROW(apps::HpccgSolver(comm, arena, cfg), std::invalid_argument);
  });
}

// -- MiniCM --------------------------------------------------------------------

TEST(MiniCm, StableOverManySteps) {
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    apps::MiniCmConfig cfg;
    cfg.nx = cfg.ny = 16;
    cfg.nz = 6;
    apps::MiniCmModel model(comm, arena, cfg);
    const double wind = model.step(70);
    EXPECT_GT(wind, 0.0);
    EXPECT_LT(wind, 200.0);  // no blow-up
    EXPECT_TRUE(std::isfinite(model.checksum()));
    EXPECT_EQ(model.steps_done(), 70);
  });
}

TEST(MiniCm, DeterministicChecksum) {
  const auto run_once = [] {
    simmpi::Runtime rt(2);
    double sum = 0.0;
    rt.run([&](simmpi::Comm& comm) {
      ftrt::TrackedArena arena(4096);
      apps::MiniCmConfig cfg;
      cfg.nx = cfg.ny = 12;
      cfg.nz = 4;
      apps::MiniCmModel model(comm, arena, cfg);
      (void)model.step(15);
      if (comm.rank() == 0) sum = model.checksum();
    });
    return sum;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(MiniCm, BaseStateIsCrossRankDuplicate) {
  constexpr int kRanks = 4;
  simmpi::Runtime rt(kRanks);
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<core::DumpStats> stats(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    apps::MiniCmConfig cfg;
    cfg.nx = cfg.ny = 24;
    cfg.nz = 8;
    apps::MiniCmModel model(comm, arena, cfg);
    (void)model.step(10);
    core::DumpConfig dump_cfg;
    dump_cfg.chunk_bytes = 4096;
    core::Dumper dumper(comm, stores[static_cast<std::size_t>(comm.rank())],
                        dump_cfg);
    stats[static_cast<std::size_t>(comm.rank())] =
        dumper.dump_output(arena.snapshot(), 3);
  });
  std::uint64_t local_unique = 0;
  std::uint64_t global_unique = 0;
  for (const auto& s : stats) {
    local_unique += s.local_unique_bytes;
    global_unique += s.owned_unique_bytes;
  }
  // Base state + coefficient tables + zero scratch dedupe across ranks.
  EXPECT_LT(global_unique, 3 * local_unique / 4);
}

TEST(MiniCm, PrognosticFieldsDivergeAcrossRanks) {
  simmpi::Runtime rt(2);
  std::vector<double> sums(2);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    apps::MiniCmConfig cfg;
    cfg.nx = cfg.ny = 12;
    cfg.nz = 4;
    apps::MiniCmModel model(comm, arena, cfg);
    (void)model.step(5);
    sums[static_cast<std::size_t>(comm.rank())] = model.checksum();
  });
  EXPECT_NE(sums[0], sums[1]);
}

// -- Synthetic generator ---------------------------------------------------------

double measured_local_dup(const std::vector<std::uint8_t>& data,
                          std::size_t chunk_bytes) {
  std::unordered_set<std::uint64_t> seen;
  const std::size_t chunks = data.size() / chunk_bytes;
  for (std::size_t c = 0; c < chunks; ++c) {
    seen.insert(hash::hasher_for(hash::HashKind::kXx64)
                    .fingerprint({data.data() + c * chunk_bytes, chunk_bytes})
                    .prefix64());
  }
  return 1.0 - static_cast<double>(seen.size()) / static_cast<double>(chunks);
}

TEST(Synth, Deterministic) {
  apps::SynthSpec spec;
  spec.chunks = 64;
  spec.chunk_bytes = 512;
  EXPECT_EQ(apps::synth_dataset(3, 8, spec), apps::synth_dataset(3, 8, spec));
  EXPECT_NE(apps::synth_dataset(3, 8, spec), apps::synth_dataset(4, 8, spec));
}

TEST(Synth, LocalDupKnob) {
  apps::SynthSpec spec;
  spec.chunks = 512;
  spec.chunk_bytes = 256;
  spec.global_shared = 0.0;
  spec.local_dup = 0.5;
  const auto data = apps::synth_dataset(0, 4, spec);
  const double dup = measured_local_dup(data, spec.chunk_bytes);
  EXPECT_NEAR(dup, 0.5, 0.12);

  spec.local_dup = 0.0;
  const auto unique_data = apps::synth_dataset(0, 4, spec);
  EXPECT_LT(measured_local_dup(unique_data, spec.chunk_bytes), 0.02);
}

TEST(Synth, GlobalSharedKnobCreatesCrossRankDuplicates) {
  apps::SynthSpec spec;
  spec.chunks = 256;
  spec.chunk_bytes = 256;
  spec.local_dup = 0.0;
  spec.global_shared = 1.0;
  spec.global_pool = 64;  // small pool: heavy cross-rank overlap
  const auto a = apps::synth_dataset(0, 4, spec);
  const auto b = apps::synth_dataset(1, 4, spec);

  std::unordered_set<std::string> chunks_a;
  for (std::size_t c = 0; c < spec.chunks; ++c) {
    chunks_a.emplace(reinterpret_cast<const char*>(a.data()) +
                         c * spec.chunk_bytes,
                     spec.chunk_bytes);
  }
  std::size_t shared = 0;
  for (std::size_t c = 0; c < spec.chunks; ++c) {
    shared += chunks_a.contains(
        std::string(reinterpret_cast<const char*>(b.data()) +
                        c * spec.chunk_bytes,
                    spec.chunk_bytes));
  }
  EXPECT_GT(shared, spec.chunks / 2);
}

TEST(Synth, HeavyRanksCarryMoreChunks) {
  apps::SynthSpec spec;
  spec.chunks = 100;
  spec.heavy_rank_fraction = 0.25;
  spec.heavy_multiplier = 3.0;
  EXPECT_EQ(apps::synth_chunk_count(0, 8, spec), 300u);
  EXPECT_EQ(apps::synth_chunk_count(1, 8, spec), 300u);
  EXPECT_EQ(apps::synth_chunk_count(2, 8, spec), 100u);
  const auto heavy = apps::synth_dataset(0, 8, spec);
  const auto light = apps::synth_dataset(2, 8, spec);
  EXPECT_EQ(heavy.size(), 3 * light.size());
}

TEST(Synth, InvalidSpecRejected) {
  apps::SynthSpec spec;
  spec.chunk_bytes = 0;
  EXPECT_THROW((void)apps::synth_dataset(0, 2, spec), std::invalid_argument);
}

}  // namespace
