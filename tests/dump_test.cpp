// Integration tests for DUMP_OUTPUT across strategies, rank counts and
// replication factors: replication invariants, restore round-trips under
// failure injection, cross-strategy byte ordering, and edge cases.
#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "apps/synth.hpp"
#include "test_util.hpp"

namespace {

using namespace collrep;
using core::DumpConfig;
using core::Strategy;
using test::DumpRun;
using test::mixed_pages;
using test::min_replica_count;
using test::run_dump;
using test::store_ptrs;

constexpr std::size_t kPage = 128;

DumpConfig small_cfg(Strategy s) {
  DumpConfig cfg;
  cfg.strategy = s;
  cfg.chunk_bytes = kPage;
  cfg.threshold_f = 1u << 12;
  return cfg;
}

// ---- parameterized sweep: (nranks, k, strategy) -----------------------------

using SweepParam = std::tuple<int, int, Strategy>;

class DumpSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DumpSweep, ReplicationInvariantAndRestore) {
  const auto [nranks, k, strategy] = GetParam();
  auto run = run_dump(nranks, k, small_cfg(strategy), [&](int rank) {
    return mixed_pages(rank, /*pages=*/24, kPage);
  });

  // Every fingerprint must live on at least min(K, N) distinct stores.
  const auto floor = static_cast<std::size_t>(std::min(k, nranks));
  EXPECT_GE(min_replica_count(run), floor);

  // Byte-exact restore with no failures.
  auto ptrs = store_ptrs(run);
  for (int r = 0; r < nranks; ++r) {
    const auto restored = core::restore_rank(ptrs, r);
    ASSERT_EQ(restored.segments.size(), 1u);
    EXPECT_EQ(restored.segments[0], run.datasets[static_cast<std::size_t>(r)]);
  }

  // Byte-exact restore with K-1 failed stores.
  for (int f = 0; f < k - 1 && f < nranks - 1; ++f) {
    run.stores[static_cast<std::size_t>(f)].fail();
  }
  for (int r = 0; r < nranks; ++r) {
    const auto restored = core::restore_rank(ptrs, r);
    EXPECT_EQ(restored.segments[0], run.datasets[static_cast<std::size_t>(r)])
        << "rank " << r << " after failures";
  }
}

TEST_P(DumpSweep, StatsAreInternallyConsistent) {
  const auto [nranks, k, strategy] = GetParam();
  const auto run = run_dump(nranks, k, small_cfg(strategy), [&](int rank) {
    return mixed_pages(rank, 24, kPage);
  });

  std::uint64_t total_sent = 0;
  std::uint64_t total_recv = 0;
  for (const auto& s : run.stats) {
    EXPECT_EQ(s.k_effective, std::min(k, nranks));
    EXPECT_EQ(s.dataset_bytes, 24u * kPage);
    EXPECT_EQ(s.chunk_count, 24u);
    EXPECT_LE(s.local_unique_bytes, s.dataset_bytes);
    EXPECT_GT(s.total_time_s, 0.0);
    // Phase breakdown sums to the total.
    EXPECT_NEAR(s.phases.total(), s.total_time_s, 1e-9);
    total_sent += s.sent_chunks;
    total_recv += s.recv_chunks;
  }
  // Chunk conservation: everything sent is received exactly once.
  EXPECT_EQ(total_sent, total_recv);
  // Completion time is a collective maximum: identical on all ranks.
  for (const auto& s : run.stats) {
    EXPECT_DOUBLE_EQ(s.total_time_s, run.stats[0].total_time_s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DumpSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8, 13),
                       ::testing::Values(1, 2, 3, 4),
                       ::testing::Values(Strategy::kNoDedup,
                                         Strategy::kLocalDedup,
                                         Strategy::kCollDedup)),
    [](const testing::TestParamInfo<SweepParam>& pinfo) {
      const int n = std::get<0>(pinfo.param);
      const int k = std::get<1>(pinfo.param);
      const Strategy s = std::get<2>(pinfo.param);
      const char* name = s == Strategy::kNoDedup      ? "full"
                         : s == Strategy::kLocalDedup ? "local"
                                                      : "coll";
      return "n" + std::to_string(n) + "_k" + std::to_string(k) + "_" + name;
    });

// ---- cross-strategy relationships -------------------------------------------

TEST(DumpStrategies, UniqueContentOrdering) {
  constexpr int kRanks = 8;
  constexpr int kK = 3;
  std::array<std::uint64_t, 3> unique{};
  std::array<std::uint64_t, 3> sent{};
  for (const auto strategy :
       {Strategy::kNoDedup, Strategy::kLocalDedup, Strategy::kCollDedup}) {
    const auto run = run_dump(kRanks, kK, small_cfg(strategy), [&](int rank) {
      return mixed_pages(rank, 32, kPage);
    });
    const auto i = static_cast<std::size_t>(strategy);
    for (const auto& s : run.stats) {
      unique[i] += s.owned_unique_bytes;
      sent[i] += s.sent_bytes;
    }
  }
  // Fig. 3a ordering: no-dedup > local-dedup > coll-dedup (this workload
  // has both local and cross-rank duplicates).
  EXPECT_GT(unique[0], unique[1]);
  EXPECT_GT(unique[1], unique[2]);
  EXPECT_GT(sent[0], sent[1]);
  EXPECT_GT(sent[1], sent[2]);
}

TEST(DumpStrategies, IdenticalDatasetsNeedOnlyKCopies) {
  // The paper's extreme case: all ranks hold the same dataset.  coll-dedup
  // must keep the global unique content at one dataset's worth and store
  // only K copies overall.
  constexpr int kRanks = 8;
  constexpr int kK = 3;
  const auto gen = [](int) { return mixed_pages(0, 16, kPage); };

  const auto run = run_dump(kRanks, kK, small_cfg(Strategy::kCollDedup), gen);
  std::uint64_t unique = 0;
  std::uint64_t stored = 0;
  for (const auto& s : run.stats) {
    unique += s.owned_unique_bytes;
    stored += s.stored_bytes;
  }
  const std::uint64_t one_dataset = 16 * kPage;
  EXPECT_EQ(unique, one_dataset);
  EXPECT_EQ(stored, one_dataset * kK);

  // And the load balancer must not pile all K copies' send work onto one
  // rank: more than K ranks participate in storing.
  int ranks_storing = 0;
  for (const auto& s : run.stats) {
    if (s.stored_bytes > 0) ++ranks_storing;
  }
  EXPECT_GE(ranks_storing, kK);
}

TEST(DumpStrategies, DisjointDatasetsGainNothingFromCollDedup) {
  constexpr int kRanks = 6;
  constexpr int kK = 3;
  const auto gen = [](int rank) {
    std::vector<std::uint8_t> data(16 * kPage);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>((i * 7) ^ (rank * 131 + 7));
    }
    return data;
  };
  const auto local = run_dump(kRanks, kK, small_cfg(Strategy::kLocalDedup), gen);
  const auto coll = run_dump(kRanks, kK, small_cfg(Strategy::kCollDedup), gen);
  std::uint64_t local_unique = 0;
  std::uint64_t coll_unique = 0;
  for (int r = 0; r < kRanks; ++r) {
    local_unique += local.stats[static_cast<std::size_t>(r)].owned_unique_bytes;
    coll_unique += coll.stats[static_cast<std::size_t>(r)].owned_unique_bytes;
  }
  EXPECT_EQ(coll_unique, local_unique);  // nothing shared to exploit
}

// ---- edge cases --------------------------------------------------------------

TEST(DumpEdge, KLargerThanWorldIsClamped) {
  const auto run = run_dump(3, 9, small_cfg(Strategy::kCollDedup), [](int r) {
    return mixed_pages(r, 8, kPage);
  });
  for (const auto& s : run.stats) EXPECT_EQ(s.k_effective, 3);
  EXPECT_GE(min_replica_count(const_cast<DumpRun&>(run)), 3u);
}

TEST(DumpEdge, EmptyDataset) {
  auto run = run_dump(4, 3, small_cfg(Strategy::kCollDedup),
                      [](int) { return std::vector<std::uint8_t>{}; });
  for (const auto& s : run.stats) {
    EXPECT_EQ(s.chunk_count, 0u);
    EXPECT_EQ(s.sent_chunks, 0u);
    EXPECT_EQ(s.stored_bytes, 0u);
  }
  auto ptrs = store_ptrs(run);
  const auto restored = core::restore_rank(ptrs, 0);
  ASSERT_EQ(restored.segments.size(), 1u);
  EXPECT_TRUE(restored.segments[0].empty());
}

TEST(DumpEdge, DatasetNotMultipleOfChunkSize) {
  auto run = run_dump(4, 2, small_cfg(Strategy::kCollDedup), [](int rank) {
    auto data = mixed_pages(rank, 4, kPage);
    data.resize(data.size() - 37);  // short tail chunk
    return data;
  });
  auto ptrs = store_ptrs(run);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(core::restore_rank(ptrs, r).segments[0],
              run.datasets[static_cast<std::size_t>(r)]);
  }
}

TEST(DumpEdge, MultiSegmentDatasetRestores) {
  constexpr int kRanks = 4;
  simmpi::Runtime rt(kRanks);
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<std::vector<std::uint8_t>> seg_a(kRanks);
  std::vector<std::vector<std::uint8_t>> seg_b(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    seg_a[static_cast<std::size_t>(r)] = mixed_pages(r, 4, kPage);
    seg_b[static_cast<std::size_t>(r)] = mixed_pages(r + 100, 3, kPage);
    chunk::Dataset ds;
    ds.add_segment(seg_a[static_cast<std::size_t>(r)]);
    ds.add_segment(seg_b[static_cast<std::size_t>(r)]);
    core::Dumper dumper(comm, stores[static_cast<std::size_t>(r)],
                        small_cfg(Strategy::kCollDedup));
    (void)dumper.dump_output(ds, 2);
  });
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  for (int r = 0; r < kRanks; ++r) {
    const auto restored = core::restore_rank(ptrs, r);
    ASSERT_EQ(restored.segments.size(), 2u);
    EXPECT_EQ(restored.segments[0], seg_a[static_cast<std::size_t>(r)]);
    EXPECT_EQ(restored.segments[1], seg_b[static_cast<std::size_t>(r)]);
  }
}

TEST(DumpEdge, MismatchedKThrows) {
  simmpi::Runtime rt(2);
  std::vector<chunk::ChunkStore> stores(2);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
    chunk::Dataset ds;
    const auto data = mixed_pages(comm.rank(), 2, kPage);
    ds.add_segment(data);
    core::Dumper dumper(comm, stores[static_cast<std::size_t>(comm.rank())],
                        small_cfg(Strategy::kCollDedup));
    (void)dumper.dump_output(ds, comm.rank() == 0 ? 2 : 3);
  }),
               std::invalid_argument);
}

TEST(DumpEdge, InvalidConfigRejected) {
  simmpi::Runtime rt(1);
  chunk::ChunkStore store;
  rt.run([&](simmpi::Comm& comm) {
    DumpConfig bad = small_cfg(Strategy::kCollDedup);
    bad.chunk_bytes = 0;
    EXPECT_THROW(core::Dumper(comm, store, bad), std::invalid_argument);
    bad = small_cfg(Strategy::kCollDedup);
    bad.threshold_f = 0;
    EXPECT_THROW(core::Dumper(comm, store, bad), std::invalid_argument);
    core::Dumper good(comm, store, small_cfg(Strategy::kCollDedup));
    chunk::Dataset ds;
    EXPECT_THROW((void)good.dump_output(ds, 0), std::invalid_argument);
  });
}

TEST(DumpEdge, MetadataOnlyExchangeRequiresAccountingStore) {
  simmpi::Runtime rt(1);
  chunk::ChunkStore store;  // payload mode
  rt.run([&](simmpi::Comm& comm) {
    DumpConfig cfg = small_cfg(Strategy::kCollDedup);
    cfg.payload_exchange = false;
    core::Dumper dumper(comm, store, cfg);
    chunk::Dataset ds;
    EXPECT_THROW((void)dumper.dump_output(ds, 1), std::invalid_argument);
  });
}

// ---- accounting mode fidelity -------------------------------------------------

TEST(DumpAccounting, MetadataOnlyMatchesPayloadByteCounters) {
  constexpr int kRanks = 6;
  constexpr int kK = 3;
  const auto gen = [](int rank) { return mixed_pages(rank, 20, kPage); };

  auto payload_cfg = small_cfg(Strategy::kCollDedup);
  const auto payload_run = run_dump(kRanks, kK, payload_cfg, gen);

  auto meta_cfg = payload_cfg;
  meta_cfg.payload_exchange = false;
  const auto meta_run = run_dump(kRanks, kK, meta_cfg, gen,
                                 chunk::StoreMode::kAccounting);

  for (int r = 0; r < kRanks; ++r) {
    const auto& p = payload_run.stats[static_cast<std::size_t>(r)];
    const auto& m = meta_run.stats[static_cast<std::size_t>(r)];
    EXPECT_EQ(p.sent_bytes, m.sent_bytes) << "rank " << r;
    EXPECT_EQ(p.recv_bytes, m.recv_bytes) << "rank " << r;
    EXPECT_EQ(p.stored_bytes, m.stored_bytes) << "rank " << r;
    EXPECT_EQ(p.owned_unique_bytes, m.owned_unique_bytes) << "rank " << r;
    EXPECT_EQ(p.discarded_chunks, m.discarded_chunks) << "rank " << r;
  }
}

// ---- shuffle & avoidance toggles ----------------------------------------------

TEST(DumpToggles, ShuffleReducesMaxReceiveOnSkewedLoad) {
  constexpr int kRanks = 12;
  constexpr int kK = 4;
  apps::SynthSpec spec;
  spec.chunk_bytes = kPage;
  spec.chunks = 12;
  spec.local_dup = 0.0;
  spec.global_shared = 0.7;
  spec.heavy_rank_fraction = 0.17;  // 2 heavy ranks
  spec.heavy_multiplier = 8.0;
  const auto gen = [&](int rank) {
    return apps::synth_dataset(rank, kRanks, spec);
  };

  auto cfg = small_cfg(Strategy::kCollDedup);
  cfg.rank_shuffle = false;
  const auto plain = run_dump(kRanks, kK, cfg, gen);
  cfg.rank_shuffle = true;
  const auto shuffled = run_dump(kRanks, kK, cfg, gen);

  const auto max_recv = [](const DumpRun& run) {
    std::uint64_t mx = 0;
    for (const auto& s : run.stats) mx = std::max(mx, s.recv_bytes);
    return mx;
  };
  EXPECT_LT(max_recv(shuffled), max_recv(plain));
}

TEST(DumpToggles, AvoidanceEnforcesDistinctReplicaHolders) {
  // Without avoidance a top-up replica can land on a store that is itself
  // designated, dropping the number of distinct holders below K.  With
  // avoidance the invariant holds by construction; this asserts the
  // avoidance path (the DumpSweep invariant above covers it broadly).
  constexpr int kRanks = 8;
  constexpr int kK = 4;
  const auto gen = [](int rank) {
    // Every pair of ranks (2i, 2i+1) shares its dataset: D=2 designated
    // per fingerprint, so K-2 top-ups are needed and avoidance matters.
    return mixed_pages(rank / 2, 12, kPage);
  };
  auto cfg = small_cfg(Strategy::kCollDedup);
  cfg.avoid_designated_targets = true;
  auto run = run_dump(kRanks, kK, cfg, gen);
  EXPECT_GE(min_replica_count(run), static_cast<std::size_t>(kK));
}

}  // namespace
