// Fault-injection harness, degraded-mode DUMP_OUTPUT, and the dedup-aware
// REPAIR scrub: the collective must survive stores dying mid-dump, report
// exactly what replication it achieved, and top the shortfall back to K
// while shipping strictly less than a full re-dump.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/collrep.hpp"
#include "fault/schedule.hpp"
#include "ftrt/checkpoint.hpp"
#include "ftrt/tracked_arena.hpp"
#include "obs/telemetry.hpp"
#include "test_util.hpp"

namespace {

using namespace collrep;

constexpr int kRanks = 6;
constexpr int kK = 3;
constexpr std::size_t kPage = 4096;
constexpr std::size_t kPages = 16;
constexpr std::uint64_t kHeader = hash::Fingerprint::kBytes + 4;

// Every page distinct within and across ranks: no natural redundancy, so
// replica counts follow the partner ring exactly.
std::vector<std::uint8_t> unique_pages(int rank) {
  std::vector<std::uint8_t> data(kPages * kPage);
  for (std::size_t p = 0; p < kPages; ++p) {
    for (std::size_t i = 0; i < kPage; ++i) {
      data[p * kPage + i] = static_cast<std::uint8_t>(
          (static_cast<std::size_t>(rank) * kPages + p) * 131 + i * 7);
    }
  }
  return data;
}

core::DumpConfig identity_ring_config() {
  core::DumpConfig cfg;
  cfg.chunk_bytes = kPage;
  // Identity shuffle: rank r's K-1 partners are r+1 and r+2 (mod n), which
  // makes the expected degraded pattern exact.
  cfg.rank_shuffle = false;
  return cfg;
}

struct FaultRun {
  std::vector<core::DumpStats> stats;
  std::vector<chunk::ChunkStore> stores;
};

// Dumps unique_pages over kRanks with `sched` attached (and armed).
FaultRun run_faulty_dump(fault::FaultSchedule& sched,
                         obs::Telemetry* tel = nullptr,
                         const core::DumpConfig& cfg = identity_ring_config()) {
  FaultRun run;
  run.stats.resize(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    run.stores.emplace_back(chunk::StoreMode::kPayload);
  }
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : run.stores) ptrs.push_back(&s);
  sched.arm(ptrs);
  sched.attach(tel);

  simmpi::RuntimeOptions opts;
  opts.telemetry = tel;
  opts.faults = &sched;
  simmpi::Runtime rt(kRanks, opts);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    const auto data = unique_pages(r);
    chunk::Dataset ds;
    ds.add_segment(data);
    core::Dumper dumper(comm, run.stores[static_cast<std::size_t>(r)], cfg);
    run.stats[static_cast<std::size_t>(r)] = dumper.dump_output(ds, kK);
  });
  return run;
}

// Replica count of every manifest-referenced fingerprint over alive stores.
std::size_t min_replicas(std::vector<chunk::ChunkStore>& stores) {
  std::vector<hash::Fingerprint> fps;
  for (auto& s : stores) {
    if (s.failed()) continue;
    for (int owner = 0; owner < static_cast<int>(stores.size()); ++owner) {
      const auto* m = s.manifest_for(owner);
      if (m == nullptr) continue;
      for (const auto& e : m->entries) fps.push_back(e.fp);
    }
  }
  std::sort(fps.begin(), fps.end());
  fps.erase(std::unique(fps.begin(), fps.end()), fps.end());
  std::size_t min_count = static_cast<std::size_t>(-1);
  for (const auto& fp : fps) {
    std::size_t count = 0;
    for (auto& s : stores) {
      if (!s.failed() && s.contains(fp)) ++count;
    }
    min_count = std::min(min_count, count);
  }
  return fps.empty() ? 0 : min_count;
}

// -- FaultSchedule -------------------------------------------------------------

TEST(FaultSchedule, FiresOnceAtNamedPointAndEpoch) {
  fault::FaultSchedule sched;
  fault::FaultEvent ev;
  ev.point = "dump.exchange.mid";
  ev.rank = 1;
  ev.epoch = 2;
  sched.add(ev);

  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  sched.arm(ptrs);

  std::vector<core::DumpStats> first(kRanks);
  std::vector<core::DumpStats> second(kRanks);
  simmpi::RuntimeOptions opts;
  opts.faults = &sched;
  simmpi::Runtime rt(kRanks, opts);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    const auto data = unique_pages(r);
    chunk::Dataset ds;
    ds.add_segment(data);
    core::DumpConfig cfg = identity_ring_config();
    cfg.epoch = 1;
    first[static_cast<std::size_t>(r)] =
        core::Dumper(comm, stores[static_cast<std::size_t>(r)], cfg)
            .dump_output(ds, kK);
    cfg.epoch = 2;
    second[static_cast<std::size_t>(r)] =
        core::Dumper(comm, stores[static_cast<std::size_t>(r)], cfg)
            .dump_output(ds, kK);
  });

  for (int r = 0; r < kRanks; ++r) {
    EXPECT_FALSE(first[static_cast<std::size_t>(r)].degraded);
    EXPECT_TRUE(second[static_cast<std::size_t>(r)].degraded);
  }
  const auto fired = sched.fired();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rank, 1);
  EXPECT_EQ(fired[0].target, 1);
  EXPECT_EQ(fired[0].epoch, 2u);
  EXPECT_EQ(fired[0].point, "dump.exchange.mid");
  EXPECT_EQ(fired[0].action, fault::FaultAction::kFailStore);
  EXPECT_TRUE(stores[1].failed());
}

TEST(FaultSchedule, SkipCountDelaysFiring) {
  fault::FaultSchedule sched;
  fault::FaultEvent ev;
  ev.point = "tick";
  ev.rank = 0;
  ev.skip = 3;
  sched.add(ev);

  chunk::ChunkStore store;
  chunk::ChunkStore* ptr = &store;
  sched.arm(std::span<chunk::ChunkStore* const>{&ptr, 1});

  std::vector<bool> failed_after;
  simmpi::RuntimeOptions opts;
  opts.faults = &sched;
  simmpi::Runtime rt(1, opts);
  rt.run([&](simmpi::Comm& comm) {
    for (int i = 0; i < 6; ++i) {
      comm.fault_point("tick");
      failed_after.push_back(store.failed());
    }
  });
  // Three visits pass, the fourth fires, and the event never re-fires.
  const std::vector<bool> want{false, false, false, true, true, true};
  EXPECT_EQ(failed_after, want);
  EXPECT_EQ(sched.fired().size(), 1u);
}

TEST(FaultSchedule, SeededVictimSelectionIsDeterministic) {
  fault::FaultSchedule a(42);
  fault::FaultSchedule b(42);
  const auto va = a.add_random_store_failures(8, 3, "p");
  const auto vb = b.add_random_store_failures(8, 3, "p");
  EXPECT_EQ(va, vb);
  ASSERT_EQ(va.size(), 3u);
  std::vector<int> sorted = va;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());

  fault::FaultSchedule c(7);
  EXPECT_EQ(c.add_random_store_failures(4, 10, "p").size(), 4u);
  EXPECT_EQ(c.event_count(), 4u);
}

TEST(FaultSchedule, KillRankAbortsRunAndPropagates) {
  fault::FaultSchedule sched;
  fault::FaultEvent ev;
  ev.point = "coll.pre";
  ev.rank = 2;
  ev.action = fault::FaultAction::kKillRank;
  sched.add(ev);

  simmpi::RuntimeOptions opts;
  opts.faults = &sched;
  simmpi::Runtime rt(4, opts);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
    (void)simmpi::allreduce_sum(comm, 1);
  }),
               fault::RankKilledError);
}

// -- Degraded-mode DUMP_OUTPUT -------------------------------------------------

TEST(DegradedDump, HealthySchedulePathIsUnchanged) {
  fault::FaultSchedule sched;  // attached but empty
  auto run = run_faulty_dump(sched);
  for (const auto& s : run.stats) {
    EXPECT_FALSE(s.degraded);
    EXPECT_TRUE(s.store_alive);
    EXPECT_EQ(s.k_achieved_min, kK);
    EXPECT_EQ(s.under_replicated_chunks, 0u);
    EXPECT_EQ(s.commit_skipped_chunks, 0u);
  }
  EXPECT_EQ(min_replicas(run.stores), static_cast<std::size_t>(kK));
}

// The acceptance scenario: store 2 dies after its puts are issued but
// before the fence.  With the identity ring, exactly ranks {0, 1, 2} have
// a replica on the dead store, so their chunks land at 2 of 3 copies.
TEST(DegradedDump, MidExchangeStoreLossCompletesWithExactPattern) {
  fault::FaultSchedule sched;
  fault::FaultEvent ev;
  ev.point = "dump.exchange.mid";
  ev.rank = 2;
  sched.add(ev);
  auto run = run_faulty_dump(sched);

  for (int r = 0; r < kRanks; ++r) {
    const auto& s = run.stats[static_cast<std::size_t>(r)];
    EXPECT_TRUE(s.degraded) << "rank " << r;
    EXPECT_EQ(s.store_alive, r != 2);
    const bool touched = r <= 2;  // holds a replica on the dead store
    EXPECT_EQ(s.k_achieved_min, touched ? kK - 1 : kK) << "rank " << r;
    EXPECT_EQ(s.under_replicated_chunks, touched ? kPages : 0u)
        << "rank " << r;
    EXPECT_EQ(s.under_replicated_bytes, touched ? kPages * kPage : 0u);
    // The dead store drops its 2 incoming replica streams + its own local
    // commit; everyone else commits everything.
    EXPECT_EQ(s.commit_skipped_chunks, r == 2 ? 3 * kPages : 0u);
    // Wire traffic is unaffected: the failure hit after the puts.
    EXPECT_EQ(s.sent_chunks, (kK - 1) * kPages);
  }
  EXPECT_EQ(min_replicas(run.stores), static_cast<std::size_t>(kK - 1));
}

// -- REPAIR --------------------------------------------------------------------

TEST(Repair, ShipsOnlyShortfallAndRestoresEveryChunkToK) {
  fault::FaultSchedule sched;
  fault::FaultEvent ev;
  ev.point = "dump.exchange.mid";
  ev.rank = 2;
  sched.add(ev);
  auto run = run_faulty_dump(sched);
  std::uint64_t full_redump_bytes = 0;
  for (const auto& s : run.stats) full_redump_bytes += s.sent_bytes;

  // Blank replacement disk for the dead store, then scrub.
  run.stores[2].recover_empty();
  EXPECT_EQ(run.stores[2].chunk_count(), 0u);

  obs::Telemetry tel;
  simmpi::RuntimeOptions opts;
  opts.telemetry = &tel;
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : run.stores) ptrs.push_back(&s);
  std::vector<core::RepairStats> rstats(kRanks);
  simmpi::Runtime rt(kRanks, opts);
  rt.run([&](simmpi::Comm& comm) {
    rstats[static_cast<std::size_t>(comm.rank())] =
        core::repair_replicas(comm, ptrs, kK);
  });

  const auto& g = rstats[0];
  EXPECT_EQ(g.alive_stores, kRanks);
  EXPECT_EQ(g.k_effective, kK);
  // 3 ranks x 16 chunks sit at 2 of 3 replicas; each needs exactly one
  // extra copy — nothing else moves.
  EXPECT_EQ(g.under_replicated_chunks, 3 * kPages);
  EXPECT_EQ(g.resent_chunks, 3 * kPages);
  EXPECT_EQ(g.resent_bytes, 3 * kPages * kPage);
  EXPECT_EQ(g.lost_chunks, 0u);
  EXPECT_EQ(g.k_achieved_min_before, kK - 1);
  EXPECT_EQ(g.k_achieved_min_after, kK);
  EXPECT_LT(g.resent_bytes, full_redump_bytes);

  // The global fields are collective results: identical everywhere.
  for (const auto& s : rstats) {
    EXPECT_EQ(s.resent_bytes, g.resent_bytes);
    EXPECT_EQ(s.k_achieved_min_before, g.k_achieved_min_before);
    EXPECT_DOUBLE_EQ(s.total_time_s, g.total_time_s);
  }

  // Wire accounting reconciles with the comm layer: every repair put is
  // one record of header + payload modeled bytes.
  EXPECT_EQ(tel.rollup().put_bytes,
            g.resent_bytes + kHeader * g.resent_chunks);
  std::uint64_t sent_sum = 0;
  for (const auto& s : rstats) sent_sum += s.sent_chunks;
  EXPECT_EQ(sent_sum, g.resent_chunks);

  EXPECT_EQ(min_replicas(run.stores), static_cast<std::size_t>(kK));

  // Every rank's dataset restores, including the one whose store died.
  for (int r = 0; r < kRanks; ++r) {
    const auto result = core::restore_rank(ptrs, r);
    ASSERT_EQ(result.segments.size(), 1u);
    EXPECT_EQ(result.segments[0], unique_pages(r));
  }
}

TEST(Repair, SameSeedYieldsBitIdenticalMetrics) {
  const auto run_once = [](std::uint64_t seed) {
    fault::FaultSchedule sched(seed);
    (void)sched.add_random_store_failures(kRanks, 2, "dump.exchange.mid");
    obs::Telemetry tel;
    auto run = run_faulty_dump(sched, &tel);
    for (auto& s : run.stores) {
      if (s.failed()) s.recover_empty();
    }
    std::vector<chunk::ChunkStore*> ptrs;
    for (auto& s : run.stores) ptrs.push_back(&s);
    simmpi::RuntimeOptions opts;
    opts.telemetry = &tel;
    simmpi::Runtime rt(kRanks, opts);
    rt.run([&](simmpi::Comm& comm) {
      (void)core::repair_replicas(comm, ptrs, kK);
    });
    return tel.metrics().to_json();
  };
  const std::string a = run_once(1234);
  const std::string b = run_once(1234);
  EXPECT_EQ(a, b);
  // A different seed picks different victims and must show up somewhere.
  const std::string c = run_once(99);
  EXPECT_NE(a, c);
}

// -- CheckpointRuntime degraded policies ---------------------------------------

ftrt::CheckpointConfig policy_config(ftrt::DegradedPolicy policy,
                                     int retries) {
  ftrt::CheckpointConfig cfg;
  cfg.dump = identity_ring_config();
  cfg.replication_factor = kK;
  cfg.on_degraded = policy;
  cfg.max_dump_retries = retries;
  return cfg;
}

// One checkpoint attempt under a schedule; every rank writes rank-colored
// arena pages so restores are checkable.
void run_checkpointed(fault::FaultSchedule& sched,
                      std::vector<chunk::ChunkStore>& stores,
                      const ftrt::CheckpointConfig& cfg,
                      const std::function<void(simmpi::Comm&,
                                               ftrt::CheckpointRuntime&)>& body) {
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  sched.arm(ptrs);
  simmpi::RuntimeOptions opts;
  opts.faults = &sched;
  simmpi::Runtime rt(kRanks, opts);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(kPage, 16);
    auto region = arena.allocate(kPage * 4);
    std::memset(region.data(), comm.rank() + 1, region.size());
    ftrt::CheckpointRuntime ckpt(
        comm, stores[static_cast<std::size_t>(comm.rank())], arena, cfg);
    body(comm, ckpt);
  });
}

TEST(CheckpointPolicy, AbortThrowsDegradedDumpError) {
  fault::FaultSchedule sched;
  fault::FaultEvent ev;
  ev.point = "dump.exchange.mid";
  ev.rank = 1;
  sched.add(ev);
  std::vector<chunk::ChunkStore> stores(kRanks);
  EXPECT_THROW(
      run_checkpointed(sched, stores,
                       policy_config(ftrt::DegradedPolicy::kAbort, 0),
                       [](simmpi::Comm&, ftrt::CheckpointRuntime& ckpt) {
                         (void)ckpt.checkpoint_now();
                       }),
      ftrt::DegradedDumpError);
}

TEST(CheckpointPolicy, TransientOutageRetriesUnderFreshEpoch) {
  fault::FaultSchedule sched;
  fault::FaultEvent fail;
  fail.point = "dump.exchange.mid";
  fail.rank = 1;
  fail.epoch = 1;
  sched.add(fail);
  fault::FaultEvent heal;
  heal.point = "dump.hash";
  heal.rank = 1;
  heal.epoch = 2;
  heal.action = fault::FaultAction::kRecoverStore;
  sched.add(heal);

  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<core::DumpStats> final_stats(kRanks);
  // Attempt under epoch 1 degrades; the retry (epoch 2) sees the store
  // back and must come out clean without tripping the abort policy.
  run_checkpointed(sched, stores,
                   policy_config(ftrt::DegradedPolicy::kAbort, 1),
                   [&](simmpi::Comm& comm, ftrt::CheckpointRuntime& ckpt) {
                     final_stats[static_cast<std::size_t>(comm.rank())] =
                         ckpt.checkpoint_now();
                     EXPECT_EQ(ckpt.checkpoints_taken(), 1u);
                   });
  for (const auto& s : final_stats) {
    EXPECT_FALSE(s.degraded);
    EXPECT_EQ(s.k_achieved_min, kK);
  }
  EXPECT_EQ(sched.fired().size(), 2u);
  EXPECT_EQ(min_replicas(stores), static_cast<std::size_t>(kK));
}

TEST(CheckpointPolicy, RepairPolicyTopsUpTheShortfall) {
  fault::FaultSchedule sched;
  fault::FaultEvent ev;
  ev.point = "dump.exchange.mid";
  ev.rank = 1;
  sched.add(ev);

  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  run_checkpointed(sched, stores,
                   policy_config(ftrt::DegradedPolicy::kRepair, 0),
                   [&](simmpi::Comm&, ftrt::CheckpointRuntime& ckpt) {
                     const auto stats = ckpt.checkpoint_now(ptrs);
                     EXPECT_TRUE(stats.degraded);
                     ASSERT_TRUE(ckpt.last_repair().has_value());
                     const auto& rep = *ckpt.last_repair();
                     // Store 1 is still down: K_eff degrades to the five
                     // survivors but every chunk reaches it.
                     EXPECT_EQ(rep.alive_stores, kRanks - 1);
                     EXPECT_EQ(rep.k_effective, kK);
                     EXPECT_GT(rep.resent_chunks, 0u);
                     EXPECT_EQ(rep.lost_chunks, 0u);
                     EXPECT_EQ(rep.k_achieved_min_after, kK);
                   });
  EXPECT_EQ(min_replicas(stores), static_cast<std::size_t>(kK));
}

// -- FailureInjector regression ------------------------------------------------

// kill_stores used to loop forever when fewer live stores remained than
// the requested count (the bound compared against the span size, not the
// live population).
TEST(FailureInjector, TerminatesWhenFewerLiveStoresThanRequested) {
  std::vector<chunk::ChunkStore> stores(4);
  stores[0].fail();
  stores[3].fail();
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);

  ftrt::FailureInjector inj(7);
  const auto victims = inj.kill_stores(ptrs, 3);
  EXPECT_EQ(victims.size(), 2u);  // only 2 were alive
  for (const auto& s : stores) EXPECT_TRUE(s.failed());

  // Nothing left to kill: returns empty instead of spinning.
  EXPECT_TRUE(inj.kill_stores(ptrs, 1).empty());
}

// -- ChunkStore recovery modes -------------------------------------------------

TEST(ChunkStore, RecoverEmptyModelsBlankReplacementDisk) {
  const auto data = unique_pages(0);
  const hash::Fingerprint fp = hash::Fingerprint::from_u64(77);
  chunk::ChunkStore transient;
  chunk::ChunkStore replaced;
  for (auto* s : {&transient, &replaced}) {
    s->put(fp, std::span<const std::uint8_t>{data.data(), kPage});
    chunk::Manifest m;
    m.owner_rank = 0;
    s->put_manifest(m);
    s->fail();
    EXPECT_THROW((void)s->contains(fp), chunk::StoreFailedError);
  }

  transient.recover();  // power blip: contents resurface
  EXPECT_TRUE(transient.contains(fp));
  EXPECT_NE(transient.manifest_for(0), nullptr);

  replaced.recover_empty();  // new disk: alive but blank
  EXPECT_FALSE(replaced.failed());
  EXPECT_FALSE(replaced.contains(fp));
  EXPECT_EQ(replaced.manifest_for(0), nullptr);
  EXPECT_EQ(replaced.chunk_count(), 0u);
  EXPECT_EQ(replaced.stored_bytes(), 0u);
}

}  // namespace
