// Shrink-and-continue recovery: fail-stop containment in simmpi, the
// ULFM-style shrink, and recover::RecoveryService — survivors absorb rank
// deaths, adopt the orphaned datasets, and re-replicate exactly the
// shortfall (naturally distributed duplicates satisfy the new distribution
// for free).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "core/collrep.hpp"
#include "fault/schedule.hpp"
#include "ftrt/checkpoint.hpp"
#include "ftrt/tracked_arena.hpp"
#include "apps/hpccg.hpp"
#include "obs/telemetry.hpp"
#include "recover/service.hpp"

namespace {

using namespace collrep;

constexpr std::size_t kPage = 4096;
constexpr std::size_t kPages = 16;

std::vector<std::uint8_t> unique_pages(int rank) {
  std::vector<std::uint8_t> data(kPages * kPage);
  for (std::size_t p = 0; p < kPages; ++p) {
    for (std::size_t i = 0; i < kPage; ++i) {
      data[p * kPage + i] = static_cast<std::uint8_t>(
          (static_cast<std::size_t>(rank) * kPages + p) * 131 + i * 7);
    }
  }
  return data;
}

core::DumpConfig identity_ring_config() {
  core::DumpConfig cfg;
  cfg.chunk_bytes = kPage;
  cfg.rank_shuffle = false;
  return cfg;
}

// Kill schedule helper: each listed rank dies the moment it visits `point`.
void add_kills(fault::FaultSchedule& sched, std::initializer_list<int> ranks,
               const std::string& point,
               std::uint64_t epoch = simmpi::FaultHook::kAnyEpoch) {
  for (const int r : ranks) {
    fault::FaultEvent ev;
    ev.point = point;
    ev.rank = r;
    ev.epoch = epoch;
    ev.action = fault::FaultAction::kKillRank;
    sched.add(ev);
  }
}

// A synthetic payload of `len` bytes colored by `tag`.
std::vector<std::uint8_t> colored(std::uint8_t tag, std::size_t len = kPage) {
  std::vector<std::uint8_t> v(len);
  for (std::size_t i = 0; i < len; ++i) {
    v[i] = static_cast<std::uint8_t>(tag + i * 13);
  }
  return v;
}

chunk::Manifest manifest_of(int owner,
                            std::span<const hash::Fingerprint> fps,
                            std::uint32_t len = kPage) {
  chunk::Manifest m;
  m.owner_rank = owner;
  m.epoch = 1;
  m.segment_sizes.push_back(static_cast<std::uint64_t>(len) * fps.size());
  for (const auto& fp : fps) {
    m.entries.push_back(chunk::ManifestEntry{fp, len});
  }
  return m;
}

// -- containment protocol ------------------------------------------------------

// A killed rank unwinds cleanly; survivors learn about the death at their
// next collective as RankDeadError, shrink, and keep computing in the
// smaller world — with the check layer attached and silent throughout.
TEST(Containment, SingleDeathShrinksAndContinues) {
  fault::FaultSchedule sched;
  add_kills(sched, {2}, "test.kill");
  check::Checker checker;
  obs::Telemetry tel;
  simmpi::RuntimeOptions opts;
  opts.contain_failures = true;
  opts.faults = &sched;
  opts.checker = &checker;
  opts.telemetry = &tel;

  constexpr int kN = 6;
  std::vector<simmpi::Comm::ShrinkInfo> infos(kN);
  std::vector<int> sums(kN, -1);
  simmpi::Runtime rt(kN, opts);
  rt.run([&](simmpi::Comm& comm) {
    const int w = comm.world_rank();
    (void)simmpi::allreduce_sum(comm, 1);  // pre-death collective
    comm.fault_point("test.kill");         // rank 2 dies here
    try {
      comm.barrier();
      FAIL() << "survivor " << w << " did not observe the death";
    } catch (const simmpi::RankDeadError&) {
    }
    infos[static_cast<std::size_t>(w)] = comm.shrink();
    // The shrunken world is dense and fully operational.
    EXPECT_EQ(comm.size(), kN - 1);
    EXPECT_EQ(comm.world_of(comm.rank()), w);
    sums[static_cast<std::size_t>(w)] = simmpi::allreduce_sum(comm, 1);
    comm.barrier();
  });

  for (int w = 0; w < kN; ++w) {
    if (w == 2) {
      EXPECT_EQ(sums[2], -1);  // the dead rank never got there
      continue;
    }
    const auto& info = infos[static_cast<std::size_t>(w)];
    EXPECT_EQ(info.epoch, 1u);
    ASSERT_EQ(info.dead.size(), 1u);
    EXPECT_EQ(info.dead[0].world_rank, 2);
    EXPECT_EQ(info.dead[0].prev_rank, 2);
    EXPECT_EQ(info.alive_world, (std::vector<int>{0, 1, 3, 4, 5}));
    EXPECT_EQ(info.prev_group_world, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(sums[static_cast<std::size_t>(w)], kN - 1);
  }
  // The watchdog/check layer must not misread a contained death.
  EXPECT_EQ(checker.violation_count(), 0u);
  EXPECT_EQ(tel.metrics().counter("simmpi.rank_deaths"), 1u);
}

// -- RecoveryService over hand-built stores ------------------------------------

struct ManualWorld {
  std::vector<chunk::ChunkStore> stores;
  std::vector<chunk::ChunkStore*> ptrs;

  explicit ManualWorld(int n) {
    stores.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) stores.emplace_back(chunk::StoreMode::kPayload);
    for (auto& s : stores) ptrs.push_back(&s);
  }
};

// Every chunk the dead rank held also sits on >= K survivors: the rebalance
// must ship NOTHING — the dedup-satisfied counter accounts for all of it.
TEST(Recovery, DedupSatisfiedRebalanceShipsZeroBytes) {
  constexpr int kN = 4;
  const auto fp_a = hash::Fingerprint::from_u64(0xA);
  const auto payload_a = colored(1);

  ManualWorld world(kN);
  for (int r = 0; r < kN; ++r) {
    world.stores[static_cast<std::size_t>(r)].put(fp_a, payload_a);
    for (int owner = 0; owner < kN; ++owner) {
      world.stores[static_cast<std::size_t>(r)].put_manifest(
          manifest_of(owner, std::span{&fp_a, 1}));
    }
  }

  fault::FaultSchedule sched;
  add_kills(sched, {3}, "test.kill");
  simmpi::RuntimeOptions opts;
  opts.contain_failures = true;
  opts.faults = &sched;
  recover::RecoveryService svc(world.ptrs, recover::RecoveryConfig{2, true});

  std::vector<recover::RecoveryStats> stats(kN);
  simmpi::Runtime rt(kN, opts);
  rt.run([&](simmpi::Comm& comm) {
    comm.fault_point("test.kill");
    try {
      comm.barrier();
    } catch (const simmpi::RankDeadError&) {
    }
    stats[static_cast<std::size_t>(comm.world_rank())] = svc.recover_world(comm);
  });

  for (int w = 0; w < kN - 1; ++w) {
    const auto& s = stats[static_cast<std::size_t>(w)];
    EXPECT_EQ(s.deaths, 1);
    EXPECT_EQ(s.world_size_after, kN - 1);
    EXPECT_EQ(s.k_effective, 2);
    EXPECT_EQ(s.chunks_total, 1u);
    EXPECT_EQ(s.dedup_satisfied_chunks, 1u);
    EXPECT_EQ(s.dedup_satisfied_bytes, kPage);
    // The acceptance counter: naturally distributed duplicates satisfy the
    // new distribution at exactly zero re-replication cost.
    EXPECT_EQ(s.rereplicated_chunks, 0u);
    EXPECT_EQ(s.rereplicated_bytes, 0u);
    EXPECT_EQ(s.orphan_bytes_total, kPage);
    EXPECT_GT(s.agreement_time_s, 0.0);
    EXPECT_GE(s.total_time_s, s.agreement_time_s);
  }
  // Orphan 0 (dead prev rank 3) lands on dense rank 0, byte-identical.
  ASSERT_EQ(stats[0].orphans.size(), 1u);
  EXPECT_EQ(stats[0].orphans[0].world_rank, 3);
  EXPECT_EQ(stats[0].orphans[0].prev_rank, 3);
  ASSERT_EQ(stats[0].orphans[0].segments.size(), 1u);
  EXPECT_EQ(stats[0].orphans[0].segments[0], payload_a);
  EXPECT_TRUE(stats[1].orphans.empty());

  // The dead store is failed; survivor manifests are re-keyed 0..2 densely.
  EXPECT_TRUE(world.stores[3].failed());
  for (int r = 0; r < kN - 1; ++r) {
    auto& s = world.stores[static_cast<std::size_t>(r)];
    for (int owner = 0; owner < kN - 1; ++owner) {
      EXPECT_NE(s.manifest_for(owner), nullptr) << r << "/" << owner;
    }
    EXPECT_EQ(s.manifest_for(kN - 1), nullptr) << r;
  }
}

// A chunk that lost a replica to the death is topped back up to K_eff; the
// counters name exactly the copies that moved and nothing else.
TEST(Recovery, RebalanceShipsExactlyTheShortfall) {
  constexpr int kN = 4;
  const auto fp_a = hash::Fingerprint::from_u64(0xA);
  const auto fp_b = hash::Fingerprint::from_u64(0xB);
  const auto payload_a = colored(1);
  const auto payload_b = colored(2);

  ManualWorld world(kN);
  for (int r = 0; r < kN; ++r) {
    world.stores[static_cast<std::size_t>(r)].put(fp_a, payload_a);
  }
  // B has replicas only on stores 2 and 3; rank 2's dataset needs it.
  world.stores[2].put(fp_b, payload_b);
  world.stores[3].put(fp_b, payload_b);
  const std::vector<hash::Fingerprint> ab{fp_a, fp_b};
  for (int r = 0; r < kN; ++r) {
    for (int owner = 0; owner < kN; ++owner) {
      auto m = owner == 2 ? manifest_of(owner, ab)
                          : manifest_of(owner, std::span{&fp_a, 1});
      world.stores[static_cast<std::size_t>(r)].put_manifest(std::move(m));
    }
  }

  fault::FaultSchedule sched;
  add_kills(sched, {3}, "test.kill");
  simmpi::RuntimeOptions opts;
  opts.contain_failures = true;
  opts.faults = &sched;
  recover::RecoveryService svc(world.ptrs, recover::RecoveryConfig{2, true});

  std::vector<recover::RecoveryStats> stats(kN);
  simmpi::Runtime rt(kN, opts);
  rt.run([&](simmpi::Comm& comm) {
    comm.fault_point("test.kill");
    try {
      comm.barrier();
    } catch (const simmpi::RankDeadError&) {
    }
    stats[static_cast<std::size_t>(comm.world_rank())] = svc.recover_world(comm);
  });

  for (int w = 0; w < kN - 1; ++w) {
    const auto& s = stats[static_cast<std::size_t>(w)];
    EXPECT_EQ(s.chunks_total, 2u);
    EXPECT_EQ(s.dedup_satisfied_chunks, 1u);  // A: 3 survivors >= 2
    EXPECT_EQ(s.rereplicated_chunks, 1u);     // B: one copy ships
    EXPECT_EQ(s.rereplicated_bytes, kPage);
  }
  // B is back at K_eff = 2 on the survivors.
  int replicas_b = 0;
  for (int r = 0; r < kN - 1; ++r) {
    replicas_b += world.stores[static_cast<std::size_t>(r)].contains(fp_b);
  }
  EXPECT_EQ(replicas_b, 2);
  // Rank 2's dataset restores in the shrunken world (dense key 2).
  std::vector<chunk::ChunkStore*> alive{world.ptrs[0], world.ptrs[1],
                                        world.ptrs[2]};
  const auto restored = core::restore_rank(alive, 2);
  ASSERT_EQ(restored.segments.size(), 1u);
  ASSERT_EQ(restored.segments[0].size(), 2 * kPage);
  EXPECT_EQ(std::memcmp(restored.segments[0].data(), payload_a.data(), kPage),
            0);
  EXPECT_EQ(
      std::memcmp(restored.segments[0].data() + kPage, payload_b.data(), kPage),
      0);
}

// Deaths beyond what K can tolerate must fail loudly — every survivor gets
// the same rich ChunkLostError instead of hanging or silently continuing.
TEST(Recovery, CascadingDeathsBeyondKFailLoudly) {
  constexpr int kN = 4;
  const auto fp_c = hash::Fingerprint::from_u64(0xC);
  const auto fp_y = hash::Fingerprint::from_u64(0x59);
  const auto payload = colored(3);

  ManualWorld world(kN);
  for (int r = 0; r < kN; ++r) {
    world.stores[static_cast<std::size_t>(r)].put(fp_c, payload);
  }
  // Y lives only on the two stores about to die; rank 1 references it.
  world.stores[2].put(fp_y, payload);
  world.stores[3].put(fp_y, payload);
  const std::vector<hash::Fingerprint> cy{fp_c, fp_y};
  for (int r = 0; r < kN; ++r) {
    for (int owner = 0; owner < kN; ++owner) {
      auto m = owner == 1 ? manifest_of(owner, cy)
                          : manifest_of(owner, std::span{&fp_c, 1});
      world.stores[static_cast<std::size_t>(r)].put_manifest(std::move(m));
    }
  }

  fault::FaultSchedule sched;
  add_kills(sched, {2, 3}, "test.kill");
  simmpi::RuntimeOptions opts;
  opts.contain_failures = true;
  opts.faults = &sched;
  recover::RecoveryService svc(world.ptrs, recover::RecoveryConfig{2, true});

  simmpi::Runtime rt(kN, opts);
  try {
    rt.run([&](simmpi::Comm& comm) {
      comm.fault_point("test.kill");
      try {
        comm.barrier();
      } catch (const simmpi::RankDeadError&) {
      }
      (void)svc.recover_world(comm);
    });
    FAIL() << "replication exceeded must surface, not pass";
  } catch (const core::ChunkLostError& e) {
    ASSERT_TRUE(e.has_fp());
    EXPECT_EQ(e.fp(), fp_y);
    EXPECT_EQ(e.owner_rank(), 1);  // post-shrink dense owner of the dataset
    EXPECT_EQ(e.stores_consulted(), 2);
    EXPECT_EQ(e.stores_failed(), 2);
    EXPECT_NE(std::string(e.what()).find(fp_y.hex().substr(0, 12)),
              std::string::npos);
  }
}

// -- the full pipeline: death during DUMP_OUTPUT -------------------------------

struct DumpDeathRun {
  std::vector<chunk::ChunkStore> stores;
  std::vector<std::optional<recover::RecoveryStats>> recoveries;
  std::vector<std::size_t> checkpoints;
  std::string metrics_json;
  std::uint64_t recover_count = 0;
};

// Six ranks dump under K=3 (identity ring); world rank 2 is killed mid
// exchange of epoch 2.  DegradedPolicy::kShrink recovers and re-dumps in
// the 5-rank world.
DumpDeathRun run_dump_death() {
  constexpr int kN = 6;
  DumpDeathRun run;
  run.recoveries.resize(kN);
  run.checkpoints.resize(kN, 0);
  for (int r = 0; r < kN; ++r) {
    run.stores.emplace_back(chunk::StoreMode::kPayload);
  }
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : run.stores) ptrs.push_back(&s);

  fault::FaultSchedule sched;
  add_kills(sched, {2}, "dump.exchange.mid", /*epoch=*/2);
  sched.arm(ptrs);
  check::Checker checker;
  obs::Telemetry tel;
  simmpi::RuntimeOptions opts;
  opts.contain_failures = true;
  opts.faults = &sched;
  opts.checker = &checker;
  opts.telemetry = &tel;

  recover::RecoveryService svc(ptrs, recover::RecoveryConfig{3, true});
  simmpi::Runtime rt(kN, opts);
  rt.run([&](simmpi::Comm& comm) {
    const int w = comm.world_rank();
    ftrt::TrackedArena arena(kPage, 32);
    auto region = arena.allocate(kPages * kPage);
    const auto data = unique_pages(w);
    std::memcpy(region.data(), data.data(), data.size());

    ftrt::CheckpointConfig cfg;
    cfg.dump = identity_ring_config();
    cfg.replication_factor = 3;
    cfg.on_degraded = ftrt::DegradedPolicy::kShrink;
    cfg.recovery = &svc;
    ftrt::CheckpointRuntime ckpt(
        comm, run.stores[static_cast<std::size_t>(w)], arena, cfg);

    (void)ckpt.checkpoint_now();  // epoch 1: healthy, all six ranks
    (void)ckpt.checkpoint_now();  // epoch 2 dies; recovery + epoch-3 retry
    run.checkpoints[static_cast<std::size_t>(w)] = ckpt.checkpoints_taken();
    if (ckpt.last_recovery().has_value()) {
      run.recoveries[static_cast<std::size_t>(w)] = *ckpt.last_recovery();
    }
  });
  EXPECT_EQ(checker.violation_count(), 0u);
  run.metrics_json = tel.metrics().to_json();
  run.recover_count = tel.metrics().counter("recover.count");
  return run;
}

TEST(Recovery, DeathDuringDumpShrinksRebalancesAndRedumps) {
  auto run = run_dump_death();

  // Survivors completed both checkpoints; the dead rank completed one.
  for (int w = 0; w < 6; ++w) {
    EXPECT_EQ(run.checkpoints[static_cast<std::size_t>(w)],
              w == 2 ? 0u : 2u);
  }
  for (int w = 0; w < 6; ++w) {
    if (w == 2) {
      EXPECT_FALSE(run.recoveries[static_cast<std::size_t>(w)].has_value());
      continue;
    }
    const auto& s = *run.recoveries[static_cast<std::size_t>(w)];
    EXPECT_EQ(s.deaths, 1);
    EXPECT_EQ(s.world_size_after, 5);
    EXPECT_EQ(s.k_effective, 3);
    // Identity ring: store 2 held one of the three replicas of every chunk
    // of ranks 0, 1 and 2 (3 x 16 chunks -> one copy each); the other
    // three ranks' chunks still sit on three survivors — free.
    EXPECT_EQ(s.chunks_total, 6 * kPages);
    EXPECT_EQ(s.dedup_satisfied_chunks, 3 * kPages);
    EXPECT_EQ(s.dedup_satisfied_bytes, 3 * kPages * kPage);
    EXPECT_EQ(s.rereplicated_chunks, 3 * kPages);
    EXPECT_EQ(s.rereplicated_bytes, 3 * kPages * kPage);
    EXPECT_EQ(s.orphan_bytes_total, kPages * kPage);
  }
  // The orphaned dataset landed on the first survivor, byte-identical to
  // rank 2's last committed dump.
  const auto& adopter = *run.recoveries[0];
  ASSERT_EQ(adopter.orphans.size(), 1u);
  EXPECT_EQ(adopter.orphans[0].world_rank, 2);
  ASSERT_EQ(adopter.orphans[0].segments.size(), 1u);
  EXPECT_EQ(adopter.orphans[0].segments[0], unique_pages(2));

  // Every survivor's re-dump restores byte-identical under the dense keys.
  std::vector<chunk::ChunkStore*> alive;
  const std::vector<int> alive_world{0, 1, 3, 4, 5};
  for (const int w : alive_world) {
    alive.push_back(&run.stores[static_cast<std::size_t>(w)]);
  }
  for (int r = 0; r < 5; ++r) {
    const auto restored = core::restore_rank(alive, r);
    ASSERT_EQ(restored.segments.size(), 1u);
    EXPECT_EQ(restored.segments[0],
              unique_pages(alive_world[static_cast<std::size_t>(r)]));
  }
}

// Same schedule, same seed, same sim clock: recovery is deterministic down
// to the exported metrics (TSan-clean containment is not enough — the
// rebalance plan and timings must be bit-stable too).
TEST(Recovery, SameScheduleYieldsBitIdenticalMetrics) {
  const auto a = run_dump_death();
  const auto b = run_dump_death();
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.recover_count, 1u);
}

// -- endurance: HPCCG with repeated kills --------------------------------------

// The acceptance scenario: an HPCCG run takes periodic checkpoints while
// ranks are killed at different epochs; the job finishes in the shrunken
// world, every orphaned dataset is recovered byte-identical to its last
// committed checkpoint, and the check layer stays silent.
TEST(Recovery, HpccgEnduranceSurvivesRepeatedKills) {
  constexpr int kN = 6;
  constexpr int kRounds = 6;
  std::vector<chunk::ChunkStore> stores;
  for (int r = 0; r < kN; ++r) stores.emplace_back(chunk::StoreMode::kPayload);
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);

  fault::FaultSchedule sched;
  for (const auto& [rank, epoch] :
       std::vector<std::pair<int, std::uint64_t>>{{5, 3}, {2, 6}}) {
    fault::FaultEvent ev;
    ev.point = "dump.exchange.mid";
    ev.rank = rank;
    ev.epoch = epoch;
    ev.action = fault::FaultAction::kKillRank;
    sched.add(ev);
  }
  sched.arm(ptrs);

  check::Checker checker;
  obs::Telemetry tel;
  simmpi::RuntimeOptions opts;
  opts.contain_failures = true;
  opts.faults = &sched;
  opts.checker = &checker;
  opts.telemetry = &tel;

  recover::RecoveryService svc(ptrs, recover::RecoveryConfig{3, true});
  // Last committed arena image per world rank (each rank writes only its
  // own slot) and every orphan captured by its adopter, by world rank.
  std::vector<std::vector<std::uint8_t>> committed(kN);
  std::vector<std::vector<std::uint8_t>> adopted(kN);
  std::vector<int> final_size(kN, -1);

  simmpi::Runtime rt(kN, opts);
  rt.run([&](simmpi::Comm& comm) {
    const int w = comm.world_rank();
    ftrt::TrackedArena arena(kPage, 64);
    apps::HpccgConfig hcfg;
    hcfg.nx = hcfg.ny = hcfg.nz = 6;
    apps::HpccgSolver solver(comm, arena, hcfg);

    ftrt::CheckpointConfig cfg;
    cfg.dump = identity_ring_config();
    cfg.replication_factor = 3;
    cfg.on_degraded = ftrt::DegradedPolicy::kShrink;
    cfg.recovery = &svc;
    ftrt::CheckpointRuntime ckpt(
        comm, stores[static_cast<std::size_t>(w)], arena, cfg);

    for (int round = 0; round < kRounds; ++round) {
      (void)solver.iterate(1);
      (void)ckpt.checkpoint_now(ptrs);
      // Committed: record this rank's arena image as of this checkpoint.
      auto& mine = committed[static_cast<std::size_t>(w)];
      mine.clear();
      const auto snap = arena.snapshot();
      for (std::size_t s = 0; s < snap.segment_count(); ++s) {
        const auto seg = snap.segment(s);
        mine.insert(mine.end(), seg.begin(), seg.end());
      }
      if (ckpt.last_recovery().has_value()) {
        for (const auto& od : ckpt.last_recovery()->orphans) {
          auto& slot = adopted[static_cast<std::size_t>(od.world_rank)];
          slot.clear();
          for (const auto& seg : od.segments) {
            slot.insert(slot.end(), seg.begin(), seg.end());
          }
        }
      }
    }
    final_size[static_cast<std::size_t>(w)] = comm.size();
  });

  // Both victims died; every survivor finished all rounds in a 4-rank world.
  for (int w = 0; w < kN; ++w) {
    const bool victim = w == 5 || w == 2;
    EXPECT_EQ(final_size[static_cast<std::size_t>(w)], victim ? -1 : kN - 2)
        << "world rank " << w;
  }
  EXPECT_EQ(sched.fired().size(), 2u);
  EXPECT_EQ(checker.violation_count(), 0u);
  EXPECT_EQ(tel.metrics().counter("simmpi.rank_deaths"), 2u);
  EXPECT_EQ(tel.metrics().counter("recover.count"), 2u);
  EXPECT_EQ(tel.metrics().counter("simmpi.shrinks"), 2u);

  // Each orphan matches the victim's last committed checkpoint image,
  // byte for byte.
  for (const int victim : {5, 2}) {
    const auto& want = committed[static_cast<std::size_t>(victim)];
    const auto& got = adopted[static_cast<std::size_t>(victim)];
    ASSERT_FALSE(want.empty()) << "victim " << victim;
    EXPECT_EQ(got, want) << "victim " << victim;
  }

  // And the final world's checkpoints restore cleanly.
  std::vector<chunk::ChunkStore*> alive;
  const std::vector<int> alive_world{0, 1, 3, 4};
  for (const int w : alive_world) {
    alive.push_back(&stores[static_cast<std::size_t>(w)]);
  }
  for (int r = 0; r < 4; ++r) {
    const auto restored = core::restore_rank(alive, r);
    std::vector<std::uint8_t> flat;
    for (const auto& seg : restored.segments) {
      flat.insert(flat.end(), seg.begin(), seg.end());
    }
    EXPECT_EQ(flat, committed[static_cast<std::size_t>(
                        alive_world[static_cast<std::size_t>(r)])])
        << "dense rank " << r;
  }
}

}  // namespace
