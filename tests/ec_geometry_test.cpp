// EC group-geometry helpers: member/holder layout, wrap-around, and key
// stability — the restore path depends on recomputing these identically.
#include <gtest/gtest.h>

#include "core/group_parity.hpp"

namespace {

using namespace collrep;
using core::EcConfig;

EcConfig cfg(int m, int r) {
  EcConfig c;
  c.group_size = m;
  c.parity = r;
  return c;
}

TEST(EcGeometry, GroupAssignmentPartitionsRanks) {
  const auto c = cfg(3, 2);
  EXPECT_EQ(core::ec_group_of(0, c), 0);
  EXPECT_EQ(core::ec_group_of(2, c), 0);
  EXPECT_EQ(core::ec_group_of(3, c), 1);
  EXPECT_EQ(core::ec_group_count(9, c), 3);
  EXPECT_EQ(core::ec_group_count(10, c), 4);  // ragged tail group
}

TEST(EcGeometry, MembersCoverEveryRankExactlyOnce) {
  const auto c = cfg(4, 2);
  const int nranks = 14;  // ragged: groups of 4,4,4,2
  std::vector<int> seen;
  for (int g = 0; g < core::ec_group_count(nranks, c); ++g) {
    for (const int m : core::ec_group_members(g, nranks, c)) {
      seen.push_back(m);
    }
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(static_cast<int>(seen.size()), nranks);
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], r);
  }
}

TEST(EcGeometry, HoldersFollowGroupAndWrap) {
  const auto c = cfg(3, 2);
  const auto h0 = core::ec_parity_holders(0, 9, c);
  EXPECT_EQ(h0, (std::vector<int>{3, 4}));
  const auto h2 = core::ec_parity_holders(2, 9, c);  // wraps to the front
  EXPECT_EQ(h2, (std::vector<int>{0, 1}));
}

TEST(EcGeometry, HoldersDisjointFromMembersWhenFeasible) {
  const auto c = cfg(4, 2);
  const int nranks = 12;
  for (int g = 0; g < core::ec_group_count(nranks, c); ++g) {
    const auto members = core::ec_group_members(g, nranks, c);
    for (const int h : core::ec_parity_holders(g, nranks, c)) {
      EXPECT_EQ(std::find(members.begin(), members.end(), h), members.end())
          << "group " << g << " holder " << h;
    }
  }
}

TEST(EcGeometry, KeysAreUniquePerGroupIndexEpoch) {
  EXPECT_NE(core::ec_parity_key(1, 0, 7), core::ec_parity_key(1, 1, 7));
  EXPECT_NE(core::ec_parity_key(1, 0, 7), core::ec_parity_key(2, 0, 7));
  EXPECT_NE(core::ec_parity_key(1, 0, 7), core::ec_parity_key(1, 0, 8));
  EXPECT_EQ(core::ec_parity_key(1, 0, 7), core::ec_parity_key(1, 0, 7));
  EXPECT_NE(core::ec_stream_key(3, 1), core::ec_stream_key(3, 2));
  EXPECT_NE(core::ec_stream_key(3, 1), core::ec_stream_key(4, 1));
}

}  // namespace
