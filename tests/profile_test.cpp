// Causal profiler: critical-path extraction on hand-built DAGs with known
// answers, flow-edge pairing and ±0-tick phase accounting on real dumps,
// byte-stable profile JSON, live-vs-file round trip through the collprof
// trace loader, and the dropped-events contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"
#include "trace_load.hpp"

namespace {

using namespace collrep;
using collrep::test::JsonChecker;
using obs::EventKind;
using obs::ProfEvent;
using obs::SegmentKind;

// -- hand-built fixtures -------------------------------------------------------

ProfEvent ev(EventKind kind, int rank, std::int64_t ts_ns, const char* name,
             std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0) {
  return ProfEvent{kind, rank, /*run=*/1, ts_ns, name, a, b, c};
}

// Four ranks, two phases, two barriers; every duration chosen by hand.
//
//   alpha: rank r works [0, 100+10r] ns -> rank 3 straggles at 130
//   beta:  rank 2 works [130, 230], everyone else [130, 200]
//
// The critical path must be: rank 3 computing through all of alpha
// (130 ns), then rank 2 computing through all of beta (100 ns); barrier
// waits contribute zero because the path runs through each straggler.
std::vector<ProfEvent> two_phase_fixture() {
  std::vector<ProfEvent> events;
  for (int r = 0; r < 4; ++r) {
    const std::int64_t alpha_e = 100 + 10 * r;
    const std::int64_t beta_e = (r == 2) ? 230 : 200;
    events.push_back(ev(EventKind::kPhaseBegin, r, 0, "dump"));
    events.push_back(ev(EventKind::kPhaseBegin, r, 0, "alpha"));
    events.push_back(ev(EventKind::kPhaseEnd, r, alpha_e, "alpha"));
    events.push_back(
        ev(EventKind::kSyncBegin, r, alpha_e, "barrier", 0, 0, /*c=*/0));
    events.push_back(ev(EventKind::kSyncEnd, r, 130, "barrier", 0, 0, 0));
    events.push_back(ev(EventKind::kPhaseBegin, r, 130, "beta"));
    events.push_back(ev(EventKind::kPhaseEnd, r, beta_e, "beta"));
    events.push_back(
        ev(EventKind::kSyncBegin, r, beta_e, "barrier", 0, 0, /*c=*/1));
    events.push_back(ev(EventKind::kSyncEnd, r, 230, "barrier", 0, 0, 1));
    events.push_back(ev(EventKind::kPhaseEnd, r, 230, "dump"));
  }
  return events;
}

TEST(CriticalPath, TwoPhaseFixtureSumsExactly) {
  const obs::Profile p = obs::build_profile(two_phase_fixture());
  ASSERT_EQ(p.dumps.size(), 1u);
  EXPECT_EQ(p.unmatched_flows, 0u);
  EXPECT_EQ(p.unmatched_syncs, 0u);

  const obs::DumpProfile& dp = p.dumps[0];
  EXPECT_EQ(dp.nranks, 4);
  EXPECT_EQ(dp.total_ns, 230);

  // Acceptance: per-phase critical times sum to the dump latency, ±0 ticks.
  std::int64_t sum = 0;
  for (const obs::PhaseProfile& pp : dp.phases) sum += pp.critical_ns;
  EXPECT_EQ(sum, dp.total_ns);

  ASSERT_EQ(dp.phases.size(), 2u);
  const obs::PhaseProfile& alpha = dp.phases[0];
  EXPECT_EQ(alpha.phase, "alpha");
  EXPECT_EQ(alpha.critical_ns, 130);
  EXPECT_EQ(alpha.compute_ns, 130);   // path runs through the straggler
  EXPECT_EQ(alpha.barrier_ns, 0);
  EXPECT_EQ(alpha.straggler_rank, 3);
  EXPECT_EQ(alpha.rank_p50_ns, 110);  // works sorted: 100 110 120 130
  EXPECT_EQ(alpha.rank_p99_ns, 130);
  EXPECT_EQ(alpha.rank_max_ns, 130);

  const obs::PhaseProfile& beta = dp.phases[1];
  EXPECT_EQ(beta.phase, "beta");
  EXPECT_EQ(beta.critical_ns, 100);
  EXPECT_EQ(beta.compute_ns, 100);
  EXPECT_EQ(beta.straggler_rank, 2);
  EXPECT_EQ(beta.rank_p50_ns, 70);    // works sorted: 70 70 70 100
  EXPECT_EQ(beta.rank_p99_ns, 100);

  // Path ownership: rank 3 carries alpha, rank 2 carries beta.
  ASSERT_EQ(dp.rank_critical.size(), 2u);
  EXPECT_EQ(dp.rank_critical[0].rank, 3);
  EXPECT_EQ(dp.rank_critical[0].critical_ns, 130);
  EXPECT_EQ(dp.rank_critical[1].rank, 2);
  EXPECT_EQ(dp.rank_critical[1].critical_ns, 100);

  // Segments are chronological and telescope over [start, end].
  ASSERT_EQ(dp.segments.size(), 2u);
  EXPECT_EQ(dp.segments[0].t0_ns, 0);
  EXPECT_EQ(dp.segments[0].t1_ns, 130);
  EXPECT_EQ(dp.segments[0].rank, 3);
  EXPECT_EQ(dp.segments[0].kind, SegmentKind::kCompute);
  EXPECT_EQ(dp.segments[1].t0_ns, 130);
  EXPECT_EQ(dp.segments[1].t1_ns, 230);
  EXPECT_EQ(dp.segments[1].rank, 2);
}

// Two ranks; rank 0 sends at t=10, rank 1 is ready at t=5 but the message
// lands at t=25.  The 15 ns in-flight window must be attributed to the
// receiver as comm_wait, and the path must cross to the sender's timeline.
std::vector<ProfEvent> comm_wait_fixture() {
  std::vector<ProfEvent> events;
  const std::uint64_t flow = 42;
  // rank 0: sender
  events.push_back(ev(EventKind::kPhaseBegin, 0, 0, "dump"));
  events.push_back(ev(EventKind::kSend, 0, 10, "send", 100, 1, flow));
  events.push_back(ev(EventKind::kSyncBegin, 0, 10, "barrier", 0, 0, 0));
  events.push_back(ev(EventKind::kSyncEnd, 0, 25, "barrier", 0, 0, 0));
  events.push_back(ev(EventKind::kPhaseEnd, 0, 25, "dump"));
  // rank 1: receiver, ready early
  events.push_back(ev(EventKind::kPhaseBegin, 1, 0, "dump"));
  events.push_back(ev(EventKind::kStoreCommit, 1, 5, "commit", 64));
  events.push_back(ev(EventKind::kRecv, 1, 25, "recv", 100, 0, flow));
  events.push_back(ev(EventKind::kSyncBegin, 1, 25, "barrier", 0, 0, 0));
  events.push_back(ev(EventKind::kSyncEnd, 1, 25, "barrier", 0, 0, 0));
  events.push_back(ev(EventKind::kPhaseEnd, 1, 25, "dump"));
  return events;
}

TEST(CriticalPath, CommWaitCrossesToSender) {
  const obs::Profile p = obs::build_profile(comm_wait_fixture());
  ASSERT_EQ(p.dumps.size(), 1u);
  EXPECT_EQ(p.unmatched_flows, 0u);
  EXPECT_EQ(p.unmatched_syncs, 0u);

  const obs::DumpProfile& dp = p.dumps[0];
  EXPECT_EQ(dp.total_ns, 25);

  ASSERT_EQ(dp.segments.size(), 2u);
  // [0,10]: rank 0 computing up to its send.
  EXPECT_EQ(dp.segments[0].rank, 0);
  EXPECT_EQ(dp.segments[0].t0_ns, 0);
  EXPECT_EQ(dp.segments[0].t1_ns, 10);
  EXPECT_EQ(dp.segments[0].kind, SegmentKind::kCompute);
  // [10,25]: the message in flight, charged to the waiting receiver.
  EXPECT_EQ(dp.segments[1].rank, 1);
  EXPECT_EQ(dp.segments[1].t0_ns, 10);
  EXPECT_EQ(dp.segments[1].t1_ns, 25);
  EXPECT_EQ(dp.segments[1].kind, SegmentKind::kCommWait);

  std::int64_t sum = 0;
  for (const obs::PhaseProfile& pp : dp.phases) sum += pp.critical_ns;
  EXPECT_EQ(sum, dp.total_ns);
}

TEST(CriticalPath, UnmatchedEdgesAreCounted) {
  auto events = comm_wait_fixture();
  // Drop rank 1's kRecv and its sync entry: the flow loses its receive end
  // and generation 0 loses a participant.
  std::vector<ProfEvent> broken;
  for (const ProfEvent& e : events) {
    if (e.rank == 1 && (e.kind == EventKind::kRecv ||
                        e.kind == EventKind::kSyncBegin)) {
      continue;
    }
    broken.push_back(e);
  }
  const obs::Profile p = obs::build_profile(broken);
  EXPECT_EQ(p.unmatched_flows, 1u);
  EXPECT_EQ(p.unmatched_syncs, 1u);
}

// -- real pipeline -------------------------------------------------------------

core::DumpConfig instrumented_cfg() {
  core::DumpConfig cfg;
  cfg.chunk_bytes = 512;
  return cfg;
}

collrep::test::DataGen page_gen() {
  return [](int rank) { return collrep::test::mixed_pages(rank, 24, 512); };
}

TEST(ProfileRealDump, CriticalPathSumsToDumpTimeAndFlowsPair) {
  obs::Telemetry tel;
  simmpi::RuntimeOptions opts;
  opts.telemetry = &tel;
  auto run = collrep::test::run_dump(4, 2, instrumented_cfg(), page_gen(),
                                     chunk::StoreMode::kPayload, opts);

  // Profile-mode contract: the ring must hold the whole dump.
  EXPECT_EQ(tel.dropped_events(), 0u);

  const std::vector<ProfEvent> events = obs::collect_events(tel);
  std::size_t sends = 0;
  std::size_t recvs = 0;
  for (const ProfEvent& e : events) {
    if (e.kind == EventKind::kSend) ++sends;
    if (e.kind == EventKind::kRecv) ++recvs;
  }
  EXPECT_GT(sends, 0u);        // the collectives really emit flow edges
  EXPECT_EQ(sends, recvs);     // every send edge has a matching receive

  const obs::Profile p = obs::build_profile(events, tel.dropped_events());
  EXPECT_EQ(p.unmatched_flows, 0u);
  EXPECT_EQ(p.unmatched_syncs, 0u);
  ASSERT_EQ(p.dumps.size(), 1u);

  const obs::DumpProfile& dp = p.dumps[0];
  EXPECT_EQ(dp.nranks, 4);
  EXPECT_GT(dp.total_ns, 0);

  // Acceptance: phase critical times sum to the dump latency, ±0 ticks...
  std::int64_t sum = 0;
  for (const obs::PhaseProfile& pp : dp.phases) sum += pp.critical_ns;
  EXPECT_EQ(sum, dp.total_ns);

  // ...and the dump window agrees with the measured DumpStats latency
  // (tick rounding of two double timestamps allows ±1 ns each way).
  EXPECT_NEAR(static_cast<double>(dp.total_ns) * 1e-9,
              run.stats[0].total_time_s, 2e-9);
}

TEST(ProfileRealDump, ProfileJsonIsByteStableAcrossRuns) {
  std::string json[2];
  for (std::string& out : json) {
    obs::Telemetry tel;
    simmpi::RuntimeOptions opts;
    opts.telemetry = &tel;
    (void)collrep::test::run_dump(4, 2, instrumented_cfg(), page_gen(),
                                  chunk::StoreMode::kPayload, opts);
    out = obs::profile_json(
        obs::build_profile(obs::collect_events(tel), tel.dropped_events()));
  }
  EXPECT_EQ(json[0], json[1]);
}

TEST(ProfileRealDump, FileRoundTripMatchesLiveProfile) {
  obs::Telemetry tel;
  simmpi::RuntimeOptions opts;
  opts.telemetry = &tel;
  (void)collrep::test::run_dump(4, 2, instrumented_cfg(), page_gen(),
                                chunk::StoreMode::kPayload, opts);

  const std::vector<ProfEvent> live_events = obs::collect_events(tel);
  const obs::Profile live =
      obs::build_profile(live_events, tel.dropped_events());

  // collprof's loader must reconstruct the identical profile from the
  // exported Chrome trace file.
  const collprof::LoadResult loaded = collprof::load_trace(tel.trace_json());
  ASSERT_TRUE(loaded.ok()) << (loaded.errors.empty() ? "" : loaded.errors[0]);
  const obs::Profile from_file =
      obs::build_profile(loaded.events, loaded.dropped_events);

  EXPECT_EQ(obs::profile_json(live), obs::profile_json(from_file));
  EXPECT_EQ(obs::augmented_trace_json(live_events, live),
            obs::augmented_trace_json(loaded.events, from_file));
}

TEST(ProfileRealDump, ExportsAreValidJsonWithFlowAndCriticalTracks) {
  obs::Telemetry tel;
  simmpi::RuntimeOptions opts;
  opts.telemetry = &tel;
  (void)collrep::test::run_dump(4, 2, instrumented_cfg(), page_gen(),
                                chunk::StoreMode::kPayload, opts);
  const std::vector<ProfEvent> events = obs::collect_events(tel);
  const obs::Profile p = obs::build_profile(events, tel.dropped_events());

  const std::string prof = obs::profile_json(p);
  EXPECT_TRUE(JsonChecker(prof).valid());
  EXPECT_NE(prof.find("\"schema\": \"collprof-profile-v1\""),
            std::string::npos);

  const std::string aug = obs::augmented_trace_json(events, p);
  EXPECT_TRUE(JsonChecker(aug).valid());
  EXPECT_NE(aug.find("\"cat\": \"flow\""), std::string::npos);
  EXPECT_NE(aug.find("\"cat\": \"critical\""), std::string::npos);

  EXPECT_NE(obs::profile_report(p).find("critical path"), std::string::npos);
}

TEST(ProfileRealDump, RingOverflowIsCountedAndPublished) {
  obs::TelemetryConfig cfg;
  cfg.trace_capacity = 8;  // deliberately too small for a dump
  obs::Telemetry tel(cfg);
  simmpi::RuntimeOptions opts;
  opts.telemetry = &tel;
  (void)collrep::test::run_dump(4, 2, instrumented_cfg(), page_gen(),
                                chunk::StoreMode::kPayload, opts);

  EXPECT_GT(tel.dropped_events(), 0u);

  // The overflow flows into the profile header and the metrics registry.
  const obs::Profile p =
      obs::build_profile(obs::collect_events(tel), tel.dropped_events());
  EXPECT_EQ(p.dropped_events, tel.dropped_events());

  tel.publish_rollup();
  const std::string metrics = tel.metrics().to_json();
  EXPECT_NE(metrics.find("trace.dropped_events"), std::string::npos);
  EXPECT_NE(metrics.find("trace.rank0.dropped_events"), std::string::npos);
}

}  // namespace
