// RESTORE_INPUT (the collective restart primitive): equivalence with the
// serial restore path, byte attribution, simulated-time behaviour, and
// failure propagation across ranks.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace {

using namespace collrep;

constexpr std::size_t kPage = 128;

core::DumpConfig cfg() {
  core::DumpConfig c;
  c.chunk_bytes = kPage;
  return c;
}

test::DumpRun dumped_run(int nranks, int k) {
  return test::run_dump(nranks, k, cfg(), [](int rank) {
    return test::mixed_pages(rank, 16, kPage);
  });
}

TEST(RestoreInput, MatchesSerialRestore) {
  constexpr int kRanks = 6;
  auto run = dumped_run(kRanks, 3);
  auto ptrs = test::store_ptrs(run);

  std::vector<core::RestoreResult> collective(kRanks);
  simmpi::Runtime rt(kRanks);
  rt.run([&](simmpi::Comm& comm) {
    auto [result, stats] = core::restore_input(comm, ptrs);
    EXPECT_GT(stats.total_time_s, 0.0);
    collective[static_cast<std::size_t>(comm.rank())] = std::move(result);
  });

  for (int r = 0; r < kRanks; ++r) {
    const auto serial = core::restore_rank(ptrs, r);
    EXPECT_EQ(collective[static_cast<std::size_t>(r)].segments,
              serial.segments);
    EXPECT_EQ(collective[static_cast<std::size_t>(r)].segments[0],
              run.datasets[static_cast<std::size_t>(r)]);
  }
}

TEST(RestoreInput, ByteAttributionDistinguishesSources) {
  constexpr int kRanks = 4;
  auto run = dumped_run(kRanks, 3);
  auto ptrs = test::store_ptrs(run);

  // Healthy restore: rank 1 serves everything locally.
  {
    const auto healthy = core::restore_rank(ptrs, 1);
    EXPECT_GT(healthy.bytes_from_own_store, 0u);
  }

  // With rank 1's store gone, every byte must come from partners.
  run.stores[1].fail();
  const auto degraded = core::restore_rank(ptrs, 1);
  EXPECT_EQ(degraded.bytes_from_own_store, 0u);
  EXPECT_EQ(degraded.bytes_from_remote_stores,
            run.datasets[1].size());
  EXPECT_EQ(degraded.segments[0], run.datasets[1]);
}

TEST(RestoreInput, DegradedRestartCostsMoreSimulatedTime) {
  constexpr int kRanks = 6;
  const auto timed_restore = [&](bool fail_one) {
    auto run = dumped_run(kRanks, 3);
    auto ptrs = test::store_ptrs(run);
    if (fail_one) run.stores[0].fail();
    double time = 0.0;
    simmpi::Runtime rt(kRanks);
    rt.run([&](simmpi::Comm& comm) {
      const auto [result, stats] = core::restore_input(comm, ptrs);
      if (comm.rank() == 0) time = stats.total_time_s;
    });
    return time;
  };
  // Network fetches make the degraded restart strictly slower.
  EXPECT_GT(timed_restore(true), timed_restore(false));
}

// Private data over the identity ring: rank 0's manifest and chunks live
// on stores {0, 1, 2} exactly, which lets the tests below dial in which
// loss error a failure pattern must produce.
test::DumpRun private_identity_run(int nranks) {
  core::DumpConfig c = cfg();
  c.rank_shuffle = false;
  return test::run_dump(nranks, 3, c, [](int rank) {
    std::vector<std::uint8_t> data(8 * kPage);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i * 31 + 1009 * (rank + 1));
    }
    return data;
  });
}

TEST(RestoreErrors, AllReplicaHoldersDownMeansManifestLost) {
  constexpr int kRanks = 6;
  auto run = private_identity_run(kRanks);
  auto ptrs = test::store_ptrs(run);
  for (int v : {0, 1, 2}) run.stores[static_cast<std::size_t>(v)].fail();

  // Rank 0's manifest replicas all died with its chunk replicas: the
  // restore cannot even learn what it is missing.
  EXPECT_THROW((void)core::restore_rank(ptrs, 0), core::ManifestLostError);
  // Ranks 1 and 2 lost stores but their third partner survived.
  for (int r : {1, 2, 3, 4, 5}) {
    const auto result = core::restore_rank(ptrs, r);
    EXPECT_EQ(result.segments[0],
              run.datasets[static_cast<std::size_t>(r)]);
  }
}

TEST(RestoreErrors, SurvivingManifestWithoutChunksMeansChunkLost) {
  constexpr int kRanks = 6;
  auto run = private_identity_run(kRanks);
  auto ptrs = test::store_ptrs(run);
  // Stash an extra manifest replica outside the partner ring, then kill
  // the ring: the restore knows exactly what it needs and finds none of it.
  const auto* manifest0 = run.stores[1].manifest_for(0);
  ASSERT_NE(manifest0, nullptr);
  run.stores[5].put_manifest(*manifest0);
  for (int v : {0, 1, 2}) run.stores[static_cast<std::size_t>(v)].fail();

  EXPECT_THROW((void)core::restore_rank(ptrs, 0), core::ChunkLostError);
}

TEST(RestoreErrors, PartialFailurePropagatesCollectivelyWithoutDeadlock) {
  constexpr int kRanks = 6;
  auto run = private_identity_run(kRanks);
  auto ptrs = test::store_ptrs(run);
  // Only rank 0's restore is doomed; the other five would succeed and sit
  // in the collective until the abort reaches them.  The run must end with
  // the originating exception, not hang or surface AbortedError.
  for (int v : {0, 1, 2}) run.stores[static_cast<std::size_t>(v)].fail();

  simmpi::Runtime rt(kRanks);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
    (void)core::restore_input(comm, ptrs);
  }),
               core::ManifestLostError);
}

TEST(RestoreInput, LossPropagatesAsException) {
  constexpr int kRanks = 4;
  auto run = test::run_dump(kRanks, 2, cfg(), [](int rank) {
    // Fully private data: exactly K = 2 copies of everything.
    std::vector<std::uint8_t> data(8 * kPage);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i * 31 + 1009 * (rank + 1));
    }
    return data;
  });
  auto ptrs = test::store_ptrs(run);
  for (auto* s : ptrs) s->fail();  // everything gone

  simmpi::Runtime rt(kRanks);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
    (void)core::restore_input(comm, ptrs);
  }),
               core::ManifestLostError);
}

}  // namespace
