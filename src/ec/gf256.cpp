#include "ec/gf256.hpp"

#include "kernels/kernels.hpp"

namespace collrep::ec {

void gf_mul_add(std::span<std::uint8_t> out, std::span<const std::uint8_t> in,
                std::uint8_t coeff) noexcept {
  const std::size_t n = in.size() < out.size() ? in.size() : out.size();
  kernels::dispatch().gf_mul_add(out.data(), in.data(), n, coeff);
}

void gf_mul(std::span<std::uint8_t> out, std::span<const std::uint8_t> in,
            std::uint8_t coeff) noexcept {
  const std::size_t n = in.size() < out.size() ? in.size() : out.size();
  kernels::dispatch().gf_mul(out.data(), in.data(), n, coeff);
}

}  // namespace collrep::ec
