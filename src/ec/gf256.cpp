#include "ec/gf256.hpp"

namespace collrep::ec {

void gf_mul_add(std::span<std::uint8_t> out, std::span<const std::uint8_t> in,
                std::uint8_t coeff) noexcept {
  if (coeff == 0) return;
  const std::size_t n = in.size() < out.size() ? in.size() : out.size();
  if (coeff == 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] ^= in[i];
    return;
  }
  // Row of the multiplication table for `coeff`, built once per call;
  // amortized over the (chunk-sized) payload this beats log/exp lookups.
  std::uint8_t row[256];
  for (int v = 0; v < 256; ++v) {
    row[v] = gf_mul(coeff, static_cast<std::uint8_t>(v));
  }
  for (std::size_t i = 0; i < n; ++i) out[i] ^= row[in[i]];
}

}  // namespace collrep::ec
