#include "ec/reed_solomon.hpp"

#include <stdexcept>

namespace collrep::ec {

ReedSolomon::ReedSolomon(int data_shards, int parity_shards)
    : m_(data_shards), r_(parity_shards) {
  if (m_ < 1 || r_ < 0 || m_ + r_ > 256) {
    throw std::invalid_argument(
        "ReedSolomon: need 1 <= m and m + r <= 256");
  }
  // Cauchy matrix: coeff[j][i] = 1 / (x_j ^ y_i) with x_j = m + j,
  // y_i = i (all 2m + r values distinct in GF(256)).
  coeff_.resize(static_cast<std::size_t>(r_) * static_cast<std::size_t>(m_));
  for (int j = 0; j < r_; ++j) {
    for (int i = 0; i < m_; ++i) {
      const auto x = static_cast<std::uint8_t>(m_ + j);
      const auto y = static_cast<std::uint8_t>(i);
      coeff_[static_cast<std::size_t>(j) * m_ + i] =
          gf_inv(gf_add(x, y));
    }
  }
}

std::uint8_t ReedSolomon::coeff(int parity_row, int data_col) const {
  return coeff_.at(static_cast<std::size_t>(parity_row) * m_ +
                   static_cast<std::size_t>(data_col));
}

void ReedSolomon::encode(
    std::span<const std::span<const std::uint8_t>> data,
    std::span<std::vector<std::uint8_t>> parity) const {
  if (static_cast<int>(data.size()) != m_ ||
      static_cast<int>(parity.size()) != r_) {
    throw std::invalid_argument("ReedSolomon: shard count mismatch");
  }
  const std::size_t len = data.empty() ? 0 : data[0].size();
  for (const auto& shard : data) {
    if (shard.size() != len) {
      throw std::invalid_argument("ReedSolomon: uneven data shards");
    }
  }
  for (int j = 0; j < r_; ++j) {
    auto& out = parity[static_cast<std::size_t>(j)];
    out.resize(len);
    // First row overwrites (gf_mul), the rest accumulate — saves the
    // zero-fill pass over each parity shard.
    gf_mul(out, data[0], coeff(j, 0));
    for (int i = 1; i < m_; ++i) {
      gf_mul_add(out, data[static_cast<std::size_t>(i)], coeff(j, i));
    }
  }
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::reconstruct_data(
    const std::vector<std::optional<std::vector<std::uint8_t>>>& shards)
    const {
  if (static_cast<int>(shards.size()) != m_ + r_) {
    throw std::invalid_argument("ReedSolomon: shard slot count mismatch");
  }
  // Pick the first m present shards; row of the generator matrix for a
  // data shard i is the unit vector e_i, for parity shard j the Cauchy row.
  std::vector<int> chosen;
  std::size_t len = 0;
  for (int s = 0; s < m_ + r_ && static_cast<int>(chosen.size()) < m_; ++s) {
    if (shards[static_cast<std::size_t>(s)].has_value()) {
      chosen.push_back(s);
      len = shards[static_cast<std::size_t>(s)]->size();
    }
  }
  if (static_cast<int>(chosen.size()) < m_) {
    throw std::runtime_error(
        "ReedSolomon: too many erasures (need m surviving shards)");
  }
  for (const int s : chosen) {
    if (shards[static_cast<std::size_t>(s)]->size() != len) {
      throw std::invalid_argument("ReedSolomon: uneven surviving shards");
    }
  }

  // Fast path: all data shards alive.  (The empty() check is redundant with
  // the size test above but lets GCC prove back() never derefs null.)
  if (!chosen.empty() && chosen.back() < m_) {
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      out.push_back(*shards[static_cast<std::size_t>(i)]);
    }
    return out;
  }

  // Build the m x m system A * data = survivors and invert by Gauss-Jordan
  // with an identity augment (all in GF(256)).
  std::vector<std::uint8_t> a(static_cast<std::size_t>(m_) * m_, 0);
  std::vector<std::uint8_t> inv(static_cast<std::size_t>(m_) * m_, 0);
  for (int row = 0; row < m_; ++row) {
    const int s = chosen[static_cast<std::size_t>(row)];
    if (s < m_) {
      a[static_cast<std::size_t>(row) * m_ + s] = 1;
    } else {
      for (int i = 0; i < m_; ++i) {
        a[static_cast<std::size_t>(row) * m_ + i] = coeff(s - m_, i);
      }
    }
    inv[static_cast<std::size_t>(row) * m_ + row] = 1;
  }
  const auto at = [&](std::vector<std::uint8_t>& mat, int r,
                      int c) -> std::uint8_t& {
    return mat[static_cast<std::size_t>(r) * m_ + static_cast<std::size_t>(c)];
  };
  for (int col = 0; col < m_; ++col) {
    int pivot = -1;
    for (int row = col; row < m_; ++row) {
      if (at(a, row, col) != 0) {
        pivot = row;
        break;
      }
    }
    if (pivot < 0) {
      throw std::runtime_error("ReedSolomon: singular decode matrix");
    }
    if (pivot != col) {
      // Row swaps are part of the elimination sequence E with E*A = I, so
      // E (accumulated in `inv`) is A^-1 for A in its *original* row
      // order; `chosen` must keep that order.
      for (int c = 0; c < m_; ++c) {
        std::swap(at(a, pivot, c), at(a, col, c));
        std::swap(at(inv, pivot, c), at(inv, col, c));
      }
    }
    const std::uint8_t scale = gf_inv(at(a, col, col));
    for (int c = 0; c < m_; ++c) {
      at(a, col, c) = gf_mul(at(a, col, c), scale);
      at(inv, col, c) = gf_mul(at(inv, col, c), scale);
    }
    for (int row = 0; row < m_; ++row) {
      if (row == col) continue;
      const std::uint8_t factor = at(a, row, col);
      if (factor == 0) continue;
      for (int c = 0; c < m_; ++c) {
        at(a, row, c) = gf_add(at(a, row, c), gf_mul(factor, at(a, col, c)));
        at(inv, row, c) =
            gf_add(at(inv, row, c), gf_mul(factor, at(inv, col, c)));
      }
    }
  }

  // data_i = sum_row inv[i][row] * survivor_row.
  std::vector<std::vector<std::uint8_t>> out(
      static_cast<std::size_t>(m_), std::vector<std::uint8_t>(len, 0));
  for (int i = 0; i < m_; ++i) {
    bool first = true;
    for (int row = 0; row < m_; ++row) {
      const std::uint8_t c = at(inv, i, row);
      if (c == 0) continue;
      const auto& survivor = *shards[static_cast<std::size_t>(
          chosen[static_cast<std::size_t>(row)])];
      if (first) {
        gf_mul(out[static_cast<std::size_t>(i)], survivor, c);
        first = false;
      } else {
        gf_mul_add(out[static_cast<std::size_t>(i)], survivor, c);
      }
    }
  }
  return out;
}

}  // namespace collrep::ec
