// Systematic Reed-Solomon erasure code over GF(2^8) with a Cauchy parity
// matrix (every square submatrix of a Cauchy matrix is invertible, so the
// code is MDS: any m of the m+r shards reconstruct the data).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ec/gf256.hpp"

namespace collrep::ec {

class ReedSolomon {
 public:
  // m data shards + r parity shards; m + r <= 256 (field size bound).
  ReedSolomon(int data_shards, int parity_shards);

  [[nodiscard]] int data_shards() const noexcept { return m_; }
  [[nodiscard]] int parity_shards() const noexcept { return r_; }

  // Parity coefficient applied to data shard `i` when computing parity
  // shard `j`: parity_j = sum_i coeff(j, i) * data_i.  Exposed so that
  // distributed encoders (the group-parity ring) can scale contributions
  // incrementally without materializing all data shards in one place.
  [[nodiscard]] std::uint8_t coeff(int parity_row, int data_col) const;

  // Computes all parity shards from complete data shards.  Every shard
  // (data and parity) must have the same length.
  void encode(std::span<const std::span<const std::uint8_t>> data,
              std::span<std::vector<std::uint8_t>> parity) const;

  // Reconstructs the missing *data* shards.  `shards` has m + r slots
  // (data first, then parity); nullopt marks an erasure.  At least m
  // present shards are required; throws std::runtime_error otherwise.
  // Returns all m data shards (present ones are copied through).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> reconstruct_data(
      const std::vector<std::optional<std::vector<std::uint8_t>>>& shards)
      const;

 private:
  int m_;
  int r_;
  std::vector<std::uint8_t> coeff_;  // r x m Cauchy matrix, row major
};

}  // namespace collrep::ec
