// GF(2^8) arithmetic for the Reed-Solomon erasure codes (paper §VI future
// work: "combine our approach with ... erasure codes, which would act as a
// replacement for replication").
//
// Field: polynomial basis modulo x^8 + x^4 + x^3 + x^2 + 1 (0x11D, the
// AES-unrelated classic RS polynomial).  Multiplication uses log/exp
// tables built at compile time.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace collrep::ec {

namespace detail {

struct Gf256Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled to skip the mod-255
};

constexpr Gf256Tables make_tables() {
  Gf256Tables t{};
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.exp[static_cast<std::size_t>(i) + 255] = static_cast<std::uint8_t>(x);
    t.log[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  t.exp[510] = t.exp[0];
  t.exp[511] = t.exp[1];
  return t;
}

inline constexpr Gf256Tables kTables = make_tables();

}  // namespace detail

constexpr std::uint8_t gf_add(std::uint8_t a, std::uint8_t b) noexcept {
  return a ^ b;  // characteristic 2: addition == subtraction == XOR
}

constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  return detail::kTables.exp[static_cast<std::size_t>(
      detail::kTables.log[a] + detail::kTables.log[b])];
}

constexpr std::uint8_t gf_inv(std::uint8_t a) noexcept {
  // inv(0) is undefined; callers guard.  a^-1 = exp(255 - log(a)).
  return detail::kTables.exp[static_cast<std::size_t>(
      255 - detail::kTables.log[a])];
}

constexpr std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0) return 0;
  return gf_mul(a, gf_inv(b));
}

constexpr std::uint8_t gf_pow(std::uint8_t a, unsigned e) noexcept {
  std::uint8_t result = 1;
  while (e > 0) {
    if (e & 1u) result = gf_mul(result, a);
    a = gf_mul(a, a);
    e >>= 1;
  }
  return result;
}

// out[i] ^= coeff * in[i] — the hot loop of encoding and decoding.
// Dispatched through src/kernels (AVX2/SSSE3 split-nibble tables when the
// CPU has them, scalar table fallback otherwise).
void gf_mul_add(std::span<std::uint8_t> out, std::span<const std::uint8_t> in,
                std::uint8_t coeff) noexcept;

// out[i] = coeff * in[i] — overwrite form (first row of an encode
// accumulation, saving the zero-fill + XOR pass).  Same dispatch.
void gf_mul(std::span<std::uint8_t> out, std::span<const std::uint8_t> in,
            std::uint8_t coeff) noexcept;

}  // namespace collrep::ec
