// Checker: runtime verification of collective / RMA / point-to-point
// semantics for the threaded simmpi runtime (the concrete
// simmpi::CheckHook implementation).
//
// Four independent checks, all driven by the hooks simmpi calls on the
// rank threads themselves:
//
//  1. Collective matching.  Every collective entry carries a fingerprint
//     (operation, root, payload type hash, fence flags) plus a per-rank
//     sequence number that advances identically on every rank of an SPMD
//     program.  The first rank to reach sequence s deposits its
//     fingerprint; every later arrival is compared against the deposit,
//     and a divergent rank is reported (and, in abort mode, killed) with
//     both call sites — before the mismatched collective can deadlock the
//     messaging layer or silently mis-combine payloads.
//
//  2. RMA epoch discipline.  win_create opens a window's first access
//     epoch; a fence carrying simmpi::kFenceNoSucceed closes it (a plain
//     fence rolls straight into the next epoch).  A put with no open
//     access epoch is an epoch violation.  Within an epoch, puts into the
//     same target rank are interval-tracked: byte ranges that overlap a
//     put from a *different* origin rank in the same epoch are a semantic
//     data race (last-writer-wins nondeterminism in real MPI) and are
//     flagged with both origins and call sites.
//
//  3. Lockstep watchdog.  A monitor thread observes a heartbeat that
//     every hook bumps; if no rank makes progress for watchdog_s wall
//     seconds, the watchdog aborts the run (unblocking every blocked
//     rank) and converts the would-be deadlock into a per-rank report of
//     the last collective each rank entered or completed.
//
//  4. Finalize leak check.  Per-(src, dst, tag) send/recv accounting;
//     when a run ends cleanly with unreceived messages still queued, the
//     leak is reported with the offending channels.
//
// Violations are recorded in a log readable after the run; in abort mode
// (the default) the detecting rank additionally throws ViolationError,
// which aborts the run and is rethrown from Runtime::run().  With a
// Telemetry attached, verdicts are published as "check.*" metrics.
//
// Cost model: a run with no checker attached pays one untaken branch per
// instrumentation site.  An attached checker takes one mutex per
// collective entry/exit and per put, so it belongs in tests, CI, and
// debug runs, not in benchmark timings.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "simmpi/check_hook.hpp"

namespace collrep::obs {
class Telemetry;
}  // namespace collrep::obs

namespace collrep::check {

enum class ViolationKind : std::uint8_t {
  kCollectiveMismatch = 0,  // divergent fingerprint at the same sequence
  kEpochViolation,          // put with no open access epoch
  kOverlappingPut,          // same-epoch overlapping puts, different origins
  kMessageLeak,             // unreceived point-to-point messages at finalize
  kStuckRanks,              // watchdog: no progress for watchdog_s seconds
};
inline constexpr std::size_t kViolationKindCount = 5;

[[nodiscard]] const char* to_string(ViolationKind k) noexcept;

// One detected semantic violation.  `rank` is the detecting/divergent
// rank, `other_rank` the peer it diverged from or raced with (-1 when
// there is no single peer, e.g. leaks and stuck reports).  `site` /
// `other_site` are "file:line (function)" strings; `detail` is the full
// human-readable diagnosis (for stuck reports, the per-rank progress
// table).
struct Violation {
  ViolationKind kind = ViolationKind::kCollectiveMismatch;
  int rank = -1;
  int other_rank = -1;
  std::uint64_t seq = 0;  // collective sequence number or window epoch
  std::string site;
  std::string other_site;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

// Thrown on the detecting rank's thread (abort mode) or from
// Runtime::run() itself (leaks, stuck reports); carries the violation.
class ViolationError : public std::runtime_error {
 public:
  explicit ViolationError(Violation v)
      : std::runtime_error("check: " + v.to_string()),
        violation_(std::move(v)) {}

  [[nodiscard]] const Violation& violation() const noexcept {
    return violation_;
  }

 private:
  Violation violation_;
};

struct CheckerConfig {
  // Throw ViolationError on the detecting rank (killing the run) as soon
  // as a violation is found.  When false, violations are only recorded —
  // useful for collecting several per run — but note that a genuinely
  // mismatched collective will then proceed into the messaging layer and
  // usually hang until the watchdog trips.
  bool abort_on_violation = true;
  // Wall-clock seconds without any checker event (across all ranks)
  // before the watchdog declares the run stuck.  0 disables the
  // watchdog.  This is real time, not simulated time: a rank legitimately
  // computing for longer than this without communicating will
  // false-positive, so keep it generous.
  double watchdog_s = 30.0;
  // Recording stops after this many violations (detection continues).
  std::size_t max_violations = 64;
};

class Checker final : public simmpi::CheckHook {
 public:
  explicit Checker(CheckerConfig config = {});
  ~Checker() override;

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  // Optional observability: violations and per-run check counts are
  // published into telemetry->metrics() under "check.*".
  void attach(obs::Telemetry* telemetry) noexcept { telemetry_ = telemetry; }

  // Snapshot of the violation log (accumulates across runs until clear()).
  [[nodiscard]] std::vector<Violation> violations() const;
  [[nodiscard]] std::size_t violation_count() const;
  void clear();

  // Work done over this checker's lifetime, for "did it actually look"
  // assertions and the check.* metrics.
  [[nodiscard]] std::uint64_t collectives_checked() const noexcept {
    return collectives_checked_.load();
  }
  [[nodiscard]] std::uint64_t puts_checked() const noexcept {
    return puts_checked_.load();
  }

  // -- simmpi::CheckHook ----------------------------------------------------
  void run_begin(int nranks, std::function<void()> abort_run) override;
  std::exception_ptr run_end(bool aborted) override;
  void on_collective(int rank, const simmpi::CollFingerprint& fp,
                     simmpi::CallSite site) override;
  void on_collective_done(int rank) noexcept override;
  void on_send(int rank, int dst, int tag, std::size_t bytes) override;
  void on_recv(int rank, int src, int tag, std::size_t bytes) override;
  void on_win_create(int rank, int win, std::size_t bytes) override;
  void on_put(int rank, int win, int target, std::size_t offset,
              std::size_t bytes, simmpi::CallSite site) override;
  void on_fence(int rank, int win, unsigned flags) override;
  void on_win_free(int rank, int win) override;
  // Failure containment: a dead rank leaves the heartbeat/lockstep set (so
  // survivors are never reported as stuck on a corpse), and a shrink
  // realigns all cross-rank state over the survivors.
  void on_rank_dead(int rank) override;
  void on_shrink(const std::vector<int>& alive_world) override;

 private:
  // What one rank last did, for the watchdog's stuck report.  Guarded by
  // coll_mu_ (written by the owning rank, read by the watchdog thread).
  struct RankProgress {
    simmpi::CollOp op = simmpi::CollOp::kBarrier;
    std::uint64_t seq = 0;
    std::string site;
    int depth = 0;  // >0: inside a collective (nested ones count)
    bool any = false;
    bool dead = false;  // contained fail-stop failure; exempt from lockstep
  };

  // First-arrival deposit for one collective sequence number.
  struct CollSlot {
    simmpi::CollFingerprint fp;
    int rank = -1;
    std::string site;
    int arrived = 0;
  };

  struct PutRecord {
    std::size_t end = 0;  // one past the last byte written
    int rank = -1;
    std::string site;
  };

  struct WinCheck {
    int freed = 0;
    // Per-origin-rank epoch state.  Fences are collective (the
    // fingerprint check enforces matching flags), so every rank's view
    // of "which epoch am I in / is it open" advances in lockstep; keeping
    // it per rank avoids any cross-rank ordering requirement on the
    // post-sync on_fence calls.
    std::vector<std::uint64_t> rank_epoch;
    std::vector<std::uint8_t> epoch_open;
    // epoch -> target rank -> (offset -> put record).  Epoch-keyed so a
    // rank already in epoch e+1 never collides with a peer's epoch-e
    // intervals that have not been garbage-collected yet.
    std::map<std::uint64_t, std::map<int, std::map<std::size_t, PutRecord>>>
        epochs;
  };

  void beat() noexcept { heartbeat_.fetch_add(1, std::memory_order_relaxed); }
  // Records (and publishes) `v`; throws ViolationError on the calling
  // rank when abort mode is on and `may_throw`.
  void report(Violation v, bool may_throw);
  [[nodiscard]] std::string stuck_report();
  void watchdog_main(const std::function<void()>& abort_run);
  void stop_watchdog();

  CheckerConfig config_;
  obs::Telemetry* telemetry_ = nullptr;
  int nranks_ = 0;
  // Containment-mode membership mirror: collectives/win-frees complete
  // once every *live* rank arrived, and dead ranks' channels are exempt
  // from the finalize leak audit.  Atomics because the three check
  // families read them under different mutexes.
  std::atomic<int> live_{0};
  std::unique_ptr<std::atomic<std::uint8_t>[]> dead_;

  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<std::uint64_t> collectives_checked_{0};
  std::atomic<std::uint64_t> puts_checked_{0};
  std::atomic<std::uint64_t> msgs_tracked_{0};
  // Lifetime-counter values at run_begin, so run_end can publish per-run
  // deltas into the metrics registry.
  std::uint64_t run_base_collectives_ = 0;
  std::uint64_t run_base_puts_ = 0;
  std::uint64_t run_base_msgs_ = 0;

  // Collective cross-check + per-rank progress (watchdog report).
  std::mutex coll_mu_;
  std::vector<std::uint64_t> rank_seq_;
  std::vector<RankProgress> progress_;
  std::unordered_map<std::uint64_t, CollSlot> slots_;

  // Windows: epoch discipline + overlap tracking.
  std::mutex win_mu_;
  std::unordered_map<int, WinCheck> wins_;

  // Point-to-point accounting: key(src, dst) x tag -> in-flight count.
  std::mutex msg_mu_;
  std::map<std::tuple<int, int, int>, std::uint64_t> in_flight_;

  // Violation log.
  mutable std::mutex viol_mu_;
  std::vector<Violation> violations_;

  // Watchdog.
  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
  bool wd_fired_ = false;
  Violation wd_violation_;
  std::thread watchdog_;
};

}  // namespace collrep::check
