#include "check/checker.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/telemetry.hpp"

namespace collrep::check {

namespace {

// "file.cpp:123 (function)" — basename only; full paths differ between
// build trees and add nothing to a diagnosis.
std::string fmt_site(const simmpi::CallSite& site) {
  const char* file = site.file != nullptr ? site.file : "";
  if (const char* slash = std::strrchr(file, '/')) file = slash + 1;
  std::string out = file;
  out += ':';
  out += std::to_string(site.line);
  if (site.function != nullptr && site.function[0] != '\0') {
    out += " (";
    out += site.function;
    out += ')';
  }
  return out;
}

std::string fmt_fingerprint(const simmpi::CollFingerprint& fp) {
  char buf[64];
  std::string out = simmpi::to_string(fp.op);
  out += "(root=";
  out += std::to_string(fp.root);
  std::snprintf(buf, sizeof buf, ", type=%" PRIx64, fp.type_hash);
  out += buf;
  if (fp.flags != 0) {
    out += ", flags=";
    out += std::to_string(fp.flags);
  }
  out += ')';
  return out;
}

std::string fmt_range(std::size_t begin, std::size_t end) {
  // Built by append, not operator+ chaining: GCC 12's -Wrestrict
  // false-positives on the temporary chain (PR105651).
  std::string out = "[";
  out += std::to_string(begin);
  out += ", ";
  out += std::to_string(end);
  out += ')';
  return out;
}

}  // namespace

const char* to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kCollectiveMismatch:
      return "collective_mismatch";
    case ViolationKind::kEpochViolation:
      return "epoch_violation";
    case ViolationKind::kOverlappingPut:
      return "overlapping_put";
    case ViolationKind::kMessageLeak:
      return "message_leak";
    case ViolationKind::kStuckRanks:
      return "stuck_ranks";
  }
  return "unknown";
}

std::string Violation::to_string() const {
  std::string out = check::to_string(kind);
  out += ": ";
  out += detail;
  return out;
}

Checker::Checker(CheckerConfig config) : config_(config) {}

Checker::~Checker() { stop_watchdog(); }

std::vector<Violation> Checker::violations() const {
  std::scoped_lock lk(viol_mu_);
  return violations_;
}

std::size_t Checker::violation_count() const {
  std::scoped_lock lk(viol_mu_);
  return violations_.size();
}

void Checker::clear() {
  std::scoped_lock lk(viol_mu_);
  violations_.clear();
}

void Checker::report(Violation v, bool may_throw) {
  {
    std::scoped_lock lk(viol_mu_);
    if (violations_.size() < config_.max_violations) violations_.push_back(v);
  }
  if (telemetry_ != nullptr) {
    auto& m = telemetry_->metrics();
    m.add("check.violations");
    m.add(std::string("check.violations.") + check::to_string(v.kind));
  }
  if (may_throw && config_.abort_on_violation) {
    throw ViolationError(std::move(v));
  }
}

// -- run lifecycle ----------------------------------------------------------

void Checker::run_begin(int nranks, std::function<void()> abort_run) {
  stop_watchdog();  // defensive: a previous run must already have ended
  // nranks_ is written once here, before any rank thread exists, and is
  // immutable for the rest of the run.  collcheck:allow(CC-RACE-UNGUARDED)
  nranks_ = nranks;
  live_.store(nranks);
  dead_ = std::make_unique<std::atomic<std::uint8_t>[]>(
      static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    dead_[static_cast<std::size_t>(r)].store(0);
  }
  {
    std::scoped_lock lk(coll_mu_);
    rank_seq_.assign(static_cast<std::size_t>(nranks), 0);
    progress_.assign(static_cast<std::size_t>(nranks), RankProgress{});
    slots_.clear();
  }
  {
    std::scoped_lock lk(win_mu_);
    wins_.clear();
  }
  {
    std::scoped_lock lk(msg_mu_);
    in_flight_.clear();
  }
  {
    std::scoped_lock lk(wd_mu_);
    wd_stop_ = false;
    wd_fired_ = false;
    wd_violation_ = Violation{};
  }
  run_base_collectives_ = collectives_checked_.load();
  run_base_puts_ = puts_checked_.load();
  run_base_msgs_ = msgs_tracked_.load();
  if (config_.watchdog_s > 0.0) {
    watchdog_ = std::thread(
        [this, abort = std::move(abort_run)] { watchdog_main(abort); });
  }
}

std::exception_ptr Checker::run_end(bool aborted) {
  stop_watchdog();
  if (telemetry_ != nullptr) {
    auto& m = telemetry_->metrics();
    m.add("check.runs");
    m.add("check.collectives_checked",
          collectives_checked_.load() - run_base_collectives_);
    m.add("check.puts_checked", puts_checked_.load() - run_base_puts_);
    m.add("check.messages_tracked", msgs_tracked_.load() - run_base_msgs_);
  }

  bool fired = false;
  Violation wd_v;
  {
    std::scoped_lock lk(wd_mu_);
    fired = wd_fired_;
    wd_v = wd_violation_;
  }
  if (fired) {
    // The watchdog aborted the run itself; without this error the run
    // would fail with "aborted without recorded cause", which is exactly
    // the undiagnosable state the watchdog exists to prevent.
    return std::make_exception_ptr(ViolationError(std::move(wd_v)));
  }
  if (aborted) return nullptr;  // leftover messages are expected, not leaks

  std::vector<std::pair<std::tuple<int, int, int>, std::uint64_t>> leaks;
  {
    std::scoped_lock lk(msg_mu_);
    for (const auto& [key, count] : in_flight_) {
      // Channels touching a dead rank are expected residue of a contained
      // failure (the runtime drained them at the shrink), not leaks.
      const auto& [src, dst, tag] = key;
      if (dead_ && (dead_[static_cast<std::size_t>(src)].load() != 0 ||
                    dead_[static_cast<std::size_t>(dst)].load() != 0)) {
        continue;
      }
      if (count > 0) leaks.emplace_back(key, count);
    }
  }
  if (leaks.empty()) return nullptr;

  std::uint64_t total = 0;
  std::string channels;
  constexpr std::size_t kMaxListed = 8;
  for (std::size_t i = 0; i < leaks.size(); ++i) {
    total += leaks[i].second;
    if (i >= kMaxListed) continue;
    const auto& [src, dst, tag] = leaks[i].first;
    if (!channels.empty()) channels += ", ";
    channels += std::to_string(src) + "->" + std::to_string(dst) +
                " tag " + std::to_string(tag) + " (" +
                std::to_string(leaks[i].second) + ")";
  }
  if (leaks.size() > kMaxListed) {
    channels += ", ... " + std::to_string(leaks.size() - kMaxListed) + " more";
  }
  Violation v;
  v.kind = ViolationKind::kMessageLeak;
  v.detail = std::to_string(total) +
             " unreceived point-to-point message(s) at finalize: " + channels;
  report(v, false);
  if (config_.abort_on_violation) {
    return std::make_exception_ptr(ViolationError(std::move(v)));
  }
  return nullptr;
}

// -- collective cross-check -------------------------------------------------

void Checker::on_collective(int rank, const simmpi::CollFingerprint& fp,
                            simmpi::CallSite site) {
  beat();
  collectives_checked_.fetch_add(1, std::memory_order_relaxed);
  Violation v;
  bool mismatch = false;
  {
    std::scoped_lock lk(coll_mu_);
    const std::uint64_t seq = rank_seq_[static_cast<std::size_t>(rank)]++;
    auto& prog = progress_[static_cast<std::size_t>(rank)];
    prog.op = fp.op;
    prog.seq = seq;
    prog.site = fmt_site(site);
    ++prog.depth;
    prog.any = true;

    auto [it, inserted] = slots_.try_emplace(seq);
    CollSlot& slot = it->second;
    if (inserted) {
      slot.fp = fp;
      slot.rank = rank;
      slot.site = prog.site;
      slot.arrived = 1;
    } else if (fp != slot.fp) {
      mismatch = true;
      v.kind = ViolationKind::kCollectiveMismatch;
      v.rank = rank;
      v.other_rank = slot.rank;
      v.seq = seq;
      v.site = prog.site;
      v.other_site = slot.site;
      v.detail = "collective #" + std::to_string(seq) + ": rank " +
                 std::to_string(rank) + " entered " + fmt_fingerprint(fp) +
                 " at " + v.site + " but rank " + std::to_string(slot.rank) +
                 " entered " + fmt_fingerprint(slot.fp) + " at " + v.other_site;
    } else if (++slot.arrived >= live_.load()) {
      // Complete once every live rank arrived (== nranks_ while nobody
      // died).  A dead rank that managed to arrive before dying can push
      // the count past the threshold one arrival early; the stragglers
      // then deposit a fresh slot that on_shrink clears — transient and
      // harmless, since erase only happens on matching fingerprints.
      slots_.erase(it);
    }
  }
  if (mismatch) report(std::move(v), true);
}

void Checker::on_collective_done(int rank) noexcept {
  beat();
  std::scoped_lock lk(coll_mu_);
  auto& prog = progress_[static_cast<std::size_t>(rank)];
  if (prog.depth > 0) --prog.depth;
}

// -- point-to-point accounting ----------------------------------------------

void Checker::on_send(int rank, int dst, int tag, std::size_t /*bytes*/) {
  beat();
  msgs_tracked_.fetch_add(1, std::memory_order_relaxed);
  std::scoped_lock lk(msg_mu_);
  ++in_flight_[{rank, dst, tag}];
}

void Checker::on_recv(int rank, int src, int tag, std::size_t /*bytes*/) {
  beat();
  std::scoped_lock lk(msg_mu_);
  const auto it = in_flight_.find({src, rank, tag});
  // The mailbox only delivers messages that were pushed (after on_send),
  // so the channel entry always exists with a positive count.
  if (it != in_flight_.end() && --it->second == 0) in_flight_.erase(it);
}

// -- one-sided windows ------------------------------------------------------

void Checker::on_win_create(int rank, int win, std::size_t /*bytes*/) {
  beat();
  std::scoped_lock lk(win_mu_);
  auto [it, inserted] = wins_.try_emplace(win);
  if (inserted) {
    it->second.rank_epoch.assign(static_cast<std::size_t>(nranks_), 0);
    // win_create opens the window's first access epoch on every rank.
    it->second.epoch_open.assign(static_cast<std::size_t>(nranks_), 1);
  }
  (void)rank;
}

void Checker::on_put(int rank, int win, int target, std::size_t offset,
                     std::size_t bytes, simmpi::CallSite site) {
  beat();
  puts_checked_.fetch_add(1, std::memory_order_relaxed);
  Violation v;
  bool found = false;
  {
    std::scoped_lock lk(win_mu_);
    const auto wit = wins_.find(win);
    if (wit == wins_.end()) return;  // freed/unknown window: put() throws
    WinCheck& w = wit->second;
    const auto r = static_cast<std::size_t>(rank);
    if (w.epoch_open[r] == 0) {
      v.kind = ViolationKind::kEpochViolation;
      v.rank = rank;
      v.seq = w.rank_epoch[r];
      v.site = fmt_site(site);
      v.detail = "rank " + std::to_string(rank) + " put " +
                 fmt_range(offset, offset + bytes) + " to rank " +
                 std::to_string(target) + " on window " + std::to_string(win) +
                 " at " + v.site +
                 " with no open access epoch (closed by a kFenceNoSucceed "
                 "fence)";
      found = true;
    } else if (bytes > 0) {
      const std::size_t end = offset + bytes;
      auto& intervals = w.epochs[w.rank_epoch[r]][target];
      // First interval that could overlap [offset, end): the predecessor
      // of upper_bound(offset), then everything starting before `end`.
      auto it = intervals.upper_bound(offset);
      if (it != intervals.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end > offset) it = prev;
      }
      for (; it != intervals.end() && it->first < end; ++it) {
        if (it->second.end <= offset || it->second.rank == rank) continue;
        v.kind = ViolationKind::kOverlappingPut;
        v.rank = rank;
        v.other_rank = it->second.rank;
        v.seq = w.rank_epoch[r];
        v.site = fmt_site(site);
        v.other_site = it->second.site;
        v.detail = "epoch " + std::to_string(w.rank_epoch[r]) + " of window " +
                   std::to_string(win) + ": rank " + std::to_string(rank) +
                   " put " + fmt_range(offset, end) + " to rank " +
                   std::to_string(target) + " at " + v.site +
                   " overlapping rank " + std::to_string(it->second.rank) +
                   "'s put " + fmt_range(it->first, it->second.end) + " from " +
                   v.other_site;
        found = true;
        break;
      }
      auto& rec = intervals[offset];
      if (rec.end < end) rec = PutRecord{end, rank, fmt_site(site)};
    }
  }
  if (found) report(std::move(v), true);
}

void Checker::on_fence(int rank, int win, unsigned flags) {
  beat();
  std::scoped_lock lk(win_mu_);
  const auto wit = wins_.find(win);
  if (wit == wins_.end()) return;
  WinCheck& w = wit->second;
  const auto r = static_cast<std::size_t>(rank);
  ++w.rank_epoch[r];
  w.epoch_open[r] = (flags & simmpi::kFenceNoSucceed) != 0 ? 0 : 1;
  // Epochs every rank has left can no longer race with anything.
  const std::uint64_t min_epoch =
      *std::min_element(w.rank_epoch.begin(), w.rank_epoch.end());
  w.epochs.erase(w.epochs.begin(), w.epochs.lower_bound(min_epoch));
}

void Checker::on_win_free(int /*rank*/, int win) {
  beat();
  std::scoped_lock lk(win_mu_);
  const auto wit = wins_.find(win);
  if (wit != wins_.end() && ++wit->second.freed >= live_.load()) {
    wins_.erase(wit);
  }
}

// -- failure containment ------------------------------------------------------

void Checker::on_rank_dead(int rank) {
  beat();
  dead_[static_cast<std::size_t>(rank)].store(1);
  const int live = live_.fetch_sub(1) - 1;
  {
    std::scoped_lock lk(coll_mu_);
    progress_[static_cast<std::size_t>(rank)].dead = true;
    // Collectives that were only waiting on the dead rank are complete
    // among the survivors now.
    for (auto it = slots_.begin(); it != slots_.end();) {
      it = it->second.arrived >= live ? slots_.erase(it) : std::next(it);
    }
  }
  {
    std::scoped_lock lk(win_mu_);
    for (auto it = wins_.begin(); it != wins_.end();) {
      it = it->second.freed >= live ? wins_.erase(it) : std::next(it);
    }
  }
}

void Checker::on_shrink(const std::vector<int>& alive_world) {
  beat();
  // Runs with every survivor parked in the shrink rendezvous, so this is
  // the one place cross-rank state can be rebuilt exclusively.
  {
    std::scoped_lock lk(coll_mu_);
    // Survivors diverged while the failure unwound (some entered one more
    // collective than others before throwing); restart them from a common
    // sequence number so post-shrink fingerprints line up again.
    std::uint64_t max_seq = 0;
    for (int r : alive_world) {
      max_seq = std::max(max_seq, rank_seq_[static_cast<std::size_t>(r)]);
    }
    for (int r : alive_world) {
      rank_seq_[static_cast<std::size_t>(r)] = max_seq;
      progress_[static_cast<std::size_t>(r)].depth = 0;
    }
    slots_.clear();
  }
  {
    std::scoped_lock lk(win_mu_);
    wins_.clear();  // old-world windows died with their epochs
  }
  {
    std::scoped_lock lk(msg_mu_);
    in_flight_.clear();  // the runtime drained every mailbox
  }
}

// -- watchdog ---------------------------------------------------------------

std::string Checker::stuck_report() {
  std::scoped_lock lk(coll_mu_);
  std::string out;
  // nranks_ is set once in run_begin before the rank threads start; any
  // lock (here coll_mu_) suffices.  collcheck:allow(CC-RACE-UNGUARDED)
  for (int r = 0; r < nranks_; ++r) {
    if (!out.empty()) out += "; ";
    const auto& prog = progress_[static_cast<std::size_t>(r)];
    out += "rank " + std::to_string(r);
    if (prog.dead) {
      out += ": dead (contained failure)";
    } else if (!prog.any) {
      out += ": no collective activity";
    } else {
      out += prog.depth > 0 ? ": inside " : ": last completed ";
      out += simmpi::to_string(prog.op);
      out += " #" + std::to_string(prog.seq) + " at " + prog.site;
    }
  }
  return out;
}

void Checker::watchdog_main(const std::function<void()>& abort_run) {
  using clock = std::chrono::steady_clock;
  const auto timeout = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(config_.watchdog_s));
  const auto poll = std::clamp(timeout / 8, clock::duration(std::chrono::milliseconds(10)),
                               clock::duration(std::chrono::seconds(1)));
  std::uint64_t last = heartbeat_.load();
  auto deadline = clock::now() + timeout;

  std::unique_lock lk(wd_mu_);
  while (!wd_stop_) {
    // The watchdog deliberately lives on its own OS thread so it can
    // observe hung ranks; it never runs in rank context.
    // collcheck: fiber-safe
    wd_cv_.wait_for(lk, poll);
    if (wd_stop_) return;
    const std::uint64_t hb = heartbeat_.load();
    if (hb != last) {
      last = hb;
      deadline = clock::now() + timeout;
      continue;
    }
    if (clock::now() < deadline) continue;

    lk.unlock();
    Violation v;
    v.kind = ViolationKind::kStuckRanks;
    v.detail = "no progress on any rank for " +
               std::to_string(config_.watchdog_s) + "s: " + stuck_report();
    report(v, false);
    abort_run();
    lk.lock();
    wd_fired_ = true;
    wd_violation_ = std::move(v);
    return;
  }
}

void Checker::stop_watchdog() {
  {
    std::scoped_lock lk(wd_mu_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

}  // namespace collrep::check
