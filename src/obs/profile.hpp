// Causal profile: cross-rank happens-before DAG + critical-path extraction.
//
// The per-rank trace rings (obs/trace.hpp) carry three edge sources that
// stitch them into one DAG per run:
//   - program order: each rank's events in recording order;
//   - p2p flows: a kSend and the kRecv carrying the same flow id (arg c);
//   - rendezvous: all ranks' kSyncBegin/kSyncEnd pairs sharing a sync
//     generation (arg c) — barrier and window-fence releases.
// Walking backward from the end of a "dump" wrapper span and always taking
// the *binding* predecessor (the one that determined the event's time)
// yields the dump's sim-time critical path as a chain of segments that
// telescope exactly: their durations sum to the dump latency in integer
// nanosecond ticks, ±0.  See DESIGN.md §11 for the construction rules.
//
// Everything here is offline analysis: it consumes either a live Telemetry
// (collect_events) or a parsed trace file (tools/collprof/trace_load) and
// never touches the hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace collrep::obs {

class Telemetry;
enum class EventKind : std::uint8_t;

// Analysis-side view of one trace event.  Timestamps are integer simulated
// nanoseconds ("ticks") so path arithmetic is exact; both producers go
// through to_ticks() below.
struct ProfEvent {
  EventKind kind{};
  int rank = 0;
  std::uint32_t run = 0;
  std::int64_t ts_ns = 0;
  std::string name;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

// Simulated seconds -> integer nanosecond ticks, routed through the exact
// "%.3f microseconds" rendering Telemetry::trace_json() uses, so a profile
// built from a live Telemetry and one rebuilt from the exported trace file
// agree bit-for-bit.
[[nodiscard]] std::int64_t to_ticks(double seconds);

// All ranks' trace events (recording order per rank, ranks in order).
[[nodiscard]] std::vector<ProfEvent> collect_events(const Telemetry& tel);

// What a critical-path segment's time was spent on.
enum class SegmentKind : std::uint8_t {
  kCompute = 0,   // the owning rank was executing between two of its events
  kCommWait,      // receiver stalled on an in-flight p2p message
  kBarrierWait,   // rendezvous release beyond the last entrant (barrier)
  kFenceWait,     // window-epoch bulk transfer charged at the fence
};
[[nodiscard]] const char* to_string(SegmentKind k) noexcept;

struct CriticalSegment {
  int rank = 0;  // rank the segment's time is attributed to
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  std::string phase;  // dump phase active on `rank` at t0
  SegmentKind kind = SegmentKind::kCompute;
};

struct PhaseProfile {
  std::string phase;
  std::int64_t critical_ns = 0;  // total critical-path time in this phase
  std::int64_t compute_ns = 0;
  std::int64_t comm_ns = 0;
  std::int64_t barrier_ns = 0;
  std::int64_t fence_ns = 0;
  // Per-rank work time (kPhaseBegin -> pre-barrier kPhaseEnd): the skew the
  // closing barrier hides from DumpStats.
  std::int64_t rank_p50_ns = 0;
  std::int64_t rank_p99_ns = 0;
  std::int64_t rank_max_ns = 0;
  int straggler_rank = -1;
};

struct RankShare {
  int rank = 0;
  std::int64_t critical_ns = 0;
};

struct DumpProfile {
  std::uint32_t run = 0;
  int index = 0;  // dump ordinal within the run
  int nranks = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::int64_t total_ns = 0;                // == end - start == sum(segments)
  std::vector<PhaseProfile> phases;         // pipeline order
  std::vector<RankShare> rank_critical;     // descending share of the path
  std::vector<CriticalSegment> segments;    // chronological
};

struct Profile {
  std::vector<DumpProfile> dumps;
  std::uint64_t dropped_events = 0;   // ring overflow (DAG incomplete if != 0)
  std::uint64_t unmatched_flows = 0;  // kSend/kRecv without the partner event
  std::uint64_t unmatched_syncs = 0;  // generations missing some rank
};

[[nodiscard]] Profile build_profile(const std::vector<ProfEvent>& events,
                                    std::uint64_t dropped_events = 0);

// Deterministic machine-readable profile (schema "collprof-profile-v1").
[[nodiscard]] std::string profile_json(const Profile& p);

// Human-readable per-dump critical-path breakdown.
[[nodiscard]] std::string profile_report(const Profile& p);

// The original events re-serialized as Chrome trace JSON, augmented with
// flow arrows ("s"/"f" pairs, cat "flow") for every matched p2p message and
// "X" slices (cat "critical") tracing the critical path of each dump.
[[nodiscard]] std::string augmented_trace_json(
    const std::vector<ProfEvent>& events, const Profile& p);

}  // namespace collrep::obs
