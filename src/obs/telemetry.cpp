#include "obs/telemetry.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "obs/comm_stats.hpp"
#include "obs/trace.hpp"

namespace collrep::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// Simulated seconds -> trace microseconds with fixed precision, so equal
// clocks always serialize to equal strings (bit-reproducible traces).
void append_ts(std::string& out, double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  out += buf;
}

}  // namespace

Telemetry::Telemetry(TelemetryConfig config) : config_(config) {}

void Telemetry::begin_run(int nranks) {
  ++run_count_;
  while (ranks_.size() < static_cast<std::size_t>(nranks)) {
    ranks_.push_back(std::make_unique<RankTelemetry>(config_.trace_capacity));
  }
  for (auto& rt : ranks_) {
    rt->metrics = &metrics_;
    rt->run = run_count_;
  }
}

void Telemetry::end_run() {}

CommStats Telemetry::rollup() const {
  CommStats total;
  for (const auto& rt : ranks_) total.merge_from(rt->comm);
  return total;
}

std::uint64_t Telemetry::dropped_events() const {
  std::uint64_t dropped = 0;
  for (const auto& rt : ranks_) dropped += rt->trace.dropped();
  return dropped;
}

void Telemetry::publish_rollup() {
  const CommStats c = rollup();
  metrics_.set("comm.sent_messages", static_cast<double>(c.sent_messages));
  metrics_.set("comm.sent_bytes", static_cast<double>(c.sent_bytes));
  metrics_.set("comm.recv_messages", static_cast<double>(c.recv_messages));
  metrics_.set("comm.recv_bytes", static_cast<double>(c.recv_bytes));
  metrics_.set("comm.intra_node_sent_bytes",
               static_cast<double>(c.intra_node_sent_bytes));
  metrics_.set("comm.inter_node_sent_bytes",
               static_cast<double>(c.inter_node_sent_bytes));
  metrics_.set("comm.barriers", static_cast<double>(c.barriers));
  metrics_.set("comm.windows_created",
               static_cast<double>(c.windows_created));
  metrics_.set("comm.window_epochs", static_cast<double>(c.window_epochs));
  metrics_.set("comm.puts", static_cast<double>(c.puts));
  metrics_.set("comm.put_bytes", static_cast<double>(c.put_bytes));
  metrics_.set("comm.intra_node_put_bytes",
               static_cast<double>(c.intra_node_put_bytes));
  metrics_.set("comm.inter_node_put_bytes",
               static_cast<double>(c.inter_node_put_bytes));
  for (std::size_t i = 0; i < kCollectiveKindCount; ++i) {
    const auto kind = static_cast<CollectiveKind>(i);
    std::string base = "comm.collective.";
    base += to_string(kind);
    metrics_.set(base + ".calls",
                 static_cast<double>(c.collective_calls[i]));
    metrics_.set(base + ".rounds",
                 static_cast<double>(c.collective_rounds[i]));
  }
  metrics_.set("trace.dropped_events", static_cast<double>(dropped_events()));
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (const std::uint64_t d = ranks_[r]->trace.dropped(); d != 0) {
      metrics_.set("trace.rank" + std::to_string(r) + ".dropped_events",
                   static_cast<double>(d));
    }
  }
}

std::string Telemetry::trace_json() const {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  std::uint64_t dropped = 0;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    dropped += ranks_[r]->trace.dropped();
    for (const TraceEvent& ev : ranks_[r]->trace.snapshot()) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"name\": \"";
      out += ev.name;  // static names, no escaping needed
      out += "\", \"cat\": \"";
      out += category_of(ev.kind);
      out += "\", \"ph\": \"";
      out += phase_of(ev.kind);
      out += "\", \"ts\": ";
      append_ts(out, ev.ts);
      out += ", \"pid\": ";
      append_u64(out, ev.run);
      out += ", \"tid\": ";
      append_u64(out, r);
      const char* ph = phase_of(ev.kind);
      if (ph[0] == 'i') out += ", \"s\": \"t\"";  // thread-scoped instant
      // Args go on every phase, including "E": collprof pairs sync begin/
      // end events and send/recv instants by the causal id in "c".
      out += ", \"args\": {\"a\": ";
      append_u64(out, ev.a);
      out += ", \"b\": ";
      append_u64(out, ev.b);
      out += ", \"c\": ";
      append_u64(out, ev.c);
      out += "}}";
    }
  }
  out += "\n], \"otherData\": {\"dropped_events\": \"";
  append_u64(out, dropped);
  out += "\"}}\n";
  return out;
}

}  // namespace collrep::obs
