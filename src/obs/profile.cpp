#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace collrep::obs {

std::int64_t to_ticks(double seconds) {
  // Same rounding as trace_json()'s append_ts: fixed-precision microseconds
  // (3 decimals == nanosecond ticks), re-parsed.  Going through the string
  // guarantees tick equality between a live profile and a file round trip.
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  return std::llround(std::strtod(buf, nullptr) * 1000.0);
}

std::vector<ProfEvent> collect_events(const Telemetry& tel) {
  std::vector<ProfEvent> out;
  for (int r = 0; r < tel.rank_count(); ++r) {
    for (const TraceEvent& ev : tel.rank(r).trace.snapshot()) {
      out.push_back(ProfEvent{ev.kind, r, ev.run, to_ticks(ev.ts),
                              std::string(ev.name), ev.a, ev.b, ev.c});
    }
  }
  return out;
}

const char* to_string(SegmentKind k) noexcept {
  switch (k) {
    case SegmentKind::kCompute:
      return "compute";
    case SegmentKind::kCommWait:
      return "comm_wait";
    case SegmentKind::kBarrierWait:
      return "barrier_wait";
    case SegmentKind::kFenceWait:
      return "fence_wait";
  }
  return "unknown";
}

namespace {

// Position of one event: (rank, index into that rank's recording-order list).
struct EvRef {
  int rank = -1;
  std::size_t pos = 0;
};

struct SyncGroup {
  std::vector<EvRef> begins;
  std::vector<EvRef> ends;
};

// One run's events re-indexed for DAG traversal.
struct RunData {
  std::vector<std::vector<std::size_t>> by_rank;  // -> index into `events`
  std::unordered_map<std::uint64_t, EvRef> sends;
  std::unordered_map<std::uint64_t, EvRef> recvs;
  std::unordered_map<std::uint64_t, SyncGroup> syncs;
};

struct PhaseMark {
  std::string name;
  std::int64_t b_ns = 0;
};

// Per-rank view of one dump instance.
struct RankDump {
  std::size_t begin_pos = 0;  // position of the "dump" kPhaseBegin
  std::size_t end_pos = 0;    // position of the "dump" kPhaseEnd
  std::vector<PhaseMark> marks;
  std::map<std::string, std::int64_t> work_ns;  // phase -> B..E duration
};

const std::string& phase_at(const std::vector<PhaseMark>& marks,
                            std::int64_t t) {
  static const std::string kNone = "dump";
  if (marks.empty()) return kNone;
  std::size_t best = 0;
  for (std::size_t i = 0; i < marks.size(); ++i) {
    if (marks[i].b_ns <= t) best = i;
  }
  return marks[best].name;
}

std::int64_t percentile(std::vector<std::int64_t> sorted, double q) {
  if (sorted.empty()) return 0;
  const auto n = static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

// Ticks -> seconds with 9 decimals: exact for any |ns| < 2^53 / 1e9 s.
void append_seconds(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9f", static_cast<double>(ns) * 1e-9);
  out += buf;
}

// Ticks -> trace microseconds, same 3-decimal rendering as trace_json().
void append_ts_us(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1000.0);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) >= 0x20) {
      out += ch;
    }  // control characters never appear in event names; drop defensively
  }
}

}  // namespace

Profile build_profile(const std::vector<ProfEvent>& events,
                      std::uint64_t dropped_events) {
  Profile prof;
  prof.dropped_events = dropped_events;

  // ---- index the events per run ------------------------------------------
  std::map<std::uint32_t, RunData> runs;  // ordered: dumps come out run-sorted
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ProfEvent& e = events[i];
    RunData& rd = runs[e.run];
    if (rd.by_rank.size() <= static_cast<std::size_t>(e.rank)) {
      rd.by_rank.resize(static_cast<std::size_t>(e.rank) + 1);
    }
    auto& lane = rd.by_rank[static_cast<std::size_t>(e.rank)];
    const EvRef ref{e.rank, lane.size()};
    lane.push_back(i);
    switch (e.kind) {
      case EventKind::kSend:
        rd.sends.emplace(e.c, ref);
        break;
      case EventKind::kRecv:
        rd.recvs.emplace(e.c, ref);
        break;
      case EventKind::kSyncBegin:
        rd.syncs[e.c].begins.push_back(ref);
        break;
      case EventKind::kSyncEnd:
        rd.syncs[e.c].ends.push_back(ref);
        break;
      default:
        break;
    }
  }

  for (auto& [run, rd] : runs) {
    const auto ev_at = [&](const EvRef& r) -> const ProfEvent& {
      return events[rd.by_rank[static_cast<std::size_t>(r.rank)][r.pos]];
    };
    const int nranks = static_cast<int>(rd.by_rank.size());

    for (const auto& [flow, ref] : rd.sends) {
      if (rd.recvs.find(flow) == rd.recvs.end()) ++prof.unmatched_flows;
    }
    for (const auto& [flow, ref] : rd.recvs) {
      if (rd.sends.find(flow) == rd.sends.end()) ++prof.unmatched_flows;
    }
    for (const auto& [gen, group] : rd.syncs) {
      if (group.begins.size() != static_cast<std::size_t>(nranks) ||
          group.ends.size() != static_cast<std::size_t>(nranks)) {
        ++prof.unmatched_syncs;
      }
    }

    // ---- find the dump windows on every rank -----------------------------
    std::vector<std::vector<RankDump>> dumps_by_rank(
        static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      const auto& lane = rd.by_rank[static_cast<std::size_t>(r)];
      std::vector<RankDump>& windows = dumps_by_rank[static_cast<std::size_t>(r)];
      std::int64_t open_pos = -1;
      for (std::size_t p = 0; p < lane.size(); ++p) {
        const ProfEvent& e = events[lane[p]];
        if (e.kind == EventKind::kPhaseBegin && e.name == "dump") {
          open_pos = static_cast<std::int64_t>(p);
        } else if (e.kind == EventKind::kPhaseEnd && e.name == "dump" &&
                   open_pos >= 0) {
          RankDump w;
          w.begin_pos = static_cast<std::size_t>(open_pos);
          w.end_pos = p;
          // Phase marks + per-phase work time inside the window.
          std::string pending;
          std::int64_t pending_b = 0;
          for (std::size_t q = w.begin_pos + 1; q < w.end_pos; ++q) {
            const ProfEvent& pe = events[lane[q]];
            if (pe.kind == EventKind::kPhaseBegin && pe.name != "dump") {
              w.marks.push_back(PhaseMark{pe.name, pe.ts_ns});
              pending = pe.name;
              pending_b = pe.ts_ns;
            } else if (pe.kind == EventKind::kPhaseEnd &&
                       pe.name == pending && !pending.empty()) {
              w.work_ns[pending] = pe.ts_ns - pending_b;
              pending.clear();
            }
          }
          windows.push_back(std::move(w));
          open_pos = -1;
        }
      }
    }
    std::size_t min_count = 0;
    for (int r = 0; r < nranks; ++r) {
      const std::size_t c = dumps_by_rank[static_cast<std::size_t>(r)].size();
      min_count = (r == 0) ? c : std::min(min_count, c);
    }
    if (min_count == 0) continue;

    // The ring drops oldest events, so ranks agree on the *last* min_count
    // dumps; pair instances from the end.
    for (std::size_t j = 0; j < min_count; ++j) {
      const auto window_of = [&](int r) -> const RankDump& {
        const auto& v = dumps_by_rank[static_cast<std::size_t>(r)];
        return v[v.size() - min_count + j];
      };
      const RankDump& w0 = window_of(0);
      const auto& lane0 = rd.by_rank[0];
      const std::int64_t start = events[lane0[w0.begin_pos]].ts_ns;
      const std::int64_t end = events[lane0[w0.end_pos]].ts_ns;

      DumpProfile dp;
      dp.run = run;
      dp.index = static_cast<int>(dumps_by_rank[0].size() - min_count + j);
      dp.nranks = nranks;
      dp.start_ns = start;
      dp.end_ns = end;
      dp.total_ns = end - start;

      // ---- backward walk: binding predecessor at every step --------------
      std::vector<CriticalSegment> segs;
      EvRef cur{0, w0.end_pos};
      // Every step either moves backward within a rank or crosses to the
      // event that released the current one; bound the walk defensively.
      std::size_t steps_left = 2 * events.size() + 16;
      while (steps_left-- > 0) {
        const ProfEvent& e = ev_at(cur);
        if (e.ts_ns <= start) break;
        EvRef pred;
        bool have_pred = false;
        SegmentKind kind = SegmentKind::kCompute;
        int blame = cur.rank;
        if (e.kind == EventKind::kSyncEnd) {
          const auto it = rd.syncs.find(e.c);
          if (it != rd.syncs.end() && !it->second.begins.empty()) {
            // The rendezvous released at (a function of) the latest entry:
            // the straggler's kSyncBegin is the binding predecessor.
            const EvRef* best = nullptr;
            for (const EvRef& b : it->second.begins) {
              if (best == nullptr || ev_at(b).ts_ns > ev_at(*best).ts_ns ||
                  (ev_at(b).ts_ns == ev_at(*best).ts_ns &&
                   b.rank < best->rank)) {
                best = &b;
              }
            }
            pred = *best;
            have_pred = true;
            kind = (e.name == "fence") ? SegmentKind::kFenceWait
                                       : SegmentKind::kBarrierWait;
            blame = pred.rank;
          }
        } else if (e.kind == EventKind::kRecv) {
          const auto it = rd.sends.find(e.c);
          if (it != rd.sends.end()) {
            const std::int64_t prog_ts =
                cur.pos > 0 ? ev_at(EvRef{cur.rank, cur.pos - 1}).ts_ns
                            : start;
            // Sender-bound receive: the message was still in flight when
            // this rank was ready, so the edge crosses to the kSend.
            if (ev_at(it->second).ts_ns >= prog_ts) {
              pred = it->second;
              have_pred = true;
              kind = SegmentKind::kCommWait;
            }
          }
        }
        if (!have_pred) {
          if (cur.pos == 0) {
            // Ring-truncated lane: close the path out to the dump start.
            segs.push_back(CriticalSegment{
                cur.rank, start, e.ts_ns,
                phase_at(window_of(cur.rank).marks, start),
                SegmentKind::kCompute});
            break;
          }
          pred = EvRef{cur.rank, cur.pos - 1};
        }
        const std::int64_t t0 = std::max(ev_at(pred).ts_ns, start);
        if (e.ts_ns > t0) {
          segs.push_back(CriticalSegment{blame, t0, e.ts_ns,
                                         phase_at(window_of(blame).marks, t0),
                                         kind});
        }
        cur = pred;
      }
      std::reverse(segs.begin(), segs.end());

      // ---- aggregate ------------------------------------------------------
      std::vector<std::string> phase_order;
      for (const PhaseMark& m : w0.marks) phase_order.push_back(m.name);
      const auto phase_index = [&](const std::string& name) -> std::size_t {
        for (std::size_t i = 0; i < phase_order.size(); ++i) {
          if (phase_order[i] == name) return i;
        }
        phase_order.push_back(name);
        return phase_order.size() - 1;
      };
      std::vector<PhaseProfile> phases;
      std::vector<std::int64_t> rank_ns(static_cast<std::size_t>(nranks), 0);
      for (const CriticalSegment& s : segs) {
        const std::size_t pi = phase_index(s.phase);
        while (phases.size() <= pi) phases.push_back(PhaseProfile{});
        PhaseProfile& pp = phases[pi];
        const std::int64_t d = s.t1_ns - s.t0_ns;
        pp.critical_ns += d;
        switch (s.kind) {
          case SegmentKind::kCompute:
            pp.compute_ns += d;
            break;
          case SegmentKind::kCommWait:
            pp.comm_ns += d;
            break;
          case SegmentKind::kBarrierWait:
            pp.barrier_ns += d;
            break;
          case SegmentKind::kFenceWait:
            pp.fence_ns += d;
            break;
        }
        rank_ns[static_cast<std::size_t>(s.rank)] += d;
      }
      while (phases.size() < phase_order.size()) phases.push_back({});
      for (std::size_t i = 0; i < phases.size(); ++i) {
        PhaseProfile& pp = phases[i];
        pp.phase = phase_order[i];
        std::vector<std::int64_t> work;
        for (int r = 0; r < nranks; ++r) {
          const auto& wn = window_of(r).work_ns;
          const auto it = wn.find(pp.phase);
          if (it == wn.end()) continue;
          work.push_back(it->second);
          if (it->second > pp.rank_max_ns ||
              (it->second == pp.rank_max_ns && pp.straggler_rank < 0)) {
            pp.rank_max_ns = it->second;
            pp.straggler_rank = r;
          }
        }
        std::sort(work.begin(), work.end());
        pp.rank_p50_ns = percentile(work, 0.50);
        pp.rank_p99_ns = percentile(work, 0.99);
      }
      dp.phases = std::move(phases);
      for (int r = 0; r < nranks; ++r) {
        if (rank_ns[static_cast<std::size_t>(r)] > 0) {
          dp.rank_critical.push_back(
              RankShare{r, rank_ns[static_cast<std::size_t>(r)]});
        }
      }
      std::sort(dp.rank_critical.begin(), dp.rank_critical.end(),
                [](const RankShare& x, const RankShare& y) {
                  if (x.critical_ns != y.critical_ns) {
                    return x.critical_ns > y.critical_ns;
                  }
                  return x.rank < y.rank;
                });
      dp.segments = std::move(segs);
      prof.dumps.push_back(std::move(dp));
    }
  }
  return prof;
}

std::string profile_json(const Profile& p) {
  std::string out = "{\"schema\": \"collprof-profile-v1\"";
  out += ", \"dropped_events\": ";
  append_u64(out, p.dropped_events);
  out += ", \"unmatched_flows\": ";
  append_u64(out, p.unmatched_flows);
  out += ", \"unmatched_syncs\": ";
  append_u64(out, p.unmatched_syncs);
  out += ", \"dumps\": [";
  for (std::size_t d = 0; d < p.dumps.size(); ++d) {
    const DumpProfile& dp = p.dumps[d];
    out += d == 0 ? "\n" : ",\n";
    out += "{\"run\": ";
    append_u64(out, dp.run);
    out += ", \"index\": ";
    append_i64(out, dp.index);
    out += ", \"nranks\": ";
    append_i64(out, dp.nranks);
    out += ", \"total_s\": ";
    append_seconds(out, dp.total_ns);
    out += ", \"total_ns\": ";
    append_i64(out, dp.total_ns);
    out += ",\n \"phases\": [";
    for (std::size_t i = 0; i < dp.phases.size(); ++i) {
      const PhaseProfile& pp = dp.phases[i];
      out += i == 0 ? "\n" : ",\n";
      out += "  {\"phase\": \"";
      append_escaped(out, pp.phase);
      out += "\", \"critical_s\": ";
      append_seconds(out, pp.critical_ns);
      out += ", \"critical_ns\": ";
      append_i64(out, pp.critical_ns);
      out += ", \"pct\": ";
      char pct[24];
      std::snprintf(pct, sizeof pct, "%.2f",
                    dp.total_ns > 0 ? 100.0 * static_cast<double>(pp.critical_ns) /
                                          static_cast<double>(dp.total_ns)
                                    : 0.0);
      out += pct;
      out += ", \"compute_s\": ";
      append_seconds(out, pp.compute_ns);
      out += ", \"comm_wait_s\": ";
      append_seconds(out, pp.comm_ns);
      out += ", \"barrier_wait_s\": ";
      append_seconds(out, pp.barrier_ns);
      out += ", \"fence_wait_s\": ";
      append_seconds(out, pp.fence_ns);
      out += ", \"rank_p50_s\": ";
      append_seconds(out, pp.rank_p50_ns);
      out += ", \"rank_p99_s\": ";
      append_seconds(out, pp.rank_p99_ns);
      out += ", \"rank_max_s\": ";
      append_seconds(out, pp.rank_max_ns);
      out += ", \"straggler_rank\": ";
      append_i64(out, pp.straggler_rank);
      out += "}";
    }
    out += "],\n \"rank_critical\": [";
    for (std::size_t i = 0; i < dp.rank_critical.size(); ++i) {
      const RankShare& rs = dp.rank_critical[i];
      out += i == 0 ? "" : ", ";
      out += "{\"rank\": ";
      append_i64(out, rs.rank);
      out += ", \"critical_s\": ";
      append_seconds(out, rs.critical_ns);
      out += "}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

std::string profile_report(const Profile& p) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof line,
                "causal profile: %zu dump%s, %llu dropped event%s, "
                "%llu unmatched flow%s, %llu unmatched sync%s\n",
                p.dumps.size(), p.dumps.size() == 1 ? "" : "s",
                static_cast<unsigned long long>(p.dropped_events),
                p.dropped_events == 1 ? "" : "s",
                static_cast<unsigned long long>(p.unmatched_flows),
                p.unmatched_flows == 1 ? "" : "s",
                static_cast<unsigned long long>(p.unmatched_syncs),
                p.unmatched_syncs == 1 ? "" : "s");
  out += line;
  const auto ms = [](std::int64_t ns) { return static_cast<double>(ns) / 1e6; };
  for (const DumpProfile& dp : p.dumps) {
    std::snprintf(line, sizeof line,
                  "\ndump run=%u #%d: %d ranks, critical path %.6f ms\n",
                  dp.run, dp.index, dp.nranks, ms(dp.total_ns));
    out += line;
    std::snprintf(line, sizeof line,
                  "  %-12s %12s %6s %10s %10s %10s %10s %10s %10s %5s\n",
                  "phase", "critical(ms)", "%", "compute", "comm", "barrier",
                  "fence", "p50/rank", "p99/rank", "strag");
    out += line;
    for (const PhaseProfile& pp : dp.phases) {
      std::snprintf(
          line, sizeof line,
          "  %-12s %12.6f %5.1f%% %10.6f %10.6f %10.6f %10.6f %10.6f "
          "%10.6f %5d\n",
          pp.phase.c_str(), ms(pp.critical_ns),
          dp.total_ns > 0 ? 100.0 * static_cast<double>(pp.critical_ns) /
                                static_cast<double>(dp.total_ns)
                          : 0.0,
          ms(pp.compute_ns), ms(pp.comm_ns), ms(pp.barrier_ns),
          ms(pp.fence_ns), ms(pp.rank_p50_ns), ms(pp.rank_p99_ns),
          pp.straggler_rank);
      out += line;
    }
    out += "  path by rank:";
    for (std::size_t i = 0; i < dp.rank_critical.size() && i < 8; ++i) {
      const RankShare& rs = dp.rank_critical[i];
      std::snprintf(line, sizeof line, " r%d %.1f%%", rs.rank,
                    dp.total_ns > 0
                        ? 100.0 * static_cast<double>(rs.critical_ns) /
                              static_cast<double>(dp.total_ns)
                        : 0.0);
      out += line;
    }
    out += "\n";
  }
  return out;
}

std::string augmented_trace_json(const std::vector<ProfEvent>& events,
                                 const Profile& p) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  for (const ProfEvent& e : events) {
    sep();
    out += "{\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"cat\": \"";
    out += category_of(e.kind);
    out += "\", \"ph\": \"";
    out += phase_of(e.kind);
    out += "\", \"ts\": ";
    append_ts_us(out, e.ts_ns);
    out += ", \"pid\": ";
    append_u64(out, e.run);
    out += ", \"tid\": ";
    append_i64(out, e.rank);
    if (phase_of(e.kind)[0] == 'i') out += ", \"s\": \"t\"";
    out += ", \"args\": {\"a\": ";
    append_u64(out, e.a);
    out += ", \"b\": ";
    append_u64(out, e.b);
    out += ", \"c\": ";
    append_u64(out, e.c);
    out += "}}";
  }
  // Flow arrows for every matched send/recv pair.
  struct FlowEnd {
    const ProfEvent* send = nullptr;
    const ProfEvent* recv = nullptr;
  };
  std::map<std::pair<std::uint32_t, std::uint64_t>, FlowEnd> flows;
  for (const ProfEvent& e : events) {
    if (e.kind == EventKind::kSend) flows[{e.run, e.c}].send = &e;
    if (e.kind == EventKind::kRecv) flows[{e.run, e.c}].recv = &e;
  }
  for (const auto& [key, f] : flows) {
    if (f.send == nullptr || f.recv == nullptr) continue;
    sep();
    out += "{\"name\": \"msg\", \"cat\": \"flow\", \"ph\": \"s\", \"id\": ";
    append_u64(out, key.second);
    out += ", \"ts\": ";
    append_ts_us(out, f.send->ts_ns);
    out += ", \"pid\": ";
    append_u64(out, key.first);
    out += ", \"tid\": ";
    append_i64(out, f.send->rank);
    out += "}";
    sep();
    out += "{\"name\": \"msg\", \"cat\": \"flow\", \"ph\": \"f\", "
           "\"bp\": \"e\", \"id\": ";
    append_u64(out, key.second);
    out += ", \"ts\": ";
    append_ts_us(out, f.recv->ts_ns);
    out += ", \"pid\": ";
    append_u64(out, key.first);
    out += ", \"tid\": ";
    append_i64(out, f.recv->rank);
    out += "}";
  }
  // The critical path of every dump as explicit "X" slices.
  for (const DumpProfile& dp : p.dumps) {
    for (const CriticalSegment& s : dp.segments) {
      sep();
      out += "{\"name\": \"critical\", \"cat\": \"critical\", \"ph\": \"X\", "
             "\"ts\": ";
      append_ts_us(out, s.t0_ns);
      out += ", \"dur\": ";
      append_ts_us(out, s.t1_ns - s.t0_ns);
      out += ", \"pid\": ";
      append_u64(out, dp.run);
      out += ", \"tid\": ";
      append_i64(out, s.rank);
      out += ", \"args\": {\"kind\": \"";
      out += to_string(s.kind);
      out += "\", \"phase\": \"";
      append_escaped(out, s.phase);
      out += "\"}}";
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace collrep::obs
