// Per-rank bounded event ring, timestamped with the *simulated* clock.
//
// Because every timestamp comes from sim::SimClock (deterministic across
// runs and independent of host load), a trace of the same program is
// bit-reproducible.  Events carry a static-lifetime name and two
// kind-specific integer arguments; Telemetry::trace_json() renders all
// ranks as one Chrome trace-event file (rank -> tid, Runtime::run()
// incarnation -> pid) loadable in Perfetto / chrome://tracing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace collrep::obs {

enum class EventKind : std::uint8_t {
  kPhaseBegin = 0,   // duration begin ("B"): dump pipeline phase
  kPhaseEnd,         // duration end ("E")
  kCollectiveBegin,  // duration begin: bcast/reduce/allgather/...
  kCollectiveEnd,
  kPut,          // instant: one-sided put (a = modeled bytes, b = target)
  kFence,        // instant: window epoch completion (a = epoch put bytes)
  kStoreCommit,  // instant: chunks committed to a device (a = bytes)
  kFault,        // instant: injected fault fired (a = target store/rank)
  // Flow events: the cross-rank happens-before edges tools/collprof
  // stitches the per-rank rings together with (DESIGN.md §11).
  kSend,       // instant: p2p message entered flight (a = bytes, b = dst,
               //          c = flow id, matched by the peer's kRecv)
  kRecv,       // instant: p2p message delivered (a = bytes, b = src,
               //          c = flow id of the matching kSend)
  kSyncBegin,  // duration begin: clock-aligning rendezvous entry
               //          (barrier / window fence; c = sync generation)
  kSyncEnd,    // duration end: rendezvous release (c = sync generation)
};

[[nodiscard]] constexpr const char* phase_of(EventKind k) noexcept {
  switch (k) {
    case EventKind::kPhaseBegin:
    case EventKind::kCollectiveBegin:
    case EventKind::kSyncBegin:
      return "B";
    case EventKind::kPhaseEnd:
    case EventKind::kCollectiveEnd:
    case EventKind::kSyncEnd:
      return "E";
    case EventKind::kPut:
    case EventKind::kFence:
    case EventKind::kStoreCommit:
    case EventKind::kFault:
    case EventKind::kSend:
    case EventKind::kRecv:
      return "i";
  }
  return "i";
}

[[nodiscard]] constexpr const char* category_of(EventKind k) noexcept {
  switch (k) {
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd:
      return "phase";
    case EventKind::kCollectiveBegin:
    case EventKind::kCollectiveEnd:
      return "collective";
    case EventKind::kPut:
    case EventKind::kFence:
      return "window";
    case EventKind::kStoreCommit:
      return "storage";
    case EventKind::kFault:
      return "fault";
    case EventKind::kSend:
    case EventKind::kRecv:
      return "comm";
    case EventKind::kSyncBegin:
    case EventKind::kSyncEnd:
      return "sync";
  }
  return "misc";
}

struct TraceEvent {
  EventKind kind = EventKind::kPut;
  std::uint32_t run = 0;   // Runtime::run() incarnation (exported as pid)
  double ts = 0.0;         // simulated seconds
  const char* name = "";   // must have static storage duration
  std::uint64_t a = 0;     // kind-specific (typically bytes)
  std::uint64_t b = 0;     // kind-specific (typically a peer rank)
  std::uint64_t c = 0;     // causal id (flow id / sync generation)
};

// Fixed-capacity ring; overflow drops the *oldest* events so the tail of
// the run (usually the interesting part of a dump) is always retained.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
  }

  static constexpr std::size_t kDefaultCapacity = 1 << 14;

  void record(const TraceEvent& ev) {
    if (ring_.size() < capacity_) {
      ring_.push_back(ev);
      return;
    }
    ring_[head_] = ev;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  // Events in recording (chronological per rank) order.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  void clear() {
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> ring_;
};

}  // namespace collrep::obs
