// Per-rank communication-substrate counters (the altitude below DumpStats).
//
// CommStats counts what simmpi::Comm/Window actually moved: point-to-point
// messages and bytes (by tag and by intra-/inter-node locality), collective
// invocations with their logical round counts, barriers, and one-sided
// window traffic.  Every counter is maintained by exactly one rank thread
// (see obs::Telemetry), so no synchronization is needed here; roll-ups
// merge the per-rank structs after the run.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>

namespace collrep::obs {

// Collective shapes implemented in simmpi/collectives.hpp, generated from
// the shared registry (obs/collectives.def) so the list has one definition.
enum class CollectiveKind : std::uint8_t {
#define COLLREP_COLLECTIVE_OBS(Name, str) k##Name,
#include "obs/collectives.def"
};

inline constexpr std::size_t kCollectiveKindCount = 0
#define COLLREP_COLLECTIVE_OBS(Name, str) +1
#include "obs/collectives.def"
    ;

[[nodiscard]] constexpr const char* to_string(CollectiveKind k) noexcept {
  switch (k) {
#define COLLREP_COLLECTIVE_OBS(Name, str) \
  case CollectiveKind::k##Name:           \
    return str;
#include "obs/collectives.def"
  }
  return "unknown";
}

[[nodiscard]] constexpr std::size_t index_of(CollectiveKind k) noexcept {
  return static_cast<std::size_t>(k);
}

struct TagTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

struct CommStats {
  // Point-to-point (Comm::send_bytes / recv_bytes).
  std::uint64_t sent_messages = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t recv_messages = 0;
  std::uint64_t recv_bytes = 0;
  std::uint64_t intra_node_sent_bytes = 0;  // sender and receiver share a node
  std::uint64_t inter_node_sent_bytes = 0;
  std::map<int, TagTraffic> sent_by_tag;  // ordered for deterministic export

  // Synchronization.
  std::uint64_t barriers = 0;

  // Collectives (counted at the collectives.hpp layer; allreduce also
  // counts its nested reduce + bcast under their own kinds).
  std::array<std::uint64_t, kCollectiveKindCount> collective_calls{};
  std::array<std::uint64_t, kCollectiveKindCount> collective_rounds{};

  // One-sided windows.
  std::uint64_t windows_created = 0;
  std::uint64_t window_epochs = 0;  // completed fences
  std::uint64_t puts = 0;
  std::uint64_t put_bytes = 0;  // modeled wire bytes (header + payload)
  std::uint64_t intra_node_put_bytes = 0;
  std::uint64_t inter_node_put_bytes = 0;

  CommStats& merge_from(const CommStats& o) {
    sent_messages += o.sent_messages;
    sent_bytes += o.sent_bytes;
    recv_messages += o.recv_messages;
    recv_bytes += o.recv_bytes;
    intra_node_sent_bytes += o.intra_node_sent_bytes;
    inter_node_sent_bytes += o.inter_node_sent_bytes;
    for (const auto& [tag, t] : o.sent_by_tag) {
      auto& mine = sent_by_tag[tag];
      mine.messages += t.messages;
      mine.bytes += t.bytes;
    }
    barriers += o.barriers;
    for (std::size_t i = 0; i < kCollectiveKindCount; ++i) {
      collective_calls[i] += o.collective_calls[i];
      collective_rounds[i] += o.collective_rounds[i];
    }
    windows_created += o.windows_created;
    window_epochs += o.window_epochs;
    puts += o.puts;
    put_bytes += o.put_bytes;
    intra_node_put_bytes += o.intra_node_put_bytes;
    inter_node_put_bytes += o.inter_node_put_bytes;
    return *this;
  }
};

}  // namespace collrep::obs
