// Named counters / gauges / histograms with deterministic JSON export.
//
// One registry is shared by all rank threads of a run (and across runs of
// the same Telemetry), so every mutation takes an internal lock; callers on
// hot paths should prefer the lock-free per-rank CommStats and publish into
// the registry once per dump.  Names are ordered maps, so to_json() output
// is byte-stable for a given set of observations.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace collrep::obs {

// Power-of-two bucketed histogram: bucket i counts values v with
// 2^(i-1) <= v < 2^i (bucket 0 takes v < 1).
struct Histogram {
  static constexpr std::size_t kBuckets = 64;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kBuckets> buckets{};

  void observe(double v) noexcept;
};

class MetricsRegistry {
 public:
  // Monotone counter.
  void add(std::string_view name, std::uint64_t delta = 1);
  // Last-write-wins gauge.
  void set(std::string_view name, double value);
  // Distribution sample.
  void observe(std::string_view name, double value);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  // Returns a copy (the live histogram may keep moving); count == 0 when
  // the name was never observed.
  [[nodiscard]] Histogram histogram(std::string_view name) const;

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys in
  // lexicographic order.
  [[nodiscard]] std::string to_json() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace collrep::obs
