#include "obs/metrics.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace collrep::obs {

namespace {

// Metric names are code-controlled, but escape anyway so to_json() always
// emits valid JSON regardless of what a caller passes.
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out += v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

void Histogram::observe(double v) noexcept {
  if (count == 0) {
    min = max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  std::size_t idx = 0;
  if (v >= 1.0) {
    const int exp = std::ilogb(v);  // floor(log2 v) for finite v >= 1
    idx = static_cast<std::size_t>(exp) + 1;
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  ++buckets[idx];
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  std::scoped_lock lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  std::scoped_lock lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  std::scoped_lock lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.observe(value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::scoped_lock lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  std::scoped_lock lk(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram MetricsRegistry::histogram(std::string_view name) const {
  std::scoped_lock lk(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

std::string MetricsRegistry::to_json() const {
  std::scoped_lock lk(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    append_u64(out, value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    append_double(out, value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_double(out, h.sum);
    out += ", \"min\": ";
    append_double(out, h.min);
    out += ", \"max\": ";
    append_double(out, h.max);
    out += ", \"buckets\": {";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      // Key = exclusive upper bound of the bucket (2^i), "0.5" style keys
      // avoided by anchoring bucket 0 at 1.
      out += '"';
      append_double(out, i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i)));
      out += "\": ";
      append_u64(out, h.buckets[i]);
    }
    out += "}}";
  }
  out += "\n  }\n}\n";
  return out;
}

void MetricsRegistry::clear() {
  std::scoped_lock lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace collrep::obs
