// Telemetry: the unified observability attachment point for a simmpi run.
//
// A Telemetry instance is handed to the runtime through
// simmpi::RuntimeOptions::telemetry (default nullptr == disabled; the only
// cost of the disabled state is a null-pointer check at each
// instrumentation site).  When attached, every rank thread gets its own
// RankTelemetry — a lock-free CommStats counter block plus a bounded
// TraceRecorder — and all ranks share one locked MetricsRegistry that the
// dump pipelines publish into.
//
// One Telemetry may span several Runtime::run() invocations (the fig
// benches re-run the pipeline per rank count): counters accumulate,
// trace events are stamped with the run incarnation (exported as the
// Chrome trace pid), and rollup() merges everything seen so far.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/comm_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace collrep::obs {

// Per-rank slice of an attached Telemetry.  Written only by the owning
// rank thread while a run is in flight.
struct RankTelemetry {
  explicit RankTelemetry(std::size_t trace_capacity)
      : trace(trace_capacity) {}

  CommStats comm;
  TraceRecorder trace;
  MetricsRegistry* metrics = nullptr;  // shared registry, internally locked
  std::uint32_t run = 0;               // current Runtime::run() incarnation

  void event(EventKind kind, double ts, const char* name, std::uint64_t a = 0,
             std::uint64_t b = 0, std::uint64_t c = 0) {
    trace.record(TraceEvent{kind, run, ts, name, a, b, c});
  }
};

struct TelemetryConfig {
  std::size_t trace_capacity = TraceRecorder::kDefaultCapacity;  // per rank
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // Called by the runtime at the start/end of a Runtime::run().  begin_run
  // grows the per-rank slots (never shrinks, so traces from earlier runs
  // survive) and advances the run incarnation.
  void begin_run(int nranks);
  void end_run();

  [[nodiscard]] RankTelemetry& rank(int r) { return *ranks_.at(r); }
  [[nodiscard]] const RankTelemetry& rank(int r) const { return *ranks_.at(r); }
  [[nodiscard]] int rank_count() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] std::uint32_t runs() const noexcept { return run_count_; }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  // Merge of every rank's CommStats across all runs so far.
  [[nodiscard]] CommStats rollup() const;

  // Total trace-ring overflow across ranks.  Nonzero means the happens-
  // before DAG is incomplete (oldest events were discarded); profile-mode
  // consumers must check this and size TelemetryConfig::trace_capacity up.
  [[nodiscard]] std::uint64_t dropped_events() const;

  // Mirror the comm roll-up into the metrics registry as "comm.*" gauges
  // plus the per-rank/total "trace.*.dropped_events" overflow counters
  // (idempotent; called before exporting metrics to a file).
  void publish_rollup();

  // All ranks' trace events as one Chrome trace-event JSON document:
  // {"traceEvents": [...], "displayTimeUnit": "ms"}.  tid = rank,
  // pid = run incarnation, ts in simulated microseconds.  Deterministic
  // for a deterministic program (timestamps come from the sim clock).
  [[nodiscard]] std::string trace_json() const;

 private:
  TelemetryConfig config_;
  std::uint32_t run_count_ = 0;
  std::vector<std::unique_ptr<RankTelemetry>> ranks_;
  MetricsRegistry metrics_;
};

}  // namespace collrep::obs
