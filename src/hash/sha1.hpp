// SHA-1 (RFC 3174).  Self-contained implementation used as the default
// crypto-grade fingerprint function, mirroring the paper's use of OpenSSL
// SHA1.  Supports both one-shot and streaming use.  The compression
// function dispatches through src/kernels (SHA-NI or block-pipelined
// scalar, COLLREP_KERNELS=scalar forces the reference rounds loop).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace collrep::hash {

class Sha1 {
 public:
  static constexpr std::size_t kDigestBytes = 20;
  static constexpr std::size_t kBlockBytes = 64;

  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  // Finalizes and writes the 20-byte digest; the object must be reset()
  // before reuse.
  void finish(std::span<std::uint8_t, kDigestBytes> digest) noexcept;

  static std::array<std::uint8_t, kDigestBytes> digest(
      std::span<const std::uint8_t> data) noexcept;

 private:
  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, kBlockBytes> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

}  // namespace collrep::hash
