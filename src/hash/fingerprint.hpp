// Fingerprint: fixed-width digest identifying a chunk's content.
//
// The paper uses SHA1 (160 bits) as the default fingerprint, so Fingerprint
// is sized for the largest supported digest; shorter hashes (FNV/XX64/CRC)
// zero-pad.  Fingerprints are ordered and hashable so they can key ordered
// and unordered containers, and they serialize as raw bytes.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>

namespace collrep::hash {

class Fingerprint {
 public:
  static constexpr std::size_t kBytes = 20;  // SHA-1 digest width

  constexpr Fingerprint() noexcept : bytes_{} {}

  explicit Fingerprint(std::span<const std::uint8_t> digest) noexcept : bytes_{} {
    const std::size_t n = digest.size() < kBytes ? digest.size() : kBytes;
    for (std::size_t i = 0; i < n; ++i) bytes_[i] = digest[i];
  }

  // Builds a fingerprint from a 64-bit hash value (FNV, XX64, CRC paths).
  static Fingerprint from_u64(std::uint64_t value) noexcept {
    Fingerprint fp;
    for (std::size_t i = 0; i < 8; ++i) {
      fp.bytes_[i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
    return fp;
  }

  [[nodiscard]] std::span<const std::uint8_t, kBytes> bytes() const noexcept {
    return std::span<const std::uint8_t, kBytes>{bytes_};
  }
  [[nodiscard]] std::span<std::uint8_t, kBytes> bytes() noexcept {
    return std::span<std::uint8_t, kBytes>{bytes_};
  }

  // First 8 bytes as little-endian u64; used for cheap bucketing/sampling.
  [[nodiscard]] std::uint64_t prefix64() const noexcept {
    std::uint64_t v = 0;
    std::memcpy(&v, bytes_.data(), sizeof v);
    return v;
  }

  [[nodiscard]] std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(2 * kBytes);
    for (std::uint8_t b : bytes_) {
      out.push_back(kDigits[b >> 4]);
      out.push_back(kDigits[b & 0xF]);
    }
    return out;
  }

  friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;
  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

 private:
  std::array<std::uint8_t, kBytes> bytes_;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const noexcept {
    // The digest bytes are already uniformly distributed; fold the prefix.
    return static_cast<std::size_t>(fp.prefix64());
  }
};

}  // namespace collrep::hash

template <>
struct std::hash<collrep::hash::Fingerprint> {
  std::size_t operator()(const collrep::hash::Fingerprint& fp) const noexcept {
    return collrep::hash::FingerprintHash{}(fp);
  }
};
