// FNV-1a 64-bit: trivially simple non-cryptographic hash.  Used when the
// application accepts a higher collision probability in exchange for
// hashing speed (paper §IV: "our approach fully supports other hash
// functions if a better trade-off between performance and collision chance
// is desired").
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace collrep::hash {

constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

constexpr std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                                std::uint64_t seed = kFnvOffsetBasis) noexcept {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace collrep::hash
