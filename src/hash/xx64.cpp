#include "hash/xx64.hpp"

#include <bit>
#include <cstring>

namespace collrep::hash {

namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

std::uint64_t read64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;  // little-endian hosts only (x86-64/aarch64)
}

std::uint32_t read32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t round1(std::uint64_t acc, std::uint64_t input) noexcept {
  acc += input * kPrime2;
  acc = std::rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

std::uint64_t merge_round(std::uint64_t acc, std::uint64_t val) noexcept {
  val = round1(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

std::uint64_t xx64(std::span<const std::uint8_t> data,
                   std::uint64_t seed) noexcept {
  const std::uint8_t* p = data.data();
  const std::uint8_t* const end = p + data.size();
  std::uint64_t h;

  if (data.size() >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    const std::uint8_t* const limit = end - 32;
    do {
      v1 = round1(v1, read64(p));
      v2 = round1(v2, read64(p + 8));
      v3 = round1(v3, read64(p + 16));
      v4 = round1(v4, read64(p + 24));
      p += 32;
    } while (p <= limit);

    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) +
        std::rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= round1(0, read64(p));
    h = std::rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read32(p)) * kPrime1;
    h = std::rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = std::rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace collrep::hash
