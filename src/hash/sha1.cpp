#include "hash/sha1.hpp"

#include <cstring>

#include "kernels/kernels.hpp"

namespace collrep::hash {

void Sha1::reset() noexcept {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  // The compression function is dispatched through src/kernels (SHA-NI
  // when the CPU has it, the block-pipelined scalar otherwise) and takes
  // a run of blocks per call, so bulk updates pay one indirection total.
  const kernels::Sha1BlocksFn compress = kernels::dispatch().sha1_blocks;
  total_bytes_ += data.size();
  std::size_t offset = 0;

  if (buffered_ > 0) {
    const std::size_t need = kBlockBytes - buffered_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kBlockBytes) {
      compress(state_.data(), buffer_.data(), 1);
      buffered_ = 0;
    }
  }

  const std::size_t full_blocks = (data.size() - offset) / kBlockBytes;
  if (full_blocks > 0) {
    compress(state_.data(), data.data() + offset, full_blocks);
    offset += full_blocks * kBlockBytes;
  }

  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
}

void Sha1::finish(std::span<std::uint8_t, kDigestBytes> digest) noexcept {
  const std::uint64_t bit_len = total_bytes_ * 8;

  static constexpr std::uint8_t kPad = 0x80;
  update(std::span<const std::uint8_t>{&kPad, 1});
  static constexpr std::uint8_t kZero = 0x00;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>{&kZero, 1});
  }

  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>{len_bytes, 8});

  for (int i = 0; i < 5; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
}

std::array<std::uint8_t, Sha1::kDigestBytes> Sha1::digest(
    std::span<const std::uint8_t> data) noexcept {
  Sha1 h;
  h.update(data);
  std::array<std::uint8_t, kDigestBytes> out{};
  h.finish(out);
  return out;
}

}  // namespace collrep::hash
