#include "hash/sha1.hpp"

#include <bit>
#include <cstring>

namespace collrep::hash {

namespace {

constexpr std::uint32_t rol(std::uint32_t v, int s) noexcept {
  return std::rotl(v, s);
}

}  // namespace

void Sha1::reset() noexcept {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rol(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rol(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rol(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;

  if (buffered_ > 0) {
    const std::size_t need = kBlockBytes - buffered_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kBlockBytes) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }

  while (offset + kBlockBytes <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockBytes;
  }

  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
}

void Sha1::finish(std::span<std::uint8_t, kDigestBytes> digest) noexcept {
  const std::uint64_t bit_len = total_bytes_ * 8;

  static constexpr std::uint8_t kPad = 0x80;
  update(std::span<const std::uint8_t>{&kPad, 1});
  static constexpr std::uint8_t kZero = 0x00;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>{&kZero, 1});
  }

  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>{len_bytes, 8});

  for (int i = 0; i < 5; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
}

std::array<std::uint8_t, Sha1::kDigestBytes> Sha1::digest(
    std::span<const std::uint8_t> data) noexcept {
  Sha1 h;
  h.update(data);
  std::array<std::uint8_t, kDigestBytes> out{};
  h.finish(out);
  return out;
}

}  // namespace collrep::hash
