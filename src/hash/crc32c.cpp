#include "hash/crc32c.hpp"

#include <array>

namespace collrep::hash {

namespace {

constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  for (std::uint8_t b : data) {
    crc = kTable[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace collrep::hash
