#include "hash/crc32c.hpp"

#include "kernels/kernels.hpp"

namespace collrep::hash {

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed) noexcept {
  // The kernel folds bytes into the raw (complemented) CRC register; the
  // SSE4.2 variant uses the hardware CRC32 instruction when available.
  return ~kernels::dispatch().crc32c(~seed, data.data(), data.size());
}

}  // namespace collrep::hash
