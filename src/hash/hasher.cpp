#include "hash/hasher.hpp"

#include <stdexcept>

#include "hash/crc32c.hpp"
#include "hash/fnv.hpp"
#include "hash/sha1.hpp"
#include "hash/xx64.hpp"

namespace collrep::hash {

std::string_view to_string(HashKind kind) noexcept {
  switch (kind) {
    case HashKind::kSha1:
      return "sha1";
    case HashKind::kXx64:
      return "xx64";
    case HashKind::kFnv64:
      return "fnv64";
    case HashKind::kCrc32c:
      return "crc32c";
  }
  return "unknown";
}

HashKind parse_hash_kind(std::string_view name) {
  if (name == "sha1") return HashKind::kSha1;
  if (name == "xx64") return HashKind::kXx64;
  if (name == "fnv64") return HashKind::kFnv64;
  if (name == "crc32c") return HashKind::kCrc32c;
  throw std::invalid_argument("unknown hash kind: " + std::string(name));
}

namespace {

class Sha1Hasher final : public ChunkHasher {
 public:
  Fingerprint fingerprint(std::span<const std::uint8_t> chunk) const override {
    const auto digest = Sha1::digest(chunk);
    return Fingerprint{std::span<const std::uint8_t>{digest}};
  }
  HashKind kind() const noexcept override { return HashKind::kSha1; }
  double modeled_bytes_per_second() const noexcept override { return 300e6; }
};

class Xx64Hasher final : public ChunkHasher {
 public:
  Fingerprint fingerprint(std::span<const std::uint8_t> chunk) const override {
    return Fingerprint::from_u64(xx64(chunk));
  }
  HashKind kind() const noexcept override { return HashKind::kXx64; }
  double modeled_bytes_per_second() const noexcept override { return 5e9; }
};

class Fnv64Hasher final : public ChunkHasher {
 public:
  Fingerprint fingerprint(std::span<const std::uint8_t> chunk) const override {
    return Fingerprint::from_u64(fnv1a64(chunk));
  }
  HashKind kind() const noexcept override { return HashKind::kFnv64; }
  double modeled_bytes_per_second() const noexcept override { return 800e6; }
};

class Crc32cHasher final : public ChunkHasher {
 public:
  Fingerprint fingerprint(std::span<const std::uint8_t> chunk) const override {
    return Fingerprint::from_u64(crc32c(chunk));
  }
  HashKind kind() const noexcept override { return HashKind::kCrc32c; }
  double modeled_bytes_per_second() const noexcept override { return 1.5e9; }
};

}  // namespace

const ChunkHasher& hasher_for(HashKind kind) {
  static const Sha1Hasher sha1;
  static const Xx64Hasher xx;
  static const Fnv64Hasher fnv;
  static const Crc32cHasher crc;
  switch (kind) {
    case HashKind::kSha1:
      return sha1;
    case HashKind::kXx64:
      return xx;
    case HashKind::kFnv64:
      return fnv;
    case HashKind::kCrc32c:
      return crc;
  }
  throw std::invalid_argument("unknown HashKind");
}

}  // namespace collrep::hash
