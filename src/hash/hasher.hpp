// ChunkHasher: the pluggable fingerprint function used by the dedup
// pipeline (paper §IV).  A registry maps HashKind to an implementation so
// that every component (local dedup, collective reduction, stores) agrees
// on the fingerprint space via configuration rather than hard-coding SHA1.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "hash/fingerprint.hpp"

namespace collrep::hash {

enum class HashKind : std::uint8_t {
  kSha1 = 0,   // crypto-grade, paper default
  kXx64 = 1,   // fast, well distributed
  kFnv64 = 2,  // fastest, weakest distribution
  kCrc32c = 3, // checksum-grade; collisions plausible at scale
};

[[nodiscard]] std::string_view to_string(HashKind kind) noexcept;
// Parses "sha1" / "xx64" / "fnv64" / "crc32c"; throws std::invalid_argument
// on unknown names.
[[nodiscard]] HashKind parse_hash_kind(std::string_view name);

class ChunkHasher {
 public:
  virtual ~ChunkHasher() = default;

  [[nodiscard]] virtual Fingerprint fingerprint(
      std::span<const std::uint8_t> chunk) const = 0;
  [[nodiscard]] virtual HashKind kind() const noexcept = 0;
  // Approximate hashing throughput in bytes/second on the paper's testbed
  // CPU (Xeon X5670); consumed by the simtime cost model.
  [[nodiscard]] virtual double modeled_bytes_per_second() const noexcept = 0;
};

// Returns a process-lifetime hasher instance for `kind` (stateless, safe to
// share across threads).
[[nodiscard]] const ChunkHasher& hasher_for(HashKind kind);

}  // namespace collrep::hash
