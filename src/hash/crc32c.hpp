// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
// Table-driven software implementation.  The weakest fingerprint in the
// registry; included to demonstrate (and test) how the pipeline behaves
// when the collision probability is non-negligible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace collrep::hash {

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0) noexcept;

}  // namespace collrep::hash
