// XX64: the 64-bit xxHash algorithm (XXH64), reimplemented from the public
// specification.  Fast, well-distributed, non-cryptographic; the middle
// ground between SHA-1 and FNV-1a in the fingerprint-function trade-off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace collrep::hash {

std::uint64_t xx64(std::span<const std::uint8_t> data,
                   std::uint64_t seed = 0) noexcept;

}  // namespace collrep::hash
