// Shrink-and-continue recovery (ReStore-style; the paper's redundancy
// observation applied to restart instead of the dump).
//
// When RuntimeOptions::contain_failures absorbs a rank death, survivors
// learn about it as RankDeadError at their next collective.  Every
// survivor then calls RecoveryService::recover_world(), which
//
//   1. drives Comm::shrink() — the ULFM-style failure agreement that
//      re-ranks the survivors densely;
//   2. marks the dead ranks' stores failed and hands each orphaned
//      dataset to a deterministic adopter, rebuilt byte-identical from
//      the surviving replicas;
//   3. re-keys the surviving manifests under the post-shrink dense
//      numbering;
//   4. re-replicates exactly the shortfall the deaths opened, using the
//      same HMERGE-style replica audit as core::repair_replicas.  Chunks
//      whose fingerprints already sit on >= K_eff survivors — the
//      naturally distributed duplicates — satisfy the new distribution
//      at zero shipping cost, and the stats account them separately so
//      the saving is measurable.
//
// The service holds no per-run mutable state: one instance is shared by
// all rank threads (like fault::FaultSchedule) and recover_world() is safe to
// call concurrently from every survivor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chunk/store.hpp"
#include "core/repair.hpp"
#include "core/restore.hpp"
#include "simmpi/comm.hpp"

namespace collrep::recover {

struct RecoveryConfig {
  // Replication factor the dump pipeline targets (K); the rebalance tops
  // every surviving chunk back up to min(K, survivors).
  int replication = 1;
  // Restore dead ranks' datasets onto surviving adopters.  With payload
  // stores the adopter receives the byte-identical segments; with
  // accounting stores only the byte counts are tracked.
  bool adopt_orphans = true;
};

// One dead rank's dataset, rebuilt on its adopter from surviving replicas.
struct OrphanData {
  int world_rank = -1;  // the dead rank, world numbering
  int prev_rank = -1;   // its dense rank before the shrink (manifest key)
  std::uint64_t bytes = 0;  // dataset payload bytes (manifest total)
  // Byte-identical to the dead rank's last committed dump.  Empty for
  // accounting-mode stores (no payloads retained).
  std::vector<std::vector<std::uint8_t>> segments;
};

struct RecoveryStats {
  // -- membership (identical on every survivor) -----------------------------
  std::uint64_t shrink_epoch = 0;  // monotonic shrink counter
  int deaths = 0;                  // deaths absorbed by this shrink
  int world_size_after = 0;        // survivors (new comm size)
  int k_requested = 0;
  int k_effective = 0;  // min(K, alive survivor stores)

  // -- dedup-aware rebalance (global; identical on every survivor) ----------
  std::uint64_t chunks_total = 0;  // distinct fingerprints on survivors
  // Already at >= K_eff replicas across survivors: the new distribution is
  // satisfied for free by naturally distributed duplicates.
  std::uint64_t dedup_satisfied_chunks = 0;
  std::uint64_t dedup_satisfied_bytes = 0;
  // Shortfall actually shipped through the window exchange.
  std::uint64_t rereplicated_chunks = 0;  // replica copies shipped
  std::uint64_t rereplicated_bytes = 0;

  // -- orphan adoption -------------------------------------------------------
  std::uint64_t orphans_adopted = 0;     // by this rank
  std::uint64_t orphan_bytes = 0;        // by this rank
  std::uint64_t orphan_bytes_total = 0;  // global
  std::vector<OrphanData> orphans;       // adopted by this rank

  // -- timing (aligned; identical on every survivor) -------------------------
  double agreement_time_s = 0.0;  // failure agreement + shrink rendezvous
  double total_time_s = 0.0;      // agreement start -> recovery complete
};

class RecoveryService {
 public:
  // `stores[w]` is WORLD rank w's device — the same span the dump pipeline
  // and fault::FaultSchedule::arm() use; it keeps this indexing across
  // shrinks (Comm::world_of maps dense ranks back onto it).  The pointees
  // must outlive the service.
  RecoveryService(std::span<chunk::ChunkStore* const> stores,
                  RecoveryConfig config);

  // Collective: every survivor must call it after observing RankDeadError
  // (or to absorb pending deaths proactively).  On return the communicator
  // is densely re-ranked, dead stores are failed, manifests are re-keyed,
  // every surviving chunk is back at K_eff replicas, and the caller holds
  // any orphaned datasets it adopted.  Throws core::ChunkLostError /
  // core::ManifestLostError (on every survivor, deterministically) when
  // the deaths exceeded what the replication factor could tolerate.
  // Stats are published under "recover.*" in the attached metrics
  // registry, and the phase is traced as "recover".
  [[nodiscard]] RecoveryStats recover_world(simmpi::Comm& comm) const;

  [[nodiscard]] const RecoveryConfig& config() const noexcept {
    return config_;
  }

 private:
  std::vector<chunk::ChunkStore*> stores_;  // world-indexed; immutable
  RecoveryConfig config_;
};

}  // namespace collrep::recover
