#include "recover/service.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "simmpi/collectives.hpp"

namespace collrep::recover {

namespace {

constexpr std::size_t kRecordHeaderBytes =
    hash::Fingerprint::kBytes + sizeof(std::uint32_t);

// One replica copy the rebalance ships (same record layout and planning
// rules as core::repair_replicas, so the exchange stays deterministic and
// needs no offset negotiation).
struct ShipOrder {
  hash::Fingerprint fp;
  std::uint32_t length = 0;
  int sender = 0;
  int receiver = 0;
  std::uint64_t offset = 0;  // byte offset in the receiver's window
};

// Lost-chunk evidence, packed so the union allreduce moves one map:
// owner (post-shrink dense rank) in the high half, length in the low.
[[nodiscard]] std::uint64_t pack_owner_length(int owner,
                                              std::uint32_t length) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(owner))
          << 32) |
         length;
}

}  // namespace

RecoveryService::RecoveryService(std::span<chunk::ChunkStore* const> stores,
                                 RecoveryConfig config)
    : stores_(stores.begin(), stores.end()), config_(config) {
  if (config_.replication < 1) {
    throw std::invalid_argument("recover: replication must be >= 1");
  }
}

RecoveryStats RecoveryService::recover_world(simmpi::Comm& comm) const {
  // ---- Agreement: shrink the world ----------------------------------------
  // Comm::shrink() parks every survivor, drains dead ranks' mailboxes,
  // charges the agreement cost, and returns with the communicator densely
  // re-ranked.  Everything below runs in the post-shrink world.
  const simmpi::Comm::ShrinkInfo info = comm.shrink();
  const int n = comm.size();
  const int rank = comm.rank();
  if (static_cast<int>(stores_.size()) != comm.world_size()) {
    throw std::invalid_argument(
        "recover: stores span must have one entry per world rank");
  }
  chunk::ChunkStore* own = stores_[static_cast<std::size_t>(comm.world_rank())];
  if (own == nullptr) {
    throw std::invalid_argument("recover: surviving rank has no store");
  }
  const auto& cluster = comm.cluster();

  const double t0 = info.agreement_start_s;
  if (auto* t = comm.obs()) {
    t->event(obs::EventKind::kPhaseBegin, comm.clock().now(), "recover",
             info.dead.size(), static_cast<std::uint64_t>(n));
  }

  RecoveryStats stats;
  stats.shrink_epoch = info.epoch;
  stats.deaths = static_cast<int>(info.dead.size());
  stats.world_size_after = n;
  stats.k_requested = config_.replication;
  stats.agreement_time_s = comm.clock().now() - t0;

  // ---- Contain the dead devices -------------------------------------------
  // One writer marks the dead ranks' stores failed (a dead node's device is
  // gone); the barrier publishes the flags to every survivor.
  if (rank == 0) {
    for (const auto& d : info.dead) {
      if (chunk::ChunkStore* s =
              stores_[static_cast<std::size_t>(d.world_rank)]) {
        s->fail();
      }
    }
  }
  comm.fault_point("recover.pre");
  comm.barrier();

  // ---- Orphan adoption (read-only phase) ----------------------------------
  // Manifests are still keyed by the pre-shrink dense numbering, so lookups
  // go through a span built from prev_group_world.  Orphan i is adopted by
  // survivor i % n — deterministic, no negotiation.  All cross-store reads
  // happen here, before the re-keying below mutates any store.
  std::vector<chunk::ChunkStore*> prev_stores;
  prev_stores.reserve(info.prev_group_world.size());
  for (const int w : info.prev_group_world) {
    prev_stores.push_back(stores_[static_cast<std::size_t>(w)]);
  }
  const bool payload_mode = own->mode() == chunk::StoreMode::kPayload;

  if (config_.adopt_orphans) {
    for (std::size_t i = 0; i < info.dead.size(); ++i) {
      const auto& d = info.dead[i];
      if (static_cast<int>(i % static_cast<std::size_t>(n)) != rank) continue;
      OrphanData od;
      od.world_rank = d.world_rank;
      od.prev_rank = d.prev_rank;
      if (payload_mode) {
        core::RestoreResult r = core::restore_rank(prev_stores, d.prev_rank);
        od.bytes = r.bytes_from_own_store + r.bytes_from_remote_stores;
        od.segments = std::move(r.segments);
        // Local replicas stream off the adopter's HDD; remote ones
        // additionally traverse the network (the restore_input cost model).
        comm.charge(static_cast<double>(r.bytes_from_own_store) /
                    cluster.hdd_read_bps);
        comm.charge(static_cast<double>(r.bytes_from_remote_stores) *
                    (1.0 / cluster.hdd_read_bps +
                     1.0 / cluster.net_bandwidth_bps));
      } else {
        int consulted = 0;
        int failed = 0;
        const chunk::Manifest* best = nullptr;
        for (const chunk::ChunkStore* s : prev_stores) {
          if (s == nullptr || s->failed()) {
            ++failed;
            continue;
          }
          ++consulted;
          const chunk::Manifest* m = s->manifest_for(d.prev_rank);
          if (m != nullptr && (best == nullptr || m->epoch > best->epoch)) {
            best = m;
          }
        }
        if (best == nullptr) {
          throw core::ManifestLostError(d.prev_rank, consulted, failed);
        }
        od.bytes = best->total_bytes();
        comm.charge(static_cast<double>(od.bytes) / cluster.hdd_read_bps);
      }
      stats.orphans_adopted += 1;
      stats.orphan_bytes += od.bytes;
      stats.orphans.push_back(std::move(od));
    }
  }
  comm.barrier();  // adoption reads other stores; re-keying mutates them

  // ---- Re-key surviving manifests under the new dense numbering -----------
  // Each rank rewrites only its own store.  The ascending scan is collision
  // free: old key j maps to the number of survivors among 0..j-1, which is
  // <= j and strictly increasing over survivors, so every destination slot
  // was vacated at an earlier step.  Dead owners' manifests are dropped —
  // their datasets were handed to adopters above.
  if (!own->failed()) {
    std::vector<int> dead_prev;
    dead_prev.reserve(info.dead.size());
    for (const auto& d : info.dead) dead_prev.push_back(d.prev_rank);
    std::sort(dead_prev.begin(), dead_prev.end());
    const int prev_n = static_cast<int>(info.prev_group_world.size());
    int next = 0;
    for (int j = 0; j < prev_n; ++j) {
      std::optional<chunk::Manifest> m = own->take_manifest(j);
      if (std::binary_search(dead_prev.begin(), dead_prev.end(), j)) continue;
      const int nj = next++;
      if (!m.has_value()) continue;
      m->owner_rank = nj;
      own->put_manifest(std::move(*m));
    }
  }

  // ---- Dedup-aware rebalance ----------------------------------------------
  // Same audit DUMP_OUTPUT uses for deduplication: merge per-store chunk
  // indexes into a global replica-health map.  Fingerprints already at
  // K_eff are satisfied by naturally distributed duplicates — zero
  // shipping; only the shortfall moves.
  const auto alive_flags = simmpi::allgather(
      comm, static_cast<std::uint8_t>(own->failed() ? 0 : 1));
  std::vector<int> alive_ranks;
  for (int r = 0; r < n; ++r) {
    if (alive_flags[static_cast<std::size_t>(r)] != 0) alive_ranks.push_back(r);
  }
  const int keff =
      std::min(config_.replication, static_cast<int>(alive_ranks.size()));
  stats.k_effective = keff;
  if (alive_ranks.empty()) {
    throw core::ManifestLostError(rank, 0, n);
  }

  const core::ReplicaHealthSet health =
      core::allreduce_health(comm, *own, keff);
  stats.chunks_total = health.size();

  // Replication exceeded?  A manifest-referenced fingerprint with zero
  // surviving replicas is unrecoverable: merge the evidence across ranks so
  // every survivor throws the same rich error instead of diverging (or
  // silently continuing with a hole in a dataset).
  std::map<hash::Fingerprint, std::uint64_t> lost_mine;
  if (!own->failed()) {
    own->for_each_manifest([&](int owner, const chunk::Manifest& man) {
      for (const auto& entry : man.entries) {
        if (health.find(entry.fp) == nullptr) {
          lost_mine.emplace(entry.fp, pack_owner_length(owner, entry.length));
        }
      }
    });
  }
  const auto lost_all = simmpi::allreduce(
      comm, std::move(lost_mine),
      [](std::map<hash::Fingerprint, std::uint64_t> a,
         std::map<hash::Fingerprint, std::uint64_t> b) {
        a.merge(b);
        return a;
      });
  if (!lost_all.empty()) {
    const auto& [fp, packed] = *lost_all.begin();
    throw core::ChunkLostError(
        fp, static_cast<int>(packed >> 32), static_cast<int>(alive_ranks.size()),
        static_cast<int>(stores_.size()) - static_cast<int>(alive_ranks.size()));
  }

  // Classification + deterministic plan (the repair planner's rules:
  // deficits ordered by fingerprint, receivers via a rotating cursor over
  // alive non-holders, senders round-robin over surviving holders).
  std::vector<std::pair<hash::Fingerprint, const core::ReplicaHealthSet::Entry*>>
      deficits;
  for (const auto& [fp, e] : health.entries()) {
    if (static_cast<int>(e.count) >= keff) {
      stats.dedup_satisfied_chunks += 1;
      stats.dedup_satisfied_bytes += e.length;
    } else {
      deficits.emplace_back(fp, &e);
    }
  }
  std::sort(deficits.begin(), deficits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  comm.charge(static_cast<double>(health.size()) * cluster.merge_entry_cost_s);

  std::vector<ShipOrder> plan;
  std::vector<std::uint64_t> window_bytes(static_cast<std::size_t>(n), 0);
  std::size_t cursor = 0;
  for (const auto& [fp, e] : deficits) {
    const int need = keff - static_cast<int>(e->count);
    const std::size_t slot_bytes =
        kRecordHeaderBytes + (payload_mode ? e->length : 0);
    int picked = 0;
    std::size_t seen = 0;
    std::size_t si = 0;
    while (picked < need && seen < alive_ranks.size()) {
      const int r = alive_ranks[cursor % alive_ranks.size()];
      ++cursor;
      ++seen;
      if (std::binary_search(e->holders.begin(), e->holders.end(), r)) {
        continue;
      }
      ShipOrder s;
      s.fp = fp;
      s.length = e->length;
      s.sender = e->holders[si++ % e->holders.size()];
      s.receiver = r;
      s.offset = window_bytes[static_cast<std::size_t>(r)];
      window_bytes[static_cast<std::size_t>(r)] += slot_bytes;
      plan.push_back(s);
      ++picked;
    }
    stats.rereplicated_chunks += static_cast<std::uint64_t>(picked);
    stats.rereplicated_bytes += static_cast<std::uint64_t>(picked) * e->length;
  }

  // ---- Exchange: one window epoch, DUMP_OUTPUT's record layout -------------
  comm.fault_point("recover.exchange.mid");
  simmpi::Window win = comm.win_create(
      static_cast<std::size_t>(window_bytes[static_cast<std::size_t>(rank)]));
  std::vector<std::uint8_t> record;
  std::uint64_t sent_bytes = 0;
  for (const ShipOrder& s : plan) {
    if (s.sender != rank) continue;
    record.assign(kRecordHeaderBytes + (payload_mode ? s.length : 0), 0);
    std::memcpy(record.data(), s.fp.bytes().data(), hash::Fingerprint::kBytes);
    std::memcpy(record.data() + hash::Fingerprint::kBytes, &s.length,
                sizeof s.length);
    if (payload_mode) {
      const auto payload = own->get(s.fp);
      if (!payload.has_value()) {
        throw std::logic_error(
            "recover: health set names this rank as holder of a chunk its "
            "store does not have");
      }
      std::memcpy(record.data() + kRecordHeaderBytes, payload->data(),
                  payload->size());
    }
    win.put(s.receiver, static_cast<std::size_t>(s.offset), record,
            kRecordHeaderBytes + s.length);
    sent_bytes += s.length;
  }
  // Final epoch of the rebalance window: no RMA follows.
  win.fence(simmpi::kFenceNoSucceed);

  const auto region = win.local();
  std::uint64_t recv_bytes = 0;
  for (const ShipOrder& s : plan) {
    if (s.receiver != rank || own->failed()) continue;
    if (payload_mode) {
      own->put(s.fp, std::span<const std::uint8_t>{
                         region.data() + s.offset + kRecordHeaderBytes,
                         s.length});
    } else {
      own->put_accounted(s.fp, s.length);
    }
    recv_bytes += s.length;
  }
  win.free();
  comm.charge(static_cast<double>(recv_bytes) / cluster.mem_bandwidth_bps +
              static_cast<double>(recv_bytes) / cluster.hdd_write_bps);

  // ---- Align, aggregate, publish ------------------------------------------
  stats.orphan_bytes_total = simmpi::allreduce_sum(comm, stats.orphan_bytes);
  comm.barrier();
  stats.total_time_s = comm.clock().now() - t0;

  if (auto* t = comm.obs()) {
    t->event(obs::EventKind::kPhaseEnd, comm.clock().now(), "recover",
             info.dead.size(), static_cast<std::uint64_t>(n));
    auto& m = *t->metrics;
    m.add("recover.orphans_adopted", stats.orphans_adopted);
    m.add("recover.orphan_bytes", stats.orphan_bytes);
    m.add("recover.sent_bytes", sent_bytes);
    m.add("recover.recv_bytes", recv_bytes);
    if (rank == 0) {
      m.add("recover.count");
      m.add("recover.deaths", static_cast<std::uint64_t>(stats.deaths));
      m.add("recover.dedup_satisfied_chunks", stats.dedup_satisfied_chunks);
      m.add("recover.dedup_satisfied_bytes", stats.dedup_satisfied_bytes);
      m.add("recover.rereplicated_chunks", stats.rereplicated_chunks);
      m.add("recover.rereplicated_bytes", stats.rereplicated_bytes);
      m.set("recover.last.world_size", static_cast<double>(n));
      m.set("recover.last.k_effective", static_cast<double>(keff));
      m.set("recover.last.rereplicated_bytes",
            static_cast<double>(stats.rereplicated_bytes));
      m.set("recover.last.agreement_time_s", stats.agreement_time_s);
      m.set("recover.last.total_time_s", stats.total_time_s);
      m.observe("recover.latency_s", stats.total_time_s);
    }
  }
  return stats;
}

}  // namespace collrep::recover
