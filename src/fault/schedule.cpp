#include "fault/schedule.hpp"

#include <algorithm>
#include <cstring>

#include "obs/telemetry.hpp"

namespace collrep::fault {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(FaultAction a) noexcept {
  switch (a) {
    case FaultAction::kFailStore:
      return "fail_store";
    case FaultAction::kWipeStore:
      return "wipe_store";
    case FaultAction::kRecoverStore:
      return "recover_store";
    case FaultAction::kKillRank:
      return "kill_rank";
  }
  return "unknown";
}

void FaultSchedule::add(FaultEvent event) {
  if (event.point.empty()) {
    throw std::invalid_argument("FaultSchedule: event needs a point name");
  }
  if (event.target < 0) event.target = event.rank;
  events_.push_back(EventState{std::move(event), 0, false});
}

std::vector<int> FaultSchedule::add_random_store_failures(
    int nranks, int count, std::string point, std::uint64_t epoch,
    FaultAction action) {
  if (nranks < 1) {
    throw std::invalid_argument("FaultSchedule: nranks must be >= 1");
  }
  if (!rng_init_) {
    rng_state_ = seed_;
    rng_init_ = true;
  }
  std::vector<int> victims;
  const int quota = std::min(count, nranks);
  while (static_cast<int>(victims.size()) < quota) {
    const int v = static_cast<int>(splitmix64(rng_state_) %
                                   static_cast<std::uint64_t>(nranks));
    if (std::find(victims.begin(), victims.end(), v) != victims.end()) {
      continue;
    }
    victims.push_back(v);
    FaultEvent ev;
    ev.point = point;
    ev.rank = v;
    ev.target = v;
    ev.epoch = epoch;
    ev.action = action;
    add(std::move(ev));
  }
  return victims;
}

void FaultSchedule::arm(std::span<chunk::ChunkStore* const> stores) {
  stores_.assign(stores.begin(), stores.end());
}

void FaultSchedule::at_point(int rank, const char* point,
                             std::uint64_t epoch, double sim_now) {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    EventState& ev = events_[i];
    // Rank filter first: `fired`/`skipped` are mutable and owned by the
    // event's own rank thread, so no other thread may even read them.
    if (ev.event.rank != rank || ev.fired) continue;
    if (ev.event.epoch != simmpi::FaultHook::kAnyEpoch &&
        ev.event.epoch != epoch) {
      continue;
    }
    if (std::strcmp(ev.event.point.c_str(), point) != 0) continue;
    if (ev.skipped < ev.event.skip) {
      ++ev.skipped;
      continue;
    }
    fire(i, rank, point, epoch, sim_now);
  }
}

void FaultSchedule::fire(std::size_t index, int rank, const char* point,
                         std::uint64_t epoch, double sim_now) {
  EventState& ev = events_[index];
  ev.fired = true;
  const int target = ev.event.target;
  if (ev.event.action != FaultAction::kKillRank) {
    if (target < 0 || static_cast<std::size_t>(target) >= stores_.size() ||
        stores_[static_cast<std::size_t>(target)] == nullptr) {
      throw std::logic_error(
          "FaultSchedule: store action fired without an armed store for "
          "target " +
          std::to_string(target) + " (call arm() before the run)");
    }
  }

  {
    std::scoped_lock lk(fired_mu_);
    fired_.push_back(FiredFault{index, rank, target, epoch, ev.event.action,
                                ev.event.point});
  }
  if (telemetry_ != nullptr) {
    auto& rt = telemetry_->rank(rank);
    rt.event(obs::EventKind::kFault, sim_now, to_string(ev.event.action),
             static_cast<std::uint64_t>(target));
    auto& m = telemetry_->metrics();
    m.add("fault.injected");
    switch (ev.event.action) {
      case FaultAction::kFailStore:
      case FaultAction::kWipeStore:
        m.add("fault.store_failures");
        break;
      case FaultAction::kRecoverStore:
        m.add("fault.store_recoveries");
        break;
      case FaultAction::kKillRank:
        m.add("fault.rank_kills");
        break;
    }
  }

  chunk::ChunkStore* store =
      ev.event.action == FaultAction::kKillRank
          ? nullptr
          : stores_[static_cast<std::size_t>(target)];
  switch (ev.event.action) {
    case FaultAction::kFailStore:
      store->fail();
      break;
    case FaultAction::kWipeStore:
      store->wipe();
      store->fail();
      break;
    case FaultAction::kRecoverStore:
      store->recover();
      break;
    case FaultAction::kKillRank:
      throw RankKilledError(rank, point);
  }
}

std::vector<FiredFault> FaultSchedule::fired() const {
  std::scoped_lock lk(fired_mu_);
  return fired_;
}

}  // namespace collrep::fault
