// FaultSchedule: deterministic, seeded fault injection for the collective
// I/O pipeline (the concrete simmpi::FaultHook implementation).
//
// The schedule is a list of FaultEvents, each pinned to a named injection
// point ("dump.exchange.mid", "win.fence", "coll.pre", ...), a triggering
// rank, and optionally a checkpoint epoch and a skip count of earlier
// matching visits.  When a rank thread reaches a matching point the event
// fires exactly once: it fails / wipes / recovers a store armed via arm(),
// or throws RankKilledError to kill the rank itself.  By default the run
// then aborts and Runtime::run() rethrows (fail-stop without fault-
// tolerant collectives; recovery goes through restore + repair); with
// RuntimeOptions::contain_failures the kill is absorbed by the runtime and
// the survivors shrink and continue (see recover::RecoveryService).
//
// Determinism: events fire on the target rank's own thread at program
// points that are deterministic per rank, so the same schedule over the
// same program yields the same failure pattern — and with the seeded
// helper, the same seed yields the same victims.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "chunk/store.hpp"
#include "simmpi/runtime.hpp"

namespace collrep::obs {
class Telemetry;
}  // namespace collrep::obs

namespace collrep::fault {

// Thrown on the consulting rank's thread by a kKillRank event.  Derives
// from simmpi::RankFailure so the runtime can recognize the fail-stop
// death: without containment it aborts the run and Runtime::run()
// rethrows; with RuntimeOptions::contain_failures the rank simply dies
// and the survivors carry on.
class RankKilledError : public simmpi::RankFailure {
 public:
  RankKilledError(int rank, const std::string& point)
      : simmpi::RankFailure(rank, "fault: rank " + std::to_string(rank) +
                                      " killed at " + point) {}
};

enum class FaultAction : std::uint8_t {
  kFailStore = 0,    // stores[target]->fail(): device goes dark
  kWipeStore,        // stores[target]->wipe() + fail(): blank replacement
  kRecoverStore,     // stores[target]->recover(): transient outage ends
  kKillRank,         // throw RankKilledError on the consulting rank
};

[[nodiscard]] const char* to_string(FaultAction a) noexcept;

struct FaultEvent {
  std::string point;  // injection point name, e.g. "dump.exchange.mid"
  int rank = 0;       // consulting rank whose visit triggers the event
  // Store index acted on by the store actions; -1 means "the triggering
  // rank's own store".  A target other than `rank` races with the target
  // rank's thread unless the program synchronizes around the point; the
  // provided tests and benches always use target == rank.
  int target = -1;
  // Checkpoint epoch the visit must carry; kAnyEpoch matches every visit
  // (including epoch-less sites like "coll.pre" / "win.fence").
  std::uint64_t epoch = simmpi::FaultHook::kAnyEpoch;
  // Number of otherwise-matching visits to let pass before firing.
  std::uint64_t skip = 0;
  FaultAction action = FaultAction::kFailStore;
};

// One fired event, in firing order (the log is shared by all ranks).
struct FiredFault {
  std::size_t event_index = 0;  // index into the schedule's event list
  int rank = 0;
  int target = 0;
  std::uint64_t epoch = 0;  // epoch carried by the triggering visit
  FaultAction action = FaultAction::kFailStore;
  std::string point;
};

class FaultSchedule final : public simmpi::FaultHook {
 public:
  explicit FaultSchedule(std::uint64_t seed = 0) noexcept : seed_(seed) {}

  // Schedule construction; must not be called while a run is in flight.
  void add(FaultEvent event);
  // Seeded helper: schedules `count` distinct store victims out of
  // `nranks` (chosen by the constructor seed's splitmix64 stream), each
  // firing on its own rank at (point, epoch).  Returns the victims.
  std::vector<int> add_random_store_failures(
      int nranks, int count, std::string point,
      std::uint64_t epoch = simmpi::FaultHook::kAnyEpoch,
      FaultAction action = FaultAction::kFailStore);

  // Arms the store actions: stores[i] is rank i's device.  The span's
  // pointees must outlive the runs this schedule observes.
  void arm(std::span<chunk::ChunkStore* const> stores);
  // Optional observability: fired events are counted under "fault.*"
  // metrics and recorded as kFault trace events on the triggering rank.
  void attach(obs::Telemetry* telemetry) noexcept { telemetry_ = telemetry; }

  void at_point(int rank, const char* point, std::uint64_t epoch,
                double sim_now) override;

  // Snapshot of the fired log (locking copy; stable once a run ended).
  [[nodiscard]] std::vector<FiredFault> fired() const;
  [[nodiscard]] std::size_t event_count() const noexcept {
    return events_.size();
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  struct EventState {
    FaultEvent event;
    std::uint64_t skipped = 0;  // matching visits consumed so far
    bool fired = false;
  };

  void fire(std::size_t index, int rank, const char* point,
            std::uint64_t epoch, double sim_now);

  std::uint64_t seed_;
  std::uint64_t rng_state_ = 0;
  bool rng_init_ = false;
  // Immutable during a run; each element is only mutated by its own
  // event.rank thread, so no lock is needed on the hot path.
  std::vector<EventState> events_;
  std::vector<chunk::ChunkStore*> stores_;
  obs::Telemetry* telemetry_ = nullptr;

  mutable std::mutex fired_mu_;
  std::vector<FiredFault> fired_;
};

}  // namespace collrep::fault
