// CheckpointRuntime: the AC-FTE-style checkpoint-restart driver (paper §IV).
//
// The application runs its iteration loop and calls maybe_checkpoint(i)
// at every synchronization point; when the schedule fires, the runtime
// snapshots the tracked arena (all live application memory) and hands it
// to DUMP_OUTPUT — exactly how the paper wires AC-FTE's transparent page
// capture to the proposed collective write primitive.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/dump.hpp"
#include "core/repair.hpp"
#include "core/restore.hpp"
#include "ftrt/tracked_arena.hpp"
#include "recover/service.hpp"

namespace collrep::ftrt {

// What the runtime does when a dump comes back degraded (a store was down
// and the achieved replication fell below K; see DumpStats::degraded).
enum class DegradedPolicy : std::uint8_t {
  kAbort = 0,  // throw DegradedDumpError (strict: no weak checkpoints)
  kAccept,     // keep the degraded checkpoint as-is (paper baseline: the
               // next scheduled dump re-replicates naturally)
  kRepair,     // run core::repair_replicas to top the replicas back to K
  kShrink,     // survive rank deaths: when a dump dies with RankDeadError
               // (RuntimeOptions::contain_failures), run the configured
               // recover::RecoveryService and re-dump in the shrunken
               // world; degraded-but-complete dumps are kept as-is (the
               // recovery rebalance already topped surviving chunks up)
};

class DegradedDumpError : public std::runtime_error {
 public:
  explicit DegradedDumpError(const core::DumpStats& stats)
      : std::runtime_error(
            "checkpoint degraded on rank " + std::to_string(stats.rank) +
            ": k_achieved_min=" +
            std::to_string(stats.k_achieved_min) + " < k_effective=" +
            std::to_string(stats.k_effective)),
        stats_(stats) {}

  [[nodiscard]] const core::DumpStats& stats() const noexcept {
    return stats_;
  }

 private:
  core::DumpStats stats_;
};

struct CheckpointConfig {
  core::DumpConfig dump;
  int replication_factor = 3;
  // Checkpoint every `interval` iterations (0 disables the schedule; use
  // checkpoint_now() for manual control).
  int interval = 0;
  int first_iteration = 0;  // first iteration eligible for the schedule
  DegradedPolicy on_degraded = DegradedPolicy::kAbort;
  // Degraded dumps beyond the first: re-dump under a fresh epoch up to
  // this many extra times before applying on_degraded (useful when the
  // outage is transient and the store recovers between attempts; 0 means
  // the policy applies to the first degraded attempt directly).
  int max_dump_retries = 0;
  // Required by DegradedPolicy::kShrink: the recovery service driven when
  // a dump observes a rank death.  Must outlive the runtime.
  recover::RecoveryService* recovery = nullptr;
};

class CheckpointRuntime {
 public:
  CheckpointRuntime(simmpi::Comm& comm, chunk::ChunkStore& store,
                    TrackedArena& arena, CheckpointConfig config)
      : comm_(comm), store_(store), arena_(arena), config_(config) {}

  // Collective when it fires (all ranks share the schedule, so either all
  // or none enter dump_output).  Returns the stats when a checkpoint was
  // taken this iteration.  `stores` is only needed by DegradedPolicy::
  // kRepair (the scrub is collective over every rank's device).
  std::optional<core::DumpStats> maybe_checkpoint(
      int iteration, std::span<chunk::ChunkStore* const> stores = {}) {
    if (config_.interval <= 0 || iteration < config_.first_iteration ||
        (iteration - config_.first_iteration) % config_.interval != 0) {
      return std::nullopt;
    }
    return checkpoint_now(stores);
  }

  // Collective: snapshot + dump, unconditionally.  A degraded dump (some
  // store was down; DumpStats::degraded) is first retried under a fresh
  // epoch up to max_dump_retries times, then handled per on_degraded:
  // abort (throw), accept as-is, or repair the shortfall in place.  The
  // degraded flag comes out of a collective audit, so every rank takes the
  // same branch.
  core::DumpStats checkpoint_now(
      std::span<chunk::ChunkStore* const> stores = {}) {
    core::DumpStats stats = shielded_dump_attempt();
    for (int retry = 0; stats.degraded && retry < config_.max_dump_retries;
         ++retry) {
      stats = shielded_dump_attempt();
    }
    if (stats.degraded) {
      switch (config_.on_degraded) {
        case DegradedPolicy::kAbort:
          throw DegradedDumpError(stats);
        case DegradedPolicy::kAccept:
        case DegradedPolicy::kShrink:
          // kShrink keeps a degraded-but-complete dump: the recovery
          // rebalance already restored K_eff for everything that survived,
          // and the next scheduled dump re-replicates naturally.
          break;
        case DegradedPolicy::kRepair:
          if (static_cast<int>(stores.size()) != comm_.size()) {
            throw std::logic_error(
                "checkpoint_now: DegradedPolicy::kRepair needs the stores "
                "span (one entry per rank)");
          }
          last_repair_ =
              core::repair_replicas(comm_, stores,
                                    config_.replication_factor);
          break;
      }
    }
    history_.push_back(stats);
    return stats;
  }

  // Stats of the most recent kRepair scrub, if any ran.
  [[nodiscard]] const std::optional<core::RepairStats>& last_repair()
      const noexcept {
    return last_repair_;
  }

  // Stats of the most recent shrink recovery, if any ran (kShrink).
  [[nodiscard]] const std::optional<recover::RecoveryStats>& last_recovery()
      const noexcept {
    return last_recovery_;
  }

  // Restart path: rebuild this rank's most recent checkpoint from the
  // surviving stores (see core::restore_rank for failure semantics).
  [[nodiscard]] core::RestoreResult restore_latest(
      std::span<chunk::ChunkStore* const> stores) const {
    return core::restore_rank(stores, comm_.rank());
  }

  [[nodiscard]] const std::vector<core::DumpStats>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] std::uint64_t checkpoints_taken() const noexcept {
    return history_.size();
  }

 private:
  core::DumpStats dump_attempt() {
    core::DumpConfig cfg = config_.dump;
    cfg.epoch = next_epoch_++;
    core::Dumper dumper(comm_, store_, cfg);
    return dumper.dump_output(arena_.snapshot(), config_.replication_factor);
  }

  // Under kShrink a dump that dies with RankDeadError (a rank was killed
  // and the runtime contained it) is recovered and re-attempted in the
  // shrunken world under a fresh epoch.  Every survivor takes the same
  // path: the containment protocol raises RankDeadError uniformly at the
  // collective where the death surfaced.  Each round absorbs at least one
  // death, so the loop is bounded by the pre-loop world size.
  core::DumpStats shielded_dump_attempt() {
    if (config_.on_degraded != DegradedPolicy::kShrink) {
      return dump_attempt();
    }
    if (config_.recovery == nullptr) {
      throw std::logic_error(
          "checkpoint_now: DegradedPolicy::kShrink needs a "
          "RecoveryService (CheckpointConfig::recovery)");
    }
    const int bound = comm_.size() + 1;
    for (int round = 0; round < bound; ++round) {
      try {
        return dump_attempt();
      } catch (const simmpi::RankDeadError&) {
        last_recovery_ = config_.recovery->recover_world(comm_);
      }
    }
    throw std::logic_error(
        "checkpoint_now: shrink recovery did not converge");
  }

  simmpi::Comm& comm_;
  chunk::ChunkStore& store_;
  TrackedArena& arena_;
  CheckpointConfig config_;
  std::uint64_t next_epoch_ = 1;
  std::vector<core::DumpStats> history_;
  std::optional<core::RepairStats> last_repair_;
  std::optional<recover::RecoveryStats> last_recovery_;
};

// Deterministic failure injection for the restart tests: kills up to
// `count` distinct stores (never more than the surviving-majority bound
// the caller asks for) using a splitmix64 stream.
class FailureInjector {
 public:
  explicit FailureInjector(std::uint64_t seed) : state_(seed) {}

  std::vector<int> kill_stores(std::span<chunk::ChunkStore* const> stores,
                               int count) {
    std::vector<int> victims;
    const int n = static_cast<int>(stores.size());
    // The quota is bounded by the stores still alive, not by n: with
    // already-failed stores in the span, an n-based bound would spin
    // forever once every live store is exhausted.
    int live = 0;
    for (const auto* s : stores) live += s->failed() ? 0 : 1;
    const int quota = count < live ? count : live;
    while (static_cast<int>(victims.size()) < quota) {
      const int v = static_cast<int>(next() % static_cast<std::uint64_t>(n));
      if (!stores[static_cast<std::size_t>(v)]->failed()) {
        stores[static_cast<std::size_t>(v)]->fail();
        victims.push_back(v);
      }
    }
    return victims;
  }

  static void heal_all(std::span<chunk::ChunkStore* const> stores) {
    for (auto* s : stores) s->recover();
  }

 private:
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t state_;
};

}  // namespace collrep::ftrt
