// CheckpointRuntime: the AC-FTE-style checkpoint-restart driver (paper §IV).
//
// The application runs its iteration loop and calls maybe_checkpoint(i)
// at every synchronization point; when the schedule fires, the runtime
// snapshots the tracked arena (all live application memory) and hands it
// to DUMP_OUTPUT — exactly how the paper wires AC-FTE's transparent page
// capture to the proposed collective write primitive.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/dump.hpp"
#include "core/restore.hpp"
#include "ftrt/tracked_arena.hpp"

namespace collrep::ftrt {

struct CheckpointConfig {
  core::DumpConfig dump;
  int replication_factor = 3;
  // Checkpoint every `interval` iterations (0 disables the schedule; use
  // checkpoint_now() for manual control).
  int interval = 0;
  int first_iteration = 0;  // first iteration eligible for the schedule
};

class CheckpointRuntime {
 public:
  CheckpointRuntime(simmpi::Comm& comm, chunk::ChunkStore& store,
                    TrackedArena& arena, CheckpointConfig config)
      : comm_(comm), store_(store), arena_(arena), config_(config) {}

  // Collective when it fires (all ranks share the schedule, so either all
  // or none enter dump_output).  Returns the stats when a checkpoint was
  // taken this iteration.
  std::optional<core::DumpStats> maybe_checkpoint(int iteration) {
    if (config_.interval <= 0 || iteration < config_.first_iteration ||
        (iteration - config_.first_iteration) % config_.interval != 0) {
      return std::nullopt;
    }
    return checkpoint_now();
  }

  // Collective: snapshot + dump, unconditionally.
  core::DumpStats checkpoint_now() {
    core::DumpConfig cfg = config_.dump;
    cfg.epoch = next_epoch_++;
    core::Dumper dumper(comm_, store_, cfg);
    const auto stats =
        dumper.dump_output(arena_.snapshot(), config_.replication_factor);
    history_.push_back(stats);
    return stats;
  }

  // Restart path: rebuild this rank's most recent checkpoint from the
  // surviving stores (see core::restore_rank for failure semantics).
  [[nodiscard]] core::RestoreResult restore_latest(
      std::span<chunk::ChunkStore* const> stores) const {
    return core::restore_rank(stores, comm_.rank());
  }

  [[nodiscard]] const std::vector<core::DumpStats>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] std::uint64_t checkpoints_taken() const noexcept {
    return history_.size();
  }

 private:
  simmpi::Comm& comm_;
  chunk::ChunkStore& store_;
  TrackedArena& arena_;
  CheckpointConfig config_;
  std::uint64_t next_epoch_ = 1;
  std::vector<core::DumpStats> history_;
};

// Deterministic failure injection for the restart tests: kills up to
// `count` distinct stores (never more than the surviving-majority bound
// the caller asks for) using a splitmix64 stream.
class FailureInjector {
 public:
  explicit FailureInjector(std::uint64_t seed) : state_(seed) {}

  std::vector<int> kill_stores(std::span<chunk::ChunkStore* const> stores,
                               int count) {
    std::vector<int> victims;
    const int n = static_cast<int>(stores.size());
    while (static_cast<int>(victims.size()) < count &&
           static_cast<int>(victims.size()) < n) {
      const int v = static_cast<int>(next() % static_cast<std::uint64_t>(n));
      if (!stores[static_cast<std::size_t>(v)]->failed()) {
        stores[static_cast<std::size_t>(v)]->fail();
        victims.push_back(v);
      }
    }
    return victims;
  }

  static void heal_all(std::span<chunk::ChunkStore* const> stores) {
    for (auto* s : stores) s->recover();
  }

 private:
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t state_;
};

}  // namespace collrep::ftrt
