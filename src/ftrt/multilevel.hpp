// Multi-level checkpointing (related work [11], SCR/FTI style) and the
// decoupled parallel file system the paper's introduction argues against.
//
// Three levels, cheapest first:
//   L1  local-only dump (survives process failure, not device loss),
//   L2  partner replication through DUMP_OUTPUT (survives K-1 device
//       losses — the paper's subject),
//   L3  flush to a decoupled PFS (GPFS-like: survives everything, but all
//       nodes share one aggregate ingest bandwidth, which is why collective
//       dumps to it explode at scale — the paper's motivation, quantified
//       by bench/motivation_pfs_dump).
// Restore prefers the newest surviving level.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "core/dump.hpp"
#include "core/restore.hpp"
#include "ftrt/tracked_arena.hpp"
#include "simmpi/collectives.hpp"

namespace collrep::ftrt {

// Decoupled storage system shared by the whole machine (GPFS stand-in).
// Content addressed like ChunkStore, but a single instance serves every
// rank and its ingest bandwidth is an aggregate, not per node.
class PfsStore {
 public:
  struct Model {
    double aggregate_write_bps = 1.0e9;  // shared by all nodes
    double aggregate_read_bps = 1.5e9;
    double request_latency_s = 1.0e-3;
  };

  PfsStore() : model_() {}
  explicit PfsStore(const Model& model) : model_(model) {}

  [[nodiscard]] const Model& model() const noexcept { return model_; }

  bool put(const hash::Fingerprint& fp,
           std::span<const std::uint8_t> payload) {
    std::scoped_lock lk(mu_);
    auto [it, inserted] = chunks_.try_emplace(fp);
    if (!inserted) return false;
    it->second.assign(payload.begin(), payload.end());
    stored_bytes_ += payload.size();
    return true;
  }

  [[nodiscard]] std::optional<std::span<const std::uint8_t>> get(
      const hash::Fingerprint& fp) const {
    std::scoped_lock lk(mu_);
    const auto it = chunks_.find(fp);
    if (it == chunks_.end()) return std::nullopt;
    return std::span<const std::uint8_t>{it->second};
  }

  void put_manifest(chunk::Manifest manifest) {
    std::scoped_lock lk(mu_);
    auto& slot = manifests_[manifest.owner_rank];
    if (slot.has_value() && slot->epoch > manifest.epoch) return;
    slot = std::move(manifest);
  }

  [[nodiscard]] std::optional<chunk::Manifest> manifest_for(int rank) const {
    std::scoped_lock lk(mu_);
    const auto it = manifests_.find(rank);
    if (it == manifests_.end() || !it->second.has_value()) {
      return std::nullopt;
    }
    return it->second;
  }

  [[nodiscard]] std::uint64_t stored_bytes() const noexcept {
    std::scoped_lock lk(mu_);
    return stored_bytes_;
  }

 private:
  Model model_;
  mutable std::mutex mu_;
  std::unordered_map<hash::Fingerprint, std::vector<std::uint8_t>,
                     hash::FingerprintHash>
      chunks_;
  std::map<int, std::optional<chunk::Manifest>> manifests_;
  std::uint64_t stored_bytes_ = 0;
};

// Collective PFS dump: every rank writes its (locally deduplicated) chunks
// and manifest to the shared store; the phase lasts total-bytes over the
// aggregate ingest bandwidth.  Returns the simulated dump time (aligned).
struct PfsDumpStats {
  std::uint64_t written_bytes = 0;  // this rank's contribution
  double total_time_s = 0.0;        // aligned across ranks
};

[[nodiscard]] PfsDumpStats pfs_dump(simmpi::Comm& comm, PfsStore& pfs,
                                    const chunk::Dataset& buffer,
                                    std::size_t chunk_bytes,
                                    hash::HashKind hash_kind,
                                    std::uint64_t epoch);

// Restores `rank` from the PFS alone (L3 path).
[[nodiscard]] core::RestoreResult pfs_restore(const PfsStore& pfs, int rank);

// ---- the multi-level driver ---------------------------------------------------

struct MultiLevelConfig {
  core::DumpConfig dump;       // shared chunking/fingerprint settings
  int replication_factor = 3;  // L2
  int l1_interval = 5;         // local-only, cheap and frequent
  int l2_interval = 20;        // partner replication
  int l3_interval = 60;        // PFS flush, rare
};

enum class CheckpointLevel : std::uint8_t { kNone, kL1, kL2, kL3 };

struct MultiLevelStats {
  CheckpointLevel level = CheckpointLevel::kNone;
  double time_s = 0.0;
  std::uint64_t epoch = 0;
};

class MultiLevelCheckpoint {
 public:
  MultiLevelCheckpoint(simmpi::Comm& comm, chunk::ChunkStore& local_store,
                       PfsStore& pfs, TrackedArena& arena,
                       MultiLevelConfig config)
      : comm_(comm),
        local_store_(local_store),
        pfs_(pfs),
        arena_(arena),
        config_(config) {}

  // Collective.  Fires the *highest* due level (an L3 iteration implies
  // the data is also locally protected — the flush writes through L2).
  MultiLevelStats maybe_checkpoint(int iteration);

  // Restore this rank's newest checkpoint, preferring the cheapest
  // surviving level: local store -> partner stores -> PFS.
  [[nodiscard]] core::RestoreResult restore_latest(
      std::span<chunk::ChunkStore* const> stores) const;

  [[nodiscard]] std::uint64_t epochs_taken() const noexcept {
    return next_epoch_ - 1;
  }

 private:
  [[nodiscard]] static bool due(int iteration, int interval) noexcept {
    return interval > 0 && iteration > 0 && iteration % interval == 0;
  }

  simmpi::Comm& comm_;
  chunk::ChunkStore& local_store_;
  PfsStore& pfs_;
  TrackedArena& arena_;
  MultiLevelConfig config_;
  std::uint64_t next_epoch_ = 1;
};

}  // namespace collrep::ftrt
