// TrackedArena: page-tracking allocator standing in for the paper's
// jemalloc-based transparent memory capture (§IV).
//
// AC-FTE's transparent mode snapshots every memory page the application
// allocated; TrackedArena provides the same artifact without interposing
// on malloc: applications allocate their arrays from the arena, and
// snapshot() returns a chunk::Dataset whose segments are the live
// page runs — page-aligned, page-granular, in deterministic order.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "chunk/dataset.hpp"

namespace collrep::ftrt {

class TrackedArena {
 public:
  // `block_pages` is the allocation granule the arena requests from the
  // system (jemalloc chunk analogue).
  explicit TrackedArena(std::size_t page_bytes = 4096,
                        std::size_t block_pages = 1024);

  TrackedArena(const TrackedArena&) = delete;
  TrackedArena& operator=(const TrackedArena&) = delete;

  // Allocates `bytes` rounded up to whole pages; zero-initialized.
  [[nodiscard]] std::span<std::uint8_t> allocate(std::size_t bytes);

  template <class T>
  [[nodiscard]] std::span<T> allocate_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena arrays must be trivially copyable (checkpointable)");
    auto raw = allocate(count * sizeof(T));
    return {reinterpret_cast<T*>(raw.data()), count};
  }

  // Releases a region previously returned by allocate (whole region only).
  void deallocate(std::span<const std::uint8_t> region);

  // The checkpoint payload: every live page, grouped into contiguous runs.
  [[nodiscard]] chunk::Dataset snapshot() const;

  [[nodiscard]] std::size_t page_bytes() const noexcept { return page_bytes_; }
  [[nodiscard]] std::size_t live_pages() const noexcept { return live_pages_; }
  [[nodiscard]] std::uint64_t live_bytes() const noexcept {
    return static_cast<std::uint64_t>(live_pages_) * page_bytes_;
  }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> storage;
    std::vector<bool> used;  // per page
  };

  [[nodiscard]] std::span<std::uint8_t> carve(Block& block,
                                              std::size_t first_page,
                                              std::size_t pages);

  std::size_t page_bytes_;
  std::size_t block_pages_;
  std::vector<Block> blocks_;
  std::size_t live_pages_ = 0;
};

}  // namespace collrep::ftrt
