#include "ftrt/multilevel.hpp"

#include "core/local_dedup.hpp"

namespace collrep::ftrt {

PfsDumpStats pfs_dump(simmpi::Comm& comm, PfsStore& pfs,
                      const chunk::Dataset& buffer, std::size_t chunk_bytes,
                      hash::HashKind hash_kind, std::uint64_t epoch) {
  const auto& hasher = hash::hasher_for(hash_kind);
  comm.barrier();
  const double t0 = comm.clock().now();

  const chunk::Chunker chunker(buffer, chunk_bytes);
  const auto local = core::local_dedup(chunker, hasher);
  comm.charge(static_cast<double>(local.total_bytes) /
              hasher.modeled_bytes_per_second());

  PfsDumpStats stats;
  for (const auto chunk_index : local.unique_chunks) {
    const auto payload = chunker.bytes(chunk_index);
    pfs.put(local.chunk_fps[chunk_index], payload);
    stats.written_bytes += payload.size();
  }
  chunk::Manifest manifest;
  manifest.owner_rank = comm.rank();
  manifest.epoch = epoch;
  for (std::size_t i = 0; i < buffer.segment_count(); ++i) {
    manifest.segment_sizes.push_back(buffer.segment(i).size());
  }
  for (std::size_t i = 0; i < chunker.count(); ++i) {
    manifest.entries.push_back(
        chunk::ManifestEntry{local.chunk_fps[i], chunker.ref(i).length});
  }
  pfs.put_manifest(std::move(manifest));
  stats.written_bytes += chunk::manifest_wire_bytes(manifest);

  // The decoupled store ingests the *sum* of all ranks' writes at one
  // aggregate bandwidth — the scalability wall the paper's intro cites.
  const auto total = simmpi::allreduce_sum(comm, stats.written_bytes);
  comm.charge(pfs.model().request_latency_s +
              static_cast<double>(total) / pfs.model().aggregate_write_bps);
  comm.barrier();
  stats.total_time_s = comm.clock().now() - t0;

  if (auto* t = comm.obs()) {
    t->event(obs::EventKind::kStoreCommit, comm.clock().now(), "pfs_commit",
             stats.written_bytes);
    auto& m = *t->metrics;
    m.add("pfs.written_bytes", stats.written_bytes);
    if (comm.rank() == 0) {
      m.add("pfs.dumps");
      m.set("pfs.last.total_time_s", stats.total_time_s);
      m.set("pfs.last.total_written_bytes", static_cast<double>(total));
    }
  }
  return stats;
}

core::RestoreResult pfs_restore(const PfsStore& pfs, int rank) {
  const auto manifest = pfs.manifest_for(rank);
  // The PFS is one logical store: 1 consulted, 0 failed.
  if (!manifest.has_value()) throw core::ManifestLostError(rank, 1, 0);

  core::RestoreResult out;
  out.segments.reserve(manifest->segment_sizes.size());
  for (const auto size : manifest->segment_sizes) {
    out.segments.emplace_back();
    out.segments.back().reserve(size);
  }
  std::size_t seg = 0;
  for (const auto& entry : manifest->entries) {
    while (seg < out.segments.size() &&
           out.segments[seg].size() == manifest->segment_sizes[seg]) {
      ++seg;
    }
    if (seg == out.segments.size()) {
      throw std::runtime_error("pfs_restore: manifest exceeds segments");
    }
    const auto payload = pfs.get(entry.fp);
    if (!payload.has_value()) {
      throw core::ChunkLostError(entry.fp, rank, 1, 0);
    }
    if (payload->size() != entry.length) {
      throw std::runtime_error("pfs_restore: chunk length mismatch");
    }
    out.segments[seg].insert(out.segments[seg].end(), payload->begin(),
                             payload->end());
    ++out.chunks_from_remote_stores;
    out.bytes_from_remote_stores += payload->size();
  }
  return out;
}

MultiLevelStats MultiLevelCheckpoint::maybe_checkpoint(int iteration) {
  MultiLevelStats stats;
  const bool l3 = due(iteration, config_.l3_interval);
  const bool l2 = l3 || due(iteration, config_.l2_interval);
  const bool l1 = l2 || due(iteration, config_.l1_interval);
  if (!l1) return stats;

  stats.epoch = next_epoch_++;
  const auto snapshot = arena_.snapshot();
  const double t0 = comm_.clock().now();

  core::DumpConfig cfg = config_.dump;
  cfg.epoch = stats.epoch;
  if (l2) {
    // Partner replication (the paper's DUMP_OUTPUT).
    core::Dumper dumper(comm_, local_store_, cfg);
    (void)dumper.dump_output(snapshot, config_.replication_factor);
    stats.level = CheckpointLevel::kL2;
  } else {
    // L1: strictly local — every locally unique chunk stays on this
    // rank's device (coll-dedup would discard chunks covered remotely,
    // which breaks the level's isolation guarantee).
    core::DumpConfig l1_cfg = cfg;
    l1_cfg.strategy = core::Strategy::kLocalDedup;
    core::Dumper dumper(comm_, local_store_, l1_cfg);
    (void)dumper.dump_output(snapshot, 1);
    stats.level = CheckpointLevel::kL1;
  }
  if (l3) {
    (void)pfs_dump(comm_, pfs_, snapshot, cfg.chunk_bytes, cfg.hash_kind,
                   stats.epoch);
    stats.level = CheckpointLevel::kL3;
  }
  stats.time_s = comm_.clock().now() - t0;

  if (auto* t = comm_.obs(); t != nullptr && comm_.rank() == 0) {
    auto& m = *t->metrics;
    switch (stats.level) {
      case CheckpointLevel::kL1:
        m.add("mlc.l1_checkpoints");
        break;
      case CheckpointLevel::kL2:
        m.add("mlc.l2_checkpoints");
        break;
      case CheckpointLevel::kL3:
        m.add("mlc.l3_checkpoints");
        break;
      case CheckpointLevel::kNone:
        break;
    }
    m.observe("mlc.checkpoint_time_s", stats.time_s);
  }
  return stats;
}

core::RestoreResult MultiLevelCheckpoint::restore_latest(
    std::span<chunk::ChunkStore* const> stores) const {
  // Cheapest first: the local/partner path already prefers the own store;
  // fall back to the PFS when the replication level cannot serve.
  try {
    return core::restore_rank(stores, comm_.rank());
  } catch (const std::exception&) {
    return pfs_restore(pfs_, comm_.rank());
  }
}

}  // namespace collrep::ftrt
