#include "ftrt/tracked_arena.hpp"

#include <cstring>

namespace collrep::ftrt {

TrackedArena::TrackedArena(std::size_t page_bytes, std::size_t block_pages)
    : page_bytes_(page_bytes), block_pages_(block_pages) {
  if (page_bytes == 0 || block_pages == 0) {
    throw std::invalid_argument("TrackedArena: sizes must be positive");
  }
}

std::span<std::uint8_t> TrackedArena::carve(Block& block,
                                            std::size_t first_page,
                                            std::size_t pages) {
  for (std::size_t p = first_page; p < first_page + pages; ++p) {
    block.used[p] = true;
  }
  live_pages_ += pages;
  std::uint8_t* base = block.storage.get() + first_page * page_bytes_;
  std::memset(base, 0, pages * page_bytes_);
  return {base, pages * page_bytes_};
}

std::span<std::uint8_t> TrackedArena::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  const std::size_t pages = (bytes + page_bytes_ - 1) / page_bytes_;

  if (pages <= block_pages_) {
    // First-fit run search over existing blocks.
    for (auto& block : blocks_) {
      std::size_t run = 0;
      for (std::size_t p = 0; p < block.used.size(); ++p) {
        run = block.used[p] ? 0 : run + 1;
        if (run == pages) return carve(block, p + 1 - pages, pages);
      }
    }
  }

  // New block (oversized allocations get a dedicated block).
  const std::size_t new_pages = std::max(pages, block_pages_);
  Block block;
  block.storage = std::make_unique<std::uint8_t[]>(new_pages * page_bytes_);
  block.used.assign(new_pages, false);
  blocks_.push_back(std::move(block));
  return carve(blocks_.back(), 0, pages);
}

void TrackedArena::deallocate(std::span<const std::uint8_t> region) {
  for (auto& block : blocks_) {
    const std::uint8_t* begin = block.storage.get();
    const std::uint8_t* end = begin + block.used.size() * page_bytes_;
    if (region.data() < begin || region.data() >= end) continue;
    const auto offset = static_cast<std::size_t>(region.data() - begin);
    if (offset % page_bytes_ != 0) {
      throw std::invalid_argument("TrackedArena: region not page aligned");
    }
    const std::size_t first = offset / page_bytes_;
    const std::size_t pages = (region.size() + page_bytes_ - 1) / page_bytes_;
    for (std::size_t p = first; p < first + pages; ++p) {
      if (!block.used[p]) {
        throw std::invalid_argument("TrackedArena: double free");
      }
      block.used[p] = false;
    }
    live_pages_ -= pages;
    return;
  }
  throw std::invalid_argument("TrackedArena: region not from this arena");
}

chunk::Dataset TrackedArena::snapshot() const {
  chunk::Dataset ds;
  for (const auto& block : blocks_) {
    std::size_t run_start = 0;
    bool in_run = false;
    for (std::size_t p = 0; p <= block.used.size(); ++p) {
      const bool used = p < block.used.size() && block.used[p];
      if (used && !in_run) {
        run_start = p;
        in_run = true;
      } else if (!used && in_run) {
        ds.add_segment({block.storage.get() + run_start * page_bytes_,
                        (p - run_start) * page_bytes_});
        in_run = false;
      }
    }
  }
  return ds;
}

}  // namespace collrep::ftrt
