// Replication planning: load vectors, load-aware rank shuffling
// (Algorithm 2) and single-sided window offset calculation (Algorithm 3).
//
// Terminology (paper §III-C): every rank has K-1 "partners" — the next
// K-1 ranks in *shuffled* order.  Load[0] counts chunks stored locally,
// Load[p] (1 <= p < K) counts chunks sent to the p-th partner.  SendMatrix
// is the allgathered N x K load table every rank uses to derive, without
// further communication, both the shuffle and the put offsets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simtime/cluster.hpp"

namespace collrep::core {

// N x K chunk-count table; row = rank (original id), column = slot.
class SendMatrix {
 public:
  SendMatrix() = default;
  SendMatrix(int nranks, int k)
      : n_(nranks), k_(k),
        chunks_(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(k),
                0) {}

  [[nodiscard]] int nranks() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }

  [[nodiscard]] std::uint64_t& at(int rank, int slot) {
    return chunks_[static_cast<std::size_t>(rank) * static_cast<std::size_t>(k_) +
                   static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] std::uint64_t at(int rank, int slot) const {
    return chunks_[static_cast<std::size_t>(rank) * static_cast<std::size_t>(k_) +
                   static_cast<std::size_t>(slot)];
  }

  // Chunks rank `rank` sends to partners (slots 1..K-1).
  [[nodiscard]] std::uint64_t total_send(int rank) const {
    std::uint64_t sum = 0;
    for (int p = 1; p < k_; ++p) sum += at(rank, p);
    return sum;
  }

  [[nodiscard]] std::span<const std::uint64_t> row(int rank) const {
    return {chunks_.data() +
                static_cast<std::size_t>(rank) * static_cast<std::size_t>(k_),
            static_cast<std::size_t>(k_)};
  }
  void set_row(int rank, std::span<const std::uint64_t> values);

 private:
  int n_ = 0;
  int k_ = 0;
  std::vector<std::uint64_t> chunks_;
};

// Algorithm 2 with the intended (prose) semantics — see DESIGN.md §1: sort
// ranks by descending total send size, then emit one heavy rank followed by
// K-1 light ranks per group.  Returns the permutation `shuffle` where
// shuffle[position] = original rank.  Deterministic (ties by rank id).
[[nodiscard]] std::vector<int> rank_shuffle(const SendMatrix& load, int k);

// The naive arrangement (rank i's partners are i+1..i+K-1 mod N).
[[nodiscard]] std::vector<int> identity_shuffle(int nranks);

// Inverse permutation: position_of[rank] = position in `shuffle`.
[[nodiscard]] std::vector<int> invert_shuffle(std::span<const int> shuffle);

// Partner resolution: the p-th partner (p in 1..K-1) of the rank sitting
// at `position` is the rank at position+p (mod N) in shuffled order.
[[nodiscard]] inline int partner_at(std::span<const int> shuffle, int position,
                                    int p) {
  const int n = static_cast<int>(shuffle.size());
  return shuffle[static_cast<std::size_t>((position + p) % n)];
}

// Algorithm 3: byte-free (chunk-granular) offsets for single-sided puts.
// Offset of the put that the rank at shuffled position `pos` issues toward
// its p-th partner, measured in chunk slots inside that partner's window:
// the senders nearer the receiver occupy the window first.
[[nodiscard]] std::uint64_t put_offset_chunks(const SendMatrix& load,
                                              std::span<const int> shuffle,
                                              int pos, int p);

// Total chunk slots the rank at shuffled position `pos` must expose
// (= sum of what its K-1 upstream neighbours send it).
[[nodiscard]] std::uint64_t window_chunks(const SendMatrix& load,
                                          std::span<const int> shuffle,
                                          int pos);

// Receive totals per rank (chunks), derived from the matrix + shuffle;
// used by the shuffle-effectiveness experiments (Fig. 4c / 5c).
[[nodiscard]] std::vector<std::uint64_t> receive_chunks_per_rank(
    const SendMatrix& load, std::span<const int> shuffle);

// ---- topology awareness (paper §VI future work: "other partner selection
// criteria, such as rack-awareness or topology") -----------------------------

// Number of (rank, partner-slot) pairs whose partner lives on the same
// node as the rank — replicas on the same node do not survive a node loss.
[[nodiscard]] int same_node_partner_count(std::span<const int> shuffle, int k,
                                          const sim::ClusterConfig& cluster);

// Greedy repair pass: permutes `shuffle` so that (best effort) none of a
// rank's K-1 ring successors shares its node, while disturbing the
// load-aware order as little as possible.  With fewer than K nodes a
// violation-free arrangement cannot exist; the result minimizes greedily
// and same_node_partner_count() reports what remains.
[[nodiscard]] std::vector<int> make_node_disjoint(
    std::vector<int> shuffle, int k, const sim::ClusterConfig& cluster);

}  // namespace collrep::core
