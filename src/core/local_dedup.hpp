// Phase 1 of the paper's two-phase deduplication: each process removes the
// duplicates *within its own dataset*, producing the locally unique
// fingerprint set (LHashes) that enters the collective reduction.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chunk/dataset.hpp"
#include "hash/hasher.hpp"

namespace collrep::core {

struct LocalDedupResult {
  // Fingerprint of every chunk, in buffer order (manifest construction).
  std::vector<hash::Fingerprint> chunk_fps;
  // Chunk index of the first occurrence of each unique fingerprint, in
  // order of first appearance.
  std::vector<std::uint32_t> unique_chunks;
  // fp -> index into unique_chunks.
  std::unordered_map<hash::Fingerprint, std::uint32_t, hash::FingerprintHash>
      index_of;
  std::uint64_t unique_bytes = 0;
  std::uint64_t total_bytes = 0;
};

[[nodiscard]] inline LocalDedupResult local_dedup(
    const chunk::Chunker& chunker, const hash::ChunkHasher& hasher) {
  LocalDedupResult out;
  out.chunk_fps.reserve(chunker.count());
  out.index_of.reserve(chunker.count());
  for (std::size_t i = 0; i < chunker.count(); ++i) {
    const auto bytes = chunker.bytes(i);
    const auto fp = hasher.fingerprint(bytes);
    out.chunk_fps.push_back(fp);
    out.total_bytes += bytes.size();
    const auto [it, inserted] = out.index_of.try_emplace(
        fp, static_cast<std::uint32_t>(out.unique_chunks.size()));
    if (inserted) {
      out.unique_chunks.push_back(static_cast<std::uint32_t>(i));
      out.unique_bytes += bytes.size();
    }
  }
  return out;
}

}  // namespace collrep::core
