// REPAIR: the dedup-aware replica scrub (paper §VI future work).
//
// After failures degrade the replication factor — a store died mid-dump, a
// node was replaced with a blank disk — repair_replicas() audits replica
// counts across all surviving stores with the same HMERGE-style reduction
// DUMP_OUTPUT uses for deduplication, counts naturally distributed
// duplicates toward K, and re-replicates only the shortfall through the
// one-sided window path.  The alternative (re-dumping the full dataset)
// ships every replica again; the scrub ships exactly the missing copies,
// which is the measurement bench/ablate_failures.cpp makes.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "chunk/store.hpp"
#include "hash/fingerprint.hpp"
#include "simmpi/archive.hpp"
#include "simmpi/comm.hpp"

namespace collrep::core {

// Reduction operand of the repair audit: fingerprint -> replica health.
// Holder lists are kept only while a fingerprint is still below K — once
// the count reaches K the entry is "satisfied" and its holders are
// dropped, so the merged set stays small in the healthy case (holders
// never exceed K-1 per under-replicated entry).
class ReplicaHealthSet {
 public:
  struct Entry {
    std::uint32_t count = 0;   // replicas across contributing alive stores
    std::uint32_t length = 0;  // chunk payload bytes
    std::vector<std::int32_t> holders;  // sorted ranks; empty once satisfied
  };

  ReplicaHealthSet() = default;
  explicit ReplicaHealthSet(int k) : k_(k) {}

  // Registers one chunk held by `rank`'s alive store (count 1).
  void add_local(const hash::Fingerprint& fp, std::uint32_t length, int rank);

  // HMERGE analogue: folds `other` into *this, summing counts, unioning
  // holders, and dropping holder lists that reached K.  Returns the number
  // of entries scanned (for the merge cost model).
  std::uint64_t merge_from(ReplicaHealthSet&& other);

  [[nodiscard]] const Entry* find(const hash::Fingerprint& fp) const {
    const auto it = entries_.find(fp);
    return it == entries_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] const std::unordered_map<hash::Fingerprint, Entry,
                                         hash::FingerprintHash>&
  entries() const noexcept {
    return entries_;
  }

  friend void save(simmpi::OArchive& ar, const ReplicaHealthSet& s);
  friend void load(simmpi::IArchive& ar, ReplicaHealthSet& s);

 private:
  int k_ = 1;
  std::unordered_map<hash::Fingerprint, Entry, hash::FingerprintHash>
      entries_;
};

void save(simmpi::OArchive& ar, const ReplicaHealthSet& s);
void load(simmpi::IArchive& ar, ReplicaHealthSet& s);

// Collective audit helper (also used by the degraded dump path): every
// rank contributes the contents of its own alive store (nothing when the
// store is failed) and all ranks return the merged global health map.
// Merge compute is charged to the cost model like the dedup reduction.
[[nodiscard]] ReplicaHealthSet allreduce_health(simmpi::Comm& comm,
                                               const chunk::ChunkStore& store,
                                               int k);

struct RepairStats {
  int rank = 0;
  int k_requested = 0;
  int k_effective = 0;  // min(K, alive stores)
  int alive_stores = 0;

  // Per-rank: this rank's share of the audit and the exchange.
  std::uint64_t audited_chunks = 0;  // chunks scanned in this rank's store
  std::uint64_t audited_bytes = 0;
  std::uint64_t sent_chunks = 0;  // replica copies this rank shipped
  std::uint64_t sent_bytes = 0;
  std::uint64_t recv_chunks = 0;  // replica copies committed locally
  std::uint64_t recv_bytes = 0;

  // Global (identical on every rank).
  std::uint64_t global_chunks = 0;  // distinct fingerprints across stores
  std::uint64_t under_replicated_chunks = 0;  // fingerprints below K_eff
  std::uint64_t under_replicated_bytes = 0;   // their payload bytes (once)
  std::uint64_t resent_chunks = 0;  // replica copies shipped in total
  std::uint64_t resent_bytes = 0;   // payload bytes of those copies
  std::uint64_t lost_chunks = 0;  // manifest-referenced, zero replicas left
  std::uint64_t lost_bytes = 0;
  int k_achieved_min_before = 0;  // over manifest-referenced fingerprints
  int k_achieved_min_after = 0;

  double total_time_s = 0.0;  // aligned completion; identical on all ranks
};

// Collective replica scrub.  `stores[i]` is rank i's device (the same
// harness layout restore_input uses); each rank touches only its own
// entry plus the window exchange.  Ranks whose store is failed still
// participate in the collectives but contribute and receive nothing.
// Chunks whose replicas are all gone cannot be repaired and are reported
// as lost (restore of the affected datasets would throw ChunkLostError).
// Stats are published under "repair.*" in the attached MetricsRegistry.
[[nodiscard]] RepairStats repair_replicas(
    simmpi::Comm& comm, std::span<chunk::ChunkStore* const> stores, int k);

}  // namespace collrep::core
