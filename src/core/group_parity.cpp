#include "core/group_parity.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/fingerprint_set.hpp"
#include "core/local_dedup.hpp"
#include "simmpi/collectives.hpp"

namespace collrep::core {

namespace {

constexpr int kChainTag = 7 << 20;
constexpr int kParityTag = 8 << 20;
constexpr int kManifestTag = 9 << 20;
constexpr int kStreamTag = 10 << 20;

struct ParityHeader {
  std::uint64_t epoch = 0;
  std::int32_t group = 0;
  std::int32_t parity_index = 0;
  std::int32_t group_members = 0;
  std::uint64_t shard_len = 0;
};
static_assert(std::is_trivially_copyable_v<ParityHeader>);

std::vector<std::uint8_t> pack_parity(const ParityHeader& header,
                                      std::span<const std::uint8_t> shard) {
  simmpi::OArchive ar;
  ar.put(header);
  ar.write_raw(shard.data(), shard.size());
  return ar.take();
}

std::pair<ParityHeader, std::span<const std::uint8_t>> unpack_parity(
    std::span<const std::uint8_t> blob) {
  simmpi::IArchive ar(blob);
  const auto header = ar.get<ParityHeader>();
  if (ar.remaining() != header.shard_len) {
    throw std::runtime_error("ec: corrupt parity blob");
  }
  return {header, blob.subspan(blob.size() - header.shard_len)};
}

}  // namespace

int ec_group_of(int rank, const EcConfig& config) noexcept {
  return rank / std::max(1, config.group_size);
}

int ec_group_count(int nranks, const EcConfig& config) noexcept {
  const int m = std::max(1, config.group_size);
  return (nranks + m - 1) / m;
}

std::vector<int> ec_group_members(int group, int nranks,
                                  const EcConfig& config) {
  const int m = std::max(1, config.group_size);
  std::vector<int> members;
  for (int r = group * m; r < std::min(nranks, (group + 1) * m); ++r) {
    members.push_back(r);
  }
  return members;
}

std::vector<int> ec_parity_holders(int group, int nranks,
                                   const EcConfig& config) {
  const int m = std::max(1, config.group_size);
  const int first_after = std::min(nranks, (group + 1) * m);
  std::vector<int> holders;
  for (int t = 0; t < config.parity; ++t) {
    holders.push_back((first_after + t) % nranks);
  }
  return holders;
}

std::string ec_parity_key(int group, int parity_index, std::uint64_t epoch) {
  return "ecparity/" + std::to_string(group) + "/" +
         std::to_string(parity_index) + "/" + std::to_string(epoch);
}

std::string ec_stream_key(int rank, std::uint64_t epoch) {
  return "ecstream/" + std::to_string(rank) + "/" + std::to_string(epoch);
}

EcDumper::EcDumper(simmpi::Comm& comm, chunk::ChunkStore& store,
                   EcConfig config)
    : comm_(comm), store_(store), config_(config) {
  if (config_.chunk_bytes == 0) {
    throw std::invalid_argument("EcDumper: chunk_bytes must be positive");
  }
  if (config_.group_size < 1 || config_.parity < 0 ||
      config_.group_size + config_.parity > 256) {
    throw std::invalid_argument("EcDumper: invalid group geometry");
  }
}

EcDumpStats EcDumper::dump_output(const chunk::Dataset& buffer) {
  const int n = comm_.size();
  const int rank = comm_.rank();
  if (config_.group_size + config_.parity > n) {
    throw std::invalid_argument(
        "EcDumper: group_size + parity must not exceed the rank count "
        "(parity holders must be distinct from group members)");
  }
  const auto& cluster = comm_.cluster();
  const auto& hasher = hash::hasher_for(config_.hash_kind);

  EcDumpStats stats;
  stats.rank = rank;

  comm_.barrier();
  const double t0 = comm_.clock().now();
  if (auto* t = comm_.obs()) {
    t->event(obs::EventKind::kPhaseBegin, t0, "ec_dump");
  }

  // ---- local dedup ----------------------------------------------------------
  const chunk::Chunker chunker(buffer, config_.chunk_bytes);
  const core::LocalDedupResult local = core::local_dedup(chunker, hasher);
  stats.dataset_bytes = local.total_bytes;
  stats.chunk_count = chunker.count();
  comm_.charge(static_cast<double>(local.total_bytes) /
                   hasher.modeled_bytes_per_second() +
               static_cast<double>(chunker.count()) *
                   cluster.chunk_overhead_s);

  // ---- collective dedup (natural replicas substitute for coding) ------------
  const int cap = config_.parity + 1;  // natural copies that equal coding
  core::BoundedFpSet gview;
  if (config_.use_collective_dedup && config_.parity > 0) {
    core::BoundedFpSet mine(config_.threshold_f, cap, n);
    for (const auto u : local.unique_chunks) {
      mine.add_local(local.chunk_fps[u], rank);
    }
    mine.enforce_f();
    gview = simmpi::reduce_kway(
        comm_, std::move(mine),
        [&](core::BoundedFpSet a, std::vector<core::BoundedFpSet> children) {
          const auto ms = a.merge_many(std::move(children));
          comm_.charge(static_cast<double>(ms.entries_scanned) *
                       cluster.merge_entry_cost_s);
          return a;
        },
        0);
    if (rank == 0) (void)gview.prune_singletons();
    simmpi::bcast(comm_, gview, 0);
  }

  // ---- stream selection -------------------------------------------------------
  // stream: unique chunks this rank must protect with coding.
  // keep: unique chunks this rank stores locally (stream + fully-covered
  // designated chunks).
  std::vector<std::uint32_t> stream;
  std::vector<std::uint32_t> keep;
  for (const auto chunk_index : local.unique_chunks) {
    const auto& fp = local.chunk_fps[chunk_index];
    const core::FpEntry* entry = gview.find(fp);
    if (entry == nullptr) {
      stream.push_back(chunk_index);
      keep.push_back(chunk_index);
      continue;
    }
    const auto dranks = gview.ranks(*entry);
    const bool designated =
        std::binary_search(dranks.begin(), dranks.end(), rank);
    if (!designated) {
      ++stats.excluded_chunks;  // cap other ranks already hold it
      continue;
    }
    keep.push_back(chunk_index);
    if (static_cast<int>(dranks.size()) < cap) {
      stream.push_back(chunk_index);
    } else {
      ++stats.excluded_chunks;  // enough natural copies; skip coding
    }
  }
  stats.stream_chunks = stream.size();

  // ---- group geometry & stripe count ----------------------------------------
  const int group = ec_group_of(rank, config_);
  const auto members = ec_group_members(group, n, config_);
  const auto holders = ec_parity_holders(group, n, config_);
  const int m_eff = static_cast<int>(members.size());
  const int my_index = static_cast<int>(
      std::find(members.begin(), members.end(), rank) - members.begin());

  const auto all_stream_counts =
      simmpi::allgather(comm_, static_cast<std::uint64_t>(stream.size()));
  std::uint64_t stripes = 0;
  for (const int member : members) {
    stripes = std::max(stripes,
                       all_stream_counts[static_cast<std::size_t>(member)]);
  }
  const std::uint64_t shard_len = stripes * config_.chunk_bytes;

  // ---- own shard --------------------------------------------------------------
  std::vector<std::uint8_t> own_shard(shard_len, 0);
  for (std::size_t s = 0; s < stream.size(); ++s) {
    const auto payload = chunker.bytes(stream[s]);
    std::copy(payload.begin(), payload.end(),
              own_shard.begin() +
                  static_cast<std::ptrdiff_t>(s * config_.chunk_bytes));
  }

  // ---- ring-chain parity accumulation -----------------------------------------
  if (config_.parity > 0 && shard_len > 0) {
    const ec::ReedSolomon rs(m_eff, config_.parity);
    std::vector<std::vector<std::uint8_t>> partial(
        static_cast<std::size_t>(config_.parity));
    if (my_index == 0) {
      for (auto& p : partial) p.assign(shard_len, 0);
    } else {
      partial = comm_.recv_value<std::vector<std::vector<std::uint8_t>>>(
          members[static_cast<std::size_t>(my_index - 1)], kChainTag);
    }
    for (int j = 0; j < config_.parity; ++j) {
      ec::gf_mul_add(partial[static_cast<std::size_t>(j)], own_shard,
                 rs.coeff(j, my_index));
      // GF multiply-accumulate over the shard.
      comm_.charge(static_cast<double>(shard_len) / cluster.mem_bandwidth_bps);
    }
    if (my_index + 1 < m_eff) {
      comm_.send_value(members[static_cast<std::size_t>(my_index + 1)],
                       kChainTag, partial);
      stats.sent_bytes +=
          static_cast<std::uint64_t>(config_.parity) * shard_len;
    } else {
      for (int j = 0; j < config_.parity; ++j) {
        comm_.send_value(holders[static_cast<std::size_t>(j)], kParityTag + j,
                         partial[static_cast<std::size_t>(j)]);
        stats.sent_bytes += shard_len;
      }
    }
  }

  // ---- receive parity shards for the groups this rank protects ----------------
  if (config_.parity > 0) {
    for (int g = 0; g < ec_group_count(n, config_); ++g) {
      const auto g_holders = ec_parity_holders(g, n, config_);
      const auto g_members = ec_group_members(g, n, config_);
      std::uint64_t g_stripes = 0;
      for (const int member : g_members) {
        g_stripes = std::max(
            g_stripes, all_stream_counts[static_cast<std::size_t>(member)]);
      }
      for (int j = 0; j < config_.parity; ++j) {
        if (g_holders[static_cast<std::size_t>(j)] != rank) continue;
        if (g_stripes == 0) continue;
        auto shard = comm_.recv_value<std::vector<std::uint8_t>>(
            g_members.back(), kParityTag + j);
        const ParityHeader header{
            config_.epoch, g, j, static_cast<std::int32_t>(g_members.size()),
            static_cast<std::uint64_t>(shard.size())};
        stats.parity_bytes += shard.size();
        store_.put_blob(ec_parity_key(g, j, config_.epoch),
                        pack_parity(header, shard));
      }
    }
  }

  // ---- manifests, stream manifests, local commit --------------------------------
  chunk::Manifest manifest;
  manifest.owner_rank = rank;
  manifest.epoch = config_.epoch;
  for (std::size_t i = 0; i < buffer.segment_count(); ++i) {
    manifest.segment_sizes.push_back(buffer.segment(i).size());
  }
  manifest.entries.reserve(chunker.count());
  for (std::size_t i = 0; i < chunker.count(); ++i) {
    manifest.entries.push_back(
        chunk::ManifestEntry{local.chunk_fps[i], chunker.ref(i).length});
  }

  std::vector<chunk::ManifestEntry> stream_manifest;
  stream_manifest.reserve(stream.size());
  for (const auto chunk_index : stream) {
    stream_manifest.push_back(chunk::ManifestEntry{
        local.chunk_fps[chunk_index], chunker.ref(chunk_index).length});
  }
  const auto stream_blob = simmpi::to_bytes(stream_manifest);

  store_.put_manifest(manifest);
  store_.put_blob(ec_stream_key(rank, config_.epoch), stream_blob);
  for (const int holder : holders) {
    comm_.send_value(holder, kManifestTag, manifest);
    comm_.send_value(holder, kStreamTag + rank, stream_manifest);
    stats.sent_bytes += chunk::manifest_wire_bytes(manifest);
  }
  // Receive manifests from every member of every group this rank protects.
  if (config_.parity > 0) {
    for (int g = 0; g < ec_group_count(n, config_); ++g) {
      const auto g_holders = ec_parity_holders(g, n, config_);
      if (std::find(g_holders.begin(), g_holders.end(), rank) ==
          g_holders.end()) {
        continue;
      }
      for (const int member : ec_group_members(g, n, config_)) {
        store_.put_manifest(comm_.recv_value<chunk::Manifest>(member,
                                                              kManifestTag));
        const auto sm =
            comm_.recv_value<std::vector<chunk::ManifestEntry>>(
                member, kStreamTag + member);
        store_.put_blob(ec_stream_key(member, config_.epoch),
                        simmpi::to_bytes(sm));
      }
    }
  }

  for (const auto chunk_index : keep) {
    const auto payload = chunker.bytes(chunk_index);
    if (store_.mode() == chunk::StoreMode::kPayload) {
      store_.put(local.chunk_fps[chunk_index], payload);
    } else {
      store_.put_accounted(local.chunk_fps[chunk_index],
                           static_cast<std::uint32_t>(payload.size()));
    }
    stats.stored_bytes += payload.size();
  }

  // ---- storage phase (shared HDD per node, like the replication path) ---------
  const std::uint64_t device_bytes =
      stats.stored_bytes + stats.parity_bytes +
      chunk::manifest_wire_bytes(manifest);
  const auto all_device = simmpi::allgather(comm_, device_bytes);
  std::vector<std::uint64_t> node_bytes(
      static_cast<std::size_t>(cluster.node_count(n)), 0);
  for (int r = 0; r < n; ++r) {
    node_bytes[static_cast<std::size_t>(cluster.node_of(r))] +=
        all_device[static_cast<std::size_t>(r)];
  }
  comm_.charge(static_cast<double>(
                   node_bytes[static_cast<std::size_t>(comm_.node())]) /
               cluster.hdd_write_bps);
  comm_.barrier();
  stats.total_time_s = comm_.clock().now() - t0;

  if (auto* t = comm_.obs()) {
    t->event(obs::EventKind::kPhaseEnd, comm_.clock().now(), "ec_dump");
    auto& m = *t->metrics;
    if (rank == 0) m.add("ec.count");
    m.add("ec.dataset_bytes", stats.dataset_bytes);
    m.add("ec.stream_chunks", stats.stream_chunks);
    m.add("ec.excluded_chunks", stats.excluded_chunks);
    m.add("ec.stored_bytes", stats.stored_bytes);
    m.add("ec.parity_bytes", stats.parity_bytes);
    m.add("ec.sent_bytes", stats.sent_bytes);
    m.observe("ec.rank_parity_bytes", static_cast<double>(stats.parity_bytes));
    if (rank == 0) m.set("ec.last.total_time_s", stats.total_time_s);
  }
  return stats;
}

core::RestoreResult ec_restore_rank(
    std::span<chunk::ChunkStore* const> stores, int rank,
    const EcConfig& config) {
  const int n = static_cast<int>(stores.size());
  if (rank < 0 || rank >= n) {
    throw std::out_of_range("ec_restore: rank outside store set");
  }
  const auto alive = [&](int r) {
    return stores[static_cast<std::size_t>(r)] != nullptr &&
           !stores[static_cast<std::size_t>(r)]->failed();
  };

  // Newest manifest for `rank` across the surviving stores.
  const chunk::Manifest* manifest = nullptr;
  for (int r = 0; r < n; ++r) {
    if (!alive(r)) continue;
    const auto* m = stores[static_cast<std::size_t>(r)]->manifest_for(rank);
    if (m != nullptr && (manifest == nullptr || m->epoch > manifest->epoch)) {
      manifest = m;
    }
  }
  if (manifest == nullptr) throw core::ManifestLostError(rank);
  const std::uint64_t epoch = manifest->epoch;

  // Decoded-stream payloads, filled lazily on the first miss.
  std::unordered_map<hash::Fingerprint, std::vector<std::uint8_t>,
                     hash::FingerprintHash>
      decoded;
  bool decode_attempted = false;

  const auto stream_manifest_for =
      [&](int member) -> std::optional<std::vector<chunk::ManifestEntry>> {
    const auto key = ec_stream_key(member, epoch);
    for (int r = 0; r < n; ++r) {
      if (!alive(r)) continue;
      if (const auto* blob = stores[static_cast<std::size_t>(r)]->get_blob(key)) {
        return simmpi::from_bytes<std::vector<chunk::ManifestEntry>>(*blob);
      }
    }
    return std::nullopt;
  };

  const auto try_decode = [&] {
    if (decode_attempted) return;
    decode_attempted = true;
    const int group = ec_group_of(rank, config);
    const auto members = ec_group_members(group, n, config);
    const auto holders = ec_parity_holders(group, n, config);
    const int m_eff = static_cast<int>(members.size());

    // Stream manifests for every member (needed for stripe geometry).
    std::vector<std::vector<chunk::ManifestEntry>> streams(
        static_cast<std::size_t>(m_eff));
    std::uint64_t stripes = 0;
    for (int i = 0; i < m_eff; ++i) {
      const auto sm = stream_manifest_for(members[static_cast<std::size_t>(i)]);
      if (!sm.has_value()) throw core::ChunkLostError{};
      streams[static_cast<std::size_t>(i)] = *sm;
      stripes = std::max(stripes, static_cast<std::uint64_t>(sm->size()));
    }
    if (stripes == 0) return;
    const std::uint64_t shard_len = stripes * config.chunk_bytes;

    std::vector<std::optional<std::vector<std::uint8_t>>> shards(
        static_cast<std::size_t>(m_eff + config.parity));
    // Data shards from surviving members.
    for (int i = 0; i < m_eff; ++i) {
      const int member = members[static_cast<std::size_t>(i)];
      if (!alive(member)) continue;
      std::vector<std::uint8_t> shard(shard_len, 0);
      bool complete = true;
      const auto& sm = streams[static_cast<std::size_t>(i)];
      for (std::size_t s = 0; s < sm.size(); ++s) {
        const auto payload =
            stores[static_cast<std::size_t>(member)]->get(sm[s].fp);
        if (!payload.has_value() || payload->size() != sm[s].length) {
          complete = false;
          break;
        }
        std::copy(payload->begin(), payload->end(),
                  shard.begin() +
                      static_cast<std::ptrdiff_t>(s * config.chunk_bytes));
      }
      if (complete) shards[static_cast<std::size_t>(i)] = std::move(shard);
    }
    // Parity shards from surviving holders.
    for (int j = 0; j < config.parity; ++j) {
      const int holder = holders[static_cast<std::size_t>(j)];
      if (!alive(holder)) continue;
      const auto* blob = stores[static_cast<std::size_t>(holder)]->get_blob(
          ec_parity_key(group, j, epoch));
      if (blob == nullptr) continue;
      const auto [header, shard] = unpack_parity(*blob);
      if (header.shard_len != shard_len) continue;  // stale epoch geometry
      shards[static_cast<std::size_t>(m_eff + j)] =
          std::vector<std::uint8_t>(shard.begin(), shard.end());
    }

    const ec::ReedSolomon rs(m_eff, config.parity);
    const auto data = rs.reconstruct_data(shards);
    for (int i = 0; i < m_eff; ++i) {
      const auto& sm = streams[static_cast<std::size_t>(i)];
      for (std::size_t s = 0; s < sm.size(); ++s) {
        const auto* base = data[static_cast<std::size_t>(i)].data() +
                           s * config.chunk_bytes;
        decoded.try_emplace(
            sm[s].fp, std::vector<std::uint8_t>(base, base + sm[s].length));
      }
    }
  };

  core::RestoreResult out;
  out.segments.reserve(manifest->segment_sizes.size());
  for (const auto size : manifest->segment_sizes) {
    out.segments.emplace_back();
    out.segments.back().reserve(size);
  }
  std::size_t seg = 0;
  for (const chunk::ManifestEntry& entry : manifest->entries) {
    while (seg < out.segments.size() &&
           out.segments[seg].size() == manifest->segment_sizes[seg]) {
      ++seg;
    }
    if (seg == out.segments.size()) {
      throw std::runtime_error("ec_restore: manifest exceeds segments");
    }
    std::span<const std::uint8_t> payload;
    bool found = false;
    if (alive(rank)) {
      if (const auto p = stores[static_cast<std::size_t>(rank)]->get(entry.fp)) {
        payload = *p;
        found = true;
        ++out.chunks_from_own_store;
      }
    }
    if (!found) {
      for (int r = 0; r < n && !found; ++r) {
        if (r == rank || !alive(r)) continue;
        if (const auto p = stores[static_cast<std::size_t>(r)]->get(entry.fp)) {
          payload = *p;
          found = true;
          ++out.chunks_from_remote_stores;
        }
      }
    }
    if (!found) {
      try_decode();
      const auto it = decoded.find(entry.fp);
      if (it != decoded.end()) {
        payload = it->second;
        found = true;
        ++out.chunks_from_remote_stores;
      }
    }
    if (!found) throw core::ChunkLostError{};
    if (payload.size() != entry.length) {
      throw std::runtime_error("ec_restore: chunk length mismatch");
    }
    out.segments[seg].insert(out.segments[seg].end(), payload.begin(),
                             payload.end());
  }
  for (std::size_t s = 0; s < out.segments.size(); ++s) {
    if (out.segments[s].size() != manifest->segment_sizes[s]) {
      throw std::runtime_error("ec_restore: segment size mismatch");
    }
  }
  return out;
}

}  // namespace collrep::core
