// Erasure-coded collective dump: the paper's §VI future-work direction
// ("data not duplicated to a sufficient degree can be made resilient
// through erasure codes as an alternative to replication"), implemented
// FTI-style.
//
// Ranks are partitioned into groups of `group_size` consecutive ranks.
// After (optionally collective) deduplication, every rank's stream of
// insufficiently-duplicated unique chunks becomes one RS data shard per
// stripe; `parity` parity shards per stripe are accumulated along a ring
// chain through the group (each member folds coeff * own-chunk into the
// running parity) and stored on the `parity` ranks that follow the group.
// Chunks that are already naturally duplicated on more than `parity`
// ranks are excluded from the stream — natural replicas substitute for
// coding, exactly as coll-dedup substitutes them for replication.
//
// Resilience: any `parity` rank-store failures are survivable (natural
// copies cover the excluded chunks, RS decoding covers the streams).
// Storage overhead for the coded data is parity/group_size instead of
// replication's (K-1)x.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "chunk/dataset.hpp"
#include "chunk/store.hpp"
#include "hash/hasher.hpp"
#include "core/restore.hpp"
#include "ec/reed_solomon.hpp"
#include "simmpi/comm.hpp"

namespace collrep::core {

struct EcConfig {
  int group_size = 4;   // RS data shards (m)
  int parity = 2;       // RS parity shards (r) = tolerated failures
  std::size_t chunk_bytes = 4096;
  std::uint32_t threshold_f = 1u << 17;
  hash::HashKind hash_kind = hash::HashKind::kSha1;
  // true: run the collective fingerprint reduction and exclude naturally
  // duplicated chunks from the coded stream (the paper's envisioned
  // hybrid); false: erasure-code every locally unique chunk.
  bool use_collective_dedup = true;
  std::uint64_t epoch = 0;
};

struct EcDumpStats {
  int rank = 0;
  std::uint64_t dataset_bytes = 0;
  std::uint64_t chunk_count = 0;
  std::uint64_t stream_chunks = 0;      // chunks protected by coding
  std::uint64_t excluded_chunks = 0;    // covered by natural replicas
  std::uint64_t stored_bytes = 0;       // own chunks committed locally
  std::uint64_t parity_bytes = 0;       // parity shards stored on this rank
  std::uint64_t sent_bytes = 0;         // ring-chain + shard traffic
  double total_time_s = 0.0;
};

class EcDumper {
 public:
  EcDumper(simmpi::Comm& comm, chunk::ChunkStore& store, EcConfig config);

  // Collective across all ranks of the communicator.
  EcDumpStats dump_output(const chunk::Dataset& buffer);

 private:
  simmpi::Comm& comm_;
  chunk::ChunkStore& store_;
  EcConfig config_;
};

// Group geometry helpers (shared by dump and restore).
[[nodiscard]] int ec_group_of(int rank, const EcConfig& config) noexcept;
[[nodiscard]] int ec_group_count(int nranks, const EcConfig& config) noexcept;
// Members of `group` (clamped to nranks) and the parity-holder ranks that
// follow the group in ring order.
[[nodiscard]] std::vector<int> ec_group_members(int group, int nranks,
                                                const EcConfig& config);
[[nodiscard]] std::vector<int> ec_parity_holders(int group, int nranks,
                                                 const EcConfig& config);
[[nodiscard]] std::string ec_parity_key(int group, int parity_index,
                                        std::uint64_t epoch);
[[nodiscard]] std::string ec_stream_key(int rank, std::uint64_t epoch);

// Restores `rank`'s dumped dataset from the surviving stores, decoding
// its chunk stream from group survivors + parity when the rank's own
// store is failed.  Throws (like core::restore_rank) when the failure
// pattern exceeds `parity` within the group.
[[nodiscard]] core::RestoreResult ec_restore_rank(
    std::span<chunk::ChunkStore* const> stores, int rank,
    const EcConfig& config);

}  // namespace collrep::core
