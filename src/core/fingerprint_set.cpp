#include "core/fingerprint_set.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "kernels/kernels.hpp"

namespace collrep::core {

namespace {

constexpr std::size_t kFpBytes = hash::Fingerprint::kBytes;

// The 20 fingerprint bytes viewed as one big-endian 160-bit integer,
// split into limbs: two u64 + one u32, most significant first.  Byte-
// lexicographic order == big-endian numeric order, which is exactly the
// order entries are sorted in.
struct FpLimbs {
  std::uint64_t w0;
  std::uint64_t w1;
  std::uint32_t w2;
};

std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

FpLimbs to_limbs(const hash::Fingerprint& fp) noexcept {
  const auto b = fp.bytes();
  return {load_be64(b.data()), load_be64(b.data() + 8),
          load_be32(b.data() + 16)};
}

// delta = a - b over the 160-bit big-endian integers, limb-at-a-time
// with borrow propagation (the byte loop this replaces was a hot spot of
// serialization at large F).
std::array<std::uint8_t, kFpBytes> fp_sub(const hash::Fingerprint& a,
                                          const hash::Fingerprint& b) {
  const FpLimbs la = to_limbs(a);
  const FpLimbs lb = to_limbs(b);
  const std::uint32_t d2 = la.w2 - lb.w2;
  std::uint64_t borrow = la.w2 < lb.w2 ? 1 : 0;
  std::uint64_t d1 = 0;
  std::uint64_t borrow1 = 0;
  borrow1 = __builtin_sub_overflow(la.w1, lb.w1, &d1) ? 1 : 0;
  borrow1 += __builtin_sub_overflow(d1, borrow, &d1) ? 1 : 0;
  const std::uint64_t d0 = la.w0 - lb.w0 - borrow1;
  std::array<std::uint8_t, kFpBytes> delta{};
  store_be64(delta.data(), d0);
  store_be64(delta.data() + 8, d1);
  store_be32(delta.data() + 16, d2);
  return delta;
}

// base += delta (big-endian); returns the carry out of the top limb.
int fp_add(hash::Fingerprint& base,
           const std::array<std::uint8_t, kFpBytes>& delta) {
  const FpLimbs lb = to_limbs(base);
  const std::uint64_t d0 = load_be64(delta.data());
  const std::uint64_t d1 = load_be64(delta.data() + 8);
  const std::uint32_t d2 = load_be32(delta.data() + 16);
  const std::uint32_t s2 = lb.w2 + d2;
  std::uint64_t carry = s2 < lb.w2 ? 1 : 0;
  std::uint64_t s1 = 0;
  std::uint64_t carry1 = 0;
  carry1 = __builtin_add_overflow(lb.w1, d1, &s1) ? 1 : 0;
  carry1 += __builtin_add_overflow(s1, carry, &s1) ? 1 : 0;
  std::uint64_t s0 = 0;
  std::uint64_t carry0 = 0;
  carry0 = __builtin_add_overflow(lb.w0, d0, &s0) ? 1 : 0;
  carry0 += __builtin_add_overflow(s0, carry1, &s0) ? 1 : 0;
  const auto bytes = base.bytes();
  store_be64(bytes.data(), s0);
  store_be64(bytes.data() + 8, s1);
  store_be32(bytes.data() + 16, s2);
  return static_cast<int>(carry0);
}

// Order-preserving 64-bit prefix of a fingerprint: the first 8 bytes
// read big-endian.  fp_a < fp_b implies key(a) <= key(b); equal keys do
// NOT imply equal fingerprints (the callers handle both collision
// directions).
std::uint64_t prefix_key(const hash::Fingerprint& fp) noexcept {
  return load_be64(fp.bytes().data());
}

// Fills `keys` with the prefix key of every entry.  Returns false when
// two adjacent (fp-sorted) entries collide on the prefix — then the keys
// are not strictly ascending and the hmerge kernel precondition fails.
bool build_keys(const std::vector<FpEntry>& entries,
                std::vector<std::uint64_t>& keys) {
  keys.resize(entries.size());
  bool strict = true;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::uint64_t k = prefix_key(entries[i].fp);
    strict &= (i == 0) | (k > prev);
    keys[i] = k;
    prev = k;
  }
  return strict;
}

}  // namespace

BoundedFpSet::BoundedFpSet(std::uint32_t f_cap, int k, int nranks)
    : f_cap_(f_cap), k_(k), rank_load_(static_cast<std::size_t>(nranks), 0) {
  if (f_cap == 0) throw std::invalid_argument("BoundedFpSet: F must be > 0");
  if (k < 1) throw std::invalid_argument("BoundedFpSet: K must be >= 1");
  if (nranks < 1) throw std::invalid_argument("BoundedFpSet: nranks >= 1");
}

void BoundedFpSet::add_local(const hash::Fingerprint& fp, int rank) {
  FpEntry e;
  e.fp = fp;
  e.freq = 1;
  e.rank_off = static_cast<std::uint32_t>(rank_pool_.size());
  e.rank_len = 1;
  entries_.push_back(e);
  rank_pool_.push_back(rank);
  ++rank_load_[static_cast<std::size_t>(rank)];
  sealed_ = false;
}

void BoundedFpSet::seal() const {
  if (sealed_) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const FpEntry& a, const FpEntry& b) { return a.fp < b.fp; });
  const auto dup = std::adjacent_find(
      entries_.begin(), entries_.end(),
      [](const FpEntry& a, const FpEntry& b) { return a.fp == b.fp; });
  if (dup != entries_.end()) {
    throw std::logic_error("BoundedFpSet: duplicate local fingerprint");
  }
  sealed_ = true;
}

const FpEntry* BoundedFpSet::find(const hash::Fingerprint& fp) const {
  seal();
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), fp,
      [](const FpEntry& e, const hash::Fingerprint& key) { return e.fp < key; });
  if (it == entries_.end() || it->fp != fp) return nullptr;
  return &*it;
}

std::span<const FpEntry> BoundedFpSet::entries() const {
  seal();
  return entries_;
}

MergeStats BoundedFpSet::enforce_f() {
  seal();
  MergeStats stats;
  truncate_to_f(stats);
  return stats;
}

std::size_t BoundedFpSet::prune_singletons() {
  seal();
  std::size_t kept = 0;
  for (const FpEntry& e : entries_) {
    if (e.freq <= 1) {
      for (const std::int32_t r : ranks(e)) {
        --rank_load_[static_cast<std::size_t>(r)];
      }
    } else {
      entries_[kept++] = e;
    }
  }
  const std::size_t removed = entries_.size() - kept;
  entries_.resize(kept);
  return removed;
}

void BoundedFpSet::truncate_ranks(std::vector<std::int32_t>& scratch,
                                  MergeStats& stats) {
  if (scratch.size() <= static_cast<std::size_t>(k_)) return;
  // Keep the K least loaded designated ranks ("the most loaded ranks are
  // eliminated first", §III-B); ties break toward the lower rank id so the
  // outcome is independent of container iteration order.
  std::stable_sort(scratch.begin(), scratch.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     const auto la = rank_load_[static_cast<std::size_t>(a)];
                     const auto lb = rank_load_[static_cast<std::size_t>(b)];
                     if (la != lb) return la < lb;
                     return a < b;
                   });
  for (std::size_t i = static_cast<std::size_t>(k_); i < scratch.size(); ++i) {
    --rank_load_[static_cast<std::size_t>(scratch[i])];
    ++stats.ranks_dropped_load;
  }
  scratch.resize(static_cast<std::size_t>(k_));
  std::sort(scratch.begin(), scratch.end());
}

void BoundedFpSet::truncate_to_f(MergeStats& stats) {
  if (entries_.size() <= f_cap_) return;
  // Rank all entries by (freq desc, fp asc) and keep the first F; the fp
  // tie-break keeps the survivor set deterministic.
  std::vector<std::uint32_t> order(entries_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(), order.begin() + f_cap_, order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (entries_[a].freq != entries_[b].freq) {
                       return entries_[a].freq > entries_[b].freq;
                     }
                     return entries_[a].fp < entries_[b].fp;
                   });
  std::vector<char> dropped(entries_.size(), 0);
  for (std::size_t i = f_cap_; i < order.size(); ++i) dropped[order[i]] = 1;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (dropped[i]) {
      for (const std::int32_t r : ranks(entries_[i])) {
        --rank_load_[static_cast<std::size_t>(r)];
      }
      ++stats.entries_dropped_f;
    } else {
      entries_[kept++] = entries_[i];  // compaction keeps fp order
    }
  }
  entries_.resize(kept);
}

// Full-fingerprint reference merge.  Also the fallback when either
// input's prefix keys are not strictly ascending (adjacent fingerprints
// sharing their first 8 bytes), which the kernel cannot represent.
void BoundedFpSet::merge_entries_scalar(const BoundedFpSet& other,
                                        MergeStats& stats) {
  std::size_t live_ranks = 0;
  for (const FpEntry& e : entries_) live_ranks += e.rank_len;
  for (const FpEntry& e : other.entries_) live_ranks += e.rank_len;

  std::vector<FpEntry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  std::vector<std::int32_t> pool;
  pool.reserve(live_ranks);
  std::vector<std::int32_t> scratch;

  const auto copy_entry = [&](const BoundedFpSet& src, const FpEntry& e) {
    FpEntry out = e;
    out.rank_off = static_cast<std::uint32_t>(pool.size());
    const auto r = src.ranks(e);
    pool.insert(pool.end(), r.begin(), r.end());
    merged.push_back(out);
  };

  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < entries_.size() || ib < other.entries_.size()) {
    if (ib == other.entries_.size() ||
        (ia < entries_.size() && entries_[ia].fp < other.entries_[ib].fp)) {
      copy_entry(*this, entries_[ia++]);
      continue;
    }
    if (ia == entries_.size() || other.entries_[ib].fp < entries_[ia].fp) {
      copy_entry(other, other.entries_[ib++]);
      continue;
    }
    // Common fingerprint: sum frequencies, union the two sorted rank lists
    // (disjoint by construction: each rank's fingerprints enter the
    // reduction exactly once), re-enforce the K bound.
    const FpEntry& a = entries_[ia++];
    const FpEntry& b = other.entries_[ib++];
    scratch.clear();
    const auto ra = ranks(a);
    const auto rb = other.ranks(b);
    std::merge(ra.begin(), ra.end(), rb.begin(), rb.end(),
               std::back_inserter(scratch));
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    truncate_ranks(scratch, stats);

    FpEntry out;
    out.fp = a.fp;
    out.freq = a.freq + b.freq;
    out.rank_off = static_cast<std::uint32_t>(pool.size());
    out.rank_len = static_cast<std::uint32_t>(scratch.size());
    pool.insert(pool.end(), scratch.begin(), scratch.end());
    merged.push_back(out);
  }

  entries_ = std::move(merged);
  rank_pool_ = std::move(pool);
}

// Applies a tag string produced by the dispatched hmerge kernel over the
// two inputs' prefix keys: take-runs turn into one bulk entry copy each
// (the freq/rank payload moves without being inspected), and the scalar
// reconciliation below runs only on kHmergeMatch positions.  A match tag
// certifies equal *prefixes*; the full fingerprints are compared here
// and a cross-input prefix collision emits both entries, fingerprint-
// ascending, instead of fusing them.
void BoundedFpSet::merge_entries_kernel(const BoundedFpSet& other,
                                        const std::uint8_t* tags,
                                        std::size_t out_len,
                                        MergeStats& stats) {
  std::size_t live_ranks = 0;
  for (const FpEntry& e : entries_) live_ranks += e.rank_len;
  for (const FpEntry& e : other.entries_) live_ranks += e.rank_len;

  std::vector<FpEntry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  std::vector<std::int32_t> pool;
  pool.reserve(live_ranks);
  std::vector<std::int32_t> scratch;

  const auto copy_run = [&](const BoundedFpSet& src, std::size_t first,
                            std::size_t len) {
    const std::size_t at = merged.size();
    merged.insert(merged.end(), src.entries_.begin() + first,
                  src.entries_.begin() + first + len);
    for (std::size_t t = 0; t < len; ++t) {
      FpEntry& e = merged[at + t];
      const std::uint32_t off = static_cast<std::uint32_t>(pool.size());
      const auto r = src.ranks(e);
      pool.insert(pool.end(), r.begin(), r.end());
      e.rank_off = off;
    }
  };

  std::size_t ia = 0;
  std::size_t ib = 0;
  std::size_t t = 0;
  while (t < out_len) {
    const std::uint8_t tag = tags[t];
    std::size_t run = 1;
    while (t + run < out_len && tags[t + run] == tag) ++run;
    t += run;
    if (tag == kernels::kHmergeTakeA) {
      copy_run(*this, ia, run);
      ia += run;
      continue;
    }
    if (tag == kernels::kHmergeTakeB) {
      copy_run(other, ib, run);
      ib += run;
      continue;
    }
    for (std::size_t x = 0; x < run; ++x) {
      const FpEntry& a = entries_[ia++];
      const FpEntry& b = other.entries_[ib++];
      if (a.fp != b.fp) {
        // Cross-input prefix collision: distinct fingerprints, same
        // 8-byte prefix.  Both survive, ordered by full fingerprint.
        const bool a_first = a.fp < b.fp;
        copy_run(a_first ? *this : other, (a_first ? ia : ib) - 1, 1);
        copy_run(a_first ? other : *this, (a_first ? ib : ia) - 1, 1);
        continue;
      }
      scratch.clear();
      const auto ra = ranks(a);
      const auto rb = other.ranks(b);
      std::merge(ra.begin(), ra.end(), rb.begin(), rb.end(),
                 std::back_inserter(scratch));
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
      truncate_ranks(scratch, stats);

      FpEntry out;
      out.fp = a.fp;
      out.freq = a.freq + b.freq;
      out.rank_off = static_cast<std::uint32_t>(pool.size());
      out.rank_len = static_cast<std::uint32_t>(scratch.size());
      pool.insert(pool.end(), scratch.begin(), scratch.end());
      merged.push_back(out);
    }
  }

  entries_ = std::move(merged);
  rank_pool_ = std::move(pool);
}

MergeStats BoundedFpSet::merge_from(BoundedFpSet&& other) {
  if (other.k_ != k_ || other.f_cap_ != f_cap_ ||
      other.rank_load_.size() != rank_load_.size()) {
    throw std::invalid_argument("BoundedFpSet: incompatible merge operands");
  }
  seal();
  other.seal();
  MergeStats stats;
  stats.entries_scanned = other.entries_.size();

  // Combined designation counts steer the load-aware truncations below.
  for (std::size_t i = 0; i < rank_load_.size(); ++i) {
    rank_load_[i] += other.rank_load_[i];
  }

  std::vector<std::uint64_t> ka;
  std::vector<std::uint64_t> kb;
  if (build_keys(entries_, ka) && build_keys(other.entries_, kb)) {
    std::vector<std::uint8_t> tags(ka.size() + kb.size());
    const kernels::HmergeResult plan = kernels::dispatch().hmerge(
        ka.data(), ka.size(), kb.data(), kb.size(), tags.data());
    merge_entries_kernel(other, tags.data(), plan.out_len, stats);
  } else {
    merge_entries_scalar(other, stats);
  }
  truncate_to_f(stats);
  return stats;
}

MergeStats BoundedFpSet::merge_many(std::vector<BoundedFpSet>&& others) {
  MergeStats stats;
  if (others.empty()) return stats;
  for (const BoundedFpSet& o : others) {
    if (o.k_ != k_ || o.f_cap_ != f_cap_ ||
        o.rank_load_.size() != rank_load_.size()) {
      throw std::invalid_argument("BoundedFpSet: incompatible merge operands");
    }
  }
  seal();
  std::size_t total = entries_.size();
  std::size_t live_ranks = 0;
  for (const FpEntry& e : entries_) live_ranks += e.rank_len;
  for (BoundedFpSet& o : others) {
    o.seal();
    stats.entries_scanned += o.entries_.size();
    total += o.entries_.size();
    for (const FpEntry& e : o.entries_) live_ranks += e.rank_len;
    for (std::size_t i = 0; i < rank_load_.size(); ++i) {
      rank_load_[i] += o.rank_load_[i];
    }
  }

  // One multi-way pass over all fp-sorted inputs.  The source count is a
  // reduction-tree fan-in (single digits), so a linear min-scan per
  // output beats heap bookkeeping; every input entry is read exactly
  // once and the accumulated set is written exactly once — iterated
  // pairwise merging would rewrite it once per child.
  struct Source {
    const BoundedFpSet* set;
    std::size_t pos;
  };
  std::vector<Source> srcs;
  srcs.reserve(1 + others.size());
  srcs.push_back({this, 0});
  for (const BoundedFpSet& o : others) srcs.push_back({&o, 0});

  std::vector<FpEntry> merged;
  merged.reserve(total);
  std::vector<std::int32_t> pool;
  pool.reserve(live_ranks);
  std::vector<std::int32_t> scratch;
  std::vector<std::size_t> hits;  // source indices at the current minimum

  for (;;) {
    const hash::Fingerprint* min_fp = nullptr;
    hits.clear();
    for (std::size_t si = 0; si < srcs.size(); ++si) {
      const Source& s = srcs[si];
      if (s.pos >= s.set->entries_.size()) continue;
      const hash::Fingerprint& fp = s.set->entries_[s.pos].fp;
      if (min_fp == nullptr || fp < *min_fp) {
        min_fp = &fp;
        hits.clear();
        hits.push_back(si);
      } else if (fp == *min_fp) {
        hits.push_back(si);
      }
    }
    if (min_fp == nullptr) break;
    if (hits.size() == 1) {
      Source& s = srcs[hits[0]];
      const FpEntry& e = s.set->entries_[s.pos++];
      FpEntry out = e;
      out.rank_off = static_cast<std::uint32_t>(pool.size());
      const auto r = s.set->ranks(e);
      pool.insert(pool.end(), r.begin(), r.end());
      merged.push_back(out);
      continue;
    }
    // Shared fingerprint across several children: sum frequencies, union
    // all rank lists, enforce K once against the combined loads.
    FpEntry out;
    out.fp = *min_fp;
    out.freq = 0;
    scratch.clear();
    for (const std::size_t si : hits) {
      Source& s = srcs[si];
      const FpEntry& e = s.set->entries_[s.pos++];
      out.freq += e.freq;
      const auto r = s.set->ranks(e);
      scratch.insert(scratch.end(), r.begin(), r.end());
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    truncate_ranks(scratch, stats);
    out.rank_off = static_cast<std::uint32_t>(pool.size());
    out.rank_len = static_cast<std::uint32_t>(scratch.size());
    pool.insert(pool.end(), scratch.begin(), scratch.end());
    merged.push_back(out);
  }

  entries_ = std::move(merged);
  rank_pool_ = std::move(pool);
  truncate_to_f(stats);
  return stats;
}

bool BoundedFpSet::check_invariants() const {
  seal();
  if (entries_.size() > f_cap_) return false;
  std::vector<std::uint32_t> counted(rank_load_.size(), 0);
  const hash::Fingerprint* prev = nullptr;
  for (const FpEntry& e : entries_) {
    if (prev != nullptr && !(*prev < e.fp)) return false;
    prev = &e.fp;
    if (e.freq == 0) return false;
    if (e.rank_len == 0 || e.rank_len > static_cast<std::uint32_t>(k_)) {
      return false;
    }
    if (static_cast<std::size_t>(e.rank_off) + e.rank_len > rank_pool_.size()) {
      return false;
    }
    const auto r = ranks(e);
    if (!std::is_sorted(r.begin(), r.end())) return false;
    if (std::adjacent_find(r.begin(), r.end()) != r.end()) return false;
    for (const std::int32_t rank : r) {
      if (rank < 0 || static_cast<std::size_t>(rank) >= counted.size()) {
        return false;
      }
      ++counted[static_cast<std::size_t>(rank)];
    }
  }
  return counted == rank_load_;
}

// Wire format (canonical: entries fingerprint-ascending, so equal sets
// serialize to identical bytes):
//   header: F, K, nranks, rank_load[], entry count
//   per entry, delta-coded against the previous fingerprint:
//     u8 lead  — zero bytes before the significant delta run
//     u8 len   — significant delta bytes (big-endian); trailing zeros
//                implied (u64-derived fingerprints have 12 of them)
//     len raw bytes, varint freq, varint rank count,
//     varint first rank then varint rank deltas (lists are sorted).
void save(simmpi::OArchive& ar, const BoundedFpSet& s) {
  s.seal();
  ar.put(s.f_cap_);
  ar.put(s.k_);
  ar.put(static_cast<std::uint32_t>(s.rank_load_.size()));
  ar.put(s.rank_load_);
  ar.put_size(s.entries_.size());

  std::size_t live_ranks = 0;
  for (const FpEntry& e : s.entries_) live_ranks += e.rank_len;
  // One reservation covers the worst case of the whole entry stream: 2
  // header bytes + full fingerprint + 5-byte freq varint per entry, 5
  // bytes per designated rank.
  ar.reserve(s.entries_.size() * (2 + kFpBytes + 5 + 5) + live_ranks * 5);

  hash::Fingerprint prev;
  for (const FpEntry& e : s.entries_) {
    const auto delta = fp_sub(e.fp, prev);
    std::size_t lead = 0;
    while (lead < kFpBytes && delta[lead] == 0) ++lead;
    std::size_t last = kFpBytes;
    while (last > lead && delta[last - 1] == 0) --last;
    const std::size_t len = last - lead;  // 0 only for an all-zero delta
    // One buffer append for the fixed-layout head (lead, len, delta run)
    // instead of three; the varints batch their bytes internally.
    std::uint8_t head[2 + kFpBytes];
    head[0] = static_cast<std::uint8_t>(lead);
    head[1] = static_cast<std::uint8_t>(len);
    std::memcpy(head + 2, delta.data() + lead, len);
    ar.write_raw(head, 2 + len);
    ar.put_varint(e.freq);
    const auto r = s.ranks(e);
    ar.put_varint(r.size());
    std::int32_t prev_rank = 0;
    for (const std::int32_t rank : r) {
      ar.put_varint(static_cast<std::uint64_t>(rank - prev_rank));
      prev_rank = rank;
    }
    prev = e.fp;
  }
}

void load(simmpi::IArchive& ar, BoundedFpSet& s) {
  ar.get(s.f_cap_);
  ar.get(s.k_);
  std::uint32_t nranks = 0;
  ar.get(nranks);
  ar.get(s.rank_load_);
  if (s.rank_load_.size() != nranks) {
    throw std::runtime_error("BoundedFpSet: corrupt load vector");
  }
  const std::size_t count = ar.get_size();
  s.entries_.clear();
  s.entries_.reserve(count);
  s.rank_pool_.clear();
  s.rank_pool_.reserve(count);  // >= one designated rank per entry

  hash::Fingerprint prev;
  for (std::size_t i = 0; i < count; ++i) {
    const auto lead = ar.get<std::uint8_t>();
    const auto len = ar.get<std::uint8_t>();
    if (static_cast<std::size_t>(lead) + len > kFpBytes) {
      throw std::runtime_error("BoundedFpSet: corrupt fingerprint delta");
    }
    std::array<std::uint8_t, kFpBytes> delta{};
    ar.read_raw(delta.data() + lead, len);
    if (i > 0 && len == 0) {
      throw std::runtime_error("BoundedFpSet: fingerprints not ascending");
    }
    FpEntry e;
    e.fp = prev;
    if (fp_add(e.fp, delta) != 0) {
      throw std::runtime_error("BoundedFpSet: corrupt fingerprint delta");
    }
    e.freq = static_cast<std::uint32_t>(ar.get_varint());
    e.rank_off = static_cast<std::uint32_t>(s.rank_pool_.size());
    e.rank_len = static_cast<std::uint32_t>(ar.get_varint());
    std::int32_t rank = 0;
    for (std::uint32_t j = 0; j < e.rank_len; ++j) {
      rank += static_cast<std::int32_t>(ar.get_varint());
      s.rank_pool_.push_back(rank);
    }
    s.entries_.push_back(e);
    prev = e.fp;
  }
  s.sealed_ = true;
}

}  // namespace collrep::core
