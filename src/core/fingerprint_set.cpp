#include "core/fingerprint_set.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

namespace collrep::core {

namespace {

constexpr std::size_t kFpBytes = hash::Fingerprint::kBytes;

// delta = a - b over the fingerprint bytes viewed as one big-endian
// 160-bit integer (byte-lexicographic order == big-endian numeric order,
// which is exactly the order entries are sorted in).
std::array<std::uint8_t, kFpBytes> fp_sub(const hash::Fingerprint& a,
                                          const hash::Fingerprint& b) {
  std::array<std::uint8_t, kFpBytes> delta{};
  const auto ab = a.bytes();
  const auto bb = b.bytes();
  int borrow = 0;
  for (std::size_t i = kFpBytes; i-- > 0;) {
    const int d = static_cast<int>(ab[i]) - static_cast<int>(bb[i]) - borrow;
    borrow = d < 0 ? 1 : 0;
    delta[i] = static_cast<std::uint8_t>(d & 0xFF);
  }
  return delta;
}

// base += delta (big-endian); returns the carry out of the top byte.
int fp_add(hash::Fingerprint& base,
           const std::array<std::uint8_t, kFpBytes>& delta) {
  const auto bytes = base.bytes();
  int carry = 0;
  for (std::size_t i = kFpBytes; i-- > 0;) {
    const int s = static_cast<int>(bytes[i]) + static_cast<int>(delta[i]) +
                  carry;
    carry = s > 0xFF ? 1 : 0;
    bytes[i] = static_cast<std::uint8_t>(s & 0xFF);
  }
  return carry;
}

}  // namespace

BoundedFpSet::BoundedFpSet(std::uint32_t f_cap, int k, int nranks)
    : f_cap_(f_cap), k_(k), rank_load_(static_cast<std::size_t>(nranks), 0) {
  if (f_cap == 0) throw std::invalid_argument("BoundedFpSet: F must be > 0");
  if (k < 1) throw std::invalid_argument("BoundedFpSet: K must be >= 1");
  if (nranks < 1) throw std::invalid_argument("BoundedFpSet: nranks >= 1");
}

void BoundedFpSet::add_local(const hash::Fingerprint& fp, int rank) {
  FpEntry e;
  e.fp = fp;
  e.freq = 1;
  e.rank_off = static_cast<std::uint32_t>(rank_pool_.size());
  e.rank_len = 1;
  entries_.push_back(e);
  rank_pool_.push_back(rank);
  ++rank_load_[static_cast<std::size_t>(rank)];
  sealed_ = false;
}

void BoundedFpSet::seal() const {
  if (sealed_) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const FpEntry& a, const FpEntry& b) { return a.fp < b.fp; });
  const auto dup = std::adjacent_find(
      entries_.begin(), entries_.end(),
      [](const FpEntry& a, const FpEntry& b) { return a.fp == b.fp; });
  if (dup != entries_.end()) {
    throw std::logic_error("BoundedFpSet: duplicate local fingerprint");
  }
  sealed_ = true;
}

const FpEntry* BoundedFpSet::find(const hash::Fingerprint& fp) const {
  seal();
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), fp,
      [](const FpEntry& e, const hash::Fingerprint& key) { return e.fp < key; });
  if (it == entries_.end() || it->fp != fp) return nullptr;
  return &*it;
}

std::span<const FpEntry> BoundedFpSet::entries() const {
  seal();
  return entries_;
}

MergeStats BoundedFpSet::enforce_f() {
  seal();
  MergeStats stats;
  truncate_to_f(stats);
  return stats;
}

std::size_t BoundedFpSet::prune_singletons() {
  seal();
  std::size_t kept = 0;
  for (const FpEntry& e : entries_) {
    if (e.freq <= 1) {
      for (const std::int32_t r : ranks(e)) {
        --rank_load_[static_cast<std::size_t>(r)];
      }
    } else {
      entries_[kept++] = e;
    }
  }
  const std::size_t removed = entries_.size() - kept;
  entries_.resize(kept);
  return removed;
}

void BoundedFpSet::truncate_ranks(std::vector<std::int32_t>& scratch,
                                  MergeStats& stats) {
  if (scratch.size() <= static_cast<std::size_t>(k_)) return;
  // Keep the K least loaded designated ranks ("the most loaded ranks are
  // eliminated first", §III-B); ties break toward the lower rank id so the
  // outcome is independent of container iteration order.
  std::stable_sort(scratch.begin(), scratch.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     const auto la = rank_load_[static_cast<std::size_t>(a)];
                     const auto lb = rank_load_[static_cast<std::size_t>(b)];
                     if (la != lb) return la < lb;
                     return a < b;
                   });
  for (std::size_t i = static_cast<std::size_t>(k_); i < scratch.size(); ++i) {
    --rank_load_[static_cast<std::size_t>(scratch[i])];
    ++stats.ranks_dropped_load;
  }
  scratch.resize(static_cast<std::size_t>(k_));
  std::sort(scratch.begin(), scratch.end());
}

void BoundedFpSet::truncate_to_f(MergeStats& stats) {
  if (entries_.size() <= f_cap_) return;
  // Rank all entries by (freq desc, fp asc) and keep the first F; the fp
  // tie-break keeps the survivor set deterministic.
  std::vector<std::uint32_t> order(entries_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(), order.begin() + f_cap_, order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (entries_[a].freq != entries_[b].freq) {
                       return entries_[a].freq > entries_[b].freq;
                     }
                     return entries_[a].fp < entries_[b].fp;
                   });
  std::vector<char> dropped(entries_.size(), 0);
  for (std::size_t i = f_cap_; i < order.size(); ++i) dropped[order[i]] = 1;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (dropped[i]) {
      for (const std::int32_t r : ranks(entries_[i])) {
        --rank_load_[static_cast<std::size_t>(r)];
      }
      ++stats.entries_dropped_f;
    } else {
      entries_[kept++] = entries_[i];  // compaction keeps fp order
    }
  }
  entries_.resize(kept);
}

MergeStats BoundedFpSet::merge_from(BoundedFpSet&& other) {
  if (other.k_ != k_ || other.f_cap_ != f_cap_ ||
      other.rank_load_.size() != rank_load_.size()) {
    throw std::invalid_argument("BoundedFpSet: incompatible merge operands");
  }
  seal();
  other.seal();
  MergeStats stats;
  stats.entries_scanned = other.entries_.size();

  // Combined designation counts steer the load-aware truncations below.
  for (std::size_t i = 0; i < rank_load_.size(); ++i) {
    rank_load_[i] += other.rank_load_[i];
  }

  std::size_t live_ranks = 0;
  for (const FpEntry& e : entries_) live_ranks += e.rank_len;
  for (const FpEntry& e : other.entries_) live_ranks += e.rank_len;

  // Single linear pass over both fp-sorted entry vectors; rank lists are
  // rewritten into a fresh pool, which also drops pool garbage left by
  // earlier truncations.
  std::vector<FpEntry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  std::vector<std::int32_t> pool;
  pool.reserve(live_ranks);
  std::vector<std::int32_t> scratch;

  const auto copy_entry = [&](const BoundedFpSet& src, const FpEntry& e) {
    FpEntry out = e;
    out.rank_off = static_cast<std::uint32_t>(pool.size());
    const auto r = src.ranks(e);
    pool.insert(pool.end(), r.begin(), r.end());
    merged.push_back(out);
  };

  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < entries_.size() || ib < other.entries_.size()) {
    if (ib == other.entries_.size() ||
        (ia < entries_.size() && entries_[ia].fp < other.entries_[ib].fp)) {
      copy_entry(*this, entries_[ia++]);
      continue;
    }
    if (ia == entries_.size() || other.entries_[ib].fp < entries_[ia].fp) {
      copy_entry(other, other.entries_[ib++]);
      continue;
    }
    // Common fingerprint: sum frequencies, union the two sorted rank lists
    // (disjoint by construction: each rank's fingerprints enter the
    // reduction exactly once), re-enforce the K bound.
    const FpEntry& a = entries_[ia++];
    const FpEntry& b = other.entries_[ib++];
    scratch.clear();
    const auto ra = ranks(a);
    const auto rb = other.ranks(b);
    std::merge(ra.begin(), ra.end(), rb.begin(), rb.end(),
               std::back_inserter(scratch));
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    truncate_ranks(scratch, stats);

    FpEntry out;
    out.fp = a.fp;
    out.freq = a.freq + b.freq;
    out.rank_off = static_cast<std::uint32_t>(pool.size());
    out.rank_len = static_cast<std::uint32_t>(scratch.size());
    pool.insert(pool.end(), scratch.begin(), scratch.end());
    merged.push_back(out);
  }

  entries_ = std::move(merged);
  rank_pool_ = std::move(pool);
  truncate_to_f(stats);
  return stats;
}

bool BoundedFpSet::check_invariants() const {
  seal();
  if (entries_.size() > f_cap_) return false;
  std::vector<std::uint32_t> counted(rank_load_.size(), 0);
  const hash::Fingerprint* prev = nullptr;
  for (const FpEntry& e : entries_) {
    if (prev != nullptr && !(*prev < e.fp)) return false;
    prev = &e.fp;
    if (e.freq == 0) return false;
    if (e.rank_len == 0 || e.rank_len > static_cast<std::uint32_t>(k_)) {
      return false;
    }
    if (static_cast<std::size_t>(e.rank_off) + e.rank_len > rank_pool_.size()) {
      return false;
    }
    const auto r = ranks(e);
    if (!std::is_sorted(r.begin(), r.end())) return false;
    if (std::adjacent_find(r.begin(), r.end()) != r.end()) return false;
    for (const std::int32_t rank : r) {
      if (rank < 0 || static_cast<std::size_t>(rank) >= counted.size()) {
        return false;
      }
      ++counted[static_cast<std::size_t>(rank)];
    }
  }
  return counted == rank_load_;
}

// Wire format (canonical: entries fingerprint-ascending, so equal sets
// serialize to identical bytes):
//   header: F, K, nranks, rank_load[], entry count
//   per entry, delta-coded against the previous fingerprint:
//     u8 lead  — zero bytes before the significant delta run
//     u8 len   — significant delta bytes (big-endian); trailing zeros
//                implied (u64-derived fingerprints have 12 of them)
//     len raw bytes, varint freq, varint rank count,
//     varint first rank then varint rank deltas (lists are sorted).
void save(simmpi::OArchive& ar, const BoundedFpSet& s) {
  s.seal();
  ar.put(s.f_cap_);
  ar.put(s.k_);
  ar.put(static_cast<std::uint32_t>(s.rank_load_.size()));
  ar.put(s.rank_load_);
  ar.put_size(s.entries_.size());

  std::size_t live_ranks = 0;
  for (const FpEntry& e : s.entries_) live_ranks += e.rank_len;
  // Worst case per entry: 2 header bytes + full fingerprint + 5-byte freq
  // varint; 5 bytes per designated rank.
  ar.reserve(s.entries_.size() * (2 + kFpBytes + 5 + 5) + live_ranks * 5);

  hash::Fingerprint prev;
  for (const FpEntry& e : s.entries_) {
    const auto delta = fp_sub(e.fp, prev);
    std::size_t lead = 0;
    while (lead < kFpBytes && delta[lead] == 0) ++lead;
    std::size_t last = kFpBytes;
    while (last > lead && delta[last - 1] == 0) --last;
    const std::size_t len = last - lead;  // 0 only for an all-zero delta
    ar.put(static_cast<std::uint8_t>(lead));
    ar.put(static_cast<std::uint8_t>(len));
    ar.write_raw(delta.data() + lead, len);
    ar.put_varint(e.freq);
    const auto r = s.ranks(e);
    ar.put_varint(r.size());
    std::int32_t prev_rank = 0;
    for (const std::int32_t rank : r) {
      ar.put_varint(static_cast<std::uint64_t>(rank - prev_rank));
      prev_rank = rank;
    }
    prev = e.fp;
  }
}

void load(simmpi::IArchive& ar, BoundedFpSet& s) {
  ar.get(s.f_cap_);
  ar.get(s.k_);
  std::uint32_t nranks = 0;
  ar.get(nranks);
  ar.get(s.rank_load_);
  if (s.rank_load_.size() != nranks) {
    throw std::runtime_error("BoundedFpSet: corrupt load vector");
  }
  const std::size_t count = ar.get_size();
  s.entries_.clear();
  s.entries_.reserve(count);
  s.rank_pool_.clear();

  hash::Fingerprint prev;
  for (std::size_t i = 0; i < count; ++i) {
    const auto lead = ar.get<std::uint8_t>();
    const auto len = ar.get<std::uint8_t>();
    if (static_cast<std::size_t>(lead) + len > kFpBytes) {
      throw std::runtime_error("BoundedFpSet: corrupt fingerprint delta");
    }
    std::array<std::uint8_t, kFpBytes> delta{};
    ar.read_raw(delta.data() + lead, len);
    if (i > 0 && len == 0) {
      throw std::runtime_error("BoundedFpSet: fingerprints not ascending");
    }
    FpEntry e;
    e.fp = prev;
    if (fp_add(e.fp, delta) != 0) {
      throw std::runtime_error("BoundedFpSet: corrupt fingerprint delta");
    }
    e.freq = static_cast<std::uint32_t>(ar.get_varint());
    e.rank_off = static_cast<std::uint32_t>(s.rank_pool_.size());
    e.rank_len = static_cast<std::uint32_t>(ar.get_varint());
    std::int32_t rank = 0;
    for (std::uint32_t j = 0; j < e.rank_len; ++j) {
      rank += static_cast<std::int32_t>(ar.get_varint());
      s.rank_pool_.push_back(rank);
    }
    s.entries_.push_back(e);
    prev = e.fp;
  }
  s.sealed_ = true;
}

}  // namespace collrep::core
