#include "core/fingerprint_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace collrep::core {

BoundedFpSet::BoundedFpSet(std::uint32_t f_cap, int k, int nranks)
    : f_cap_(f_cap), k_(k), rank_load_(static_cast<std::size_t>(nranks), 0) {
  if (f_cap == 0) throw std::invalid_argument("BoundedFpSet: F must be > 0");
  if (k < 1) throw std::invalid_argument("BoundedFpSet: K must be >= 1");
  if (nranks < 1) throw std::invalid_argument("BoundedFpSet: nranks >= 1");
}

void BoundedFpSet::add_local(const hash::Fingerprint& fp, int rank) {
  auto [it, inserted] = entries_.try_emplace(fp);
  if (!inserted) {
    throw std::logic_error("BoundedFpSet: duplicate local fingerprint");
  }
  it->second.freq = 1;
  it->second.ranks = {rank};
  ++rank_load_[static_cast<std::size_t>(rank)];
}

MergeStats BoundedFpSet::enforce_f() {
  MergeStats stats;
  truncate_to_f(stats);
  return stats;
}

std::size_t BoundedFpSet::prune_singletons() {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.freq <= 1) {
      for (const std::int32_t r : it->second.ranks) {
        --rank_load_[static_cast<std::size_t>(r)];
      }
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void BoundedFpSet::truncate_ranks(FpEntry& entry, MergeStats& stats) {
  if (entry.ranks.size() <= static_cast<std::size_t>(k_)) return;
  // Keep the K least loaded designated ranks ("the most loaded ranks are
  // eliminated first", §III-B); ties break toward the lower rank id so the
  // outcome is independent of container iteration order.
  std::stable_sort(entry.ranks.begin(), entry.ranks.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     const auto la = rank_load_[static_cast<std::size_t>(a)];
                     const auto lb = rank_load_[static_cast<std::size_t>(b)];
                     if (la != lb) return la < lb;
                     return a < b;
                   });
  for (std::size_t i = static_cast<std::size_t>(k_); i < entry.ranks.size();
       ++i) {
    --rank_load_[static_cast<std::size_t>(entry.ranks[i])];
    ++stats.ranks_dropped_load;
  }
  entry.ranks.resize(static_cast<std::size_t>(k_));
  std::sort(entry.ranks.begin(), entry.ranks.end());
}

void BoundedFpSet::truncate_to_f(MergeStats& stats) {
  if (entries_.size() <= f_cap_) return;
  // Rank all entries by (freq desc, fp asc) and keep the first F.  The fp
  // tie-break makes the survivor set independent of hash-map order.
  std::vector<std::pair<std::uint32_t, hash::Fingerprint>> order;
  order.reserve(entries_.size());
  for (const auto& [fp, e] : entries_) order.emplace_back(e.freq, fp);
  const auto cmp = [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  std::nth_element(order.begin(), order.begin() + f_cap_, order.end(), cmp);
  for (std::size_t i = f_cap_; i < order.size(); ++i) {
    const auto it = entries_.find(order[i].second);
    for (std::int32_t r : it->second.ranks) {
      --rank_load_[static_cast<std::size_t>(r)];
    }
    entries_.erase(it);
    ++stats.entries_dropped_f;
  }
}

MergeStats BoundedFpSet::merge_from(BoundedFpSet&& other) {
  if (other.k_ != k_ || other.f_cap_ != f_cap_ ||
      other.rank_load_.size() != rank_load_.size()) {
    throw std::invalid_argument("BoundedFpSet: incompatible merge operands");
  }
  MergeStats stats;

  // Combined designation counts steer the load-aware truncations below.
  for (std::size_t i = 0; i < rank_load_.size(); ++i) {
    rank_load_[i] += other.rank_load_[i];
  }

  // Deterministic processing order (fingerprint ascending) so truncation
  // decisions do not depend on unordered_map layout.
  std::vector<hash::Fingerprint> order;
  order.reserve(other.entries_.size());
  for (const auto& [fp, e] : other.entries_) order.push_back(fp);
  std::sort(order.begin(), order.end());

  for (const auto& fp : order) {
    auto node = other.entries_.extract(fp);
    FpEntry& incoming = node.mapped();
    ++stats.entries_scanned;
    const auto it = entries_.find(fp);
    if (it == entries_.end()) {
      entries_.emplace(fp, std::move(incoming));
      continue;
    }
    FpEntry& mine = it->second;
    mine.freq += incoming.freq;
    // Union of two sorted, disjoint-by-construction rank lists.  (The same
    // rank cannot be designated on both sides: each rank's fingerprints
    // enter the reduction exactly once.)
    std::vector<std::int32_t> merged;
    merged.reserve(mine.ranks.size() + incoming.ranks.size());
    std::merge(mine.ranks.begin(), mine.ranks.end(), incoming.ranks.begin(),
               incoming.ranks.end(), std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    mine.ranks = std::move(merged);
    truncate_ranks(mine, stats);
  }

  truncate_to_f(stats);
  return stats;
}

bool BoundedFpSet::check_invariants() const {
  if (entries_.size() > f_cap_) return false;
  std::vector<std::uint32_t> counted(rank_load_.size(), 0);
  for (const auto& [fp, e] : entries_) {
    if (e.freq == 0) return false;
    if (e.ranks.empty() || e.ranks.size() > static_cast<std::size_t>(k_)) {
      return false;
    }
    if (!std::is_sorted(e.ranks.begin(), e.ranks.end())) return false;
    if (std::adjacent_find(e.ranks.begin(), e.ranks.end()) != e.ranks.end()) {
      return false;
    }
    for (std::int32_t r : e.ranks) {
      if (r < 0 || static_cast<std::size_t>(r) >= counted.size()) return false;
      ++counted[static_cast<std::size_t>(r)];
    }
  }
  return counted == rank_load_;
}

void save(simmpi::OArchive& ar, const BoundedFpSet& s) {
  ar.put(s.f_cap_);
  ar.put(s.k_);
  ar.put(static_cast<std::uint32_t>(s.rank_load_.size()));
  ar.put(s.rank_load_);
  ar.put_size(s.entries_.size());
  for (const auto& [fp, e] : s.entries_) {
    ar.put(fp);
    ar.put(e.freq);
    ar.put(static_cast<std::uint16_t>(e.ranks.size()));
    for (std::int32_t r : e.ranks) ar.put(r);
  }
}

void load(simmpi::IArchive& ar, BoundedFpSet& s) {
  ar.get(s.f_cap_);
  ar.get(s.k_);
  std::uint32_t nranks = 0;
  ar.get(nranks);
  ar.get(s.rank_load_);
  if (s.rank_load_.size() != nranks) {
    throw std::runtime_error("BoundedFpSet: corrupt load vector");
  }
  const std::size_t count = ar.get_size();
  s.entries_.clear();
  s.entries_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    hash::Fingerprint fp;
    ar.get(fp);
    FpEntry e;
    ar.get(e.freq);
    const auto nranks_entry = ar.get<std::uint16_t>();
    e.ranks.resize(nranks_entry);
    for (auto& r : e.ranks) ar.get(r);
    s.entries_.emplace(fp, std::move(e));
  }
}

}  // namespace collrep::core
