// Restart path: rebuild a rank's dumped dataset from the surviving local
// stores.  This is what makes the replication factor meaningful — the
// paper's checkpoint-restart use case tolerates up to K-1 device failures,
// and the failure-injection tests drive exactly that property.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "chunk/store.hpp"
#include "simmpi/comm.hpp"

namespace collrep::core {

class ManifestLostError : public std::runtime_error {
 public:
  explicit ManifestLostError(int rank)
      : std::runtime_error("restore: no surviving manifest for rank " +
                           std::to_string(rank)) {}
};

class ChunkLostError : public std::runtime_error {
 public:
  ChunkLostError()
      : std::runtime_error(
            "restore: a chunk is not available on any surviving store") {}
};

struct RestoreResult {
  std::vector<std::vector<std::uint8_t>> segments;
  std::uint64_t chunks_from_own_store = 0;
  std::uint64_t chunks_from_remote_stores = 0;
  std::uint64_t bytes_from_own_store = 0;
  std::uint64_t bytes_from_remote_stores = 0;
};

// Rebuilds `rank`'s most recent dump from `stores` (index == rank).  Failed
// stores are skipped; throws ManifestLostError / ChunkLostError when the
// failure pattern exceeds what the replication factor can tolerate.
// Stores must be payload mode.
[[nodiscard]] RestoreResult restore_rank(
    std::span<chunk::ChunkStore* const> stores, int rank);

struct CollectiveRestoreStats {
  std::uint64_t local_bytes = 0;
  std::uint64_t remote_bytes = 0;
  // Aligned completion time of the collective restart (same on all ranks).
  double total_time_s = 0.0;
};

// RESTORE_INPUT: the collective restart counterpart of DUMP_OUTPUT.
// Every rank rebuilds its own most recent dump; local reads are charged at
// HDD read rate, remote fetches additionally traverse the network.  Must
// be called by all ranks of the communicator.
[[nodiscard]] std::pair<RestoreResult, CollectiveRestoreStats> restore_input(
    simmpi::Comm& comm, std::span<chunk::ChunkStore* const> stores);

}  // namespace collrep::core
