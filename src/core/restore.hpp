// Restart path: rebuild a rank's dumped dataset from the surviving local
// stores.  This is what makes the replication factor meaningful — the
// paper's checkpoint-restart use case tolerates up to K-1 device failures,
// and the failure-injection tests drive exactly that property.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "chunk/store.hpp"
#include "hash/fingerprint.hpp"
#include "simmpi/comm.hpp"

namespace collrep::core {

namespace detail {
[[nodiscard]] std::string manifest_lost_message(int rank, int consulted,
                                                int failed);
[[nodiscard]] std::string chunk_lost_message(const hash::Fingerprint* fp,
                                             int owner_rank, int consulted,
                                             int failed);
}  // namespace detail

// The degraded-restore errors carry enough to make a failing test
// actionable: which dataset, which chunk (fingerprint hex prefix), and how
// many stores were consulted vs. already failed when the search gave up.
// `stores_consulted`/`stores_failed` are -1 when the throw site did not
// track them (legacy call sites).
class ManifestLostError : public std::runtime_error {
 public:
  explicit ManifestLostError(int rank, int stores_consulted = -1,
                             int stores_failed = -1)
      : std::runtime_error(detail::manifest_lost_message(rank, stores_consulted,
                                                         stores_failed)),
        rank_(rank),
        consulted_(stores_consulted),
        failed_(stores_failed) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int stores_consulted() const noexcept { return consulted_; }
  [[nodiscard]] int stores_failed() const noexcept { return failed_; }

 private:
  int rank_;
  int consulted_;
  int failed_;
};

class ChunkLostError : public std::runtime_error {
 public:
  ChunkLostError()
      : std::runtime_error(detail::chunk_lost_message(nullptr, -1, -1, -1)) {}

  ChunkLostError(const hash::Fingerprint& fp, int owner_rank,
                 int stores_consulted = -1, int stores_failed = -1)
      : std::runtime_error(detail::chunk_lost_message(
            &fp, owner_rank, stores_consulted, stores_failed)),
        fp_(fp),
        has_fp_(true),
        owner_rank_(owner_rank),
        consulted_(stores_consulted),
        failed_(stores_failed) {}

  // Fingerprint of the missing chunk; all-zero when unknown (has_fp()).
  [[nodiscard]] const hash::Fingerprint& fp() const noexcept { return fp_; }
  [[nodiscard]] bool has_fp() const noexcept { return has_fp_; }
  // Rank whose dataset needed the chunk; -1 when unknown.
  [[nodiscard]] int owner_rank() const noexcept { return owner_rank_; }
  [[nodiscard]] int stores_consulted() const noexcept { return consulted_; }
  [[nodiscard]] int stores_failed() const noexcept { return failed_; }

 private:
  hash::Fingerprint fp_;
  bool has_fp_ = false;
  int owner_rank_ = -1;
  int consulted_ = -1;
  int failed_ = -1;
};

struct RestoreResult {
  std::vector<std::vector<std::uint8_t>> segments;
  std::uint64_t chunks_from_own_store = 0;
  std::uint64_t chunks_from_remote_stores = 0;
  std::uint64_t bytes_from_own_store = 0;
  std::uint64_t bytes_from_remote_stores = 0;
};

// Rebuilds `rank`'s most recent dump from `stores` (index == rank).  Failed
// stores are skipped; throws ManifestLostError / ChunkLostError when the
// failure pattern exceeds what the replication factor can tolerate.
// Stores must be payload mode.
[[nodiscard]] RestoreResult restore_rank(
    std::span<chunk::ChunkStore* const> stores, int rank);

struct CollectiveRestoreStats {
  std::uint64_t local_bytes = 0;
  std::uint64_t remote_bytes = 0;
  // Aligned completion time of the collective restart (same on all ranks).
  double total_time_s = 0.0;
};

// RESTORE_INPUT: the collective restart counterpart of DUMP_OUTPUT.
// Every rank rebuilds its own most recent dump; local reads are charged at
// HDD read rate, remote fetches additionally traverse the network.  Must
// be called by all ranks of the communicator.
[[nodiscard]] std::pair<RestoreResult, CollectiveRestoreStats> restore_input(
    simmpi::Comm& comm, std::span<chunk::ChunkStore* const> stores);

}  // namespace collrep::core
