#include "core/repair.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

#include "simmpi/collectives.hpp"

namespace collrep::core {

namespace {

constexpr std::size_t kRecordHeaderBytes =
    hash::Fingerprint::kBytes + sizeof(std::uint32_t);

// One replica copy the scrub decided to ship; the plan is computed
// identically on every rank from the merged health set, so offsets need no
// extra communication (the repair analogue of CALC_OFF).
struct RepairSend {
  hash::Fingerprint fp;
  std::uint32_t length = 0;
  int sender = 0;
  int receiver = 0;
  std::uint64_t offset = 0;  // byte offset in the receiver's window
};

}  // namespace

void ReplicaHealthSet::add_local(const hash::Fingerprint& fp,
                                 std::uint32_t length, int rank) {
  Entry& e = entries_[fp];
  e.count += 1;
  e.length = length;
  if (static_cast<int>(e.count) >= k_) {
    e.holders.clear();
    e.holders.shrink_to_fit();
  } else {
    e.holders.insert(
        std::lower_bound(e.holders.begin(), e.holders.end(), rank), rank);
  }
}

std::uint64_t ReplicaHealthSet::merge_from(ReplicaHealthSet&& other) {
  std::uint64_t scanned = 0;
  for (auto& [fp, in] : other.entries_) {
    ++scanned;
    auto [it, inserted] = entries_.try_emplace(fp, std::move(in));
    if (inserted) continue;
    Entry& e = it->second;
    e.count += in.count;
    if (static_cast<int>(e.count) >= k_) {
      e.holders.clear();
      e.holders.shrink_to_fit();
    } else {
      std::vector<std::int32_t> merged;
      merged.reserve(e.holders.size() + in.holders.size());
      std::merge(e.holders.begin(), e.holders.end(), in.holders.begin(),
                 in.holders.end(), std::back_inserter(merged));
      e.holders = std::move(merged);
    }
  }
  other.entries_.clear();
  return scanned;
}

void save(simmpi::OArchive& ar, const ReplicaHealthSet& s) {
  ar.put(s.k_);
  ar.put_size(s.entries_.size());
  for (const auto& [fp, e] : s.entries_) {
    ar.put(fp);
    ar.put(e.count);
    ar.put(e.length);
    ar.put(static_cast<std::uint16_t>(e.holders.size()));
    for (std::int32_t r : e.holders) ar.put(r);
  }
}

void load(simmpi::IArchive& ar, ReplicaHealthSet& s) {
  ar.get(s.k_);
  const std::size_t count = ar.get_size();
  s.entries_.clear();
  s.entries_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    hash::Fingerprint fp;
    ar.get(fp);
    ReplicaHealthSet::Entry e;
    ar.get(e.count);
    ar.get(e.length);
    const auto nholders = ar.get<std::uint16_t>();
    e.holders.resize(nholders);
    for (auto& r : e.holders) ar.get(r);
    s.entries_.emplace(fp, std::move(e));
  }
}

ReplicaHealthSet allreduce_health(simmpi::Comm& comm,
                                  const chunk::ChunkStore& store, int k) {
  const auto& cluster = comm.cluster();
  ReplicaHealthSet mine(k);
  if (!store.failed()) {
    store.for_each_chunk([&](const hash::Fingerprint& fp,
                             std::uint32_t length) {
      mine.add_local(fp, length, comm.rank());
    });
    comm.charge(static_cast<double>(mine.size()) *
                cluster.merge_entry_cost_s);
  }
  return simmpi::allreduce(
      comm, std::move(mine),
      [&comm, &cluster](ReplicaHealthSet a, ReplicaHealthSet b) {
        const std::uint64_t scanned = a.merge_from(std::move(b));
        comm.charge(static_cast<double>(scanned) *
                    cluster.merge_entry_cost_s);
        return a;
      });
}

RepairStats repair_replicas(simmpi::Comm& comm,
                            std::span<chunk::ChunkStore* const> stores,
                            int k) {
  if (k < 1) throw std::invalid_argument("repair_replicas: K must be >= 1");
  const int n = comm.size();
  const int rank = comm.rank();
  if (static_cast<int>(stores.size()) != n) {
    throw std::invalid_argument(
        "repair_replicas: stores span must have one entry per rank");
  }
  const int kmax = simmpi::allreduce_max(comm, k);
  const int kmin =
      simmpi::allreduce(comm, k, [](int a, int b) { return a < b ? a : b; });
  if (kmax != kmin) {
    throw std::invalid_argument("repair_replicas: ranks disagree on K");
  }
  chunk::ChunkStore& store = *stores[static_cast<std::size_t>(rank)];
  const auto& cluster = comm.cluster();

  comm.fault_point("repair.pre");
  comm.barrier();
  const double t0 = comm.clock().now();
  if (auto* t = comm.obs()) {
    t->event(obs::EventKind::kPhaseBegin, t0, "repair");
  }

  RepairStats stats;
  stats.rank = rank;
  stats.k_requested = k;

  // ---- Audit: who is alive, and who holds what ------------------------------
  const auto alive_flags = simmpi::allgather(
      comm, static_cast<std::uint8_t>(store.failed() ? 0 : 1));
  std::vector<int> alive_ranks;
  for (int r = 0; r < n; ++r) {
    if (alive_flags[static_cast<std::size_t>(r)] != 0) alive_ranks.push_back(r);
  }
  stats.alive_stores = static_cast<int>(alive_ranks.size());
  const int keff = std::min(k, stats.alive_stores);
  stats.k_effective = keff;

  if (!store.failed()) {
    store.for_each_chunk([&](const hash::Fingerprint&, std::uint32_t length) {
      ++stats.audited_chunks;
      stats.audited_bytes += length;
    });
    // The audit streams the chunk index, not the payloads.
    comm.charge(static_cast<double>(stats.audited_chunks) *
                cluster.merge_entry_cost_s);
  }

  const ReplicaHealthSet health = allreduce_health(comm, store, keff);
  stats.global_chunks = health.size();

  // Lost chunks: manifest-referenced fingerprints with no replica left on
  // any alive store.  Several ranks can hold replicas of the same manifest,
  // so the per-rank findings are merged (map union) before counting.
  std::map<hash::Fingerprint, std::uint32_t> lost_mine;
  int my_min = keff;
  if (!store.failed()) {
    for (int owner = 0; owner < n; ++owner) {
      const chunk::Manifest* man = store.manifest_for(owner);
      if (man == nullptr) continue;
      for (const auto& entry : man->entries) {
        const ReplicaHealthSet::Entry* h = health.find(entry.fp);
        if (h == nullptr) {
          lost_mine.emplace(entry.fp, entry.length);
          my_min = 0;
        } else {
          my_min = std::min(my_min,
                            std::min(static_cast<int>(h->count), keff));
        }
      }
    }
  }
  const auto lost_all = simmpi::allreduce(
      comm, std::move(lost_mine),
      [](std::map<hash::Fingerprint, std::uint32_t> a,
         std::map<hash::Fingerprint, std::uint32_t> b) {
        a.merge(b);
        return a;
      });
  stats.lost_chunks = lost_all.size();
  for (const auto& [fp, len] : lost_all) stats.lost_bytes += len;
  stats.k_achieved_min_before = simmpi::allreduce(
      comm, my_min, [](int a, int b) { return a < b ? a : b; });

  // ---- Plan: ship exactly the shortfall -------------------------------------
  // Deterministic on every rank: deficits ordered by fingerprint, receivers
  // chosen by a rotating cursor over the alive non-holders (spreads the
  // re-replication load), senders round-robin over the surviving holders.
  std::vector<std::pair<hash::Fingerprint, const ReplicaHealthSet::Entry*>>
      deficits;
  for (const auto& [fp, e] : health.entries()) {
    if (static_cast<int>(e.count) < keff) deficits.emplace_back(fp, &e);
  }
  std::sort(deficits.begin(), deficits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  comm.charge(static_cast<double>(deficits.size()) *
              cluster.merge_entry_cost_s);

  const bool payload_mode = store.mode() == chunk::StoreMode::kPayload;
  std::vector<RepairSend> plan;
  std::vector<std::uint64_t> window_bytes(static_cast<std::size_t>(n), 0);
  std::size_t cursor = 0;
  for (const auto& [fp, e] : deficits) {
    stats.under_replicated_chunks += 1;
    stats.under_replicated_bytes += e->length;
    const int need = keff - static_cast<int>(e->count);
    const std::size_t slot_bytes =
        kRecordHeaderBytes + (payload_mode ? e->length : 0);
    int picked = 0;
    std::size_t seen = 0;
    std::size_t si = 0;
    while (picked < need && seen < alive_ranks.size()) {
      const int r = alive_ranks[cursor % alive_ranks.size()];
      ++cursor;
      ++seen;
      if (std::binary_search(e->holders.begin(), e->holders.end(), r)) {
        continue;
      }
      RepairSend s;
      s.fp = fp;
      s.length = e->length;
      s.sender = e->holders[si++ % e->holders.size()];
      s.receiver = r;
      s.offset = window_bytes[static_cast<std::size_t>(r)];
      window_bytes[static_cast<std::size_t>(r)] += slot_bytes;
      plan.push_back(s);
      ++picked;
    }
    stats.resent_chunks += static_cast<std::uint64_t>(picked);
    stats.resent_bytes +=
        static_cast<std::uint64_t>(picked) * e->length;
  }

  // ---- Exchange: one window epoch, same record layout as DUMP_OUTPUT -------
  simmpi::Window win = comm.win_create(
      static_cast<std::size_t>(window_bytes[static_cast<std::size_t>(rank)]));
  std::vector<std::uint8_t> record;
  for (const RepairSend& s : plan) {
    if (s.sender != rank) continue;
    record.assign(kRecordHeaderBytes + (payload_mode ? s.length : 0), 0);
    std::memcpy(record.data(), s.fp.bytes().data(), hash::Fingerprint::kBytes);
    std::memcpy(record.data() + hash::Fingerprint::kBytes, &s.length,
                sizeof s.length);
    if (payload_mode) {
      const auto payload = store.get(s.fp);
      if (!payload.has_value()) {
        throw std::logic_error(
            "repair_replicas: health set names this rank as holder of a "
            "chunk its store does not have");
      }
      std::memcpy(record.data() + kRecordHeaderBytes, payload->data(),
                  payload->size());
    }
    win.put(s.receiver, static_cast<std::size_t>(s.offset), record,
            kRecordHeaderBytes + s.length);
    ++stats.sent_chunks;
    stats.sent_bytes += s.length;
  }
  comm.fault_point("repair.exchange.mid");
  // Final epoch of the repair window: no RMA follows.
  win.fence(simmpi::kFenceNoSucceed);

  const auto region = win.local();
  for (const RepairSend& s : plan) {
    if (s.receiver != rank || store.failed()) continue;
    if (payload_mode) {
      store.put(s.fp, std::span<const std::uint8_t>{
                          region.data() + s.offset + kRecordHeaderBytes,
                          s.length});
    } else {
      store.put_accounted(s.fp, s.length);
    }
    ++stats.recv_chunks;
    stats.recv_bytes += s.length;
  }
  win.free();
  comm.charge(static_cast<double>(stats.recv_bytes) /
                  cluster.mem_bandwidth_bps +
              static_cast<double>(stats.recv_bytes) / cluster.hdd_write_bps);

  // After the top-up every under-replicated fingerprint is back at K_eff;
  // only chunks with zero surviving replicas stay below it.
  stats.k_achieved_min_after = stats.lost_chunks > 0 ? 0 : keff;

  comm.barrier();
  stats.total_time_s = comm.clock().now() - t0;

  if (auto* t = comm.obs()) {
    t->event(obs::EventKind::kPhaseEnd, comm.clock().now(), "repair");
    auto& m = *t->metrics;
    m.add("repair.audited_chunks", stats.audited_chunks);
    m.add("repair.audited_bytes", stats.audited_bytes);
    m.add("repair.sent_chunks", stats.sent_chunks);
    m.add("repair.sent_bytes", stats.sent_bytes);
    m.add("repair.recv_chunks", stats.recv_chunks);
    m.add("repair.recv_bytes", stats.recv_bytes);
    if (rank == 0) {
      m.add("repair.count");
      m.add("repair.under_replicated_chunks", stats.under_replicated_chunks);
      m.add("repair.under_replicated_bytes", stats.under_replicated_bytes);
      m.add("repair.resent_chunks", stats.resent_chunks);
      m.add("repair.resent_bytes", stats.resent_bytes);
      m.add("repair.lost_chunks", stats.lost_chunks);
      m.add("repair.lost_bytes", stats.lost_bytes);
      m.set("repair.last.alive_stores",
            static_cast<double>(stats.alive_stores));
      m.set("repair.last.k_achieved_min_before",
            static_cast<double>(stats.k_achieved_min_before));
      m.set("repair.last.k_achieved_min_after",
            static_cast<double>(stats.k_achieved_min_after));
      m.set("repair.last.resent_bytes",
            static_cast<double>(stats.resent_bytes));
      m.set("repair.last.total_time_s", stats.total_time_s);
    }
  }
  return stats;
}

}  // namespace collrep::core
