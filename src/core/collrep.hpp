// CollRep public API umbrella header.
//
// CollRep reproduces "Leveraging Naturally Distributed Data Redundancy to
// Reduce Collective I/O Replication Overhead" (B. Nicolae, IPDPS 2015):
// a collective I/O write primitive that co-optimizes inter-process
// deduplication with partner replication.
//
// Quickstart (see examples/quickstart.cpp):
//
//   simmpi::Runtime rt(8);
//   std::vector<chunk::ChunkStore> stores(8);
//   rt.run([&](simmpi::Comm& comm) {
//     std::vector<std::uint8_t> data = produce_local_dataset(comm.rank());
//     chunk::Dataset ds;
//     ds.add_segment(data);
//     core::Dumper dumper(comm, stores[comm.rank()], core::DumpConfig{});
//     const auto stats = dumper.dump_output(ds, /*K=*/3);
//   });
#pragma once

#include "chunk/dataset.hpp"    // IWYU pragma: export
#include "chunk/manifest.hpp"   // IWYU pragma: export
#include "chunk/store.hpp"      // IWYU pragma: export
#include "chunk/cdc.hpp"        // IWYU pragma: export
#include "core/dump.hpp"        // IWYU pragma: export
#include "core/planner.hpp"     // IWYU pragma: export
#include "core/repair.hpp"      // IWYU pragma: export
#include "core/restore.hpp"     // IWYU pragma: export
#include "hash/hasher.hpp"      // IWYU pragma: export
#include "simmpi/collectives.hpp"  // IWYU pragma: export
#include "simmpi/comm.hpp"      // IWYU pragma: export
#include "simmpi/runtime.hpp"   // IWYU pragma: export
#include "simtime/cluster.hpp"  // IWYU pragma: export
