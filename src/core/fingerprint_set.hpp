// BoundedFpSet: the reduction operand of the paper's collective
// deduplication (§III-B).
//
// It maps fingerprints to (frequency, designated ranks) and enforces two
// bounds during every HMERGE:
//   * at most F fingerprints survive (the most frequent; the rest are
//     treated as unique — the paper's complexity-bounding relaxation), and
//   * at most K designated ranks per fingerprint, truncated so that the
//     *most loaded* ranks are dropped first, which embeds load balancing
//     into the reduction ("uniform rank assignment").
// A per-rank designation-count vector travels with the set so truncation
// decisions stay consistent as the reduction ascends the tree.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "hash/fingerprint.hpp"
#include "simmpi/archive.hpp"

namespace collrep::core {

struct FpEntry {
  std::uint32_t freq = 0;  // number of processes holding the chunk
  std::vector<std::int32_t> ranks;  // designated ranks, sorted, size <= K
};

struct MergeStats {
  std::uint64_t entries_scanned = 0;
  std::uint64_t entries_dropped_f = 0;   // victims of the top-F bound
  std::uint64_t ranks_dropped_load = 0;  // victims of the K-truncation
};

class BoundedFpSet {
 public:
  BoundedFpSet() = default;
  BoundedFpSet(std::uint32_t f_cap, int k, int nranks);

  // Registers one locally unique fingerprint of `rank` (freq 1).  Call
  // enforce_f() once after the last add_local (adds skip the F bound so
  // leaf construction stays linear).
  void add_local(const hash::Fingerprint& fp, int rank);
  MergeStats enforce_f();

  // HMERGE: folds `other` into *this, then re-enforces both bounds.
  MergeStats merge_from(BoundedFpSet&& other);

  // Drops frequency-1 entries.  Applied to the fully reduced set before
  // broadcast: a singleton's only holder behaves identically whether the
  // fingerprint is in the view (designated, D=1 < K, sends K-1 top-ups)
  // or absent (stores + sends K-1 copies), while no other rank holds it —
  // so pruning preserves semantics, shrinks the broadcast, and stops
  // singletons from crowding frequent fingerprints out of the F slots.
  // Returns the number of entries removed.
  std::size_t prune_singletons();

  [[nodiscard]] const FpEntry* find(const hash::Fingerprint& fp) const {
    const auto it = entries_.find(fp);
    return it == entries_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint32_t f_cap() const noexcept { return f_cap_; }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(rank_load_.size());
  }
  // Designation count per rank ("how many fingerprints is rank i
  // responsible for"), maintained incrementally across merges.
  [[nodiscard]] std::span<const std::uint32_t> rank_load() const noexcept {
    return rank_load_;
  }
  [[nodiscard]] const std::unordered_map<hash::Fingerprint, FpEntry,
                                         hash::FingerprintHash>&
  entries() const noexcept {
    return entries_;
  }

  // Verifies internal consistency (tests): load vector matches entries,
  // rank lists sorted/unique/bounded, size within F.
  [[nodiscard]] bool check_invariants() const;

  friend void save(simmpi::OArchive& ar, const BoundedFpSet& s);
  friend void load(simmpi::IArchive& ar, BoundedFpSet& s);

 private:
  // Drops designated ranks (most loaded first) until |ranks| <= K.
  void truncate_ranks(FpEntry& entry, MergeStats& stats);
  // Drops least frequent entries until size() <= F.
  void truncate_to_f(MergeStats& stats);

  std::uint32_t f_cap_ = 0;
  int k_ = 1;
  std::unordered_map<hash::Fingerprint, FpEntry, hash::FingerprintHash>
      entries_;
  std::vector<std::uint32_t> rank_load_;
};

void save(simmpi::OArchive& ar, const BoundedFpSet& s);
void load(simmpi::IArchive& ar, BoundedFpSet& s);

}  // namespace collrep::core
