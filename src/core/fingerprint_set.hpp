// BoundedFpSet: the reduction operand of the paper's collective
// deduplication (§III-B).
//
// It maps fingerprints to (frequency, designated ranks) and enforces two
// bounds during every HMERGE:
//   * at most F fingerprints survive (the most frequent; the rest are
//     treated as unique — the paper's complexity-bounding relaxation), and
//   * at most K designated ranks per fingerprint, truncated so that the
//     *most loaded* ranks are dropped first, which embeds load balancing
//     into the reduction ("uniform rank assignment").
// A per-rank designation-count vector travels with the set so truncation
// decisions stay consistent as the reduction ascends the tree.
//
// Storage is a fingerprint-sorted flat vector of fixed-size entries whose
// designated-rank lists live in one shared pool, so HMERGE is a single
// linear two-pointer merge (no rehashing, no per-entry allocation) and
// lookups are a binary search over contiguous memory.  add_local() is an
// O(1) append; the set seals itself (sort + duplicate check) lazily at the
// first lookup, merge, bound enforcement, or serialization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hash/fingerprint.hpp"
#include "simmpi/archive.hpp"

namespace collrep::core {

struct FpEntry {
  hash::Fingerprint fp{};
  std::uint32_t freq = 0;      // number of processes holding the chunk
  std::uint32_t rank_off = 0;  // into the set's shared rank pool
  std::uint32_t rank_len = 0;  // designated ranks, sorted, <= K
};

struct MergeStats {
  std::uint64_t entries_scanned = 0;
  std::uint64_t entries_dropped_f = 0;   // victims of the top-F bound
  std::uint64_t ranks_dropped_load = 0;  // victims of the K-truncation
};

class BoundedFpSet {
 public:
  BoundedFpSet() = default;
  BoundedFpSet(std::uint32_t f_cap, int k, int nranks);

  // Registers one locally unique fingerprint of `rank` (freq 1).  O(1)
  // append; a duplicate fingerprint is diagnosed (std::logic_error) at the
  // next seal point — enforce_f(), merge_from(), find(), or save().  Call
  // enforce_f() once after the last add_local (adds skip the F bound so
  // leaf construction stays linear).
  void add_local(const hash::Fingerprint& fp, int rank);
  MergeStats enforce_f();

  // HMERGE: folds `other` into *this, then re-enforces both bounds.
  //
  // The key-intersection scan runs through the dispatched hmerge kernel
  // (src/kernels) over 64-bit big-endian fingerprint prefixes: the kernel
  // plans the merge as a tag string, take-runs become bulk entry copies,
  // and the scalar freq/rank reconciliation touches only matched entries.
  // Entries whose prefixes collide within one input (never seen with real
  // digests, but legal) fall back to the full-fingerprint scalar merge.
  MergeStats merge_from(BoundedFpSet&& other);

  // K-way HMERGE: folds all of `others` into *this in one multi-way pass
  // — a reduction-tree node with several children merges every child
  // against the accumulated set once, instead of rewriting the
  // accumulator per child as iterated merge_from calls would.  Both
  // bounds are re-enforced once, against the combined designation loads,
  // so results can differ from iterated pairwise merges when the K or F
  // bound binds at an intermediate step (the bounds themselves still
  // hold).  entries_scanned sums the incoming entry counts.
  MergeStats merge_many(std::vector<BoundedFpSet>&& others);

  // Drops frequency-1 entries.  Applied to the fully reduced set before
  // broadcast: a singleton's only holder behaves identically whether the
  // fingerprint is in the view (designated, D=1 < K, sends K-1 top-ups)
  // or absent (stores + sends K-1 copies), while no other rank holds it —
  // so pruning preserves semantics, shrinks the broadcast, and stops
  // singletons from crowding frequent fingerprints out of the F slots.
  // Returns the number of entries removed.
  std::size_t prune_singletons();

  // Binary search over the sorted entry vector; nullptr when absent.  The
  // pointer is invalidated by any mutating call.
  [[nodiscard]] const FpEntry* find(const hash::Fingerprint& fp) const;

  // The designated ranks of an entry obtained from find()/entries().
  [[nodiscard]] std::span<const std::int32_t> ranks(
      const FpEntry& entry) const noexcept {
    return {rank_pool_.data() + entry.rank_off, entry.rank_len};
  }

  // All entries, fingerprint-ascending.
  [[nodiscard]] std::span<const FpEntry> entries() const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint32_t f_cap() const noexcept { return f_cap_; }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(rank_load_.size());
  }
  // Designation count per rank ("how many fingerprints is rank i
  // responsible for"), maintained incrementally across merges.
  [[nodiscard]] std::span<const std::uint32_t> rank_load() const noexcept {
    return rank_load_;
  }

  // Verifies internal consistency (tests): load vector matches entries,
  // rank lists sorted/unique/bounded, entries sorted, size within F.
  [[nodiscard]] bool check_invariants() const;

  friend void save(simmpi::OArchive& ar, const BoundedFpSet& s);
  friend void load(simmpi::IArchive& ar, BoundedFpSet& s);

 private:
  // Sorts appended entries by fingerprint and rejects duplicates.  Lazily
  // invoked from const accessors (single-owner objects, not thread-safe).
  void seal() const;
  // Keeps the K least-loaded designated ranks of `scratch` (ties toward
  // the lower rank id), releasing the dropped ranks' load.
  void truncate_ranks(std::vector<std::int32_t>& scratch, MergeStats& stats);
  // Full-fingerprint two-pointer merge; the fallback when prefix keys
  // are not strictly ascending, and the reference the kernel path must
  // match bit-for-bit.
  void merge_entries_scalar(const BoundedFpSet& other, MergeStats& stats);
  // Kernel-planned merge: tags from the dispatched hmerge kernel drive
  // bulk take-run copies and match-only reconciliation.
  void merge_entries_kernel(const BoundedFpSet& other,
                            const std::uint8_t* tags, std::size_t out_len,
                            MergeStats& stats);
  // Drops least frequent entries until size() <= F.
  void truncate_to_f(MergeStats& stats);

  std::uint32_t f_cap_ = 0;
  int k_ = 1;
  mutable bool sealed_ = true;
  mutable std::vector<FpEntry> entries_;  // fp-ascending once sealed
  std::vector<std::int32_t> rank_pool_;
  std::vector<std::uint32_t> rank_load_;
};

void save(simmpi::OArchive& ar, const BoundedFpSet& s);
void load(simmpi::IArchive& ar, BoundedFpSet& s);

}  // namespace collrep::core
