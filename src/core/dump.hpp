// The collective I/O write primitive of the paper: DUMP_OUTPUT(buffer, K).
//
// Dumper runs the full pipeline of §III-C on every rank:
//   1. chunk + fingerprint + local dedup                        (hash)
//   2. ALLREDUCE(HMERGE, LHashes) -> global view   [coll only]  (reduction)
//   3. load vectors, ALLGATHER, RANK_SHUFFLE, CALC_OFF          (planning)
//   4. single-sided chunk exchange through one window epoch     (exchange)
//   5. commit designated + received chunks and the manifest     (storage)
// and returns per-rank DumpStats with byte counters and the simulated-time
// phase breakdown.
#pragma once

#include <cstdint>
#include <string_view>

#include "chunk/cdc.hpp"
#include "chunk/dataset.hpp"
#include "chunk/store.hpp"
#include "core/replica_plan.hpp"
#include "hash/hasher.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"
#include "simtime/cluster.hpp"

namespace collrep::core {

enum class Strategy : std::uint8_t {
  kNoDedup = 0,     // full replication (paper baseline "no-dedup")
  kLocalDedup = 1,  // replicate locally deduplicated data ("local-dedup")
  kCollDedup = 2,   // this paper's approach ("coll-dedup")
};

[[nodiscard]] std::string_view to_string(Strategy s) noexcept;

enum class ChunkingMode : std::uint8_t {
  kFixed = 0,           // paper default: fixed chunks of chunk_bytes
  kContentDefined = 1,  // gear-hash CDC (related-work alternative)
};

struct DumpConfig {
  Strategy strategy = Strategy::kCollDedup;
  std::size_t chunk_bytes = 4096;       // paper: memory page size
  std::uint32_t threshold_f = 1u << 17; // paper: F = 2^17
  ChunkingMode chunking = ChunkingMode::kFixed;
  // CDC parameters (chunking == kContentDefined); cdc.max_bytes becomes
  // the window slot capacity in place of chunk_bytes.
  chunk::CdcParams cdc;
  hash::HashKind hash_kind = hash::HashKind::kSha1;
  // Load-aware partner selection (coll-dedup only; Fig. 4c/5c toggle).
  bool rank_shuffle = true;
  // Topology-aware repair pass (paper §VI future work): keep every rank's
  // K-1 partners off its own node so replicas survive node loss.
  bool node_aware_partners = false;
  // Steer top-up replicas away from already-designated partners; costs one
  // extra ALLGATHER (DESIGN.md §1, deviation 3).
  bool avoid_designated_targets = true;
  // false = metadata-only window puts (payload bytes are charged to the
  // cost model but not copied/kept) for large accounting-mode benches.
  bool payload_exchange = true;
  bool replicate_manifest = true;
  std::uint64_t epoch = 0;  // checkpoint number recorded in the manifest
};

struct DumpStats {
  int rank = 0;
  int k_requested = 0;
  int k_effective = 0;

  std::uint64_t dataset_bytes = 0;
  std::uint64_t chunk_count = 0;
  std::uint64_t local_unique_chunks = 0;
  std::uint64_t local_unique_bytes = 0;

  std::uint64_t owned_unique_bytes = 0;  // Fig. 3a contribution
  std::uint64_t discarded_chunks = 0;    // already replicated >= K times
  std::uint64_t discarded_bytes = 0;

  std::uint64_t sent_chunks = 0;
  std::uint64_t sent_bytes = 0;  // replication wire payload (Fig. 4b/5b)
  std::uint64_t recv_chunks = 0;
  std::uint64_t recv_bytes = 0;  // maximal receive size metric (Fig. 4c/5c)
  std::uint64_t stored_chunks = 0;
  std::uint64_t stored_bytes = 0;  // committed to the local device
  std::uint64_t manifest_bytes = 0;

  // -- degraded-mode bookkeeping (store failures mid-dump) -------------------
  // Whether this rank's own store survived the dump; when it did not, the
  // commits it would have performed are skipped (and counted below) but the
  // collective still completes on every rank.
  bool store_alive = true;
  // True when any rank's store was down: achieved replication is then
  // audited with one extra health allreduce and may fall short of K.
  bool degraded = false;
  // Minimum achieved replica count over this rank's chunks (== k_effective
  // for a healthy dump; 0 when a chunk has no surviving replica at all).
  int k_achieved_min = 0;
  std::uint64_t under_replicated_chunks = 0;  // distinct fps below K_eff
  std::uint64_t under_replicated_bytes = 0;
  std::uint64_t commit_skipped_chunks = 0;  // dropped: own store was down
  std::uint64_t commit_skipped_bytes = 0;

  std::uint32_t gview_entries = 0;
  std::uint32_t skip_fallbacks = 0;
  // Global count of (rank, partner) pairs sharing a node (0 when the
  // node-aware repair succeeds; identical on all ranks).
  std::uint32_t same_node_partners = 0;

  sim::PhaseBreakdown phases;
  double total_time_s = 0.0;  // aligned completion; identical on all ranks
};

// Global roll-up (valid on every rank; computed with collectives).
struct GlobalDumpStats {
  std::uint64_t total_dataset_bytes = 0;
  std::uint64_t total_unique_bytes = 0;  // Fig. 3a "size of unique content"
  std::uint64_t total_sent_bytes = 0;
  std::uint64_t total_stored_bytes = 0;
  std::uint64_t max_sent_bytes = 0;
  std::uint64_t max_recv_bytes = 0;
  double avg_sent_bytes = 0.0;
  double completion_time_s = 0.0;
  // Degraded-mode roll-up: worst achieved replication across all ranks'
  // chunks and the total payload bytes that fell short of K_eff.
  int min_k_achieved = 0;
  std::uint64_t total_under_replicated_bytes = 0;
  sim::PhaseBreakdown max_phases;
};

class Dumper {
 public:
  // `store` is this rank's local storage device.  The Dumper keeps
  // references; both must outlive it.
  Dumper(simmpi::Comm& comm, chunk::ChunkStore& store, DumpConfig config);

  // Collective; every rank must call with the same K.  Survives store
  // failures mid-dump: when a rank's store is down the collective still
  // completes on every rank, the dead store's commits are skipped (counted
  // in commit_skipped_*), and one extra health allreduce audits the
  // achieved replication (k_achieved_min, under_replicated_*) so callers
  // can decide between accepting the degraded checkpoint, retrying, or
  // running core::repair_replicas (see ftrt::DegradedPolicy).
  DumpStats dump_output(const chunk::Dataset& buffer, int k);

  [[nodiscard]] const DumpConfig& config() const noexcept { return config_; }

  // Collective roll-up of per-rank stats.
  static GlobalDumpStats collect(simmpi::Comm& comm, const DumpStats& mine);

 private:
  simmpi::Comm& comm_;
  chunk::ChunkStore& store_;
  DumpConfig config_;
};

}  // namespace collrep::core
