#include "core/replica_plan.hpp"

#include <algorithm>

namespace collrep::core {

namespace {

std::vector<std::uint8_t> all_partner_slots(int k_effective) {
  std::vector<std::uint8_t> slots;
  slots.reserve(static_cast<std::size_t>(k_effective - 1));
  for (int p = 1; p < k_effective; ++p) {
    slots.push_back(static_cast<std::uint8_t>(p));
  }
  return slots;
}

}  // namespace

ReplicaPlan plan_full(std::span<const std::uint32_t> chunk_lengths,
                      int k_effective) {
  ReplicaPlan plan;
  plan.load.assign(static_cast<std::size_t>(k_effective), 0);
  const auto slots = all_partner_slots(k_effective);
  plan.assignments.reserve(chunk_lengths.size());
  for (std::size_t i = 0; i < chunk_lengths.size(); ++i) {
    plan.assignments.push_back(ChunkAssignment{
        static_cast<std::uint32_t>(i), /*store_local=*/true, slots});
    plan.owned_unique_bytes += chunk_lengths[i];
  }
  for (auto& l : plan.load) l = chunk_lengths.size();
  return plan;
}

ReplicaPlan plan_local_dedup(const LocalDedupResult& local,
                             const chunk::Chunker& chunker, int k_effective) {
  ReplicaPlan plan;
  plan.load.assign(static_cast<std::size_t>(k_effective), 0);
  const auto slots = all_partner_slots(k_effective);
  plan.assignments.reserve(local.unique_chunks.size());
  for (std::size_t u = 0; u < local.unique_chunks.size(); ++u) {
    plan.assignments.push_back(ChunkAssignment{static_cast<std::uint32_t>(u),
                                               /*store_local=*/true, slots});
    plan.owned_unique_bytes +=
        chunker.ref(local.unique_chunks[u]).length;
  }
  for (auto& l : plan.load) l = local.unique_chunks.size();
  return plan;
}

ReplicaPlan plan_collective(const LocalDedupResult& local,
                            const chunk::Chunker& chunker,
                            const BoundedFpSet& gview, int my_rank,
                            int k_effective, const ShuffleContext* shuffle_ctx) {
  ReplicaPlan plan;
  plan.load.assign(static_cast<std::size_t>(k_effective), 0);

  for (std::size_t u = 0; u < local.unique_chunks.size(); ++u) {
    const auto chunk_index = local.unique_chunks[u];
    const auto& fp = local.chunk_fps[chunk_index];
    const std::uint32_t length = chunker.ref(chunk_index).length;
    const FpEntry* entry = gview.find(fp);

    if (entry == nullptr) {
      // Not globally tracked: treated as unique; this rank keeps a copy
      // and replicates to all K-1 partners (paper §III-B).
      ChunkAssignment a{static_cast<std::uint32_t>(u), /*store_local=*/true,
                        all_partner_slots(k_effective)};
      plan.load[0] += 1;
      for (int p = 1; p < k_effective; ++p) {
        plan.load[static_cast<std::size_t>(p)] += 1;
      }
      plan.assignments.push_back(std::move(a));
      plan.owned_unique_bytes += length;
      continue;
    }

    const auto designated = gview.ranks(*entry);
    const auto me =
        std::lower_bound(designated.begin(), designated.end(), my_rank);
    if (me == designated.end() || *me != my_rank) {
      // K other ranks already cover this chunk: natural replicas suffice.
      ++plan.discarded_chunks;
      plan.discarded_bytes += length;
      continue;
    }

    if (designated.front() == my_rank) plan.owned_unique_bytes += length;

    const int d = static_cast<int>(designated.size());
    const int j = static_cast<int>(me - designated.begin());
    const int extras = k_effective - d;  // replicas still missing globally

    ChunkAssignment a{static_cast<std::uint32_t>(u), /*store_local=*/true, {}};
    plan.load[0] += 1;
    if (extras > 0) {
      if (shuffle_ctx == nullptr) {
        // Pre-shuffle (paper Algorithm 1): partner identities are unknown.
        // Round-robin split of the missing replicas over the D designated
        // ranks; this rank (the j-th) covers extras t with t mod D == j and
        // uses its first slots.
        int my_share = 0;
        for (int t = 0; t < extras; ++t) {
          if (t % d == j) ++my_share;
        }
        for (int p = 1; p <= my_share && p < k_effective; ++p) {
          a.send_slots.push_back(static_cast<std::uint8_t>(p));
        }
      } else {
        // Post-shuffle avoidance pass: every rank replays the same global
        // greedy from the shared view, so all designated senders agree on
        // a target set that is disjoint from the designated ranks *and*
        // from each other — the chunk lands on K distinct stores.
        const int n = static_cast<int>(shuffle_ctx->shuffle.size());
        std::vector<std::int32_t> taken(designated.begin(), designated.end());
        std::vector<int> next_slot(static_cast<std::size_t>(d), 1);
        for (int t = 0; t < extras; ++t) {
          const int sender_idx = t % d;
          const std::int32_t sender = designated[sender_idx];
          const int sender_pos =
              shuffle_ctx->position_of[static_cast<std::size_t>(sender)];
          int chosen = -1;
          for (int p = next_slot[static_cast<std::size_t>(sender_idx)];
               p < k_effective; ++p) {
            const int partner = shuffle_ctx->shuffle[static_cast<std::size_t>(
                (sender_pos + p) % n)];
            if (std::find(taken.begin(), taken.end(), partner) ==
                taken.end()) {
              chosen = p;
              taken.push_back(partner);
              break;
            }
          }
          if (chosen < 0) {
            // No collision-free slot left for this sender: reuse its next
            // unused slot even though the target already holds a copy.
            chosen = next_slot[static_cast<std::size_t>(sender_idx)];
            if (chosen >= k_effective) continue;  // sender exhausted
            if (sender == my_rank) ++plan.skip_fallbacks;
          }
          next_slot[static_cast<std::size_t>(sender_idx)] = chosen + 1;
          if (sender == my_rank) {
            a.send_slots.push_back(static_cast<std::uint8_t>(chosen));
          }
        }
      }
      for (std::uint8_t p : a.send_slots) plan.load[p] += 1;
    }
    plan.assignments.push_back(std::move(a));
  }

  // Local duplicates beyond the first copy never leave the node under any
  // dedup strategy; they are neither stored twice nor sent.
  return plan;
}

}  // namespace collrep::core
