#include "core/restore.hpp"

#include "simmpi/collectives.hpp"

namespace collrep::core {

namespace detail {

std::string manifest_lost_message(int rank, int consulted, int failed) {
  std::string out =
      "restore: no surviving manifest for rank " + std::to_string(rank);
  if (consulted >= 0) {
    out += " (" + std::to_string(consulted) + " store(s) consulted";
    if (failed >= 0) out += ", " + std::to_string(failed) + " failed";
    out += ')';
  }
  return out;
}

std::string chunk_lost_message(const hash::Fingerprint* fp, int owner_rank,
                               int consulted, int failed) {
  std::string out = "restore: chunk ";
  if (fp != nullptr) {
    out += fp->hex().substr(0, 12);
    out += "... ";
  }
  if (owner_rank >= 0) {
    out += "of rank " + std::to_string(owner_rank) + "'s dataset ";
  }
  out += "is not available on any surviving store";
  if (consulted >= 0) {
    out += " (" + std::to_string(consulted) + " store(s) consulted";
    if (failed >= 0) out += ", " + std::to_string(failed) + " failed";
    out += ')';
  }
  return out;
}

}  // namespace detail

namespace {

struct StoreScan {
  const chunk::Manifest* manifest = nullptr;
  int consulted = 0;  // alive stores examined
  int failed = 0;     // failed/absent stores skipped
};

StoreScan newest_manifest(std::span<chunk::ChunkStore* const> stores,
                          int rank) {
  StoreScan scan;
  for (const chunk::ChunkStore* store : stores) {
    if (store == nullptr || store->failed()) {
      ++scan.failed;
      continue;
    }
    ++scan.consulted;
    const chunk::Manifest* m = store->manifest_for(rank);
    if (m != nullptr && (scan.manifest == nullptr ||
                         m->epoch > scan.manifest->epoch)) {
      scan.manifest = m;
    }
  }
  return scan;
}

}  // namespace

RestoreResult restore_rank(std::span<chunk::ChunkStore* const> stores,
                           int rank) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= stores.size()) {
    throw std::out_of_range("restore: rank outside store set");
  }
  const StoreScan scan = newest_manifest(stores, rank);
  const chunk::Manifest* manifest = scan.manifest;
  if (manifest == nullptr) {
    throw ManifestLostError(rank, scan.consulted, scan.failed);
  }

  RestoreResult out;
  out.segments.reserve(manifest->segment_sizes.size());
  for (const auto size : manifest->segment_sizes) {
    out.segments.emplace_back();
    out.segments.back().reserve(size);
  }

  chunk::ChunkStore* own = stores[static_cast<std::size_t>(rank)];
  const bool own_alive = own != nullptr && !own->failed();

  std::size_t seg = 0;
  for (const chunk::ManifestEntry& entry : manifest->entries) {
    // Advance to the segment this chunk belongs to (entries are in buffer
    // order; a segment is full when it reaches its manifest size).
    while (seg < out.segments.size() &&
           out.segments[seg].size() == manifest->segment_sizes[seg]) {
      ++seg;
    }
    if (seg == out.segments.size()) {
      throw std::runtime_error("restore: manifest entries exceed segments");
    }

    std::span<const std::uint8_t> payload;
    bool found = false;
    if (own_alive) {
      if (const auto p = own->get(entry.fp)) {
        payload = *p;
        found = true;
        ++out.chunks_from_own_store;
        out.bytes_from_own_store += p->size();
      }
    }
    if (!found) {
      for (chunk::ChunkStore* store : stores) {
        if (store == nullptr || store->failed() || store == own) continue;
        if (const auto p = store->get(entry.fp)) {
          payload = *p;
          found = true;
          ++out.chunks_from_remote_stores;
          out.bytes_from_remote_stores += p->size();
          break;
        }
      }
    }
    if (!found) {
      throw ChunkLostError(entry.fp, rank, scan.consulted, scan.failed);
    }
    if (payload.size() != entry.length) {
      throw std::runtime_error("restore: chunk length mismatch (collision?)");
    }
    out.segments[seg].insert(out.segments[seg].end(), payload.begin(),
                             payload.end());
  }

  for (std::size_t s = 0; s < out.segments.size(); ++s) {
    if (out.segments[s].size() != manifest->segment_sizes[s]) {
      throw std::runtime_error("restore: segment size mismatch");
    }
  }
  return out;
}

std::pair<RestoreResult, CollectiveRestoreStats> restore_input(
    simmpi::Comm& comm, std::span<chunk::ChunkStore* const> stores) {
  const auto& cluster = comm.cluster();
  comm.barrier();
  const double t0 = comm.clock().now();

  RestoreResult result = restore_rank(stores, comm.rank());

  CollectiveRestoreStats stats;
  stats.local_bytes = result.bytes_from_own_store;
  stats.remote_bytes = result.bytes_from_remote_stores;

  // Local chunks stream off the node's HDD; remote chunks additionally
  // traverse the network.  HDDs are shared per node; remote reads are
  // attributed to the reader's node (a first-order approximation — the
  // serving partner is not tracked per chunk).
  const auto all_local = simmpi::allgather(comm, stats.local_bytes);
  const auto all_remote = simmpi::allgather(comm, stats.remote_bytes);
  const int n = comm.size();
  std::vector<std::uint64_t> node_read(
      static_cast<std::size_t>(cluster.node_count(n)), 0);
  for (int r = 0; r < n; ++r) {
    // Dense group rank -> world rank -> node: correct after a shrink.
    node_read[static_cast<std::size_t>(cluster.node_of(comm.world_of(r)))] +=
        all_local[static_cast<std::size_t>(r)] +
        all_remote[static_cast<std::size_t>(r)];
  }
  comm.charge(static_cast<double>(
                  node_read[static_cast<std::size_t>(comm.node())]) /
              cluster.hdd_read_bps);
  comm.charge(static_cast<double>(stats.remote_bytes) /
              cluster.net_bandwidth_bps);
  comm.barrier();
  stats.total_time_s = comm.clock().now() - t0;
  return {std::move(result), stats};
}

}  // namespace collrep::core
