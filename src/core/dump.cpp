#include "core/dump.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include <unordered_set>

#include "core/local_dedup.hpp"
#include "core/planner.hpp"
#include "core/repair.hpp"

namespace collrep::core {

namespace {

constexpr std::size_t kRecordHeaderBytes =
    hash::Fingerprint::kBytes + sizeof(std::uint32_t);
constexpr int kManifestTagBase = 6 << 20;

struct PhaseClock {
  PhaseClock(simmpi::Comm& c, const char* first_phase) : comm(c) {
    comm.barrier();
    mark = comm.clock().now();
    start = mark;
    if (auto* t = comm.obs()) {
      // Wrapper span around the whole pipeline: collprof extracts the
      // critical path of each "dump" interval (DESIGN.md §11).
      t->event(obs::EventKind::kPhaseBegin, mark, "dump");
    }
    open(first_phase);
  }
  // Ends the current phase at a barrier so the recorded duration is the
  // bulk-synchronous (max-over-ranks) phase time; `next_phase` (static
  // lifetime, nullptr at the end of the pipeline) names the phase the
  // trace enters next.
  double lap(const char* next_phase = nullptr) {
    if (auto* t = comm.obs()) {
      // Recorded *before* the closing barrier: the span is this rank's own
      // work time, so the gap to the next kPhaseBegin is its barrier wait
      // and the spread across ranks is the phase's straggler skew.
      t->event(obs::EventKind::kPhaseEnd, comm.clock().now(), current);
    }
    comm.barrier();
    const double now = comm.clock().now();
    const double d = now - mark;
    mark = now;
    open(next_phase);
    if (next_phase == nullptr) {
      if (auto* t = comm.obs()) {
        t->event(obs::EventKind::kPhaseEnd, now, "dump");
      }
    }
    return d;
  }
  void open(const char* phase) {
    current = phase;
    if (phase == nullptr) return;
    if (auto* t = comm.obs()) {
      t->event(obs::EventKind::kPhaseBegin, comm.clock().now(), phase);
    }
  }
  simmpi::Comm& comm;
  double start;
  double mark;
  const char* current = nullptr;
};

}  // namespace

std::string_view to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::kNoDedup:
      return "no-dedup";
    case Strategy::kLocalDedup:
      return "local-dedup";
    case Strategy::kCollDedup:
      return "coll-dedup";
  }
  return "unknown";
}

Dumper::Dumper(simmpi::Comm& comm, chunk::ChunkStore& store, DumpConfig config)
    : comm_(comm), store_(store), config_(config) {
  if (config_.chunk_bytes == 0) {
    throw std::invalid_argument("Dumper: chunk_bytes must be positive");
  }
  if (config_.threshold_f == 0) {
    throw std::invalid_argument("Dumper: threshold F must be positive");
  }
}

DumpStats Dumper::dump_output(const chunk::Dataset& buffer, int k) {
  if (k < 1) throw std::invalid_argument("dump_output: K must be >= 1");
  const int n = comm_.size();
  const int rank = comm_.rank();
  // All ranks must agree on K (collective contract).
  const int kmax = simmpi::allreduce_max(comm_, k);
  const int kmin = simmpi::allreduce(comm_, k, [](int a, int b) {
    return a < b ? a : b;
  });
  if (kmax != kmin) {
    throw std::invalid_argument("dump_output: ranks disagree on K");
  }
  const int keff = std::min(k, n);
  if (!config_.payload_exchange &&
      store_.mode() == chunk::StoreMode::kPayload) {
    throw std::invalid_argument(
        "dump_output: metadata-only exchange requires an accounting-mode "
        "store (received payloads are not transferred)");
  }
  const auto& cluster = comm_.cluster();
  const auto& hasher = hash::hasher_for(config_.hash_kind);

  DumpStats stats;
  stats.rank = rank;
  stats.k_requested = k;
  stats.k_effective = keff;

  PhaseClock phase(comm_, "hash");
  comm_.fault_point("dump.hash", config_.epoch);

  // ---- Phase 1: chunking, fingerprinting, local dedup ----------------------
  const bool cdc = config_.chunking == ChunkingMode::kContentDefined;
  const std::size_t slot_payload =
      cdc ? config_.cdc.max_bytes : config_.chunk_bytes;
  const chunk::Chunker chunker =
      cdc ? chunk::Chunker(buffer, slot_payload,
                           chunk::content_defined_refs(buffer, config_.cdc))
          : chunk::Chunker(buffer, config_.chunk_bytes);
  if (cdc && config_.strategy != Strategy::kNoDedup) {
    // Rolling-hash boundary detection streams over every byte.
    comm_.charge(static_cast<double>(buffer.total_bytes()) /
                 cluster.cdc_bps);
  }
  LocalDedupResult local = local_dedup(chunker, hasher);
  stats.dataset_bytes = local.total_bytes;
  stats.chunk_count = chunker.count();
  stats.local_unique_chunks = local.unique_chunks.size();
  stats.local_unique_bytes = local.unique_bytes;
  if (config_.strategy != Strategy::kNoDedup) {
    // no-dedup streams raw data without hashing in the paper; the
    // fingerprints it still computes here are free bookkeeping for the
    // content-addressed store and are not charged to its clock.
    comm_.charge(static_cast<double>(local.total_bytes) /
                     hasher.modeled_bytes_per_second() +
                 static_cast<double>(chunker.count()) *
                     cluster.chunk_overhead_s);
  }
  stats.phases.hash_s = phase.lap("reduction");
  comm_.fault_point("dump.reduction", config_.epoch);

  // ---- Phase 2: collective reduction of fingerprint frequencies ------------
  BoundedFpSet gview;
  if (config_.strategy == Strategy::kCollDedup) {
    BoundedFpSet mine(config_.threshold_f, keff, n);
    for (const auto u : local.unique_chunks) {
      mine.add_local(local.chunk_fps[u], rank);
    }
    mine.enforce_f();
    comm_.charge(static_cast<double>(local.unique_chunks.size()) *
                 cluster.merge_entry_cost_s);
    // K-way reduce: a tree node merges all children it received in one
    // multi-way HMERGE pass (entries_scanned still totals the incoming
    // entries, so the charged merge time matches the old pairwise sum).
    gview = simmpi::reduce_kway(
        comm_, std::move(mine),
        [this, &cluster](BoundedFpSet a, std::vector<BoundedFpSet> children) {
          const MergeStats ms = a.merge_many(std::move(children));
          comm_.charge(static_cast<double>(ms.entries_scanned) *
                       cluster.merge_entry_cost_s);
          return a;
        },
        0);
    // Singletons are semantically dead weight in the view (see
    // BoundedFpSet::prune_singletons); drop them before the broadcast.
    if (rank == 0) (void)gview.prune_singletons();
    simmpi::bcast(comm_, gview, 0);
    stats.gview_entries = static_cast<std::uint32_t>(gview.size());
  }
  stats.phases.reduction_s = phase.lap("planning");
  comm_.fault_point("dump.planning", config_.epoch);

  // ---- Phase 3: load vectors, allgather, shuffle, offsets -------------------
  ReplicaPlan plan;
  std::vector<std::uint32_t> full_lengths;
  switch (config_.strategy) {
    case Strategy::kNoDedup: {
      full_lengths.reserve(chunker.count());
      for (std::size_t i = 0; i < chunker.count(); ++i) {
        full_lengths.push_back(chunker.ref(i).length);
      }
      plan = plan_full(full_lengths, keff);
      break;
    }
    case Strategy::kLocalDedup:
      plan = plan_local_dedup(local, chunker, keff);
      break;
    case Strategy::kCollDedup:
      plan = plan_collective(local, chunker, gview, rank, keff, nullptr);
      break;
  }

  auto gathered = simmpi::allgather(comm_, plan.load);
  SendMatrix mat(n, keff);
  for (int r = 0; r < n; ++r) {
    mat.set_row(r, gathered[static_cast<std::size_t>(r)]);
  }

  const bool shuffled =
      config_.strategy == Strategy::kCollDedup && config_.rank_shuffle;
  std::vector<int> shuffle =
      shuffled ? rank_shuffle(mat, keff) : identity_shuffle(n);
  if (config_.node_aware_partners && keff > 1) {
    shuffle = make_node_disjoint(std::move(shuffle), keff, cluster);
  }
  stats.same_node_partners = static_cast<std::uint32_t>(
      same_node_partner_count(shuffle, keff, cluster));
  std::vector<int> position_of = invert_shuffle(shuffle);
  // Sorting N ranks is the only super-linear planning step.
  comm_.charge(static_cast<double>(n) *
               std::max(1.0, std::log2(static_cast<double>(n))) * 5e-9);

  if (config_.strategy == Strategy::kCollDedup &&
      config_.avoid_designated_targets && keff > 1) {
    // Partner identities are now known: rebuild the plan steering top-up
    // replicas away from designated partners, and re-share the loads so
    // the window offsets still agree (DESIGN.md §1, deviation 3).
    const ShuffleContext ctx{shuffle, position_of};
    plan = plan_collective(local, chunker, gview, rank, keff, &ctx);
    gathered = simmpi::allgather(comm_, plan.load);
    for (int r = 0; r < n; ++r) {
      mat.set_row(r, gathered[static_cast<std::size_t>(r)]);
    }
  }

  stats.owned_unique_bytes = plan.owned_unique_bytes;
  stats.discarded_chunks = plan.discarded_chunks;
  stats.discarded_bytes = plan.discarded_bytes;
  stats.skip_fallbacks = plan.skip_fallbacks;
  stats.phases.planning_s = phase.lap("exchange");
  comm_.fault_point("dump.exchange", config_.epoch);

  // ---- Phase 4: single-sided chunk exchange --------------------------------
  const std::size_t slot_bytes =
      kRecordHeaderBytes + (config_.payload_exchange ? slot_payload : 0);
  const int my_pos = position_of[static_cast<std::size_t>(rank)];
  const std::uint64_t my_window_slots =
      keff > 1 ? window_chunks(mat, shuffle, my_pos) : 0;

  simmpi::Window win = comm_.win_create(
      static_cast<std::size_t>(my_window_slots) * slot_bytes);

  std::vector<std::uint64_t> slot_base(static_cast<std::size_t>(keff), 0);
  std::vector<std::uint64_t> slot_next(static_cast<std::size_t>(keff), 0);
  for (int p = 1; p < keff; ++p) {
    slot_base[static_cast<std::size_t>(p)] =
        put_offset_chunks(mat, shuffle, my_pos, p);
  }

  std::vector<std::uint8_t> record(slot_bytes, 0);
  for (const ChunkAssignment& a : plan.assignments) {
    if (a.send_slots.empty()) continue;
    const std::size_t chunk_index =
        config_.strategy == Strategy::kNoDedup
            ? a.chunk
            : local.unique_chunks[a.chunk];
    const auto payload = chunker.bytes(chunk_index);
    const auto& fp = local.chunk_fps[chunk_index];
    const auto len = static_cast<std::uint32_t>(payload.size());

    std::memcpy(record.data(), fp.bytes().data(), hash::Fingerprint::kBytes);
    std::memcpy(record.data() + hash::Fingerprint::kBytes, &len, sizeof len);
    if (config_.payload_exchange) {
      std::memcpy(record.data() + kRecordHeaderBytes, payload.data(),
                  payload.size());
    }

    for (const std::uint8_t p : a.send_slots) {
      const int target = partner_at(shuffle, my_pos, p);
      const std::uint64_t slot = slot_base[p] + slot_next[p]++;
      win.put(target, static_cast<std::size_t>(slot) * slot_bytes, record,
              kRecordHeaderBytes + payload.size());
      ++stats.sent_chunks;
      stats.sent_bytes += payload.size();
    }
  }
  for (int p = 1; p < keff; ++p) {
    if (slot_next[static_cast<std::size_t>(p)] !=
        mat.at(rank, p)) {
      throw std::logic_error(
          "dump_output: send plan disagrees with advertised load");
    }
  }

  // Post-put, pre-fence: the puts are already in flight when this fires,
  // which is exactly the mid-exchange store loss the degraded path must
  // survive (the victim's outgoing replicas land, its incoming ones drop).
  comm_.fault_point("dump.exchange.mid", config_.epoch);
  // No RMA follows the exchange epoch; declaring it lets an attached
  // checker flag any stray put between here and the window free.
  win.fence(simmpi::kFenceNoSucceed);

  // Parse the received records and stage them for local commit.  A dead
  // store drops its incoming replicas on the floor (counted, not thrown):
  // the wire transfer already happened, only the device write is skipped.
  const bool commit_received = !store_.failed();
  const auto region = win.local();
  for (std::uint64_t s = 0; s < my_window_slots; ++s) {
    const std::uint8_t* rec = region.data() + s * slot_bytes;
    hash::Fingerprint fp{
        std::span<const std::uint8_t>{rec, hash::Fingerprint::kBytes}};
    std::uint32_t len = 0;
    std::memcpy(&len, rec + hash::Fingerprint::kBytes, sizeof len);
    ++stats.recv_chunks;
    stats.recv_bytes += len;
    if (!commit_received) {
      ++stats.commit_skipped_chunks;
      stats.commit_skipped_bytes += len;
      continue;
    }
    if (config_.payload_exchange) {
      store_.put(fp,
                 std::span<const std::uint8_t>{rec + kRecordHeaderBytes, len});
    } else {
      store_.put_accounted(fp, len);
    }
    // The device writes the incoming replica stream as-is; content
    // addressing in ChunkStore is an index property, not a write saving.
    ++stats.stored_chunks;
    stats.stored_bytes += len;
  }
  comm_.charge(static_cast<double>(stats.recv_bytes) /
               comm_.cluster().mem_bandwidth_bps);
  if (auto* t = comm_.obs()) {
    t->event(obs::EventKind::kStoreCommit, comm_.clock().now(),
             "commit_received", stats.recv_bytes, stats.recv_chunks);
  }
  win.free();

  // Manifest replication (small, point-to-point; same partner ring).
  chunk::Manifest manifest;
  manifest.owner_rank = rank;
  manifest.epoch = config_.epoch;
  manifest.segment_sizes.reserve(buffer.segment_count());
  for (std::size_t i = 0; i < buffer.segment_count(); ++i) {
    manifest.segment_sizes.push_back(buffer.segment(i).size());
  }
  manifest.entries.reserve(chunker.count());
  for (std::size_t i = 0; i < chunker.count(); ++i) {
    manifest.entries.push_back(
        chunk::ManifestEntry{local.chunk_fps[i], chunker.ref(i).length});
  }
  stats.manifest_bytes = chunk::manifest_wire_bytes(manifest);
  if (!store_.failed()) store_.put_manifest(manifest);
  if (config_.replicate_manifest && keff > 1) {
    // A rank with a dead store still sends its manifest (the data lives in
    // memory) and still drains its incoming ones so partners don't block.
    for (int p = 1; p < keff; ++p) {
      comm_.send_value(partner_at(shuffle, my_pos, p), kManifestTagBase + p,
                       manifest);
    }
    for (int p = 1; p < keff; ++p) {
      const int src =
          shuffle[static_cast<std::size_t>(((my_pos - p) % n + n) % n)];
      auto incoming =
          comm_.recv_value<chunk::Manifest>(src, kManifestTagBase + p);
      if (!store_.failed()) store_.put_manifest(std::move(incoming));
    }
  }
  stats.phases.exchange_s = phase.lap("storage");

  // ---- Phase 5: commit designated + kept chunks to the local device --------
  comm_.fault_point("dump.commit", config_.epoch);
  const std::uint64_t stored_before_local = stats.stored_bytes;
  const bool commit_local = !store_.failed();
  for (const ChunkAssignment& a : plan.assignments) {
    if (!a.store_local) continue;
    const std::size_t chunk_index =
        config_.strategy == Strategy::kNoDedup
            ? a.chunk
            : local.unique_chunks[a.chunk];
    const auto payload = chunker.bytes(chunk_index);
    const auto& fp = local.chunk_fps[chunk_index];
    if (!commit_local) {
      ++stats.commit_skipped_chunks;
      stats.commit_skipped_bytes += payload.size();
      continue;
    }
    if (store_.mode() == chunk::StoreMode::kPayload) {
      store_.put(fp, payload);
    } else {
      store_.put_accounted(fp, static_cast<std::uint32_t>(payload.size()));
    }
    // Each kept assignment is one device write (plan_full keeps every
    // chunk including local duplicates, the dedup plans keep uniques).
    ++stats.stored_chunks;
    stats.stored_bytes += payload.size();
  }

  if (auto* t = comm_.obs()) {
    t->event(obs::EventKind::kStoreCommit, comm_.clock().now(),
             "commit_local", stats.stored_bytes - stored_before_local);
  }

  // The HDD is shared by all ranks of a node: the phase lasts as long as
  // the node with the most bytes to write.
  const std::uint64_t my_store_total = stats.stored_bytes +
                                       stats.manifest_bytes;
  const auto all_store = simmpi::allgather(comm_, my_store_total);
  std::vector<std::uint64_t> node_bytes(
      static_cast<std::size_t>(cluster.node_count(n)), 0);
  for (int r = 0; r < n; ++r) {
    node_bytes[static_cast<std::size_t>(cluster.node_of(r))] +=
        all_store[static_cast<std::size_t>(r)];
  }
  comm_.charge(static_cast<double>(
                   node_bytes[static_cast<std::size_t>(comm_.node())]) /
               cluster.hdd_write_bps);

  // Degraded-mode audit: one cheap liveness allgather per dump; the
  // heavier health allreduce runs only when a store actually died, so the
  // healthy path keeps its put/window counters bit-identical.
  stats.store_alive = !store_.failed();
  const auto alive_flags = simmpi::allgather(
      comm_, static_cast<std::uint8_t>(stats.store_alive ? 1 : 0));
  int alive_count = 0;
  for (const auto f : alive_flags) alive_count += f;
  stats.k_achieved_min = keff;
  if (alive_count < n) {
    stats.degraded = true;
    // Replica health over everything the surviving stores hold: naturally
    // distributed duplicates and replicas from earlier epochs count toward
    // K exactly as the repair scrub counts them.
    const ReplicaHealthSet health = allreduce_health(comm_, store_, keff);
    std::unordered_set<hash::Fingerprint, hash::FingerprintHash> seen;
    int my_min = keff;
    for (const auto& entry : manifest.entries) {
      if (!seen.insert(entry.fp).second) continue;
      const ReplicaHealthSet::Entry* h = health.find(entry.fp);
      const int achieved =
          h == nullptr ? 0 : std::min(static_cast<int>(h->count), keff);
      my_min = std::min(my_min, achieved);
      if (achieved < keff) {
        ++stats.under_replicated_chunks;
        stats.under_replicated_bytes += entry.length;
      }
    }
    stats.k_achieved_min = my_min;
  }
  stats.phases.storage_s = phase.lap();

  stats.total_time_s = comm_.clock().now() - phase.start;

  // Publish into the shared registry (names are aggregates over all ranks
  // and dumps: each rank adds its own contribution per dump).
  if (auto* t = comm_.obs()) {
    auto& m = *t->metrics;
    if (rank == 0) m.add("dump.count");
    m.add("dump.dataset_bytes", stats.dataset_bytes);
    m.add("dump.chunks", stats.chunk_count);
    m.add("dump.local_unique_bytes", stats.local_unique_bytes);
    m.add("dump.owned_unique_bytes", stats.owned_unique_bytes);
    m.add("dump.discarded_bytes", stats.discarded_bytes);
    m.add("dump.sent_chunks", stats.sent_chunks);
    m.add("dump.sent_bytes", stats.sent_bytes);
    m.add("dump.recv_chunks", stats.recv_chunks);
    m.add("dump.recv_bytes", stats.recv_bytes);
    m.add("dump.stored_bytes", stats.stored_bytes);
    m.add("dump.manifest_bytes", stats.manifest_bytes);
    if (stats.degraded) {
      if (rank == 0) m.add("dump.degraded_count");
      m.add("dump.under_replicated_chunks", stats.under_replicated_chunks);
      m.add("dump.under_replicated_bytes", stats.under_replicated_bytes);
      m.add("dump.commit_skipped_chunks", stats.commit_skipped_chunks);
      m.add("dump.commit_skipped_bytes", stats.commit_skipped_bytes);
    }
    m.observe("dump.rank_sent_bytes", static_cast<double>(stats.sent_bytes));
    m.observe("dump.rank_recv_bytes", static_cast<double>(stats.recv_bytes));
    if (rank == 0) {
      m.set("dump.last.total_time_s", stats.total_time_s);
      m.observe("dump.total_time_s", stats.total_time_s);
    }
  }
  return stats;
}

GlobalDumpStats Dumper::collect(simmpi::Comm& comm, const DumpStats& mine) {
  GlobalDumpStats g;
  g.total_dataset_bytes = simmpi::allreduce_sum(comm, mine.dataset_bytes);
  g.total_unique_bytes = simmpi::allreduce_sum(comm, mine.owned_unique_bytes);
  g.total_sent_bytes = simmpi::allreduce_sum(comm, mine.sent_bytes);
  g.total_stored_bytes = simmpi::allreduce_sum(comm, mine.stored_bytes);
  g.max_sent_bytes = simmpi::allreduce_max(comm, mine.sent_bytes);
  g.max_recv_bytes = simmpi::allreduce_max(comm, mine.recv_bytes);
  g.avg_sent_bytes =
      static_cast<double>(g.total_sent_bytes) / comm.size();
  g.completion_time_s = simmpi::allreduce_max(comm, mine.total_time_s);
  g.min_k_achieved = simmpi::allreduce(
      comm, mine.k_achieved_min, [](int a, int b) { return a < b ? a : b; });
  g.total_under_replicated_bytes =
      simmpi::allreduce_sum(comm, mine.under_replicated_bytes);
  g.max_phases.hash_s = simmpi::allreduce_max(comm, mine.phases.hash_s);
  g.max_phases.reduction_s =
      simmpi::allreduce_max(comm, mine.phases.reduction_s);
  g.max_phases.planning_s =
      simmpi::allreduce_max(comm, mine.phases.planning_s);
  g.max_phases.exchange_s =
      simmpi::allreduce_max(comm, mine.phases.exchange_s);
  g.max_phases.storage_s = simmpi::allreduce_max(comm, mine.phases.storage_s);

  // Machine-readable mirror of the roll-up this call just computed (the
  // "dump.last.*" gauges track the most recent collect on any telemetry-
  // attached run; rank 0 writes so each value lands exactly once).
  if (auto* t = comm.obs(); t != nullptr && comm.rank() == 0) {
    auto& m = *t->metrics;
    m.set("dump.last.total_dataset_bytes",
          static_cast<double>(g.total_dataset_bytes));
    m.set("dump.last.total_unique_bytes",
          static_cast<double>(g.total_unique_bytes));
    m.set("dump.last.total_sent_bytes",
          static_cast<double>(g.total_sent_bytes));
    m.set("dump.last.total_stored_bytes",
          static_cast<double>(g.total_stored_bytes));
    m.set("dump.last.max_sent_bytes", static_cast<double>(g.max_sent_bytes));
    m.set("dump.last.max_recv_bytes", static_cast<double>(g.max_recv_bytes));
    m.set("dump.last.avg_sent_bytes", g.avg_sent_bytes);
    m.set("dump.last.completion_time_s", g.completion_time_s);
    m.set("dump.last.min_k_achieved", static_cast<double>(g.min_k_achieved));
    m.set("dump.last.under_replicated_bytes",
          static_cast<double>(g.total_under_replicated_bytes));
  }
  return g;
}

}  // namespace collrep::core
