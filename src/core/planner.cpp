#include "core/planner.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace collrep::core {

void SendMatrix::set_row(int rank, std::span<const std::uint64_t> values) {
  if (static_cast<int>(values.size()) != k_) {
    throw std::invalid_argument("SendMatrix: row size mismatch");
  }
  std::copy(values.begin(), values.end(),
            chunks_.begin() + static_cast<std::size_t>(rank) *
                                  static_cast<std::size_t>(k_));
}

std::vector<int> rank_shuffle(const SendMatrix& load, int k) {
  const int n = load.nranks();
  std::vector<int> index(static_cast<std::size_t>(n));
  std::iota(index.begin(), index.end(), 0);
  std::stable_sort(index.begin(), index.end(), [&](int a, int b) {
    const auto sa = load.total_send(a);
    const auto sb = load.total_send(b);
    if (sa != sb) return sa > sb;
    return a < b;
  });

  std::vector<int> shuffle(static_cast<std::size_t>(n));
  int head = 0;
  int tail = n - 1;
  std::size_t i = 0;
  while (head <= tail) {
    shuffle[i++] = index[static_cast<std::size_t>(head++)];
    for (int j = 1; j < k && head <= tail; ++j) {
      shuffle[i++] = index[static_cast<std::size_t>(tail--)];
    }
  }
  return shuffle;
}

std::vector<int> identity_shuffle(int nranks) {
  std::vector<int> shuffle(static_cast<std::size_t>(nranks));
  std::iota(shuffle.begin(), shuffle.end(), 0);
  return shuffle;
}

std::vector<int> invert_shuffle(std::span<const int> shuffle) {
  std::vector<int> pos(shuffle.size());
  for (std::size_t i = 0; i < shuffle.size(); ++i) {
    pos[static_cast<std::size_t>(shuffle[i])] = static_cast<int>(i);
  }
  return pos;
}

std::uint64_t put_offset_chunks(const SendMatrix& load,
                                std::span<const int> shuffle, int pos, int p) {
  const int n = static_cast<int>(shuffle.size());
  // Receiver sits at pos + p.  Senders at distance d < p from the receiver
  // come later in the ring and were assigned the earlier window regions
  // (paper: "rank i uses offset 0 for its partner i+1, offset j for its
  // partner i+2 where j is the send size from i+1 to i+2", §III-C).
  std::uint64_t offset = 0;
  for (int d = 1; d < p; ++d) {
    const int sender = shuffle[static_cast<std::size_t>((pos + p - d) % n)];
    offset += load.at(sender, d);
  }
  return offset;
}

std::uint64_t window_chunks(const SendMatrix& load,
                            std::span<const int> shuffle, int pos) {
  const int n = static_cast<int>(shuffle.size());
  const int k = load.k();
  std::uint64_t total = 0;
  for (int d = 1; d < k; ++d) {
    const int sender =
        shuffle[static_cast<std::size_t>(((pos - d) % n + n) % n)];
    total += load.at(sender, d);
  }
  return total;
}

int same_node_partner_count(std::span<const int> shuffle, int k,
                            const sim::ClusterConfig& cluster) {
  const int n = static_cast<int>(shuffle.size());
  int violations = 0;
  for (int pos = 0; pos < n; ++pos) {
    const int node = cluster.node_of(shuffle[static_cast<std::size_t>(pos)]);
    for (int p = 1; p < k && p < n; ++p) {
      const int partner = shuffle[static_cast<std::size_t>((pos + p) % n)];
      if (cluster.node_of(partner) == node) ++violations;
    }
  }
  return violations;
}

std::vector<int> make_node_disjoint(std::vector<int> shuffle, int k,
                                    const sim::ClusterConfig& cluster) {
  const int n = static_cast<int>(shuffle.size());
  if (n <= 1 || k <= 1) return shuffle;

  const auto node_at = [&](int pos) {
    return cluster.node_of(shuffle[static_cast<std::size_t>(((pos % n) + n) % n)]);
  };
  // Same-node partner *pairs* owned by a position: matches against the
  // k-1 ring positions before it.  The sum over positions equals
  // same_node_partner_count, so a strictly decreasing local search on
  // this objective can never worsen the reported metric.
  const auto violation_pairs = [&](int pos) {
    int pairs = 0;
    for (int d = 1; d < k && d < n; ++d) {
      if (node_at(pos) == node_at(pos - d)) ++pairs;
    }
    return pairs;
  };
  // Swapping positions i and j can only change the status of i, j and
  // the k-1 positions after each.
  const auto affected_viols = [&](int i, int j) {
    int count = 0;
    for (int t = 0; t < k && t < n; ++t) {
      count += violation_pairs(i + t);
      if (((j + t) % n + n) % n != ((i + t) % n + n) % n) {
        count += violation_pairs(j + t);
      }
    }
    return count;
  };

  // Greedy local search: accept any swap that strictly reduces the
  // violation count in the affected window; a few rounds converge on all
  // feasible instances (and leave the best effort otherwise).
  for (int round = 0; round < 4; ++round) {
    bool improved = false;
    for (int i = 0; i < n; ++i) {
      if (violation_pairs(i) == 0) continue;
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const int before = affected_viols(i, j);
        std::swap(shuffle[static_cast<std::size_t>(i)],
                  shuffle[static_cast<std::size_t>(j)]);
        const int after = affected_viols(i, j);
        if (after < before) {
          improved = true;
          break;
        }
        std::swap(shuffle[static_cast<std::size_t>(i)],
                  shuffle[static_cast<std::size_t>(j)]);
      }
    }
    if (!improved) break;
  }

  // The local search can stall in a local optimum; if violations remain,
  // try the constructive fallback — walk the original order and at each
  // position pick the earliest remaining rank whose node differs from the
  // previous k-1 picks — and keep whichever arrangement is better.
  if (same_node_partner_count(shuffle, k, cluster) > 0) {
    std::vector<int> constructed;
    constructed.reserve(static_cast<std::size_t>(n));
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    for (int i = 0; i < n; ++i) {
      int pick = -1;
      for (int j = 0; j < n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const int node =
            cluster.node_of(shuffle[static_cast<std::size_t>(j)]);
        bool clean = true;
        for (int d = 1; d < k && d <= i; ++d) {
          if (cluster.node_of(
                  constructed[static_cast<std::size_t>(i - d)]) == node) {
            clean = false;
            break;
          }
        }
        if (clean) {
          pick = j;
          break;
        }
      }
      if (pick < 0) {  // forced violation; take the earliest remaining
        for (int j = 0; j < n; ++j) {
          if (!used[static_cast<std::size_t>(j)]) {
            pick = j;
            break;
          }
        }
      }
      used[static_cast<std::size_t>(pick)] = true;
      constructed.push_back(shuffle[static_cast<std::size_t>(pick)]);
    }
    if (same_node_partner_count(constructed, k, cluster) <
        same_node_partner_count(shuffle, k, cluster)) {
      shuffle = std::move(constructed);
    }
  }
  return shuffle;
}

std::vector<std::uint64_t> receive_chunks_per_rank(
    const SendMatrix& load, std::span<const int> shuffle) {
  const int n = static_cast<int>(shuffle.size());
  std::vector<std::uint64_t> recv(static_cast<std::size_t>(n), 0);
  for (int pos = 0; pos < n; ++pos) {
    recv[static_cast<std::size_t>(shuffle[static_cast<std::size_t>(pos)])] =
        window_chunks(load, shuffle, pos);
  }
  return recv;
}

}  // namespace collrep::core
