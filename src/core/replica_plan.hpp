// ReplicaPlan: which chunks this rank keeps, discards, and sends to which
// partner slots (paper Algorithm 1, lines 4-9).
//
// Three builders — one per evaluated strategy:
//   * plan_full          (no-dedup): every chunk, duplicates included, is
//                        stored locally and sent to all K-1 partners;
//   * plan_local_dedup   (local-dedup): every locally unique chunk is
//                        stored and sent to all K-1 partners;
//   * plan_collective    (coll-dedup): consults the global view — chunks
//                        already replicated K times elsewhere are
//                        discarded; designated chunks are topped up to K
//                        copies with the round-robin split among the
//                        designated ranks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/fingerprint_set.hpp"
#include "core/local_dedup.hpp"

namespace collrep::core {

struct ChunkAssignment {
  // Index into LocalDedupResult::unique_chunks for dedup strategies, or a
  // raw chunk index for plan_full.
  std::uint32_t chunk = 0;
  bool store_local = false;
  std::vector<std::uint8_t> send_slots;  // partner slots, each in 1..K-1
};

struct ReplicaPlan {
  std::vector<ChunkAssignment> assignments;
  std::vector<std::uint64_t> load;  // size K; [0]=local, [p]=slot p sends
  std::uint64_t discarded_chunks = 0;
  std::uint64_t discarded_bytes = 0;
  // This rank's contribution to the globally-unique-content total
  // (Fig. 3a): bytes of fingerprints it "owns" — every locally unique
  // chunk for the blind strategies; for coll-dedup a view fingerprint is
  // owned only by its first designated rank.
  std::uint64_t owned_unique_bytes = 0;
  std::uint32_t skip_fallbacks = 0;  // designated-target avoidance failed
};

// Context for the designated-target avoidance pass: once the shuffle is
// known, a sender can steer top-up replicas away from partners that are
// themselves designated for the fingerprint (DESIGN.md §1, deviation 3).
struct ShuffleContext {
  std::span<const int> shuffle;       // position -> rank
  std::span<const int> position_of;   // rank -> position
};

[[nodiscard]] ReplicaPlan plan_full(std::span<const std::uint32_t> chunk_lengths,
                                    int k_effective);

[[nodiscard]] ReplicaPlan plan_local_dedup(const LocalDedupResult& local,
                                           const chunk::Chunker& chunker,
                                           int k_effective);

[[nodiscard]] ReplicaPlan plan_collective(
    const LocalDedupResult& local, const chunk::Chunker& chunker,
    const BoundedFpSet& gview, int my_rank, int k_effective,
    const ShuffleContext* shuffle_ctx);

}  // namespace collrep::core
