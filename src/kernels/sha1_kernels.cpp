// SHA-1 compression-function variants.
//
//  * "scalar"    — the straightforward 80-round loop (reference).
//  * "pipelined" — portable block-pipelined variant: fully unrolled
//    rounds, a 16-word circular message schedule, __builtin_bswap32
//    loads, and the e->d->c->b->a register rotation folded into the
//    macro arguments so no shuffle instructions are emitted.
//  * "shani"     — Intel SHA extensions (SHA1RNDS4/SHA1NEXTE/SHA1MSG*),
//    four rounds per instruction.
//
// All variants process `nblocks` consecutive 64-byte blocks per call so
// streaming updates pay the dispatch indirection once per update, not
// once per block.
#include "kernels/kernels.hpp"

#include <bit>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#define COLLREP_KERNELS_SHA_X86 1
#endif

namespace collrep::kernels {

namespace {

constexpr std::uint32_t rol(std::uint32_t v, int s) noexcept {
  return std::rotl(v, s);
}

// -- scalar reference ---------------------------------------------------------

void sha1_blocks_scalar(std::uint32_t state[5], const std::uint8_t* blocks,
                        std::size_t nblocks) noexcept {
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* block = blocks + blk * 64;
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
             (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = rol(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }

    std::uint32_t a = state[0];
    std::uint32_t b = state[1];
    std::uint32_t c = state[2];
    std::uint32_t d = state[3];
    std::uint32_t e = state[4];

    for (int i = 0; i < 80; ++i) {
      std::uint32_t f;
      std::uint32_t k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const std::uint32_t tmp = rol(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rol(b, 30);
      b = a;
      a = tmp;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
  }
}

// -- pipelined scalar ---------------------------------------------------------

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return __builtin_bswap32(v);
}

void sha1_blocks_pipelined(std::uint32_t state[5], const std::uint8_t* blocks,
                           std::size_t nblocks) noexcept {
  std::uint32_t a = state[0];
  std::uint32_t b = state[1];
  std::uint32_t c = state[2];
  std::uint32_t d = state[3];
  std::uint32_t e = state[4];

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* p = blocks + blk * 64;
    std::uint32_t w[16];

// Schedule: first 16 rounds consume bswapped block words; later rounds
// recompute in a 16-word ring.  The a..e rotation is encoded in the
// argument order of consecutive macro invocations.
#define COLLREP_SHA1_W0(i) (w[i] = load_be32(p + 4 * (i)))
#define COLLREP_SHA1_W(i)                                              \
  (w[(i) & 15] = rol(w[((i) + 13) & 15] ^ w[((i) + 8) & 15] ^          \
                         w[((i) + 2) & 15] ^ w[(i) & 15],              \
                     1))
#define COLLREP_SHA1_R0(v, x, y, z, u, i)                              \
  u += ((x & (y ^ z)) ^ z) + COLLREP_SHA1_W0(i) + 0x5A827999u +        \
       rol(v, 5);                                                      \
  x = rol(x, 30);
#define COLLREP_SHA1_R1(v, x, y, z, u, i)                              \
  u += ((x & (y ^ z)) ^ z) + COLLREP_SHA1_W(i) + 0x5A827999u +         \
       rol(v, 5);                                                      \
  x = rol(x, 30);
#define COLLREP_SHA1_R2(v, x, y, z, u, i)                              \
  u += (x ^ y ^ z) + COLLREP_SHA1_W(i) + 0x6ED9EBA1u + rol(v, 5);      \
  x = rol(x, 30);
#define COLLREP_SHA1_R3(v, x, y, z, u, i)                              \
  u += (((x | y) & z) | (x & y)) + COLLREP_SHA1_W(i) + 0x8F1BBCDCu +   \
       rol(v, 5);                                                      \
  x = rol(x, 30);
#define COLLREP_SHA1_R4(v, x, y, z, u, i)                              \
  u += (x ^ y ^ z) + COLLREP_SHA1_W(i) + 0xCA62C1D6u + rol(v, 5);      \
  x = rol(x, 30);

    COLLREP_SHA1_R0(a, b, c, d, e, 0)
    COLLREP_SHA1_R0(e, a, b, c, d, 1)
    COLLREP_SHA1_R0(d, e, a, b, c, 2)
    COLLREP_SHA1_R0(c, d, e, a, b, 3)
    COLLREP_SHA1_R0(b, c, d, e, a, 4)
    COLLREP_SHA1_R0(a, b, c, d, e, 5)
    COLLREP_SHA1_R0(e, a, b, c, d, 6)
    COLLREP_SHA1_R0(d, e, a, b, c, 7)
    COLLREP_SHA1_R0(c, d, e, a, b, 8)
    COLLREP_SHA1_R0(b, c, d, e, a, 9)
    COLLREP_SHA1_R0(a, b, c, d, e, 10)
    COLLREP_SHA1_R0(e, a, b, c, d, 11)
    COLLREP_SHA1_R0(d, e, a, b, c, 12)
    COLLREP_SHA1_R0(c, d, e, a, b, 13)
    COLLREP_SHA1_R0(b, c, d, e, a, 14)
    COLLREP_SHA1_R0(a, b, c, d, e, 15)
    COLLREP_SHA1_R1(e, a, b, c, d, 16)
    COLLREP_SHA1_R1(d, e, a, b, c, 17)
    COLLREP_SHA1_R1(c, d, e, a, b, 18)
    COLLREP_SHA1_R1(b, c, d, e, a, 19)
    COLLREP_SHA1_R2(a, b, c, d, e, 20)
    COLLREP_SHA1_R2(e, a, b, c, d, 21)
    COLLREP_SHA1_R2(d, e, a, b, c, 22)
    COLLREP_SHA1_R2(c, d, e, a, b, 23)
    COLLREP_SHA1_R2(b, c, d, e, a, 24)
    COLLREP_SHA1_R2(a, b, c, d, e, 25)
    COLLREP_SHA1_R2(e, a, b, c, d, 26)
    COLLREP_SHA1_R2(d, e, a, b, c, 27)
    COLLREP_SHA1_R2(c, d, e, a, b, 28)
    COLLREP_SHA1_R2(b, c, d, e, a, 29)
    COLLREP_SHA1_R2(a, b, c, d, e, 30)
    COLLREP_SHA1_R2(e, a, b, c, d, 31)
    COLLREP_SHA1_R2(d, e, a, b, c, 32)
    COLLREP_SHA1_R2(c, d, e, a, b, 33)
    COLLREP_SHA1_R2(b, c, d, e, a, 34)
    COLLREP_SHA1_R2(a, b, c, d, e, 35)
    COLLREP_SHA1_R2(e, a, b, c, d, 36)
    COLLREP_SHA1_R2(d, e, a, b, c, 37)
    COLLREP_SHA1_R2(c, d, e, a, b, 38)
    COLLREP_SHA1_R2(b, c, d, e, a, 39)
    COLLREP_SHA1_R3(a, b, c, d, e, 40)
    COLLREP_SHA1_R3(e, a, b, c, d, 41)
    COLLREP_SHA1_R3(d, e, a, b, c, 42)
    COLLREP_SHA1_R3(c, d, e, a, b, 43)
    COLLREP_SHA1_R3(b, c, d, e, a, 44)
    COLLREP_SHA1_R3(a, b, c, d, e, 45)
    COLLREP_SHA1_R3(e, a, b, c, d, 46)
    COLLREP_SHA1_R3(d, e, a, b, c, 47)
    COLLREP_SHA1_R3(c, d, e, a, b, 48)
    COLLREP_SHA1_R3(b, c, d, e, a, 49)
    COLLREP_SHA1_R3(a, b, c, d, e, 50)
    COLLREP_SHA1_R3(e, a, b, c, d, 51)
    COLLREP_SHA1_R3(d, e, a, b, c, 52)
    COLLREP_SHA1_R3(c, d, e, a, b, 53)
    COLLREP_SHA1_R3(b, c, d, e, a, 54)
    COLLREP_SHA1_R3(a, b, c, d, e, 55)
    COLLREP_SHA1_R3(e, a, b, c, d, 56)
    COLLREP_SHA1_R3(d, e, a, b, c, 57)
    COLLREP_SHA1_R3(c, d, e, a, b, 58)
    COLLREP_SHA1_R3(b, c, d, e, a, 59)
    COLLREP_SHA1_R4(a, b, c, d, e, 60)
    COLLREP_SHA1_R4(e, a, b, c, d, 61)
    COLLREP_SHA1_R4(d, e, a, b, c, 62)
    COLLREP_SHA1_R4(c, d, e, a, b, 63)
    COLLREP_SHA1_R4(b, c, d, e, a, 64)
    COLLREP_SHA1_R4(a, b, c, d, e, 65)
    COLLREP_SHA1_R4(e, a, b, c, d, 66)
    COLLREP_SHA1_R4(d, e, a, b, c, 67)
    COLLREP_SHA1_R4(c, d, e, a, b, 68)
    COLLREP_SHA1_R4(b, c, d, e, a, 69)
    COLLREP_SHA1_R4(a, b, c, d, e, 70)
    COLLREP_SHA1_R4(e, a, b, c, d, 71)
    COLLREP_SHA1_R4(d, e, a, b, c, 72)
    COLLREP_SHA1_R4(c, d, e, a, b, 73)
    COLLREP_SHA1_R4(b, c, d, e, a, 74)
    COLLREP_SHA1_R4(a, b, c, d, e, 75)
    COLLREP_SHA1_R4(e, a, b, c, d, 76)
    COLLREP_SHA1_R4(d, e, a, b, c, 77)
    COLLREP_SHA1_R4(c, d, e, a, b, 78)
    COLLREP_SHA1_R4(b, c, d, e, a, 79)

#undef COLLREP_SHA1_W0
#undef COLLREP_SHA1_W
#undef COLLREP_SHA1_R0
#undef COLLREP_SHA1_R1
#undef COLLREP_SHA1_R2
#undef COLLREP_SHA1_R3
#undef COLLREP_SHA1_R4

    a = (state[0] += a);
    b = (state[1] += b);
    c = (state[2] += c);
    d = (state[3] += d);
    e = (state[4] += e);
  }
}

// -- SHA-NI -------------------------------------------------------------------

#ifdef COLLREP_KERNELS_SHA_X86

// Layout follows the canonical Intel SHA-extensions flow: ABCD packed
// big-endian-high in one register, E carried through SHA1NEXTE, message
// schedule advanced by SHA1MSG1/SHA1MSG2 + XOR, four rounds per
// SHA1RNDS4.
__attribute__((target("sha,ssse3,sse4.1"))) void sha1_blocks_shani(
    std::uint32_t state[5], const std::uint8_t* blocks,
    std::size_t nblocks) noexcept {
  __m128i abcd =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i e0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  const __m128i bswap_mask = _mm_set_epi64x(
      static_cast<long long>(0x0001020304050607ULL),
      static_cast<long long>(0x08090A0B0C0D0E0FULL));

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* p = blocks + blk * 64;
    const __m128i abcd_save = abcd;
    const __m128i e0_save = e0;
    __m128i e1;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), bswap_mask);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)),
        bswap_mask);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)),
        bswap_mask);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)),
        bswap_mask);

    // Rounds 0-3
    e0 = _mm_add_epi32(e0, msg0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

    // Rounds 4-7
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);

    // Rounds 8-11
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 12-15
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 16-19
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 20-23
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 24-27
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 28-31
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 32-35
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 36-39
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 40-43
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 44-47
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 48-51
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 52-55
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 56-59
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 60-63
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 64-67
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 68-71
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 72-75
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

    // Rounds 76-79
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    // Fold in the saved state.
    e0 = _mm_sha1nexte_epu32(e0, e0_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
  }

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e0, 3));
}

#endif  // COLLREP_KERNELS_SHA_X86

}  // namespace

std::span<const Sha1Variant> sha1_variants() noexcept {
  static const Sha1Variant variants[] = {
      {"scalar", true, &sha1_blocks_scalar},
      {"pipelined", true, &sha1_blocks_pipelined},
#ifdef COLLREP_KERNELS_SHA_X86
      {"shani", cpu_features().sha_ni, &sha1_blocks_shani},
#endif
  };
  return variants;
}

}  // namespace collrep::kernels
