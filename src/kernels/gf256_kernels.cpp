// GF(256) multiply(-accumulate) kernel variants.
//
// The SIMD variants use the ISA-L-style split-nibble scheme: for a fixed
// coefficient c, a byte b = (hi << 4) | lo satisfies
//   c * b = c * (hi << 4)  ^  c * lo
// so two 16-entry tables (one per nibble) cover the whole product and a
// PSHUFB per nibble evaluates 16 (SSSE3) or 32 (AVX2) products per
// instruction.  Both 16-byte tables for all 256 coefficients are built
// once at startup (8 KB, shared by every call).
#include "kernels/kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define COLLREP_KERNELS_X86 1
#endif

namespace collrep::kernels {

namespace {

// Self-contained shift-xor multiply mod 0x11D; init-time only (the hot
// paths below never call it).
constexpr std::uint8_t slow_mul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint16_t acc = 0;
  std::uint16_t aa = a;
  for (int bit = 0; bit < 8; ++bit) {
    if ((b >> bit) & 1) acc ^= static_cast<std::uint16_t>(aa << bit);
  }
  for (int bit = 15; bit >= 8; --bit) {
    if ((acc >> bit) & 1) {
      acc ^= static_cast<std::uint16_t>(0x11D << (bit - 8));
    }
  }
  return static_cast<std::uint8_t>(acc);
}

struct NibbleTables {
  alignas(32) std::uint8_t lo[256][16];
  alignas(32) std::uint8_t hi[256][16];
};

const NibbleTables& nibble_tables() noexcept {
  static const NibbleTables tables = [] {
    NibbleTables t;
    for (int c = 0; c < 256; ++c) {
      for (int v = 0; v < 16; ++v) {
        t.lo[c][v] = slow_mul(static_cast<std::uint8_t>(c),
                              static_cast<std::uint8_t>(v));
        t.hi[c][v] = slow_mul(static_cast<std::uint8_t>(c),
                              static_cast<std::uint8_t>(v << 4));
      }
    }
    return t;
  }();
  return tables;
}

// -- scalar reference ---------------------------------------------------------

void gf_mul_add_scalar(std::uint8_t* out, const std::uint8_t* in,
                       std::size_t n, std::uint8_t coeff) noexcept {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] ^= in[i];
    return;
  }
  // Row of the multiplication table for `coeff`, built once per call;
  // amortized over the (chunk-sized) payload this beats log/exp lookups.
  std::uint8_t row[256];
  for (int v = 0; v < 256; ++v) {
    row[v] = slow_mul(coeff, static_cast<std::uint8_t>(v));
  }
  for (std::size_t i = 0; i < n; ++i) out[i] ^= row[in[i]];
}

void gf_mul_scalar(std::uint8_t* out, const std::uint8_t* in, std::size_t n,
                   std::uint8_t coeff) noexcept {
  if (coeff == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  if (coeff == 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i];
    return;
  }
  std::uint8_t row[256];
  for (int v = 0; v < 256; ++v) {
    row[v] = slow_mul(coeff, static_cast<std::uint8_t>(v));
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = row[in[i]];
}

// Split-nibble tail shared by the SIMD variants for the last < 16 bytes.
inline std::uint8_t nibble_mul(const NibbleTables& t, std::uint8_t coeff,
                               std::uint8_t b) noexcept {
  return static_cast<std::uint8_t>(t.lo[coeff][b & 0xF] ^
                                   t.hi[coeff][b >> 4]);
}

#ifdef COLLREP_KERNELS_X86

// -- SSSE3 --------------------------------------------------------------------

__attribute__((target("ssse3"))) void gf_mul_add_ssse3(
    std::uint8_t* out, const std::uint8_t* in, std::size_t n,
    std::uint8_t coeff) noexcept {
  if (coeff == 0) return;
  const NibbleTables& t = nibble_tables();
  const __m128i tlo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[coeff]));
  const __m128i thi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[coeff]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i lo = _mm_and_si128(v, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    const __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo),
                                       _mm_shuffle_epi8(thi, hi));
    const __m128i o = _mm_loadu_si128(reinterpret_cast<__m128i*>(out + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_xor_si128(o, prod));
  }
  for (; i < n; ++i) out[i] ^= nibble_mul(t, coeff, in[i]);
}

__attribute__((target("ssse3"))) void gf_mul_ssse3(
    std::uint8_t* out, const std::uint8_t* in, std::size_t n,
    std::uint8_t coeff) noexcept {
  if (coeff == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const NibbleTables& t = nibble_tables();
  const __m128i tlo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[coeff]));
  const __m128i thi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[coeff]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i lo = _mm_and_si128(v, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_xor_si128(_mm_shuffle_epi8(tlo, lo),
                                   _mm_shuffle_epi8(thi, hi)));
  }
  for (; i < n; ++i) out[i] = nibble_mul(t, coeff, in[i]);
}

// -- AVX2 ---------------------------------------------------------------------

__attribute__((target("avx2"))) void gf_mul_add_avx2(
    std::uint8_t* out, const std::uint8_t* in, std::size_t n,
    std::uint8_t coeff) noexcept {
  if (coeff == 0) return;
  const NibbleTables& t = nibble_tables();
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[coeff])));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[coeff])));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  // 2x unrolled: two independent load/shuffle/xor chains per iteration.
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i + 32));
    const __m256i p0 = _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(v0, mask)),
        _mm256_shuffle_epi8(
            thi, _mm256_and_si256(_mm256_srli_epi64(v0, 4), mask)));
    const __m256i p1 = _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(v1, mask)),
        _mm256_shuffle_epi8(
            thi, _mm256_and_si256(_mm256_srli_epi64(v1, 4), mask)));
    const __m256i o0 =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(out + i));
    const __m256i o1 =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(out + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_xor_si256(o0, p0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 32),
                        _mm256_xor_si256(o1, p1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i p = _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(v, mask)),
        _mm256_shuffle_epi8(thi,
                            _mm256_and_si256(_mm256_srli_epi64(v, 4), mask)));
    const __m256i o = _mm256_loadu_si256(reinterpret_cast<__m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_xor_si256(o, p));
  }
  for (; i < n; ++i) out[i] ^= nibble_mul(t, coeff, in[i]);
}

__attribute__((target("avx2"))) void gf_mul_avx2(
    std::uint8_t* out, const std::uint8_t* in, std::size_t n,
    std::uint8_t coeff) noexcept {
  if (coeff == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const NibbleTables& t = nibble_tables();
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[coeff])));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[coeff])));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_xor_si256(
            _mm256_shuffle_epi8(tlo, _mm256_and_si256(v, mask)),
            _mm256_shuffle_epi8(
                thi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask))));
  }
  for (; i < n; ++i) out[i] = nibble_mul(t, coeff, in[i]);
}

#endif  // COLLREP_KERNELS_X86

}  // namespace

std::span<const GfVariant> gf_variants() noexcept {
  static const GfVariant variants[] = {
      {"scalar", true, &gf_mul_add_scalar, &gf_mul_scalar},
#ifdef COLLREP_KERNELS_X86
      {"ssse3", cpu_features().ssse3, &gf_mul_add_ssse3, &gf_mul_ssse3},
      {"avx2", cpu_features().avx2, &gf_mul_add_avx2, &gf_mul_avx2},
#endif
  };
  return variants;
}

}  // namespace collrep::kernels
