// CRC-32C (Castagnoli) kernel variants: the byte-at-a-time reflected
// table reference, the SSE4.2 hardware instruction (CRC32 r64, r/m64 —
// 8 bytes per instruction, ~3 cycles latency pipelined by the loop split),
// and a PCLMUL-combined three-stream version.  The hardware CRC32
// instruction has 3-cycle latency but 1-cycle throughput, so a single
// dependency chain tops out at ~2.7 bytes/cycle; running three independent
// chains over fixed-size lanes and stitching them back together with a
// carry-less multiply recovers the full 8 bytes/cycle issue rate.  The
// stitch uses the reflected-domain identity
//
//   crc · x^(8·L) mod P  ==  CRC32(0, (clmul(crc, x^(8·(L-4)) mod P) << 1))
//
// (the CRC32 instruction folds its 64-bit operand through x^32, and the
// carry-less product of two bit-reflected operands lands shifted down by
// one), with the x^(8·(L-4)) constant evaluated at compile time by the
// constexpr GF(2) helpers below.
#include "kernels/kernels.hpp"

#include <array>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#define COLLREP_KERNELS_CRC_X86 1
#endif

namespace collrep::kernels {

namespace {

constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

// GF(2)[x] arithmetic mod the reflected polynomial, zlib's crc32_combine
// convention: x^0 is represented by bit 31.  Used at compile time only, to
// derive the lane-stitch constant for the three-stream kernel.
constexpr std::uint32_t gf2_multmodp(std::uint32_t a, std::uint32_t b) {
  std::uint32_t m = 1u << 31;
  std::uint32_t p = 0;
  for (;;) {
    if (a & m) {
      p ^= b;
      if ((a & (m - 1u)) == 0) break;
    }
    m >>= 1;
    b = (b & 1u) ? (b >> 1) ^ kPolyReflected : b >> 1;
  }
  return p;
}

// x^(8n) mod P — the operator that advances a CRC over n zero bytes.
constexpr std::uint32_t gf2_xpow8n(std::uint64_t n) {
  std::uint32_t r = 0x80000000u;    // x^0
  std::uint32_t base = 0x00800000u;  // x^8
  while (n != 0) {
    if (n & 1u) r = gf2_multmodp(r, base);
    base = gf2_multmodp(base, base);
    n >>= 1;
  }
  return r;
}

std::uint32_t crc32c_scalar(std::uint32_t crc, const std::uint8_t* data,
                            std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

#ifdef COLLREP_KERNELS_CRC_X86

__attribute__((target("sse4.2"))) std::uint32_t crc32c_sse42(
    std::uint32_t crc, const std::uint8_t* data, std::size_t n) noexcept {
  std::uint64_t state = crc;
  // Peel to 8-byte alignment so the wide loads below stay on one line.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(data) & 7u) != 0) {
    state = _mm_crc32_u8(static_cast<std::uint32_t>(state), *data++);
    --n;
  }
  while (n >= 32) {
    std::uint64_t q0;
    std::uint64_t q1;
    std::uint64_t q2;
    std::uint64_t q3;
    std::memcpy(&q0, data, 8);
    std::memcpy(&q1, data + 8, 8);
    std::memcpy(&q2, data + 16, 8);
    std::memcpy(&q3, data + 24, 8);
    state = _mm_crc32_u64(state, q0);
    state = _mm_crc32_u64(state, q1);
    state = _mm_crc32_u64(state, q2);
    state = _mm_crc32_u64(state, q3);
    data += 32;
    n -= 32;
  }
  while (n >= 8) {
    std::uint64_t q;
    std::memcpy(&q, data, 8);
    state = _mm_crc32_u64(state, q);
    data += 8;
    n -= 8;
  }
  auto crc32 = static_cast<std::uint32_t>(state);
  while (n > 0) {
    crc32 = _mm_crc32_u8(crc32, *data++);
    --n;
  }
  return crc32;
}

// Bytes per lane of the three-stream block.  512 keeps the whole block
// (1536 B) inside L1 while amortizing the two stitches (~20 cycles each)
// down to noise; the serial sse42 loop handles everything smaller.
constexpr std::size_t kCrcLane = 512;
constexpr std::uint32_t kCrcLaneShift = gf2_xpow8n(kCrcLane - 4);

// Advance `crc` across kCrcLane zero bytes: multiply by x^(8·kCrcLane)
// in the reflected domain via one carry-less multiply folded through the
// CRC32 instruction (see file header for the identity).
__attribute__((target("pclmul,sse4.2"))) inline std::uint32_t
crc32c_shift_lane(std::uint32_t crc) noexcept {
  const __m128i product = _mm_clmulepi64_si128(
      _mm_cvtsi32_si128(static_cast<int>(crc)),
      _mm_cvtsi32_si128(static_cast<int>(kCrcLaneShift)), 0x00);
  const auto q =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(product)) << 1;
  return static_cast<std::uint32_t>(_mm_crc32_u64(0, q));
}

__attribute__((target("pclmul,sse4.2"))) std::uint32_t crc32c_pclmul(
    std::uint32_t crc, const std::uint8_t* data, std::size_t n) noexcept {
  std::uint64_t state = crc;
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(data) & 7u) != 0) {
    state = _mm_crc32_u8(static_cast<std::uint32_t>(state), *data++);
    --n;
  }
  while (n >= 3 * kCrcLane) {
    // Three independent CRC chains, one per lane; chain 0 continues the
    // running state, chains 1 and 2 start from zero and are stitched in.
    std::uint64_t c0 = state;
    std::uint64_t c1 = 0;
    std::uint64_t c2 = 0;
    for (std::size_t off = 0; off < kCrcLane; off += 8) {
      std::uint64_t q0;
      std::uint64_t q1;
      std::uint64_t q2;
      std::memcpy(&q0, data + off, 8);
      std::memcpy(&q1, data + kCrcLane + off, 8);
      std::memcpy(&q2, data + 2 * kCrcLane + off, 8);
      c0 = _mm_crc32_u64(c0, q0);
      c1 = _mm_crc32_u64(c1, q1);
      c2 = _mm_crc32_u64(c2, q2);
    }
    std::uint32_t merged =
        crc32c_shift_lane(static_cast<std::uint32_t>(c0)) ^
        static_cast<std::uint32_t>(c1);
    state = crc32c_shift_lane(merged) ^ static_cast<std::uint32_t>(c2);
    data += 3 * kCrcLane;
    n -= 3 * kCrcLane;
  }
  while (n >= 8) {
    std::uint64_t q;
    std::memcpy(&q, data, 8);
    state = _mm_crc32_u64(state, q);
    data += 8;
    n -= 8;
  }
  auto crc32 = static_cast<std::uint32_t>(state);
  while (n > 0) {
    crc32 = _mm_crc32_u8(crc32, *data++);
    --n;
  }
  return crc32;
}

#endif  // COLLREP_KERNELS_CRC_X86

}  // namespace

std::span<const Crc32cVariant> crc32c_variants() noexcept {
  static const Crc32cVariant variants[] = {
      {"scalar", true, &crc32c_scalar},
#ifdef COLLREP_KERNELS_CRC_X86
      {"sse42", cpu_features().sse42, &crc32c_sse42},
      {"pclmul", cpu_features().sse42 && cpu_features().pclmul,
       &crc32c_pclmul},
#endif
  };
  return variants;
}

}  // namespace collrep::kernels
