// CRC-32C (Castagnoli) kernel variants: the byte-at-a-time reflected
// table reference, and the SSE4.2 hardware instruction (CRC32 r64, r/m64 —
// 8 bytes per instruction, ~3 cycles latency pipelined by the loop split).
#include "kernels/kernels.hpp"

#include <array>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#define COLLREP_KERNELS_CRC_X86 1
#endif

namespace collrep::kernels {

namespace {

constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

std::uint32_t crc32c_scalar(std::uint32_t crc, const std::uint8_t* data,
                            std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

#ifdef COLLREP_KERNELS_CRC_X86

__attribute__((target("sse4.2"))) std::uint32_t crc32c_sse42(
    std::uint32_t crc, const std::uint8_t* data, std::size_t n) noexcept {
  std::uint64_t state = crc;
  // Peel to 8-byte alignment so the wide loads below stay on one line.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(data) & 7u) != 0) {
    state = _mm_crc32_u8(static_cast<std::uint32_t>(state), *data++);
    --n;
  }
  while (n >= 32) {
    std::uint64_t q0;
    std::uint64_t q1;
    std::uint64_t q2;
    std::uint64_t q3;
    std::memcpy(&q0, data, 8);
    std::memcpy(&q1, data + 8, 8);
    std::memcpy(&q2, data + 16, 8);
    std::memcpy(&q3, data + 24, 8);
    state = _mm_crc32_u64(state, q0);
    state = _mm_crc32_u64(state, q1);
    state = _mm_crc32_u64(state, q2);
    state = _mm_crc32_u64(state, q3);
    data += 32;
    n -= 32;
  }
  while (n >= 8) {
    std::uint64_t q;
    std::memcpy(&q, data, 8);
    state = _mm_crc32_u64(state, q);
    data += 8;
    n -= 8;
  }
  auto crc32 = static_cast<std::uint32_t>(state);
  while (n > 0) {
    crc32 = _mm_crc32_u8(crc32, *data++);
    --n;
  }
  return crc32;
}

#endif  // COLLREP_KERNELS_CRC_X86

}  // namespace

std::span<const Crc32cVariant> crc32c_variants() noexcept {
  static const Crc32cVariant variants[] = {
      {"scalar", true, &crc32c_scalar},
#ifdef COLLREP_KERNELS_CRC_X86
      {"sse42", cpu_features().sse42, &crc32c_sse42},
#endif
  };
  return variants;
}

}  // namespace collrep::kernels
