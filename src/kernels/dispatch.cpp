#include "kernels/kernels.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace collrep::kernels {

namespace {

CpuFeatures probe() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    f.ssse3 = (ecx & bit_SSSE3) != 0;
    f.sse42 = (ecx & bit_SSE4_2) != 0;
    f.pclmul = (ecx & bit_PCLMUL) != 0;
    // AVX2 additionally needs the OS to save YMM state (OSXSAVE + XCR0);
    // AVX-512 needs the opmask + ZMM state bits on top of that.
    const bool osxsave = (ecx & bit_OSXSAVE) != 0;
    const bool avx = (ecx & bit_AVX) != 0;
    bool ymm_enabled = false;
    bool zmm_enabled = false;
    if (osxsave && avx) {
      std::uint32_t xcr0_lo = 0;
      std::uint32_t xcr0_hi = 0;
      __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
      ymm_enabled = (xcr0_lo & 0x6u) == 0x6u;  // XMM + YMM state saved
      zmm_enabled = (xcr0_lo & 0xE6u) == 0xE6u;  // + opmask/ZMM_Hi256/Hi16
    }
    unsigned eax7 = 0;
    unsigned ebx7 = 0;
    unsigned ecx7 = 0;
    unsigned edx7 = 0;
    if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) != 0) {
      f.avx2 = ymm_enabled && (ebx7 & bit_AVX2) != 0;
      f.sha_ni = (ebx7 & bit_SHA) != 0;
      const unsigned avx512_bits =
          bit_AVX512F | bit_AVX512BW | bit_AVX512DQ | bit_AVX512VL;
      f.avx512 = zmm_enabled && (ebx7 & avx512_bits) == avx512_bits;
      f.vpclmulqdq = f.avx512 && f.pclmul && (ecx7 & bit_VPCLMULQDQ) != 0;
    }
  }
#endif
  return f;
}

Dispatch resolve() noexcept {
  Dispatch d{};
  const char* env = std::getenv("COLLREP_KERNELS");
  const bool force_scalar = env != nullptr && std::strcmp(env, "scalar") == 0;

  const auto gf = gf_variants();
  const auto crc = crc32c_variants();
  const auto sha = sha1_variants();
  const auto hm = hmerge_variants();

  const auto pick = [force_scalar](const auto& variants) -> std::size_t {
    if (force_scalar) return 0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      if (variants[i].available) best = i;
    }
    return best;
  };

  const auto& g = gf[pick(gf)];
  d.gf_mul_add = g.mul_add;
  d.gf_mul = g.mul;
  d.gf_name = g.name;

  const auto& c = crc[pick(crc)];
  d.crc32c = c.fn;
  d.crc32c_name = c.name;

  const auto& s = sha[pick(sha)];
  d.sha1_blocks = s.fn;
  d.sha1_name = s.name;

  const auto& h = hm[pick(hm)];
  d.hmerge = h.fn;
  d.hmerge_name = h.name;
  return d;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures f = probe();
  return f;
}

const Dispatch& dispatch() noexcept {
  static const Dispatch d = resolve();
  return d;
}

}  // namespace collrep::kernels
