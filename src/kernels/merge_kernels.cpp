// HMERGE kernel variants: set-merge planning over sorted 64-bit keys.
//
// The merge that dominates every DUMP_OUTPUT reduction level walks two
// fingerprint-sorted entry arrays.  The kernel works on the order-
// preserving 64-bit prefix keys only and emits a tag byte per merged
// output (take-A / take-B / match); the caller turns take-runs into bulk
// copies and touches full entries only on matches.
//
// Three regimes matter and each vector variant accelerates all of them,
// picked block by block with a single combined rarely-taken branch:
//   disjoint runs   — one side wins repeatedly.  Two scalar compares
//                     (this block's last key vs the other side's head)
//                     detect the run, then galloping (exponential probe
//                     + binary search) finds its end and a memset emits
//                     the whole run of identical tags.  Range-partitioned
//                     inputs merge at memory speed through this path.
//   duplicate runs  — both heads advance in lockstep (common at high
//                     overlap).  A vector equality check (2×VPCMPEQQ on
//                     AVX2, one 8-lane mask compare on AVX-512) commits a
//                     full block of match tags at once.
//   interleaved     — neither run test fires: a 16-iteration branchless
//                     burst.  Each iteration computes its tag
//                     arithmetically (tag = 2*eq + (b<a)) and advances
//                     both cursors by flag arithmetic, so uniformly
//                     random interleave — which is exactly what
//                     fingerprint-derived keys look like — costs zero
//                     branch mispredicts.  The block precondition (≥16
//                     keys left per side) bounds the burst's consumption.
//
// A compare/shuffle bitonic merge network (the textbook SIMD merge) was
// implemented and benchmarked first: its cross-lane permute chain
// serializes on 3-cycle shuffles and measures ~45% below the branchless
// burst on uniformly interleaved keys, even multi-streamed.  The burst
// won on measurement; the vector units still carry the duplicate-run
// detection.
//
// A single stream is still latency-bound: every burst waits on the
// previous burst's cursor advance.  Large merges are therefore split at
// merge-path diagonals into kSegments independent segments whose block
// steps are issued round-robin from one loop — the out-of-order core
// overlaps the segments' dependency chains, which is where the bulk of
// the random-interleave speedup comes from.  Each segment writes tags at
// its worst-case (no-match) offset; one memmove per segment compacts the
// runs afterwards.
#include "kernels/kernels.hpp"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define COLLREP_KERNELS_X86 1
#endif

namespace collrep::kernels {

namespace {

// First index in [lo, hi) with arr[idx] >= key (arr ascending).  The
// exponential probe keeps short runs cheap while long disjoint runs cost
// O(log run) instead of O(run).
std::size_t gallop_lower_bound(const std::uint64_t* arr, std::size_t lo,
                               std::size_t hi, std::uint64_t key) noexcept {
  std::size_t bound = 1;
  while (lo + bound < hi && arr[lo + bound] < key) bound <<= 1;
  const std::uint64_t* first = arr + lo + (bound >> 1);
  const std::uint64_t* last = arr + std::min(lo + bound, hi);
  return static_cast<std::size_t>(std::lower_bound(first, last, key) - arr);
}

// One segment of the merge: half-open cursor/end pairs into each input,
// the absolute tag-write position, and the match count.
struct MergeCursor {
  std::size_t i;
  std::size_t ea;
  std::size_t j;
  std::size_t eb;
  std::size_t o;
  std::size_t m;
};

// Branchless two-pointer for sub-block tails, then bulk-tag leftovers.
void finish_span(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint8_t* tags, MergeCursor& s) noexcept {
  while (s.i < s.ea && s.j < s.eb) {
    const std::uint64_t x = a[s.i];
    const std::uint64_t y = b[s.j];
    const bool eq = x == y;
    const bool lt = x < y;
    tags[s.o++] = eq ? kHmergeMatch : (lt ? kHmergeTakeA : kHmergeTakeB);
    s.i += static_cast<std::size_t>(lt | eq);
    s.j += static_cast<std::size_t>(!lt);
    s.m += static_cast<std::size_t>(eq);
  }
  if (s.i < s.ea) {
    std::memset(tags + s.o, kHmergeTakeA, s.ea - s.i);
    s.o += s.ea - s.i;
    s.i = s.ea;
  }
  if (s.j < s.eb) {
    std::memset(tags + s.o, kHmergeTakeB, s.eb - s.j);
    s.o += s.eb - s.j;
    s.j = s.eb;
  }
}

HmergeResult hmerge_scalar(const std::uint64_t* a, std::size_t na,
                           const std::uint64_t* b, std::size_t nb,
                           std::uint8_t* tags) noexcept {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t o = 0;
  std::size_t m = 0;
  while (i < na && j < nb) {
    const std::uint64_t x = a[i];
    const std::uint64_t y = b[j];
    if (x == y) {
      tags[o++] = kHmergeMatch;
      ++i;
      ++j;
      ++m;
    } else if (x < y) {
      tags[o++] = kHmergeTakeA;
      ++i;
    } else {
      tags[o++] = kHmergeTakeB;
      ++j;
    }
  }
  if (i < na) {
    std::memset(tags + o, kHmergeTakeA, na - i);
    o += na - i;
  }
  if (j < nb) {
    std::memset(tags + o, kHmergeTakeB, nb - j);
    o += nb - j;
  }
  return {o, m};
}

#ifdef COLLREP_KERNELS_X86

// Index pair (ia, jb) with ia + jb == d on the merge path: every element
// of a[0..ia) and b[0..jb) sorts at or before every element of the
// suffixes.  Standard two-array diagonal binary search.
struct SegmentSplit {
  std::size_t ia;
  std::size_t jb;
};

SegmentSplit merge_path_split(const std::uint64_t* a, std::size_t na,
                              const std::uint64_t* b, std::size_t nb,
                              std::size_t d) noexcept {
  std::size_t lo = d > nb ? d - nb : 0;
  std::size_t hi = std::min(d, na);
  while (lo < hi) {
    const std::size_t ia = lo + (hi - lo) / 2;
    if (a[ia] < b[d - ia - 1]) {
      lo = ia + 1;
    } else {
      hi = ia;
    }
  }
  return {lo, d - lo};
}

// Segment boundary with the equal-pair adjustment: if a cross-input
// equal pair (a[ia-1] == b[jb] or b[jb-1] == a[ia]) straddles the cut,
// pull one side back one element so the pair lands in a single segment
// and gets tagged as one kHmergeMatch.  At most one clause fires: both
// firing would need two distinct cross-input equal pairs interlocking at
// one diagonal, impossible with strictly ascending per-input keys.
SegmentSplit segment_bounds(const std::uint64_t* a, std::size_t na,
                            const std::uint64_t* b, std::size_t nb,
                            std::size_t d) noexcept {
  SegmentSplit s = merge_path_split(a, na, b, nb, d);
  if (s.ia > 0 && s.jb < nb && a[s.ia - 1] == b[s.jb]) {
    --s.ia;
  } else if (s.jb > 0 && s.ia < na && b[s.jb - 1] == a[s.ia]) {
    --s.jb;
  }
  return s;
}

// Number of independent merge-path segments stepped round-robin, and the
// minimum total key count that justifies splitting.  6 streams measured
// fastest (4 leaves latency on the table, 8 regresses on register
// pressure); below the threshold the split/compact overhead dominates.
constexpr int kSegments = 6;
constexpr std::size_t kSegmentThreshold = 4096;

// One block step of a segment: regime selection + 16-tag burst.  Returns
// false once either side has fewer than 16 keys left (caller drains the
// tail with finish_span).
__attribute__((target("avx2"), always_inline)) inline bool step_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::uint8_t* tags,
    MergeCursor& s) noexcept {
  if (s.i + 16 > s.ea || s.j + 16 > s.eb) {
    return false;
  }
  // Disjoint-run probes: one scalar compare each way.
  const bool skip_a = a[s.i + 15] < b[s.j];
  const bool skip_b = b[s.j + 15] < a[s.i];
  // Duplicate-run probe: next 4 keys pairwise equal?  (4 lanes, not 8:
  // the probe runs every block, so its cost is paid on every interleaved
  // burst — the gallop below extends a confirmed run 8 keys at a time.)
  const __m256i va0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + s.i));
  const __m256i vb0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + s.j));
  const int eq4 =
      _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(va0, vb0)));
  if (static_cast<int>(skip_a) | static_cast<int>(skip_b) |
      static_cast<int>(eq4 == 0xF)) {
    if (skip_a) {
      const std::size_t e = gallop_lower_bound(a, s.i + 16, s.ea, b[s.j]);
      std::memset(tags + s.o, kHmergeTakeA, e - s.i);
      s.o += e - s.i;
      s.i = e;
      return true;
    }
    if (skip_b) {
      const std::size_t e = gallop_lower_bound(b, s.j + 16, s.eb, a[s.i]);
      std::memset(tags + s.o, kHmergeTakeB, e - s.j);
      s.o += e - s.j;
      s.j = e;
      return true;
    }
    // Duplicate-run gallop: extend the confirmed equal run while whole
    // 8-key blocks stay pairwise equal, then commit one memset.  On
    // identical replicas this loop is perfectly predicted and merges at
    // multiple G entries/s.
    std::size_t e = s.i + 4;
    while (e + 8 <= s.ea && s.j + (e - s.i) + 8 <= s.eb) {
      const __m256i wa0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + e));
      const __m256i wb0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + s.j + (e - s.i)));
      const __m256i wa1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + e + 4));
      const __m256i wb1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + s.j + (e - s.i) + 4));
      const int w =
          _mm256_movemask_pd(
              _mm256_castsi256_pd(_mm256_cmpeq_epi64(wa0, wb0))) |
          (_mm256_movemask_pd(
               _mm256_castsi256_pd(_mm256_cmpeq_epi64(wa1, wb1)))
           << 4);
      if (w != 0xFF) {
        break;
      }
      e += 8;
    }
    const std::size_t len = e - s.i;
    std::memset(tags + s.o, kHmergeMatch, len);
    s.o += len;
    s.i = e;
    s.j += len;
    s.m += len;
    return true;
  }
  // Interleaved burst: 16 branchless tag commits.  The arithmetic tag
  // form is load-bearing — a ternary here compiles to a data-dependent
  // branch that mispredicts on scattered matches and halves throughput.
  // The match count is not accumulated per iteration: each iteration
  // emits one tag and advances i+j by 1 (take) or 2 (match), so the
  // burst's matches equal (Δi + Δj) − 16.
  std::size_t i = s.i;
  std::size_t j = s.j;
  std::size_t o = s.o;
#pragma GCC unroll 16
  for (int r = 0; r < 16; ++r) {
    const std::uint64_t x = a[i];
    const std::uint64_t y = b[j];
    const bool eq = x == y;
    const bool gt = y < x;
    tags[o++] = static_cast<std::uint8_t>(2u * eq + gt);
    i += static_cast<std::size_t>(x <= y);
    j += static_cast<std::size_t>(x >= y);
  }
  s.m += (i - s.i) + (j - s.j) - 16;
  s.i = i;
  s.j = j;
  s.o = o;
  return true;
}

// Shared driver: split into segments, step them round-robin, drain, then
// compact each segment's tag run down to its final offset.  Step is a
// stateless lambda wrapping step_avx2/step_avx512 (monomorphized — no
// indirect call in the hot loop).
// always_inline so the whole driver lands inside the target-attributed
// wrapper below — without it the differing target attributes block
// inlining and every block step becomes a real call.
template <typename Step>
__attribute__((always_inline)) inline HmergeResult hmerge_segmented(
    const std::uint64_t* a, std::size_t na, const std::uint64_t* b,
    std::size_t nb, std::uint8_t* tags, Step block_step) noexcept {
  const std::size_t total = na + nb;
  if (total < kSegmentThreshold) {
    MergeCursor s{0, na, 0, nb, 0, 0};
    while (block_step(a, b, tags, s)) {
    }
    finish_span(a, b, tags, s);
    return {s.o, s.m};
  }
  MergeCursor seg[kSegments];
  std::size_t base[kSegments];
  SegmentSplit prev{0, 0};
  for (int k = 0; k < kSegments; ++k) {
    const SegmentSplit next =
        k == kSegments - 1
            ? SegmentSplit{na, nb}
            : segment_bounds(
                  a, na, b, nb,
                  total * static_cast<std::size_t>(k + 1) / kSegments);
    base[k] = prev.ia + prev.jb;  // worst-case (no-match) tag offset
    seg[k] = MergeCursor{prev.ia, next.ia, prev.jb, next.jb, base[k], 0};
    prev = next;
  }
  for (;;) {
    bool more = true;
#pragma GCC unroll 6
    for (auto& s : seg) {
      more &= block_step(a, b, tags, s);
    }
    if (!more) {
      break;
    }
  }
  for (auto& s : seg) {
    while (block_step(a, b, tags, s)) {
    }
    finish_span(a, b, tags, s);
  }
  std::size_t out = seg[0].o;
  std::size_t m = seg[0].m;
  for (int k = 1; k < kSegments; ++k) {
    const std::size_t len = seg[k].o - base[k];
    if (out != base[k]) {
      std::memmove(tags + out, tags + base[k], len);
    }
    out += len;
    m += seg[k].m;
  }
  return {out, m};
}

__attribute__((target("avx2"))) HmergeResult hmerge_avx2(
    const std::uint64_t* a, std::size_t na, const std::uint64_t* b,
    std::size_t nb, std::uint8_t* tags) noexcept {
  return hmerge_segmented(
      a, na, b, nb, tags,
      [](const std::uint64_t* aa, const std::uint64_t* bb, std::uint8_t* t,
         MergeCursor& s) __attribute__((target("avx2"))) {
        return step_avx2(aa, bb, t, s);
      });
}

#if defined(__x86_64__)

// AVX-512 block step: identical structure to step_avx2; the duplicate-
// run probe is one 512-bit load pair + a single 8-lane mask compare.
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"),
               always_inline)) inline bool
step_avx512(const std::uint64_t* a, const std::uint64_t* b,
            std::uint8_t* tags, MergeCursor& s) noexcept {
  if (s.i + 16 > s.ea || s.j + 16 > s.eb) {
    return false;
  }
  const bool skip_a = a[s.i + 15] < b[s.j];
  const bool skip_b = b[s.j + 15] < a[s.i];
  // Duplicate-run probe: 4 lanes via VPCMPEQQ on YMM (cheaper than a
  // 512-bit load pair when the probe misses, which is the common case on
  // interleaved data); the gallop extends a hit 8 keys at a time with
  // full 512-bit compares.
  const __m256i va0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + s.i));
  const __m256i vb0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + s.j));
  const __mmask8 eq4 = _mm256_cmpeq_epu64_mask(va0, vb0);
  if (static_cast<int>(skip_a) | static_cast<int>(skip_b) |
      static_cast<int>(eq4 == 0xFu)) {
    if (skip_a) {
      const std::size_t e = gallop_lower_bound(a, s.i + 16, s.ea, b[s.j]);
      std::memset(tags + s.o, kHmergeTakeA, e - s.i);
      s.o += e - s.i;
      s.i = e;
      return true;
    }
    if (skip_b) {
      const std::size_t e = gallop_lower_bound(b, s.j + 16, s.eb, a[s.i]);
      std::memset(tags + s.o, kHmergeTakeB, e - s.j);
      s.o += e - s.j;
      s.j = e;
      return true;
    }
    std::size_t e = s.i + 4;
    while (e + 8 <= s.ea && s.j + (e - s.i) + 8 <= s.eb) {
      const __m512i wa =
          _mm512_loadu_si512(reinterpret_cast<const void*>(a + e));
      const __m512i wb = _mm512_loadu_si512(
          reinterpret_cast<const void*>(b + s.j + (e - s.i)));
      if (_mm512_cmpeq_epu64_mask(wa, wb) != 0xFFu) {
        break;
      }
      e += 8;
    }
    const std::size_t len = e - s.i;
    std::memset(tags + s.o, kHmergeMatch, len);
    s.o += len;
    s.i = e;
    s.j += len;
    s.m += len;
    return true;
  }
  std::size_t i = s.i;
  std::size_t j = s.j;
  std::size_t o = s.o;
#pragma GCC unroll 16
  for (int r = 0; r < 16; ++r) {
    const std::uint64_t x = a[i];
    const std::uint64_t y = b[j];
    const bool eq = x == y;
    const bool gt = y < x;
    tags[o++] = static_cast<std::uint8_t>(2u * eq + gt);
    i += static_cast<std::size_t>(x <= y);
    j += static_cast<std::size_t>(x >= y);
  }
  s.m += (i - s.i) + (j - s.j) - 16;
  s.i = i;
  s.j = j;
  s.o = o;
  return true;
}

__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) HmergeResult
hmerge_avx512(const std::uint64_t* a, std::size_t na, const std::uint64_t* b,
              std::size_t nb, std::uint8_t* tags) noexcept {
  return hmerge_segmented(
      a, na, b, nb, tags,
      [](const std::uint64_t* aa, const std::uint64_t* bb, std::uint8_t* t,
         MergeCursor& s)
          __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) {
            return step_avx512(aa, bb, t, s);
          });
}

#endif  // __x86_64__

#endif  // COLLREP_KERNELS_X86

}  // namespace

std::span<const HmergeVariant> hmerge_variants() noexcept {
  static const HmergeVariant variants[] = {
      {"scalar", true, &hmerge_scalar},
#ifdef COLLREP_KERNELS_X86
      {"avx2", cpu_features().avx2, &hmerge_avx2},
#if defined(__x86_64__)
      {"avx512", cpu_features().avx512, &hmerge_avx512},
#endif
#endif
  };
  return variants;
}

}  // namespace collrep::kernels
