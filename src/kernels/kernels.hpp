// Data-plane kernels with runtime CPU-feature dispatch.
//
// Every byte a dump moves passes through a handful of byte-bashing loops:
// GF(256) multiply-accumulate (Reed-Solomon encode/decode), CRC-32C, and
// the SHA-1 compression function.  Each kernel ships as a list of
// *variants* — index 0 is the portable scalar reference, higher indices
// are SIMD implementations gated on CPU features probed once via CPUID —
// and the pipeline calls through a function pointer resolved exactly once
// at startup (one indirection per call, never re-probed).
//
// The scalar variants are always compiled and always tested: the
// differential suite (ctest label `kernels`) checks every *available*
// SIMD variant against variant 0 on randomized inputs.
//
// COLLREP_KERNELS=scalar forces the scalar reference kernels everywhere
// (the baseline that scripts/bench_kernels.sh measures against); any
// other value (or unset) selects the best variant this CPU supports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace collrep::kernels {

struct CpuFeatures {
  bool ssse3 = false;
  bool sse42 = false;
  bool avx2 = false;    // includes the OS-enabled-YMM (XGETBV) check
  bool sha_ni = false;
  bool pclmul = false;      // PCLMULQDQ (carry-less multiply)
  bool vpclmulqdq = false;  // wide VPCLMULQDQ (implies pclmul on real CPUs)
  // AVX-512 F+BW+DQ+VL as one bundle, including the OS-enabled-ZMM
  // (XGETBV opmask/ZMM_Hi256/Hi16_ZMM) check; the merge kernels need all
  // four subsets, so there is no point probing them separately.
  bool avx512 = false;
};

// CPUID probe, performed once and cached.
[[nodiscard]] const CpuFeatures& cpu_features() noexcept;

// out[i] ^= coeff * in[i] over GF(2^8) mod 0x11D (the mul_add form) and
// out[i] = coeff * in[i] (the mul form).
using GfMulAddFn = void (*)(std::uint8_t* out, const std::uint8_t* in,
                            std::size_t n, std::uint8_t coeff);
using GfMulFn = void (*)(std::uint8_t* out, const std::uint8_t* in,
                         std::size_t n, std::uint8_t coeff);
// Folds `n` bytes into a running CRC-32C state.  The state is the raw
// (already complemented) register: callers do the ~seed / ~result steps.
using Crc32cFn = std::uint32_t (*)(std::uint32_t crc, const std::uint8_t* data,
                                   std::size_t n);
// Runs the SHA-1 compression function over `nblocks` consecutive 64-byte
// blocks (block-pipelined: one call per update, not per block).
using Sha1BlocksFn = void (*)(std::uint32_t state[5],
                              const std::uint8_t* blocks, std::size_t nblocks);

// HMERGE: set-merge planning over two strictly-ascending u64 key arrays.
//
// The fingerprint set stores entries sorted by 20-byte fingerprint; the
// first 8 bytes, read big-endian, are an order-preserving 64-bit prefix
// key.  The kernel walks both key arrays and emits one *tag* byte per
// merged output element — take-from-A, take-from-B, or key-match — so the
// caller can bulk-copy disjoint runs and run the (scalar, branchy)
// freq/rank reconciliation only on the tagged matches.  Keys must be
// strictly ascending within each input; a kHmergeMatch tag therefore
// names exactly one element of each side.  `tags` must have room for
// na + nb bytes.
inline constexpr std::uint8_t kHmergeTakeA = 0;
inline constexpr std::uint8_t kHmergeTakeB = 1;
inline constexpr std::uint8_t kHmergeMatch = 2;

struct HmergeResult {
  std::size_t out_len;  // tags written == na + nb - matches
  std::size_t matches;  // number of kHmergeMatch tags
};

using HmergeFn = HmergeResult (*)(const std::uint64_t* a, std::size_t na,
                                  const std::uint64_t* b, std::size_t nb,
                                  std::uint8_t* tags);

struct GfVariant {
  const char* name;  // "scalar", "ssse3", "avx2"
  bool available;    // true when this CPU can execute it
  GfMulAddFn mul_add;
  GfMulFn mul;
};

struct Crc32cVariant {
  const char* name;  // "scalar", "sse42"
  bool available;
  Crc32cFn fn;
};

struct Sha1Variant {
  const char* name;  // "scalar", "pipelined", "shani"
  bool available;
  Sha1BlocksFn fn;
};

struct HmergeVariant {
  const char* name;  // "scalar", "avx2", "avx512"
  bool available;
  HmergeFn fn;
};

// Variant lists, scalar reference first, fastest last.  Entries with
// available == false are compiled in but must not be called.
[[nodiscard]] std::span<const GfVariant> gf_variants() noexcept;
[[nodiscard]] std::span<const Crc32cVariant> crc32c_variants() noexcept;
[[nodiscard]] std::span<const Sha1Variant> sha1_variants() noexcept;
[[nodiscard]] std::span<const HmergeVariant> hmerge_variants() noexcept;

// The active kernel set: best available variant per kernel, or the scalar
// references when COLLREP_KERNELS=scalar.  Resolved on first use (thread
// safe), then a plain struct of function pointers.
struct Dispatch {
  GfMulAddFn gf_mul_add;
  GfMulFn gf_mul;
  Crc32cFn crc32c;
  Sha1BlocksFn sha1_blocks;
  HmergeFn hmerge;
  const char* gf_name;
  const char* crc32c_name;
  const char* sha1_name;
  const char* hmerge_name;
};

[[nodiscard]] const Dispatch& dispatch() noexcept;

}  // namespace collrep::kernels
