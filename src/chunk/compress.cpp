#include "chunk/compress.hpp"

#include <cstring>
#include <stdexcept>

namespace collrep::chunk {

namespace {

constexpr std::size_t kWindow = 4096;    // 12-bit distances
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 18;    // 4-bit length field + kMinMatch
constexpr int kChainDepth = 16;          // match-finder effort bound

std::uint32_t prefix_hash(const std::uint8_t* p) noexcept {
  // 3-byte prefix hash into a 2^13 table.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> 19;
}

}  // namespace

std::vector<std::uint8_t> lzss_compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);
  const auto len32 = static_cast<std::uint32_t>(input.size());
  out.resize(4);
  std::memcpy(out.data(), &len32, 4);

  // head[h] = most recent position with prefix hash h; prev[] forms chains.
  std::vector<std::int64_t> head(1u << 13, -1);
  std::vector<std::int64_t> prev(input.size(), -1);

  std::size_t pos = 0;
  std::size_t flag_index = 0;
  int items_in_group = 0;

  const auto begin_group = [&] {
    flag_index = out.size();
    out.push_back(0);
    items_in_group = 0;
  };
  begin_group();

  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;

    if (pos + kMinMatch <= input.size()) {
      const std::uint32_t h = prefix_hash(input.data() + pos);
      std::int64_t candidate = head[h];
      for (int depth = 0; depth < kChainDepth && candidate >= 0; ++depth) {
        const auto dist = pos - static_cast<std::size_t>(candidate);
        if (dist > kWindow) break;
        std::size_t match = 0;
        const std::size_t limit =
            std::min(kMaxMatch, input.size() - pos);
        while (match < limit &&
               input[static_cast<std::size_t>(candidate) + match] ==
                   input[pos + match]) {
          ++match;
        }
        if (match > best_len) {
          best_len = match;
          best_dist = dist;
          if (match == kMaxMatch) break;
        }
        candidate = prev[static_cast<std::size_t>(candidate)];
      }
      prev[pos] = head[h];
      head[h] = static_cast<std::int64_t>(pos);
    }

    if (best_len >= kMinMatch) {
      out[flag_index] |= static_cast<std::uint8_t>(1 << items_in_group);
      const auto d = static_cast<std::uint16_t>(best_dist - 1);  // 12 bits
      const auto l = static_cast<std::uint16_t>(best_len - kMinMatch);
      const std::uint16_t token = static_cast<std::uint16_t>((d << 4) | l);
      out.push_back(static_cast<std::uint8_t>(token & 0xFF));
      out.push_back(static_cast<std::uint8_t>(token >> 8));
      // Index the skipped positions so later matches can start there.
      for (std::size_t i = 1; i < best_len; ++i) {
        const std::size_t p = pos + i;
        if (p + kMinMatch <= input.size()) {
          const std::uint32_t h = prefix_hash(input.data() + p);
          prev[p] = head[h];
          head[h] = static_cast<std::int64_t>(p);
        }
      }
      pos += best_len;
    } else {
      out.push_back(input[pos]);
      ++pos;
    }
    if (++items_in_group == 8 && pos < input.size()) begin_group();
  }
  return out;
}

std::vector<std::uint8_t> lzss_decompress(
    std::span<const std::uint8_t> input) {
  if (input.size() < 4) throw std::runtime_error("lzss: truncated header");
  std::uint32_t original = 0;
  std::memcpy(&original, input.data(), 4);

  std::vector<std::uint8_t> out;
  out.reserve(original);
  std::size_t pos = 4;
  while (out.size() < original) {
    if (pos >= input.size()) throw std::runtime_error("lzss: truncated flag");
    const std::uint8_t flags = input[pos++];
    for (int bit = 0; bit < 8 && out.size() < original; ++bit) {
      if (flags & (1 << bit)) {
        if (pos + 2 > input.size()) {
          throw std::runtime_error("lzss: truncated match token");
        }
        const std::uint16_t token = static_cast<std::uint16_t>(
            input[pos] | (input[pos + 1] << 8));
        pos += 2;
        const std::size_t dist = static_cast<std::size_t>(token >> 4) + 1;
        const std::size_t len = static_cast<std::size_t>(token & 0xF) +
                                kMinMatch;
        if (dist > out.size()) throw std::runtime_error("lzss: bad distance");
        for (std::size_t i = 0; i < len; ++i) {
          out.push_back(out[out.size() - dist]);
        }
      } else {
        if (pos >= input.size()) {
          throw std::runtime_error("lzss: truncated literal");
        }
        out.push_back(input[pos++]);
      }
    }
  }
  if (out.size() != original) throw std::runtime_error("lzss: length drift");
  return out;
}

}  // namespace collrep::chunk
