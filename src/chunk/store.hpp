// ChunkStore: one rank's local storage device, content addressed.
//
// kPayload mode keeps chunk bytes (tests, examples, restore); kAccounting
// mode keeps only fingerprints and byte counters so 408-rank benches fit in
// RAM.  A store can be failed (node loss) — reads then behave as if the
// device were gone, which is what the restore path and the failure-injection
// tests exercise.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "chunk/manifest.hpp"
#include "hash/fingerprint.hpp"

namespace collrep::chunk {

enum class StoreMode : std::uint8_t {
  kPayload,     // keep chunk bytes
  kAccounting,  // keep fingerprints + sizes only
};

class StoreFailedError : public std::runtime_error {
 public:
  StoreFailedError() : std::runtime_error("chunk store has failed") {}
};

class ChunkStore {
 public:
  explicit ChunkStore(StoreMode mode = StoreMode::kPayload) : mode_(mode) {}

  [[nodiscard]] StoreMode mode() const noexcept { return mode_; }

  // Stores a chunk; returns true when the fingerprint was not yet present
  // (content addressing makes duplicate puts free except for the lookup).
  bool put(const hash::Fingerprint& fp, std::span<const std::uint8_t> payload) {
    check_alive();
    auto [it, inserted] = chunks_.try_emplace(fp);
    if (!inserted) return false;
    it->second.length = static_cast<std::uint32_t>(payload.size());
    if (mode_ == StoreMode::kPayload) {
      it->second.payload.assign(payload.begin(), payload.end());
    }
    stored_bytes_ += payload.size();
    return true;
  }

  // Accounting-mode put: records presence and length without a payload.
  bool put_accounted(const hash::Fingerprint& fp, std::uint32_t length) {
    check_alive();
    if (mode_ == StoreMode::kPayload) {
      throw std::logic_error(
          "ChunkStore: put_accounted() requires accounting mode");
    }
    auto [it, inserted] = chunks_.try_emplace(fp);
    if (!inserted) return false;
    it->second.length = length;
    stored_bytes_ += length;
    return true;
  }

  [[nodiscard]] bool contains(const hash::Fingerprint& fp) const {
    check_alive();
    return chunks_.contains(fp);
  }

  // Payload of a stored chunk; nullopt if absent.  Throws in accounting
  // mode (no payloads retained) and when the store has failed.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> get(
      const hash::Fingerprint& fp) const {
    check_alive();
    if (mode_ != StoreMode::kPayload) {
      throw std::logic_error("ChunkStore: get() requires payload mode");
    }
    const auto it = chunks_.find(fp);
    if (it == chunks_.end()) return std::nullopt;
    return std::span<const std::uint8_t>{it->second.payload};
  }

  [[nodiscard]] std::optional<std::uint32_t> chunk_length(
      const hash::Fingerprint& fp) const {
    check_alive();
    const auto it = chunks_.find(fp);
    if (it == chunks_.end()) return std::nullopt;
    return it->second.length;
  }

  // -- named blobs ------------------------------------------------------------
  // Auxiliary objects that are not content addressed (erasure-coded parity
  // shards, stream manifests).  Last write wins.
  void put_blob(const std::string& key, std::vector<std::uint8_t> bytes) {
    check_alive();
    auto [it, inserted] = blobs_.insert_or_assign(key, std::move(bytes));
    (void)it;
    (void)inserted;
  }

  [[nodiscard]] const std::vector<std::uint8_t>* get_blob(
      const std::string& key) const {
    check_alive();
    const auto it = blobs_.find(key);
    return it == blobs_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::uint64_t blob_bytes() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& [k, v] : blobs_) sum += v.size();
    return sum;
  }

  void put_manifest(Manifest manifest) {
    check_alive();
    auto& slot = manifests_[manifest.owner_rank];
    if (slot.has_value() && slot->epoch > manifest.epoch) return;
    slot = std::move(manifest);
  }

  [[nodiscard]] const Manifest* manifest_for(int owner_rank) const {
    check_alive();
    const auto it = manifests_.find(owner_rank);
    if (it == manifests_.end() || !it->second.has_value()) return nullptr;
    return &*it->second;
  }

  // Removes and returns the manifest held for `owner_rank` (nullopt if
  // none).  The shrink rebalance uses this to re-key surviving manifests
  // under the post-shrink dense numbering without copying them.
  [[nodiscard]] std::optional<Manifest> take_manifest(int owner_rank) {
    check_alive();
    const auto it = manifests_.find(owner_rank);
    if (it == manifests_.end()) return std::nullopt;
    std::optional<Manifest> out = std::move(it->second);
    manifests_.erase(it);
    return out;
  }

  // Visits every held manifest as (owner_rank, manifest), ascending by
  // owner rank; throws if failed.  The recovery service uses this to build
  // the post-shrink chunk requirement map.
  template <class Fn>
  void for_each_manifest(Fn&& fn) const {
    check_alive();
    for (const auto& [owner, slot] : manifests_) {
      if (slot.has_value()) fn(owner, *slot);
    }
  }

  // -- failure injection ----------------------------------------------------
  // Two recovery modes model two distinct hardware outcomes:
  //  * recover(): transient outage (power cut, controller reset, network
  //    partition) — the device comes back with its pre-failure contents
  //    intact, so earlier replicas silently resurface;
  //  * recover_empty(): permanent device loss — the node is replaced with a
  //    blank disk, so the store rejoins alive but holding nothing and the
  //    repair scrub (core::repair_replicas) must re-replicate what it
  //    should hold.
  // The failure-injection tests use recover() for blip scenarios and
  // recover_empty() for the ReStore-style "re-replicate after recovery"
  // scenarios.
  void fail() noexcept { failed_ = true; }
  void recover() noexcept { failed_ = false; }
  void recover_empty() {
    wipe();
    failed_ = false;
  }
  // Drops all contents (chunks, manifests, blobs) without changing the
  // failed flag; models a scrubbed or replaced medium.
  void wipe() { clear(); }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  // Scrub iteration (repair audit): visits every stored chunk as
  // (fingerprint, length).  Order is unspecified; throws if failed.
  template <class Fn>
  void for_each_chunk(Fn&& fn) const {
    check_alive();
    for (const auto& [fp, slot] : chunks_) fn(fp, slot.length);
  }

  // -- accounting -----------------------------------------------------------
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept {
    return stored_bytes_;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

  void clear() {
    chunks_.clear();
    manifests_.clear();
    blobs_.clear();
    stored_bytes_ = 0;
  }

 private:
  void check_alive() const {
    if (failed_) throw StoreFailedError{};
  }

  struct Slot {
    std::uint32_t length = 0;
    std::vector<std::uint8_t> payload;  // empty in accounting mode
  };

  StoreMode mode_;
  bool failed_ = false;
  std::unordered_map<hash::Fingerprint, Slot, hash::FingerprintHash> chunks_;
  std::map<int, std::optional<Manifest>> manifests_;
  std::map<std::string, std::vector<std::uint8_t>> blobs_;
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace collrep::chunk
