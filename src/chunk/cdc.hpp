// Content-defined chunking (paper §II related work: "content defined
// approaches use a variable chunk size calculated using a sliding window
// over the data", à la LBFS/Rabin).  Implemented with a gear rolling hash
// (FastCDC style): a boundary is declared where the rolling hash masks to
// zero, so cut points follow content and survive byte insertions — the
// property fixed-size chunking lacks (exercised by the CDC ablation).
#pragma once

#include <cstdint>
#include <vector>

#include "chunk/dataset.hpp"

namespace collrep::chunk {

struct CdcParams {
  std::size_t min_bytes = 256;
  // Average target size; must be a power of two (drives the hash mask).
  std::size_t avg_bytes = 1024;
  std::size_t max_bytes = 4096;
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;  // gear table seed
  // Skip-ahead resumes the gear hash min_bytes - log2(avg_bytes) bytes
  // after each cut instead of re-rolling the whole chunk.  Cut-point
  // identical to the reference loop (which is kept for differential
  // tests); the boundary mask only ever sees the last log2(avg) bytes.
  bool skip_ahead = true;
};

// Cuts every segment of `data` into content-defined chunks.  Chunks never
// straddle segments; every byte is covered exactly once; each chunk length
// is in [min_bytes, max_bytes] except a segment's final chunk, which may
// be shorter than min_bytes.
[[nodiscard]] std::vector<ChunkRef> content_defined_refs(
    const Dataset& data, const CdcParams& params);

}  // namespace collrep::chunk
