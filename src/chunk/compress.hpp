// LZSS compression (paper §II related work [17][18]: compressing
// checkpoints before replication is the other classic redundancy-
// elimination approach).  Byte-oriented LZSS with a 4 KiB window and
// hash-chain match finding; self-contained, loss-less, fuzz-tested.
//
// Format: u32 original length, then groups of 8 items preceded by a flag
// byte (bit set = match).  A match is 2 bytes: 12-bit backward distance
// (1-based) and 4-bit length-3 (match lengths 3..18).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace collrep::chunk {

[[nodiscard]] std::vector<std::uint8_t> lzss_compress(
    std::span<const std::uint8_t> input);

// Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<std::uint8_t> lzss_decompress(
    std::span<const std::uint8_t> input);

// Modeled single-core compression throughput for the cost model.
inline constexpr double kLzssCompressBps = 180.0e6;
inline constexpr double kLzssDecompressBps = 900.0e6;

}  // namespace collrep::chunk
