// Manifest: the recipe for rebuilding one rank's dataset from
// content-addressed chunks.  Written (and replicated) at dump time, read at
// restore time.  Entries are in buffer order; restoring concatenates the
// chunk payloads segment by segment.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/fingerprint.hpp"
#include "simmpi/archive.hpp"

namespace collrep::chunk {

struct ManifestEntry {
  hash::Fingerprint fp;
  std::uint32_t length = 0;
};
static_assert(std::is_trivially_copyable_v<ManifestEntry>);

struct Manifest {
  std::int32_t owner_rank = -1;
  std::uint64_t epoch = 0;  // checkpoint number; newest wins at restore
  std::vector<std::uint64_t> segment_sizes;
  std::vector<ManifestEntry> entries;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t sum = 0;
    for (auto s : segment_sizes) sum += s;
    return sum;
  }
};

inline void save(simmpi::OArchive& ar, const Manifest& m) {
  ar.put(m.owner_rank);
  ar.put(m.epoch);
  ar.put(m.segment_sizes);
  ar.put(m.entries);
}

inline void load(simmpi::IArchive& ar, Manifest& m) {
  ar.get(m.owner_rank);
  ar.get(m.epoch);
  ar.get(m.segment_sizes);
  ar.get(m.entries);
}

// Serialized size estimate used for replication byte accounting.
[[nodiscard]] inline std::uint64_t manifest_wire_bytes(const Manifest& m) {
  return sizeof m.owner_rank + sizeof m.epoch + 16 +
         m.segment_sizes.size() * sizeof(std::uint64_t) +
         m.entries.size() * sizeof(ManifestEntry);
}

}  // namespace collrep::chunk
