#include "chunk/cdc.hpp"

#include <array>
#include <bit>
#include <stdexcept>

namespace collrep::chunk {

namespace {

std::array<std::uint64_t, 256> make_gear_table(std::uint64_t seed) {
  std::array<std::uint64_t, 256> table{};
  std::uint64_t state = seed;
  for (auto& entry : table) {
    // splitmix64 step
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    entry = z ^ (z >> 31);
  }
  return table;
}

// Reference rolling loop: every byte from the chunk start feeds the gear
// hash, boundary test from min_bytes on.  Kept verbatim as the oracle the
// skip-ahead path is differentially tested against.
void chunk_segment_reference(std::span<const std::uint8_t> segment,
                             std::uint32_t seg_index, const CdcParams& params,
                             std::uint64_t mask,
                             const std::array<std::uint64_t, 256>& gear,
                             std::vector<ChunkRef>& refs) {
  std::uint64_t start = 0;
  std::uint64_t hash = 0;
  for (std::uint64_t i = 0; i < segment.size(); ++i) {
    hash = (hash << 1) + gear[segment[i]];
    const std::uint64_t len = i - start + 1;
    const bool at_boundary = len >= params.min_bytes && (hash & mask) == mask;
    if (at_boundary || len == params.max_bytes) {
      refs.push_back(
          ChunkRef{seg_index, start, static_cast<std::uint32_t>(len)});
      start = i + 1;
      hash = 0;
    }
  }
  if (start < segment.size()) {
    refs.push_back(ChunkRef{seg_index, start,
                            static_cast<std::uint32_t>(segment.size() - start)});
  }
}

// Skip-ahead loop, cut-point-identical to the reference.  Why skipping is
// sound: the boundary test looks only at the low W = log2(avg_bytes) bits
// of the gear hash, and in h = (h << 1) + g the carries propagate upward
// only — so (hash & mask) after k >= W updates depends on just the last W
// bytes.  After a cut the first possible boundary is at len == min_bytes;
// resuming the hash W bytes before that position reproduces the exact
// masked value the reference computes there, while never touching the
// first min_bytes - W bytes of the chunk.  The inner loop is 2-lane
// interleaved: both gear loads issue together and the two-step update
// h2 = (h << 2) + ((g0 << 1) + g1) keeps the serial dependency at one
// shift+add per byte pair.
void chunk_segment_skip(std::span<const std::uint8_t> segment,
                        std::uint32_t seg_index, const CdcParams& params,
                        std::uint64_t mask,
                        const std::array<std::uint64_t, 256>& gear,
                        std::vector<ChunkRef>& refs) {
  const std::uint64_t window =
      static_cast<std::uint64_t>(std::countr_one(mask));  // W = log2(avg)
  // Resume so that >= W bytes are rolled before the first boundary test at
  // len == min_bytes (the test itself rolls the byte at that position).
  const std::uint64_t warm_skip =
      params.min_bytes >= window + 1 ? params.min_bytes - 1 - window : 0;
  const std::uint8_t* p = segment.data();
  const std::uint64_t size = segment.size();

  std::uint64_t start = 0;
  while (start < size) {
    const std::uint64_t remaining = size - start;
    if (remaining < params.min_bytes) {
      // Tail shorter than any possible boundary: one final chunk.  (A
      // max_bytes cut is impossible because max >= min > remaining.)
      refs.push_back(
          ChunkRef{seg_index, start, static_cast<std::uint32_t>(remaining)});
      return;
    }
    const std::uint64_t first_check = start + params.min_bytes - 1;
    const std::uint64_t force = start + params.max_bytes - 1;  // may be >= size
    std::uint64_t i = start + warm_skip;
    std::uint64_t hash = 0;

    // Warm the last W bytes below the first checkable position.
    for (; i < first_check && i < size; ++i) {
      hash = (hash << 1) + gear[p[i]];
    }

    std::uint64_t cut = 0;  // exclusive end of the chunk, 0 = not found
    // 2-lane interleaved boundary scan.
    for (; cut == 0 && i + 1 < size && i + 1 <= force;) {
      const std::uint64_t g0 = gear[p[i]];
      const std::uint64_t g1 = gear[p[i + 1]];
      const std::uint64_t h1 = (hash << 1) + g0;
      if ((h1 & mask) == mask) {  // i < force here, no forced-cut test needed
        cut = i + 1;
        break;
      }
      hash = (h1 << 1) + g1;  // == (hash << 2) + ((g0 << 1) + g1)
      if ((hash & mask) == mask || i + 1 == force) {
        cut = i + 2;
        break;
      }
      i += 2;
    }
    // Odd remainder / segment tail.
    for (; cut == 0 && i < size && i <= force; ++i) {
      hash = (hash << 1) + gear[p[i]];
      if ((hash & mask) == mask || i == force) {
        cut = i + 1;
        break;
      }
    }

    if (cut == 0) {
      // Ran off the segment without a boundary: final short-tail chunk.
      refs.push_back(
          ChunkRef{seg_index, start, static_cast<std::uint32_t>(size - start)});
      return;
    }
    refs.push_back(
        ChunkRef{seg_index, start, static_cast<std::uint32_t>(cut - start)});
    start = cut;
  }
}

}  // namespace

std::vector<ChunkRef> content_defined_refs(const Dataset& data,
                                           const CdcParams& params) {
  if (params.avg_bytes == 0 || (params.avg_bytes & (params.avg_bytes - 1))) {
    throw std::invalid_argument("cdc: avg_bytes must be a power of two");
  }
  if (params.min_bytes == 0 || params.min_bytes > params.avg_bytes ||
      params.avg_bytes > params.max_bytes) {
    throw std::invalid_argument(
        "cdc: need 0 < min_bytes <= avg_bytes <= max_bytes");
  }
  const auto gear = make_gear_table(params.seed);
  const std::uint64_t mask = params.avg_bytes - 1;

  std::vector<ChunkRef> refs;
  for (std::size_t s = 0; s < data.segment_count(); ++s) {
    const auto segment = data.segment(s);
    if (params.skip_ahead) {
      chunk_segment_skip(segment, static_cast<std::uint32_t>(s), params, mask,
                         gear, refs);
    } else {
      chunk_segment_reference(segment, static_cast<std::uint32_t>(s), params,
                              mask, gear, refs);
    }
  }
  return refs;
}

}  // namespace collrep::chunk
