#include "chunk/cdc.hpp"

#include <array>
#include <stdexcept>

namespace collrep::chunk {

namespace {

std::array<std::uint64_t, 256> make_gear_table(std::uint64_t seed) {
  std::array<std::uint64_t, 256> table{};
  std::uint64_t state = seed;
  for (auto& entry : table) {
    // splitmix64 step
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    entry = z ^ (z >> 31);
  }
  return table;
}

}  // namespace

std::vector<ChunkRef> content_defined_refs(const Dataset& data,
                                           const CdcParams& params) {
  if (params.avg_bytes == 0 || (params.avg_bytes & (params.avg_bytes - 1))) {
    throw std::invalid_argument("cdc: avg_bytes must be a power of two");
  }
  if (params.min_bytes == 0 || params.min_bytes > params.avg_bytes ||
      params.avg_bytes > params.max_bytes) {
    throw std::invalid_argument(
        "cdc: need 0 < min_bytes <= avg_bytes <= max_bytes");
  }
  const auto gear = make_gear_table(params.seed);
  const std::uint64_t mask = params.avg_bytes - 1;

  std::vector<ChunkRef> refs;
  for (std::size_t s = 0; s < data.segment_count(); ++s) {
    const auto segment = data.segment(s);
    std::uint64_t start = 0;
    std::uint64_t hash = 0;
    for (std::uint64_t i = 0; i < segment.size(); ++i) {
      hash = (hash << 1) + gear[segment[i]];
      const std::uint64_t len = i - start + 1;
      const bool at_boundary =
          len >= params.min_bytes && (hash & mask) == mask;
      if (at_boundary || len == params.max_bytes) {
        refs.push_back(ChunkRef{static_cast<std::uint32_t>(s), start,
                                static_cast<std::uint32_t>(len)});
        start = i + 1;
        hash = 0;
      }
    }
    if (start < segment.size()) {
      refs.push_back(
          ChunkRef{static_cast<std::uint32_t>(s), start,
                   static_cast<std::uint32_t>(segment.size() - start)});
    }
  }
  return refs;
}

}  // namespace collrep::chunk
