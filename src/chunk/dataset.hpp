// Dataset: the (possibly non-contiguous) local buffer a rank passes to
// DUMP_OUTPUT.  The paper's buffer is the set of memory pages captured by
// the checkpoint runtime; a Dataset is an ordered list of byte segments
// that the chunker cuts into fixed-size chunks (chunks never straddle a
// segment boundary — segments are page-aligned allocations).
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace collrep::chunk {

class Dataset {
 public:
  Dataset() = default;

  void add_segment(std::span<const std::uint8_t> segment) {
    segments_.push_back(segment);
    total_bytes_ += segment.size();
  }

  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size();
  }
  [[nodiscard]] std::span<const std::uint8_t> segment(std::size_t i) const {
    return segments_.at(i);
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_bytes_;
  }

 private:
  std::vector<std::span<const std::uint8_t>> segments_;
  std::uint64_t total_bytes_ = 0;
};

// Location of one fixed-size chunk inside a Dataset.
struct ChunkRef {
  std::uint32_t segment = 0;
  std::uint64_t offset = 0;  // byte offset within the segment
  std::uint32_t length = 0;  // < chunk size only for a segment's tail chunk
};

// Cuts a Dataset into fixed-size chunks (paper default: 4 KB = one memory
// page).  Chunk i's bytes are a view into the caller's buffer; no copies.
class Chunker {
 public:
  Chunker(const Dataset& data, std::size_t chunk_bytes)
      : data_(&data), chunk_bytes_(chunk_bytes) {
    if (chunk_bytes == 0) {
      throw std::invalid_argument("Chunker: chunk size must be positive");
    }
    for (std::size_t s = 0; s < data.segment_count(); ++s) {
      const auto seg = data.segment(s);
      for (std::uint64_t off = 0; off < seg.size(); off += chunk_bytes) {
        const auto len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk_bytes, seg.size() - off));
        refs_.push_back(ChunkRef{static_cast<std::uint32_t>(s), off, len});
      }
    }
  }

  // Wraps precomputed (e.g. content-defined) chunk boundaries;
  // `max_chunk_bytes` is the slot capacity every ref must fit in.
  Chunker(const Dataset& data, std::size_t max_chunk_bytes,
          std::vector<ChunkRef> refs)
      : data_(&data), chunk_bytes_(max_chunk_bytes), refs_(std::move(refs)) {
    if (max_chunk_bytes == 0) {
      throw std::invalid_argument("Chunker: chunk size must be positive");
    }
    for (const auto& r : refs_) {
      if (r.length > max_chunk_bytes) {
        throw std::invalid_argument("Chunker: ref exceeds slot capacity");
      }
    }
  }

  [[nodiscard]] std::size_t count() const noexcept { return refs_.size(); }
  // Maximum chunk length (= fixed size for fixed chunking, slot capacity
  // for content-defined refs).
  [[nodiscard]] std::size_t chunk_bytes() const noexcept {
    return chunk_bytes_;
  }
  [[nodiscard]] const ChunkRef& ref(std::size_t i) const { return refs_.at(i); }
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t i) const {
    const ChunkRef& r = refs_.at(i);
    return data_->segment(r.segment).subspan(r.offset, r.length);
  }

 private:
  const Dataset* data_;
  std::size_t chunk_bytes_;
  std::vector<ChunkRef> refs_;
};

}  // namespace collrep::chunk
