// In-process SPMD message-passing runtime (MPI substitute).
//
// Ranks are threads executing the same body; they exchange tagged messages
// through per-rank mailboxes, synchronize through clock-aligning barriers,
// and expose one-sided windows with MPI-like create/put/fence semantics.
// Every operation charges simulated time on the owning rank's SimClock
// according to the sim::ClusterConfig cost model, so a run yields both real
// results and deterministic simulated phase timings (see DESIGN.md §1).
//
// Failure containment (RuntimeOptions::contain_failures): by default an
// injected rank kill (RankFailure) aborts the whole run.  With containment
// on, the killed rank's thread unwinds cleanly, its death is published to
// the shared membership table, and survivors learn about it at their next
// collective entry via RankDeadError — the FT-MPI/ULFM-style error-on-
// failure model.  The application then calls Comm::shrink() (all survivors
// collectively) to agree on the dead set and continue in a dense re-ranked
// smaller world (see DESIGN.md §12).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "simmpi/check_hook.hpp"
#include "simtime/cluster.hpp"

namespace collrep::obs {
class Telemetry;
}  // namespace collrep::obs

namespace collrep::simmpi {

class Comm;
class RunState;

// Thrown inside ranks blocked on communication when a sibling rank failed;
// the originating exception is what Runtime::run() rethrows.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("simmpi: run aborted by peer failure") {}
};

// Base class of injected fail-stop rank failures (fault::RankKilledError
// derives from it; defined here so the runtime can recognize a rank death
// without depending on the fault layer).  With contain_failures off (the
// default) the run aborts and Runtime::run() rethrows it; with containment
// on it is absorbed and the rank simply ceases to exist.
class RankFailure : public std::runtime_error {
 public:
  RankFailure(int rank, const std::string& what)
      : std::runtime_error(what), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

// Thrown on a *surviving* rank (contain_failures mode) when a peer died:
// at the next collective entry once the death is agreed-visible, or from a
// blocked receive whose sender can no longer deliver.  The application
// handles it by having every survivor call Comm::shrink() and continuing
// in the shrunken world; letting it escape the rank body is a primary
// error (the run then aborts loudly rather than losing the signal).
class RankDeadError : public std::runtime_error {
 public:
  RankDeadError()
      : std::runtime_error(
            "simmpi: a peer rank died; every survivor must call "
            "Comm::shrink() to continue in the surviving world") {}
};

// Fault-injection attachment point (see src/fault for the concrete
// schedule).  The runtime and the dump pipeline consult the hook at named
// injection points — before/after collectives, at window fences, at store
// commits — always on the consulting rank's own thread, so an
// implementation may fail that rank's store in place or throw a
// RankFailure to kill the rank itself (aborting the run, or — with
// RuntimeOptions::contain_failures — leaving the survivors to shrink and
// continue).
class FaultHook {
 public:
  // Passed as `epoch` by sites that have no checkpoint-epoch context
  // (collectives, fences); schedules match such visits only with
  // epoch-wildcard events.
  static constexpr std::uint64_t kAnyEpoch = ~0ull;

  virtual ~FaultHook() = default;
  // `point` has static storage duration ("coll.pre", "win.fence",
  // "dump.exchange.mid", ...); `sim_now` is the consulting rank's
  // simulated clock.  Called concurrently by all rank threads.
  virtual void at_point(int rank, const char* point, std::uint64_t epoch,
                        double sim_now) = 0;
};

struct RuntimeOptions {
  sim::ClusterConfig cluster = sim::ClusterConfig::shamrock();
  // Optional observability attachment (src/obs).  nullptr (the default)
  // disables all telemetry; the instrumentation then costs one untaken
  // branch per site.  The Telemetry object must outlive the Runtime::run()
  // calls it observes and may span several of them.
  obs::Telemetry* telemetry = nullptr;
  // Optional fault-injection attachment (src/fault).  nullptr (the
  // default) disables every injection point at the cost of one untaken
  // branch.  Must outlive the runs it observes.
  FaultHook* faults = nullptr;
  // Optional runtime-verification attachment (src/check).  nullptr (the
  // default) disables every verification site at the cost of one untaken
  // branch.  Must outlive the runs it observes.
  CheckHook* checker = nullptr;
  // Fail-stop containment: absorb RankFailure throws instead of aborting,
  // so survivors can Comm::shrink() and continue (DESIGN.md §12).  Off by
  // default — without an application prepared to handle RankDeadError,
  // aborting is the honest behavior.
  bool contain_failures = false;
};

namespace detail {

// Membership states of one rank (RunState::member_status).
inline constexpr std::uint8_t kMemberLive = 0;
// Parked inside the shrink rendezvous, waiting for the other survivors.
inline constexpr std::uint8_t kMemberParked = 1;
inline constexpr std::uint8_t kMemberDead = 2;

struct Message {
  std::vector<std::uint8_t> payload;
  double arrival_time = 0.0;
  // Sender-assigned causal id ((src_rank << 32) | per-rank seq); the
  // receiver re-emits it so tools/collprof can pair the kSend/kRecv trace
  // events into a happens-before edge.
  std::uint64_t flow = 0;
};

class Mailbox {
 public:
  void push(int src, int tag, Message msg);
  // Blocks until a message with (src, tag) is available, the run aborts
  // (AbortedError), or the sender provably cannot deliver — it is dead, or
  // it is parked in a shrink rendezvous that revoked the old world
  // (RankDeadError).  `src` is a world rank.
  Message pop(int src, int tag, const RunState& state);
  // Wakes blocked poppers so they re-evaluate abort/membership state.
  void notify_state_change();
  // Drops every queued message (shrink: the old world's in-flight traffic
  // must not leak tag-matched into the new world).
  void drain();

 private:
  using Key = std::uint64_t;
  static Key key(int src, int tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(tag);
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, std::deque<Message>> queues_;
};

struct WindowState {
  explicit WindowState(int nranks, int nnodes)
      : buffers(nranks),
        locks(std::make_unique<std::mutex[]>(static_cast<std::size_t>(nranks))),
        node_inter_sent(nnodes, 0),
        node_inter_recv(nnodes, 0),
        node_intra(nnodes, 0),
        rank_recv(static_cast<std::size_t>(nranks), 0),
        rank_recv_epoch(static_cast<std::size_t>(nranks), 0),
        freed(static_cast<std::size_t>(nranks), 0) {}

  std::vector<std::vector<std::uint8_t>> buffers;  // one region per rank
  std::unique_ptr<std::mutex[]> locks;             // guards buffers[i]

  // Per-epoch accounting for the bulk-synchronous transfer model: the
  // fence charges max over nodes of NIC-in / NIC-out / memory traffic.
  std::mutex acct_mu;
  std::vector<std::uint64_t> node_inter_sent;
  std::vector<std::uint64_t> node_inter_recv;
  std::vector<std::uint64_t> node_intra;
  // Modeled bytes put toward each rank in the open epoch; the fence swaps
  // this into rank_recv_epoch so every rank can read what was delivered to
  // it (Comm::epoch_bytes_recv) without racing next-epoch puts.
  std::vector<std::uint64_t> rank_recv;
  std::vector<std::uint64_t> rank_recv_epoch;
  double last_put_issue = 0.0;
  // Per-rank release flags (world numbering): the window is reclaimed once
  // every rank has either freed it or died.  A shared counter cannot tell
  // "dead rank freed during unwind, then survivors freed" from a double
  // free, so the flags are explicit.
  std::vector<std::uint8_t> freed;
};

}  // namespace detail

// Shared state of one SPMD run; owned by Runtime, referenced by Comms.
class RunState {
 public:
  RunState(int nranks, RuntimeOptions opts);

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] const sim::ClusterConfig& cluster() const noexcept {
    return opts_.cluster;
  }

  detail::Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }
  [[nodiscard]] const std::atomic<bool>& aborted() const noexcept {
    return aborted_;
  }

  void abort() noexcept;

  [[nodiscard]] obs::Telemetry* telemetry() const noexcept {
    return opts_.telemetry;
  }

  [[nodiscard]] FaultHook* faults() const noexcept { return opts_.faults; }

  [[nodiscard]] CheckHook* checker() const noexcept { return opts_.checker; }

  [[nodiscard]] bool contain_failures() const noexcept {
    return opts_.contain_failures;
  }

  // -- membership (failure containment) -------------------------------------
  // detail::kMemberLive / kMemberParked / kMemberDead; `rank` is a world
  // rank.  Lock-free read — exact at collective boundaries, advisory
  // in between (a send racing a fresh death is delivered-then-drained).
  [[nodiscard]] std::uint8_t member_status(int rank) const noexcept {
    return member_[static_cast<std::size_t>(rank)].load();
  }
  // True while a shrink rendezvous is in progress: the old world's
  // communication plan is revoked, so blocked ranks must unwind.
  [[nodiscard]] bool revoked() const noexcept { return revoked_.load(); }
  // Publishes `rank`'s fail-stop death (called on the dying rank's own
  // thread, after its stack unwound).  Completes any rendezvous the death
  // unblocks and wakes every blocked receiver.
  void rank_died(int rank);
  [[nodiscard]] int live_count() const;
  [[nodiscard]] std::uint64_t death_count() const;

  // Clock-aligning rendezvous: every live rank contributes its clock; the
  // completing agent (last arriver, or a rank death that leaves every
  // survivor arrived) maps the maximum through `on_release` (null for a
  // plain barrier) and all ranks return that release time plus the death
  // count observed at release — the failure-agreement input survivors use
  // to detect deaths at collective boundaries.
  struct SyncResult {
    double release = 0.0;
    std::uint64_t deaths = 0;
  };
  SyncResult sync(double my_time,
                  const std::function<double(double)>& on_release = nullptr);

  // The shrink rendezvous behind Comm::shrink(): parks the calling rank,
  // revokes the old world (unblocking stragglers into RankDeadError), and
  // — once every live rank is parked — drains all mailboxes, fixes the
  // agreed dead set, realigns an attached checker, and releases everyone
  // into the shrunken world at a common clock.
  struct ShrinkResult {
    double start = 0.0;    // max clock over parked survivors (latency base)
    double release = 0.0;  // aligned clock after the agreement step
    std::uint64_t deaths = 0;  // total deaths agreed so far
    std::uint64_t epoch = 0;   // 1-based shrink count
    std::uint64_t sync_gen = 0;  // rendezvous generation of the agreement
    std::vector<int> alive;      // surviving world ranks, ascending
  };
  ShrinkResult shrink_rendezvous(int rank, double my_time);

  // Windows.  Creation is collective: every rank registers the same id
  // (ids come from a per-rank counter that advances identically on all
  // ranks because win_create is collective) along with its region size.
  void window_register(int rank, int id, std::size_t bytes);
  detail::WindowState& window(int id);
  void window_free(int rank, int id);

  [[nodiscard]] double barrier_cost() const noexcept;

 private:
  // Both require sync_mu_ held.
  void complete_sync_locked();
  void maybe_complete_shrink_locked();
  void wake_blocked_ranks();
  void reclaim_dead_windows();
  [[nodiscard]] double rendezvous_cost(int participants) const noexcept;

  int nranks_;
  RuntimeOptions opts_;
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};

  // Membership: lock-free status per rank; the counters that must move
  // consistently with rendezvous state are guarded by sync_mu_.
  std::unique_ptr<std::atomic<std::uint8_t>[]> member_;
  std::atomic<bool> revoked_{false};

  mutable std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  int live_count_;        // guarded by sync_mu_
  int parked_count_ = 0;  // guarded by sync_mu_
  std::uint64_t death_count_ = 0;  // guarded by sync_mu_
  int sync_count_ = 0;
  std::uint64_t sync_gen_ = 0;
  double sync_max_ = 0.0;
  double sync_release_ = 0.0;
  std::uint64_t sync_deaths_ = 0;
  // First non-null on_release of the in-progress rendezvous; stays valid
  // because its owner blocks inside sync() until the release.
  const std::function<double(double)>* sync_on_release_ = nullptr;
  // Shrink rendezvous state (guarded by sync_mu_).
  std::uint64_t shrink_gen_ = 0;
  std::uint64_t shrink_epoch_ = 0;
  double shrink_max_ = 0.0;
  ShrinkResult shrink_result_;

  std::mutex win_mu_;
  std::vector<std::unique_ptr<detail::WindowState>> windows_;
};

// Runs `body` as an SPMD program over `nranks` ranks (threads).  If any
// rank throws, the run aborts and the first non-abort exception is
// rethrown from run().  With RuntimeOptions::contain_failures, RankFailure
// throws instead end only the failing rank; the run succeeds if the
// survivors shrink and run to completion.
class Runtime {
 public:
  explicit Runtime(int nranks, RuntimeOptions opts = {});

  void run(const std::function<void(Comm&)>& body);

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] const RuntimeOptions& options() const noexcept { return opts_; }

 private:
  int nranks_;
  RuntimeOptions opts_;
};

}  // namespace collrep::simmpi
