// In-process SPMD message-passing runtime (MPI substitute).
//
// Ranks are threads executing the same body; they exchange tagged messages
// through per-rank mailboxes, synchronize through clock-aligning barriers,
// and expose one-sided windows with MPI-like create/put/fence semantics.
// Every operation charges simulated time on the owning rank's SimClock
// according to the sim::ClusterConfig cost model, so a run yields both real
// results and deterministic simulated phase timings (see DESIGN.md §1).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "simmpi/check_hook.hpp"
#include "simtime/cluster.hpp"

namespace collrep::obs {
class Telemetry;
}  // namespace collrep::obs

namespace collrep::simmpi {

class Comm;

// Thrown inside ranks blocked on communication when a sibling rank failed;
// the originating exception is what Runtime::run() rethrows.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("simmpi: run aborted by peer failure") {}
};

// Fault-injection attachment point (see src/fault for the concrete
// schedule).  The runtime and the dump pipeline consult the hook at named
// injection points — before/after collectives, at window fences, at store
// commits — always on the consulting rank's own thread, so an
// implementation may fail that rank's store in place or throw to kill the
// rank itself (the run then aborts and Runtime::run() rethrows).
class FaultHook {
 public:
  // Passed as `epoch` by sites that have no checkpoint-epoch context
  // (collectives, fences); schedules match such visits only with
  // epoch-wildcard events.
  static constexpr std::uint64_t kAnyEpoch = ~0ull;

  virtual ~FaultHook() = default;
  // `point` has static storage duration ("coll.pre", "win.fence",
  // "dump.exchange.mid", ...); `sim_now` is the consulting rank's
  // simulated clock.  Called concurrently by all rank threads.
  virtual void at_point(int rank, const char* point, std::uint64_t epoch,
                        double sim_now) = 0;
};

struct RuntimeOptions {
  sim::ClusterConfig cluster = sim::ClusterConfig::shamrock();
  // Optional observability attachment (src/obs).  nullptr (the default)
  // disables all telemetry; the instrumentation then costs one untaken
  // branch per site.  The Telemetry object must outlive the Runtime::run()
  // calls it observes and may span several of them.
  obs::Telemetry* telemetry = nullptr;
  // Optional fault-injection attachment (src/fault).  nullptr (the
  // default) disables every injection point at the cost of one untaken
  // branch.  Must outlive the runs it observes.
  FaultHook* faults = nullptr;
  // Optional runtime-verification attachment (src/check).  nullptr (the
  // default) disables every verification site at the cost of one untaken
  // branch.  Must outlive the runs it observes.
  CheckHook* checker = nullptr;
};

namespace detail {

struct Message {
  std::vector<std::uint8_t> payload;
  double arrival_time = 0.0;
  // Sender-assigned causal id ((src_rank << 32) | per-rank seq); the
  // receiver re-emits it so tools/collprof can pair the kSend/kRecv trace
  // events into a happens-before edge.
  std::uint64_t flow = 0;
};

class Mailbox {
 public:
  void push(int src, int tag, Message msg);
  // Blocks until a message with (src, tag) is available or the run aborts.
  Message pop(int src, int tag, const std::atomic<bool>& aborted);
  void notify_abort();

 private:
  using Key = std::uint64_t;
  static Key key(int src, int tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(tag);
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, std::deque<Message>> queues_;
};

struct WindowState {
  explicit WindowState(int nranks, int nnodes)
      : buffers(nranks),
        locks(std::make_unique<std::mutex[]>(static_cast<std::size_t>(nranks))),
        node_inter_sent(nnodes, 0),
        node_inter_recv(nnodes, 0),
        node_intra(nnodes, 0),
        rank_recv(static_cast<std::size_t>(nranks), 0),
        rank_recv_epoch(static_cast<std::size_t>(nranks), 0) {}

  std::vector<std::vector<std::uint8_t>> buffers;  // one region per rank
  std::unique_ptr<std::mutex[]> locks;             // guards buffers[i]

  // Per-epoch accounting for the bulk-synchronous transfer model: the
  // fence charges max over nodes of NIC-in / NIC-out / memory traffic.
  std::mutex acct_mu;
  std::vector<std::uint64_t> node_inter_sent;
  std::vector<std::uint64_t> node_inter_recv;
  std::vector<std::uint64_t> node_intra;
  // Modeled bytes put toward each rank in the open epoch; the fence swaps
  // this into rank_recv_epoch so every rank can read what was delivered to
  // it (Comm::epoch_bytes_recv) without racing next-epoch puts.
  std::vector<std::uint64_t> rank_recv;
  std::vector<std::uint64_t> rank_recv_epoch;
  double last_put_issue = 0.0;
  int free_count = 0;
};

}  // namespace detail

// Shared state of one SPMD run; owned by Runtime, referenced by Comms.
class RunState {
 public:
  RunState(int nranks, RuntimeOptions opts);

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] const sim::ClusterConfig& cluster() const noexcept {
    return opts_.cluster;
  }

  detail::Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }
  [[nodiscard]] const std::atomic<bool>& aborted() const noexcept {
    return aborted_;
  }

  void abort() noexcept;

  [[nodiscard]] obs::Telemetry* telemetry() const noexcept {
    return opts_.telemetry;
  }

  [[nodiscard]] FaultHook* faults() const noexcept { return opts_.faults; }

  [[nodiscard]] CheckHook* checker() const noexcept { return opts_.checker; }

  // Clock-aligning rendezvous: every rank contributes its clock; the last
  // arriving rank maps the maximum through `on_release` (may be null for a
  // plain barrier) and all ranks return that release time.
  double sync(double my_time,
              const std::function<double(double)>& on_release = nullptr);

  // Windows.  Creation is collective: every rank registers the same id
  // (ids come from a per-rank counter that advances identically on all
  // ranks because win_create is collective) along with its region size.
  void window_register(int rank, int id, std::size_t bytes);
  detail::WindowState& window(int id);
  void window_free(int id);

  [[nodiscard]] double barrier_cost() const noexcept;

 private:
  int nranks_;
  RuntimeOptions opts_;
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};

  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  int sync_count_ = 0;
  std::uint64_t sync_gen_ = 0;
  double sync_max_ = 0.0;
  double sync_release_ = 0.0;

  std::mutex win_mu_;
  std::vector<std::unique_ptr<detail::WindowState>> windows_;
};

// Runs `body` as an SPMD program over `nranks` ranks (threads).  If any
// rank throws, the run aborts and the first non-abort exception is
// rethrown from run().
class Runtime {
 public:
  explicit Runtime(int nranks, RuntimeOptions opts = {});

  void run(const std::function<void(Comm&)>& body);

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] const RuntimeOptions& options() const noexcept { return opts_; }

 private:
  int nranks_;
  RuntimeOptions opts_;
};

}  // namespace collrep::simmpi
