// Byte-oriented serialization used by the typed collectives.
//
// The paper's prototype relies on Boost.MPI's automatic serialization of
// data structures; this archive pair provides the same capability for the
// in-process runtime: trivially copyable types are written raw, standard
// containers recurse, and user types opt in via ADL-discovered
//   void save(OArchive&, const T&);
//   void load(IArchive&, T&);
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace collrep::simmpi {

class OArchive;
class IArchive;

namespace detail {

template <class T>
concept AdlSavable = requires(OArchive& ar, const T& v) { save(ar, v); };
template <class T>
concept AdlLoadable = requires(IArchive& ar, T& v) { load(ar, v); };

template <class T>
struct is_std_vector : std::false_type {};
template <class T, class A>
struct is_std_vector<std::vector<T, A>> : std::true_type {};

template <class T>
struct is_std_pair : std::false_type {};
template <class A, class B>
struct is_std_pair<std::pair<A, B>> : std::true_type {};

template <class T>
struct is_map_like : std::false_type {};
template <class K, class V, class C, class A>
struct is_map_like<std::map<K, V, C, A>> : std::true_type {};
template <class K, class V, class H, class E, class A>
struct is_map_like<std::unordered_map<K, V, H, E, A>> : std::true_type {};

}  // namespace detail

class OArchive {
 public:
  void write_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  template <class T>
  void put(const T& value) {
    if constexpr (detail::AdlSavable<T>) {
      save(*this, value);
    } else if constexpr (detail::is_std_vector<T>::value) {
      put_size(value.size());
      if constexpr (std::is_trivially_copyable_v<typename T::value_type>) {
        write_raw(value.data(), value.size() * sizeof(typename T::value_type));
      } else {
        for (const auto& e : value) put(e);
      }
    } else if constexpr (std::is_same_v<T, std::string>) {
      put_size(value.size());
      write_raw(value.data(), value.size());
    } else if constexpr (detail::is_std_pair<T>::value) {
      put(value.first);
      put(value.second);
    } else if constexpr (detail::is_map_like<T>::value) {
      put_size(value.size());
      for (const auto& [k, v] : value) {
        put(k);
        put(v);
      }
    } else {
      static_assert(std::is_trivially_copyable_v<T>,
                    "type needs an ADL save()/load() pair");
      write_raw(&value, sizeof value);
    }
  }

  void put_size(std::size_t n) {
    const auto v = static_cast<std::uint64_t>(n);
    write_raw(&v, sizeof v);
  }

  // LEB128 unsigned varint: 1 byte for values < 128, <= 10 bytes total.
  // The multi-byte encoding batches into a stack buffer and lands in one
  // append instead of one push_back (capacity check + size bump) per
  // byte — varint-heavy streams like the fingerprint-set entry encoding
  // are measurably faster for it.
  void put_varint(std::uint64_t v) {
    if (v < 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v));
      return;
    }
    std::uint8_t tmp[10];
    std::size_t n = 0;
    while (v >= 0x80) {
      tmp[n++] = static_cast<std::uint8_t>(v) | 0x80u;
      v >>= 7;
    }
    tmp[n++] = static_cast<std::uint8_t>(v);
    buf_.insert(buf_.end(), tmp, tmp + n);
  }

  // Grows the buffer capacity by `n` upcoming bytes; callers that know the
  // payload size (e.g. entry counts) avoid repeated reallocation.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class IArchive {
 public:
  explicit IArchive(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  void read_raw(void* out, std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw std::runtime_error("IArchive: read past end of buffer");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  template <class T>
  void get(T& value) {
    if constexpr (detail::AdlLoadable<T>) {
      load(*this, value);
    } else if constexpr (detail::is_std_vector<T>::value) {
      const std::size_t n = get_size();
      value.clear();
      if constexpr (std::is_trivially_copyable_v<typename T::value_type>) {
        value.resize(n);
        read_raw(value.data(), n * sizeof(typename T::value_type));
      } else {
        value.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          typename T::value_type e;
          get(e);
          value.push_back(std::move(e));
        }
      }
    } else if constexpr (std::is_same_v<T, std::string>) {
      const std::size_t n = get_size();
      value.resize(n);
      read_raw(value.data(), n);
    } else if constexpr (detail::is_std_pair<T>::value) {
      get(value.first);
      get(value.second);
    } else if constexpr (detail::is_map_like<T>::value) {
      const std::size_t n = get_size();
      value.clear();
      for (std::size_t i = 0; i < n; ++i) {
        typename T::key_type k;
        typename T::mapped_type v;
        get(k);
        get(v);
        value.emplace(std::move(k), std::move(v));
      }
    } else {
      static_assert(std::is_trivially_copyable_v<T>,
                    "type needs an ADL save()/load() pair");
      read_raw(&value, sizeof value);
    }
  }

  template <class T>
  [[nodiscard]] T get() {
    T value;
    get(value);
    return value;
  }

  [[nodiscard]] std::size_t get_size() {
    std::uint64_t v = 0;
    read_raw(&v, sizeof v);
    return static_cast<std::size_t>(v);
  }

  [[nodiscard]] std::uint64_t get_varint() {
    // Single-byte fast path: the common case for freq / rank-delta
    // streams, where values are almost always < 128.
    if (pos_ < data_.size() && data_[pos_] < 0x80u) {
      return data_[pos_++];
    }
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) {
        throw std::runtime_error("IArchive: varint past end of buffer");
      }
      const std::uint8_t b = data_[pos_++];
      if (shift == 63 && b > 1) {
        throw std::runtime_error("IArchive: varint overflows 64 bits");
      }
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) return v;
    }
    throw std::runtime_error("IArchive: varint overflows 64 bits");
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

template <class T>
[[nodiscard]] std::vector<std::uint8_t> to_bytes(const T& value) {
  OArchive ar;
  ar.put(value);
  return ar.take();
}

template <class T>
[[nodiscard]] T from_bytes(std::span<const std::uint8_t> data) {
  IArchive ar(data);
  return ar.get<T>();
}

}  // namespace collrep::simmpi
