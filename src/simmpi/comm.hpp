// Comm: the per-rank communication endpoint (MPI communicator analogue).
//
// Point-to-point operations are tagged and FIFO-ordered per (source, tag).
// Sends are buffered (never block); receives block until a matching message
// arrives.  Typed variants serialize through simmpi::OArchive/IArchive the
// way Boost.MPI serializes user data structures in the paper's prototype.
//
// With failure containment (RuntimeOptions::contain_failures) a Comm is a
// *view* over the surviving world: rank()/size() are dense over the current
// group, peers named in send/recv/put are dense group ranks, and shrink()
// — called by every survivor after catching RankDeadError — agrees on the
// dead set and re-ranks the group densely (ULFM MPI_Comm_shrink analogue).
// world_rank() stays the original numbering; stores, node topology, and
// telemetry stay world-keyed across shrinks.
#pragma once

#include <cstdint>
#include <source_location>
#include <span>
#include <vector>

#include "obs/telemetry.hpp"
#include "simmpi/check_hook.hpp"
#include "simmpi/archive.hpp"
#include "simmpi/runtime.hpp"
#include "simtime/cluster.hpp"

namespace collrep::simmpi {

class Window;

class Comm {
 public:
  Comm(RunState& state, int rank)
      : state_(&state),
        rank_(rank),
        obs_(state.telemetry() ? &state.telemetry()->rank(rank) : nullptr),
        check_(state.checker()),
        crank_(rank) {
    group_.resize(static_cast<std::size_t>(state.nranks()));
    for (int r = 0; r < state.nranks(); ++r) {
      group_[static_cast<std::size_t>(r)] = r;
    }
  }

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  // Dense rank in the current (possibly shrunken) group.
  [[nodiscard]] int rank() const noexcept { return crank_; }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(group_.size());
  }
  // Original world numbering; never changes across shrinks.  Equal to
  // rank() until the first shrink.
  [[nodiscard]] int world_rank() const noexcept { return rank_; }
  [[nodiscard]] int world_size() const noexcept { return state_->nranks(); }
  // World rank of the dense group rank `r`.
  [[nodiscard]] int world_of(int r) const {
    return group_.at(static_cast<std::size_t>(r));
  }
  [[nodiscard]] const sim::ClusterConfig& cluster() const noexcept {
    return state_->cluster();
  }
  [[nodiscard]] int node() const noexcept {
    return cluster().node_of(rank_);
  }

  [[nodiscard]] sim::SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] const sim::SimClock& clock() const noexcept { return clock_; }

  // This rank's telemetry slice, or nullptr when the run has no
  // obs::Telemetry attached (RuntimeOptions::telemetry).
  [[nodiscard]] obs::RankTelemetry* obs() const noexcept { return obs_; }
  // Charge local compute time to this rank.
  void charge(double seconds) noexcept { clock_.advance(seconds); }

  // Consult the attached fault schedule (RuntimeOptions::faults) at a
  // named injection point; no-op without one.  The hook may fail this
  // rank's store in place or throw to kill the rank.
  void fault_point(const char* point,
                   std::uint64_t epoch = FaultHook::kAnyEpoch) {
    if (auto* f = state_->faults()) {
      f->at_point(rank_, point, epoch, clock_.now());
    }
  }

  // Runtime-verification hooks (RuntimeOptions::checker); each is a
  // single untaken branch when no checker is attached.  check_collective
  // may throw on this rank when the checker decides the fingerprint
  // diverges from its peers'.
  void check_collective(const CollFingerprint& fp,
                        const std::source_location& loc) {
    if (check_) check_->on_collective(rank_, fp, CallSite::from(loc));
  }
  void check_collective_done() noexcept {
    if (check_) check_->on_collective_done(rank_);
  }

  // -- point to point -------------------------------------------------------
  void send_bytes(int dst, int tag, std::span<const std::uint8_t> data);
  [[nodiscard]] std::vector<std::uint8_t> recv_bytes(int src, int tag);

  template <class T>
  void send_value(int dst, int tag, const T& value) {
    OArchive ar;
    ar.put(value);
    send_bytes(dst, tag, ar.bytes());
  }

  template <class T>
  [[nodiscard]] T recv_value(int src, int tag) {
    const auto bytes = recv_bytes(src, tag);
    IArchive ar(bytes);
    return ar.get<T>();
  }

  // -- synchronization ------------------------------------------------------
  void barrier(std::source_location loc = std::source_location::current());

  // -- failure handling -----------------------------------------------------
  // What one shrink agreed on; returned identically on every survivor.
  struct ShrinkInfo {
    std::uint64_t epoch = 0;        // 1-based shrink count of this run
    double agreement_start_s = 0.0;  // max survivor clock entering agreement
    // Surviving world ranks, ascending == the new dense group (index =
    // new dense rank, value = world rank).
    std::vector<int> alive_world;
    // The group as it was before this shrink (index = previous dense rank,
    // value = world rank) — the key map for data that was placed under the
    // previous numbering (e.g. ChunkStore manifests).
    std::vector<int> prev_group_world;
    struct Dead {
      int prev_rank = -1;   // dense rank in the previous group
      int world_rank = -1;  // original world rank
    };
    std::vector<Dead> dead;  // ascending by prev_rank
  };

  // True once this rank has observed a peer death (a collective threw
  // RankDeadError, or a receive failed); every collective entry re-throws
  // until shrink() is called.
  [[nodiscard]] bool failure_pending() const noexcept { return fail_pending_; }

  // The ULFM-style recovery collective: every survivor must call it after
  // catching RankDeadError.  Parks this rank, revokes the old world's
  // pending communication (unblocking stragglers into RankDeadError of
  // their own), agrees on the dead set, drains in-flight messages, and
  // returns with the group densely re-ranked over the survivors.  Safe to
  // call proactively (no death pending): it then degrades to an
  // agreement-priced barrier with an empty dead list.
  ShrinkInfo shrink();

  // -- one-sided windows ----------------------------------------------------
  // Collective: every rank exposes `local_bytes` of zero-initialized memory.
  // Opens the window's first access epoch (see Window::fence).
  [[nodiscard]] Window win_create(
      std::size_t local_bytes,
      std::source_location loc = std::source_location::current());

  // Modeled bytes this rank has put through windows in the epoch that is
  // currently open (for DumpStats); reset to 0 by every fence.
  [[nodiscard]] std::uint64_t epoch_bytes_put() const noexcept {
    return epoch_bytes_put_;
  }

  // Modeled bytes that were delivered *into this rank's* window regions
  // during the most recently completed epoch.  Counted at fence delivery
  // (puts are not visible before the fence), so it reads 0 until the first
  // fence and is overwritten by each subsequent one.
  [[nodiscard]] std::uint64_t epoch_bytes_recv() const noexcept {
    return epoch_bytes_recv_;
  }

 private:
  friend class Window;

  // Collective entry gate: a death observed once must not be lost to an
  // exception swallowed in a destructor (Window::release), so it re-arms
  // every collective until shrink() clears it.
  void raise_pending_failure() const {
    if (fail_pending_) throw RankDeadError{};
  }

  RunState* state_;
  int rank_;  // world rank (thread identity, mailbox/store/topology key)
  obs::RankTelemetry* obs_ = nullptr;
  CheckHook* check_ = nullptr;
  sim::SimClock clock_;
  std::uint64_t epoch_bytes_put_ = 0;
  std::uint64_t epoch_bytes_recv_ = 0;
  int next_win_id_ = 0;  // advances identically on all ranks (collective)
  std::uint64_t flow_seq_ = 0;  // per-rank send counter -> Message::flow ids
  // Rendezvous generation.  barrier() and Window::fence() are the only
  // operations that enter RunState::sync, and both are collective, so this
  // counter advances identically on all ranks; collprof uses it to group
  // each rank's kSyncBegin/kSyncEnd pair into one cross-rank rendezvous.
  // Survivors can diverge transiently while a failure unwinds (some threw
  // at entry, some from inside sync); shrink() realigns every survivor to
  // the generation after the agreement step.
  std::uint64_t sync_seq_ = 0;
  // Current dense group: index = dense rank, value = world rank.
  std::vector<int> group_;
  int crank_;  // this rank's dense position in group_
  bool fail_pending_ = false;
  // Death count already absorbed by a shrink; a SyncResult reporting more
  // means an unagreed death happened.
  std::uint64_t known_deaths_ = 0;
};

// RAII handle to one collective window.  Movable, not copyable; must be
// freed (collectively) via free() or destruction on all ranks.
class Window {
 public:
  Window() = default;
  Window(Comm& comm, int id) : comm_(&comm), id_(id) {}
  Window(Window&& o) noexcept { swap(o); }
  Window& operator=(Window&& o) noexcept {
    if (this != &o) {
      release();
      swap(o);
    }
    return *this;
  }
  ~Window() { release(); }

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  [[nodiscard]] bool valid() const noexcept { return comm_ != nullptr; }

  // One-sided put of `data` into `target`'s region at byte `offset`.
  // Callers are responsible for disjoint offsets (guaranteed by CALC_OFF;
  // an attached checker flags overlapping ranges from different ranks).
  // `modeled_bytes` overrides the wire size charged to the cost model —
  // metadata-only exchanges copy small records but must still pay for the
  // payload bytes they stand in for.  0 means "use data.size()".
  void put(int target, std::size_t offset, std::span<const std::uint8_t> data,
           std::uint64_t modeled_bytes = 0,
           std::source_location loc = std::source_location::current());

  // This rank's exposed region.
  [[nodiscard]] std::span<std::uint8_t> local();
  [[nodiscard]] std::span<const std::uint8_t> local() const;

  // Collective: completes the access epoch.  All puts issued before the
  // fence are visible in target regions after it; simulated clocks advance
  // by the bulk-transfer time of the epoch (max over node NICs).  By
  // default the next access epoch opens immediately; kFenceNoSucceed
  // (the MPI_MODE_NOSUCCEED analogue) declares that no RMA follows, so an
  // attached checker flags any later put as an epoch violation.
  void fence(unsigned flags = 0,
             std::source_location loc = std::source_location::current());

  // Collective: releases the window on all ranks.
  void free() { release(); }

 private:
  void release();
  void swap(Window& o) noexcept {
    std::swap(comm_, o.comm_);
    std::swap(id_, o.id_);
  }

  Comm* comm_ = nullptr;
  int id_ = -1;
};

}  // namespace collrep::simmpi
