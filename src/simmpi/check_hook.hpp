// CheckHook: the runtime-verification attachment point of simmpi.
//
// Like FaultHook (fault injection) and obs::Telemetry (observability),
// the checker is an optional pointer in RuntimeOptions: nullptr — the
// default — disables every verification site at the cost of one untaken
// branch.  The concrete implementation lives in src/check; simmpi only
// defines the interface so the dependency keeps pointing outward
// (check -> simmpi, never the reverse).
//
// The runtime reports, per rank thread:
//   - every collective entry (with an operation fingerprint + call site)
//     and exit — the checker cross-checks fingerprints across ranks and
//     may throw on the first divergent rank;
//   - every point-to-point send/recv (for finalize-time leak detection);
//   - every window create / put / fence / free (for access-epoch
//     discipline and overlapping-put detection).
// run_begin/run_end bracket one Runtime::run(); run_end returns the
// error the run should fail with, if any (e.g. a stuck-rank report or a
// message leak), so the checker can fail runs whose rank threads only
// ever saw secondary AbortedErrors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <source_location>
#include <vector>

namespace collrep::simmpi {

// Every operation simmpi executes collectively, generated from the shared
// registry (obs/collectives.def).  The typed collectives come first and
// mirror obs::CollectiveKind (same declaration order) so the two enums
// convert by index; the remainder are the comm-layer collectives that obs
// counts separately (barriers, window epochs).
enum class CollOp : std::uint8_t {
#define COLLREP_COLLECTIVE_OBS(Name, str) k##Name,
#define COLLREP_COLLECTIVE_COMM(Name, str) k##Name,
#include "obs/collectives.def"
};

inline constexpr std::size_t kCollOpCount = 0
#define COLLREP_COLLECTIVE_OBS(Name, str) +1
#define COLLREP_COLLECTIVE_COMM(Name, str) +1
#include "obs/collectives.def"
    ;

[[nodiscard]] constexpr const char* to_string(CollOp op) noexcept {
  switch (op) {
#define COLLREP_COLLECTIVE_OBS(Name, str) \
  case CollOp::k##Name:                   \
    return str;
#define COLLREP_COLLECTIVE_COMM(Name, str) \
  case CollOp::k##Name:                    \
    return str;
#include "obs/collectives.def"
  }
  return "unknown";
}

// Program location of a verification site.  The pointers come from
// std::source_location and have static storage duration, so a CallSite is
// trivially copyable and never dangles.
struct CallSite {
  const char* file = "";
  std::uint_least32_t line = 0;
  const char* function = "";

  [[nodiscard]] static CallSite from(const std::source_location& loc) noexcept {
    return CallSite{loc.file_name(), loc.line(), loc.function_name()};
  }
};

// Fingerprint of one collective invocation as seen by one rank.  Two
// ranks executing the same SPMD program present identical fingerprints
// for the same per-rank collective sequence number; any field that
// differs is a semantic bug the messaging layer would turn into a hang
// or silent corruption.
struct CollFingerprint {
  CollOp op = CollOp::kBarrier;
  // Root rank of rooted collectives; -1 for rootless ones (barrier,
  // allreduce, allgather).  Window collectives carry the window id here
  // so epochs on different windows cannot be confused.
  int root = -1;
  // typeid(T).hash_code() of the payload type; 0 for untyped sites.
  std::uint64_t type_hash = 0;
  // Fence flags (kFenceNoSucceed) for kWinFence; 0 elsewhere.  Ranks
  // disagreeing on whether a fence closes the access epoch is a bug.
  unsigned flags = 0;

  [[nodiscard]] bool operator==(const CollFingerprint&) const = default;
};

// Fence assertion flags (the MPI_Win_fence assert analogue).
// kFenceNoSucceed declares that no RMA follows this fence on this
// window: the access epoch closes, and a later put (before the next
// plain fence reopens it) is an epoch violation.
inline constexpr unsigned kFenceNoSucceed = 1u;

class CheckHook {
 public:
  virtual ~CheckHook() = default;

  // Host thread, before rank threads start.  `abort_run` force-aborts
  // the in-flight run (unblocking every blocked rank); it must not be
  // invoked after run_end returns.
  virtual void run_begin(int nranks, std::function<void()> abort_run) = 0;

  // Host thread, after every rank thread joined.  `aborted` tells the
  // checker the run died early (leftover messages are then expected,
  // not leaks).  A non-null return is the exception the run fails with
  // when no rank recorded a primary error of its own.
  virtual std::exception_ptr run_end(bool aborted) = 0;

  // Collective entry on the calling rank's thread.  May throw to kill
  // the rank (the run then aborts and Runtime::run rethrows).
  virtual void on_collective(int rank, const CollFingerprint& fp,
                             CallSite site) = 0;
  // Matching exit; called from scope destructors, must not throw.
  virtual void on_collective_done(int rank) noexcept = 0;

  // Point-to-point accounting.  on_send runs before the message is
  // enqueued and on_recv after it is dequeued, so the send of a message
  // is always observed before its receive.
  virtual void on_send(int rank, int dst, int tag, std::size_t bytes) = 0;
  virtual void on_recv(int rank, int src, int tag, std::size_t bytes) = 0;

  // One-sided windows.  on_put may throw (epoch violation / overlap in
  // abort mode); the others are bookkeeping.
  virtual void on_win_create(int rank, int win, std::size_t bytes) = 0;
  virtual void on_put(int rank, int win, int target, std::size_t offset,
                      std::size_t bytes, CallSite site) = 0;
  virtual void on_fence(int rank, int win, unsigned flags) = 0;
  virtual void on_win_free(int rank, int win) = 0;

  // -- failure containment (RuntimeOptions::contain_failures) ---------------
  // `rank` (world numbering) died of an injected fail-stop failure; called
  // once, on the dying rank's own thread, before its death is published to
  // the runtime.  The rank makes no further progress: the checker must
  // deregister it from the heartbeat/stuck accounting so survivors are not
  // reported as waiting on a corpse.
  virtual void on_rank_dead(int rank) { (void)rank; }
  // The failure-agreement step of Comm::shrink() completed: `alive_world`
  // holds the surviving world ranks (ascending).  Called exactly once per
  // shrink, on the last parking rank's thread while every other survivor is
  // still parked in the rendezvous — the checker may rebuild cross-rank
  // state (collective sequence alignment, in-flight channels) exclusively.
  virtual void on_shrink(const std::vector<int>& alive_world) {
    (void)alive_world;
  }
};

}  // namespace collrep::simmpi
