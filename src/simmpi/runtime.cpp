#include "simmpi/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "obs/telemetry.hpp"
#include "simmpi/comm.hpp"

namespace collrep::simmpi {

namespace detail {

void Mailbox::push(int src, int tag, Message msg) {
  {
    std::scoped_lock lk(mu_);
    queues_[key(src, tag)].push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop(int src, int tag, const RunState& state) {
  std::unique_lock lk(mu_);
  const Key k = key(src, tag);
  // The mailbox wait IS the thread-backed scheduler's parking
  // primitive; the fiber port replaces this whole path with a
  // yield-to-scheduler.  collcheck: fiber-safe
  cv_.wait(lk, [&] {
    const auto it = queues_.find(k);
    if (it != queues_.end() && !it->second.empty()) return true;
    if (state.aborted().load()) return true;
    // The sender provably cannot deliver anymore: it died, or it is parked
    // in a shrink rendezvous that revoked the old world's communication
    // plan.  A merely-parked sender with no revoke in flight cannot happen
    // (parking sets the revoke first), and a live sender may still deliver
    // even while a revoke is pending — so keep waiting for it.
    const std::uint8_t st = state.member_status(src);
    return st == kMemberDead || (st == kMemberParked && state.revoked());
  });
  const auto it = queues_.find(k);
  if (it != queues_.end() && !it->second.empty()) {
    Message msg = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queues_.erase(it);
    return msg;
  }
  if (state.aborted().load()) throw AbortedError{};
  throw RankDeadError{};
}

void Mailbox::notify_state_change() { cv_.notify_all(); }

void Mailbox::drain() {
  std::scoped_lock lk(mu_);
  queues_.clear();
}

}  // namespace detail

RunState::RunState(int nranks, RuntimeOptions opts)
    : nranks_(nranks), opts_(std::move(opts)), live_count_(nranks) {
  if (nranks < 1) throw std::invalid_argument("simmpi: nranks must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<detail::Mailbox>());
  }
  member_ = std::make_unique<std::atomic<std::uint8_t>[]>(
      static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    member_[static_cast<std::size_t>(i)].store(detail::kMemberLive);
  }
  if (opts_.telemetry) opts_.telemetry->begin_run(nranks);
}

void RunState::abort() noexcept {
  aborted_.store(true);
  wake_blocked_ranks();
}

void RunState::wake_blocked_ranks() {
  for (auto& mb : mailboxes_) mb->notify_state_change();
  sync_cv_.notify_all();
}

double RunState::rendezvous_cost(int participants) const noexcept {
  if (participants <= 1) return 0.0;
  const double rounds =
      std::ceil(std::log2(static_cast<double>(participants)));
  return 2.0 * rounds * opts_.cluster.net_latency_s;
}

double RunState::barrier_cost() const noexcept {
  return rendezvous_cost(nranks_);
}

int RunState::live_count() const {
  std::scoped_lock lk(sync_mu_);
  return live_count_;
}

std::uint64_t RunState::death_count() const {
  std::scoped_lock lk(sync_mu_);
  return death_count_;
}

void RunState::complete_sync_locked() {
  const double max_time = sync_max_;
  sync_release_ = sync_on_release_ ? (*sync_on_release_)(max_time)
                                   : max_time + rendezvous_cost(live_count_);
  sync_deaths_ = death_count_;
  sync_count_ = 0;
  sync_max_ = 0.0;
  sync_on_release_ = nullptr;
  ++sync_gen_;
  sync_cv_.notify_all();
}

RunState::SyncResult RunState::sync(
    double my_time, const std::function<double(double)>& on_release) {
  std::unique_lock lk(sync_mu_);
  if (aborted_.load()) throw AbortedError{};
  // Once a shrink revoked the old world, no rendezvous of that world can
  // complete (the parked ranks will never arrive) — unwind immediately.
  if (revoked_.load()) throw RankDeadError{};
  const std::uint64_t gen = sync_gen_;
  sync_max_ = std::max(sync_max_, my_time);
  if (on_release && !sync_on_release_) {
    // All ranks pass the same semantic closure for the same collective
    // (SPMD); keep the first so a completion-by-death (whose agent has no
    // closure of its own) can still compute the release time.  The owner
    // stays blocked in this rendezvous until release, so the pointer
    // cannot dangle.
    sync_on_release_ = &on_release;
  }
  if (++sync_count_ == live_count_) {
    complete_sync_locked();
    return SyncResult{sync_release_, sync_deaths_};
  }
  // Scheduler-internal barrier parking (replaced wholesale by the
  // fiber port).  collcheck: fiber-safe
  sync_cv_.wait(lk, [&] {
    return sync_gen_ != gen || aborted_.load() || revoked_.load();
  });
  if (sync_gen_ != gen) return SyncResult{sync_release_, sync_deaths_};
  // Woken without a release: the run aborted, or a shrink revoked this
  // rendezvous.  Withdraw our contribution (the last one out clears the
  // accumulator so a post-shrink rendezvous starts clean) and unwind.
  if (--sync_count_ == 0) {
    sync_max_ = 0.0;
    sync_on_release_ = nullptr;
  }
  if (aborted_.load()) throw AbortedError{};
  throw RankDeadError{};
}

void RunState::rank_died(int rank) {
  {
    std::scoped_lock lk(sync_mu_);
    member_[static_cast<std::size_t>(rank)].store(detail::kMemberDead);
    --live_count_;
    ++death_count_;
    if (live_count_ > 0) {
      if (!revoked_.load() && sync_count_ > 0 && sync_count_ == live_count_) {
        // Every survivor is already waiting in a rendezvous this death
        // leaves complete; release them (they learn of the death from
        // SyncResult::deaths at the release).
        complete_sync_locked();
      } else {
        // The death may be the last event a pending shrink was waiting on.
        maybe_complete_shrink_locked();
      }
    }
  }
  wake_blocked_ranks();
  reclaim_dead_windows();
}

RunState::ShrinkResult RunState::shrink_rendezvous(int rank, double my_time) {
  std::unique_lock lk(sync_mu_);
  if (aborted_.load()) throw AbortedError{};
  member_[static_cast<std::size_t>(rank)].store(detail::kMemberParked);
  ++parked_count_;
  shrink_max_ = std::max(shrink_max_, my_time);
  const std::uint64_t gen = shrink_gen_;
  const bool first_parker = !revoked_.load();
  if (first_parker) revoked_.store(true);
  if (first_parker || parked_count_ == live_count_) {
    // Wake stragglers blocked in sync()/pop() so they observe the revoke
    // (first parker), and re-check completion once we ourselves parked.
    lk.unlock();
    wake_blocked_ranks();
    lk.lock();
    maybe_complete_shrink_locked();
  }
  // Scheduler-internal shrink parking (see above).  collcheck: fiber-safe
  sync_cv_.wait(lk, [&] { return shrink_gen_ != gen || aborted_.load(); });
  if (shrink_gen_ == gen) throw AbortedError{};
  return shrink_result_;
}

void RunState::maybe_complete_shrink_locked() {
  if (!revoked_.load()) return;
  if (live_count_ <= 0 || parked_count_ != live_count_) return;
  // Failure agreement: every survivor is parked (so no rank of the old
  // world can make progress) and every death is published.  The completing
  // thread — the last parker, or a dying rank whose death left everyone
  // else parked — has exclusive access to all shared state.
  for (auto& mb : mailboxes_) mb->drain();
  ShrinkResult res;
  res.start = shrink_max_;
  res.deaths = death_count_;
  res.epoch = ++shrink_epoch_;
  res.alive.reserve(static_cast<std::size_t>(live_count_));
  for (int r = 0; r < nranks_; ++r) {
    if (member_[static_cast<std::size_t>(r)].load() != detail::kMemberDead) {
      res.alive.push_back(r);
    }
  }
  // Cost of the agreement protocol itself: an allreduce-shaped vote over
  // the survivors (two log-depth sweeps), charged even for a lone survivor
  // (it still has to time out on its dead peers).
  const double participants = std::max(2.0, static_cast<double>(live_count_));
  res.release = res.start + 2.0 * std::ceil(std::log2(participants)) *
                                opts_.cluster.net_latency_s;
  if (opts_.checker) opts_.checker->on_shrink(res.alive);
  for (int r : res.alive) {
    member_[static_cast<std::size_t>(r)].store(detail::kMemberLive);
  }
  parked_count_ = 0;
  shrink_max_ = 0.0;
  // Burn one rendezvous generation on the agreement so collprof's
  // kSyncBegin/End pairing cannot collide with the next barrier.  No sync
  // waiter exists at this point (a waiter would not be parked), so
  // advancing the generation wakes nobody spuriously.
  res.sync_gen = sync_gen_++;
  shrink_result_ = std::move(res);
  revoked_.store(false);
  ++shrink_gen_;
  sync_cv_.notify_all();
}

void RunState::window_register(int rank, int id, std::size_t bytes) {
  std::scoped_lock lk(win_mu_);
  if (static_cast<std::size_t>(id) >= windows_.size()) {
    windows_.resize(static_cast<std::size_t>(id) + 1);
  }
  auto& slot = windows_[static_cast<std::size_t>(id)];
  if (!slot) {
    slot = std::make_unique<detail::WindowState>(
        nranks_, opts_.cluster.node_count(nranks_));
  }
  slot->buffers[static_cast<std::size_t>(rank)].assign(bytes, 0);
}

detail::WindowState& RunState::window(int id) {
  std::scoped_lock lk(win_mu_);
  auto& ws = windows_.at(static_cast<std::size_t>(id));
  if (!ws) throw std::logic_error("simmpi: window already freed");
  return *ws;
}

void RunState::window_free(int rank, int id) {
  std::scoped_lock lk(win_mu_);
  auto& ws = windows_.at(static_cast<std::size_t>(id));
  if (!ws) throw std::logic_error("simmpi: double free of window");
  auto& flag = ws->freed[static_cast<std::size_t>(rank)];
  if (flag) throw std::logic_error("simmpi: double free of window");
  flag = 1;
  for (int r = 0; r < nranks_; ++r) {
    if (!ws->freed[static_cast<std::size_t>(r)] &&
        member_status(r) != detail::kMemberDead) {
      return;
    }
  }
  ws.reset();  // every rank released (or died); reclaim memory, keep the slot
}

void RunState::reclaim_dead_windows() {
  // A rank dying after every survivor already freed a window would leave it
  // unreclaimed forever (nobody frees again); sweep on each death.
  std::scoped_lock lk(win_mu_);
  for (auto& ws : windows_) {
    if (!ws) continue;
    bool reclaim = true;
    for (int r = 0; r < nranks_; ++r) {
      if (!ws->freed[static_cast<std::size_t>(r)] &&
          member_status(r) != detail::kMemberDead) {
        reclaim = false;
        break;
      }
    }
    if (reclaim) ws.reset();
  }
}

Runtime::Runtime(int nranks, RuntimeOptions opts)
    : nranks_(nranks), opts_(std::move(opts)) {
  if (nranks < 1) throw std::invalid_argument("simmpi: nranks must be >= 1");
}

void Runtime::run(const std::function<void(Comm&)>& body) {
  RunState state(nranks_, opts_);

  std::mutex err_mu;
  std::exception_ptr first_error;
  auto record_primary = [&] {
    {
      std::scoped_lock lk(err_mu);
      if (!first_error) first_error = std::current_exception();
    }
    state.abort();
  };

  if (opts_.checker) {
    // The abort callback references `state`, which outlives the checker's
    // use of it: run_end() below stops the checker's watchdog before this
    // frame returns.
    opts_.checker->run_begin(nranks_, [&state] { state.abort(); });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(state, r);
      try {
        body(comm);
      } catch (const AbortedError&) {
        // Secondary failure caused by a peer's abort; the primary
        // exception is already recorded (or will be by its owner).
      } catch (const RankDeadError&) {
        // A survivor let a peer's death escape instead of shrinking: the
        // death signal would be silently lost, so fail the run loudly.
        record_primary();
      } catch (const RankFailure&) {
        if (opts_.contain_failures) {
          // Fail-stop containment: the rank's stack has fully unwound
          // (windows released, scopes closed).  Deregister it from the
          // checker first so the watchdog never reports survivors as
          // waiting on a corpse, then publish the death — which may
          // itself release a pending rendezvous or complete a shrink.
          if (opts_.checker) opts_.checker->on_rank_dead(r);
          if (opts_.telemetry) {
            opts_.telemetry->metrics().add("simmpi.rank_deaths");
          }
          state.rank_died(r);
        } else {
          record_primary();
        }
      } catch (...) {
        record_primary();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (opts_.checker) {
    // The checker may hold the reason the run must fail even though no
    // rank thread threw a primary error (stuck-rank reports abort the run
    // from the watchdog; message leaks only show up once all ranks exit).
    auto checker_error = opts_.checker->run_end(state.aborted().load());
    if (checker_error && !first_error) first_error = checker_error;
  }
  if (opts_.telemetry) opts_.telemetry->end_run();

  if (first_error) std::rethrow_exception(first_error);
  if (state.aborted().load()) {
    throw std::runtime_error("simmpi: run aborted without recorded cause");
  }
  if (opts_.contain_failures && state.live_count() == 0) {
    throw std::runtime_error(
        "simmpi: every rank died; nothing survived to shrink");
  }
}

}  // namespace collrep::simmpi
