#include "simmpi/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "obs/telemetry.hpp"
#include "simmpi/comm.hpp"

namespace collrep::simmpi {

namespace detail {

void Mailbox::push(int src, int tag, Message msg) {
  {
    std::scoped_lock lk(mu_);
    queues_[key(src, tag)].push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop(int src, int tag, const std::atomic<bool>& aborted) {
  std::unique_lock lk(mu_);
  const Key k = key(src, tag);
  cv_.wait(lk, [&] {
    const auto it = queues_.find(k);
    return (it != queues_.end() && !it->second.empty()) || aborted.load();
  });
  const auto it = queues_.find(k);
  if (it == queues_.end() || it->second.empty()) {
    throw AbortedError{};
  }
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  return msg;
}

void Mailbox::notify_abort() { cv_.notify_all(); }

}  // namespace detail

RunState::RunState(int nranks, RuntimeOptions opts)
    : nranks_(nranks), opts_(std::move(opts)) {
  if (nranks < 1) throw std::invalid_argument("simmpi: nranks must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<detail::Mailbox>());
  }
  if (opts_.telemetry) opts_.telemetry->begin_run(nranks);
}

void RunState::abort() noexcept {
  aborted_.store(true);
  for (auto& mb : mailboxes_) mb->notify_abort();
  sync_cv_.notify_all();
}

double RunState::barrier_cost() const noexcept {
  if (nranks_ <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(nranks_)));
  return 2.0 * rounds * opts_.cluster.net_latency_s;
}

double RunState::sync(double my_time,
                      const std::function<double(double)>& on_release) {
  std::unique_lock lk(sync_mu_);
  if (aborted_.load()) throw AbortedError{};
  const std::uint64_t gen = sync_gen_;
  sync_max_ = std::max(sync_max_, my_time);
  if (++sync_count_ == nranks_) {
    const double max_time = sync_max_;
    sync_release_ =
        on_release ? on_release(max_time) : max_time + barrier_cost();
    sync_count_ = 0;
    sync_max_ = 0.0;
    ++sync_gen_;
    sync_cv_.notify_all();
    return sync_release_;
  }
  sync_cv_.wait(lk, [&] { return sync_gen_ != gen || aborted_.load(); });
  if (sync_gen_ == gen) throw AbortedError{};  // woken by abort
  return sync_release_;
}

void RunState::window_register(int rank, int id, std::size_t bytes) {
  std::scoped_lock lk(win_mu_);
  if (static_cast<std::size_t>(id) >= windows_.size()) {
    windows_.resize(static_cast<std::size_t>(id) + 1);
  }
  auto& slot = windows_[static_cast<std::size_t>(id)];
  if (!slot) {
    slot = std::make_unique<detail::WindowState>(
        nranks_, opts_.cluster.node_count(nranks_));
  }
  slot->buffers[static_cast<std::size_t>(rank)].assign(bytes, 0);
}

detail::WindowState& RunState::window(int id) {
  std::scoped_lock lk(win_mu_);
  auto& ws = windows_.at(static_cast<std::size_t>(id));
  if (!ws) throw std::logic_error("simmpi: window already freed");
  return *ws;
}

void RunState::window_free(int id) {
  std::scoped_lock lk(win_mu_);
  auto& ws = windows_.at(static_cast<std::size_t>(id));
  if (!ws) throw std::logic_error("simmpi: double free of window");
  if (++ws->free_count == nranks_) {
    ws.reset();  // all ranks released; reclaim memory, keep the slot
  }
}

Runtime::Runtime(int nranks, RuntimeOptions opts)
    : nranks_(nranks), opts_(std::move(opts)) {
  if (nranks < 1) throw std::invalid_argument("simmpi: nranks must be >= 1");
}

void Runtime::run(const std::function<void(Comm&)>& body) {
  RunState state(nranks_, opts_);

  std::mutex err_mu;
  std::exception_ptr first_error;

  if (opts_.checker) {
    // The abort callback references `state`, which outlives the checker's
    // use of it: run_end() below stops the checker's watchdog before this
    // frame returns.
    opts_.checker->run_begin(nranks_, [&state] { state.abort(); });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(state, r);
      try {
        body(comm);
      } catch (const AbortedError&) {
        // Secondary failure caused by a peer's abort; the primary
        // exception is already recorded (or will be by its owner).
      } catch (...) {
        {
          std::scoped_lock lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        state.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (opts_.checker) {
    // The checker may hold the reason the run must fail even though no
    // rank thread threw a primary error (stuck-rank reports abort the run
    // from the watchdog; message leaks only show up once all ranks exit).
    auto checker_error = opts_.checker->run_end(state.aborted().load());
    if (checker_error && !first_error) first_error = checker_error;
  }
  if (opts_.telemetry) opts_.telemetry->end_run();

  if (first_error) std::rethrow_exception(first_error);
  if (state.aborted().load()) {
    throw std::runtime_error("simmpi: run aborted without recorded cause");
  }
}

}  // namespace collrep::simmpi
