// Typed collectives built on the Comm point-to-point layer.
//
// Shapes follow the classic MPI implementations the paper relies on:
// binomial-tree reduce + binomial-tree broadcast (so ALLREDUCE of the
// HMERGE operator is logarithmic in the number of processes, §III-B), and
// ring allgather.  User-defined reduction operators receive
// (accumulated, incoming) and may charge compute time via Comm::charge.
#pragma once

#include <functional>
#include <source_location>
#include <typeinfo>
#include <utility>
#include <vector>

#include "simmpi/comm.hpp"

namespace collrep::simmpi {

namespace tags {
// Distinct tag bases per collective; point-to-point matching is FIFO per
// (source, tag) so repeated collectives on the same tag stay ordered.
inline constexpr int kBcast = 1 << 20;
inline constexpr int kReduce = 2 << 20;
inline constexpr int kGather = 3 << 20;
inline constexpr int kAllgather = 4 << 20;
inline constexpr int kScatter = 5 << 20;
}  // namespace tags

namespace detail {

// Logical round count of a binomial-tree collective over n ranks
// (ceil(log2 n); the per-round cost model lives in RunState::barrier_cost).
[[nodiscard]] inline std::uint64_t tree_rounds(int n) noexcept {
  std::uint64_t rounds = 0;
  for (int span = 1; span < n; span <<= 1) ++rounds;
  return rounds;
}

// Fingerprint of a typed collective entry: the first six CollOp values
// mirror obs::CollectiveKind by index, the payload type contributes its
// typeid hash (identical across rank threads of one process).  Reductions
// mix in the operator's typeid as well — closure types are unique per
// source location, so ranks disagreeing on the reduction op diverge here
// even when the payload type matches.
template <class T>
[[nodiscard]] CollFingerprint fingerprint(obs::CollectiveKind kind, int root,
                                          std::uint64_t op_hash = 0) noexcept {
  return CollFingerprint{
      .op = static_cast<CollOp>(obs::index_of(kind)),
      .root = root,
      .type_hash = typeid(T).hash_code() ^ (op_hash * 0x9e3779b97f4a7c15ull)};
}

// RAII verification + telemetry wrapper for one collective invocation:
// cross-checks the entry fingerprint against the other ranks (may throw
// check::ViolationError on a divergent rank before the collective can
// deadlock), bumps the per-kind call/round counters, and brackets the
// body with trace events.  Two null checks when neither a checker nor
// telemetry is attached.
class CollectiveScope {
 public:
  CollectiveScope(Comm& comm, obs::CollectiveKind kind, std::uint64_t rounds,
                  const CollFingerprint& fp, const std::source_location& loc)
      : obs_(comm.obs()), comm_(&comm), kind_(kind) {
    comm.check_collective(fp, loc);
    // Entry-side injection point for every collective kind; the matching
    // exit-side point is an explicit fault_point("coll.post") in each
    // collective body (a destructor must not throw a rank-kill).
    comm.fault_point("coll.pre");
    if (!obs_) return;
    ++obs_->comm.collective_calls[obs::index_of(kind)];
    obs_->comm.collective_rounds[obs::index_of(kind)] += rounds;
    obs_->event(obs::EventKind::kCollectiveBegin, comm.clock().now(),
                obs::to_string(kind), rounds);
  }
  ~CollectiveScope() {
    comm_->check_collective_done();
    if (!obs_) return;
    obs_->event(obs::EventKind::kCollectiveEnd, comm_->clock().now(),
                obs::to_string(kind_));
  }

  CollectiveScope(const CollectiveScope&) = delete;
  CollectiveScope& operator=(const CollectiveScope&) = delete;

 private:
  obs::RankTelemetry* obs_;
  Comm* comm_;
  obs::CollectiveKind kind_;
};

}  // namespace detail

// Broadcast `value` from `root` to all ranks (binomial tree).
template <class T>
void bcast(Comm& comm, T& value, int root = 0,
           std::source_location loc = std::source_location::current()) {
  const int n = comm.size();
  const detail::CollectiveScope scope(
      comm, obs::CollectiveKind::kBcast, detail::tree_rounds(n),
      detail::fingerprint<T>(obs::CollectiveKind::kBcast, root), loc);
  if (n == 1) return;
  const int vrank = (comm.rank() - root + n) % n;

  if (vrank != 0) {
    const int parent_v = vrank ^ (vrank & -vrank);
    value = comm.recv_value<T>((parent_v + root) % n, tags::kBcast);
  }
  const int lsb = (vrank == 0) ? (1 << 30) : (vrank & -vrank);
  // Children are vrank + mask for every power of two below our lowest
  // set bit; send the largest subtree first so deep subtrees start early.
  int top = 1;
  while (top < lsb && (vrank | top) < n && top < n) top <<= 1;
  for (int mask = top >> 1; mask >= 1; mask >>= 1) {
    const int child_v = vrank | mask;
    if (child_v != vrank && child_v < n) {
      comm.send_value((child_v + root) % n, tags::kBcast, value);
    }
  }
  comm.fault_point("coll.post");
}

// Reduce all ranks' values onto rank `root` using `op(accumulated,
// incoming)`; `op` must be associative (binomial combination order).
// Non-root ranks return their partial accumulation.
template <class T, class Op>
T reduce(Comm& comm, T value, Op op, int root = 0,
         std::source_location loc = std::source_location::current()) {
  const int n = comm.size();
  const detail::CollectiveScope scope(
      comm, obs::CollectiveKind::kReduce, detail::tree_rounds(n),
      detail::fingerprint<T>(obs::CollectiveKind::kReduce, root,
                             typeid(Op).hash_code()),
      loc);
  const int vrank = (comm.rank() - root + n) % n;
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((vrank & mask) != 0) {
      const int partner_v = vrank ^ mask;
      comm.send_value((partner_v + root) % n, tags::kReduce, value);
      break;
    }
    const int partner_v = vrank | mask;
    if (partner_v < n) {
      T incoming = comm.recv_value<T>((partner_v + root) % n, tags::kReduce);
      value = op(std::move(value), std::move(incoming));
    }
  }
  comm.fault_point("coll.post");
  return value;
}

// K-way reduce: same binomial communication schedule (and therefore the
// same tag/fingerprint behavior) as reduce(), but a parent collects ALL
// of its children's subtree values before combining, and hands them to
// `opk(accumulated, children)` in one call.  A k-way-capable operator —
// BoundedFpSet::merge_many is the motivating one — then performs a
// single cache-friendly multi-way pass instead of rewriting the
// accumulator once per child.  `opk` must be order-insensitive across
// children (the children arrive partner-order, lowest mask first).
// Non-root ranks return their partial accumulation.
template <class T, class OpK>
T reduce_kway(Comm& comm, T value, OpK opk, int root = 0,
              std::source_location loc = std::source_location::current()) {
  const int n = comm.size();
  const detail::CollectiveScope scope(
      comm, obs::CollectiveKind::kReduce, detail::tree_rounds(n),
      detail::fingerprint<T>(obs::CollectiveKind::kReduce, root,
                             typeid(OpK).hash_code()),
      loc);
  const int vrank = (comm.rank() - root + n) % n;
  std::vector<T> children;
  int mask = 1;
  for (; mask < n; mask <<= 1) {
    if ((vrank & mask) != 0) break;
    const int partner_v = vrank | mask;
    if (partner_v < n) {
      children.push_back(
          comm.recv_value<T>((partner_v + root) % n, tags::kReduce));
    }
  }
  if (!children.empty()) {
    value = opk(std::move(value), std::move(children));
  }
  if (mask < n) {
    const int parent_v = vrank ^ mask;
    comm.send_value((parent_v + root) % n, tags::kReduce, value);
  }
  comm.fault_point("coll.post");
  return value;
}

// Allreduce = binomial reduce to rank 0 + binomial broadcast, mirroring the
// paper's ALLREDUCE(HMERGE, LHashes) step.
template <class T, class Op>
T allreduce(Comm& comm, T value, Op op,
            std::source_location loc = std::source_location::current()) {
  // Rounds = reduce + bcast halves; the nested calls also count themselves
  // under their own kinds.
  const detail::CollectiveScope scope(
      comm, obs::CollectiveKind::kAllreduce,
      2 * detail::tree_rounds(comm.size()),
      detail::fingerprint<T>(obs::CollectiveKind::kAllreduce, -1,
                             typeid(Op).hash_code()),
      loc);
  value = reduce(comm, std::move(value), std::move(op), 0);
  bcast(comm, value, 0);
  comm.fault_point("coll.post");
  return value;
}

// Gather every rank's value at `root` (index == source rank).  Non-root
// ranks receive an empty vector.
template <class T>
std::vector<T> gather(Comm& comm, const T& value, int root = 0,
                      std::source_location loc =
                          std::source_location::current()) {
  const int n = comm.size();
  const detail::CollectiveScope scope(
      comm, obs::CollectiveKind::kGather,
      static_cast<std::uint64_t>(n > 0 ? n - 1 : 0),
      detail::fingerprint<T>(obs::CollectiveKind::kGather, root), loc);
  if (comm.rank() != root) {
    comm.send_value(root, tags::kGather, value);
    comm.fault_point("coll.post");
    return {};
  }
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    if (r == root) {
      out.push_back(value);
    } else {
      out.push_back(comm.recv_value<T>(r, tags::kGather));
    }
  }
  comm.fault_point("coll.post");
  return out;
}

// Scatter `values` (root-only, size == nranks) so each rank gets its slot.
template <class T>
T scatter(Comm& comm, const std::vector<T>& values, int root = 0,
          std::source_location loc = std::source_location::current()) {
  const int n = comm.size();
  const detail::CollectiveScope scope(
      comm, obs::CollectiveKind::kScatter,
      static_cast<std::uint64_t>(n > 0 ? n - 1 : 0),
      detail::fingerprint<T>(obs::CollectiveKind::kScatter, root), loc);
  if (comm.rank() == root) {
    for (int r = 0; r < n; ++r) {
      if (r != root) comm.send_value(r, tags::kScatter, values[r]);
    }
    comm.fault_point("coll.post");
    return values[static_cast<std::size_t>(root)];
  }
  T received = comm.recv_value<T>(root, tags::kScatter);
  comm.fault_point("coll.post");
  return received;
}

// Ring allgather: N-1 steps, each rank forwards the block it received in
// the previous step.  Returns the vector of all ranks' values by rank.
template <class T>
std::vector<T> allgather(Comm& comm, const T& value,
                         std::source_location loc =
                             std::source_location::current()) {
  const int n = comm.size();
  const detail::CollectiveScope scope(
      comm, obs::CollectiveKind::kAllgather,
      static_cast<std::uint64_t>(n > 0 ? n - 1 : 0),
      detail::fingerprint<T>(obs::CollectiveKind::kAllgather, -1), loc);
  const int r = comm.rank();
  std::vector<T> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(r)] = value;
  T current = value;
  for (int step = 0; step < n - 1; ++step) {
    const int dst = (r + 1) % n;
    const int src = (r - 1 + n) % n;
    comm.send_value(dst, tags::kAllgather + step, current);
    current = comm.recv_value<T>(src, tags::kAllgather + step);
    const int origin = ((r - 1 - step) % n + n) % n;
    out[static_cast<std::size_t>(origin)] = current;
  }
  comm.fault_point("coll.post");
  return out;
}

// Convenience numeric reductions.
template <class T>
T allreduce_sum(Comm& comm, T value,
                std::source_location loc = std::source_location::current()) {
  return allreduce(comm, value, [](T a, T b) { return a + b; }, loc);
}

template <class T>
T allreduce_max(Comm& comm, T value,
                std::source_location loc = std::source_location::current()) {
  return allreduce(comm, value, [](T a, T b) { return a > b ? a : b; }, loc);
}

}  // namespace simmpi
