#include "simmpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <stdexcept>

namespace collrep::simmpi {

void Comm::send_bytes(int dst, int tag, std::span<const std::uint8_t> data) {
  if (state_->aborted().load()) throw AbortedError{};
  if (dst < 0 || dst >= size()) {
    throw std::out_of_range("simmpi: send to invalid rank");
  }
  const int wdst = group_[static_cast<std::size_t>(dst)];
  // Before the mailbox push, so the checker observes a message's send
  // strictly before its receive.  Checker/obs/topology stay world-keyed.
  if (check_) check_->on_send(rank_, wdst, tag, data.size());
  const auto& cl = cluster();
  if (obs_) {
    auto& cs = obs_->comm;
    ++cs.sent_messages;
    cs.sent_bytes += data.size();
    auto& per_tag = cs.sent_by_tag[tag];
    ++per_tag.messages;
    per_tag.bytes += data.size();
    (cl.same_node(rank_, wdst) ? cs.intra_node_sent_bytes
                               : cs.inter_node_sent_bytes) += data.size();
  }
  // Sender-side copy-out overhead, then in-flight latency/bandwidth.
  clock_.advance(static_cast<double>(data.size()) / cl.mem_bandwidth_bps);
  const std::uint64_t flow =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank_)) << 32) |
      static_cast<std::uint32_t>(flow_seq_++);
  if (obs_) {
    obs_->event(obs::EventKind::kSend, clock_.now(), "send", data.size(),
                static_cast<std::uint64_t>(wdst), flow);
  }
  detail::Message msg{
      std::vector<std::uint8_t>(data.begin(), data.end()),
      clock_.now() + cl.message_time(rank_, wdst, data.size()), flow};
  state_->mailbox(wdst).push(rank_, tag, std::move(msg));
}

std::vector<std::uint8_t> Comm::recv_bytes(int src, int tag) {
  if (src < 0 || src >= size()) {
    throw std::out_of_range("simmpi: recv from invalid rank");
  }
  const int wsrc = group_[static_cast<std::size_t>(src)];
  detail::Message msg;
  try {
    msg = state_->mailbox(rank_).pop(wsrc, tag, *state_);
  } catch (const RankDeadError&) {
    fail_pending_ = true;
    throw;
  }
  if (check_) check_->on_recv(rank_, wsrc, tag, msg.payload.size());
  if (obs_) {
    ++obs_->comm.recv_messages;
    obs_->comm.recv_bytes += msg.payload.size();
  }
  clock_.at_least(msg.arrival_time);
  clock_.advance(static_cast<double>(msg.payload.size()) /
                 cluster().mem_bandwidth_bps);
  if (obs_) {
    // Stamped after the arrival/copy-in advance: ts is when the receive
    // completed, so the matching kSend -> kRecv edge spans the flight time.
    obs_->event(obs::EventKind::kRecv, clock_.now(), "recv",
                msg.payload.size(), static_cast<std::uint64_t>(wsrc),
                msg.flow);
  }
  return std::move(msg.payload);
}

void Comm::barrier(std::source_location loc) {
  raise_pending_failure();
  check_collective(CollFingerprint{.op = CollOp::kBarrier}, loc);
  const std::uint64_t gen = sync_seq_++;
  if (obs_) {
    ++obs_->comm.barriers;
    obs_->event(obs::EventKind::kSyncBegin, clock_.now(), "barrier", 0, 0,
                gen);
  }
  RunState::SyncResult sr;
  try {
    sr = state_->sync(clock_.now());
  } catch (const RankDeadError&) {
    fail_pending_ = true;
    throw;
  }
  clock_.at_least(sr.release);
  if (obs_) {
    obs_->event(obs::EventKind::kSyncEnd, clock_.now(), "barrier", 0, 0, gen);
  }
  check_collective_done();
  if (sr.deaths > known_deaths_) {
    // A peer died since the last agreement.  Every survivor observes the
    // same death count at the same rendezvous, so all of them throw here
    // uniformly — the collective completed, the *world* is what failed.
    fail_pending_ = true;
    throw RankDeadError{};
  }
}

Comm::ShrinkInfo Comm::shrink() {
  const double entry = clock_.now();
  const auto res = state_->shrink_rendezvous(rank_, entry);
  clock_.at_least(res.release);

  ShrinkInfo info;
  info.epoch = res.epoch;
  info.agreement_start_s = res.start;
  info.alive_world = res.alive;
  info.prev_group_world = group_;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (!std::binary_search(res.alive.begin(), res.alive.end(), group_[i])) {
      info.dead.push_back(
          ShrinkInfo::Dead{static_cast<int>(i), group_[i]});
    }
  }

  // Dense re-rank over the survivors.  res.alive is ascending and every
  // previous group member that did not die is in it, so the new group
  // preserves the relative order of survivors.
  group_ = res.alive;
  const auto self = std::find(group_.begin(), group_.end(), rank_);
  crank_ = static_cast<int>(self - group_.begin());
  fail_pending_ = false;
  known_deaths_ = res.deaths;
  epoch_bytes_put_ = 0;  // any half-open epoch died with the old world
  // Realign the rendezvous generation: the agreement consumed exactly one
  // global generation (RunState burned it), regardless of how far this
  // rank's counter drifted while the failure unwound.
  sync_seq_ = res.sync_gen + 1;

  if (obs_) {
    obs_->event(obs::EventKind::kSyncBegin, entry, "shrink", info.dead.size(),
                static_cast<std::uint64_t>(group_.size()), res.sync_gen);
    obs_->event(obs::EventKind::kSyncEnd, clock_.now(), "shrink",
                info.dead.size(), static_cast<std::uint64_t>(group_.size()),
                res.sync_gen);
  }
  if (auto* t = state_->telemetry(); t && crank_ == 0) {
    t->metrics().add("simmpi.shrinks");
    t->metrics().set("simmpi.world_size", static_cast<double>(group_.size()));
  }
  return info;
}

Window Comm::win_create(std::size_t local_bytes, std::source_location loc) {
  raise_pending_failure();
  const int id = next_win_id_++;
  check_collective(CollFingerprint{.op = CollOp::kWinCreate, .root = id}, loc);
  if (check_) check_->on_win_create(rank_, id, local_bytes);
  if (obs_) ++obs_->comm.windows_created;
  state_->window_register(rank_, id, local_bytes);
  barrier();  // all regions allocated before any put
  check_collective_done();
  return Window(*this, id);
}

void Window::put(int target, std::size_t offset,
                 std::span<const std::uint8_t> data,
                 std::uint64_t modeled_bytes, std::source_location loc) {
  if (!comm_) throw std::logic_error("simmpi: put on invalid window");
  if (modeled_bytes == 0) modeled_bytes = data.size();
  auto& ws = comm_->state_->window(id_);
  if (target < 0 || target >= comm_->size()) {
    throw std::out_of_range("simmpi: put to invalid rank");
  }
  const int wtarget = comm_->group_[static_cast<std::size_t>(target)];
  if (auto* ck = comm_->check_) {
    ck->on_put(comm_->rank_, id_, wtarget, offset, data.size(),
               CallSite::from(loc));
  }
  {
    std::scoped_lock lk(ws.locks[static_cast<std::size_t>(wtarget)]);
    auto& buf = ws.buffers[static_cast<std::size_t>(wtarget)];
    if (offset + data.size() > buf.size()) {
      throw std::out_of_range("simmpi: put beyond window bounds");
    }
    std::memcpy(buf.data() + offset, data.data(), data.size());
  }
  const auto& cl = comm_->cluster();
  const int src_node = cl.node_of(comm_->world_rank());
  const int dst_node = cl.node_of(wtarget);
  {
    std::scoped_lock lk(ws.acct_mu);
    if (src_node == dst_node) {
      ws.node_intra[static_cast<std::size_t>(src_node)] += modeled_bytes;
    } else {
      ws.node_inter_sent[static_cast<std::size_t>(src_node)] += modeled_bytes;
      ws.node_inter_recv[static_cast<std::size_t>(dst_node)] += modeled_bytes;
    }
    ws.rank_recv[static_cast<std::size_t>(wtarget)] += modeled_bytes;
    ws.last_put_issue = std::max(ws.last_put_issue, comm_->clock().now());
  }
  comm_->epoch_bytes_put_ += modeled_bytes;
  if (auto* t = comm_->obs_) {
    auto& cs = t->comm;
    ++cs.puts;
    cs.put_bytes += modeled_bytes;
    (src_node == dst_node ? cs.intra_node_put_bytes
                          : cs.inter_node_put_bytes) += modeled_bytes;
    t->event(obs::EventKind::kPut, comm_->clock().now(), "put", modeled_bytes,
             static_cast<std::uint64_t>(wtarget));
  }
  comm_->charge(static_cast<double>(modeled_bytes) / cl.mem_bandwidth_bps);
}

std::span<std::uint8_t> Window::local() {
  if (!comm_) throw std::logic_error("simmpi: local() on invalid window");
  auto& ws = comm_->state_->window(id_);
  return ws.buffers[static_cast<std::size_t>(comm_->world_rank())];
}

std::span<const std::uint8_t> Window::local() const {
  if (!comm_) throw std::logic_error("simmpi: local() on invalid window");
  auto& ws = comm_->state_->window(id_);
  return ws.buffers[static_cast<std::size_t>(comm_->world_rank())];
}

void Window::fence(unsigned flags, std::source_location loc) {
  if (!comm_) throw std::logic_error("simmpi: fence on invalid window");
  comm_->raise_pending_failure();
  comm_->check_collective(
      CollFingerprint{.op = CollOp::kWinFence, .root = id_, .flags = flags},
      loc);
  comm_->fault_point("win.fence");
  auto& ws = comm_->state_->window(id_);
  const auto& cl = comm_->cluster();
  const std::uint64_t gen = comm_->sync_seq_++;
  if (auto* t = comm_->obs_) {
    t->event(obs::EventKind::kSyncBegin, comm_->clock().now(), "fence",
             comm_->epoch_bytes_put_, static_cast<std::uint64_t>(id_), gen);
  }
  RunState::SyncResult sr;
  try {
    // The release closure captures only window/cluster state, never the
    // calling rank's frame beyond `ws`/`cl` — it may run on whichever
    // thread completes the rendezvous (including a dying rank's).
    sr = comm_->state_->sync(
        comm_->clock().now(), [&ws, &cl](double max_clock) {
          // Bulk-synchronous epoch: each node's NIC moves its inter-node
          // bytes at link rate, intra-node traffic moves at memory rate;
          // the epoch lasts as long as the busiest resource.
          std::scoped_lock lk(ws.acct_mu);
          double epoch = 0.0;
          for (std::size_t n = 0; n < ws.node_inter_sent.size(); ++n) {
            const double out = static_cast<double>(ws.node_inter_sent[n]) /
                               cl.net_bandwidth_bps;
            const double in = static_cast<double>(ws.node_inter_recv[n]) /
                              cl.net_bandwidth_bps;
            const double mem =
                static_cast<double>(ws.node_intra[n]) / cl.mem_bandwidth_bps;
            epoch = std::max({epoch, out, in, mem});
          }
          const double start = std::max(max_clock, ws.last_put_issue);
          std::fill(ws.node_inter_sent.begin(), ws.node_inter_sent.end(), 0);
          std::fill(ws.node_inter_recv.begin(), ws.node_inter_recv.end(), 0);
          std::fill(ws.node_intra.begin(), ws.node_intra.end(), 0);
          // Publish this epoch's per-rank deliveries and reset the
          // open-epoch tally.  All ranks are still blocked in sync() here,
          // so nobody can issue a next-epoch put before the swap, and every
          // rank reads its epoch slot before it can reach the next fence.
          ws.rank_recv.swap(ws.rank_recv_epoch);
          std::fill(ws.rank_recv.begin(), ws.rank_recv.end(), 0);
          ws.last_put_issue = 0.0;
          return start + epoch + cl.net_latency_s;
        });
  } catch (const RankDeadError&) {
    comm_->fail_pending_ = true;
    throw;
  }
  comm_->clock().at_least(sr.release);
  comm_->epoch_bytes_recv_ =
      ws.rank_recv_epoch[static_cast<std::size_t>(comm_->world_rank())];
  if (auto* t = comm_->obs_) {
    ++t->comm.window_epochs;
    t->event(obs::EventKind::kSyncEnd, comm_->clock().now(), "fence",
             comm_->epoch_bytes_put_, comm_->epoch_bytes_recv_, gen);
    t->event(obs::EventKind::kFence, comm_->clock().now(), "fence",
             comm_->epoch_bytes_put_, comm_->epoch_bytes_recv_);
  }
  comm_->epoch_bytes_put_ = 0;
  if (auto* ck = comm_->check_) ck->on_fence(comm_->rank_, id_, flags);
  comm_->check_collective_done();
  if (sr.deaths > comm_->known_deaths_) {
    // Same uniform-throw contract as barrier(): the epoch completed (the
    // dead rank's puts were issued before it died or not at all — either
    // way identically on every survivor), but the world shrank.
    comm_->fail_pending_ = true;
    throw RankDeadError{};
  }
}

void Window::release() {
  if (!comm_) return;
  // MPI_Win_free is collective — but only when the world is healthy and
  // this is a normal (non-unwinding) release.  A dying rank, a rank
  // holding a pending failure, or a rank whose world was revoked must not
  // re-enter a rendezvous from a destructor; a death detected *by* this
  // barrier is re-armed via fail_pending_ and resurfaces at the next
  // explicit collective, so it is never lost to the catch below.
  try {
    if (!comm_->state_->aborted().load() && !comm_->fail_pending_ &&
        !comm_->state_->revoked() && std::uncaught_exceptions() == 0) {
      comm_->barrier();
    }
  } catch (...) {
    // Release runs from destructors during unwinding; never propagate.
  }
  try {
    // Always record this rank's release so the runtime can reclaim the
    // window once every rank has freed it or died.
    if (auto* ck = comm_->check_) ck->on_win_free(comm_->rank_, id_);
    comm_->state_->window_free(comm_->world_rank(), id_);
  } catch (...) {
  }
  comm_ = nullptr;
  id_ = -1;
}

}  // namespace collrep::simmpi
