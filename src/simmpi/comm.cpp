#include "simmpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace collrep::simmpi {

void Comm::send_bytes(int dst, int tag, std::span<const std::uint8_t> data) {
  if (state_->aborted().load()) throw AbortedError{};
  if (dst < 0 || dst >= size()) {
    throw std::out_of_range("simmpi: send to invalid rank");
  }
  // Before the mailbox push, so the checker observes a message's send
  // strictly before its receive.
  if (check_) check_->on_send(rank_, dst, tag, data.size());
  const auto& cl = cluster();
  if (obs_) {
    auto& cs = obs_->comm;
    ++cs.sent_messages;
    cs.sent_bytes += data.size();
    auto& per_tag = cs.sent_by_tag[tag];
    ++per_tag.messages;
    per_tag.bytes += data.size();
    (cl.same_node(rank_, dst) ? cs.intra_node_sent_bytes
                              : cs.inter_node_sent_bytes) += data.size();
  }
  // Sender-side copy-out overhead, then in-flight latency/bandwidth.
  clock_.advance(static_cast<double>(data.size()) / cl.mem_bandwidth_bps);
  const std::uint64_t flow =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank_)) << 32) |
      static_cast<std::uint32_t>(flow_seq_++);
  if (obs_) {
    obs_->event(obs::EventKind::kSend, clock_.now(), "send", data.size(),
                static_cast<std::uint64_t>(dst), flow);
  }
  detail::Message msg{
      std::vector<std::uint8_t>(data.begin(), data.end()),
      clock_.now() + cl.message_time(rank_, dst, data.size()), flow};
  state_->mailbox(dst).push(rank_, tag, std::move(msg));
}

std::vector<std::uint8_t> Comm::recv_bytes(int src, int tag) {
  if (src < 0 || src >= size()) {
    throw std::out_of_range("simmpi: recv from invalid rank");
  }
  auto msg = state_->mailbox(rank_).pop(src, tag, state_->aborted());
  if (check_) check_->on_recv(rank_, src, tag, msg.payload.size());
  if (obs_) {
    ++obs_->comm.recv_messages;
    obs_->comm.recv_bytes += msg.payload.size();
  }
  clock_.at_least(msg.arrival_time);
  clock_.advance(static_cast<double>(msg.payload.size()) /
                 cluster().mem_bandwidth_bps);
  if (obs_) {
    // Stamped after the arrival/copy-in advance: ts is when the receive
    // completed, so the matching kSend -> kRecv edge spans the flight time.
    obs_->event(obs::EventKind::kRecv, clock_.now(), "recv",
                msg.payload.size(), static_cast<std::uint64_t>(src), msg.flow);
  }
  return std::move(msg.payload);
}

void Comm::barrier(std::source_location loc) {
  check_collective(CollFingerprint{.op = CollOp::kBarrier}, loc);
  const std::uint64_t gen = sync_seq_++;
  if (obs_) {
    ++obs_->comm.barriers;
    obs_->event(obs::EventKind::kSyncBegin, clock_.now(), "barrier", 0, 0,
                gen);
  }
  clock_.at_least(state_->sync(clock_.now()));
  if (obs_) {
    obs_->event(obs::EventKind::kSyncEnd, clock_.now(), "barrier", 0, 0, gen);
  }
  check_collective_done();
}

Window Comm::win_create(std::size_t local_bytes, std::source_location loc) {
  const int id = next_win_id_++;
  check_collective(CollFingerprint{.op = CollOp::kWinCreate, .root = id}, loc);
  if (check_) check_->on_win_create(rank_, id, local_bytes);
  if (obs_) ++obs_->comm.windows_created;
  state_->window_register(rank_, id, local_bytes);
  barrier();  // all regions allocated before any put
  check_collective_done();
  return Window(*this, id);
}

void Window::put(int target, std::size_t offset,
                 std::span<const std::uint8_t> data,
                 std::uint64_t modeled_bytes, std::source_location loc) {
  if (!comm_) throw std::logic_error("simmpi: put on invalid window");
  if (modeled_bytes == 0) modeled_bytes = data.size();
  auto& ws = comm_->state_->window(id_);
  if (target < 0 || target >= comm_->size()) {
    throw std::out_of_range("simmpi: put to invalid rank");
  }
  if (auto* ck = comm_->check_) {
    ck->on_put(comm_->rank_, id_, target, offset, data.size(),
               CallSite::from(loc));
  }
  {
    std::scoped_lock lk(ws.locks[static_cast<std::size_t>(target)]);
    auto& buf = ws.buffers[static_cast<std::size_t>(target)];
    if (offset + data.size() > buf.size()) {
      throw std::out_of_range("simmpi: put beyond window bounds");
    }
    std::memcpy(buf.data() + offset, data.data(), data.size());
  }
  const auto& cl = comm_->cluster();
  const int src_node = cl.node_of(comm_->rank());
  const int dst_node = cl.node_of(target);
  {
    std::scoped_lock lk(ws.acct_mu);
    if (src_node == dst_node) {
      ws.node_intra[static_cast<std::size_t>(src_node)] += modeled_bytes;
    } else {
      ws.node_inter_sent[static_cast<std::size_t>(src_node)] += modeled_bytes;
      ws.node_inter_recv[static_cast<std::size_t>(dst_node)] += modeled_bytes;
    }
    ws.rank_recv[static_cast<std::size_t>(target)] += modeled_bytes;
    ws.last_put_issue = std::max(ws.last_put_issue, comm_->clock().now());
  }
  comm_->epoch_bytes_put_ += modeled_bytes;
  if (auto* t = comm_->obs_) {
    auto& cs = t->comm;
    ++cs.puts;
    cs.put_bytes += modeled_bytes;
    (src_node == dst_node ? cs.intra_node_put_bytes
                          : cs.inter_node_put_bytes) += modeled_bytes;
    t->event(obs::EventKind::kPut, comm_->clock().now(), "put", modeled_bytes,
             static_cast<std::uint64_t>(target));
  }
  comm_->charge(static_cast<double>(modeled_bytes) / cl.mem_bandwidth_bps);
}

std::span<std::uint8_t> Window::local() {
  if (!comm_) throw std::logic_error("simmpi: local() on invalid window");
  auto& ws = comm_->state_->window(id_);
  return ws.buffers[static_cast<std::size_t>(comm_->rank())];
}

std::span<const std::uint8_t> Window::local() const {
  if (!comm_) throw std::logic_error("simmpi: local() on invalid window");
  auto& ws = comm_->state_->window(id_);
  return ws.buffers[static_cast<std::size_t>(comm_->rank())];
}

void Window::fence(unsigned flags, std::source_location loc) {
  if (!comm_) throw std::logic_error("simmpi: fence on invalid window");
  comm_->check_collective(
      CollFingerprint{.op = CollOp::kWinFence, .root = id_, .flags = flags},
      loc);
  comm_->fault_point("win.fence");
  auto& ws = comm_->state_->window(id_);
  const auto& cl = comm_->cluster();
  const std::uint64_t gen = comm_->sync_seq_++;
  if (auto* t = comm_->obs_) {
    t->event(obs::EventKind::kSyncBegin, comm_->clock().now(), "fence",
             comm_->epoch_bytes_put_, static_cast<std::uint64_t>(id_), gen);
  }
  const double release = comm_->state_->sync(
      comm_->clock().now(), [&](double max_clock) {
        // Bulk-synchronous epoch: each node's NIC moves its inter-node
        // bytes at link rate, intra-node traffic moves at memory rate;
        // the epoch lasts as long as the busiest resource.
        std::scoped_lock lk(ws.acct_mu);
        double epoch = 0.0;
        for (std::size_t n = 0; n < ws.node_inter_sent.size(); ++n) {
          const double out = static_cast<double>(ws.node_inter_sent[n]) /
                             cl.net_bandwidth_bps;
          const double in = static_cast<double>(ws.node_inter_recv[n]) /
                            cl.net_bandwidth_bps;
          const double mem =
              static_cast<double>(ws.node_intra[n]) / cl.mem_bandwidth_bps;
          epoch = std::max({epoch, out, in, mem});
        }
        const double start = std::max(max_clock, ws.last_put_issue);
        std::fill(ws.node_inter_sent.begin(), ws.node_inter_sent.end(), 0);
        std::fill(ws.node_inter_recv.begin(), ws.node_inter_recv.end(), 0);
        std::fill(ws.node_intra.begin(), ws.node_intra.end(), 0);
        // Publish this epoch's per-rank deliveries and reset the open-epoch
        // tally.  All ranks are still blocked in sync() here, so nobody can
        // issue a next-epoch put before the swap, and every rank reads its
        // epoch slot before it can reach the next fence.
        ws.rank_recv.swap(ws.rank_recv_epoch);
        std::fill(ws.rank_recv.begin(), ws.rank_recv.end(), 0);
        ws.last_put_issue = 0.0;
        return start + epoch + cl.net_latency_s;
      });
  comm_->clock().at_least(release);
  comm_->epoch_bytes_recv_ =
      ws.rank_recv_epoch[static_cast<std::size_t>(comm_->rank())];
  if (auto* t = comm_->obs_) {
    ++t->comm.window_epochs;
    t->event(obs::EventKind::kSyncEnd, comm_->clock().now(), "fence",
             comm_->epoch_bytes_put_, comm_->epoch_bytes_recv_, gen);
    t->event(obs::EventKind::kFence, comm_->clock().now(), "fence",
             comm_->epoch_bytes_put_, comm_->epoch_bytes_recv_);
  }
  comm_->epoch_bytes_put_ = 0;
  if (auto* ck = comm_->check_) ck->on_fence(comm_->rank_, id_, flags);
  comm_->check_collective_done();
}

void Window::release() {
  if (!comm_) return;
  try {
    if (!comm_->state_->aborted().load()) {
      comm_->barrier();  // MPI_Win_free is collective
    }
    if (auto* ck = comm_->check_) ck->on_win_free(comm_->rank_, id_);
    comm_->state_->window_free(id_);
  } catch (...) {
    // Release runs from destructors during unwinding; never propagate.
  }
  comm_ = nullptr;
  id_ = -1;
}

}  // namespace collrep::simmpi
