// Cluster cost model.
//
// The paper evaluates on the Shamrock testbed: 34 nodes, 12 ranks each,
// Gigabit Ethernet, one local HDD per node.  This repository executes the
// real communication pattern in-process (src/simmpi) and charges *simulated
// time* for every byte hashed, transferred, merged or stored, using the
// first-order resource model below.  Completion times reported by benches
// are simulated seconds, deterministic across runs, and independent of host
// load — see DESIGN.md §1 for why this preserves the paper's result shapes.
#pragma once

#include <algorithm>
#include <cstdint>

namespace collrep::sim {

struct ClusterConfig {
  // Topology --------------------------------------------------------------
  int ranks_per_node = 12;  // Xeon X5670: 6 cores / 12 hw threads

  // Network (Gigabit Ethernet, full duplex, one NIC per node) --------------
  double net_bandwidth_bps = 125.0e6;  // bytes/s each direction
  double net_latency_s = 50.0e-6;
  // Intra-node transfers go through shared memory.
  double mem_bandwidth_bps = 5.0e9;

  // Local storage (1 TB HDD per node, shared by all its ranks) -------------
  double hdd_write_bps = 100.0e6;
  double hdd_read_bps = 120.0e6;

  // Application compute rate used by the mini-apps to charge per-iteration
  // solver time (sustained, not peak — Xeon X5670 class).
  double flops_per_second = 2.0e9;

  // Content-defined chunking rolling-hash throughput (gear hash).
  double cdc_bps = 1.0e9;

  // CPU-side constants ------------------------------------------------------
  // Per-fingerprint cost of one HMERGE operation.  Calibrated to the
  // dispatched SIMD merge kernel (~400-600M tags/s planned merge plus the
  // per-entry copy/reconcile walk ≈ 100M entries/s end to end; the 40ns
  // figure predates the kernel and matched the scalar full-fingerprint
  // two-pointer loop).
  double merge_entry_cost_s = 10.0e-9;
  // Fixed per-chunk bookkeeping during local dedup (map insert, metadata).
  double chunk_overhead_s = 120.0e-9;

  [[nodiscard]] int node_of(int rank) const noexcept {
    return rank / std::max(1, ranks_per_node);
  }
  [[nodiscard]] int node_count(int nranks) const noexcept {
    const int rpn = std::max(1, ranks_per_node);
    return (nranks + rpn - 1) / rpn;
  }
  [[nodiscard]] bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }

  // Point-to-point message transfer time (latency + serialization).
  [[nodiscard]] double message_time(int src, int dst,
                                    std::uint64_t bytes) const noexcept {
    const double bw = same_node(src, dst) ? mem_bandwidth_bps : net_bandwidth_bps;
    return net_latency_s + static_cast<double>(bytes) / bw;
  }

  // Shamrock-like defaults at paper scale.
  static ClusterConfig shamrock() noexcept { return ClusterConfig{}; }
};

// Per-rank simulated clock.  Monotone; collectives align clocks across
// ranks (see simmpi::Comm).
class SimClock {
 public:
  [[nodiscard]] double now() const noexcept { return now_s_; }
  void advance(double seconds) noexcept {
    if (seconds > 0) now_s_ += seconds;
  }
  // Clamp to `t` if `t` is in the future (message arrival, barrier release).
  void at_least(double t) noexcept { now_s_ = std::max(now_s_, t); }
  void reset(double t = 0.0) noexcept { now_s_ = t; }

 private:
  double now_s_ = 0.0;
};

// Splits a time interval into named phase contributions; used by DumpStats.
struct PhaseBreakdown {
  double hash_s = 0.0;       // chunking + fingerprinting + local dedup
  double reduction_s = 0.0;  // collective HMERGE allreduce + broadcast
  double planning_s = 0.0;   // load allgather, shuffle, offset calculation
  double exchange_s = 0.0;   // one-sided chunk puts between partners
  double storage_s = 0.0;    // commit to the local storage device

  [[nodiscard]] double total() const noexcept {
    return hash_s + reduction_s + planning_s + exchange_s + storage_s;
  }

  PhaseBreakdown& operator+=(const PhaseBreakdown& o) noexcept {
    hash_s += o.hash_s;
    reduction_s += o.reduction_s;
    planning_s += o.planning_s;
    exchange_s += o.exchange_s;
    storage_s += o.storage_s;
    return *this;
  }
};

}  // namespace collrep::sim
