#include "apps/synth.hpp"

#include <cstring>
#include <stdexcept>

#include "apps/rng.hpp"

namespace collrep::apps {

namespace {

bool is_heavy(int rank, int nranks, const SynthSpec& spec) {
  const auto heavy_count = static_cast<int>(
      spec.heavy_rank_fraction * nranks + 0.999999);
  return rank < heavy_count;
}

void fill_chunk(std::span<std::uint8_t> out, std::uint64_t stream_seed) {
  SplitMix64 rng(stream_seed);
  rng.fill(out);
}

}  // namespace

std::size_t synth_chunk_count(int rank, int nranks, const SynthSpec& spec) {
  if (is_heavy(rank, nranks, spec)) {
    return static_cast<std::size_t>(
        static_cast<double>(spec.chunks) * spec.heavy_multiplier);
  }
  return spec.chunks;
}

std::vector<std::uint8_t> synth_dataset(int rank, int nranks,
                                        const SynthSpec& spec) {
  if (spec.chunk_bytes == 0) {
    throw std::invalid_argument("synth: chunk_bytes must be positive");
  }
  const std::size_t count = synth_chunk_count(rank, nranks, spec);
  std::vector<std::uint8_t> data(count * spec.chunk_bytes);

  SplitMix64 category_rng(mix_seed(spec.seed, 0xC47E607Bull,
                                   static_cast<std::uint64_t>(rank)));
  const std::size_t heavy_extra =
      count > spec.chunks ? count - spec.chunks : 0;

  for (std::size_t c = 0; c < count; ++c) {
    std::span<std::uint8_t> out{data.data() + c * spec.chunk_bytes,
                                spec.chunk_bytes};
    // Extra chunks on heavy ranks are always rank-unique (the skew is in
    // *unique* data, like the 90 extra chunks in the paper's Fig. 2).
    const bool forced_unique = c >= count - heavy_extra;
    const double roll = category_rng.next_double();

    if (!forced_unique && c > 0 && roll < spec.local_dup) {
      // Repeat an earlier local chunk.
      const auto src = static_cast<std::size_t>(
          category_rng.next() % static_cast<std::uint64_t>(c));
      std::memcpy(out.data(), data.data() + src * spec.chunk_bytes,
                  spec.chunk_bytes);
    } else if (!forced_unique &&
               roll < spec.local_dup + (1.0 - spec.local_dup) *
                                           spec.global_shared) {
      // Draw from the global pool: identical bytes on every rank that
      // draws the same pool id.
      const auto pool_id =
          category_rng.next() % std::max<std::uint32_t>(1, spec.global_pool);
      fill_chunk(out, mix_seed(spec.seed, 0x6104A11Dull, pool_id));
    } else {
      fill_chunk(out, mix_seed(spec.seed ^ 0x5EEDull,
                               static_cast<std::uint64_t>(rank),
                               static_cast<std::uint64_t>(c)));
    }
  }
  return data;
}

}  // namespace collrep::apps
