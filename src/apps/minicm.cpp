#include "apps/minicm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "simmpi/collectives.hpp"

namespace collrep::apps {

MiniCmModel::MiniCmModel(simmpi::Comm& comm, ftrt::TrackedArena& arena,
                         const MiniCmConfig& config)
    : comm_(comm), config_(config) {
  if (config.nx < 4 || config.ny < 4 || config.nz < 2) {
    throw std::invalid_argument("MiniCmModel: domain too small");
  }
  cells_ = static_cast<std::size_t>(config.nx) * config.ny * config.nz;

  u_ = arena.allocate_array<double>(cells_);
  v_ = arena.allocate_array<double>(cells_);
  w_ = arena.allocate_array<double>(cells_);
  theta_ = arena.allocate_array<double>(cells_);
  pressure_ = arena.allocate_array<double>(cells_);
  base_theta_ = arena.allocate_array<double>(cells_);
  base_pressure_ = arena.allocate_array<double>(cells_);
  coef_ = arena.allocate_array<double>(cells_);
  stage_theta_ = arena.allocate_array<double>(cells_);
  stage_u_ = arena.allocate_array<double>(cells_);
  scratch_a_ = arena.allocate_array<double>(cells_);
  scratch_b_ = arena.allocate_array<double>(cells_);
  // CM1 preallocates its tendency and diagnostic arrays for the lifetime
  // of the run; they are zero outside the step that fills them.
  constexpr int kWorkspaceFields = 8;
  workspace_.reserve(kWorkspaceFields);
  for (int i = 0; i < kWorkspaceFields; ++i) {
    workspace_.push_back(arena.allocate_array<double>(cells_));
  }

  init_fields();
}

void MiniCmModel::init_fields() {
  const int nx = config_.nx;
  const int ny = config_.ny;
  const int nz = config_.nz;
  // Domain decomposition as in CM1: ranks tile a global horizontal grid
  // and the hurricane sits at the global domain center.  Ranks near the
  // eye carry intense, hard-to-deduplicate fields; far-field ranks are
  // quiescent (exactly the base state) — the natural send-load skew that
  // the paper's load-aware partner selection targets.
  const int grid = static_cast<int>(std::ceil(std::sqrt(comm_.size())));
  const int tile_x = comm_.rank() % grid;
  const int tile_y = comm_.rank() / grid;
  const double center = grid / 2.0;  // storm center, in tile units

  // Sub-grid texture: small-scale structure that is a function of *local*
  // coordinates only — identical on every rank (weak-scaled idealized
  // environment) but varying from cell to cell, so it defeats page-level
  // dedup within a rank while remaining a natural cross-rank duplicate.
  // Real CM1 fields carry exactly this kind of turbulence-scale variation
  // (paper: local-dedup leaves ~30% unique, coll-dedup ~5%).
  const auto texture = [&](int x, int y, int z) {
    std::uint64_t h = static_cast<std::uint64_t>(x) * 0x9E3779B97F4A7C15ull ^
                      static_cast<std::uint64_t>(y) * 0xC2B2AE3D27D4EB4Full ^
                      static_cast<std::uint64_t>(z) * 0x165667B19E3779F9ull;
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5;
  };

  for (int z = 0; z < nz; ++z) {
    const double height = static_cast<double>(z) / nz;
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const std::size_t i = idx(x, y, z);
        // Base state: hydrostatic profile, identical across ranks.
        base_theta_[i] = 300.0 + 40.0 * height;
        base_pressure_[i] = 1000.0 * std::exp(-1.2 * height);
        coef_[i] = 1.0 / (1.0 + 2.0 * height);

        // Storm-relative coordinates (tile units from the global center).
        const double dx = tile_x + static_cast<double>(x) / nx - center;
        const double dy = tile_y + static_cast<double>(y) / ny - center;
        const double r = std::sqrt(dx * dx + dy * dy) + 1e-9;
        // Axisymmetric vortex (Bryan-Rotunno-like Rankine profile) with
        // compact support: beyond ~1.5 tiles the environment is exactly
        // quiescent.
        const double vt =
            r < 1.5
                ? (r < 0.3 ? r / 0.3 : 0.3 / r) * 45.0 * (1.0 - 0.5 * height)
                : 0.0;
        const double tex = texture(x, y, z);
        u_[i] = -vt * dy / r + 0.4 * tex;
        v_[i] = vt * dx / r + 0.4 * texture(x + 1, y, z);
        w_[i] = 0.02 * texture(x, y + 1, z);
        const double bump = r < 1.5 ? std::exp(-2.0 * r * r) : 0.0;
        theta_[i] = base_theta_[i] + 6.0 * bump + 0.3 * tex;
        pressure_[i] = base_pressure_[i] - 25.0 * bump +
                       0.2 * texture(x, y, z + 1);
      }
    }
  }
  std::fill(scratch_a_.begin(), scratch_a_.end(), 0.0);
  std::fill(scratch_b_.begin(), scratch_b_.end(), 0.0);
}

double MiniCmModel::step(int steps) {
  const int nx = config_.nx;
  const int ny = config_.ny;
  const int nz = config_.nz;
  const double nu = config_.diffusion;
  double max_wind = 0.0;

  for (int s = 0; s < steps; ++s) {
    // Diffuse theta and pressure through scratch (upwind-free, stable for
    // nu*dt < 1/6); scratch arrays are rezeroed afterwards so checkpoints
    // see them as zero pages.
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
          const std::size_t i = idx(x, y, z);
          const auto at = [&](std::span<const double> f, int ax, int ay,
                              int az) {
            ax = std::clamp(ax, 0, nx - 1);
            ay = std::clamp(ay, 0, ny - 1);
            az = std::clamp(az, 0, nz - 1);
            return f[idx(ax, ay, az)];
          };
          const double lap_t =
              at(theta_, x - 1, y, z) + at(theta_, x + 1, y, z) +
              at(theta_, x, y - 1, z) + at(theta_, x, y + 1, z) +
              at(theta_, x, y, z - 1) + at(theta_, x, y, z + 1) -
              6.0 * theta_[i];
          const double lap_p =
              at(pressure_, x - 1, y, z) + at(pressure_, x + 1, y, z) +
              at(pressure_, x, y - 1, z) + at(pressure_, x, y + 1, z) +
              at(pressure_, x, y, z - 1) + at(pressure_, x, y, z + 1) -
              6.0 * pressure_[i];
          scratch_a_[i] = theta_[i] + nu * coef_[i] * lap_t;
          scratch_b_[i] = pressure_[i] + nu * coef_[i] * lap_p;
        }
      }
    }
    std::memcpy(theta_.data(), scratch_a_.data(), cells_ * sizeof(double));
    std::memcpy(pressure_.data(), scratch_b_.data(), cells_ * sizeof(double));

    // Winds spin down toward gradient balance; vertical motion responds
    // to buoyancy.
    double local_max = 0.0;
    for (std::size_t i = 0; i < cells_; ++i) {
      const double buoy = (theta_[i] - base_theta_[i]) / base_theta_[i];
      w_[i] = 0.98 * w_[i] + 9.81 * config_.dt * 0.01 * buoy;
      u_[i] *= 0.999;
      v_[i] *= 0.999;
      const double wind =
          std::sqrt(u_[i] * u_[i] + v_[i] * v_[i] + w_[i] * w_[i]);
      local_max = std::max(local_max, wind);
    }
    // CFL check is a global reduction every step (as in CM1).
    max_wind = simmpi::allreduce_max(comm_, local_max);

    std::fill(scratch_a_.begin(), scratch_a_.end(), 0.0);
    std::fill(scratch_b_.begin(), scratch_b_.end(), 0.0);
    // Stage fields for the (simulated) output path, as CM1 does before a
    // history write.
    std::memcpy(stage_theta_.data(), theta_.data(), cells_ * sizeof(double));
    std::memcpy(stage_u_.data(), u_.data(), cells_ * sizeof(double));
    ++steps_done_;

    // ~60 flops per cell per step.
    comm_.charge(60.0 * static_cast<double>(cells_) /
                 comm_.cluster().flops_per_second);
  }
  return max_wind;
}

double MiniCmModel::checksum() const noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < cells_; ++i) {
    sum += theta_[i] * 1e-3 + u_[i] + v_[i] + w_[i] + pressure_[i] * 1e-4;
  }
  return sum;
}

}  // namespace collrep::apps
