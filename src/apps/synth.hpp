// Synthetic workload generator with exact redundancy knobs.
//
// The real mini-apps produce *natural* redundancy; this generator produces
// *controlled* redundancy so tests and ablations can dial in a target
// local-duplicate fraction, a cross-rank shared fraction, and a send-load
// skew (the Fig. 2 scenario: a few heavy ranks, many light ones).
#pragma once

#include <cstdint>
#include <vector>

namespace collrep::apps {

struct SynthSpec {
  std::size_t chunk_bytes = 4096;
  std::size_t chunks = 256;  // baseline chunks per rank

  // Fraction of chunks that repeat an earlier chunk of the same rank.
  double local_dup = 0.25;
  // Fraction of the remaining chunks drawn from a global pool shared by
  // all ranks (the "naturally distributed duplicates").
  double global_shared = 0.5;
  std::uint32_t global_pool = 1024;  // distinct shared contents

  // The first ceil(heavy_rank_fraction * nranks) ranks carry
  // heavy_multiplier times the baseline chunk count, all of it unique.
  double heavy_rank_fraction = 0.0;
  double heavy_multiplier = 1.0;

  std::uint64_t seed = 1;
};

// Number of chunks rank `rank` will produce under `spec`.
[[nodiscard]] std::size_t synth_chunk_count(int rank, int nranks,
                                            const SynthSpec& spec);

// Deterministic dataset for `rank`; same (spec, rank, nranks) always
// yields the same bytes.
[[nodiscard]] std::vector<std::uint8_t> synth_dataset(int rank, int nranks,
                                                      const SynthSpec& spec);

}  // namespace collrep::apps
