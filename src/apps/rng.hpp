// Deterministic splitmix64 stream used by the workload generators; fixed
// seeds make every experiment bit-reproducible across runs and hosts.
#pragma once

#include <cstdint>
#include <span>

namespace collrep::apps {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  void fill(std::span<std::uint8_t> out) noexcept {
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
      const std::uint64_t v = next();
      for (int b = 0; b < 8; ++b) {
        out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
    if (i < out.size()) {
      const std::uint64_t v = next();
      for (int b = 0; b < 8 && i < out.size(); ++b) {
        out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
  }

 private:
  std::uint64_t state_;
};

// One-shot mix of several values into a stream seed.
constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c = 0) noexcept {
  SplitMix64 s(a ^ (b * 0xD1B54A32D192ED03ull) ^
               (c * 0x94D049BB133111EBull));
  return s.next();
}

}  // namespace collrep::apps
