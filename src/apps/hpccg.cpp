#include "apps/hpccg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simmpi/collectives.hpp"

namespace collrep::apps {

HpccgSolver::HpccgSolver(simmpi::Comm& comm, ftrt::TrackedArena& arena,
                         const HpccgConfig& config)
    : comm_(comm), config_(config) {
  if (config.nx < 2 || config.ny < 2 || config.nz < 2) {
    throw std::invalid_argument("HpccgSolver: sub-block must be >= 2^3");
  }
  nrows_ = static_cast<std::uint64_t>(config.nx) * config.ny * config.nz;

  vals_ = arena.allocate_array<double>(nrows_ * 27);
  col_idx_ = arena.allocate_array<std::int32_t>(nrows_ * 27);
  row_off_ = arena.allocate_array<std::int32_t>(nrows_ + 1);
  row_nnz_ = arena.allocate_array<std::int32_t>(nrows_);
  x_ = arena.allocate_array<double>(nrows_);
  b_ = arena.allocate_array<double>(nrows_);
  r_ = arena.allocate_array<double>(nrows_);
  p_ = arena.allocate_array<double>(nrows_);
  ap_ = arena.allocate_array<double>(nrows_);

  generate_problem();
}

void HpccgSolver::generate_problem() {
  const int nx = config_.nx;
  const int ny = config_.ny;
  const int nz = config_.nz;
  // Weak scaling stacks sub-blocks along z; the global z offset seeds the
  // right-hand side so vector pages differ per rank while the matrix,
  // being locally indexed, is byte-identical across ranks.
  const std::int64_t global_z0 =
      static_cast<std::int64_t>(comm_.rank()) * nz;

  // Mantevo HPCCG reserves a fixed 27-entry stride per row and fills only
  // the in-bounds neighbours, leaving the tail slots untouched (zero in
  // our arena).  Keeping that layout matters for the dedup experiments:
  // the padded slots and the repeating interior-row pattern are a large
  // part of HPCCG's natural page-level redundancy.
  //
  // Neighbour validity along z follows the *global* chimney domain, as in
  // the real weak-scaled HPCCG: only the first and last rank touch the
  // physical z boundary, so their matrices differ from the (identical)
  // interior-rank matrices — this is the natural send-load skew the
  // paper's load-aware partner selection exploits.  Halo columns crossing
  // into a neighbouring rank's block are folded onto the local boundary
  // cell (the matvec stays sub-block local; see DESIGN.md §1).
  const std::int64_t global_nz =
      static_cast<std::int64_t>(comm_.size()) * nz;
  std::size_t nnz = 0;
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const std::size_t row =
            (static_cast<std::size_t>(iz) * ny + iy) * nx + ix;
        const std::size_t base = row * 27;
        row_off_[row] = static_cast<std::int32_t>(base);
        std::size_t slot = 0;
        for (int sz = -1; sz <= 1; ++sz) {
          for (int sy = -1; sy <= 1; ++sy) {
            for (int sx = -1; sx <= 1; ++sx) {
              const int jx = ix + sx;
              const int jy = iy + sy;
              const int jz = iz + sz;
              if (jx < 0 || jx >= nx || jy < 0 || jy >= ny) continue;
              const std::int64_t jz_global = global_z0 + jz;
              if (jz_global < 0 || jz_global >= global_nz) continue;
              // Fold halo neighbours onto the local boundary plane.  The
              // stencil weight follows the original neighbour (so a folded
              // self-reference stays -1), which keeps the operator
              // symmetric and weakly diagonally dominant.
              const int jz_local = std::clamp(jz, 0, nz - 1);
              const std::size_t col =
                  (static_cast<std::size_t>(jz_local) * ny + jy) * nx + jx;
              vals_[base + slot] =
                  (sx == 0 && sy == 0 && sz == 0) ? 27.0 : -1.0;
              col_idx_[base + slot] = static_cast<std::int32_t>(col);
              ++slot;
            }
          }
        }
        row_nnz_[row] = static_cast<std::int32_t>(slot);
        nnz += slot;
        // HPCCG's right-hand side is 27 - nnz_row; we add a small global-z
        // dependence so weak-scaled ranks carry distinct vector content.
        b_[row] = 27.0 - static_cast<double>(slot) +
                  1e-3 * std::sin(static_cast<double>(global_z0 + iz));
        x_[row] = 0.0;
      }
    }
  }
  row_off_[nrows_] = static_cast<std::int32_t>(nrows_ * 27);
  nnz_ = nnz;
}

void HpccgSolver::matvec(std::span<const double> in,
                         std::span<double> out) const {
  for (std::size_t row = 0; row < nrows_; ++row) {
    double sum = 0.0;
    const auto begin = static_cast<std::size_t>(row_off_[row]);
    const auto end = begin + static_cast<std::size_t>(row_nnz_[row]);
    for (std::size_t k = begin; k < end; ++k) {
      sum += vals_[k] * in[static_cast<std::size_t>(col_idx_[k])];
    }
    out[row] = sum;
  }
}

double HpccgSolver::dot(std::span<const double> a,
                        std::span<const double> b) const {
  double local = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
  // Global reduction, like HPCCG's ddot (uses MPI_Allreduce).
  return simmpi::allreduce_sum(comm_, local);
}

double HpccgSolver::iterate(int iters) {
  if (!cg_initialized_) {
    // r = b - A*x ; p = r
    matvec(x_, ap_);
    for (std::size_t i = 0; i < nrows_; ++i) {
      r_[i] = b_[i] - ap_[i];
      p_[i] = r_[i];
    }
    rtrans_ = dot(r_, r_);
    cg_initialized_ = true;
  }

  const auto& cluster = comm_.cluster();
  for (int it = 0; it < iters; ++it) {
    matvec(p_, ap_);
    const double p_ap = dot(p_, ap_);
    if (p_ap == 0.0) break;
    const double alpha = rtrans_ / p_ap;
    for (std::size_t i = 0; i < nrows_; ++i) {
      x_[i] += alpha * p_[i];
      r_[i] -= alpha * ap_[i];
    }
    const double rtrans_new = dot(r_, r_);
    const double beta = rtrans_new / rtrans_;
    rtrans_ = rtrans_new;
    for (std::size_t i = 0; i < nrows_; ++i) {
      p_[i] = r_[i] + beta * p_[i];
    }
    ++iters_done_;

    // 2 flops per nonzero (matvec) + ~10 per row (axpys and dots).
    const double flops =
        2.0 * static_cast<double>(nnz_) + 10.0 * static_cast<double>(nrows_);
    comm_.charge(flops / cluster.flops_per_second);
  }
  return std::sqrt(rtrans_);
}

}  // namespace collrep::apps
