// MiniCM: a CM1-profile atmospheric stencil model (paper §V-B2 substitute).
//
// CM1 is a 3D non-hydrostatic cloud model; what matters for the paper is
// its checkpoint memory image: per-rank sub-domains of a weak-scaled
// hurricane simulation where prognostic fields mutate every step while a
// large base state and coefficient tables stay constant — and, under weak
// scaling, byte-identical across ranks (~500 MB changing out of ~800 MB in
// the paper; MiniCM keeps the same proportions at laptop scale).
//
// The dynamics are a stable advection-diffusion update of five prognostic
// fields around an axisymmetric vortex (Bryan-Rotunno-style initial
// condition), with a global CFL reduction per step.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ftrt/tracked_arena.hpp"
#include "simmpi/comm.hpp"

namespace collrep::apps {

struct MiniCmConfig {
  int nx = 32;  // per-rank horizontal points (paper: 200x200)
  int ny = 32;
  int nz = 12;  // vertical levels
  double dt = 2.0;
  double diffusion = 0.04;
};

class MiniCmModel {
 public:
  MiniCmModel(simmpi::Comm& comm, ftrt::TrackedArena& arena,
              const MiniCmConfig& config);

  // Advances `steps` time steps (collective: one CFL allreduce per step),
  // charging simulated stencil time.  Returns the global max wind speed.
  double step(int steps);

  [[nodiscard]] int steps_done() const noexcept { return steps_done_; }
  [[nodiscard]] std::span<const double> theta() const noexcept {
    return theta_;
  }
  // Field checksum for determinism tests.
  [[nodiscard]] double checksum() const noexcept;

 private:
  void init_fields();
  [[nodiscard]] std::size_t idx(int x, int y, int z) const noexcept {
    return (static_cast<std::size_t>(z) * config_.ny + y) * config_.nx + x;
  }

  simmpi::Comm& comm_;
  MiniCmConfig config_;
  std::size_t cells_ = 0;
  int steps_done_ = 0;

  // Prognostic fields (mutate each step).
  std::span<double> u_, v_, w_, theta_, pressure_;
  // Base state + coefficient tables (constant, identical across ranks).
  std::span<double> base_theta_, base_pressure_, coef_;
  // Output staging copies (CM1 stages fields for netCDF writes; exact
  // duplicates of live fields — pure local redundancy).
  std::span<double> stage_theta_, stage_u_;
  // Scratch (zeroed between uses: natural zero pages).
  std::span<double> scratch_a_, scratch_b_;
  // Preallocated tendency/diagnostic workspace (CM1 keeps dozens of 3D
  // arrays allocated for its lifetime; most are zero between steps).
  std::vector<std::span<double>> workspace_;
};

}  // namespace collrep::apps
