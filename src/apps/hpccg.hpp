// Mini-HPCCG: a weak-scaling conjugate-gradient benchmark on a 27-point
// finite-difference stencil, reimplementing the Mantevo HPCCG mini-app the
// paper checkpoints (§V-B1).
//
// Each rank owns an nx*ny*nz sub-block of a 3D chimney domain stacked
// along z.  The sparse matrix (CSR) is generated exactly like HPCCG's
// generate_matrix: 27.0 on the diagonal, -1.0 for the up-to-26 neighbours.
// The solve runs real CG iterations; dot products are global (allreduce),
// the matvec is sub-block local (the paper-relevant property is the memory
// image, not halo accuracy — see DESIGN.md §1).
//
// Redundancy profile (what makes it a dedup workload): in weak scaling the
// CSR values and column indices are identical on every rank (natural
// cross-rank duplicates), while b/x/r/p/Ap depend on global coordinates
// and iteration history (rank-unique pages).
#pragma once

#include <cstdint>
#include <span>

#include "ftrt/tracked_arena.hpp"
#include "simmpi/comm.hpp"

namespace collrep::apps {

struct HpccgConfig {
  int nx = 24;
  int ny = 24;
  int nz = 24;
  int max_iters = 127;  // paper: 127 CG iterations
};

class HpccgSolver {
 public:
  // Allocates the problem from `arena` so ftrt can checkpoint it.
  HpccgSolver(simmpi::Comm& comm, ftrt::TrackedArena& arena,
              const HpccgConfig& config);

  // Runs `iters` CG iterations (collective), charging simulated solver
  // time; returns the global residual norm after the last iteration.
  double iterate(int iters);

  [[nodiscard]] int iterations_done() const noexcept { return iters_done_; }
  [[nodiscard]] std::uint64_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] std::uint64_t nnz() const noexcept { return nnz_; }
  [[nodiscard]] std::span<const double> solution() const noexcept {
    return x_;
  }

 private:
  void generate_problem();
  void matvec(std::span<const double> in, std::span<double> out) const;
  [[nodiscard]] double dot(std::span<const double> a,
                           std::span<const double> b) const;

  simmpi::Comm& comm_;
  HpccgConfig config_;
  std::uint64_t nrows_ = 0;
  std::uint64_t nnz_ = 0;
  int iters_done_ = 0;
  bool cg_initialized_ = false;
  double rtrans_ = 0.0;

  // CSR matrix + CG vectors, all arena-resident (checkpointable).
  std::span<double> vals_;
  std::span<std::int32_t> col_idx_;
  std::span<std::int32_t> row_off_;   // fixed stride: row i starts at 27*i
  std::span<std::int32_t> row_nnz_;   // filled entries per row
  std::span<double> x_;
  std::span<double> b_;
  std::span<double> r_;
  std::span<double> p_;
  std::span<double> ap_;
};

}  // namespace collrep::apps
