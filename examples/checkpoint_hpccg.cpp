// Checkpoint-restart for the HPCCG mini-app (paper §V-B1 workflow).
//
// Runs a weak-scaled conjugate-gradient solve under the ftrt checkpoint
// runtime: all solver memory lives in a TrackedArena, a checkpoint fires
// mid-solve through the coll-dedup DUMP_OUTPUT, two storage devices are
// then "lost", and the run restarts from the surviving replicas.
//
// Run: ./build/examples/checkpoint_hpccg [ranks]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/hpccg.hpp"
#include "core/collrep.hpp"
#include "ftrt/checkpoint.hpp"

using namespace collrep;

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 8;
  constexpr int kReplication = 3;

  std::vector<chunk::ChunkStore> stores(static_cast<std::size_t>(nranks));
  std::vector<std::vector<std::uint8_t>> checkpoint_image(
      static_cast<std::size_t>(nranks));

  simmpi::Runtime runtime(nranks);
  runtime.run([&](simmpi::Comm& comm) {
    const int rank = comm.rank();
    ftrt::TrackedArena arena(4096);

    apps::HpccgConfig solver_cfg;
    solver_cfg.nx = solver_cfg.ny = solver_cfg.nz = 10;
    apps::HpccgSolver solver(comm, arena, solver_cfg);

    ftrt::CheckpointConfig ckpt_cfg;
    ckpt_cfg.dump.chunk_bytes = 512;  // scaled page size for the mini domain
    ckpt_cfg.replication_factor = kReplication;
    ckpt_cfg.interval = 20;  // checkpoint every 20 CG iterations
    ckpt_cfg.first_iteration = 20;
    ftrt::CheckpointRuntime ckpt(comm, stores[static_cast<std::size_t>(rank)],
                                 arena, ckpt_cfg);

    double residual = 0.0;
    for (int iter = 1; iter <= 60; ++iter) {
      residual = solver.iterate(1);
      if (const auto stats = ckpt.maybe_checkpoint(iter)) {
        if (rank == 0) {
          std::printf(
              "iter %3d: checkpoint #%llu  %llu chunks/rank, "
              "%llu discarded as natural replicas, dump %.6f s (simulated)\n",
              iter,
              static_cast<unsigned long long>(ckpt.checkpoints_taken()),
              static_cast<unsigned long long>(stats->chunk_count),
              static_cast<unsigned long long>(stats->discarded_chunks),
              stats->total_time_s);
        }
      }
    }
    if (rank == 0) {
      std::printf("CG finished: residual %.3e after %d iterations, "
                  "%llu checkpoints taken\n",
                  residual, solver.iterations_done(),
                  static_cast<unsigned long long>(ckpt.checkpoints_taken()));
    }
    // Remember the protected image for post-restart verification.
    const auto snapshot = arena.snapshot();
    auto& image = checkpoint_image[static_cast<std::size_t>(rank)];
    for (std::size_t s = 0; s < snapshot.segment_count(); ++s) {
      image.insert(image.end(), snapshot.segment(s).begin(),
                   snapshot.segment(s).end());
    }
  });

  // Disaster strikes: K-1 nodes lose their local storage.
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  ftrt::FailureInjector injector(/*seed=*/7);
  const auto victims = injector.kill_stores(ptrs, kReplication - 1);
  std::printf("failed stores:");
  for (const int v : victims) std::printf(" %d", v);
  std::printf("\n");

  // Restart: every rank rebuilds its last checkpoint from the survivors.
  std::uint64_t remote_chunks = 0;
  for (int rank = 0; rank < nranks; ++rank) {
    const auto restored = core::restore_rank(ptrs, rank);
    remote_chunks += restored.chunks_from_remote_stores;
    std::vector<std::uint8_t> rebuilt;
    for (const auto& segment : restored.segments) {
      rebuilt.insert(rebuilt.end(), segment.begin(), segment.end());
    }
    if (rebuilt != checkpoint_image[static_cast<std::size_t>(rank)]) {
      std::printf("rank %d: restored image differs from checkpoint\n", rank);
      return 1;
    }
  }
  std::printf("all %d ranks restored (%llu chunks fetched from partner "
              "stores)\n",
              nranks, static_cast<unsigned long long>(remote_chunks));
  return 0;
}
