// Idealized hurricane simulation with periodic checkpoints (paper §V-B2
// workflow): the MiniCM stencil model runs 70 steps with a checkpoint
// every 30 (the paper's CM1 schedule), once per strategy, and reports the
// unique-content and traffic numbers that motivate coll-dedup.
//
// Run: ./build/examples/hurricane_minicm [ranks]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/minicm.hpp"
#include "core/collrep.hpp"
#include "ftrt/checkpoint.hpp"

using namespace collrep;

namespace {

struct StrategyReport {
  core::GlobalDumpStats global;
  double checkpoint_time_s = 0.0;
  double max_wind = 0.0;
};

StrategyReport run_strategy(int nranks, core::Strategy strategy) {
  StrategyReport report;
  std::vector<chunk::ChunkStore> stores;
  for (int r = 0; r < nranks; ++r) {
    stores.emplace_back(chunk::StoreMode::kAccounting);
  }

  simmpi::Runtime runtime(nranks);
  runtime.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    apps::MiniCmConfig model_cfg;  // 24x24x8 columns per rank
    apps::MiniCmModel model(comm, arena, model_cfg);

    ftrt::CheckpointConfig ckpt_cfg;
    ckpt_cfg.dump.strategy = strategy;
    ckpt_cfg.dump.chunk_bytes = 512;
    ckpt_cfg.dump.payload_exchange = false;  // accounting stores
    ckpt_cfg.replication_factor = 3;
    ckpt_cfg.interval = 30;  // paper: checkpoint every 30 time-steps
    ckpt_cfg.first_iteration = 30;
    ftrt::CheckpointRuntime ckpt(
        comm, stores[static_cast<std::size_t>(comm.rank())], arena, ckpt_cfg);

    double wind = 0.0;
    double ckpt_time = 0.0;
    for (int step = 1; step <= 70; ++step) {
      wind = model.step(1);
      if (const auto stats = ckpt.maybe_checkpoint(step)) {
        ckpt_time += stats->total_time_s;
      }
    }
    const auto global =
        core::Dumper::collect(comm, ckpt.history().back());
    if (comm.rank() == 0) {
      report.global = global;
      report.checkpoint_time_s = ckpt_time;
      report.max_wind = wind;
    }
  });
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 16;

  std::printf("MiniCM hurricane, %d ranks, 70 steps, checkpoint every 30, "
              "K = 3\n\n", nranks);
  std::printf("%-12s %16s %16s %18s\n", "strategy", "unique content",
              "repl. traffic", "checkpoint time");
  for (const auto strategy :
       {core::Strategy::kNoDedup, core::Strategy::kLocalDedup,
        core::Strategy::kCollDedup}) {
    const auto report = run_strategy(nranks, strategy);
    std::printf("%-12s %13.2f MB %13.2f MB %16.6f s\n",
                std::string(core::to_string(strategy)).c_str(),
                report.global.total_unique_bytes / 1e6,
                report.global.total_sent_bytes / 1e6,
                report.checkpoint_time_s);
  }
  std::printf("\n(unique content and traffic shrink no-dedup -> local-dedup "
              "-> coll-dedup,\nexactly the Figure 3(a) effect)\n");
  return 0;
}
