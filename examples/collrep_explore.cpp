// collrep_explore: command-line driver for custom what-if runs.
//
//   ./build/examples/collrep_explore [options]
//     --app hpccg|cm1|synth     workload                  (default synth)
//     --ranks N                 number of ranks           (default 32)
//     --k K                     replication factor        (default 3)
//     --strategy full|local|coll                          (default coll)
//     --chunk BYTES             chunk size                (default 512)
//     --f LOG2                  top-F threshold, log2     (default 17)
//     --no-shuffle              disable load-aware rank shuffling
//     --node-aware              enable topology-aware partners
//     --cdc                     content-defined chunking
//     --hash sha1|xx64|fnv64|crc32c                       (default sha1)
//
// Prints the full DumpStats roll-up: unique content, traffic, per-phase
// simulated times, load balance.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/hpccg.hpp"
#include "apps/minicm.hpp"
#include "apps/synth.hpp"
#include "core/collrep.hpp"
#include "ftrt/tracked_arena.hpp"

using namespace collrep;

namespace {

struct Options {
  std::string app = "synth";
  int ranks = 32;
  int k = 3;
  core::Strategy strategy = core::Strategy::kCollDedup;
  std::size_t chunk = 512;
  std::uint32_t f_log2 = 17;
  bool shuffle = true;
  bool node_aware = false;
  bool cdc = false;
  hash::HashKind hash = hash::HashKind::kSha1;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--app hpccg|cm1|synth] [--ranks N] [--k K]\n"
              "          [--strategy full|local|coll] [--chunk BYTES]\n"
              "          [--f LOG2] [--no-shuffle] [--node-aware] [--cdc]\n"
              "          [--hash sha1|xx64|fnv64|crc32c]\n",
              argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--app") {
      opt.app = value();
    } else if (arg == "--ranks") {
      opt.ranks = std::atoi(value().c_str());
    } else if (arg == "--k") {
      opt.k = std::atoi(value().c_str());
    } else if (arg == "--strategy") {
      const auto s = value();
      opt.strategy = s == "full"    ? core::Strategy::kNoDedup
                     : s == "local" ? core::Strategy::kLocalDedup
                     : s == "coll"  ? core::Strategy::kCollDedup
                                    : (usage(argv[0]), core::Strategy::kCollDedup);
    } else if (arg == "--chunk") {
      opt.chunk = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--f") {
      opt.f_log2 = static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (arg == "--no-shuffle") {
      opt.shuffle = false;
    } else if (arg == "--node-aware") {
      opt.node_aware = true;
    } else if (arg == "--cdc") {
      opt.cdc = true;
    } else if (arg == "--hash") {
      opt.hash = hash::parse_hash_kind(value());
    } else {
      usage(argv[0]);
    }
  }
  if (opt.ranks < 1 || opt.k < 1 || opt.chunk == 0) usage(argv[0]);
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  std::vector<chunk::ChunkStore> stores;
  for (int r = 0; r < opt.ranks; ++r) {
    stores.emplace_back(chunk::StoreMode::kAccounting);
  }

  core::DumpStats rank0{};
  core::GlobalDumpStats global{};

  simmpi::Runtime runtime(opt.ranks);
  runtime.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    chunk::Dataset dataset;
    std::vector<std::uint8_t> synth_data;

    if (opt.app == "hpccg") {
      apps::HpccgConfig cfg;
      cfg.nx = cfg.ny = cfg.nz = 12;
      apps::HpccgSolver solver(comm, arena, cfg);
      (void)solver.iterate(5);
      dataset = arena.snapshot();
    } else if (opt.app == "cm1") {
      apps::MiniCmConfig cfg;
      apps::MiniCmModel model(comm, arena, cfg);
      (void)model.step(5);
      dataset = arena.snapshot();
    } else if (opt.app == "synth") {
      apps::SynthSpec spec;
      spec.chunk_bytes = opt.chunk;
      spec.chunks = 128;
      spec.local_dup = 0.25;
      spec.global_shared = 0.5;
      synth_data = apps::synth_dataset(comm.rank(), opt.ranks, spec);
      dataset.add_segment(synth_data);
    } else {
      throw std::invalid_argument("unknown --app " + opt.app);
    }

    core::DumpConfig cfg;
    cfg.strategy = opt.strategy;
    cfg.chunk_bytes = opt.chunk;
    cfg.threshold_f = 1u << opt.f_log2;
    cfg.rank_shuffle = opt.shuffle;
    cfg.node_aware_partners = opt.node_aware;
    cfg.hash_kind = opt.hash;
    cfg.payload_exchange = false;
    if (opt.cdc) {
      cfg.chunking = core::ChunkingMode::kContentDefined;
      cfg.cdc.max_bytes = opt.chunk * 4;
      cfg.cdc.avg_bytes = opt.chunk;
      cfg.cdc.min_bytes = std::max<std::size_t>(16, opt.chunk / 4);
    }

    core::Dumper dumper(comm, stores[static_cast<std::size_t>(comm.rank())],
                        cfg);
    const auto stats = dumper.dump_output(dataset, opt.k);
    const auto g = core::Dumper::collect(comm, stats);
    if (comm.rank() == 0) {
      rank0 = stats;
      global = g;
    }
  });

  std::printf("app=%s ranks=%d K=%d strategy=%s chunk=%zu F=2^%u shuffle=%d "
              "node_aware=%d cdc=%d hash=%s\n",
              opt.app.c_str(), opt.ranks, opt.k,
              std::string(core::to_string(opt.strategy)).c_str(), opt.chunk,
              opt.f_log2, opt.shuffle ? 1 : 0, opt.node_aware ? 1 : 0,
              opt.cdc ? 1 : 0, std::string(hash::to_string(opt.hash)).c_str());
  std::printf("dataset total:        %.3f MB\n",
              global.total_dataset_bytes / 1e6);
  std::printf("unique content:       %.3f MB (%.1f%%)\n",
              global.total_unique_bytes / 1e6,
              100.0 * global.total_unique_bytes /
                  std::max<std::uint64_t>(1, global.total_dataset_bytes));
  std::printf("replication traffic:  %.3f MB total, avg %.3f MB/rank, "
              "max %.3f MB/rank\n",
              global.total_sent_bytes / 1e6, global.avg_sent_bytes / 1e6,
              global.max_sent_bytes / 1e6);
  std::printf("max receive:          %.3f MB/rank\n",
              global.max_recv_bytes / 1e6);
  std::printf("stored on devices:    %.3f MB\n",
              global.total_stored_bytes / 1e6);
  std::printf("same-node partners:   %u\n", rank0.same_node_partners);
  std::printf("completion (sim):     %.6f s\n", global.completion_time_s);
  std::printf("  hash      %.6f s\n", global.max_phases.hash_s);
  std::printf("  reduction %.6f s (global view: %u fingerprints)\n",
              global.max_phases.reduction_s, rank0.gview_entries);
  std::printf("  planning  %.6f s\n", global.max_phases.planning_s);
  std::printf("  exchange  %.6f s\n", global.max_phases.exchange_s);
  std::printf("  storage   %.6f s\n", global.max_phases.storage_s);
  return 0;
}
