// Quickstart: the paper's Figure-1 scenario in code.
//
// Three processes dump related datasets with replication factor K = 3.
// Chunks that already exist on K other processes become "natural
// replicas" and are not transferred; chunks below K copies are topped up;
// everything is restorable afterwards, even with K-1 failed stores.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "apps/rng.hpp"
#include "core/collrep.hpp"

using namespace collrep;

namespace {

// Rank-local dataset: the first half of the pages is identical on every
// rank (think: weak-scaled solver matrix), the second half is private.
std::vector<std::uint8_t> make_dataset(int rank) {
  constexpr std::size_t kPages = 8;
  constexpr std::size_t kPageBytes = 4096;
  std::vector<std::uint8_t> data(kPages * kPageBytes);
  for (std::size_t page = 0; page < kPages; ++page) {
    const bool shared = page < kPages / 2;
    // Shared pages have rank-independent content; private pages differ.
    apps::SplitMix64 rng(shared ? page + 1
                                : page + 1 + 1000 * static_cast<std::size_t>(
                                                       rank + 1));
    rng.fill({data.data() + page * kPageBytes, kPageBytes});
  }
  return data;
}

}  // namespace

int main() {
  constexpr int kRanks = 3;
  constexpr int kReplication = 3;

  // One content-addressed store per rank = one local storage device.
  std::vector<chunk::ChunkStore> stores(kRanks);
  std::vector<std::vector<std::uint8_t>> originals(kRanks);

  simmpi::Runtime runtime(kRanks);
  runtime.run([&](simmpi::Comm& comm) {
    const int rank = comm.rank();
    originals[rank] = make_dataset(rank);

    chunk::Dataset dataset;
    dataset.add_segment(originals[rank]);

    core::DumpConfig config;       // coll-dedup, SHA1, 4 KB chunks, F = 2^17
    core::Dumper dumper(comm, stores[rank], config);

    // The collective write primitive from the paper: DUMP_OUTPUT(buf, K).
    const core::DumpStats stats = dumper.dump_output(dataset, kReplication);

    const auto global = core::Dumper::collect(comm, stats);
    if (rank == 0) {
      std::printf("dumped %s across %d ranks (K = %d)\n",
                  std::to_string(global.total_dataset_bytes).c_str(), kRanks,
                  kReplication);
      std::printf("globally unique content: %llu bytes (%.0f%% of raw)\n",
                  static_cast<unsigned long long>(global.total_unique_bytes),
                  100.0 * global.total_unique_bytes /
                      global.total_dataset_bytes);
      std::printf("replication traffic:     %llu bytes\n",
                  static_cast<unsigned long long>(global.total_sent_bytes));
      std::printf("simulated dump time:     %.6f s\n",
                  global.completion_time_s);
    }
    std::printf("rank %d: %llu chunks, %llu locally unique, "
                "%llu discarded as natural replicas\n",
                rank, static_cast<unsigned long long>(stats.chunk_count),
                static_cast<unsigned long long>(stats.local_unique_chunks),
                static_cast<unsigned long long>(stats.discarded_chunks));
  });

  // A node dies; every rank can still restore byte-exactly.
  stores[1].fail();
  std::vector<chunk::ChunkStore*> store_ptrs;
  for (auto& s : stores) store_ptrs.push_back(&s);
  for (int rank = 0; rank < kRanks; ++rank) {
    const auto restored = core::restore_rank(store_ptrs, rank);
    if (restored.segments.at(0) != originals[rank]) {
      std::printf("rank %d: RESTORE MISMATCH\n", rank);
      return 1;
    }
  }
  std::printf("all %d ranks restored byte-exactly with 1 failed store\n",
              kRanks);
  return 0;
}
