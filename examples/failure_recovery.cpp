// Failure-recovery drill on a controlled synthetic workload.
//
// Demonstrates the resilience contract end to end: a skewed synthetic
// dataset (a few heavy ranks, most data shared — the paper's Fig. 2
// scenario) is dumped with coll-dedup at K = 4, progressively more stores
// are failed, and the example shows restores succeeding up to K-1
// failures and failing *detectably* beyond the design point.
//
// Run: ./build/examples/failure_recovery [ranks]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/synth.hpp"
#include "core/collrep.hpp"
#include "ftrt/checkpoint.hpp"

using namespace collrep;

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 12;
  constexpr int kReplication = 4;

  apps::SynthSpec spec;
  spec.chunk_bytes = 1024;
  spec.chunks = 64;
  spec.local_dup = 0.2;
  spec.global_shared = 0.6;
  spec.heavy_rank_fraction = 0.17;
  spec.heavy_multiplier = 4.0;

  std::vector<chunk::ChunkStore> stores(static_cast<std::size_t>(nranks));
  std::vector<std::vector<std::uint8_t>> originals(
      static_cast<std::size_t>(nranks));

  simmpi::Runtime runtime(nranks);
  runtime.run([&](simmpi::Comm& comm) {
    const int rank = comm.rank();
    originals[static_cast<std::size_t>(rank)] =
        apps::synth_dataset(rank, nranks, spec);
    chunk::Dataset ds;
    ds.add_segment(originals[static_cast<std::size_t>(rank)]);
    core::DumpConfig cfg;
    cfg.chunk_bytes = spec.chunk_bytes;
    core::Dumper dumper(comm, stores[static_cast<std::size_t>(rank)], cfg);
    const auto stats = dumper.dump_output(ds, kReplication);
    const auto g = core::Dumper::collect(comm, stats);
    if (rank == 0) {
      std::printf("dumped %.2f MB total, unique %.2f MB, K = %d\n",
                  g.total_dataset_bytes / 1e6, g.total_unique_bytes / 1e6,
                  kReplication);
    }
  });

  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);

  const auto verify_all = [&]() -> bool {
    for (int rank = 0; rank < nranks; ++rank) {
      try {
        const auto restored = core::restore_rank(ptrs, rank);
        if (restored.segments.at(0) !=
            originals[static_cast<std::size_t>(rank)]) {
          return false;
        }
      } catch (const std::exception&) {
        return false;
      }
    }
    return true;
  };

  // Fail stores one by one; K-1 failures must be survivable.
  ftrt::FailureInjector injector(/*seed=*/11);
  for (int failures = 1; failures <= kReplication - 1; ++failures) {
    injector.kill_stores(ptrs, 1);
    std::printf("%d failed store(s): restore %s\n", failures,
                verify_all() ? "OK (byte-exact)" : "FAILED");
    if (!verify_all()) return 1;
  }

  // Beyond the design point data *may* survive (over-replicated chunks)
  // but the guarantee is gone; keep failing until loss is detected.
  int failures = kReplication - 1;
  while (failures < nranks && verify_all()) {
    injector.kill_stores(ptrs, 1);
    ++failures;
  }
  if (failures < nranks) {
    std::printf("%d failed stores: loss detected and reported "
                "(guarantee is K-1 = %d)\n",
                failures, kReplication - 1);
  } else {
    std::printf("dataset survived all failures (fully shared content)\n");
  }
  return 0;
}
