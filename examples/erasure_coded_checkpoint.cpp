// Erasure-coded checkpointing: the paper's future-work hybrid in action.
//
// Chunks that are already naturally duplicated on enough ranks count as
// replicas (as in coll-dedup); only the remainder is Reed-Solomon coded
// across groups of ranks, storing r parity shards instead of K-1 copies.
// The example dumps, fails `parity` stores, and restores everything by
// decoding.
//
// Run: ./build/examples/erasure_coded_checkpoint [ranks]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/synth.hpp"
#include "core/collrep.hpp"
#include "core/group_parity.hpp"
#include "ftrt/checkpoint.hpp"

using namespace collrep;

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 12;

  core::EcConfig cfg;
  cfg.group_size = 4;  // RS data shards per group
  cfg.parity = 2;      // tolerated store losses
  cfg.chunk_bytes = 1024;

  apps::SynthSpec spec;
  spec.chunk_bytes = cfg.chunk_bytes;
  spec.chunks = 48;
  spec.local_dup = 0.15;
  spec.global_shared = 0.45;
  spec.seed = 17;

  std::vector<chunk::ChunkStore> stores(static_cast<std::size_t>(nranks));
  std::vector<std::vector<std::uint8_t>> originals(
      static_cast<std::size_t>(nranks));

  simmpi::Runtime runtime(nranks);
  runtime.run([&](simmpi::Comm& comm) {
    const int rank = comm.rank();
    originals[static_cast<std::size_t>(rank)] =
        apps::synth_dataset(rank, nranks, spec);
    chunk::Dataset ds;
    ds.add_segment(originals[static_cast<std::size_t>(rank)]);

    core::EcDumper dumper(comm, stores[static_cast<std::size_t>(rank)], cfg);
    const auto stats = dumper.dump_output(ds);

    const auto stream = simmpi::allreduce_sum(comm, stats.stream_chunks);
    const auto excluded = simmpi::allreduce_sum(comm, stats.excluded_chunks);
    const auto parity = simmpi::allreduce_sum(comm, stats.parity_bytes);
    const auto stored = simmpi::allreduce_sum(comm, stats.stored_bytes);
    if (rank == 0) {
      std::printf("EC dump over %d ranks (m = %d, r = %d):\n", nranks,
                  cfg.group_size, cfg.parity);
      std::printf("  chunks coded:          %llu\n",
                  static_cast<unsigned long long>(stream));
      std::printf("  natural replicas used: %llu chunks (not coded)\n",
                  static_cast<unsigned long long>(excluded));
      std::printf("  data stored:           %.2f MB\n", stored / 1e6);
      std::printf("  parity stored:         %.2f MB (vs %.2f MB for K=%d "
                  "replication)\n",
                  parity / 1e6, 1e-6 * stored * cfg.parity, cfg.parity + 1);
      std::printf("  simulated dump time:   %.6f s\n", stats.total_time_s);
    }
  });

  // Lose `parity` stores inside one group; decode-based restore recovers.
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);
  ptrs[0]->fail();
  ptrs[2]->fail();
  std::printf("failed stores: 0 2\n");

  for (int rank = 0; rank < nranks; ++rank) {
    const auto restored = core::ec_restore_rank(ptrs, rank, cfg);
    if (restored.segments.at(0) != originals[static_cast<std::size_t>(rank)]) {
      std::printf("rank %d: RESTORE MISMATCH\n", rank);
      return 1;
    }
  }
  std::printf("all %d ranks restored byte-exactly via Reed-Solomon decode\n",
              nranks);
  return 0;
}
