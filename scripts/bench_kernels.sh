#!/usr/bin/env bash
# Kernel throughput gate: builds the Release bench binaries, measures every
# data-plane kernel variant (median of N repetitions, GB/s) plus the
# flat fingerprint-set merge/serialization throughput (entries/s), times
# the fig3b end-to-end bench twice — once with COLLREP_KERNELS=scalar
# (the pre-dispatch baseline) and once with the dispatched kernels — and
# writes the results to BENCH_kernels.json at the repo root.
#
#   scripts/bench_kernels.sh                 # full run
#   COLLREP_QUICK=1 scripts/bench_kernels.sh # scaled-down fig3b
#   COLLREP_BENCH_REPS=3 scripts/bench_kernels.sh
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

build=build-release
reps="${COLLREP_BENCH_REPS:-5}"
out="${COLLREP_BENCH_OUT:-$repo/BENCH_kernels.json}"

cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j --target micro_primitives fig3b_reduction_overhead_hpccg

echo "== kernel micro-benchmarks (median of $reps) =="
"$build/bench/micro_primitives" \
  --benchmark_filter='gf_mul_add|crc32c|sha1_blocks|cdc_chunking|hmerge_keys|BM_HMerge|BM_FpSetSerialization' \
  --benchmark_repetitions="$reps" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$build/micro_kernels.json"

fig3b="$build/bench/fig3b_reduction_overhead_hpccg"

echo "== fig3b end-to-end, scalar kernels =="
scalar_s=$( { time -p COLLREP_KERNELS=scalar "$fig3b" > /dev/null; } 2>&1 \
            | awk '/^real/ {print $2}' )
echo "scalar wall-clock: ${scalar_s}s"

echo "== fig3b end-to-end, dispatched kernels =="
dispatched_s=$( { time -p "$fig3b" > /dev/null; } 2>&1 \
                | awk '/^real/ {print $2}' )
echo "dispatched wall-clock: ${dispatched_s}s"

python3 - "$build/micro_kernels.json" "$out" "$reps" "$scalar_s" "$dispatched_s" <<'PY'
import json
import sys

micro_path, out_path, reps, scalar_s, dispatched_s = sys.argv[1:6]
scalar_s, dispatched_s = float(scalar_s), float(dispatched_s)

with open(micro_path) as f:
    report = json.load(f)

# Median aggregates only; strip google-benchmark's parameter suffixes.
medians = {}
for b in report["benchmarks"]:
    if b.get("run_type") != "aggregate" or b.get("aggregate_name") != "median":
        continue
    name = b["name"].rsplit("_median", 1)[0]
    name = name.split("/min_warmup_time", 1)[0]
    medians[name] = b

kernels = {}
for kernel in ("gf_mul_add", "crc32c", "sha1_blocks", "cdc_chunking"):
    variants = {}
    for name, b in medians.items():
        if name.startswith(kernel + "/"):
            variants[name.split("/", 1)[1]] = b["bytes_per_second"] / 1e9
    if not variants:
        continue
    baseline_name = "reference" if kernel == "cdc_chunking" else "scalar"
    baseline = variants[baseline_name]
    best = max(variants, key=variants.get)
    kernels[kernel] = {
        "variants_gbps": {k: round(v, 3) for k, v in sorted(variants.items())},
        "baseline": baseline_name,
        "best": best,
        "speedup": round(variants[best] / baseline, 2),
    }

# hmerge kernel: entries/s per variant across the size x duplicate-ratio
# sweep, plus dispatched-vs-scalar speedups at the 65536-entry point the
# acceptance gate uses (geomean across the overlap sweep so neither the
# disjoint nor the all-duplicate fast path dominates the ratio).
hmerge_rates = {}
for name, b in medians.items():
    if not name.startswith("hmerge_keys/"):
        continue
    _, variant, size, overlap = name.split("/")
    hmerge_rates.setdefault(variant, {})[f"{size}/{overlap}"] = round(
        b["items_per_second"] / 1e6, 1)

if hmerge_rates and "scalar" in hmerge_rates:
    overlaps = ("0", "25", "75", "100")

    def speedup_at(variant, size, ov):
        return (hmerge_rates[variant][f"{size}/{ov}"] /
                hmerge_rates["scalar"][f"{size}/{ov}"])

    def geomean(vals):
        prod = 1.0
        for v in vals:
            prod *= v
        return prod ** (1.0 / len(vals))

    best = max(hmerge_rates,
               key=lambda v: geomean([speedup_at(v, 65536, ov)
                                      for ov in overlaps]))
    kernels["hmerge"] = {
        "variants_mkeys_per_s": {k: dict(sorted(v.items()))
                                 for k, v in sorted(hmerge_rates.items())},
        "baseline": "scalar",
        "best": best,
        "speedup_65536_by_overlap": {
            ov: round(speedup_at(best, 65536, ov), 2) for ov in overlaps},
        "speedup": round(geomean([speedup_at(best, 65536, ov)
                                  for ov in overlaps]), 2),
    }

def items(prefix):
    return {
        name.split("/", 1)[1]: round(b["items_per_second"] / 1e6, 3)
        for name, b in medians.items()
        if name.startswith(prefix + "/")
    }

result = {
    "repetitions": int(reps),
    "kernels": kernels,
    "fp_set": {
        "hmerge_mentries_per_s": items("BM_HMerge"),
        "hmerge_kway_mentries_per_s": items("BM_HMergeKway"),
        "serialization_mentries_per_s": items("BM_FpSetSerialization"),
    },
    "fig3b": {
        "scalar_wall_s": scalar_s,
        "dispatched_wall_s": dispatched_s,
        "speedup": round(scalar_s / dispatched_s, 2),
    },
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for kernel, info in kernels.items():
    print(f"  {kernel}: {info['best']} {info['speedup']}x over {info['baseline']}")
print(f"  fig3b: {result['fig3b']['speedup']}x")

# Floor gate: with any SIMD merge variant available, the dispatched HMERGE
# kernel must clear COLLREP_HMERGE_MIN_SPEEDUP x scalar at 65536 entries
# (geomean over the overlap sweep).  The default floor is deliberately
# below the 3x measured on the AVX2 reference host so shared-runner noise
# does not flake CI; the checked-in BENCH_kernels.json carries the real
# ratio and the perf-gate ratchets it.
import os
floor = float(os.environ.get("COLLREP_HMERGE_MIN_SPEEDUP", "2.0"))
if "hmerge" in kernels and len(hmerge_rates) > 1:
    got = kernels["hmerge"]["speedup"]
    if got < floor:
        print(f"FAIL: hmerge dispatched speedup {got}x < {floor}x floor "
              f"(COLLREP_HMERGE_MIN_SPEEDUP)", file=sys.stderr)
        sys.exit(1)
    print(f"  hmerge floor: {got}x >= {floor}x ok")
PY
