#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite — what CI and
# the PR driver run.  Optionally follow with a sanitizer build of the
# runtime-heavy tests:
#
#   scripts/tier1.sh                       # plain tier-1
#   COLLREP_SANITIZE=address scripts/tier1.sh
#   COLLREP_SANITIZE=undefined scripts/tier1.sh
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ -n "${COLLREP_SANITIZE:-}" ]]; then
  san_dir="build-${COLLREP_SANITIZE}"
  echo "== sanitizer pass (${COLLREP_SANITIZE}) =="
  cmake -B "$san_dir" -S . -DCOLLREP_SANITIZE="${COLLREP_SANITIZE}"
  # The threaded-runtime tests are where a sanitizer earns its keep.
  cmake --build "$san_dir" -j --target \
    simmpi_test obs_test collectives_test window_test stress_test fault_test
  for t in simmpi_test obs_test collectives_test window_test stress_test \
           fault_test; do
    "$san_dir/tests/$t"
  done
fi

echo "tier1: OK"
