#!/usr/bin/env bash
# Tier-1 gate: configure, build (warnings as errors), and run the full test
# suite — what CI and the PR driver run.  Optionally follow with a sanitizer
# build of the runtime-heavy tests (everything ctest labels `runtime`; the
# list lives in tests/CMakeLists.txt so it cannot go stale here):
#
#   scripts/tier1.sh                       # plain tier-1
#   COLLREP_SANITIZE=address scripts/tier1.sh    # + ASan pass
#   COLLREP_SANITIZE=undefined scripts/tier1.sh  # + UBSan pass
#   COLLREP_SANITIZE=thread scripts/tier1.sh     # + TSan pass
#
# The thread mode is the one that audits the simmpi threading model itself
# (ranks are threads): it must run clean over the `runtime` label, including
# the src/check verification layer's own watchdog/cross-check threads.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake -B build -S . -DCOLLREP_WERROR=ON
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# collcheck rides the tier-1 build (the binary is part of the default
# target): zero-cost static gate over the whole tree.  Rule catalog in
# DESIGN.md §10; intentional exceptions live in tools/collcheck/baseline.txt.
echo "== collcheck =="
build/tools/collcheck/collcheck --repo-root "$repo" \
    --baseline tools/collcheck/baseline.txt \
    src tools bench tests examples

if [[ -n "${COLLREP_SANITIZE:-}" ]]; then
  san_dir="build-${COLLREP_SANITIZE}"
  echo "== sanitizer pass (${COLLREP_SANITIZE}) =="
  cmake -B "$san_dir" -S . -DCOLLREP_SANITIZE="${COLLREP_SANITIZE}" \
        -DCOLLREP_WERROR=ON
  cmake --build "$san_dir" -j
  # The threaded-runtime tests are where a sanitizer earns its keep; the
  # `kernels` label rides along so every dispatched SIMD path gets an
  # ASan/TSan pass too, `recover` keeps the shrink/containment protocol
  # (rank death mid-collective) explicitly in the net even if its suite
  # ever sheds the `runtime` label, and `analyze` puts the collcheck rule
  # engine plus its byte-mutation fuzz harness under ASan/UBSan — the
  # analyzer parses arbitrary PR sources and must not be the flaky link.
  (cd "$san_dir" && ctest -L 'runtime|kernels|recover|analyze' \
      --output-on-failure -j)
fi

echo "tier1: OK"
