#!/usr/bin/env bash
# Static-analysis gate: clang-tidy over the whole tree (profile in
# .clang-tidy — bugprone-*, concurrency-*, performance-*, warnings as
# errors).  Containers without clang-tidy fall back to a strict GCC
# warnings-as-errors build with the extra diagnostics below, so the gate
# always has teeth.
#
#   scripts/lint.sh            # lint src/ tests/ bench/ examples/
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

lint_dir=build-lint
cmake -B "$lint_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCOLLREP_WERROR=ON >/dev/null

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== lint: clang-tidy =="
  mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'tests/*.cpp' \
                                      'bench/*.cpp' 'examples/*.cpp')
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$lint_dir" -quiet "${sources[@]}"
  else
    clang-tidy -p "$lint_dir" --quiet "${sources[@]}"
  fi
else
  # The fallback is a full rebuild with every additional GCC diagnostic the
  # tree is expected to keep clean (tier1 already enforces -Wall -Wextra
  # -Werror; these go beyond it).  -Wuseless-cast is deliberately absent:
  # it flags casts like size_t -> uint64_t that are no-ops on LP64 but
  # required for portability.
  echo "== lint: clang-tidy not found, strict GCC warnings fallback =="
  strict_flags="-Wshadow -Wnon-virtual-dtor -Woverloaded-virtual \
-Wcast-qual -Wlogical-op -Wduplicated-cond -Wduplicated-branches \
-Wnull-dereference -Wundef -Wredundant-decls"
  cmake -B "$lint_dir" -S . -DCOLLREP_WERROR=ON \
        -DCMAKE_CXX_FLAGS="$strict_flags" >/dev/null
  cmake --build "$lint_dir" -j
fi

# Project-specific rules (collective matching, RMA epochs, layer DAG,
# determinism) that no generic linter knows about; shares its entry point
# with the CI analyze job.
COLLCHECK_BUILD_DIR="$lint_dir" scripts/analyze.sh

echo "lint: OK"
