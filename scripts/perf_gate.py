#!/usr/bin/env python3
"""Perf-regression gate: diff benchmark / profile JSONs against baselines.

Usage:
    perf_gate.py [--baselines DIR] [--list] NAME=PATH ...
    perf_gate.py --self-test

Each NAME=PATH pair names a current-results JSON file; the baseline is
bench/baselines/NAME.json (override the directory with --baselines).  NAME
selects a ruleset below via fnmatch, and every numeric leaf in the baseline
that matches one of the ruleset's path patterns is compared against the
current value with the rule's direction and tolerance:

  - "higher" metrics (throughput, speedup) regress when
        current < baseline * (1 - rel_tol)
  - "lower" metrics (latency, drop counters) regress when
        current > baseline * (1 + rel_tol)  and  current - baseline > abs_tol

A metric present in the baseline but missing from the current file is a
failure (renames must update the baseline deliberately).  Metrics matching
no pattern are ignored, so reports can grow freely.

The kernels numbers (BENCH_kernels.json) are host-dependent, so CI gates
the *checked-in* file against its baseline — the ratchet trips when a
regenerated, slower result is committed without a deliberate baseline
update.  Profile JSONs carry deterministic *simulated* time and are gated
on freshly produced results; the tolerance only absorbs cross-compiler
floating-point drift.

Exit codes: 0 pass, 1 regression, 2 usage or I/O error.
"""

import fnmatch
import json
import re
import sys
from pathlib import Path

DEFAULT_BASELINES = Path(__file__).resolve().parent.parent / "bench" / "baselines"

# ruleset name pattern -> [(metric path regex, direction, rel_tol, abs_tol)]
RULESETS = {
    "BENCH_kernels": [
        (r"^kernels\.[^.]+\.variants_gbps\.[^.]+$", "higher", 0.10, 0.0),
        (r"^kernels\.[^.]+\.speedup$", "higher", 0.10, 0.0),
        # hmerge: per-variant entry rates are the noisiest numbers in the
        # file (short merges, branchy regimes), so they get a wider band;
        # the per-overlap speedups are ratios on the same host and noise
        # mostly cancels.
        (r"^kernels\.hmerge\.variants_mkeys_per_s\.[^.]+\.[^.]+$",
         "higher", 0.25, 0.0),
        (r"^kernels\.hmerge\.speedup_65536_by_overlap\.[^.]+$",
         "higher", 0.15, 0.0),
        (r"^fp_set\..*$", "higher", 0.10, 0.0),
        (r"^fig3b\.speedup$", "higher", 0.15, 0.0),
    ],
    "profile_*": [
        (r"^dumps\.\d+\.total_s$", "lower", 0.02, 1e-6),
        (r"^dumps\.\d+\.phases\.\d+\.critical_s$", "lower", 0.05, 1e-5),
        (r"^(dropped_events|unmatched_flows|unmatched_syncs)$",
         "lower", 0.0, 0.0),
    ],
    "recovery_*": [  # ablate_recovery --metrics JSON (simulated time, so
        # deterministic; tolerance only absorbs FP drift).  The byte
        # counters are exact ratchets: the rebalance must keep shipping
        # only the replica shortfall.
        (r"^gauges\.recover\.last\.(total_time_s|agreement_time_s)$",
         "lower", 0.02, 1e-6),
        (r"^histograms\.recover\.latency_s\.(sum|max)$", "lower", 0.02, 1e-6),
        (r"^counters\.recover\.rereplicated_bytes$", "lower", 0.0, 0.0),
    ],
    "BENCH_*": [  # other bench reports: any throughput-named leaf
        (r".*(_gbps|_per_s|speedup)([.].*)?$", "higher", 0.10, 0.0),
    ],
}


def flatten(node, prefix=""):
    """Yield (dotted_path, value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, val in node.items():
            yield from flatten(val, f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, list):
        for i, val in enumerate(node):
            yield from flatten(val, f"{prefix}.{i}" if prefix else str(i))
    elif isinstance(node, bool):
        return  # bools are ints in Python; never a gated metric
    elif isinstance(node, (int, float)):
        yield prefix, float(node)


def ruleset_for(name):
    for pattern, rules in RULESETS.items():
        if fnmatch.fnmatchcase(name, pattern):
            return rules
    return None


def compare(name, baseline, current):
    """Return a list of failure strings for one NAME's baseline/current."""
    rules = ruleset_for(name)
    if rules is None:
        return [f"{name}: no ruleset matches this name "
                f"(known: {', '.join(RULESETS)})"]
    failures = []
    cur = dict(flatten(current))
    gated = 0
    for path, base_val in flatten(baseline):
        rule = next(((d, rt, at) for rx, d, rt, at in rules
                     if re.match(rx, path)), None)
        if rule is None:
            continue
        direction, rel_tol, abs_tol = rule
        gated += 1
        if path not in cur:
            failures.append(f"{name}: {path}: metric missing from current "
                            f"results (baseline {base_val:g})")
            continue
        cur_val = cur[path]
        if direction == "higher":
            floor = base_val * (1.0 - rel_tol)
            if cur_val < floor and base_val - cur_val > abs_tol:
                failures.append(
                    f"{name}: {path}: {cur_val:g} < {floor:g} "
                    f"(baseline {base_val:g}, -{rel_tol:.0%} allowed)")
        else:
            ceil = base_val * (1.0 + rel_tol)
            if cur_val > ceil and cur_val - base_val > abs_tol:
                failures.append(
                    f"{name}: {path}: {cur_val:g} > {ceil:g} "
                    f"(baseline {base_val:g}, +{rel_tol:.0%} allowed)")
    if gated == 0:
        failures.append(f"{name}: baseline has no gated metrics "
                        f"(wrong file or stale ruleset?)")
    return failures


def self_test():
    """Prove the gate trips on inflated baselines and passes honest runs."""
    real = {
        "kernels": {"crc32c": {"variants_gbps": {"sse42": 7.2},
                               "speedup": 21.5}},
        "fig3b": {"speedup": 2.47},
    }
    inflated = json.loads(json.dumps(real))
    inflated["kernels"]["crc32c"]["variants_gbps"]["sse42"] *= 1.20
    inflated["kernels"]["crc32c"]["speedup"] *= 1.20

    prof_real = {"dropped_events": 0,
                 "dumps": [{"total_s": 0.0325,
                            "phases": [{"critical_s": 0.028}]}]}
    prof_slow = json.loads(json.dumps(prof_real))
    prof_slow["dumps"][0]["total_s"] *= 1.20

    cases = [
        ("equal baseline passes",
         compare("BENCH_kernels", real, real), False),
        ("20%-inflated baseline fails",
         compare("BENCH_kernels", inflated, real), True),
        ("improvement passes",
         compare("BENCH_kernels", real, inflated), False),
        ("profile: equal passes",
         compare("profile_fig3b_quick", prof_real, prof_real), False),
        ("profile: 20% slower dump fails",
         compare("profile_fig3b_quick", prof_real, prof_slow), True),
        ("profile: new drops fail",
         compare("profile_fig3b_quick", prof_real,
                 {**prof_real, "dropped_events": 3}), True),
        ("missing metric fails",
         compare("BENCH_kernels", real, {"kernels": {}}), True),
    ]
    ok = True
    for label, failures, expect_fail in cases:
        got_fail = bool(failures)
        status = "ok" if got_fail == expect_fail else "SELF-TEST BROKEN"
        if got_fail != expect_fail:
            ok = False
        print(f"perf_gate self-test: {label}: {status}")
        if got_fail != expect_fail:
            for f in failures:
                print(f"    {f}")
    return 0 if ok else 1


def main(argv):
    baselines_dir = DEFAULT_BASELINES
    pairs = []
    args = argv[1:]
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--baselines":
            if i + 1 >= len(args):
                print("perf_gate: --baselines requires a value",
                      file=sys.stderr)
                return 2
            baselines_dir = Path(args[i + 1])
            i += 2
        elif arg == "--self-test":
            return self_test()
        elif arg == "--list":
            for pattern, rules in RULESETS.items():
                print(pattern)
                for rx, direction, rel_tol, abs_tol in rules:
                    print(f"  {rx}  [{direction}, rel {rel_tol:.0%},"
                          f" abs {abs_tol:g}]")
            return 0
        elif arg in ("--help", "-h"):
            print(__doc__)
            return 0
        elif "=" in arg and not arg.startswith("-"):
            name, _, path = arg.partition("=")
            pairs.append((name, Path(path)))
            i += 1
        else:
            print(f"perf_gate: unknown argument '{arg}'", file=sys.stderr)
            return 2
    if not pairs:
        print("perf_gate: no NAME=PATH pairs given", file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2

    failures = []
    for name, path in pairs:
        base_path = baselines_dir / f"{name}.json"
        try:
            baseline = json.loads(base_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"perf_gate: cannot read baseline {base_path}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            current = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"perf_gate: cannot read current results {path}: {exc}",
                  file=sys.stderr)
            return 2
        these = compare(name, baseline, current)
        failures.extend(these)
        gated = sum(1 for p, _ in flatten(baseline)
                    if any(re.match(rx, p) for rx, *_ in ruleset_for(name) or []))
        state = "FAIL" if these else "ok"
        print(f"perf_gate: {name}: {gated} gated metrics vs {base_path.name}:"
              f" {state}")
    for failure in failures:
        print(f"perf_gate: REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
