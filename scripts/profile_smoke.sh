#!/usr/bin/env bash
# Profiling + perf-gate smoke: run the fig3b bench with causal tracing on,
# feed the exported trace through collprof, and hold the results to the
# checked-in baselines (bench/baselines/) with scripts/perf_gate.py.
#
#   scripts/profile_smoke.sh           # quick-mode fig3b + collprof + gate
#   COLLREP_PROFILE_OUT=dir scripts/profile_smoke.sh   # keep artifacts there
#
# Everything gated here is deterministic *simulated* time, so the gate is
# exact across machines; only compiler floating-point drift is tolerated
# (see the tolerances in scripts/perf_gate.py).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

build_dir="${COLLREP_PROFILE_BUILD_DIR:-build-profile}"
out_dir="${COLLREP_PROFILE_OUT:-$build_dir/profile-out}"
mkdir -p "$out_dir"

cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" -j \
    --target fig3b_reduction_overhead_hpccg collprof >/dev/null

echo "== profile: fig3b with causal tracing =="
COLLREP_QUICK=1 "$build_dir/bench/fig3b_reduction_overhead_hpccg" \
    "--trace=$out_dir/fig3b_trace.json" \
    "--profile=$out_dir/profile_fig3b_quick.json" >/dev/null

echo "== profile: collprof critical-path analysis =="
"$build_dir/tools/collprof/collprof" --require-clean \
    --json "$out_dir/profile_from_trace.json" \
    --augment "$out_dir/fig3b_trace_augmented.json" \
    "$out_dir/fig3b_trace.json"

# The in-process profile and the trace-file reconstruction must agree
# byte-for-byte; a divergence means the flow/sync edges got lost somewhere
# between the recorder and the exporter.
cmp "$out_dir/profile_fig3b_quick.json" "$out_dir/profile_from_trace.json"
echo "profile: in-process and trace-file profiles are byte-identical"

echo "== profile: perf-regression gate =="
python3 scripts/perf_gate.py \
    BENCH_kernels=BENCH_kernels.json \
    "profile_fig3b_quick=$out_dir/profile_fig3b_quick.json"

echo "profile smoke: OK (artifacts in $out_dir)"
