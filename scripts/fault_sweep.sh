#!/usr/bin/env bash
# Fault-injection determinism sweep: runs the failure ablation twice per
# seed and requires bit-identical stdout and metrics JSON.  Seeded victim
# selection plus the simulated clock make every run reproducible — any
# divergence here means nondeterminism crept into the fault or repair path.
#
#   scripts/fault_sweep.sh                 # default seeds
#   scripts/fault_sweep.sh 11 22 33        # explicit seeds
#   COLLREP_QUICK=1 scripts/fault_sweep.sh # reduced rank count
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

bench="build/bench/ablate_failures"
if [[ ! -x "$bench" ]]; then
  cmake -B build -S .
  cmake --build build -j --target ablate_failures
fi

seeds=("$@")
if [[ ${#seeds[@]} -eq 0 ]]; then
  seeds=(1 7 42 1234)
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
for seed in "${seeds[@]}"; do
  for run in a b; do
    "$bench" --seed="$seed" --metrics="$tmp/$seed.$run.json" \
      > "$tmp/$seed.$run.txt" 2> /dev/null
  done
  if cmp -s "$tmp/$seed.a.json" "$tmp/$seed.b.json" &&
     cmp -s "$tmp/$seed.a.txt" "$tmp/$seed.b.txt"; then
    echo "seed $seed: OK (stdout and metrics bit-identical)"
  else
    echo "seed $seed: FAIL (runs diverged)" >&2
    diff "$tmp/$seed.a.txt" "$tmp/$seed.b.txt" >&2 || true
    fail=1
  fi
done

if [[ "$fail" -ne 0 ]]; then
  echo "fault_sweep: FAIL" >&2
  exit 1
fi
echo "fault_sweep: OK"
