#!/usr/bin/env bash
# Fault-injection determinism sweep: runs the failure and recovery
# ablations twice per seed and requires bit-identical stdout and metrics
# JSON.  Seeded victim selection plus the simulated clock make every run
# reproducible — any divergence here means nondeterminism crept into the
# fault, repair, or shrink-recovery path.
#
#   scripts/fault_sweep.sh                 # default seeds
#   scripts/fault_sweep.sh 11 22 33        # explicit seeds
#   COLLREP_QUICK=1 scripts/fault_sweep.sh # reduced rank count
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

benches=(ablate_failures ablate_recovery)
for b in "${benches[@]}"; do
  if [[ ! -x "build/bench/$b" ]]; then
    cmake -B build -S .
    cmake --build build -j --target "$b"
  fi
done

seeds=("$@")
if [[ ${#seeds[@]} -eq 0 ]]; then
  seeds=(1 7 42 1234)
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
for b in "${benches[@]}"; do
  for seed in "${seeds[@]}"; do
    for run in a b; do
      "build/bench/$b" --seed="$seed" --metrics="$tmp/$b.$seed.$run.json" \
        > "$tmp/$b.$seed.$run.txt" 2> /dev/null
    done
    if cmp -s "$tmp/$b.$seed.a.json" "$tmp/$b.$seed.b.json" &&
       cmp -s "$tmp/$b.$seed.a.txt" "$tmp/$b.$seed.b.txt"; then
      echo "$b seed $seed: OK (stdout and metrics bit-identical)"
    else
      echo "$b seed $seed: FAIL (runs diverged)" >&2
      diff "$tmp/$b.$seed.a.txt" "$tmp/$b.$seed.b.txt" >&2 || true
      fail=1
    fi
  done
done

if [[ "$fail" -ne 0 ]]; then
  echo "fault_sweep: FAIL" >&2
  exit 1
fi
echo "fault_sweep: OK"
