#!/usr/bin/env bash
# collcheck gate: build the project-specific static analyzer and run it over
# the tree.  Exits non-zero on any finding not covered by the checked-in
# baseline (tools/collcheck/baseline.txt) or an inline
# `// collcheck:allow(RULE)` comment.  Rule catalog: `collcheck --list-rules`
# or DESIGN.md §10/§13/§15.
#
#   scripts/analyze.sh              # analyze src/ tools/ bench/ tests/ examples/
#   scripts/analyze.sh --fail-on-new   # also fail on STALE baseline entries,
#                                      # printing a +/- diff against baseline
#   scripts/analyze.sh --update-schedules  # regenerate the checked-in
#                                      # schedule snapshot after an intended
#                                      # collective-schedule change
#   COLLCHECK_SARIF=out.sarif scripts/analyze.sh        # also write SARIF
#   COLLCHECK_SELF_SARIF=self.sarif scripts/analyze.sh  # SARIF for self-scan
#   COLLCHECK_COLLPROF_SARIF=p.sarif                    # SARIF for collprof scan
#   COLLCHECK_BENCH_SARIF=b.sarif                       # SARIF for bench scan
#
# Beyond the tree scan, this runs three scoped scans with their own
# baselines (the analyzer, profiler, and bench harness each stay clean
# independently of the main baseline) and the schedule-drift gate: the
# canonical per-entry-point collective schedules (--dump-schedules) must
# match the checked-in tools/collcheck/schedules.txt byte for byte, so a
# PR that reorders or drops collectives shows up as a reviewable diff.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

extra=()
update_schedules=0
for arg in "$@"; do
  case "$arg" in
    --fail-on-new) extra+=(--fail-on-new) ;;
    --update-schedules) update_schedules=1 ;;
    *) echo "analyze.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

build_dir="${COLLCHECK_BUILD_DIR:-build-analyze}"
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" --target collcheck -j >/dev/null

collcheck_bin="$build_dir/tools/collcheck/collcheck"

args=(--repo-root "$repo" --baseline tools/collcheck/baseline.txt)
if [[ -n "${COLLCHECK_SARIF:-}" ]]; then
  args+=(--sarif "$COLLCHECK_SARIF")
fi

echo "== analyze: collcheck =="
"$collcheck_bin" "${args[@]}" "${extra[@]}" \
    src tools bench tests examples

# Self-analysis: the analyzer must hold itself to the rules it enforces
# (no baseline here — the tool's own tree stays clean, full stop).
self_args=(--repo-root "$repo")
if [[ -n "${COLLCHECK_SELF_SARIF:-}" ]]; then
  self_args+=(--sarif "$COLLCHECK_SELF_SARIF")
fi
echo "== analyze: collcheck (self) =="
"$collcheck_bin" "${self_args[@]}" tools/collcheck

# Scoped scans with their own baselines: the causal profiler and the bench
# harness are instrumentation/measurement code with different idioms from
# the product tree, so their intentional exceptions are tracked separately
# instead of widening the main baseline.
collprof_args=(--repo-root "$repo"
               --baseline tools/collcheck/baseline_collprof.txt)
if [[ -n "${COLLCHECK_COLLPROF_SARIF:-}" ]]; then
  collprof_args+=(--sarif "$COLLCHECK_COLLPROF_SARIF")
fi
echo "== analyze: collcheck (collprof) =="
"$collcheck_bin" "${collprof_args[@]}" "${extra[@]}" tools/collprof

bench_args=(--repo-root "$repo"
            --baseline tools/collcheck/baseline_bench.txt)
if [[ -n "${COLLCHECK_BENCH_SARIF:-}" ]]; then
  bench_args+=(--sarif "$COLLCHECK_BENCH_SARIF")
fi
echo "== analyze: collcheck (bench) =="
"$collcheck_bin" "${bench_args[@]}" "${extra[@]}" bench

# Schedule-drift gate: regenerate the canonical per-entry-point schedule
# snapshot from src/ and compare it to the checked-in artifact.  A diff
# means a PR changed the collective schedule of a public entry point —
# legitimate changes re-run with --update-schedules and commit the result.
snapshot=tools/collcheck/schedules.txt
current="$build_dir/schedules.current.txt"
echo "== analyze: schedule drift =="
"$collcheck_bin" --repo-root "$repo" \
    --baseline tools/collcheck/baseline.txt \
    --dump-schedules "$current" src >/dev/null
if [[ "$update_schedules" == 1 ]]; then
  cp "$current" "$snapshot"
  echo "schedule snapshot updated: $snapshot"
elif ! cmp -s "$current" "$snapshot"; then
  echo "analyze.sh: collective schedule drift detected:" >&2
  diff -u "$snapshot" "$current" >&2 || true
  echo "analyze.sh: if this change is intended, run" >&2
  echo "  scripts/analyze.sh --update-schedules" >&2
  echo "and commit the regenerated $snapshot" >&2
  exit 1
else
  echo "schedules match $snapshot"
fi

echo "analyze: OK"
