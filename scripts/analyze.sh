#!/usr/bin/env bash
# collcheck gate: build the project-specific static analyzer and run it over
# the tree.  Exits non-zero on any finding not covered by the checked-in
# baseline (tools/collcheck/baseline.txt) or an inline
# `// collcheck:allow(RULE)` comment.  Rule catalog: `collcheck --list-rules`
# or DESIGN.md §10.
#
#   scripts/analyze.sh                 # analyze src/ tools/ bench/ tests/ examples/
#   COLLCHECK_SARIF=out.sarif scripts/analyze.sh   # also write SARIF
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

build_dir="${COLLCHECK_BUILD_DIR:-build-analyze}"
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" --target collcheck -j >/dev/null

args=(--repo-root "$repo" --baseline tools/collcheck/baseline.txt)
if [[ -n "${COLLCHECK_SARIF:-}" ]]; then
  args+=(--sarif "$COLLCHECK_SARIF")
fi

echo "== analyze: collcheck =="
"$build_dir/tools/collcheck/collcheck" "${args[@]}" \
    src tools bench tests examples

echo "analyze: OK"
