#!/usr/bin/env bash
# collcheck gate: build the project-specific static analyzer and run it over
# the tree.  Exits non-zero on any finding not covered by the checked-in
# baseline (tools/collcheck/baseline.txt) or an inline
# `// collcheck:allow(RULE)` comment.  Rule catalog: `collcheck --list-rules`
# or DESIGN.md §10/§13.
#
#   scripts/analyze.sh              # analyze src/ tools/ bench/ tests/ examples/
#   scripts/analyze.sh --fail-on-new   # also fail on STALE baseline entries,
#                                      # printing a +/- diff against baseline
#   COLLCHECK_SARIF=out.sarif scripts/analyze.sh        # also write SARIF
#   COLLCHECK_SELF_SARIF=self.sarif scripts/analyze.sh  # SARIF for self-scan
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

extra=()
for arg in "$@"; do
  case "$arg" in
    --fail-on-new) extra+=(--fail-on-new) ;;
    *) echo "analyze.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

build_dir="${COLLCHECK_BUILD_DIR:-build-analyze}"
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" --target collcheck -j >/dev/null

args=(--repo-root "$repo" --baseline tools/collcheck/baseline.txt)
if [[ -n "${COLLCHECK_SARIF:-}" ]]; then
  args+=(--sarif "$COLLCHECK_SARIF")
fi

echo "== analyze: collcheck =="
"$build_dir/tools/collcheck/collcheck" "${args[@]}" "${extra[@]}" \
    src tools bench tests examples

# Self-analysis: the analyzer must hold itself to the rules it enforces
# (no baseline here — the tool's own tree stays clean, full stop).
self_args=(--repo-root "$repo")
if [[ -n "${COLLCHECK_SELF_SARIF:-}" ]]; then
  self_args+=(--sarif "$COLLCHECK_SELF_SARIF")
fi
echo "== analyze: collcheck (self) =="
"$build_dir/tools/collcheck/collcheck" "${self_args[@]}" tools/collcheck

echo "analyze: OK"
