#!/usr/bin/env bash
# Recovery perf gate: run the quick-mode recovery ablation (deterministic
# simulated time, 8 ranks) and hold its recover.* metrics to
# bench/baselines/recovery_quick.json via scripts/perf_gate.py — recovery
# latency and rereplicated-byte regressions fail here.
#
#   scripts/recover_gate.sh [path/to/ablate_recovery]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

bench="${1:-build/bench/ablate_recovery}"
if [[ ! -x "$bench" ]]; then
  cmake -B build -S .
  cmake --build build -j --target ablate_recovery
  bench="build/bench/ablate_recovery"
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
COLLREP_QUICK=1 "$bench" --seed=1 --metrics="$tmp/recovery_quick.json" \
  > /dev/null 2>&1
python3 scripts/perf_gate.py recovery_quick="$tmp/recovery_quick.json"
