// collprof CLI: offline critical-path profiler for collrep trace files.
//
//   collprof [options] TRACE.json
//
//   --json FILE       write the machine-readable profile (perf_gate input)
//   --augment FILE    write the trace back out with flow arrows + the
//                     critical path highlighted (load in Perfetto)
//   --report FILE     write the text report there instead of stdout
//   --require-clean   fail (exit 1) if any events were dropped or any
//                     flow/sync edge is unmatched (profile-mode gate)
//
// Exit codes: 0 ok, 1 --require-clean violation or no dump found,
// 2 usage or I/O error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/profile.hpp"
#include "trace_load.hpp"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: collprof [--json FILE] [--augment FILE] [--report FILE]\n"
        "                [--require-clean] TRACE.json\n";
  return code;
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "collprof: cannot write '" << path << "'\n";
    return false;
  }
  out << body;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string json_path;
  std::string augment_path;
  std::string report_path;
  bool require_clean = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "collprof: " << flag << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--json") {
      const char* v = need_value("--json");
      if (v == nullptr) return usage(std::cerr, 2);
      json_path = v;
    } else if (arg == "--augment") {
      const char* v = need_value("--augment");
      if (v == nullptr) return usage(std::cerr, 2);
      augment_path = v;
    } else if (arg == "--report") {
      const char* v = need_value("--report");
      if (v == nullptr) return usage(std::cerr, 2);
      report_path = v;
    } else if (arg == "--require-clean") {
      require_clean = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "collprof: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      std::cerr << "collprof: more than one trace file given\n";
      return usage(std::cerr, 2);
    }
  }
  if (trace_path.empty()) {
    std::cerr << "collprof: no trace file to analyze\n";
    return usage(std::cerr, 2);
  }

  const collprof::LoadResult loaded = collprof::load_trace_file(trace_path);
  if (!loaded.ok()) {
    for (const std::string& e : loaded.errors) {
      std::cerr << "collprof: " << trace_path << ": " << e << "\n";
    }
    return 2;
  }

  const collrep::obs::Profile profile =
      collrep::obs::build_profile(loaded.events, loaded.dropped_events);

  const std::string report = collrep::obs::profile_report(profile);
  if (report_path.empty()) {
    std::cout << report;
  } else if (!write_file(report_path, report)) {
    return 2;
  }
  if (!json_path.empty() &&
      !write_file(json_path, collrep::obs::profile_json(profile))) {
    return 2;
  }
  if (!augment_path.empty() &&
      !write_file(augment_path, collrep::obs::augmented_trace_json(
                                    loaded.events, profile))) {
    return 2;
  }

  if (profile.dumps.empty()) {
    std::cerr << "collprof: no complete \"dump\" span in " << trace_path
              << " (" << loaded.events.size() << " events)\n";
    return 1;
  }
  if (require_clean &&
      (profile.dropped_events != 0 || profile.unmatched_flows != 0 ||
       profile.unmatched_syncs != 0)) {
    std::cerr << "collprof: trace is incomplete (dropped="
              << profile.dropped_events
              << ", unmatched flows=" << profile.unmatched_flows
              << ", unmatched syncs=" << profile.unmatched_syncs
              << "); raise the trace capacity\n";
    return 1;
  }
  return 0;
}
