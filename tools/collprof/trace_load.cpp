#include "trace_load.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/trace.hpp"

namespace collprof {

namespace {

using collrep::obs::EventKind;
using collrep::obs::ProfEvent;

// ---- minimal JSON DOM -------------------------------------------------------

struct Value;
using ValuePtr = std::unique_ptr<Value>;

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::vector<std::pair<std::string, ValuePtr>> object;  // insertion order

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return v.get();
    }
    return nullptr;
  }
};

class Parser {
 public:
  Parser(const std::string& text, std::vector<std::string>& errors)
      : s_(text), errors_(errors) {}

  ValuePtr parse() {
    skip_ws();
    ValuePtr v = parse_value();
    skip_ws();
    if (v != nullptr && pos_ != s_.size()) {
      fail("trailing data after document");
      return nullptr;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (errors_.empty()) {
      errors_.push_back("JSON parse error at byte " + std::to_string(pos_) +
                        ": " + what);
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  ValuePtr parse_value() {  // NOLINT(misc-no-recursion)
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    const char c = s_[pos_];
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string_value();
      case 't':
      case 'f':
        return parse_keyword(c == 't' ? "true" : "false", Value::Type::kBool,
                             c == 't');
      case 'n':
        return parse_keyword("null", Value::Type::kNull, false);
      default:
        return parse_number();
    }
  }

  ValuePtr parse_keyword(const char* word, Value::Type type, bool boolean) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!consume(*p)) {
        fail(std::string("bad keyword, expected '") + word + "'");
        return nullptr;
      }
    }
    auto v = std::make_unique<Value>();
    v->type = type;
    v->boolean = boolean;
    return v;
  }

  ValuePtr parse_number() {
    const std::size_t begin = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (begin == pos_) {
      fail("expected a value");
      return nullptr;
    }
    const std::string tok = s_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double num = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number '" + tok + "'");
      return nullptr;
    }
    auto v = std::make_unique<Value>();
    v->type = Value::Type::kNumber;
    v->number = num;
    return v;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected '\"'");
      return false;
    }
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out += esc;
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u':
            // Trace names are ASCII; keep the reader simple and replace
            // escaped code points with '?'.
            if (pos_ + 4 > s_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            pos_ += 4;
            out += '?';
            break;
          default:
            fail("bad escape");
            return false;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return false;
  }

  ValuePtr parse_string_value() {
    auto v = std::make_unique<Value>();
    v->type = Value::Type::kString;
    if (!parse_string(v->string)) return nullptr;
    return v;
  }

  ValuePtr parse_array() {  // NOLINT(misc-no-recursion)
    (void)consume('[');
    auto v = std::make_unique<Value>();
    v->type = Value::Type::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      skip_ws();
      ValuePtr elem = parse_value();
      if (elem == nullptr) return nullptr;
      v->array.push_back(std::move(elem));
      skip_ws();
      if (consume(']')) return v;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return nullptr;
      }
    }
  }

  ValuePtr parse_object() {  // NOLINT(misc-no-recursion)
    (void)consume('{');
    auto v = std::make_unique<Value>();
    v->type = Value::Type::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return nullptr;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return nullptr;
      }
      skip_ws();
      ValuePtr val = parse_value();
      if (val == nullptr) return nullptr;
      v->object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (consume('}')) return v;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return nullptr;
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::vector<std::string>& errors_;
};

// ---- event mapping ----------------------------------------------------------

bool kind_of(const std::string& cat, const std::string& ph,
             const std::string& name, EventKind& out) {
  if (cat == "phase") {
    out = ph == "B" ? EventKind::kPhaseBegin : EventKind::kPhaseEnd;
    return ph == "B" || ph == "E";
  }
  if (cat == "collective") {
    out = ph == "B" ? EventKind::kCollectiveBegin : EventKind::kCollectiveEnd;
    return ph == "B" || ph == "E";
  }
  if (cat == "sync") {
    out = ph == "B" ? EventKind::kSyncBegin : EventKind::kSyncEnd;
    return ph == "B" || ph == "E";
  }
  if (cat == "comm") {
    out = name == "send" ? EventKind::kSend : EventKind::kRecv;
    return name == "send" || name == "recv";
  }
  if (cat == "window") {
    out = name == "put" ? EventKind::kPut : EventKind::kFence;
    return true;
  }
  if (cat == "storage") {
    out = EventKind::kStoreCommit;
    return true;
  }
  if (cat == "fault") {
    out = EventKind::kFault;
    return true;
  }
  return false;  // "flow"/"critical" (augmented output) and future cats
}

std::uint64_t u64_of(const Value* v) {
  if (v == nullptr) return 0;
  if (v->type == Value::Type::kNumber) {
    return v->number < 0 ? 0 : static_cast<std::uint64_t>(v->number);
  }
  if (v->type == Value::Type::kString) {
    return std::strtoull(v->string.c_str(), nullptr, 10);
  }
  return 0;
}

}  // namespace

LoadResult load_trace(const std::string& text) {
  LoadResult result;
  Parser parser(text, result.errors);
  const ValuePtr root = parser.parse();
  if (root == nullptr) return result;
  if (root->type != Value::Type::kObject) {
    result.errors.emplace_back("trace root is not an object");
    return result;
  }
  const Value* list = root->find("traceEvents");
  if (list == nullptr || list->type != Value::Type::kArray) {
    result.errors.emplace_back("missing traceEvents array");
    return result;
  }
  if (const Value* other = root->find("otherData");
      other != nullptr && other->type == Value::Type::kObject) {
    result.dropped_events = u64_of(other->find("dropped_events"));
  }
  for (const ValuePtr& ev : list->array) {
    if (ev->type != Value::Type::kObject) {
      result.errors.emplace_back("trace event is not an object");
      return result;
    }
    const Value* name = ev->find("name");
    const Value* cat = ev->find("cat");
    const Value* ph = ev->find("ph");
    const Value* ts = ev->find("ts");
    if (name == nullptr || cat == nullptr || ph == nullptr || ts == nullptr ||
        ts->type != Value::Type::kNumber) {
      result.errors.emplace_back("trace event missing name/cat/ph/ts");
      return result;
    }
    EventKind kind{};
    if (!kind_of(cat->string, ph->string, name->string, kind)) continue;
    ProfEvent out;
    out.kind = kind;
    out.name = name->string;
    out.rank = static_cast<int>(u64_of(ev->find("tid")));
    out.run = static_cast<std::uint32_t>(u64_of(ev->find("pid")));
    // "ts" carries microseconds printed with exactly 3 decimals, so this
    // recovers the integer nanosecond tick exactly.
    out.ts_ns = std::llround(ts->number * 1000.0);
    if (const Value* args = ev->find("args");
        args != nullptr && args->type == Value::Type::kObject) {
      out.a = u64_of(args->find("a"));
      out.b = u64_of(args->find("b"));
      out.c = u64_of(args->find("c"));
    }
    result.events.push_back(std::move(out));
  }
  return result;
}

LoadResult load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LoadResult result;
    result.errors.push_back("cannot open '" + path + "'");
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return load_trace(buf.str());
}

}  // namespace collprof
