// Loader for the Chrome trace-event JSON files Telemetry::trace_json()
// emits: parses the document with a small recursive-descent JSON reader and
// maps each trace event back to an obs::ProfEvent (cat + ph + name select
// the EventKind; args a/b/c carry the causal ids; "ts" microseconds become
// integer nanosecond ticks with the same rounding collect_events() uses, so
// a file round trip reproduces the in-memory profile bit-for-bit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/profile.hpp"

namespace collprof {

struct LoadResult {
  std::vector<collrep::obs::ProfEvent> events;
  std::uint64_t dropped_events = 0;  // from otherData.dropped_events
  std::vector<std::string> errors;   // parse/shape problems (empty == clean)

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

// Parse a trace document from memory.  Unknown categories are skipped
// (forward compatibility); malformed JSON or a missing traceEvents array is
// reported through `errors`.
[[nodiscard]] LoadResult load_trace(const std::string& text);

// Convenience: read + parse a file; I/O failures land in `errors`.
[[nodiscard]] LoadResult load_trace_file(const std::string& path);

}  // namespace collprof
