// collcheck v3 schedule pass: summarize each function as a small automaton
// over collective/p2p operations, compose the summaries inter-procedurally
// over the name-collapsed call graph, and check whole-program collective
// *schedules* instead of single call sites.  Drives the CC-SCHED-* rule
// family, the CC-FIBER-* fiber-readiness audit, and the `--dump-schedules`
// snapshot the CI drift gate diffs.  Model and canonicalization rules are
// documented in DESIGN.md §15.
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace collcheck {

struct SharedModel;

// One node of a function's schedule automaton.  The tree is built by a
// structural walk of the token stream (the same walk the rank-taint engine
// performs) and then canonicalized: nested sequences flatten, op-free
// subtrees drop, and alternations whose branches render identically
// collapse to a single branch.
struct SchedNode {
  enum class Kind {
    kOp,    // a collective (or, with p2p set, a send/recv) call
    kCall,  // a call into another scanned function, by name
    kSeq,   // children in order
    kAlt,   // one of children executes (if/else chain, switch)
    kLoop,  // children[0] executes zero or more times
    kTry,   // children[0] = body, children[1..] = catch handlers
  };
  Kind kind = Kind::kSeq;
  std::string name;        // kOp: op name; kCall: callee name
  int line = 0;
  bool divergent = false;  // kAlt/kLoop: condition / trip count rank-tainted
  bool p2p = false;        // kOp: point-to-point rather than collective
  std::vector<SchedNode> children;
  // kAlt: per-branch "contains an early return" flag (feeds the
  // skipped-tail variant of CC-SCHED-DIV).
  std::vector<unsigned char> branch_exits;
  // kTry: the caught type name for children[1..], "..." for ellipsis.
  std::vector<std::string> catch_types;
};

// CC-SCHED-DIV / CC-SCHED-ORDER / CC-SCHED-LOOP / CC-SCHED-UNWIND over
// every scanned function, inter-procedural through the op-bearing
// fixpoint.
void run_schedule_rules(const std::vector<FileUnit>& files,
                        std::vector<Finding>& findings);

// CC-FIBER-BLOCK / CC-FIBER-TLS: OS-blocking primitives and thread_local
// state inside sim-path components (layer rank < 100).  Uses the shared
// model's lock-region tracking for "mutex held across a blocking op".
void run_fiber_rules(const SharedModel& m, std::vector<Finding>& findings);

// Render the canonical schedule reachable from each public entry point
// (DUMP_OUTPUT, checkpoint_now, recover_world, repair_replicas,
// pfs_restore) as a byte-stable text artifact for CI diffing.
[[nodiscard]] std::string dump_schedules(const std::vector<FileUnit>& files);

}  // namespace collcheck
