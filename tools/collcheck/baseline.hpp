// collcheck baseline: a checked-in list of intentional exceptions.  Each
// line is `RULE path:line  # justification` (the justification is
// mandatory by convention, enforced in review).  `path:*` matches any
// line in the file, for findings whose line drifts with unrelated edits.
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace collcheck {

struct BaselineEntry {
  std::string rule;
  std::string file;
  int line = 0;        // 0 == wildcard (`path:*`)
  std::string note;    // text after '#'
  mutable bool used = false;
};

struct Baseline {
  std::vector<BaselineEntry> entries;

  // True (and marks the entry used) when `f` matches an entry.
  [[nodiscard]] bool suppresses(const Finding& f) const;

  // Entries that never matched a finding — stale baseline lines that
  // should be deleted.  Reported as a warning, not a failure.
  [[nodiscard]] std::vector<const BaselineEntry*> unused() const;
};

// Parse a baseline file.  Unknown/garbled lines are collected into
// `errors` (one message per bad line); blank lines and `#` comments are
// skipped.
[[nodiscard]] Baseline load_baseline(const std::string& path,
                                     std::vector<std::string>& errors);

// Render findings as baseline lines (`RULE path:line  # message`).  The
// output round-trips through load_baseline and suppresses exactly the
// findings it was built from (`--write-baseline`).
[[nodiscard]] std::string format_baseline(const std::vector<Finding>& fs);

}  // namespace collcheck
