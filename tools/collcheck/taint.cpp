#include "taint.hpp"

#include <algorithm>

#include "lexer.hpp"

namespace collcheck {

const std::unordered_set<std::string>& rank_source_idents() {
  static const std::unordered_set<std::string> kNames = {
      "rank", "rank_", "vrank", "world_rank", "my_rank", "myrank",
      "self_rank"};
  return kNames;
}

bool span_tainted(const TaintCtx& ctx, std::size_t b, std::size_t e) {
  const Toks& toks = *ctx.toks;
  for (std::size_t i = b; i < e && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (rank_source_idents().contains(t.text)) return true;
    if (ctx.tainted_vars.contains(t.text)) return true;
  }
  return false;
}

void collect_tainted_vars(TaintCtx& ctx, std::size_t b, std::size_t e) {
  const Toks& toks = *ctx.toks;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = b; i + 1 < e; ++i) {
      if (toks[i].kind != TokKind::kIdent || is_cpp_keyword(toks[i].text)) {
        continue;
      }
      if (!is_punct(toks[i + 1], "=")) continue;
      // Exclude compound contexts: member writes (x.y = ...) still taint
      // nothing we can name simply; plain `ident = expr;` is the pattern.
      if (i > b && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        continue;
      }
      const std::size_t end = stmt_end(toks, i + 2, e);
      if (span_tainted(ctx, i + 2, end)) ctx.tainted_vars.insert(toks[i].text);
    }
  }
}

namespace {

[[nodiscard]] bool span_has_ident(const Toks& toks, std::size_t b,
                                  std::size_t e, std::string_view a,
                                  std::string_view c) {
  for (std::size_t i = b; i < e && i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && (toks[i].text == a ||
                                            toks[i].text == c)) {
      return true;
    }
  }
  return false;
}

}  // namespace

WalkExit walk_region(TaintCtx& ctx, std::size_t b, std::size_t e,
                     bool tainted, bool is_loop_body) {
  const Toks& toks = *ctx.toks;
  WalkExit out;
  std::size_t i = b;
  bool last_cond_taint = false;  // taint of the most recent if-condition
  while (i < e) {
    const Token& t = toks[i];
    if (tainted && i < ctx.tainted_at.size()) ctx.tainted_at[i] = 1;

    const bool is_if = is_ident(t, "if");
    const bool is_loop = is_ident(t, "while") || is_ident(t, "for");
    const bool is_switch = is_ident(t, "switch");
    if ((is_if || is_loop || is_switch) && i + 1 < e) {
      std::size_t open = i + 1;
      // `if constexpr (...)`, `for constexpr` does not exist; skip one
      // ident between keyword and "(" (constexpr).
      if (open < e && toks[open].kind == TokKind::kIdent) ++open;
      if (open >= e || !is_punct(toks[open], "(")) {
        ++i;
        continue;
      }
      const std::size_t close = match_bracket(toks, open);
      if (close >= e) {
        ++i;
        continue;
      }
      const bool cond_taint =
          tainted || span_tainted(ctx, open + 1, close);
      if (is_if) last_cond_taint = cond_taint;
      // Mark the header tokens themselves with the inherited taint only.
      std::size_t body_start = close + 1;
      std::size_t body_close;  // one past the region
      WalkExit sub;
      if (body_start < e && is_punct(toks[body_start], "{")) {
        body_close = std::min(match_bracket(toks, body_start), e);
        sub = walk_region(ctx, body_start + 1, body_close, cond_taint,
                          is_loop);
        i = body_close + 1;
      } else {
        body_close = stmt_end(toks, body_start, e);
        sub = walk_region(ctx, body_start, body_close, cond_taint, is_loop);
        i = body_close + 1;
      }
      // Early-exit escalation: only when the condition itself introduced
      // the divergence at this level.  `throw` deliberately does not count:
      // an exception aborts the run, so the code after it never executes on
      // the throwing rank and the collective sequence question is moot
      // (rank-guarded invariant throws are common and benign).
      if (cond_taint && !tainted) {
        if (span_has_ident(toks, body_start, body_close, "return", "return")) {
          out.ret = true;
        }
        if (span_has_ident(toks, body_start, body_close, "break",
                           "continue")) {
          out.brk = true;
        }
      }
      if (sub.ret) out.ret = true;
      if (sub.brk && !is_loop) out.brk = true;  // loops absorb their breaks
      if (out.ret || (out.brk && is_loop_body)) tainted = true;
      // `else` clause shares the if-condition's divergence.
      if (is_if && i < e && is_ident(toks[i], "else")) {
        std::size_t eb = i + 1;
        WalkExit esub;
        if (eb < e && is_punct(toks[eb], "{")) {
          const std::size_t ec = std::min(match_bracket(toks, eb), e);
          esub = walk_region(ctx, eb + 1, ec, cond_taint || tainted,
                             is_loop_body);
          i = ec + 1;
        } else if (eb < e && is_ident(toks[eb], "if")) {
          i = eb;  // else-if: loop handles it; approximate (drops the
                   // accumulated negation, fine for a linter)
          continue;
        } else {
          const std::size_t ec = stmt_end(toks, eb, e);
          esub = walk_region(ctx, eb, ec, cond_taint || tainted,
                             is_loop_body);
          i = ec + 1;
        }
        if (cond_taint && !tainted) {
          if (esub.ret) out.ret = true;
          if (esub.brk) out.brk = true;
        }
        if (out.ret || (out.brk && is_loop_body)) tainted = true;
      }
      continue;
    }

    if (is_punct(t, "{")) {
      const std::size_t close = std::min(match_bracket(toks, i), e);
      const WalkExit sub = walk_region(ctx, i + 1, close, tainted,
                                       is_loop_body);
      if (sub.ret) out.ret = true;
      if (sub.brk) out.brk = true;
      if (out.ret || (out.brk && is_loop_body)) tainted = true;
      i = close + 1;
      continue;
    }
    ++i;
  }
  (void)last_cond_taint;
  return out;
}

}  // namespace collcheck
