// CC-P2P-* rules: static send/recv protocol matching.  The runtime leak
// audit (Comm::leak_report) finds unmatched sends only on paths that
// actually execute; this is its static twin over the scanned corpus:
//   CC-P2P-UNMATCHED  a send tag no recv ever names (or vice versa) —
//                     an orphan message or a recv that waits forever
//   CC-P2P-SELF       recv from the receiver's own rank: self-messages
//                     deadlock because the matching send never ran
//   CC-P2P-TAGDIV     the tag expression depends on rank-divergent data,
//                     so sender and receiver compute different tags
// Matching is by symbolic tag key across the whole corpus (union over
// files), documented with its limits in DESIGN.md §13.
#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "dataflow.hpp"
#include "tokutil.hpp"

namespace collcheck {

namespace {

bool is_send_name(const std::string& n) {
  return n == "send_bytes" || n == "send_value";
}

bool is_recv_name(const std::string& n) {
  return n == "recv_bytes" || n == "recv_value";
}

// One p2p call site with its decoded argument spans.
struct P2pSite {
  const FileUnit* unit = nullptr;
  const FunctionInfo* fn = nullptr;
  const CallSite* call = nullptr;
  bool send = false;
  std::pair<std::size_t, std::size_t> peer_arg;  // [begin, end)
  std::pair<std::size_t, std::size_t> tag_arg;
};

// Symbolic tag key: the first protocol constant (`kSomething`) named in
// the tag expression, else a lone numeric literal.  Empty => unkeyed
// (complex/variable tag): excluded from UNMATCHED rather than guessed.
std::string tag_key(const Toks& toks, std::pair<std::size_t, std::size_t> arg) {
  for (std::size_t i = arg.first; i < arg.second; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent && t.text.size() > 1 && t.text[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(t.text[1]))) {
      return t.text;
    }
  }
  if (arg.second == arg.first + 1 &&
      toks[arg.first].kind == TokKind::kNumber) {
    return "#" + toks[arg.first].text;
  }
  return {};
}

bool span_mentions(const Toks& toks, std::pair<std::size_t, std::size_t> arg,
                   const std::string& name) {
  for (std::size_t i = arg.first; i < arg.second; ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == name) return true;
  }
  return false;
}

std::string span_text(const Toks& toks,
                      std::pair<std::size_t, std::size_t> arg) {
  std::string out;
  for (std::size_t i = arg.first; i < arg.second && i < arg.first + 8; ++i) {
    if (!out.empty()) out += ' ';
    out += toks[i].text.empty() ? "<str>" : toks[i].text;
  }
  return out;
}

std::vector<P2pSite> collect_sites(const std::vector<FileUnit>& files) {
  std::vector<P2pSite> sites;
  for (const FileUnit& unit : files) {
    const Toks& toks = unit.lexed.tokens;
    for (const FunctionInfo& fn : unit.functions) {
      for (const CallSite& c : fn.calls) {
        if (!c.method) continue;
        const bool send = is_send_name(c.name);
        if (!send && !is_recv_name(c.name)) continue;
        if (c.args_open == 0) continue;
        const auto args = split_args(toks, c.args_open,
                                     match_bracket(toks, c.args_open));
        if (args.size() < 2) continue;
        P2pSite s;
        s.unit = &unit;
        s.fn = &fn;
        s.call = &c;
        s.send = send;
        s.peer_arg = args[0];
        s.tag_arg = args[1];
        sites.push_back(s);
      }
    }
  }
  return sites;
}

// ---------------------------------------------------------------------------
// CC-P2P-SELF
// ---------------------------------------------------------------------------

// Is the peer expression this receiver's own rank?  Matches the literal
// form `R.rank()` / `R.world_rank()` on the same receiver `R` as the
// recv, or a local alias recorded as `auto me = R.rank();`.
bool peer_is_self(const P2pSite& s) {
  const Toks& toks = s.unit->lexed.tokens;
  const auto [b, e] = s.peer_arg;
  const std::string& recv_obj = s.call->receiver;
  if (e == b + 5 && toks[b].kind == TokKind::kIdent &&
      toks[b].text == recv_obj && is_punct(toks[b + 1], ".") &&
      toks[b + 2].kind == TokKind::kIdent &&
      (toks[b + 2].text == "rank" || toks[b + 2].text == "world_rank") &&
      is_punct(toks[b + 3], "(") && is_punct(toks[b + 4], ")")) {
    return true;
  }
  if (e == b + 1 && toks[b].kind == TokKind::kIdent) {
    for (const auto& [alias, obj] : s.fn->rank_aliases) {
      if (alias == toks[b].text && obj == recv_obj) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// CC-P2P-TAGDIV
// ---------------------------------------------------------------------------

// Does the tag expression diverge across ranks?  Either it names a
// variable assigned under rank-conditional control flow, or it embeds a
// conditional (`?:`) over a bare rank identifier.  Plain `kTag + rank`
// offsets are fine: both sides compute them from the same peer id.
bool tag_diverges(const P2pSite& s, std::string& why) {
  const Toks& toks = s.unit->lexed.tokens;
  for (const std::string& v : s.fn->divergent_vars) {
    if (span_mentions(toks, s.tag_arg, v)) {
      why = "uses '" + v + "', assigned under rank-dependent control flow";
      return true;
    }
  }
  bool has_cond = false;
  bool has_rank = false;
  for (std::size_t i = s.tag_arg.first; i < s.tag_arg.second; ++i) {
    if (is_punct(toks[i], "?")) has_cond = true;
    if (toks[i].kind == TokKind::kIdent &&
        rank_idents().count(toks[i].text) != 0 &&
        !(i + 1 < toks.size() && is_punct(toks[i + 1], "("))) {
      has_rank = true;
    }
  }
  if (has_cond && has_rank) {
    why = "selects the tag with a rank-dependent conditional";
    return true;
  }
  return false;
}

}  // namespace

void run_p2p_rules(const SharedModel& m, std::vector<Finding>& findings) {
  const std::vector<P2pSite> sites = collect_sites(*m.files);

  // Corpus-wide tag-key unions for UNMATCHED.
  std::map<std::string, std::vector<const P2pSite*>> send_keys;
  std::map<std::string, std::vector<const P2pSite*>> recv_keys;
  for (const P2pSite& s : sites) {
    const std::string key = tag_key(s.unit->lexed.tokens, s.tag_arg);
    if (key.empty()) continue;
    (s.send ? send_keys : recv_keys)[key].push_back(&s);
  }
  for (const auto& [key, ss] : send_keys) {
    if (recv_keys.count(key) != 0) continue;
    for (const P2pSite* s : ss) {
      findings.push_back(Finding{
          std::string(kRuleP2pUnmatched), s->unit->path, s->call->line,
          "send with tag '" + key +
              "' has no matching recv anywhere in the scanned sources; "
              "the message is an orphan (runtime twin: Comm::leak_report)"});
    }
  }
  for (const auto& [key, ss] : recv_keys) {
    if (send_keys.count(key) != 0) continue;
    for (const P2pSite* s : ss) {
      findings.push_back(Finding{
          std::string(kRuleP2pUnmatched), s->unit->path, s->call->line,
          "recv with tag '" + key +
              "' has no matching send anywhere in the scanned sources; "
              "this rank will block forever waiting for it"});
    }
  }

  for (const P2pSite& s : sites) {
    if (!s.send && peer_is_self(s)) {
      findings.push_back(Finding{
          std::string(kRuleP2pSelf), s.unit->path, s.call->line,
          "recv from the caller's own rank ('" +
              span_text(s.unit->lexed.tokens, s.peer_arg) +
              "'); a rank cannot receive a message it never posted — "
              "this deadlocks unless a prior self-send exists"});
    }
    std::string why;
    if (tag_diverges(s, why)) {
      findings.push_back(Finding{
          std::string(kRuleP2pTagDiv), s.unit->path, s.call->line,
          std::string(s.send ? "send" : "recv") + " tag expression " + why +
              "; sender and receiver can compute different tags and never "
              "match"});
    }
  }
}

}  // namespace collcheck
