// Minimal SARIF 2.1.0 writer for collcheck findings, enough for GitHub
// code-scanning upload and artifact archival.
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace collcheck {

// Serialize `findings` as a single-run SARIF log.  `tool_version` lands in
// the driver block.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings,
                                   const std::string& tool_version);

}  // namespace collcheck
