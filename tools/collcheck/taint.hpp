// collcheck rank-taint engine, shared by the per-call divergence rules
// (analyzer.cpp) and the schedule-automaton pass (schedule.cpp): which
// variables carry rank-derived values, and which body tokens sit under
// rank-dependent control flow (including early-return escalation).
#pragma once

#include <cstddef>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "tokutil.hpp"

namespace collcheck {

// Identifiers whose value names "which rank am I" directly.
[[nodiscard]] const std::unordered_set<std::string>& rank_source_idents();

struct TaintCtx {
  const Toks* toks = nullptr;
  std::unordered_set<std::string> tainted_vars;
  // Parallel to toks, body span only.  Byte-valued rather than
  // vector<bool>: the bit-proxy specialization trips GCC's
  // -Wnull-dereference inside libstdc++ when assign() is inlined.
  std::vector<unsigned char> tainted_at;
};

// Does the token span [b, e) mention a rank source or a tainted variable?
[[nodiscard]] bool span_tainted(const TaintCtx& ctx, std::size_t b,
                                std::size_t e);

// Collect variables assigned from rank-derived expressions into
// ctx.tainted_vars.  Two passes pick up simple transitive chains
// (a = comm.rank(); b = a + 1;).
void collect_tainted_vars(TaintCtx& ctx, std::size_t b, std::size_t e);

struct WalkExit {
  bool ret = false;  // rank-conditional return/throw seen
  bool brk = false;  // rank-conditional break/continue seen
};

// Walk [b, e) marking rank-conditional tokens in ctx.tainted_at.
// `tainted` is the inherited divergence of this region; `is_loop_body`
// scopes break/continue escalation.  A rank-conditional region that exits
// early (return) makes every subsequent statement in the enclosing scopes
// divergent too (the classic `if (rank != 0) return; bcast(...)` bug).
WalkExit walk_region(TaintCtx& ctx, std::size_t b, std::size_t e,
                     bool tainted, bool is_loop_body);

}  // namespace collcheck
