// collcheck shared dataflow layer: the class/field index over the scanned
// sources, lock guard-region tracking, and call-graph summaries reused by
// the CC-RACE, CC-EXC and CC-P2P rule families.  Semantics and known
// false-negative limits are documented in DESIGN.md §13.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model.hpp"

namespace collcheck {

enum class FieldKind {
  kPlain,    // ordinary mutable data: subject to lockset analysis
  kMutex,    // std::mutex / shared_mutex / ... — the guards themselves
  kAtomic,   // std::atomic<...> — safe without a lock by construction
  kCondVar,  // std::condition_variable — used around locks by design
  kConst,    // const-qualified — immutable after construction
};

struct FieldInfo {
  std::string name;
  FieldKind kind = FieldKind::kPlain;
  int line = 0;
};

// One class/struct definition found in a scanned file.
struct ClassInfo {
  std::string name;
  std::size_t file_index = 0;  // into AnalysisResult::files
  std::size_t body_begin = 0;  // token index just after the class "{"
  std::size_t body_end = 0;    // token index of the matching "}"
  int line = 0;
  std::vector<FieldInfo> fields;
  bool has_mutex = false;  // owns a mutex => treated as shared state

  [[nodiscard]] const FieldInfo* field(const std::string& n) const;
};

// One lock acquisition site (guard-object declaration or manual .lock()).
struct LockAcquire {
  std::vector<std::string> mutexes;      // all mutexes taken at this site
  std::vector<std::string> held_before;  // locks already held lexically
  int line = 0;
};

// A manually-managed resource span for CC-EXC-RESOURCE: acquired at
// `open_tok`, released at `close_tok` (body_end when never released).
struct ManualSpan {
  std::string what;  // e.g. "mutex 'mu_' locked via .lock()"
  std::size_t open_tok = 0;
  std::size_t close_tok = 0;
  int line = 0;
};

// Per-function guard state: for every body token, the set of mutex names
// held at that point.  Regions are lexical; unique_lock unlock()/lock()
// toggles are modeled, condition_variable wait-releases are not
// (documented in DESIGN.md §13).
struct GuardInfo {
  std::size_t body_begin = 0;
  std::vector<std::vector<std::string>> held;  // index: tok - body_begin
  std::vector<LockAcquire> acquires;
  std::vector<ManualSpan> manual;
  std::vector<std::string> guard_vars;  // declared guard-object names

  [[nodiscard]] const std::vector<std::string>& held_at(
      std::size_t tok) const;
};

// Derived facts about one function, aligned with
// files[file_index].functions[fn_index].
struct FnFacts {
  std::size_t file_index = 0;
  std::size_t fn_index = 0;
  const ClassInfo* cls = nullptr;  // owning class, when resolved
  bool ctor_dtor = false;          // ctor/dtor of `cls`
  GuardInfo guards;
  // Locks held by every caller at every observed same-class call site
  // (the `*_locked` helper convention): intersection over call sites.
  std::vector<std::string> ctx_held;
  // Same-class transitive lock acquisitions (for lock-order edges).
  std::set<std::string> locks_acquired;
  bool direct_throw = false;   // body contains a RankDead throw site
  bool swallows_all = false;   // catch (...) without rethrow: a firewall
};

struct SharedModel {
  const std::vector<FileUnit>* files = nullptr;
  std::vector<ClassInfo> classes;
  std::vector<FnFacts> fns;  // ordered by (file_index, fn_index)
  // Name-collapsed "can this callee reach a RankDeadError throw site"
  // summary (same collapse as the CC-COLL-DIV-CALL bearing map).
  std::unordered_map<std::string, bool> throws_by_name;

  [[nodiscard]] const FnFacts* facts(std::size_t file_index,
                                     std::size_t fn_index) const;
  // Can this call site throw RankDeadError (directly or via summary)?
  [[nodiscard]] bool call_may_throw(const CallSite& c) const;
};

[[nodiscard]] SharedModel build_shared_model(
    const std::vector<FileUnit>& files);

// Is this call site itself a RankDeadError throw site (collective, recv,
// shrink, fence, fault_point)?
[[nodiscard]] bool is_rankdead_throw_site(const CallSite& c);

// Rank-named identifiers shared with the taint rules.
[[nodiscard]] const std::unordered_set<std::string>& rank_idents();

// The three v2 rule passes.
void run_race_rules(const SharedModel& m, std::vector<Finding>& findings);
void run_exc_rules(const SharedModel& m, std::vector<Finding>& findings);
void run_p2p_rules(const SharedModel& m, std::vector<Finding>& findings);

}  // namespace collcheck
